// dsteiner_rank — per-process launcher for the real multi-process distributed
// runtime (src/runtime/net/). Each rank is its own OS process owning one
// hash-partition shard of the solve state; ranks connect a localhost TCP mesh
// and run the distributed solver to the same bits the single-process solver
// produces.
//
// Two ways to run it:
//
//   # one command, forks the whole mesh (rank 0 stays in the foreground):
//   dsteiner_rank --spawn 4 --rmat 9 --num-seeds 8 --verify-single
//
//   # or one process per rank, e.g. across terminals / a process manager:
//   dsteiner_rank --rank 0 --world 2 --dataset LVJ --num-seeds 16
//   dsteiner_rank --rank 1 --world 2 --dataset LVJ --num-seeds 16
//
// Every rank must be given the same graph/seed/port flags: the graph is
// loaded deterministically per process, the seed selection is deterministic,
// and only the vertex-state shard differs by rank.
//
// Options:
//   --spawn W            fork ranks 1..W-1, run rank 0 in this process
//   --rank R --world W   join an externally-launched mesh as rank R
//   --port-base P        TCP mesh base port (rank r listens on P+r)
//   --dataset KEY        built-in mirror (WDC CLW UKW FRS LVJ PTN MCO CTS)
//   --rmat SCALE         deterministic RMAT graph, 2^SCALE vertices
//   --edge-factor N      RMAT edge factor (default 8)
//   --seeds a,b,c        explicit seed vertices
//   --num-seeds N        deterministic seed selection (default 8)
//   --growth strict|bucketed   phase-1 scheduling mode
//   --verify-single      also run the in-process solver and require
//                        bit-identical output (exit 1 on mismatch)
//   --metrics-text       print this rank's dsteiner_net_* counters (plus, on
//                        rank 0, the dsteiner_cluster_* families) as
//                        Prometheus text exposition (self-validated)
//   --clusterz           rank 0: print the merged cluster telemetry JSON
//                        (straggler report) — the same document the query
//                        service serves at /clusterz
#include <sys/wait.h>
#include <unistd.h>

#include <charconv>
#include <cstdio>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/steiner_solver.hpp"
#include "graph/generators.hpp"
#include "io/dataset.hpp"
#include "obs/prom_validate.hpp"
#include "runtime/net/dist_solver.hpp"
#include "runtime/net/tcp_backend.hpp"
#include "seed/seed_select.hpp"
#include "util/timer.hpp"

namespace {

using namespace dsteiner;

[[noreturn]] void usage(const char* message) {
  if (message != nullptr) std::fprintf(stderr, "error: %s\n", message);
  std::fprintf(stderr,
               "usage: dsteiner_rank (--spawn W | --rank R --world W)\n"
               "                     [--port-base P]\n"
               "                     (--dataset KEY | --rmat SCALE"
               " [--edge-factor N])\n"
               "                     [--seeds a,b,c | --num-seeds N]\n"
               "                     [--growth strict|bucketed]\n"
               "                     [--verify-single] [--metrics-text]\n"
               "                     [--clusterz]\n");
  std::exit(2);
}

std::uint64_t parse_u64(const std::string& text, const char* flag) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() || text.empty()) {
    usage((std::string(flag) + " expects an unsigned integer, got '" + text +
           "'").c_str());
  }
  return value;
}

int parse_bounded_int(const std::string& text, const char* flag, int lo,
                      int hi) {
  const std::uint64_t value = parse_u64(text, flag);
  if (value < static_cast<std::uint64_t>(lo) ||
      value > static_cast<std::uint64_t>(hi)) {
    usage((std::string(flag) + " must be in [" + std::to_string(lo) + ", " +
           std::to_string(hi) + "], got '" + text + "'").c_str());
  }
  return static_cast<int>(value);
}

std::vector<graph::vertex_id> parse_seed_list(const std::string& text) {
  std::vector<graph::vertex_id> seeds;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(',', begin);
    if (end == std::string::npos) end = text.size();
    seeds.push_back(parse_u64(text.substr(begin, end - begin), "--seeds"));
    begin = end + 1;
  }
  return seeds;
}

struct launcher_options {
  int spawn = 0;  ///< 0 = worker mode (explicit --rank/--world)
  int rank = -1;
  int world = 0;
  std::uint16_t port_base = 29870;
  std::optional<std::string> dataset_key;
  std::optional<std::uint64_t> rmat_scale;
  std::uint64_t edge_factor = 8;
  std::optional<std::string> seed_list;
  std::size_t num_seeds = 8;
  runtime::growth_mode growth = runtime::growth_mode::strict_order;
  bool verify_single = false;
  bool metrics_text = false;
  bool clusterz = false;
};

launcher_options parse_options(int argc, char** argv) {
  launcher_options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--spawn") {
      opts.spawn = parse_bounded_int(next(), "--spawn", 1, 64);
    } else if (arg == "--rank") {
      opts.rank = parse_bounded_int(next(), "--rank", 0, 63);
    } else if (arg == "--world") {
      opts.world = parse_bounded_int(next(), "--world", 1, 64);
    } else if (arg == "--port-base") {
      opts.port_base = static_cast<std::uint16_t>(
          parse_bounded_int(next(), "--port-base", 1024, 65000));
    } else if (arg == "--dataset") {
      opts.dataset_key = next();
    } else if (arg == "--rmat") {
      opts.rmat_scale = parse_u64(next(), "--rmat");
    } else if (arg == "--edge-factor") {
      opts.edge_factor = parse_u64(next(), "--edge-factor");
    } else if (arg == "--seeds") {
      opts.seed_list = next();
    } else if (arg == "--num-seeds") {
      opts.num_seeds = parse_u64(next(), "--num-seeds");
    } else if (arg == "--growth") {
      const std::string mode = next();
      if (mode == "strict") {
        opts.growth = runtime::growth_mode::strict_order;
      } else if (mode == "bucketed") {
        opts.growth = runtime::growth_mode::bucketed;
      } else {
        usage("unknown growth mode");
      }
    } else if (arg == "--verify-single") {
      opts.verify_single = true;
    } else if (arg == "--metrics-text") {
      opts.metrics_text = true;
    } else if (arg == "--clusterz") {
      opts.clusterz = true;
    } else {
      usage(("unknown option " + arg).c_str());
    }
  }
  if (opts.spawn > 0) {
    if (opts.rank >= 0 || opts.world > 0) {
      usage("--spawn and --rank/--world are mutually exclusive");
    }
    opts.world = opts.spawn;
    opts.rank = 0;
  } else if (opts.rank < 0 || opts.world == 0 || opts.rank >= opts.world) {
    usage("worker mode needs --rank R --world W with R < W");
  }
  if (opts.dataset_key.has_value() == opts.rmat_scale.has_value()) {
    usage("exactly one of --dataset / --rmat is required");
  }
  return opts;
}

/// Deterministic graph construction: every rank process of one mesh runs this
/// independently and must arrive at identical CSR content (the distributed
/// runtime replicates the graph and shards only the solve state).
graph::csr_graph load_graph(const launcher_options& opts) {
  if (opts.dataset_key) return io::load_dataset(*opts.dataset_key).graph;
  graph::rmat_params params;
  params.scale = *opts.rmat_scale;
  params.edge_factor = opts.edge_factor;
  params.seed = 0xD5EE;
  graph::edge_list list = graph::generate_rmat(params);
  graph::assign_uniform_weights(list, 1, 100, 0xD5EE ^ params.scale);
  graph::connect_components(list, 101, 0xD5EE);
  return graph::csr_graph(list);
}

void append_counter(std::string& out, const char* name, const char* help,
                    int rank, std::uint64_t value) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += " counter\n";
  out += name;
  out += "{rank=\"" + std::to_string(rank) + "\"} " + std::to_string(value) +
         "\n";
}

/// Per-rank traffic counters in Prometheus text exposition, self-validated —
/// the same `dsteiner_net_*` families the query service exports, scoped to
/// this launcher process.
int print_metrics(const runtime::net::net_solve_report& report) {
  std::string out;
  append_counter(out, "dsteiner_net_bytes_sent_total",
                 "Wire bytes sent by this rank (headers included).",
                 report.rank, report.stats.bytes_sent);
  append_counter(out, "dsteiner_net_bytes_received_total",
                 "Wire bytes received by this rank.", report.rank,
                 report.stats.bytes_received);
  append_counter(out, "dsteiner_net_frames_sent_total",
                 "Frames sent by this rank.", report.rank,
                 report.stats.frames_sent);
  append_counter(out, "dsteiner_net_frames_received_total",
                 "Frames received by this rank.", report.rank,
                 report.stats.frames_received);
  append_counter(out, "dsteiner_net_supersteps_total",
                 "BSP supersteps this rank participated in.", report.rank,
                 report.supersteps);
  append_counter(out, "dsteiner_net_vote_rounds_total",
                 "Termination vote rounds (confirms included).", report.rank,
                 report.vote_rounds);
  append_counter(out, "dsteiner_net_ghost_labels_sent_total",
                 "Boundary labels pushed to neighbouring ranks.", report.rank,
                 report.ghost_labels_sent);
  append_counter(out, "dsteiner_net_bytes_modelled_total",
                 "Perf-model predicted payload bytes for the same traffic.",
                 report.rank, report.bytes_modelled);
  if (report.rank == 0 && !report.cluster.samples.empty()) {
    // Rank 0 carries the merged telemetry plane; expose the same
    // dsteiner_cluster_* families the query service's /metrics serves.
    const std::vector<runtime::net::straggler_row> rows =
        runtime::net::straggler_rows(report.cluster);
    std::uint64_t straggling = 0;
    for (const runtime::net::straggler_row& row : rows) {
      if (row.compute_skew >= 2.0) ++straggling;
    }
    append_counter(out, "dsteiner_cluster_telemetry_samples_total",
                   "Per-rank, per-superstep telemetry frames merged on rank 0.",
                   report.rank, report.cluster.samples.size());
    append_counter(out, "dsteiner_cluster_supersteps_total",
                   "Superstep groups attributed by the straggler report.",
                   report.rank, rows.size());
    append_counter(out, "dsteiner_cluster_straggler_supersteps_total",
                   "Attributed supersteps whose compute skew reached 2x.",
                   report.rank, straggling);
  }
  const obs::prom_report check = obs::validate_prometheus(out);
  std::fputs(out.c_str(), stdout);
  if (!check.ok()) {
    std::fprintf(stderr, "metrics exposition invalid:\n%s",
                 check.to_string().c_str());
    return 1;
  }
  return 0;
}

/// One rank's whole run: join the mesh, solve, optionally verify and report.
int run_rank(const launcher_options& opts, int rank) {
  const graph::csr_graph g = load_graph(opts);
  std::vector<graph::vertex_id> seeds;
  if (opts.seed_list) {
    seeds = parse_seed_list(*opts.seed_list);
  } else {
    seeds = seed::select_seeds(g, opts.num_seeds,
                               seed::seed_strategy::bfs_level, 0xd5ee);
  }

  core::solver_config config;
  config.growth = opts.growth;

  runtime::net::tcp_backend_config net_config;
  net_config.rank = rank;
  net_config.world = opts.world;
  net_config.base_port = opts.port_base;
  runtime::net::tcp_backend net(net_config);

  util::timer solve_timer;
  runtime::net::net_solve_report report;
  const core::steiner_result result =
      runtime::net::solve_rank(g, seeds, config, net, &report);
  std::fprintf(stderr,
               "rank %d/%d: %zu tree edges, D(GS) = %llu, %llu supersteps, "
               "%llu bytes sent (%.3fs)\n",
               rank, opts.world, result.tree_edges.size(),
               static_cast<unsigned long long>(result.total_distance),
               static_cast<unsigned long long>(report.supersteps),
               static_cast<unsigned long long>(report.stats.bytes_sent),
               solve_timer.seconds());

  int status = 0;
  if (opts.verify_single) {
    const core::steiner_result reference =
        core::solve_steiner_tree(g, seeds, config);
    if (result.tree_edges != reference.tree_edges ||
        result.total_distance != reference.total_distance) {
      std::fprintf(stderr,
                   "rank %d: MISMATCH vs single-process solve "
                   "(%zu/%llu distributed, %zu/%llu single)\n",
                   rank, result.tree_edges.size(),
                   static_cast<unsigned long long>(result.total_distance),
                   reference.tree_edges.size(),
                   static_cast<unsigned long long>(reference.total_distance));
      status = 1;
    } else {
      std::fprintf(stderr, "rank %d: verified bit-identical to single-process"
                   " solve\n", rank);
    }
  }
  if (opts.metrics_text && status == 0) status = print_metrics(report);
  if (opts.clusterz && status == 0 && rank == 0) {
    // The merged telemetry plane lives on rank 0 only.
    std::fputs(runtime::net::render_cluster_json(report.cluster).c_str(),
               stdout);
    std::fputc('\n', stdout);
  }
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  const launcher_options opts = parse_options(argc, argv);

  std::vector<pid_t> children;
  int rank = opts.rank;
  if (opts.spawn > 0) {
    for (int r = 1; r < opts.world; ++r) {
      const pid_t child = ::fork();
      if (child < 0) {
        std::perror("fork");
        return 1;
      }
      if (child == 0) {
        children.clear();
        rank = r;
        break;
      }
      children.push_back(child);
    }
  }

  int status = 0;
  try {
    status = run_rank(opts, rank);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rank %d error: %s\n", rank, e.what());
    status = 1;
  }

  for (const pid_t child : children) {
    int wstatus = 0;
    if (::waitpid(child, &wstatus, 0) != child ||
        !WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) {
      status = 1;
    }
  }
  if (!children.empty() && status == 0) {
    std::fprintf(stderr, "all %d ranks agreed\n", opts.world);
  }
  if (rank != opts.rank) ::_exit(status);  // forked child: skip parent atexit
  return status;
}
