// dsteiner_cli — command-line driver for the library, the shape of tool a
// network scientist would actually run against their own data (§I's
// interactive-exploration use case).
//
// Usage:
//   dsteiner_cli --graph edges.txt --seeds 4,17,123 [options]
//   dsteiner_cli --dataset LVJ --num-seeds 100 [options]
//
// Options:
//   --graph PATH         edge list: "u v w" per line ('#' comments)
//   --dataset KEY        built-in mirror (WDC CLW UKW FRS LVJ PTN MCO CTS)
//   --seeds LIST         comma-separated vertex ids
//   --num-seeds N        select N seeds instead (BFS-level strategy)
//   --strategy NAME      bfs-level | uniform | eccentric | proximate
//   --ranks N            simulated MPI ranks (default 16)
//   --queue fifo|priority
//   --refine             apply key-path local search to the output
//   --certify            print a dual-ascent lower bound + certified ratio
//   --dot PATH           write the tree as Graphviz DOT
//   --quiet              suppress the phase table
#include <charconv>
#include <cstdio>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "baselines/dual_ascent.hpp"
#include "baselines/key_path_improvement.hpp"
#include "core/steiner_solver.hpp"
#include "graph/dot_export.hpp"
#include "graph/edge_list.hpp"
#include "io/dataset.hpp"
#include "seed/seed_select.hpp"
#include "util/format.hpp"
#include "util/timer.hpp"

namespace {

using namespace dsteiner;

[[noreturn]] void usage(const char* message) {
  if (message != nullptr) std::fprintf(stderr, "error: %s\n", message);
  std::fprintf(stderr,
               "usage: dsteiner_cli (--graph PATH | --dataset KEY)\n"
               "                    (--seeds a,b,c | --num-seeds N)\n"
               "                    [--strategy bfs-level|uniform|eccentric|proximate]\n"
               "                    [--ranks N] [--queue fifo|priority]\n"
               "                    [--refine] [--certify] [--dot PATH] [--quiet]\n");
  std::exit(2);
}

/// Strict numeric parsing: the whole string must be a base-10 number, no
/// partial prefixes ("4abc"), signs or empties — anything else is a usage
/// error, never a silent fallback to a default.
std::uint64_t parse_u64(const std::string& text, const char* flag) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() || text.empty()) {
    usage((std::string(flag) + " expects an unsigned integer, got '" + text +
           "'").c_str());
  }
  return value;
}

int parse_positive_int(const std::string& text, const char* flag) {
  const std::uint64_t value = parse_u64(text, flag);
  // No artificial upper bound: the paper's largest setup simulates 8192
  // ranks (512 nodes x 16) and the solver accepts any positive int.
  if (value == 0 || value > static_cast<std::uint64_t>(
                                std::numeric_limits<int>::max())) {
    usage((std::string(flag) + " must be a positive integer, got '" + text +
           "'").c_str());
  }
  return static_cast<int>(value);
}

std::vector<graph::vertex_id> parse_seed_list(const std::string& text) {
  std::vector<graph::vertex_id> seeds;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(',', begin);
    if (end == std::string::npos) end = text.size();
    seeds.push_back(parse_u64(text.substr(begin, end - begin), "--seeds"));
    begin = end + 1;
  }
  return seeds;
}

seed::seed_strategy parse_strategy(const std::string& name) {
  if (name == "bfs-level") return seed::seed_strategy::bfs_level;
  if (name == "uniform") return seed::seed_strategy::uniform_random;
  if (name == "eccentric") return seed::seed_strategy::eccentric;
  if (name == "proximate") return seed::seed_strategy::proximate;
  usage("unknown strategy");
}

}  // namespace

int run(int argc, char** argv) {
  std::optional<std::string> graph_path, dataset_key, seed_list, dot_path;
  std::size_t num_seeds = 0;
  seed::seed_strategy strategy = seed::seed_strategy::bfs_level;
  core::solver_config config;
  bool refine = false, certify = false, quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--graph") {
      graph_path = next();
    } else if (arg == "--dataset") {
      dataset_key = next();
    } else if (arg == "--seeds") {
      seed_list = next();
    } else if (arg == "--num-seeds") {
      num_seeds = parse_u64(next(), "--num-seeds");
    } else if (arg == "--strategy") {
      strategy = parse_strategy(next());
    } else if (arg == "--ranks") {
      config.num_ranks = parse_positive_int(next(), "--ranks");
    } else if (arg == "--queue") {
      const std::string q = next();
      if (q == "fifo") {
        config.policy = runtime::queue_policy::fifo;
      } else if (q == "priority") {
        config.policy = runtime::queue_policy::priority;
      } else {
        usage("unknown queue policy");
      }
    } else if (arg == "--refine") {
      refine = true;
    } else if (arg == "--certify") {
      certify = true;
    } else if (arg == "--dot") {
      dot_path = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      usage(("unknown option " + arg).c_str());
    }
  }
  if (graph_path.has_value() == dataset_key.has_value()) {
    usage("exactly one of --graph / --dataset is required");
  }
  if (seed_list.has_value() == (num_seeds > 0)) {
    usage("exactly one of --seeds / --num-seeds is required");
  }

  // Load the graph.
  util::timer load_timer;
  graph::csr_graph g;
  if (graph_path) {
    graph::edge_list edges = graph::edge_list::load_text(*graph_path);
    edges.symmetrize();
    g = graph::csr_graph(edges);
  } else {
    g = io::load_dataset(*dataset_key).graph;
  }
  std::fprintf(stderr, "loaded graph: %llu vertices, %llu arcs (%.2fs)\n",
               static_cast<unsigned long long>(g.num_vertices()),
               static_cast<unsigned long long>(g.num_arcs()),
               load_timer.seconds());

  // Assemble the seed set.
  std::vector<graph::vertex_id> seeds;
  if (seed_list) {
    seeds = parse_seed_list(*seed_list);
  } else {
    seeds = seed::select_seeds(g, num_seeds, strategy, 0xd5ee);
  }

  // Solve.
  config.validate = true;
  util::timer solve_timer;
  const auto result = core::solve_steiner_tree(g, seeds, config);
  std::printf("steiner tree: %zu edges, D(GS) = %llu  (%.3fs wall)\n",
              result.tree_edges.size(),
              static_cast<unsigned long long>(result.total_distance),
              solve_timer.seconds());

  if (!quiet) {
    util::table table({"phase", "messages", "sim time", "wall"});
    for (const auto& [name, m] : result.phases.by_name()) {
      table.add_row({name, util::with_commas(m.messages_total()),
                     util::format_duration(m.sim_seconds(config.costs)),
                     util::format_duration(m.wall_seconds)});
    }
    std::printf("%s", table.render().c_str());
  }

  std::vector<graph::weighted_edge> final_tree = result.tree_edges;
  graph::weight_t final_distance = result.total_distance;
  if (refine) {
    const auto improved =
        baselines::improve_steiner_tree(g, seeds, result.tree_edges);
    std::printf("refined: D(GS) %llu -> %llu (%llu exchanges, %.3fs)\n",
                static_cast<unsigned long long>(result.total_distance),
                static_cast<unsigned long long>(improved.total_distance),
                static_cast<unsigned long long>(improved.exchanges),
                improved.seconds);
    final_tree = improved.tree_edges;
    final_distance = improved.total_distance;
  }
  if (certify) {
    const auto lb = baselines::dual_ascent_lower_bound(g, seeds);
    std::printf(
        "dual-ascent lower bound: %llu  => certified ratio <= %.4f\n",
        static_cast<unsigned long long>(lb.lower_bound),
        static_cast<double>(final_distance) /
            static_cast<double>(lb.lower_bound));
  }
  if (dot_path) {
    graph::write_dot_file(*dot_path, final_tree, seeds);
    std::printf("wrote %s\n", dot_path->c_str());
  }
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
