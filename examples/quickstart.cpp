// Quickstart: build a small weighted graph, pick seed vertices, compute a
// 2-approximate Steiner minimal tree with the distributed solver, and print
// the per-phase breakdown.
//
//   $ ./quickstart
//
// The graph reproduces the flavour of the paper's Fig. 1: a nine-vertex
// network where three "entities of interest" (seeds 0, 2, 7) are connected
// through cheap relationship edges while direct connections are expensive.
#include <cstdio>

#include "core/steiner_solver.hpp"
#include "core/validation.hpp"
#include "graph/edge_list.hpp"
#include "util/format.hpp"

int main() {
  using namespace dsteiner;

  // 1. Assemble the weighted graph (undirected edges, weight = distance).
  graph::edge_list edges;
  edges.add_undirected_edge(0, 1, 2);
  edges.add_undirected_edge(1, 2, 4);
  edges.add_undirected_edge(0, 3, 2);
  edges.add_undirected_edge(1, 4, 1);
  edges.add_undirected_edge(2, 5, 1);
  edges.add_undirected_edge(3, 4, 2);
  edges.add_undirected_edge(4, 5, 2);
  edges.add_undirected_edge(3, 6, 16);
  edges.add_undirected_edge(4, 7, 20);
  edges.add_undirected_edge(5, 8, 24);
  edges.add_undirected_edge(6, 7, 18);
  edges.add_undirected_edge(7, 8, 1);
  const graph::csr_graph g(edges);

  // 2. Seeds: the vertices whose relationships we want explained.
  const std::vector<graph::vertex_id> seeds{0, 2, 7};

  // 3. Solve. The config mirrors the paper's single-node setup: 16 simulated
  //    MPI ranks, asynchronous processing, priority message queue.
  core::solver_config config;
  config.num_ranks = 16;
  config.validate = true;  // assert the output is a valid Steiner tree
  const core::steiner_result result = core::solve_steiner_tree(g, seeds, config);

  // 4. Inspect the tree.
  std::printf("Steiner tree for seeds {0, 2, 7}:\n");
  for (const auto& e : result.tree_edges) {
    std::printf("  (%llu, %llu)  distance %llu\n",
                static_cast<unsigned long long>(e.source),
                static_cast<unsigned long long>(e.target),
                static_cast<unsigned long long>(e.weight));
  }
  std::printf("total distance D(GS) = %llu\n",
              static_cast<unsigned long long>(result.total_distance));

  // 5. Phase breakdown (the paper's stacked-bar decomposition).
  std::printf("\nphase breakdown:\n");
  util::table table({"phase", "messages", "sim time", "wall"});
  for (const auto& [name, m] : result.phases.by_name()) {
    table.add_row({name, util::with_commas(m.messages_total()),
                   util::format_duration(m.sim_seconds(config.costs)),
                   util::format_duration(m.wall_seconds)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
