// Rectilinear net routing on a VLSI-style grid — the classic Steiner tree
// application the paper cites first ([4], [5]: class Steiner trees and VLSI
// design, wirelength estimation for placement).
//
// Pins of a net sit on a routing grid; wire cost is per-segment (here:
// congestion-weighted). The Steiner tree is the minimum-wirelength routing.
// The demo prints an ASCII rendering of the routed net, compares the
// distributed solver against the Takahashi-Matsuyama heuristic, and — for
// small pin counts — against the exact optimum.
//
//   $ ./vlsi_grid [rows cols pins]    (default 16 32 7)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_set>
#include <vector>

#include "baselines/exact.hpp"
#include "baselines/takahashi.hpp"
#include "core/steiner_solver.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

namespace {

using namespace dsteiner;

void render_ascii(graph::vertex_id rows, graph::vertex_id cols,
                  const std::vector<graph::weighted_edge>& tree,
                  const std::vector<graph::vertex_id>& pins) {
  // Character canvas: cells at (2r, 2c), wires between them.
  std::vector<std::string> canvas(2 * rows - 1, std::string(2 * cols - 1, ' '));
  for (graph::vertex_id r = 0; r < rows; ++r) {
    for (graph::vertex_id c = 0; c < cols; ++c) canvas[2 * r][2 * c] = '.';
  }
  std::unordered_set<graph::vertex_id> on_net;
  for (const auto& e : tree) {
    on_net.insert(e.source);
    on_net.insert(e.target);
    const auto r1 = e.source / cols, c1 = e.source % cols;
    const auto r2 = e.target / cols, c2 = e.target % cols;
    if (r1 == r2) {
      canvas[2 * r1][2 * std::min(c1, c2) + 1] = '-';
    } else {
      canvas[2 * std::min(r1, r2) + 1][2 * c1] = '|';
    }
  }
  for (const auto v : on_net) canvas[2 * (v / cols)][2 * (v % cols)] = '+';
  for (const auto p : pins) canvas[2 * (p / cols)][2 * (p % cols)] = 'O';
  for (const auto& line : canvas) std::printf("  %s\n", line.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsteiner;
  const graph::vertex_id rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16;
  const graph::vertex_id cols = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 32;
  const std::size_t pins = argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 7;

  // Routing grid with congestion weights: a hot region in the middle makes
  // straight-through routing expensive.
  graph::edge_list grid = graph::generate_grid(rows, cols);
  for (auto& e : grid.edges()) {
    const auto r = (e.source / cols + e.target / cols) / 2;
    const auto c = (e.source % cols + e.target % cols) / 2;
    const bool hot = r > rows / 3 && r < 2 * rows / 3 && c > cols / 3 &&
                     c < 2 * cols / 3;
    e.weight = hot ? 6 : 2;
  }
  const graph::csr_graph g(grid);

  // Random pin placement.
  util::rng gen(4242);
  const auto picks =
      util::sample_without_replacement(g.num_vertices(), pins, gen);
  const std::vector<graph::vertex_id> pin_list(picks.begin(), picks.end());

  core::solver_config config;
  config.num_ranks = 8;
  config.validate = true;
  const auto routed = core::solve_steiner_tree(g, pin_list, config);
  const auto heuristic = baselines::takahashi_steiner_tree(g, pin_list);

  std::printf("net with %zu pins on a %llux%llu grid\n", pins,
              static_cast<unsigned long long>(rows),
              static_cast<unsigned long long>(cols));
  std::printf("  dsteiner wirelength cost : %llu (%zu segments)\n",
              static_cast<unsigned long long>(routed.total_distance),
              routed.tree_edges.size());
  std::printf("  Takahashi-Matsuyama cost : %llu (%zu segments)\n",
              static_cast<unsigned long long>(heuristic.total_distance),
              heuristic.tree_edges.size());
  if (pins <= 10) {
    const auto exact = baselines::exact_steiner_tree(g, pin_list);
    std::printf("  exact optimum            : %llu  (dsteiner ratio %.4f)\n",
                static_cast<unsigned long long>(exact.optimal_distance),
                static_cast<double>(routed.total_distance) /
                    static_cast<double>(exact.optimal_distance));
  }
  std::printf("\nrouted net (O = pin, + = Steiner point, -| = wire):\n");
  render_ascii(rows, cols, routed.tree_edges, pin_list);
  return 0;
}
