// Knowledge-network exploration — the paper's motivating use case (§I).
//
// A network scientist holds a large knowledge graph and a handful of seed
// entities, and wants the subgraph that best explains how they relate. The
// interactive loop the paper describes ("the user adding or removing classes
// of edges ... and adjusting edge distance functions based on investigating
// the output") is scripted here:
//
//   round 1: Steiner tree over the full graph
//   round 2: the user distrusts weak relationships - drop the heaviest 25%
//            of edges and recompute
//   round 3: the user asks for more compute - rerun round 2 at 4x the ranks
//            and compare the time-to-solution model
//
//   $ ./knowledge_explorer [num_seeds]    (default 40)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/steiner_solver.hpp"
#include "graph/generators.hpp"
#include "io/dataset.hpp"
#include "seed/seed_select.hpp"
#include "util/format.hpp"
#include "util/timer.hpp"

namespace {

using namespace dsteiner;

void report(const char* label, const core::steiner_result& result,
            const core::solver_config& config) {
  const auto total = result.phases.total();
  std::printf(
      "%-28s |S|=%-4zu tree edges=%-6zu D(GS)=%-10llu messages=%-12s sim "
      "time=%s\n",
      label, result.num_seeds, result.tree_edges.size(),
      static_cast<unsigned long long>(result.total_distance),
      util::format_count(static_cast<double>(total.messages_total())).c_str(),
      util::format_duration(total.sim_seconds(config.costs)).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsteiner;
  const std::size_t num_seeds =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 40;

  // The LiveJournal mirror stands in for a social knowledge network.
  std::printf("loading LVJ-mini knowledge graph...\n");
  const io::dataset ds = io::load_dataset("LVJ");
  std::printf("graph: %llu vertices, %llu arcs\n\n",
              static_cast<unsigned long long>(ds.graph.num_vertices()),
              static_cast<unsigned long long>(ds.graph.num_arcs()));

  const auto seeds = seed::select_seeds(ds.graph, num_seeds,
                                        seed::seed_strategy::bfs_level, 2024);

  core::solver_config config;
  config.num_ranks = 16;

  // Round 1: full graph.
  util::timer wall;
  auto round1 = core::solve_steiner_tree(ds.graph, seeds, config);
  report("round 1 (full graph)", round1, config);

  // Round 2: the analyst removes weak relationships (the heaviest quartile).
  // Rebuild the graph without them; seeds may lose connectivity, so allow a
  // forest and report what remains connected.
  graph::edge_list filtered;
  filtered.set_num_vertices(ds.graph.num_vertices());
  const graph::weight_t cutoff =
      ds.spec.weight_lo + (ds.spec.weight_hi - ds.spec.weight_lo) * 3 / 4;
  for (graph::vertex_id u = 0; u < ds.graph.num_vertices(); ++u) {
    const auto nbrs = ds.graph.neighbors(u);
    const auto wts = ds.graph.weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (u < nbrs[i] && wts[i] <= cutoff) {
        filtered.add_undirected_edge(u, nbrs[i], wts[i]);
      }
    }
  }
  const graph::csr_graph filtered_graph(filtered);
  core::solver_config forest_config = config;
  forest_config.allow_disconnected_seeds = true;
  auto round2 = core::solve_steiner_tree(filtered_graph, seeds, forest_config);
  report("round 2 (weak edges cut)", round2, forest_config);
  if (!round2.spans_all_seeds) {
    std::printf(
        "  note: removing weak edges disconnected some seeds; a Steiner "
        "forest was returned\n");
  }

  // Round 3: strong-scaling request — same query, 4x the ranks.
  core::solver_config big_config = forest_config;
  big_config.num_ranks = 64;
  auto round3 = core::solve_steiner_tree(filtered_graph, seeds, big_config);
  report("round 3 (64 ranks)", round3, big_config);
  const double speedup =
      round2.phases.total().sim_units / round3.phases.total().sim_units;
  std::printf("  simulated speedup from 16 -> 64 ranks: %.2fx\n", speedup);
  std::printf("\ntotal wall time: %s\n",
              util::format_duration(wall.seconds()).c_str());
  return 0;
}
