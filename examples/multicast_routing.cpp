// Multicast tree construction in a communication network — one of the
// paper's cited application domains ([6], [7]: approximate Steiner trees for
// multicast in networks).
//
// A small-world router network carries link latencies as edge weights. A
// multicast group (source + subscribers) is the seed set; the Steiner tree
// is the multicast distribution tree. We compare its cost against the naive
// union of unicast shortest paths from the source and write both to DOT.
//
//   $ ./multicast_routing [group_size]    (default 12)
#include <cstdio>
#include <cstdlib>
#include <unordered_set>

#include "baselines/baseline_util.hpp"
#include "core/steiner_solver.hpp"
#include "graph/dijkstra.hpp"
#include "graph/dot_export.hpp"
#include "graph/generators.hpp"
#include "seed/seed_select.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace dsteiner;
  const std::size_t group_size =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 12;

  // Router fabric: Watts-Strogatz small world, latencies 1-100 (e.g. us).
  graph::edge_list topo = graph::generate_watts_strogatz(2000, 4, 0.08, 7);
  graph::assign_uniform_weights(topo, 1, 100, 13);
  const graph::csr_graph network(topo);
  std::printf("network: %llu routers, %llu links\n",
              static_cast<unsigned long long>(network.num_vertices()),
              static_cast<unsigned long long>(network.num_arcs() / 2));

  // Multicast group: far-apart members stress the tree the most.
  const auto group = seed::select_seeds(network, group_size,
                                        seed::seed_strategy::eccentric, 99);
  const graph::vertex_id source = group.front();

  // Steiner multicast tree.
  core::solver_config config;
  config.num_ranks = 8;
  config.validate = true;
  const auto steiner = core::solve_steiner_tree(network, group, config);

  // Baseline: union of unicast shortest paths source -> each subscriber.
  const auto sp = graph::dijkstra(network, source);
  baselines::edge_set unicast_union;
  for (const graph::vertex_id member : group) {
    graph::vertex_id v = member;
    while (v != source) {
      const graph::vertex_id p = sp.parent[v];
      unicast_union.insert(p, v, sp.distance[v] - sp.distance[p]);
      v = p;
    }
  }
  graph::weight_t unicast_cost = 0;
  for (const auto& e : unicast_union.edges()) unicast_cost += e.weight;

  std::printf("\nmulticast group size: %zu (source router %llu)\n",
              group.size(), static_cast<unsigned long long>(source));
  std::printf("steiner multicast tree : %zu links, total latency-cost %llu\n",
              steiner.tree_edges.size(),
              static_cast<unsigned long long>(steiner.total_distance));
  std::printf("unicast shortest-path union: %zu links, total latency-cost %llu\n",
              unicast_union.size(),
              static_cast<unsigned long long>(unicast_cost));
  std::printf("bandwidth saving from Steiner tree: %.1f%%\n",
              100.0 * (1.0 - static_cast<double>(steiner.total_distance) /
                                 static_cast<double>(unicast_cost)));

  graph::write_dot_file("multicast_steiner.dot", steiner.tree_edges, group);
  graph::write_dot_file("multicast_unicast_union.dot",
                        unicast_union.edges(), group);
  std::printf(
      "\nwrote multicast_steiner.dot and multicast_unicast_union.dot\n"
      "(render with: dot -Tsvg multicast_steiner.dot -o tree.svg)\n");
  return 0;
}
