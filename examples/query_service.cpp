// query_service — the multi-user serving workflow on top of the Steiner
// query service (src/service/).
//
// Simulates the paper's §I interactive-exploration scenario at serving
// scale: several "analysts" issue queries against one shared graph —
//   - hot queries: the same seed sets re-requested again and again
//     (dashboards, page reloads)            -> result-cache hits;
//   - edit sessions: a seed set evolving by small add/remove deltas
//     (interactive refinement)              -> warm-start repairs;
//   - cold queries: fresh seed sets         -> full Alg. 3 solves.
//
// After the mixed workload, an "analyst" reweights a handful of edges: the
// service derives a graph *epoch* instead of rebuilding — the hot seed sets
// then warm-start through the edge-delta repair while the previous epoch's
// cached trees keep serving stale-tolerant readers.
//
// Every query returns a tree bit-identical to a cold solve of its epoch; the
// printout shows how much latency each path saved.
//
//   $ ./query_service [--metrics-text]
//
//   --metrics-text   additionally print the Prometheus text exposition of
//                    steiner_service::snapshot() (what a scrape endpoint
//                    would serve)
#include <cstdio>
#include <cstring>
#include <future>
#include <vector>

#include "io/dataset.hpp"
#include "seed/seed_select.hpp"
#include "service/metrics_text.hpp"
#include "service/steiner_service.hpp"
#include "util/format.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace dsteiner;

  bool metrics_text = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-text") == 0) {
      metrics_text = true;
    } else {
      std::fprintf(stderr, "usage: %s [--metrics-text]\n", argv[0]);
      return 2;
    }
  }

  // One shared graph: the CiteSeer mirror (smallest Table III dataset).
  const io::dataset data = io::load_dataset("CTS");
  std::printf("graph: %s mirror, %llu vertices, %llu arcs\n",
              data.spec.paper_name.c_str(),
              static_cast<unsigned long long>(data.graph.num_vertices()),
              static_cast<unsigned long long>(data.graph.num_arcs()));

  service::service_config config;
  config.exec.num_threads = 4;
  config.exec.queue_capacity = 128;
  config.solver.num_ranks = 8;
  // Edit deltas may pick seeds outside the largest component; serve forests
  // rather than failing the query (the interactive sessions do the same).
  config.solver.allow_disconnected_seeds = true;
  // Stale-tolerant readers may take the previous epoch's cached tree while
  // the new epoch warms up.
  config.max_stale_epochs = 1;
  service::steiner_service svc(data.graph, config);

  // Three analysts start from different seed sets.
  std::vector<std::vector<graph::vertex_id>> base_sets;
  for (std::uint64_t analyst = 0; analyst < 3; ++analyst) {
    base_sets.push_back(seed::select_seeds(
        svc.graph(), 12, seed::seed_strategy::bfs_level, 0x5eed + analyst));
  }

  // Mixed workload: per analyst, one cold query, three hot repeats, then an
  // edit session of four single-seed deltas (each re-queried twice).
  std::vector<service::query> workload;
  for (const auto& base : base_sets) {
    service::query q;
    q.seeds = base;
    workload.push_back(q);                        // cold
    for (int hot = 0; hot < 3; ++hot) workload.push_back(q);  // cache hits

    service::query edit = q;
    for (std::uint64_t step = 0; step < 4; ++step) {
      if (step % 2 == 0) {
        edit.seeds.push_back((base.front() + 101 * (step + 1)) %
                             svc.graph().num_vertices());
      } else {
        edit.seeds.pop_back();
        edit.seeds.erase(edit.seeds.begin());
      }
      workload.push_back(edit);                   // warm-start repair
      workload.push_back(edit);                   // immediate re-query: hit
    }
  }

  std::printf("submitting %zu queries over %zu worker threads...\n\n",
              workload.size(), config.exec.num_threads);
  util::timer wall;
  std::vector<std::future<service::query_result>> futures;
  futures.reserve(workload.size());
  for (auto& q : workload) futures.push_back(svc.submit(q));

  util::table table({"id", "path", "epoch", "|S|", "tree edges", "D(GS)",
                     "queue wait", "solve", "total"});
  const auto add_result = [&table](const service::query_result& qr) {
    table.add_row({std::to_string(qr.query_id), to_string(qr.kind),
                   std::to_string(qr.epoch),
                   std::to_string(qr.result.num_seeds),
                   std::to_string(qr.result.tree_edges.size()),
                   util::with_commas(qr.result.total_distance),
                   util::format_duration(qr.queue_wait_seconds),
                   util::format_duration(qr.solve_seconds),
                   util::format_duration(qr.total_seconds)});
  };
  for (auto& f : futures) add_result(f.get());

  // Graph mutation: reweight a few edges touching the first analyst's seeds.
  // advance_epoch derives a copy-on-write epoch — no service rebuild, no
  // cache flush. The re-issued hot set warm-starts via the edge-delta repair
  // (or serves the old epoch's tree to stale-tolerant readers first).
  graph::edge_delta delta;
  for (std::size_t i = 0; i < 3 && i < base_sets.front().size(); ++i) {
    const graph::vertex_id u = base_sets.front()[i];
    const auto nbrs = svc.graph().neighbors(u);
    const auto wts = svc.graph().weights(u);
    if (nbrs.empty()) continue;
    delta.edits.push_back(
        graph::edge_edit::reweight(u, nbrs.front(), wts.front() + 5));
  }
  const std::uint64_t epoch = svc.advance_epoch(delta);
  std::printf("advanced to epoch %llu (%zu edge edits)...\n",
              static_cast<unsigned long long>(epoch), delta.size());
  for (const auto& base : base_sets) {
    service::query q;
    q.seeds = base;
    add_result(svc.solve(q));  // stale hit (epoch-1 tree) + background refresh
    q.allow_stale = false;
    add_result(svc.solve(q));  // current epoch: edge-warm repair or coalesce
  }
  std::printf("%s\n", table.render().c_str());

  const auto snap = svc.snapshot();
  const auto& stats = snap.stats;
  std::printf("completed %llu queries in %s\n",
              static_cast<unsigned long long>(stats.queries),
              util::format_duration(wall.seconds()).c_str());
  std::printf("  cold solves : %llu\n",
              static_cast<unsigned long long>(stats.cold_solves));
  std::printf("  warm starts : %llu  (%llu across epochs)\n",
              static_cast<unsigned long long>(stats.warm_solves),
              static_cast<unsigned long long>(stats.edge_warm_solves));
  std::printf("  stale hits  : %llu  (previous-epoch trees, refreshed behind)\n",
              static_cast<unsigned long long>(stats.stale_hits));
  std::printf("  coalesced   : %llu  (waited on an identical in-flight query)\n",
              static_cast<unsigned long long>(stats.coalesced));
  std::printf("  cache hits  : %llu  (cache: %llu hits / %llu misses, "
              "%zu entries, %llu evictions)\n",
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.misses),
              stats.cache.entries,
              static_cast<unsigned long long>(stats.cache.evictions));
  std::printf("  executor    : peak queue depth %llu, max queue wait %s\n",
              static_cast<unsigned long long>(stats.exec.peak_queue_depth),
              util::format_duration(stats.exec.max_queue_wait_seconds).c_str());

  // Per-stage latency histograms from the metrics snapshot: what a scraping
  // dashboard would chart (log2 buckets; quantiles are bucket estimates).
  std::printf("\nlatency snapshot (service::snapshot()):\n");
  util::table latency({"stage", "samples", "mean", "p50", "p90", "p99"});
  const auto add_stage = [&latency](const char* name,
                                    const service::latency_histogram::
                                        snapshot_data& h) {
    latency.add_row({name, std::to_string(h.count),
                     util::format_duration(h.mean()),
                     util::format_duration(h.quantile(0.50)),
                     util::format_duration(h.quantile(0.90)),
                     util::format_duration(h.quantile(0.99))});
  };
  add_stage("queue wait", snap.queue_wait);
  add_stage("cold solve", snap.cold_solve);
  add_stage("warm solve", snap.warm_solve);
  add_stage("cache hit (total)", snap.cache_hit_total);
  add_stage("total (all paths)", snap.total);
  std::printf("%s", latency.render().c_str());

  if (metrics_text) {
    std::printf("\n# ---- Prometheus text exposition (scrape endpoint body) ----\n");
    std::printf("%s", service::render_metrics_text(svc.snapshot()).c_str());
  }
  return 0;
}
