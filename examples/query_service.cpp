// query_service — the multi-user serving workflow on top of the Steiner
// query service (src/service/).
//
// Simulates the paper's §I interactive-exploration scenario at serving
// scale: several "analysts" issue queries against one shared graph —
//   - hot queries: the same seed sets re-requested again and again
//     (dashboards, page reloads)            -> result-cache hits;
//   - edit sessions: a seed set evolving by small add/remove deltas
//     (interactive refinement)              -> warm-start repairs;
//   - cold queries: fresh seed sets         -> full Alg. 3 solves.
//
// After the mixed workload, an "analyst" reweights a handful of edges: the
// service derives a graph *epoch* instead of rebuilding — the hot seed sets
// then warm-start through the edge-delta repair while the previous epoch's
// cached trees keep serving stale-tolerant readers.
//
// Every query returns a tree bit-identical to a cold solve of its epoch; the
// printout shows how much latency each path saved.
//
// Queries go through the request/handle API — submit(request) returns a
// query_handle with cancel()/status()/poll()/get() — with hot dashboards at
// interactive priority and edit sessions at batch. A final QoS vignette
// cancels an abandoned query mid-solve and bounds one with a deadline, the
// §I behaviours a bare future cannot express.
//
//   $ ./query_service [--metrics-text]
//
//   --metrics-text   additionally print the Prometheus text exposition of
//                    steiner_service::snapshot() (what a scrape endpoint
//                    would serve)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "io/dataset.hpp"
#include "seed/seed_select.hpp"
#include "service/metrics_text.hpp"
#include "service/steiner_service.hpp"
#include "util/cancellation.hpp"
#include "util/format.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace dsteiner;

  bool metrics_text = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-text") == 0) {
      metrics_text = true;
    } else {
      std::fprintf(stderr, "usage: %s [--metrics-text]\n", argv[0]);
      return 2;
    }
  }

  // One shared graph: the CiteSeer mirror (smallest Table III dataset).
  const io::dataset data = io::load_dataset("CTS");
  std::printf("graph: %s mirror, %llu vertices, %llu arcs\n",
              data.spec.paper_name.c_str(),
              static_cast<unsigned long long>(data.graph.num_vertices()),
              static_cast<unsigned long long>(data.graph.num_arcs()));

  service::service_config config;
  config.exec.num_threads = 4;
  config.exec.queue_capacity = 128;
  config.solver.num_ranks = 8;
  // Edit deltas may pick seeds outside the largest component; serve forests
  // rather than failing the query (the interactive sessions do the same).
  config.solver.allow_disconnected_seeds = true;
  // Stale-tolerant readers may take the previous epoch's cached tree while
  // the new epoch warms up.
  config.max_stale_epochs = 1;
  service::steiner_service svc(data.graph, config);

  // Three analysts start from different seed sets.
  std::vector<std::vector<graph::vertex_id>> base_sets;
  for (std::uint64_t analyst = 0; analyst < 3; ++analyst) {
    base_sets.push_back(seed::select_seeds(
        svc.graph(), 12, seed::seed_strategy::bfs_level, 0x5eed + analyst));
  }

  // Mixed workload: per analyst, one cold query, three hot repeats (the
  // dashboard — interactive priority), then an edit session of four
  // single-seed deltas, each re-queried twice (refinement — batch priority).
  std::vector<service::request> workload;
  for (const auto& base : base_sets) {
    service::request r;
    r.q.seeds = base;
    workload.push_back(r);                        // cold
    for (int hot = 0; hot < 3; ++hot) workload.push_back(r);  // cache hits

    service::request edit = r;
    edit.priority = service::priority_class::batch;
    for (std::uint64_t step = 0; step < 4; ++step) {
      if (step % 2 == 0) {
        edit.q.seeds.push_back((base.front() + 101 * (step + 1)) %
                               svc.graph().num_vertices());
      } else {
        edit.q.seeds.pop_back();
        edit.q.seeds.erase(edit.q.seeds.begin());
      }
      workload.push_back(edit);                   // warm-start repair
      workload.push_back(edit);                   // immediate re-query: hit
    }
  }

  std::printf("submitting %zu requests over %zu worker threads...\n\n",
              workload.size(), config.exec.num_threads);
  util::timer wall;
  std::vector<service::query_handle> handles;
  handles.reserve(workload.size());
  for (auto& r : workload) handles.push_back(svc.submit(r));

  util::table table({"id", "path", "epoch", "|S|", "tree edges", "D(GS)",
                     "queue wait", "solve", "total"});
  const auto add_result = [&table](const service::query_result& qr) {
    table.add_row({std::to_string(qr.query_id), to_string(qr.kind),
                   std::to_string(qr.epoch),
                   std::to_string(qr.result.num_seeds),
                   std::to_string(qr.result.tree_edges.size()),
                   util::with_commas(qr.result.total_distance),
                   util::format_duration(qr.queue_wait_seconds),
                   util::format_duration(qr.solve_seconds),
                   util::format_duration(qr.total_seconds)});
  };
  for (auto& h : handles) add_result(h.get());

  // Graph mutation: reweight a few edges touching the first analyst's seeds.
  // advance_epoch derives a copy-on-write epoch — no service rebuild, no
  // cache flush. The re-issued hot set warm-starts via the edge-delta repair
  // (or serves the old epoch's tree to stale-tolerant readers first).
  graph::edge_delta delta;
  for (std::size_t i = 0; i < 3 && i < base_sets.front().size(); ++i) {
    const graph::vertex_id u = base_sets.front()[i];
    const auto nbrs = svc.graph().neighbors(u);
    const auto wts = svc.graph().weights(u);
    if (nbrs.empty()) continue;
    delta.edits.push_back(
        graph::edge_edit::reweight(u, nbrs.front(), wts.front() + 5));
  }
  const std::uint64_t epoch = svc.advance_epoch(delta);
  std::printf("advanced to epoch %llu (%zu edge edits)...\n",
              static_cast<unsigned long long>(epoch), delta.size());
  for (const auto& base : base_sets) {
    service::request r;
    r.q.seeds = base;
    add_result(svc.solve(r));  // stale hit (epoch-1 tree) + background refresh
    r.q.allow_stale = false;
    add_result(svc.solve(r));  // current epoch: edge-warm repair or coalesce
  }
  std::printf("%s\n", table.render().c_str());

  // QoS vignette: the §I analyst abandons a query (cancel mid-solve) and
  // bounds another in time. Both stop the solver at a cooperative
  // checkpoint — no worker is left burning on abandoned work.
  {
    using namespace std::chrono_literals;
    service::request abandoned;
    abandoned.q.seeds = seed::select_seeds(svc.graph(), 14,
                                           seed::seed_strategy::bfs_level,
                                           0xabad);
    abandoned.q.use_cache = false;
    service::query_handle h = svc.submit(abandoned);
    (void)h.cancel();
    try {
      (void)h.get();
    } catch (const util::operation_cancelled&) {
      std::printf("abandoned query -> %s\n", to_string(h.status()));
    }

    service::request bounded;
    bounded.q.seeds = seed::select_seeds(svc.graph(), 14,
                                         seed::seed_strategy::bfs_level,
                                         0xb0b0);
    bounded.q.use_cache = false;
    bounded.deadline = std::chrono::steady_clock::now() + 50ms;
    service::query_handle b = svc.submit(bounded);
    try {
      const auto qr = b.get();
      std::printf("deadline-bound query -> done in %s\n",
                  util::format_duration(qr.total_seconds).c_str());
    } catch (const service::request_rejected&) {
      std::printf("deadline-bound query -> rejected (unmeetable)\n");
    } catch (const util::operation_cancelled&) {
      std::printf("deadline-bound query -> %s\n", to_string(b.status()));
    }
    std::printf("\n");
  }

  const auto snap = svc.snapshot();
  const auto& stats = snap.stats;
  std::printf("completed %llu queries in %s\n",
              static_cast<unsigned long long>(stats.queries),
              util::format_duration(wall.seconds()).c_str());
  std::printf("  qos         : %llu cancelled, %llu deadline-expired, "
              "%llu deadline-rejected\n",
              static_cast<unsigned long long>(stats.cancelled),
              static_cast<unsigned long long>(stats.deadline_expired),
              static_cast<unsigned long long>(stats.deadline_rejected));
  std::printf("  admitted    : %llu interactive / %llu batch / %llu background"
              " (refreshes: %llu, deduped %llu)\n",
              static_cast<unsigned long long>(stats.admitted_by_priority[0]),
              static_cast<unsigned long long>(stats.admitted_by_priority[1]),
              static_cast<unsigned long long>(stats.admitted_by_priority[2]),
              static_cast<unsigned long long>(stats.stale_refreshes),
              static_cast<unsigned long long>(stats.stale_refreshes_deduped));
  std::printf("  cold solves : %llu\n",
              static_cast<unsigned long long>(stats.cold_solves));
  std::printf("  warm starts : %llu  (%llu across epochs)\n",
              static_cast<unsigned long long>(stats.warm_solves),
              static_cast<unsigned long long>(stats.edge_warm_solves));
  std::printf("  stale hits  : %llu  (previous-epoch trees, refreshed behind)\n",
              static_cast<unsigned long long>(stats.stale_hits));
  std::printf("  coalesced   : %llu  (waited on an identical in-flight query)\n",
              static_cast<unsigned long long>(stats.coalesced));
  std::printf("  cache hits  : %llu  (cache: %llu hits / %llu misses, "
              "%zu entries, %llu evictions)\n",
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.misses),
              stats.cache.entries,
              static_cast<unsigned long long>(stats.cache.evictions));
  std::printf("  executor    : peak queue depth %llu, max queue wait %s\n",
              static_cast<unsigned long long>(stats.exec.peak_queue_depth),
              util::format_duration(stats.exec.max_queue_wait_seconds).c_str());

  // Per-stage latency histograms from the metrics snapshot: what a scraping
  // dashboard would chart (log2 buckets; quantiles are bucket estimates).
  std::printf("\nlatency snapshot (service::snapshot()):\n");
  util::table latency({"stage", "samples", "mean", "p50", "p90", "p99"});
  const auto add_stage = [&latency](const char* name,
                                    const service::latency_histogram::
                                        snapshot_data& h) {
    latency.add_row({name, std::to_string(h.count),
                     util::format_duration(h.mean()),
                     util::format_duration(h.quantile(0.50)),
                     util::format_duration(h.quantile(0.90)),
                     util::format_duration(h.quantile(0.99))});
  };
  add_stage("queue wait", snap.queue_wait);
  add_stage("cold solve", snap.cold_solve);
  add_stage("warm solve", snap.warm_solve);
  add_stage("cache hit (total)", snap.cache_hit_total);
  add_stage("total (all paths)", snap.total);
  std::printf("%s", latency.render().c_str());

  if (metrics_text) {
    std::printf("\n# ---- Prometheus text exposition (scrape endpoint body) ----\n");
    std::printf("%s", service::render_metrics_text(svc.snapshot()).c_str());
  }
  return 0;
}
