// Fig. 8: cluster-wide peak memory usage split into the in-memory graph vs
// algorithm state (vertex states, queues, EN/collective buffers), for
// |S| = 1000 and the largest supported sweep point, on LVJ, CLW and WDC.
//
// The paper's observations to reproduce: (i) on the small LVJ, algorithm
// state dominates the graph; (ii) the jump from 1K to 10K seeds is driven by
// the MPI collective buffer over EN (dense (|S| choose 2) items); (iii)
// chunked collectives cut the buffer peak at some runtime cost (§V-F).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace dsteiner;
  bench::print_header(
      "Fig. 8: peak memory, graph vs algorithm state",
      "paper Fig. 8 (+ §V-F chunking note)",
      "Paper: LVJ |S|=10K algorithm state 35.9x that of |S|=1K; dense EN\n"
      "buffer drives the increase. Sweep point scaled 10K -> 2K (dense\n"
      "buffers are quadratic in |S|).");

  util::table table({"graph", "|S|", "EN mode", "graph mem", "state", "queues",
                     "EN+G'1", "coll. buffer", "algo total"});
  for (const char* key : {"LVJ", "CLW", "WDC"}) {
    const auto ds = io::load_dataset(key);
    for (const std::size_t s : {1000u, 2000u}) {
      for (const bool chunked : {false, true}) {
        core::solver_config config;
        config.dense_distance_graph = true;  // the paper's representation
        config.allreduce_chunk_items = chunked ? 100000 : 0;
        const auto seeds = bench::default_seeds(ds.graph, s);
        const auto result = core::solve_steiner_tree(ds.graph, seeds, config);
        const auto& mem = result.memory;
        table.add_row(
            {std::string(key) + "-mini", std::to_string(s),
             chunked ? "chunked 100K" : "monolithic",
             util::format_bytes(mem.graph_bytes),
             util::format_bytes(mem.state_bytes + mem.partition_bytes),
             util::format_bytes(mem.queue_peak_bytes),
             util::format_bytes(mem.distance_graph_bytes),
             util::format_bytes(mem.collective_buffer_bytes),
             util::format_bytes(mem.algorithm_bytes())});
      }
    }
    table.add_rule();
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Shape check: quadrupling (|S| choose 2) from 1K to 2K seeds grows the\n"
      "dense EN/collective buffers ~4x while the graph is constant; chunked\n"
      "collectives cap the per-call buffer at the chunk size — the paper's\n"
      "memory/runtime trade-off.\n");
  return 0;
}
