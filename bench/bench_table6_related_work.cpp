// Table VI: runtime comparison between our distributed solution (16 ranks,
// one machine) and related work — the exact solver (paper: SCIP-Jack;
// here: Dreyfus-Wagner DP), and the sequential 2-approximations WWW and
// Mehlhorn — on the four smallest graphs x |S| in {10, 100, 1000}.
//
// The exact column is only tractable at |S|=10 (the DP is exponential in
// |S|; SCIP-Jack itself needed 45.8m-1h at |S|=1000). The Takahashi
// heuristic is included as an extra reference point.
//
// Shape to reproduce: the exact solver is orders of magnitude slower than
// every approximation; our distributed solution beats Mehlhorn and WWW on
// the larger LVJ/PTN while work-efficient sequential code wins on the tiny
// CTS/MCO.
#include <cstdio>

#include "baselines/exact.hpp"
#include "baselines/mehlhorn.hpp"
#include "baselines/takahashi.hpp"
#include "baselines/www.hpp"
#include "bench_common.hpp"

int main() {
  using namespace dsteiner;
  bench::print_header(
      "Table VI: runtime vs related work",
      "paper Table VI",
      "S = exact DP (SCIP-Jack substitute), W = WWW, M = Mehlhorn,\n"
      "T = Takahashi-Matsuyama, D = ours (16 simulated ranks; sim | wall).");

  util::table table({"graph", "|S|", "S (exact)", "W", "M", "T",
                     "D sim", "D wall", "D msgs"});
  for (const char* key : {"LVJ", "PTN", "MCO", "CTS"}) {
    const auto ds = io::load_dataset(key);
    for (const std::size_t s : {10u, 100u, 1000u}) {
      std::vector<graph::vertex_id> seeds;
      try {
        seeds = bench::default_seeds(ds.graph, s);
      } catch (const std::invalid_argument&) {
        table.add_row({std::string(key) + "-mini", std::to_string(s), "N/A"});
        continue;
      }

      std::string exact_cell = "-";
      if (s == 10) {
        baselines::exact_options options;
        options.reconstruct = false;
        const auto exact = baselines::exact_steiner_tree(ds.graph, seeds, options);
        exact_cell = util::format_duration(exact.seconds);
      }
      const auto www = baselines::www_steiner_tree(ds.graph, seeds);
      const auto mehlhorn = baselines::mehlhorn_steiner_tree(ds.graph, seeds);
      const auto takahashi = baselines::takahashi_steiner_tree(ds.graph, seeds);

      core::solver_config config;  // 16 ranks, priority, async — paper setup
      util::timer wall;
      const auto ours = core::solve_steiner_tree(ds.graph, seeds, config);
      const double ours_wall = wall.seconds();

      table.add_row({std::string(key) + "-mini", std::to_string(s), exact_cell,
                     util::format_duration(www.seconds),
                     util::format_duration(mehlhorn.seconds),
                     util::format_duration(takahashi.seconds),
                     util::format_duration(
                         ours.phases.total().sim_seconds(config.costs)),
                     util::format_duration(ours_wall),
                     util::format_count(
                         static_cast<double>(ours.total_messages()))});
    }
    table.add_rule();
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Notes: 'D wall' is the *single-core simulation* of 16 ranks — it\n"
      "includes all 16 ranks' work serialized plus runtime bookkeeping, so\n"
      "compare shapes via 'D sim' (the modeled 16-rank time). '-' = exact\n"
      "solver intractable at that |S| (exponential DP); the paper's\n"
      "SCIP-Jack column took 45.8m-1.0h there.\n");
  return 0;
}
