// Table I: runtime comparison of all-pair-shortest-path (APSP) and Voronoi
// cell (VC) computation, two graphs (LVJ, PTN) x three seed set sizes
// (10, 100, 1000), single thread.
//
// The paper's point: the KMB distance phase (one Dijkstra per seed) grows
// linearly in |S| while the Mehlhorn Voronoi phase is a single multi-source
// sweep — the gap widens by orders of magnitude at |S| = 1000.
#include <cstdio>

#include "bench_common.hpp"
#include "graph/dijkstra.hpp"

int main() {
  using namespace dsteiner;
  bench::print_header(
      "Table I: APSP vs Voronoi-cell computation (single thread)",
      "paper Table I",
      "Paper (full LVJ, |S|=1000): APSP 5,813.3s vs VC 104.5s (55.6x).\n"
      "Mirrors are ~300x smaller; the APSP/VC growth shape is the target.");

  util::table table({"graph", "|S|", "APSP", "VC", "APSP/VC"});
  for (const char* key : {"LVJ", "PTN"}) {
    const auto ds = io::load_dataset(key);
    for (const std::size_t s : {10u, 100u, 1000u}) {
      const auto seeds = bench::default_seeds(ds.graph, s);

      util::timer apsp_timer;
      const auto distances = graph::apsp_over_seeds(ds.graph, seeds);
      const double apsp_seconds = apsp_timer.seconds();
      // Keep the optimizer honest.
      volatile auto sink = distances.back().back();
      (void)sink;

      util::timer vc_timer;
      const auto cells = graph::multi_source_voronoi(ds.graph, seeds);
      const double vc_seconds = vc_timer.seconds();
      volatile auto sink2 = cells.distance.back();
      (void)sink2;

      table.add_row({std::string(key) + "-mini", std::to_string(s),
                     util::format_duration(apsp_seconds),
                     util::format_duration(vc_seconds),
                     util::format_fixed(apsp_seconds / vc_seconds, 1) + "x"});
    }
    table.add_rule();
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Shape check: APSP cost rises ~linearly with |S| while VC stays flat,\n"
      "so the APSP/VC ratio grows by ~an order of magnitude per |S| decade —\n"
      "matching the paper's motivation for the Voronoi formulation.\n");
  return 0;
}
