// Table V: comparison of the four seed-selection strategies on LVJ — per
// strategy and |S|: runtime, total distance D(GS), and output edge count
// |ES|.
//
// Paper findings to reproduce: no notable runtime difference between
// strategies; "proximate produces significantly smaller trees" (both |ES|
// and D(GS)); eccentric yields the largest total distances at high |S|.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace dsteiner;
  bench::print_header("Table V: seed-selection strategies (LVJ)",
                      "paper Table V",
                      "Largest sweep point scaled from 10K to 4K seeds; "
                      "eccentric/proximate k-BFS runs one BFS per seed, so "
                      "their 4K rows dominate this bench's wall time.");

  const auto ds = io::load_dataset("LVJ");
  const seed::seed_strategy strategies[] = {
      seed::seed_strategy::bfs_level, seed::seed_strategy::uniform_random,
      seed::seed_strategy::eccentric, seed::seed_strategy::proximate};

  util::table table({"strategy", "|S|", "select", "solve(sim)", "D(GS)",
                     "|ES|"});
  for (const auto strategy : strategies) {
    // 4K k-BFS selection is O(|S| * (V + E)) — cap eccentric/proximate at 1K.
    const bool k_bfs = strategy == seed::seed_strategy::eccentric ||
                       strategy == seed::seed_strategy::proximate;
    for (const std::size_t s : {100u, 1000u, 4000u}) {
      if (k_bfs && s > 1000) continue;
      util::timer select_timer;
      const auto seeds = seed::select_seeds(ds.graph, s, strategy, 0xbeef);
      const double select_seconds = select_timer.seconds();
      core::solver_config config;
      const auto result = core::solve_steiner_tree(ds.graph, seeds, config);
      table.add_row({seed::to_string(strategy), std::to_string(s),
                     util::format_duration(select_seconds),
                     util::format_duration(
                         result.phases.total().sim_seconds(config.costs)),
                     util::with_commas(result.total_distance),
                     util::with_commas(result.tree_edges.size())});
    }
    table.add_rule();
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Shape check: solve times are strategy-insensitive; proximate trees\n"
      "are several times smaller in D(GS) and |ES| (the paper deliberately\n"
      "avoided proximate seeds in its evaluation for this reason).\n");
  return 0;
}
