// Ablation: partitioning and vertex delegates.
//
// §IV credits HavoqGT's load balancing "for scale-free graphs through
// vertex-cut partitioning by distributing edges of high-degree vertices
// across multiple partitions — crucial to scale to large graphs with skewed
// degree distribution". This ablation compares block vs hash partitioning,
// each with and without delegates, on the most skewed mirror (WDC) and a
// milder one (PTN). Simulated time reflects critical-path (max-per-rank)
// work, so hub concentration shows up directly.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace dsteiner;
  bench::print_header("Ablation: partitioning schemes and vertex delegates",
                      "paper §IV (HavoqGT design motivation)", "");

  util::table table({"graph", "scheme", "delegates", "delegate count",
                     "Voronoi sim", "total sim", "remote msgs"});
  for (const char* key : {"WDC", "PTN"}) {
    const auto ds = io::load_dataset(key);
    const auto seeds = bench::default_seeds(ds.graph, 1000);
    for (const auto scheme :
         {runtime::partition_scheme::block, runtime::partition_scheme::hash}) {
      for (const bool delegates : {false, true}) {
        core::solver_config config;
        config.scheme = scheme;
        config.use_delegates = delegates;
        config.delegate_threshold = 512;
        const auto result = core::solve_steiner_tree(ds.graph, seeds, config);
        const auto* voronoi =
            result.phases.find(runtime::phase_names::voronoi);
        const auto total = result.phases.total();
        table.add_row(
            {std::string(key) + "-mini",
             scheme == runtime::partition_scheme::block ? "block" : "hash",
             delegates ? "on" : "off",
             util::with_commas(result.delegate_count),
             util::format_duration(voronoi->sim_seconds(config.costs)),
             util::format_duration(total.sim_seconds(config.costs)),
             util::format_count(static_cast<double>(total.messages_remote))});
      }
    }
    table.add_rule();
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Expected: on the skewed WDC mirror, delegates cut the critical-path\n"
      "Voronoi time by spreading hub scatter across ranks (at the cost of\n"
      "extra relay messages); on the milder PTN the effect is small.\n");
  return 0;
}
