// Fig. 7: influence of the edge-weight distribution on end-to-end runtime,
// LVJ topology with |S| = 1000, weight ranges [1,100] ... [1,100K], FIFO vs
// priority queues.
//
// The paper's findings to reproduce: (i) weight distribution matters mostly
// through the Voronoi phase, (ii) FIFO runtime is far more variable across
// ranges than priority (paper: stddev 13.5s vs 0.91s, 14.7x), (iii) the
// priority queue is both faster and less weight-sensitive.
#include <cstdio>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"

int main() {
  using namespace dsteiner;
  bench::print_header(
      "Fig. 7: edge-weight distribution vs runtime (LVJ, |S|=1000)",
      "paper Fig. 7",
      "Paper: FIFO stddev across ranges 14.7x that of priority; priority "
      "10.8x faster on average.");

  const auto spec = io::spec_for("LVJ");
  const auto topology = io::build_topology(spec);
  const graph::weight_t ranges[] = {100, 500, 1000, 5000, 10000, 50000, 100000};
  constexpr int repeats = 3;  // weight-assignment randomness, as in the paper

  util::table table({"weights", "FIFO sim", "Priority sim", "FIFO/Priority",
                     "FIFO msgs", "Priority msgs"});
  util::summary_stats fifo_stats, priority_stats;
  for (const graph::weight_t hi : ranges) {
    double fifo_sum = 0.0, priority_sum = 0.0;
    std::uint64_t fifo_msgs = 0, priority_msgs = 0;
    for (int rep = 0; rep < repeats; ++rep) {
      graph::edge_list weighted = topology;
      graph::assign_uniform_weights(weighted, 1, hi,
                                    0x55aa + static_cast<std::uint64_t>(rep));
      const graph::csr_graph g(weighted);
      const auto seeds = bench::default_seeds(g, 1000);
      for (const auto policy :
           {runtime::queue_policy::fifo, runtime::queue_policy::priority}) {
        core::solver_config config;
        config.policy = policy;
        config.batch_size = 16;
        const auto result = core::solve_steiner_tree(g, seeds, config);
        const double sim = result.phases.total().sim_seconds(config.costs);
        if (policy == runtime::queue_policy::fifo) {
          fifo_sum += sim;
          fifo_msgs += result.total_messages();
        } else {
          priority_sum += sim;
          priority_msgs += result.total_messages();
        }
      }
    }
    const double fifo_mean = fifo_sum / repeats;
    const double priority_mean = priority_sum / repeats;
    fifo_stats.add(fifo_mean);
    priority_stats.add(priority_mean);
    table.add_row({"[1, " + util::format_count(static_cast<double>(hi)) + "]",
                   util::format_duration(fifo_mean),
                   util::format_duration(priority_mean),
                   util::format_fixed(fifo_mean / priority_mean, 1) + "x",
                   util::format_count(static_cast<double>(fifo_msgs) / repeats),
                   util::format_count(static_cast<double>(priority_msgs) /
                                      repeats)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("across-range variability (stddev of mean sim time):\n");
  std::printf("  FIFO     : mean %s, stddev %s\n",
              util::format_duration(fifo_stats.mean()).c_str(),
              util::format_duration(fifo_stats.stddev()).c_str());
  std::printf("  Priority : mean %s, stddev %s\n",
              util::format_duration(priority_stats.mean()).c_str(),
              util::format_duration(priority_stats.stddev()).c_str());
  std::printf("  FIFO stddev / Priority stddev = %.1fx (paper: 14.7x)\n",
              fifo_stats.stddev() / priority_stats.stddev());
  std::printf("  mean FIFO / mean Priority     = %.1fx (paper: 10.8x)\n",
              fifo_stats.mean() / priority_stats.mean());
  return 0;
}
