// Table VII: quality of approximation — D(GS)/Dmin and % error.
//
// Two sources of exact optima Dmin:
//   |S| = 10          : the Dreyfus-Wagner DP on the four smallest mirrors
//                       (the paper used SCIP-Jack).
//   |S| = 100 / 1000  : planted-optimum instances (random tree + provably
//                       non-shortcut noise edges; optimum known by
//                       construction) sized like the respective mirrors —
//                       no exact solver is tractable there in this
//                       environment.
//
// Paper result: mean ratio 1.0527 (5.3% error), all rows well inside the
// 2(1 - 1/l) bound.
#include <cstdio>

#include "baselines/dual_ascent.hpp"
#include "baselines/exact.hpp"
#include "baselines/planted.hpp"
#include "bench_common.hpp"

int main() {
  using namespace dsteiner;
  bench::print_header(
      "Table VII: approximation quality D(GS)/Dmin",
      "paper Table VII",
      "Paper mean ratio 1.0527 (5.3% error); per-row range 1.0110-1.1684.");

  util::table table({"instance", "|S|", "Dmin source", "Dmin", "D(GS)",
                     "ratio", "% error"});
  double ratio_sum = 0.0;
  int rows = 0;

  // |S| = 10: exact DP on the real mirrors.
  for (const char* key : {"LVJ", "PTN", "MCO", "CTS"}) {
    const auto ds = io::load_dataset(key);
    const auto seeds = bench::default_seeds(ds.graph, 10);
    baselines::exact_options options;
    options.reconstruct = false;
    const auto exact = baselines::exact_steiner_tree(ds.graph, seeds, options);
    const auto ours = core::solve_steiner_tree(ds.graph, seeds, {});
    const double ratio = static_cast<double>(ours.total_distance) /
                         static_cast<double>(exact.optimal_distance);
    ratio_sum += ratio;
    ++rows;
    table.add_row({std::string(key) + "-mini", "10", "exact DP",
                   util::with_commas(exact.optimal_distance),
                   util::with_commas(ours.total_distance),
                   util::format_fixed(ratio, 4),
                   util::format_fixed((ratio - 1.0) * 100.0, 2)});
  }
  table.add_rule();

  // |S| = 100 / 1000: planted-optimum instances sized like the mirrors.
  struct planted_row {
    const char* name;
    graph::vertex_id vertices;
    std::size_t seeds;
    std::uint64_t noise;
  };
  const planted_row planted_rows[] = {
      {"planted-LVJ", 16384, 100, 120000}, {"planted-LVJ", 16384, 1000, 120000},
      {"planted-PTN", 16384, 100, 70000},  {"planted-PTN", 16384, 1000, 70000},
      {"planted-MCO", 4096, 100, 40000},   {"planted-MCO", 4096, 1000, 40000},
      {"planted-CTS", 2048, 100, 2000},    {"planted-CTS", 2048, 1000, 2000},
  };
  for (const auto& row : planted_rows) {
    baselines::planted_params params;
    params.num_vertices = row.vertices;
    params.num_seeds = row.seeds;
    params.num_noise_edges = row.noise;
    params.tree_weight_hi = 1000;
    // Thin margin: noise edges are only 1-20% heavier than the tree path
    // they shortcut, so approximation algorithms are genuinely tempted by
    // them; the optimum is still provably the planted subtree.
    params.factor_lo = 1.01;
    params.factor_hi = 1.2;
    params.seed = 0x7ab1e7 + row.vertices + row.seeds;
    const auto instance = baselines::make_planted_instance(params);
    const auto ours = core::solve_steiner_tree(instance.graph, instance.seeds, {});
    const double ratio = static_cast<double>(ours.total_distance) /
                         static_cast<double>(instance.optimal_distance);
    ratio_sum += ratio;
    ++rows;
    table.add_row({row.name, std::to_string(row.seeds), "planted optimum",
                   util::with_commas(instance.optimal_distance),
                   util::with_commas(ours.total_distance),
                   util::format_fixed(ratio, 4),
                   util::format_fixed((ratio - 1.0) * 100.0, 2)});
  }
  table.add_rule();

  // |S| = 100 / 1000 on the real mirrors: no exact solver is tractable, so
  // Dmin is bracketed from below by the Wong dual-ascent bound (§VI [37],
  // [51]); LB <= Dmin makes D(GS)/LB a *certified upper bound* on the true
  // approximation ratio.
  for (const char* key : {"LVJ", "PTN", "MCO", "CTS"}) {
    const auto ds = io::load_dataset(key);
    for (const std::size_t s : {100u, 1000u}) {
      std::vector<graph::vertex_id> seeds;
      try {
        seeds = bench::default_seeds(ds.graph, s);
      } catch (const std::invalid_argument&) {
        continue;
      }
      const auto ours = core::solve_steiner_tree(ds.graph, seeds, {});
      const auto lb = baselines::dual_ascent_lower_bound(ds.graph, seeds);
      const double ratio = static_cast<double>(ours.total_distance) /
                           static_cast<double>(lb.lower_bound);
      ratio_sum += ratio;
      ++rows;
      table.add_row({std::string(key) + "-mini", std::to_string(s),
                     "dual-ascent LB", util::with_commas(lb.lower_bound),
                     util::with_commas(ours.total_distance),
                     "<= " + util::format_fixed(ratio, 4),
                     "<= " + util::format_fixed((ratio - 1.0) * 100.0, 2)});
    }
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("mean (upper-bounded) ratio over %d instances: %.4f (%.2f%%)\n",
              rows, ratio_sum / rows, (ratio_sum / rows - 1.0) * 100.0);
  std::printf(
      "Shape check: every ratio sits far inside the 2(1 - 1/l) bound and in\n"
      "the paper's 1.01-1.17 band. Planted rows are exactly 1.0: on\n"
      "tree-plus-non-shortcut-noise instances the Voronoi/MST construction\n"
      "is provably optimal — a useful sanity property in its own right.\n"
      "Dual-ascent rows report D(GS)/LB with LB <= Dmin, i.e. a certified\n"
      "upper bound on the true ratio at seed counts where no exact solver\n"
      "is tractable here.\n");
  return 0;
}
