// google-benchmark microbenchmarks for the substrate kernels the solver is
// built from: mailbox operations, SSSP kernels, MST, RMAT generation and the
// visitor engine. These guard the constants behind the paper-scale benches.
#include <benchmark/benchmark.h>

#include "core/steiner_solver.hpp"
#include "graph/bellman_ford.hpp"
#include "graph/connected_components.hpp"
#include "graph/dijkstra.hpp"
#include "graph/generators.hpp"
#include "graph/mst.hpp"
#include "runtime/mailbox.hpp"
#include "util/random.hpp"

namespace {

using namespace dsteiner;

struct bench_visitor {
  graph::vertex_id v;
  std::uint64_t prio;
  [[nodiscard]] graph::vertex_id target() const { return v; }
  [[nodiscard]] std::uint64_t priority() const { return prio; }
};

void BM_MailboxFifo(benchmark::State& state) {
  util::rng gen(1);
  for (auto _ : state) {
    runtime::mailbox<bench_visitor> box(runtime::queue_policy::fifo);
    for (int i = 0; i < state.range(0); ++i) box.push({0, gen()});
    while (!box.empty()) benchmark::DoNotOptimize(box.pop());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MailboxFifo)->Arg(1024)->Arg(16384);

void BM_MailboxPriority(benchmark::State& state) {
  util::rng gen(1);
  for (auto _ : state) {
    runtime::mailbox<bench_visitor> box(runtime::queue_policy::priority);
    for (int i = 0; i < state.range(0); ++i) box.push({0, gen()});
    while (!box.empty()) benchmark::DoNotOptimize(box.pop());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MailboxPriority)->Arg(1024)->Arg(16384);

const graph::csr_graph& bench_graph() {
  static const graph::csr_graph g = [] {
    graph::rmat_params params;
    params.scale = 14;
    params.edge_factor = 8;
    params.seed = 3;
    graph::edge_list list = graph::generate_rmat(params);
    graph::assign_uniform_weights(list, 1, 1000, 5);
    return graph::csr_graph(list);
  }();
  return g;
}

void BM_Dijkstra(benchmark::State& state) {
  const auto& g = bench_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::dijkstra(g, 0).distance.back());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_arcs()));
}
BENCHMARK(BM_Dijkstra);

void BM_BellmanFord(benchmark::State& state) {
  const auto& g = bench_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::bellman_ford(g, 0).distance.back());
  }
}
BENCHMARK(BM_BellmanFord);

void BM_MultiSourceVoronoi(benchmark::State& state) {
  const auto& g = bench_graph();
  util::rng gen(9);
  const auto picks = util::sample_without_replacement(
      g.num_vertices(), static_cast<std::uint64_t>(state.range(0)), gen);
  const std::vector<graph::vertex_id> seeds(picks.begin(), picks.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::multi_source_voronoi(g, seeds).distance.back());
  }
}
BENCHMARK(BM_MultiSourceVoronoi)->Arg(10)->Arg(100)->Arg(1000);

void BM_PrimMst(benchmark::State& state) {
  const auto& g = bench_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::prim_mst(g, 0).total_weight);
  }
}
BENCHMARK(BM_PrimMst);

void BM_RmatGeneration(benchmark::State& state) {
  for (auto _ : state) {
    graph::rmat_params params;
    params.scale = static_cast<std::uint64_t>(state.range(0));
    params.edge_factor = 8;
    params.seed = 11;
    benchmark::DoNotOptimize(graph::generate_rmat(params).size());
  }
}
BENCHMARK(BM_RmatGeneration)->Arg(12)->Arg(14);

void BM_DistributedSolver(benchmark::State& state) {
  const auto& g = bench_graph();
  // Seeds must be mutually reachable: sample within the largest component.
  const auto component = graph::largest_component_vertices(g);
  util::rng gen(13);
  const auto picks = util::sample_without_replacement(
      component.size(), static_cast<std::uint64_t>(state.range(0)), gen);
  std::vector<graph::vertex_id> seeds;
  seeds.reserve(picks.size());
  for (const auto i : picks) seeds.push_back(component[i]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::solve_steiner_tree(g, seeds, {}).total_distance);
  }
}
BENCHMARK(BM_DistributedSolver)->Arg(10)->Arg(100);

}  // namespace
