// Fig. 3: strong scaling on the four largest graphs (FRS, UKW, CLW, WDC)
// with |S| = 100 and 1000; runtime broken down into the six computation
// phases, speedup over the smallest scale printed per configuration.
//
// The paper scales 32 -> 512 compute nodes (16 ranks each); here the rank
// count of the simulated runtime scales 4 -> 32 and the reported time is the
// cost model's critical-path simulated time (wall clock on one core cannot
// scale). The expected shape: Voronoi-cell computation dominates, followed
// by local min-distance edge; both shrink with rank count while the
// collective phases stay flat; larger graphs scale better.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dsteiner;
  const std::size_t threads = bench::parse_threads_flag(argc, argv);
  bench::print_header(
      "Fig. 3: strong scaling, phase breakdown (simulated parallel time)",
      "paper Fig. 3",
      "Paper speedups over smallest scale: 1.3x-1.8x (2x ranks), "
      "1.8x-2.9x (4x ranks). Pass --threads N for the threaded engine.");
  if (threads != 0) {
    std::printf("engine: parallel_threads, %zu workers\n\n", threads);
  }

  const int rank_counts[] = {4, 8, 16, 32};
  for (const char* key : {"FRS", "UKW", "CLW", "WDC"}) {
    const auto ds = io::load_dataset(key);
    for (const std::size_t s : {100u, 1000u}) {
      const auto seeds = bench::default_seeds(ds.graph, s);
      std::printf("--- %s-mini  |S|=%zu ---\n", key, s);
      util::table table({"ranks", "Voronoi", "LocalMinE", "GlobalMinE", "MST",
                         "Pruning", "TreeEdge", "total(sim)", "speedup",
                         "wall"});
      double baseline = 0.0;
      for (const int ranks : rank_counts) {
        core::solver_config config;
        config.num_ranks = ranks;
        bench::apply_threads(config, threads);
        util::timer wall;
        const auto result = core::solve_steiner_tree(ds.graph, seeds, config);
        const double wall_seconds = wall.seconds();
        const auto phases = bench::phase_sim_seconds(result, config.costs);
        double total = 0.0;
        std::vector<std::string> row{std::to_string(ranks)};
        for (const double p : phases) {
          row.push_back(util::format_duration(p));
          total += p;
        }
        if (baseline == 0.0) baseline = total;
        row.push_back(util::format_duration(total));
        row.push_back(util::format_fixed(baseline / total, 2) + "x");
        row.push_back(util::format_duration(wall_seconds));
        table.add_row(std::move(row));
      }
      std::printf("%s\n", table.render().c_str());
    }
  }
  std::printf(
      "Shape check: Voronoi-cell computation dominates every configuration\n"
      "and is the scalability bottleneck; collective phases (GlobalMinE,\n"
      "MST, Pruning) are insignificant, matching the paper's Fig. 3.\n");
  return 0;
}
