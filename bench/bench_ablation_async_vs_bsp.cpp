// Ablation: asynchronous vs bulk-synchronous (BSP) execution.
//
// §IV motivates HavoqGT over BSP frameworks: "asynchronous processing offers
// notable advantage over bulk synchronous processing for distributed
// shortest path computation: the former enabling faster convergence". This
// ablation runs the identical solver in both engine modes — in BSP all
// visitor deliveries wait for the round boundary — and compares rounds,
// messages and simulated time. The output trees are identical by
// construction (deterministic lexicographic relaxation).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace dsteiner;
  bench::print_header("Ablation: asynchronous vs bulk-synchronous engine",
                      "paper §IV design motivation", "");

  util::table table({"graph", "|S|", "mode", "rounds", "messages",
                     "Voronoi sim", "total sim", "D(GS)"});
  for (const char* key : {"LVJ", "FRS"}) {
    const auto ds = io::load_dataset(key);
    for (const std::size_t s : {100u, 1000u}) {
      const auto seeds = bench::default_seeds(ds.graph, s);
      graph::weight_t async_distance = 0, bsp_distance = 0;
      for (const auto mode :
           {runtime::execution_mode::async, runtime::execution_mode::bsp}) {
        core::solver_config config;
        config.mode = mode;
        const auto result = core::solve_steiner_tree(ds.graph, seeds, config);
        const auto* voronoi =
            result.phases.find(runtime::phase_names::voronoi);
        const auto total = result.phases.total();
        table.add_row(
            {std::string(key) + "-mini", std::to_string(s),
             mode == runtime::execution_mode::async ? "async" : "BSP",
             util::with_commas(voronoi->rounds),
             util::with_commas(total.messages_total()),
             util::format_duration(voronoi->sim_seconds(config.costs)),
             util::format_duration(total.sim_seconds(config.costs)),
             util::with_commas(result.total_distance)});
        (mode == runtime::execution_mode::async ? async_distance
                                                : bsp_distance) =
            result.total_distance;
      }
      if (async_distance != bsp_distance) {
        std::printf("ERROR: async and BSP trees differ!\n");
        return 1;
      }
    }
    table.add_rule();
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Expected: BSP needs more rounds (updates propagate one superstep per\n"
      "hop) and generates more messages (staler scatters), confirming the\n"
      "paper's choice of asynchronous processing. Results are identical.\n");
  return 0;
}
