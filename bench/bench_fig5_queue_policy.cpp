// Fig. 5: runtime comparison of FIFO vs priority message queues on LVJ, FRS
// and UKW with |S| = 100, broken down by phase, speedup printed per graph.
//
// This is the paper's headline optimization: the priority queue gives
// precedence to messages from vertices at lower tentative distance,
// approximating Dijkstra's settling order inside the asynchronous
// Bellman-Ford (paper speedups: 3.5x FRS, 6.2x UKW... 13.1x LVJ).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dsteiner;
  const std::size_t threads = bench::parse_threads_flag(argc, argv);
  bench::print_header("Fig. 5: FIFO vs priority queue, runtime by phase",
                      "paper Fig. 5",
                      "Paper speedups: LVJ 13.1x, FRS 3.5x, UKW 6.2x "
                      "(|S|=100). Pass --threads N to run both policies on\n"
                      "the threaded engine (identical trees, wall time "
                      "scales with cores).");
  if (threads != 0) {
    std::printf("engine: parallel_threads, %zu workers\n\n", threads);
  }

  for (const char* key : {"LVJ", "FRS", "UKW"}) {
    const auto ds = io::load_dataset(key);
    const auto seeds = bench::default_seeds(ds.graph, 100);
    std::printf("--- %s-mini  |S|=100 ---\n", key);
    util::table table({"queue", "Voronoi", "LocalMinE", "GlobalMinE", "MST",
                       "Pruning", "TreeEdge", "total(sim)", "wall"});
    double fifo_total = 0.0, priority_total = 0.0;
    for (const auto policy :
         {runtime::queue_policy::fifo, runtime::queue_policy::priority}) {
      core::solver_config config;
      config.policy = policy;
      config.batch_size = 16;  // finer interleaving stresses queue ordering
      bench::apply_threads(config, threads);
      util::timer wall;
      const auto result = core::solve_steiner_tree(ds.graph, seeds, config);
      const auto phases = bench::phase_sim_seconds(result, config.costs);
      double total = 0.0;
      std::vector<std::string> row{
          policy == runtime::queue_policy::fifo ? "FIFO" : "Priority"};
      for (const double p : phases) {
        row.push_back(util::format_duration(p));
        total += p;
      }
      row.push_back(util::format_duration(total));
      row.push_back(util::format_duration(wall.seconds()));
      table.add_row(std::move(row));
      (policy == runtime::queue_policy::fifo ? fifo_total : priority_total) =
          total;
    }
    std::printf("%s", table.render().c_str());
    std::printf("priority-queue speedup: %.1fx\n\n",
                fifo_total / priority_total);
  }
  std::printf(
      "Shape check: the whole gap sits in the Voronoi-cell phase; the\n"
      "speedup factor varies per graph (paper: 3.5x-13.1x) because it\n"
      "depends on topology and weight spread.\n");
  return 0;
}
