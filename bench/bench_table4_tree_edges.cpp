// Table IV: total number of edges |ES| in the output Steiner tree for every
// graph x seed-set size combination.
//
// The paper's companion observation (§IV): |ES| is orders of magnitude
// smaller than |E|, which is why the Alg. 6 walk-back phase generates
// negligible message traffic. N/A entries mirror the paper's (seed count
// exceeding what the graph supports).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace dsteiner;
  bench::print_header("Table IV: Steiner tree edge counts |ES|",
                      "paper Table IV",
                      "Largest sweep point scaled from 10K to 4K seeds.");

  const std::size_t seed_counts[] = {10, 100, 1000, 4000};
  util::table table({"|S|", "WDC", "CLW", "UKW", "FRS", "LVJ", "PTN", "MCO",
                     "CTS"});
  // Load each mirror once; iterate seed counts per column.
  std::vector<io::dataset> datasets;
  for (const auto& spec : io::dataset_specs()) {
    datasets.push_back(io::load_dataset(spec.key));
  }
  for (const std::size_t s : seed_counts) {
    std::vector<std::string> row{std::to_string(s)};
    for (const auto& ds : datasets) {
      try {
        const auto seeds = bench::default_seeds(ds.graph, s);
        const auto result = core::solve_steiner_tree(ds.graph, seeds, {});
        row.push_back(util::with_commas(result.tree_edges.size()));
      } catch (const std::invalid_argument&) {
        row.push_back("N/A");  // component smaller than |S| (paper: MCO/CTS)
      }
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Shape check: |ES| grows sublinearly in |S| and stays 2-4 orders of\n"
      "magnitude below 2|E| (compare bench_table3_datasets), confirming the\n"
      "paper's message-efficiency argument for the tree-edge phase.\n");
  return 0;
}
