// Fig. 9: Steiner trees in the MiCo graph for seed sets of sizes 10, 100 and
// 1000 — seed vertices red, Steiner vertices blue.
//
// The figure is qualitative; this bench computes the three trees on the
// MCO mirror, prints their summary statistics, and writes Graphviz DOT files
// (fig9_mico_s{10,100,1000}.dot) that render the same visual.
#include <cstdio>
#include <unordered_set>

#include "bench_common.hpp"
#include "graph/dot_export.hpp"

int main() {
  using namespace dsteiner;
  bench::print_header("Fig. 9: Steiner trees in the MiCo graph",
                      "paper Fig. 9",
                      "DOT output: fig9_mico_s<|S|>.dot (render with "
                      "`neato -Tsvg`).");

  const auto ds = io::load_dataset("MCO");
  util::table table({"|S|", "tree vertices", "Steiner vertices", "|ES|",
                     "D(GS)", "dot file"});
  for (const std::size_t s : {10u, 100u, 1000u}) {
    const auto seeds = bench::default_seeds(ds.graph, s);
    core::solver_config config;
    config.validate = true;
    const auto result = core::solve_steiner_tree(ds.graph, seeds, config);

    std::unordered_set<graph::vertex_id> vertices;
    for (const auto& e : result.tree_edges) {
      vertices.insert(e.source);
      vertices.insert(e.target);
    }
    const std::string path = "fig9_mico_s" + std::to_string(s) + ".dot";
    graph::dot_options options;
    options.graph_name = "mico_steiner_s" + std::to_string(s);
    options.show_weights = false;
    graph::write_dot_file(path, result.tree_edges, seeds, options);

    table.add_row({std::to_string(s), util::with_commas(vertices.size()),
                   util::with_commas(vertices.size() - seeds.size()),
                   util::with_commas(result.tree_edges.size()),
                   util::with_commas(result.total_distance), path});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Shape check: like the paper's drawings, the number of blue Steiner\n"
      "vertices grows much slower than |S| — at |S|=1000 most tree vertices\n"
      "are seeds themselves.\n");
  return 0;
}
