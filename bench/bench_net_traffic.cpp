// bench_net_traffic — modelled-vs-measured wire traffic of the distributed
// runtime (src/runtime/net/), the serving-path counterpart of the
// dsteiner-rank launcher's --metrics-text output.
//
// Runs a steiner_service with config.distributed.world ranks (the loopback
// comm_backend mesh — same frames, codecs and termination votes as the TCP
// backend, minus the kernel) over a set of cold queries on the LVJ mirror,
// then checks the perf model's traffic prediction against what the mesh
// actually carried:
//
//   1. measured >= modelled for every solve — the model counts payload
//      records x record size and deliberately excludes framing, so real wire
//      bytes can only add to it;
//   2. the gap stays inside a per-frame overhead band: every frame costs a
//      fixed header plus (for control frames: markers, votes, hellos) a
//      small fixed payload, so measured - modelled <= frames x 64 bytes;
//   3. the /metrics exposition carries the paired
//      dsteiner_comm_bytes_{modelled,measured} histograms with equal sample
//      counts and parses clean under the Prometheus validator;
//   4. the telemetry plane is cheap: re-running the same queries with
//      config.solver.net_telemetry off must not be dramatically faster —
//      telemetry-on wall clock stays within 5% (plus an absolute slack for
//      CI timer noise) of telemetry-off.
//
// Exit status reflects all four checks, so CI's bench-smoke can gate on it.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "obs/prom_validate.hpp"
#include "service/metrics_text.hpp"
#include "service/steiner_service.hpp"

int main(int argc, char** argv) {
  using namespace dsteiner;
  bench::flag_parser parser(argc, argv);
  const std::size_t world = parser.positive_uint("--world", 2);
  const std::size_t queries = parser.positive_uint("--queries", 6);
  parser.finish();
  if (world < 2) {
    // A 1-rank world takes the classic in-process path and moves no bytes,
    // so every traffic assertion below would fail confusingly.
    std::fprintf(stderr, "--world must be >= 2 (got %zu)\n", world);
    return 2;
  }

  bench::print_header(
      "Distributed runtime: modelled vs measured wire traffic",
      "the runtime/net extension (beyond the paper's simulated ranks)",
      "Each query is a cold solve across loopback comm_backend ranks; the\n"
      "perf model's byte prediction is checked against measured wire bytes.");

  const auto ds = io::load_dataset("LVJ");
  service::service_config svc_config;
  svc_config.exec.num_threads = 2;
  svc_config.solver.num_ranks = 8;
  svc_config.distributed.world = static_cast<int>(world);
  service::steiner_service svc(graph::csr_graph(ds.graph), svc_config);
  std::printf("world=%zu ranks (loopback mesh), %zu cold queries on %s\n\n",
              world, queries, ds.spec.paper_name.c_str());

  util::table table({"query", "|S|", "modelled", "measured", "overhead",
                     "supersteps", "votes", "wall"});
  bool ok = true;
  double telemetry_on_wall = 0.0;
  std::uint64_t prev_modelled = 0;
  std::uint64_t prev_measured = 0;
  std::uint64_t prev_frames = 0;
  for (std::size_t i = 0; i < queries; ++i) {
    service::query q;
    // Distinct seed counts defeat the result cache: every row is a real
    // distributed solve.
    q.seeds = bench::default_seeds(ds.graph, 8 + 4 * i);
    util::timer wall;
    const auto result = svc.solve(q);
    const double wall_seconds = wall.seconds();
    telemetry_on_wall += wall_seconds;
    if (result.kind != service::solve_kind::cold) {
      std::fprintf(stderr, "query %zu was not a cold solve\n", i);
      ok = false;
    }
    const auto stats = svc.stats();
    const std::uint64_t modelled = stats.net_bytes_modelled - prev_modelled;
    const std::uint64_t measured = stats.net_bytes_sent - prev_measured;
    const std::uint64_t frames = stats.net_frames_sent - prev_frames;
    prev_modelled = stats.net_bytes_modelled;
    prev_measured = stats.net_bytes_sent;
    prev_frames = stats.net_frames_sent;

    if (modelled == 0 || measured < modelled) {
      std::fprintf(stderr,
                   "query %zu: measured %llu < modelled %llu (or zero)\n", i,
                   static_cast<unsigned long long>(measured),
                   static_cast<unsigned long long>(modelled));
      ok = false;
    }
    // Generous framing band: 8-byte headers on every frame plus small
    // control payloads (votes, markers, hellos) stay far under 64 bytes per
    // frame on average.
    if (measured > modelled + frames * 64) {
      std::fprintf(stderr,
                   "query %zu: framing overhead %llu exceeds %llu frames x "
                   "64B band\n",
                   i, static_cast<unsigned long long>(measured - modelled),
                   static_cast<unsigned long long>(frames));
      ok = false;
    }
    table.add_row(
        {std::to_string(i), std::to_string(q.seeds.size()),
         util::format_bytes(modelled), util::format_bytes(measured),
         util::format_fixed(
             modelled == 0
                 ? 0.0
                 : 100.0 * static_cast<double>(measured - modelled) /
                       static_cast<double>(modelled),
             1) + "%",
         std::to_string(stats.net_supersteps), std::to_string(stats.net_vote_rounds),
         util::format_duration(wall_seconds)});
  }
  std::printf("%s\n", table.render().c_str());

  const auto snap = svc.snapshot();
  if (snap.stats.cluster_telemetry_samples == 0 ||
      snap.cluster_superstep_seconds.count !=
          snap.stats.cluster_telemetry_samples) {
    std::fprintf(
        stderr,
        "cluster telemetry missing or out of step: %llu samples counted, "
        "%llu histogram records\n",
        static_cast<unsigned long long>(snap.stats.cluster_telemetry_samples),
        static_cast<unsigned long long>(snap.cluster_superstep_seconds.count));
    ok = false;
  }
  if (snap.comm_bytes_measured.count == 0 ||
      snap.comm_bytes_measured.count != snap.comm_bytes_modelled.count) {
    std::fprintf(stderr,
                 "paired histograms out of step: measured %llu samples, "
                 "modelled %llu\n",
                 static_cast<unsigned long long>(snap.comm_bytes_measured.count),
                 static_cast<unsigned long long>(snap.comm_bytes_modelled.count));
    ok = false;
  }
  const std::string metrics = service::render_metrics_text(snap);
  const obs::prom_report report = obs::validate_prometheus(metrics);
  if (!report.ok()) {
    std::fprintf(stderr, "metrics exposition invalid:\n%s\n",
                 report.to_string().c_str());
    ok = false;
  }
  std::printf(
      "totals: modelled=%s measured=%s supersteps=%llu vote_rounds=%llu "
      "ghost_labels=%llu\n",
      util::format_bytes(snap.stats.net_bytes_modelled).c_str(),
      util::format_bytes(snap.stats.net_bytes_sent).c_str(),
      static_cast<unsigned long long>(snap.stats.net_supersteps),
      static_cast<unsigned long long>(snap.stats.net_vote_rounds),
      static_cast<unsigned long long>(snap.stats.net_ghost_labels));
  std::printf("exposition: %zu series across %zu families, %s\n",
              report.series, report.families,
              report.ok() ? "valid" : "INVALID");

  // Telemetry overhead: re-run the identical query set on a fresh service
  // with the telemetry plane off and compare wall clocks. The 5% relative
  // band is the contract; the 0.5s absolute slack keeps sub-second runs from
  // failing on scheduler noise rather than real overhead.
  {
    service::service_config off_config = svc_config;
    off_config.solver.net_telemetry = false;
    service::steiner_service off_svc(graph::csr_graph(ds.graph), off_config);
    double telemetry_off_wall = 0.0;
    for (std::size_t i = 0; i < queries; ++i) {
      service::query q;
      q.seeds = bench::default_seeds(ds.graph, 8 + 4 * i);
      util::timer wall;
      (void)off_svc.solve(q);
      telemetry_off_wall += wall.seconds();
    }
    std::printf("telemetry overhead: on=%s off=%s (%+.1f%%)\n",
                util::format_duration(telemetry_on_wall).c_str(),
                util::format_duration(telemetry_off_wall).c_str(),
                telemetry_off_wall > 0.0
                    ? 100.0 * (telemetry_on_wall - telemetry_off_wall) /
                          telemetry_off_wall
                    : 0.0);
    if (telemetry_on_wall > telemetry_off_wall * 1.05 + 0.5) {
      std::fprintf(stderr,
                   "telemetry overhead out of band: on=%.3fs off=%.3fs\n",
                   telemetry_on_wall, telemetry_off_wall);
      ok = false;
    }
  }
  std::printf("\n%s\n",
              ok ? "OK: perf model within the framing band, telemetry "
                   "overhead within 5%"
                 : "FAILED: see stderr");
  return ok ? 0 : 1;
}
