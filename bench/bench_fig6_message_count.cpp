// Fig. 6: message counts of the FIFO vs priority queue runs of Fig. 5,
// grouped by computation phase (visitor phases only — the paper's figure
// excludes the MPI-collective phases).
//
// Runtime improvement in Fig. 5 is "a direct result of reduction in number
// of messages": paper improvements 22.1x (LVJ), 4.9x (FRS), 6.1x (UKW) in
// the Voronoi-cell phase.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace dsteiner;
  bench::print_header("Fig. 6: FIFO vs priority queue, message counts",
                      "paper Fig. 6",
                      "Paper Voronoi message improvements: LVJ 22.1x, FRS "
                      "4.9x, UKW 6.1x.");

  for (const char* key : {"LVJ", "FRS", "UKW"}) {
    const auto ds = io::load_dataset(key);
    const auto seeds = bench::default_seeds(ds.graph, 100);
    std::printf("--- %s-mini  |S|=100 ---\n", key);
    util::table table(
        {"queue", "Voronoi msgs", "LocalMinE msgs", "TreeEdge msgs", "total"});
    std::uint64_t fifo_voronoi = 0, priority_voronoi = 0;
    for (const auto policy :
         {runtime::queue_policy::fifo, runtime::queue_policy::priority}) {
      core::solver_config config;
      config.policy = policy;
      config.batch_size = 16;
      const auto result = core::solve_steiner_tree(ds.graph, seeds, config);
      const auto messages = bench::phase_messages(result);
      // phase_messages order: Voronoi, LocalMinE, GlobalMinE, MST, Pruning,
      // TreeEdge; the collective phases carry no visitor messages.
      const std::uint64_t voronoi = messages[0];
      const std::uint64_t local_min = messages[1];
      const std::uint64_t tree_edge = messages[5];
      table.add_row(
          {policy == runtime::queue_policy::fifo ? "FIFO" : "Priority",
           util::with_commas(voronoi), util::with_commas(local_min),
           util::with_commas(tree_edge),
           util::with_commas(voronoi + local_min + tree_edge)});
      (policy == runtime::queue_policy::fifo ? fifo_voronoi
                                             : priority_voronoi) = voronoi;
    }
    std::printf("%s", table.render().c_str());
    std::printf("Voronoi-phase message improvement: %.1fx\n\n",
                static_cast<double>(fifo_voronoi) /
                    static_cast<double>(priority_voronoi));
  }
  std::printf(
      "Shape check: local min-distance edge messages are policy-independent\n"
      "(bounded by |E|); tree-edge messages are negligible (|ES| << |E|);\n"
      "the entire improvement is in the Voronoi phase — as in Fig. 6.\n");
  return 0;
}
