// bench_parallel_engine — single-cold-solve scaling of the threaded runtime
// (src/runtime/parallel/), beyond the paper's simulated-rank experiments.
//
// The cooperative engine runs all simulated ranks on one thread, so a cold
// solve's *wall* time never benefits from extra cores; the threaded engine
// gives every rank a real worker. This bench measures one cold solve of the
// LVJ mirror (the largest bundled dataset) end to end:
//
//   1. sequential baseline (execution_mode::async, the default engine);
//   2. parallel_threads at 1, 2, 4, ... workers (up to --threads N or
//      hardware concurrency), reporting wall time and speedup vs both the
//      sequential engine and the 1-worker threaded run;
//   3. an output-identity check: every configuration must produce the exact
//      tree of the sequential baseline (the determinism guarantee the
//      service cache depends on).
//
// Reported speedups depend on the physical cores available to this process:
// on a multi-core host expect >= 2x at 4 workers for the solver phases the
// engine runs (Voronoi + local-min-edge + tree-edge dominate LVJ solves).
// The phase-1-heavy batch size (1024) amortises the two superstep barriers.
// --growth bucketed switches to an A/B mode instead: repeated cold solves in
// strict and bucketed phase-1 scheduling at the same thread count on the
// power-law LVJ mirror, asserting the bucketed p50 beats the strict p50 and
// that every tree is identical (exit status covers both).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "obs/trace.hpp"

namespace {

struct engine_flags {
  std::size_t threads = 0;  ///< 0 = flag absent
  bool bucketed = false;
};

engine_flags parse_flags(int argc, char** argv) {
  dsteiner::bench::flag_parser parser(argc, argv);
  engine_flags flags;
  flags.threads = parser.positive_uint("--threads", 0);
  flags.bucketed = parser.choice("--growth", {"strict", "bucketed"}, 0) == 1;
  parser.finish();
  return flags;
}

double p50_of(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsteiner;
  const engine_flags flags = parse_flags(argc, argv);
  const std::size_t max_threads_flag = flags.threads;
  bench::print_header(
      "Parallel engine: single cold solve scaling with worker threads",
      "the threaded-runtime extension (beyond the paper's simulated ranks)",
      "One LVJ-mini cold solve per row; identical output is asserted.\n"
      "Pass --threads N to extend the sweep beyond hardware concurrency.");

  const auto ds = io::load_dataset("LVJ");
  const auto seeds = bench::default_seeds(ds.graph, 100);
  std::printf("dataset: %s mirror, %llu vertices, %llu arcs, |S|=%zu\n",
              ds.spec.paper_name.c_str(),
              static_cast<unsigned long long>(ds.graph.num_vertices()),
              static_cast<unsigned long long>(ds.graph.num_arcs()),
              seeds.size());
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("hardware threads: %zu\n\n", hw);

  core::solver_config base;
  base.num_ranks = 16;
  base.batch_size = 1024;  // amortise superstep barriers in threaded runs

  if (flags.bucketed) {
    // A/B mode: strict vs bucketed phase-1 scheduling, threaded engine, on
    // the power-law mirror (skewed degrees are exactly where bucket draining
    // plus edge tiling pay). Runs at the solver's *default* batch size: the
    // comparison is barrier-count-dominated — strict pays one superstep per
    // batch per rank while bucketed drains whole buckets — and the 1024
    // batch above exists precisely to paper over that cost for the scaling
    // sweep. p50 over an odd number of interleaved repetitions so one noisy
    // run cannot decide the comparison.
    const std::size_t threads =
        std::min({max_threads_flag != 0 ? max_threads_flag : hw,
                  static_cast<std::size_t>(base.num_ranks),
                  static_cast<std::size_t>(8)});
    core::solver_config strict = base;
    strict.batch_size = core::solver_config{}.batch_size;
    strict.mode = runtime::execution_mode::parallel_threads;
    strict.num_threads = threads;
    core::solver_config bucketed = strict;
    bucketed.growth = runtime::growth_mode::bucketed;

    constexpr int k_reps = 5;
    const auto reference = core::solve_steiner_tree(ds.graph, seeds, strict);
    std::vector<double> strict_wall, bucketed_wall;
    bool identical = true;
    core::growth_stats growth{};
    for (int rep = 0; rep < k_reps; ++rep) {
      util::timer ts;
      const auto s = core::solve_steiner_tree(ds.graph, seeds, strict);
      strict_wall.push_back(ts.seconds());
      util::timer tb;
      const auto b = core::solve_steiner_tree(ds.graph, seeds, bucketed);
      bucketed_wall.push_back(tb.seconds());
      identical = identical && s.tree_edges == reference.tree_edges &&
                  b.tree_edges == reference.tree_edges &&
                  b.total_distance == reference.total_distance;
      growth = b.growth;
    }
    const double strict_p50 = p50_of(strict_wall);
    const double bucketed_p50 = p50_of(bucketed_wall);

    util::table table({"growth", "threads", "p50 wall", "speedup"});
    table.add_row({"strict", std::to_string(threads),
                   util::format_duration(strict_p50), "1.00x"});
    table.add_row({"bucketed", std::to_string(threads),
                   util::format_duration(bucketed_p50),
                   util::format_fixed(strict_p50 / bucketed_p50, 2) + "x"});
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "bucketed phase 1: delta=%llu tile_threshold=%llu buckets=%llu "
        "tiles=%llu\n",
        static_cast<unsigned long long>(growth.delta),
        static_cast<unsigned long long>(growth.tile_threshold),
        static_cast<unsigned long long>(growth.buckets_processed),
        static_cast<unsigned long long>(growth.tiles_emitted));
    std::printf("output identical across strict/bucketed: %s\n",
                identical ? "yes" : "NO — determinism violated");
    const bool faster = bucketed_p50 < strict_p50;
    std::printf("bucketed p50 beats strict p50: %s\n",
                faster ? "yes" : "NO — regression");
    return identical && faster ? 0 : 1;
  }

  // Sequential-engine baseline.
  util::timer seq_wall;
  const auto reference = core::solve_steiner_tree(ds.graph, seeds, base);
  const double seq_seconds = seq_wall.seconds();

  std::size_t max_threads = std::max<std::size_t>(max_threads_flag, hw);
  max_threads = std::min<std::size_t>(
      max_threads, static_cast<std::size_t>(base.num_ranks));

  util::table table({"engine", "threads", "wall", "vs sequential",
                     "vs 1-thread", "identical"});
  table.add_row({"cooperative", "-", util::format_duration(seq_seconds),
                 "1.00x", "-", "ref"});
  double one_thread_seconds = 0.0;
  bool all_identical = true;
  for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
    core::solver_config config = base;
    config.mode = runtime::execution_mode::parallel_threads;
    config.num_threads = threads;
    util::timer wall;
    const auto result = core::solve_steiner_tree(ds.graph, seeds, config);
    const double seconds = wall.seconds();
    if (threads == 1) one_thread_seconds = seconds;
    const bool identical = result.tree_edges == reference.tree_edges &&
                           result.total_distance == reference.total_distance;
    all_identical = all_identical && identical;
    table.add_row({"threaded", std::to_string(threads),
                   util::format_duration(seconds),
                   util::format_fixed(seq_seconds / seconds, 2) + "x",
                   util::format_fixed(one_thread_seconds / seconds, 2) + "x",
                   identical ? "yes" : "NO"});
  }
  std::printf("%s\n", table.render().c_str());

  // ---- per-superstep skew (engine probe) -----------------------------------
  // One traced solve at the widest worker count: every worker records one
  // aggregate sample per superstep (compute + barrier wait), so the skew
  // ratio max/mean compute per superstep shows how evenly rank striping
  // balances the load — the barrier charges every superstep its slowest
  // worker. Tracing is pure observation; the traced tree is asserted
  // identical below like every other configuration.
  {
    core::solver_config config = base;
    config.mode = runtime::execution_mode::parallel_threads;
    config.num_threads = max_threads;
    obs::trace_config trace_cfg;
    obs::query_trace trace(trace_cfg, max_threads);
    config.trace = &trace;
    const auto traced = core::solve_steiner_tree(ds.graph, seeds, config);
    all_identical = all_identical && traced.tree_edges == reference.tree_edges;

    // (phase, superstep) -> per-worker compute seconds.
    std::map<std::pair<std::string, std::uint32_t>, std::vector<double>> steps;
    std::map<std::pair<std::string, std::uint32_t>, double> barrier;
    for (std::size_t lane = 0; lane < trace.probe().lanes(); ++lane) {
      for (const obs::superstep_sample& s : trace.probe().lane_samples(lane)) {
        if (s.rank >= 0) continue;  // per-rank detail rows
        const auto key = std::make_pair(std::string(s.phase), s.superstep);
        steps[key].push_back(s.compute_seconds);
        barrier[key] += s.barrier_wait_seconds;
      }
    }
    double skew_sum = 0.0, skew_max = 0.0;
    std::size_t counted = 0;
    util::table skew_table(
        {"phase", "superstep", "workers", "max compute", "skew", "barrier"});
    for (const auto& [key, computes] : steps) {
      double total = 0.0, worst = 0.0;
      for (const double c : computes) {
        total += c;
        worst = std::max(worst, c);
      }
      const double mean = total / static_cast<double>(computes.size());
      const double skew = mean > 0.0 ? worst / mean : 1.0;
      skew_sum += skew;
      skew_max = std::max(skew_max, skew);
      ++counted;
      // Print the early supersteps of each phase — the frontier-growth part
      // where imbalance actually bites; the tail rounds are near-empty.
      if (key.second < 4) {
        skew_table.add_row({key.first, std::to_string(key.second),
                            std::to_string(computes.size()),
                            util::format_duration(worst),
                            util::format_fixed(skew, 2) + "x",
                            util::format_duration(barrier[key])});
      }
    }
    std::printf("-- per-superstep skew (threads=%zu, first 4 supersteps) --\n",
                max_threads);
    std::printf("%s", skew_table.render().c_str());
    if (counted > 0) {
      std::printf(
          "supersteps sampled: %zu (probe samples %zu, dropped %llu); "
          "compute skew mean %.2fx, worst %.2fx\n\n",
          counted, trace.probe().total_samples(),
          static_cast<unsigned long long>(trace.probe().dropped()),
          skew_sum / static_cast<double>(counted), skew_max);
    }
  }

  std::printf("output identical across all configurations: %s\n",
              all_identical ? "yes" : "NO — determinism violated");
  std::printf(
      "Shape check: \"vs 1-thread\" is the intra-solve scaling curve; on a\n"
      "multi-core host it should approach the worker count for the\n"
      "visitor-dominated phases (expect >= 2x at 4 workers). \"vs\n"
      "sequential\" additionally absorbs the superstep scheduling overhead\n"
      "the cooperative engine does not pay.\n");
  return all_identical ? 0 : 1;
}
