// Ablation: key-path refinement on top of the 2-approximation.
//
// §VI: algorithms with ratio < 2 "iteratively refine a base-solution which
// is typically computed using a 2-approximation algorithm" [38]-[41]. This
// bench quantifies what that refinement buys on our instances: the solver's
// tree is post-processed with key-path exchanges and both trees are
// certified against the dual-ascent lower bound.
#include <cstdio>

#include "baselines/dual_ascent.hpp"
#include "baselines/key_path_improvement.hpp"
#include "bench_common.hpp"

int main() {
  using namespace dsteiner;
  bench::print_header("Ablation: key-path refinement of the base solution",
                      "paper §VI refinement-algorithm discussion", "");

  util::table table({"graph", "|S|", "D(GS) base", "D(GS) refined",
                     "exchanges", "refine wall", "gain %", "cert. ratio base",
                     "cert. ratio refined"});
  for (const char* key : {"LVJ", "PTN", "MCO", "CTS"}) {
    const auto ds = io::load_dataset(key);
    for (const std::size_t s : {100u, 1000u}) {
      std::vector<graph::vertex_id> seeds;
      try {
        seeds = bench::default_seeds(ds.graph, s);
      } catch (const std::invalid_argument&) {
        continue;
      }
      const auto base = core::solve_steiner_tree(ds.graph, seeds, {});
      const auto refined =
          baselines::improve_steiner_tree(ds.graph, seeds, base.tree_edges);
      const auto lb = baselines::dual_ascent_lower_bound(ds.graph, seeds);
      const double gain =
          100.0 * (1.0 - static_cast<double>(refined.total_distance) /
                             static_cast<double>(base.total_distance));
      table.add_row(
          {std::string(key) + "-mini", std::to_string(s),
           util::with_commas(base.total_distance),
           util::with_commas(refined.total_distance),
           util::with_commas(refined.exchanges),
           util::format_duration(refined.seconds),
           util::format_fixed(gain, 2),
           "<= " + util::format_fixed(
                       static_cast<double>(base.total_distance) /
                           static_cast<double>(lb.lower_bound),
                       4),
           "<= " + util::format_fixed(
                       static_cast<double>(refined.total_distance) /
                           static_cast<double>(lb.lower_bound),
                       4)});
    }
    table.add_rule();
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Expected: refinement recovers ~0.1-1.5%% of total distance — the\n"
      "base 2-approximation is already near-optimal on these instances\n"
      "(consistent with the paper's measured 1.05 mean ratio), which is why\n"
      "the paper ships the unrefined algorithm.\n");
  return 0;
}
