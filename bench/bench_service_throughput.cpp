// bench_service_throughput — serving-layer benchmark for the concurrent
// Steiner query service (src/service/), beyond the paper's single-query
// experiments.
//
// Reports:
//   1. queries/sec over a mixed multi-query workload as the worker-thread
//      count grows (wall-clock scaling of the service layer; actual speedup
//      depends on the physical cores available to this process);
//   2. per-path latency distributions (p50/p99): cold solve vs result-cache
//      hit vs warm-start repair, plus the cache-hit and warm-start speedups;
//   3. phase-1 work done by warm-start repairs vs cold solves (visitors
//      processed and messages from phase_metrics) — the mechanism behind the
//      latency win.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/prom_validate.hpp"
#include "service/debug_endpoint.hpp"
#include "service/steiner_service.hpp"

namespace {

using namespace dsteiner;

/// --debug-endpoint: serve /metrics /statusz /tracez while the workload runs
/// and validate the scraped exposition afterwards (the bench-smoke CI check).
bool g_debug_endpoint = false;

/// Scrapes a live debug endpoint bound to `svc` and validates the payloads.
/// Returns 0 when the Prometheus exposition parses clean and the other
/// routes answer; 1 (with diagnostics on stderr) otherwise.
int scrape_debug_endpoint(const service::steiner_service& svc) {
  service::debug_endpoint endpoint(svc);
  if (!endpoint.start()) {
    std::fprintf(stderr, "debug endpoint: bind failed\n");
    return 1;
  }
  const std::string metrics =
      obs::http_body(obs::http_get(endpoint.port(), "/metrics"));
  const std::string statusz =
      obs::http_body(obs::http_get(endpoint.port(), "/statusz"));
  const std::string tracez =
      obs::http_body(obs::http_get(endpoint.port(), "/tracez"));
  const std::string slo = obs::http_body(obs::http_get(endpoint.port(), "/slo"));
  const obs::prom_report report = obs::validate_prometheus(metrics);
  const obs::prom_report slo_report = obs::validate_prometheus(slo);
  std::printf(
      "debug endpoint (127.0.0.1:%u): /metrics %zu series in %zu families, "
      "/statusz %zu bytes, /tracez %zu bytes, /slo %zu series\n",
      endpoint.port(), report.series, report.families, statusz.size(),
      tracez.size(), slo_report.series);
  if (metrics.empty() || !report.ok()) {
    std::fprintf(stderr, "malformed /metrics exposition:\n%s\n",
                 report.to_string().c_str());
    return 1;
  }
  if (statusz.find("queries:") == std::string::npos || tracez.empty() ||
      tracez.front() != '[') {
    std::fprintf(stderr, "debug endpoint: bad /statusz or /tracez payload\n");
    return 1;
  }
  if (slo.empty() || !slo_report.ok() ||
      slo.find("slo_burn_rate{") == std::string::npos) {
    std::fprintf(stderr, "malformed /slo exposition:\n%s\n",
                 slo_report.to_string().c_str());
    return 1;
  }
  return 0;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

double sum(const std::vector<double>& values) {
  double total = 0.0;
  for (const double v : values) total += v;
  return total;
}

struct workload {
  std::vector<service::query> queries;
  std::size_t uniques = 0;
};

/// Mixed serving workload over `g`: `sessions` analysts x (1 cold + repeats +
/// seed-delta edits), interleaved round-robin so concurrent workers contend
/// for the cache the way independent users would.
workload build_workload(const graph::csr_graph& g, std::size_t sessions,
                        std::size_t repeats, std::size_t edits) {
  workload w;
  std::vector<std::vector<service::query>> per_session(sessions);
  for (std::uint64_t s = 0; s < sessions; ++s) {
    service::query q;
    q.seeds = bench::default_seeds(g, 12, /*salt=*/s);
    per_session[s].push_back(q);
    ++w.uniques;
    for (std::size_t r = 0; r < repeats; ++r) per_session[s].push_back(q);
    service::query edit = q;
    for (std::uint64_t e = 0; e < edits; ++e) {
      edit.seeds.push_back((q.seeds[e % q.seeds.size()] + 313 * (e + 1)) %
                           g.num_vertices());
      per_session[s].push_back(edit);
      ++w.uniques;
    }
  }
  bool any = true;
  for (std::size_t i = 0; any; ++i) {
    any = false;
    for (auto& session : per_session) {
      if (i < session.size()) {
        w.queries.push_back(session[i]);
        any = true;
      }
    }
  }
  return w;
}

/// QoS mode (--qos): saturate a small worker pool with a burst of mixed
/// priority classes and report per-class admission and queue-wait outcomes —
/// the acceptance check for the priority admission queue is that interactive
/// requests see strictly lower p50 queue wait than batch under saturation.
/// A second phase then fires deadline-bound requests at the warmed-up cost
/// model to exercise deadline_unmeetable rejections.
int run_qos_mode(const graph::csr_graph& g, core::solver_config solver) {
  using namespace std::chrono_literals;
  bench::print_header(
      "Service QoS: priority admission under saturation",
      "the request/handle serving extension (beyond the paper)",
      "A burst of cold queries (3 priority classes, round-robin) floods a\n"
      "2-worker pool; the priority queue must drain interactive first. The\n"
      "second phase fires tight-deadline requests at the warmed cost model.");

  service::service_config config;
  config.solver = solver;
  config.exec.num_threads = 2;
  config.exec.queue_capacity = 256;
  service::steiner_service svc(graph::csr_graph(g), config);

  constexpr std::size_t k_per_class = 12;
  struct submitted {
    service::query_handle handle;
    service::priority_class priority;
  };
  std::vector<submitted> burst;
  util::timer wall;
  for (std::size_t i = 0; i < k_per_class; ++i) {
    for (const auto priority :
         {service::priority_class::interactive, service::priority_class::batch,
          service::priority_class::background}) {
      service::request r;
      r.q.seeds = bench::default_seeds(
          g, 12, /*salt=*/1000 + i * 3 + service::priority_index(priority));
      r.q.use_cache = false;  // force real solves: keep the queue saturated
      r.q.allow_warm_start = false;
      r.priority = priority;
      burst.push_back({svc.submit(r), priority});
    }
  }

  std::vector<std::vector<double>> waits(service::k_priority_classes);
  std::size_t failed = 0;
  for (auto& s : burst) {
    try {
      const auto qr = s.handle.get();
      waits[service::priority_index(s.priority)].push_back(
          qr.queue_wait_seconds);
    } catch (const std::exception&) {
      ++failed;
    }
  }
  const double burst_seconds = wall.seconds();

  const auto stats = svc.stats();
  util::table table({"class", "admitted", "shed", "done", "p50 wait",
                     "p99 wait"});
  for (std::size_t p = 0; p < service::k_priority_classes; ++p) {
    table.add_row(
        {to_string(static_cast<service::priority_class>(p)),
         std::to_string(stats.admitted_by_priority[p]),
         std::to_string(stats.shed_by_priority[p]),
         std::to_string(waits[p].size()),
         util::format_duration(percentile(waits[p], 0.50)),
         util::format_duration(percentile(waits[p], 0.99))});
  }
  std::printf("%s", table.render().c_str());
  std::printf("burst: %zu requests in %s (%zu failed)\n\n", burst.size(),
              util::format_duration(burst_seconds).c_str(), failed);

  const double interactive_p50 = percentile(waits[0], 0.50);
  const double batch_p50 = percentile(waits[1], 0.50);
  std::printf("check: interactive p50 wait %s batch p50 wait (%s vs %s)\n",
              interactive_p50 < batch_p50 ? "<" : ">=",
              util::format_duration(interactive_p50).c_str(),
              util::format_duration(batch_p50).c_str());

  // Phase 2: the cost model has real cold-solve history now — tight
  // deadlines must be refused at admission, generous ones served.
  std::size_t unmeetable = 0, served = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    service::request r;
    r.q.seeds = bench::default_seeds(g, 12, /*salt=*/5000 + i);
    r.q.use_cache = false;
    r.deadline = std::chrono::steady_clock::now() + (i % 2 == 0 ? 1ms : 60s);
    service::query_handle h = svc.submit(r);
    if (h.status() == service::request_status::rejected) {
      ++unmeetable;
    } else {
      try {
        (void)h.get();
        ++served;
      } catch (const std::exception&) {
      }
    }
  }
  const auto after = svc.stats();
  std::printf(
      "deadline phase: %zu rejected at admission (deadline_unmeetable), "
      "%zu served;\n  counters: deadline_rejected=%llu deadline_expired=%llu "
      "cancelled=%llu displaced=%llu\n",
      unmeetable, served,
      static_cast<unsigned long long>(after.deadline_rejected),
      static_cast<unsigned long long>(after.deadline_expired),
      static_cast<unsigned long long>(after.cancelled),
      static_cast<unsigned long long>(after.exec.displaced));
  if (g_debug_endpoint && scrape_debug_endpoint(svc) != 0) return 1;
  return interactive_p50 < batch_p50 ? 0 : 1;
}

/// Overlap mode (--overlap): the shared-SSSP-fragment acceptance check. A
/// saturated workload of queries drawing most seeds from a hot pool (heavy
/// seed-set overlap, zero exact repeats — the cache and donors cannot help)
/// runs twice: fragment store enabled vs disabled. With the store on, every
/// solve after the first few borrows most of its Voronoi cells instead of
/// regrowing them; the exit status asserts the fragment-assisted solve p50
/// beats the unassisted cold p50.
int run_overlap_mode(const graph::csr_graph& g, core::solver_config solver) {
  bench::print_header(
      "Service overlap: cross-query SSSP fragment reuse",
      "the shared distance substrate (beyond the paper)",
      "Queries share 10 of 12 seeds with a hot pool but never repeat a set:\n"
      "result cache and warm-start donors are disabled, so any win is pure\n"
      "fragment reuse. Same epoch, bit-identical trees either way.");

  // 12-seed queries: 10 from a fixed 14-seed hot pool (rotating), 2 unique.
  const std::vector<graph::vertex_id> pool = bench::default_seeds(g, 14, 777);
  const auto build_queries = [&](std::size_t count) {
    std::vector<service::query> queries;
    for (std::uint64_t i = 0; i < count; ++i) {
      service::query q;
      for (std::uint64_t j = 0; j < 10; ++j) {
        q.seeds.push_back(pool[(i + j) % pool.size()]);
      }
      q.seeds.push_back((pool[0] + 7321 * (i + 1)) % g.num_vertices());
      q.seeds.push_back((pool[1] + 9377 * (i + 1)) % g.num_vertices());
      q.use_cache = false;  // never an exact repeat anyway; keep it honest
      queries.push_back(std::move(q));
    }
    return queries;
  };

  struct run_result {
    std::vector<double> assisted_s, cold_s;
    std::uint64_t assisted_visitors = 0, cold_visitors = 0;
    service::service_stats stats;
  };
  const auto run = [&](bool fragments) {
    service::service_config config;
    config.solver = solver;
    config.exec.num_threads = 4;  // saturation: queries contend for workers
    config.exec.queue_capacity = 256;
    config.enable_warm_start = false;  // isolate the fragment path
    config.enable_cache = false;
    config.enable_fragment_reuse = fragments;
    service::steiner_service svc(graph::csr_graph(g), config);

    const auto queries = build_queries(32);
    std::vector<std::future<service::query_result>> futures;
    futures.reserve(queries.size());
    for (const auto& q : queries) futures.push_back(svc.submit(q));
    run_result r;
    for (auto& f : futures) {
      const auto qr = f.get();
      const auto* voronoi =
          qr.result.phases.find(runtime::phase_names::voronoi);
      const std::uint64_t visitors =
          voronoi != nullptr ? voronoi->visitors_processed : 0;
      if (qr.assist.fragments_injected > 0) {
        r.assisted_s.push_back(qr.solve_seconds);
        r.assisted_visitors += visitors;
      } else {
        r.cold_s.push_back(qr.solve_seconds);
        r.cold_visitors += visitors;
      }
    }
    r.stats = svc.stats();
    return r;
  };

  const run_result off = run(false);
  const run_result on = run(true);

  util::table table({"store", "assisted", "cold", "assisted p50", "cold p50",
                     "frag hits", "published", "evicted"});
  const auto add_row = [&table](const char* name, const run_result& r) {
    table.add_row({name, std::to_string(r.assisted_s.size()),
                   std::to_string(r.cold_s.size()),
                   util::format_duration(percentile(r.assisted_s, 0.50)),
                   util::format_duration(percentile(r.cold_s, 0.50)),
                   std::to_string(r.stats.fragment_hits),
                   std::to_string(r.stats.fragments.published),
                   std::to_string(r.stats.fragments.evictions)});
  };
  add_row("off", off);
  add_row("on", on);
  std::printf("%s", table.render().c_str());

  const double cold_p50 = percentile(off.cold_s, 0.50);
  const double assisted_p50 = percentile(on.assisted_s, 0.50);
  if (!on.assisted_s.empty() && assisted_p50 > 0.0) {
    std::printf("fragment-assisted speedup vs cold (p50): %.1fx\n",
                cold_p50 / assisted_p50);
  }
  if (!on.assisted_s.empty() && !off.cold_s.empty()) {
    std::printf(
        "phase-1 visitors per query: cold %s, fragment-assisted %s (%.1f%%)\n",
        util::with_commas(off.cold_visitors / off.cold_s.size()).c_str(),
        util::with_commas(on.assisted_visitors / on.assisted_s.size()).c_str(),
        100.0 *
            static_cast<double>(on.assisted_visitors / on.assisted_s.size()) /
            static_cast<double>(
                std::max<std::uint64_t>(1, off.cold_visitors / off.cold_s.size())));
  }
  const bool pass = !on.assisted_s.empty() && assisted_p50 < cold_p50;
  std::printf("check: fragment-assisted p50 %s cold p50 (%s vs %s)\n",
              pass ? "<" : ">=",
              util::format_duration(assisted_p50).c_str(),
              util::format_duration(cold_p50).c_str());
  return pass ? 0 : 1;
}

/// Cost-model mode (--cost-model): the learned-admission acceptance check.
/// A mixed workload cycles seed counts so per-query cost varies ~25x; the
/// global-p50 baseline prices every cold solve identically while the RLS
/// model regresses onto |S|, |S|^2 and the other analytic features. The
/// exit status asserts the model's admission-residual p50 is no worse than
/// the baseline's on the same (model-priced) queries.
int run_cost_model_mode(const graph::csr_graph& g,
                        core::solver_config solver) {
  bench::print_header(
      "Service cost model: learned admission estimates vs global p50",
      "the measurement-loop extension (beyond the paper)",
      "Unique seed sets cycling |S| in {4,8,12,16,20} — no cache, no warm\n"
      "starts, every query a real cold solve. The RLS model trains on each\n"
      "completion; once ready it prices admissions, and the paired residual\n"
      "histograms compare it against the global-p50 baseline per query.");

  service::service_config config;
  config.solver = solver;
  config.exec.num_threads = 1;  // synchronous: residual = estimate vs wall
  config.exec.queue_capacity = 64;
  config.enable_cache = false;      // unique sets anyway; keep it honest
  config.enable_warm_start = false;  // isolate the cold-path regression
  service::steiner_service svc(graph::csr_graph(g), config);

  service::debug_endpoint endpoint(svc);
  if (g_debug_endpoint && !endpoint.start()) {
    std::fprintf(stderr, "debug endpoint: bind failed\n");
    return 1;
  }

  constexpr std::size_t k_seed_counts[] = {4, 8, 12, 16, 20};
  constexpr std::size_t k_rounds = 60;
  std::size_t modelled = 0, failed = 0;
  for (std::uint64_t i = 0; i < k_rounds; ++i) {
    service::request r;
    r.q.seeds = bench::default_seeds(g, k_seed_counts[i % 5],
                                     /*salt=*/9000 + i);
    r.q.use_cache = false;
    service::query_handle h = svc.submit(r);
    try {
      (void)h.get();
    } catch (const std::exception&) {
      ++failed;
      continue;
    }
    if (h.admission().model_used) ++modelled;

    if (g_debug_endpoint && i == k_rounds / 2) {
      // Mid-workload /slo scrape: burn-rate gauges must lint while the
      // service is actively scoring completions against its objectives.
      const std::string slo =
          obs::http_body(obs::http_get(endpoint.port(), "/slo"));
      const auto mid = obs::validate_prometheus(slo);
      if (!mid.ok() || slo.find("slo_burn_rate{") == std::string::npos) {
        std::fprintf(stderr, "mid-run /slo malformed:\n%s\n",
                     mid.to_string().c_str());
        return 1;
      }
    }
  }

  const auto snap = svc.snapshot();
  const double model_p50 = snap.estimate_error_model.percentile(50.0);
  const double baseline_p50 = snap.estimate_error_baseline.percentile(50.0);
  const double model_p90 = snap.estimate_error_model.percentile(90.0);
  const double baseline_p90 = snap.estimate_error_baseline.percentile(90.0);

  util::table table({"estimator", "samples", "residual p50", "residual p90"});
  table.add_row({"learned model", std::to_string(snap.estimate_error_model.count),
                 util::format_duration(model_p50),
                 util::format_duration(model_p90)});
  table.add_row({"global p50", std::to_string(snap.estimate_error_baseline.count),
                 util::format_duration(baseline_p50),
                 util::format_duration(baseline_p90)});
  std::printf("%s", table.render().c_str());
  std::printf(
      "model: ready=%d samples=%llu abs_err_ema=%s; %zu/%zu admissions "
      "model-priced (%zu failed)\n",
      snap.cost_model.ready ? 1 : 0,
      static_cast<unsigned long long>(snap.cost_model.samples),
      util::format_duration(snap.cost_model.abs_error_ema_seconds).c_str(),
      modelled, k_rounds, failed);

  const bool pass = modelled > 0 && model_p50 <= baseline_p50;
  std::printf("check: model residual p50 %s baseline residual p50 (%s vs %s)\n",
              pass ? "<=" : ">", util::format_duration(model_p50).c_str(),
              util::format_duration(baseline_p50).c_str());
  if (g_debug_endpoint && scrape_debug_endpoint(svc) != 0) return 1;
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Strict local flag parsing: --threads N (engine workers per solve), --qos
  // (priority-admission experiment) and --overlap (fragment-reuse
  // experiment) instead of the throughput and latency sections.
  std::size_t engine_threads = 0;
  bool qos = false;
  bool overlap = false;
  bool cost_model = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--qos") == 0) {
      qos = true;
      continue;
    }
    if (std::strcmp(argv[i], "--overlap") == 0) {
      overlap = true;
      continue;
    }
    if (std::strcmp(argv[i], "--cost-model") == 0) {
      cost_model = true;
      continue;
    }
    if (std::strcmp(argv[i], "--debug-endpoint") == 0) {
      g_debug_endpoint = true;
      continue;
    }
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const char* text = argv[++i];
      char* end = nullptr;
      const unsigned long long value =
          text[0] == '-' ? 0 : std::strtoull(text, &end, 10);
      if (end == nullptr || *end != '\0' || value == 0) {
        std::fprintf(stderr, "%s: --threads expects a positive integer\n",
                     argv[0]);
        return 2;
      }
      engine_threads = static_cast<std::size_t>(value);
      continue;
    }
    std::fprintf(stderr,
                 "usage: %s [--threads N] [--qos] [--overlap] [--cost-model] "
                 "[--debug-endpoint]\n",
                 argv[0]);
    return 2;
  }

  if (qos || overlap || cost_model) {
    const io::dataset data = io::load_dataset("CTS");
    core::solver_config mode_solver;
    mode_solver.num_ranks = 8;
    mode_solver.allow_disconnected_seeds = true;
    bench::apply_threads(mode_solver, engine_threads);
    if (cost_model) return run_cost_model_mode(data.graph, mode_solver);
    return qos ? run_qos_mode(data.graph, mode_solver)
               : run_overlap_mode(data.graph, mode_solver);
  }

  bench::print_header(
      "Service throughput: queries/sec and per-path latency",
      "the serving-layer extension (beyond the paper's single-query runs)",
      "Paths: cold = full Alg. 3, hit = result cache, warm = seed-delta "
      "repair.\nAll paths return bit-identical trees (determinism). Pass "
      "--threads N to\ngive each solve N threaded-engine workers "
      "(intra-query parallelism).");

  const io::dataset data = io::load_dataset("CTS");
  const graph::csr_graph& g = data.graph;
  std::printf("dataset: %s mirror, %llu vertices, %llu arcs\n\n",
              data.spec.paper_name.c_str(),
              static_cast<unsigned long long>(g.num_vertices()),
              static_cast<unsigned long long>(g.num_arcs()));

  core::solver_config solver;
  solver.num_ranks = 8;
  // Edit deltas may pick seeds outside the largest component; serve forests
  // rather than failing the query (the interactive sessions do the same).
  solver.allow_disconnected_seeds = true;
  bench::apply_threads(solver, engine_threads);

  // ---- 1. throughput vs worker threads -------------------------------------
  {
    std::printf("-- throughput vs worker threads (mixed workload) --\n");
    util::table table({"threads", "queries", "wall", "queries/sec", "cold",
                       "warm", "hits", "coalesced"});
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}, std::size_t{8}}) {
      const workload w = build_workload(g, /*sessions=*/6, /*repeats=*/4,
                                        /*edits=*/3);
      service::service_config config;
      config.solver = solver;
      config.exec.num_threads = threads;
      config.exec.queue_capacity = w.queries.size();
      service::steiner_service svc(graph::csr_graph(g), config);

      util::timer wall;
      std::vector<std::future<service::query_result>> futures;
      futures.reserve(w.queries.size());
      for (const auto& q : w.queries) futures.push_back(svc.submit(q));
      for (auto& f : futures) (void)f.get();
      const double seconds = wall.seconds();

      const auto stats = svc.stats();
      table.add_row(
          {std::to_string(threads), std::to_string(stats.queries),
           util::format_duration(seconds),
           util::format_fixed(static_cast<double>(stats.queries) / seconds, 1),
           std::to_string(stats.cold_solves), std::to_string(stats.warm_solves),
           std::to_string(stats.cache_hits), std::to_string(stats.coalesced)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  // ---- 2. per-path latency -------------------------------------------------
  {
    std::printf("-- per-path latency (single worker, back-to-back) --\n");
    service::service_config config;
    config.solver = solver;
    config.exec.num_threads = 1;
    config.exec.queue_capacity = 64;
    config.cache.capacity = 256;
    config.donor_history = 16;
    service::steiner_service svc(graph::csr_graph(g), config);

    // With --debug-endpoint the server answers scrapes *while* the workload
    // runs — the CI smoke check that observability never blocks serving.
    service::debug_endpoint live_endpoint(svc);
    if (g_debug_endpoint && !live_endpoint.start()) {
      std::fprintf(stderr, "debug endpoint: bind failed\n");
      return 1;
    }

    std::vector<double> cold_s, hit_s, warm_s;
    std::uint64_t cold_visitors = 0, warm_visitors = 0;
    std::uint64_t cold_messages = 0, warm_messages = 0;
    const std::size_t rounds = 24;
    for (std::uint64_t i = 0; i < rounds; ++i) {
      service::query q;
      q.seeds = bench::default_seeds(g, 12, /*salt=*/100 + i);

      if (g_debug_endpoint && i == rounds / 2) {
        // Mid-run scrape: the exposition must parse while solves are live.
        const auto mid = obs::validate_prometheus(
            obs::http_body(obs::http_get(live_endpoint.port(), "/metrics")));
        if (!mid.ok()) {
          std::fprintf(stderr, "mid-run /metrics malformed:\n%s\n",
                       mid.to_string().c_str());
          return 1;
        }
      }

      auto cold = svc.solve(q);
      if (cold.kind != service::solve_kind::cold) continue;  // donor overlap
      cold_s.push_back(cold.solve_seconds);
      if (const auto* m =
              cold.result.phases.find(runtime::phase_names::voronoi)) {
        cold_visitors += m->visitors_processed;
        cold_messages += m->messages_total();
      }

      auto hit = svc.solve(q);
      if (hit.kind == service::solve_kind::cache_hit) {
        hit_s.push_back(hit.total_seconds);
      }

      service::query edited = q;
      edited.seeds.push_back((q.seeds.front() + 271 * (i + 1)) %
                             g.num_vertices());
      auto warm = svc.solve(edited);
      if (warm.kind == service::solve_kind::warm_start) {
        warm_s.push_back(warm.solve_seconds);
        if (const auto* m =
                warm.result.phases.find(runtime::phase_names::voronoi)) {
          warm_visitors += m->visitors_processed;
          warm_messages += m->messages_total();
        }
      }
    }

    util::table table({"path", "samples", "mean", "p50", "p99"});
    const auto add = [&table](const char* name, const std::vector<double>& v) {
      table.add_row({name, std::to_string(v.size()),
                     util::format_duration(v.empty() ? 0.0
                                                     : sum(v) / double(v.size())),
                     util::format_duration(percentile(v, 0.50)),
                     util::format_duration(percentile(v, 0.99))});
    };
    add("cold solve", cold_s);
    add("cache hit", hit_s);
    add("warm start", warm_s);
    std::printf("%s", table.render().c_str());

    const double cold_p50 = percentile(cold_s, 0.50);
    const double hit_p50 = percentile(hit_s, 0.50);
    const double warm_p50 = percentile(warm_s, 0.50);
    if (hit_p50 > 0.0) {
      std::printf("cache-hit speedup vs cold (p50): %.1fx\n",
                  cold_p50 / hit_p50);
    }
    if (warm_p50 > 0.0) {
      std::printf("warm-start speedup vs cold (p50): %.1fx\n",
                  cold_p50 / warm_p50);
    }
    if (warm_visitors > 0 && !warm_s.empty() && !cold_s.empty()) {
      std::printf(
          "phase-1 work per query (Voronoi Cell): cold %s visitors / %s msgs, "
          "warm %s visitors / %s msgs (%.1f%% of cold)\n",
          util::with_commas(cold_visitors / cold_s.size()).c_str(),
          util::with_commas(cold_messages / cold_s.size()).c_str(),
          util::with_commas(warm_visitors / warm_s.size()).c_str(),
          util::with_commas(warm_messages / warm_s.size()).c_str(),
          100.0 * static_cast<double>(warm_visitors / warm_s.size()) /
              static_cast<double>(cold_visitors / cold_s.size()));
    }
    if (g_debug_endpoint && scrape_debug_endpoint(svc) != 0) return 1;
  }
  return 0;
}
