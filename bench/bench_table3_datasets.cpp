// Table III: characteristics of the graph datasets used for evaluation.
//
// The original multi-terabyte graphs are unavailable offline; this prints
// the measured statistics of the bundled synthetic mirrors next to the
// paper-reported full-size numbers so every other bench's inputs are
// documented.
#include <cstdio>

#include "bench_common.hpp"
#include "graph/graph_stats.hpp"

int main() {
  using namespace dsteiner;
  bench::print_header("Table III: dataset characteristics", "paper Table III",
                      "Mirror columns are measured; paper columns reported.");

  util::table table({"graph", "|V|", "2|E|", "max deg", "avg deg",
                     "weights", "memory", "paper |V|", "paper 2|E|"});
  for (const auto& spec : io::dataset_specs()) {
    const auto ds = io::load_dataset(spec.key);
    const auto stats = graph::compute_statistics(ds.graph);
    table.add_row(
        {spec.key + "-mini",
         util::format_count(static_cast<double>(stats.num_vertices)),
         util::format_count(static_cast<double>(stats.num_arcs)),
         util::format_count(static_cast<double>(stats.max_degree)),
         util::format_fixed(stats.avg_degree, 1),
         "[" + std::to_string(stats.min_weight) + ", " +
             util::format_count(static_cast<double>(stats.max_weight)) + "]",
         util::format_bytes(stats.memory_bytes),
         util::format_count(spec.paper_vertices),
         util::format_count(spec.paper_arcs)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Mirrors preserve Table III's size ordering, the RMAT-style skewed\n"
      "degree distributions of web/social graphs, and the per-dataset edge\n"
      "weight ranges; absolute sizes are scaled ~3 orders of magnitude down\n"
      "to fit a single-core container (see DESIGN.md).\n");
  return 0;
}
