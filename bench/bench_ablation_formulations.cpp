// Ablation: algorithmic formulations of the 2-approximation.
//
// §III argues the Voronoi-cell formulation (Mehlhorn) parallelizes better
// than the generalized-MST family (WWW/Widmayer) and avoids KMB's APSP.
// This ablation runs all sequential formulations plus our distributed
// solver on the same instances and reports runtime and quality — the
// work-efficiency vs parallelizability landscape behind the paper's choice.
#include <cstdio>

#include "baselines/kmb.hpp"
#include "baselines/mehlhorn.hpp"
#include "baselines/takahashi.hpp"
#include "baselines/www.hpp"
#include "bench_common.hpp"

int main() {
  using namespace dsteiner;
  bench::print_header("Ablation: 2-approximation formulations",
                      "paper §III design rationale", "");

  util::table table({"graph", "|S|", "algorithm", "wall", "D(GS)", "|ES|"});
  for (const char* key : {"LVJ", "PTN"}) {
    const auto ds = io::load_dataset(key);
    for (const std::size_t s : {100u, 1000u}) {
      const auto seeds = bench::default_seeds(ds.graph, s);

      const auto add = [&](const char* name, double seconds,
                           graph::weight_t distance, std::size_t edges) {
        table.add_row({std::string(key) + "-mini", std::to_string(s), name,
                       util::format_duration(seconds),
                       util::with_commas(distance),
                       util::with_commas(edges)});
      };

      if (s <= 100) {  // KMB's APSP is the quadratic phase being ablated
        const auto kmb = baselines::kmb_steiner_tree(ds.graph, seeds);
        add("KMB (APSP)", kmb.seconds, kmb.total_distance,
            kmb.tree_edges.size());
      }
      const auto mehlhorn = baselines::mehlhorn_steiner_tree(ds.graph, seeds);
      add("Mehlhorn (Voronoi)", mehlhorn.seconds, mehlhorn.total_distance,
          mehlhorn.tree_edges.size());
      const auto www = baselines::www_steiner_tree(ds.graph, seeds);
      add("WWW (gen. MST)", www.seconds, www.total_distance,
          www.tree_edges.size());
      const auto tm = baselines::takahashi_steiner_tree(ds.graph, seeds);
      add("Takahashi (SP heur.)", tm.seconds, tm.total_distance,
          tm.tree_edges.size());

      core::solver_config config;
      util::timer wall;
      const auto ours = core::solve_steiner_tree(ds.graph, seeds, config);
      add("ours (dist. Voronoi)", wall.seconds(), ours.total_distance,
          ours.tree_edges.size());
      table.add_rule();
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Expected: all formulations produce comparable D(GS) (same bound);\n"
      "KMB's APSP phase dominates as |S| grows — exactly what the Voronoi\n"
      "formulation removes. WWW is the most work-efficient sequentially but\n"
      "its component merging is the serialization the paper avoids.\n");
  return 0;
}
