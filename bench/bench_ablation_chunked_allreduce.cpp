// Ablation: chunked vs monolithic Allreduce over the dense EN buffer.
//
// §V-F: "Memory consumption improves when, instead of a single collective
// operation on the entire edge buffer, multiple collective operations are
// performed on smaller chunks, e.g., 500K or 1M items per chunk, at the
// expense of runtime performance of course." This sweep quantifies that
// trade-off on the simulated communicator.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace dsteiner;
  bench::print_header("Ablation: chunked collective on the dense EN buffer",
                      "paper §V-F memory/runtime trade-off", "");

  const auto ds = io::load_dataset("LVJ");
  const auto seeds = bench::default_seeds(ds.graph, 2000);
  std::printf("LVJ-mini, |S|=2000: dense EN buffer has %s slots\n\n",
              util::with_commas(2000ull * 1999 / 2).c_str());

  util::table table({"chunk items", "collective calls", "peak coll. buffer",
                     "GlobalMinE sim", "total sim"});
  for (const std::size_t chunk : {0u, 1000000u, 500000u, 100000u, 20000u}) {
    core::solver_config config;
    config.dense_distance_graph = true;
    config.allreduce_chunk_items = chunk;
    const auto result = core::solve_steiner_tree(ds.graph, seeds, config);
    const auto* global =
        result.phases.find(runtime::phase_names::global_min_edge);
    table.add_row({chunk == 0 ? "monolithic" : util::with_commas(chunk),
                   util::with_commas(global->collective_calls),
                   util::format_bytes(result.memory.collective_buffer_bytes),
                   util::format_duration(global->sim_seconds(config.costs)),
                   util::format_duration(
                       result.phases.total().sim_seconds(config.costs))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Expected: smaller chunks shrink the peak collective buffer linearly\n"
      "while the per-call latency term makes the reduction phase slower —\n"
      "the §V-F trade-off.\n");
  return 0;
}
