// Fig. 4: runtime vs seed-set size |S| on six graphs (PTN, LVJ, FRS, UKW,
// CLW, WDC), phase breakdown, fixed process count per dataset.
//
// Paper's findings to reproduce in shape: (i) Voronoi-cell time *drops* at
// the largest |S| on big graphs (more sources -> faster convergence);
// (ii) the final four phases only become visible at the largest |S| where
// the distance graph G'1 blows up (paper: ~50M edges at |S|=10K).
//
// |S| sweep here is {10, 100, 1000, 4000}: the mirrors are ~300x smaller
// than the paper's graphs, so 4000 seeds plays the role of the paper's 10K
// (it is the same ~0.1-25% fraction of |V| across the mirrors).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace dsteiner;
  bench::print_header("Fig. 4: seed-set size vs runtime, phase breakdown",
                      "paper Fig. 4 (and Table IV companion data)",
                      "Largest sweep point scaled from 10K to 4K seeds "
                      "(graphs are ~300x smaller).");

  for (const char* key : {"PTN", "LVJ", "FRS", "UKW", "CLW", "WDC"}) {
    const auto ds = io::load_dataset(key);
    std::printf("--- %s-mini ---\n", key);
    util::table table({"|S|", "Voronoi", "LocalMinE", "GlobalMinE", "MST",
                       "Pruning", "TreeEdge", "total(sim)", "|E'1|",
                       "tree edges", "wall"});
    for (const std::size_t s : {10u, 100u, 1000u, 4000u}) {
      core::solver_config config;  // fixed 16 ranks for all |S| (paper setup)
      util::timer wall;
      const auto result = core::solve_steiner_tree(ds.graph,
                                                   bench::default_seeds(ds.graph, s),
                                                   config);
      const auto phases = bench::phase_sim_seconds(result, config.costs);
      double total = 0.0;
      std::vector<std::string> row{std::to_string(s)};
      for (const double p : phases) {
        row.push_back(util::format_duration(p));
        total += p;
      }
      row.push_back(util::format_duration(total));
      row.push_back(util::with_commas(result.distance_graph_edges));
      row.push_back(util::with_commas(result.tree_edges.size()));
      row.push_back(util::format_duration(wall.seconds()));
      table.add_row(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf(
      "Shape check: G'1 (|E'1|) grows by ~two orders of magnitude from\n"
      "|S|=1000 to the largest sweep point, making the MST/pruning phases\n"
      "visible on the smaller graphs — the paper's Fig. 4 observation.\n");
  return 0;
}
