// Ablation: scheduler batch size vs priority-queue effectiveness.
//
// The engine drains up to `batch_size` visitors per rank per round. A small
// batch means finer interleaving — the priority queue gets more chances to
// reorder pending work (closer to Dijkstra), while a huge batch degrades
// both policies toward plain label-correcting sweeps. The paper's "best
// effort" caveat (§IV: effectiveness "depends on timeliness of asynchronous
// message propagation") corresponds exactly to this knob.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace dsteiner;
  bench::print_header("Ablation: scheduler batch size (LVJ, |S|=100)",
                      "paper §IV 'best-effort prioritization' caveat", "");

  const auto ds = io::load_dataset("LVJ");
  const auto seeds = bench::default_seeds(ds.graph, 100);

  util::table table({"batch", "FIFO Voronoi msgs", "Priority Voronoi msgs",
                     "improvement"});
  for (const std::size_t batch : {4u, 16u, 64u, 256u, 4096u}) {
    std::uint64_t messages[2] = {0, 0};
    for (const auto policy :
         {runtime::queue_policy::fifo, runtime::queue_policy::priority}) {
      core::solver_config config;
      config.policy = policy;
      config.batch_size = batch;
      const auto result = core::solve_steiner_tree(ds.graph, seeds, config);
      messages[policy == runtime::queue_policy::priority ? 1 : 0] =
          result.phases.find(runtime::phase_names::voronoi)->messages_total();
    }
    table.add_row({std::to_string(batch), util::with_commas(messages[0]),
                   util::with_commas(messages[1]),
                   util::format_fixed(static_cast<double>(messages[0]) /
                                          static_cast<double>(messages[1]),
                                      2) +
                       "x"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Expected: the priority queue's message advantage shrinks as the\n"
      "batch grows (less reordering opportunity) — the simulated analogue\n"
      "of the paper's nondeterministic message-timeliness caveat.\n");
  return 0;
}
