// Shared helpers for the benchmark harnesses. Every bench binary regenerates
// one of the paper's tables/figures: it loads the synthetic mirror datasets,
// selects seeds with the paper's BFS-level methodology, runs the solver, and
// prints the same rows/series the paper reports.
//
// Reported times: "sim" columns are simulated parallel seconds from the cost
// model in runtime/perf_model.hpp (critical-path work across the simulated
// ranks); "wall" columns are single-core wall clock of the whole simulation.
// See EXPERIMENTS.md for the calibration discussion.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/steiner_solver.hpp"
#include "io/dataset.hpp"
#include "runtime/perf_model.hpp"
#include "seed/seed_select.hpp"
#include "util/format.hpp"
#include "util/timer.hpp"

namespace dsteiner::bench {

/// Shared bench CLI parsing. Each binary declares its flags through the
/// accessors below (in any order on the command line), then calls finish(),
/// which aborts with a usage line naming every declared flag if an argument
/// went unrecognised. Values are validated strictly — a malformed value
/// exits with status 2, the same contract the benches previously each
/// hand-rolled around strtoull.
class flag_parser {
 public:
  flag_parser(int argc, char** argv)
      : program_(argc > 0 ? argv[0] : "bench"),
        args_(argv + (argc > 0 ? 1 : 0), argv + argc),
        used_(args_.size(), false) {}

  /// `--name N` with N >= 1; `fallback` when the flag is absent.
  std::size_t positive_uint(const char* name, std::size_t fallback) {
    usage_ += std::string(" [") + name + " N]";
    const char* text = value_of(name);
    if (text == nullptr) return fallback;
    char* end = nullptr;
    // strtoull wraps negatives into huge values; reject them up front.
    const unsigned long long value =
        text[0] == '-' ? 0 : std::strtoull(text, &end, 10);
    if (end == nullptr || *end != '\0' || value == 0) {
      std::fprintf(stderr, "%s: %s expects a positive integer\n", program_,
                   name);
      std::exit(2);
    }
    return static_cast<std::size_t>(value);
  }

  /// `--name a|b|...`: index of the matched choice; `fallback` when absent.
  std::size_t choice(const char* name, std::vector<std::string> choices,
                     std::size_t fallback) {
    std::string alternatives;
    for (const std::string& c : choices) {
      if (!alternatives.empty()) alternatives += "|";
      alternatives += c;
    }
    usage_ += std::string(" [") + name + " " + alternatives + "]";
    const char* text = value_of(name);
    if (text == nullptr) return fallback;
    for (std::size_t i = 0; i < choices.size(); ++i) {
      if (choices[i] == text) return i;
    }
    std::fprintf(stderr, "%s: %s expects %s\n", program_, name,
                 alternatives.c_str());
    std::exit(2);
  }

  /// Call after every flag is declared: any argument no accessor consumed is
  /// unknown, and aborts with the accumulated usage line.
  void finish() const {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (!used_[i]) {
        std::fprintf(stderr, "usage: %s%s\n", program_, usage_.c_str());
        std::exit(2);
      }
    }
  }

 private:
  /// Finds `--name value`, marking both tokens consumed. A trailing flag
  /// with no value is malformed, not unknown, so it errors here.
  const char* value_of(const char* name) {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (std::strcmp(args_[i], name) != 0) continue;
      if (i + 1 >= args_.size()) {
        std::fprintf(stderr, "%s: %s expects a value\n", program_, name);
        std::exit(2);
      }
      used_[i] = used_[i + 1] = true;
      return args_[i + 1];
    }
    return nullptr;
  }

  const char* program_;
  std::vector<char*> args_;
  std::vector<bool> used_;
  std::string usage_;
};

/// Strict `--threads N` flag shared by the engine benches: 0 (flag absent)
/// keeps the cooperative single-thread engine; N >= 1 switches the solver to
/// execution_mode::parallel_threads with N engine workers, making scaling
/// curves reproducible from the CLI. Unknown arguments abort with usage.
inline std::size_t parse_threads_flag(int argc, char** argv) {
  flag_parser flags(argc, argv);
  const std::size_t threads = flags.positive_uint("--threads", 0);
  flags.finish();
  return threads;
}

/// Applies a --threads value to a solver config (no-op for 0).
inline void apply_threads(core::solver_config& config, std::size_t threads) {
  if (threads == 0) return;
  config.mode = runtime::execution_mode::parallel_threads;
  config.num_threads = threads;
}

/// The paper's canonical phase order (chart legends of Figs. 3-6).
inline const std::vector<std::string>& phase_order() {
  static const std::vector<std::string> order = {
      runtime::phase_names::voronoi,        runtime::phase_names::local_min_edge,
      runtime::phase_names::global_min_edge, runtime::phase_names::mst,
      runtime::phase_names::pruning,         runtime::phase_names::tree_edge,
  };
  return order;
}

/// Short column labels for the same phases.
inline const std::vector<std::string>& phase_labels() {
  static const std::vector<std::string> labels = {
      "Voronoi", "LocalMinE", "GlobalMinE", "MST", "Pruning", "TreeEdge"};
  return labels;
}

inline void print_header(const char* experiment, const char* paper_ref,
                         const char* note) {
  std::printf("==============================================================\n");
  std::printf("%s  (reproduces %s)\n", experiment, paper_ref);
  if (note != nullptr && note[0] != '\0') std::printf("%s\n", note);
  std::printf("==============================================================\n\n");
}

/// Per-phase simulated seconds of a result, in phase_order().
inline std::vector<double> phase_sim_seconds(const core::steiner_result& result,
                                             const runtime::cost_model& costs) {
  std::vector<double> seconds;
  for (const auto& name : phase_order()) {
    const auto* metrics = result.phases.find(name);
    seconds.push_back(metrics != nullptr ? metrics->sim_seconds(costs) : 0.0);
  }
  return seconds;
}

/// Per-phase message counts, in phase_order().
inline std::vector<std::uint64_t> phase_messages(
    const core::steiner_result& result) {
  std::vector<std::uint64_t> messages;
  for (const auto& name : phase_order()) {
    const auto* metrics = result.phases.find(name);
    messages.push_back(metrics != nullptr ? metrics->messages_total() : 0);
  }
  return messages;
}

/// BFS-level seeds (the paper's default methodology), deterministic per
/// dataset+count.
inline std::vector<graph::vertex_id> default_seeds(const graph::csr_graph& g,
                                                   std::size_t count,
                                                   std::uint64_t salt = 0) {
  return seed::select_seeds(g, count, seed::seed_strategy::bfs_level,
                            0xbeef + salt);
}

}  // namespace dsteiner::bench
