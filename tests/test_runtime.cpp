// Unit tests for the distributed runtime simulation: partitioning,
// collectives, mailboxes, the visitor engine and the distributed graph view.
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <unordered_map>

#include "graph/generators.hpp"
#include "runtime/comm.hpp"
#include "runtime/dist_graph.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/partition.hpp"
#include "runtime/perf_model.hpp"
#include "runtime/visitor_engine.hpp"
#include "util/hash.hpp"

namespace {

using namespace dsteiner;
using namespace dsteiner::runtime;

TEST(Partitioner, BlockOwnersAreContiguous) {
  const partitioner parts(100, 4, partition_scheme::block);
  EXPECT_EQ(parts.owner(0), 0);
  EXPECT_EQ(parts.owner(24), 0);
  EXPECT_EQ(parts.owner(25), 1);
  EXPECT_EQ(parts.owner(99), 3);
}

TEST(Partitioner, HashCoversAllRanksRoughlyEvenly) {
  const int ranks = 8;
  const partitioner parts(10000, ranks, partition_scheme::hash);
  std::vector<int> counts(ranks, 0);
  for (graph::vertex_id v = 0; v < 10000; ++v) {
    const int r = parts.owner(v);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, ranks);
    ++counts[r];
  }
  for (const int c : counts) {
    EXPECT_GT(c, 10000 / ranks / 2);
    EXPECT_LT(c, 10000 / ranks * 2);
  }
}

TEST(Partitioner, SingleRankOwnsEverything) {
  const partitioner parts(50, 1, partition_scheme::hash);
  for (graph::vertex_id v = 0; v < 50; ++v) EXPECT_EQ(parts.owner(v), 0);
}

TEST(Partitioner, RejectsZeroRanks) {
  EXPECT_THROW(partitioner(10, 0), std::invalid_argument);
}

TEST(Communicator, AllreduceMin) {
  const communicator comm(3, cost_model{});
  std::vector<std::vector<int>> data{{5, 9, 2}, {7, 1, 4}, {6, 8, 3}};
  phase_metrics m;
  comm.allreduce(data, [](int a, int b) { return std::min(a, b); }, m);
  for (const auto& rank : data) {
    EXPECT_EQ(rank, (std::vector<int>{5, 1, 2}));
  }
  EXPECT_EQ(m.collective_calls, 1u);
  EXPECT_GT(m.collective_bytes, 0u);
  EXPECT_GT(m.sim_units, 0.0);
}

TEST(Communicator, AllreduceSum) {
  const communicator comm(4, cost_model{});
  std::vector<std::vector<std::uint64_t>> data(4, std::vector<std::uint64_t>{1, 2});
  phase_metrics m;
  comm.allreduce(data, [](std::uint64_t a, std::uint64_t b) { return a + b; }, m);
  EXPECT_EQ(data[2], (std::vector<std::uint64_t>{4, 8}));
}

TEST(Communicator, ChunkedAllreduceMatchesMonolithic) {
  const communicator comm(3, cost_model{});
  std::vector<std::vector<int>> mono{{9, 4, 7, 2, 8}, {3, 6, 1, 5, 9}, {8, 8, 8, 8, 0}};
  auto chunked = mono;
  phase_metrics m_mono, m_chunked;
  comm.allreduce(mono, [](int a, int b) { return std::min(a, b); }, m_mono);
  comm.allreduce(chunked, [](int a, int b) { return std::min(a, b); }, m_chunked, 2);
  EXPECT_EQ(mono, chunked);
  // Chunking trades more collective calls for smaller buffers.
  EXPECT_EQ(m_mono.collective_calls, 1u);
  EXPECT_EQ(m_chunked.collective_calls, 3u);
  EXPECT_EQ(m_mono.collective_bytes, m_chunked.collective_bytes);
}

TEST(Communicator, PeakBufferTracksLargestCollective) {
  const communicator comm(2, cost_model{});
  comm.reset_peak_buffer();
  std::vector<std::vector<int>> big(2, std::vector<int>(100, 1));
  std::vector<std::vector<int>> small(2, std::vector<int>(10, 1));
  phase_metrics m;
  comm.allreduce(big, [](int a, int b) { return a + b; }, m);
  comm.allreduce(small, [](int a, int b) { return a + b; }, m);
  EXPECT_EQ(comm.peak_buffer_bytes(), 100 * sizeof(int));
  // Chunked reduces the peak.
  comm.reset_peak_buffer();
  comm.allreduce(big, [](int a, int b) { return a + b; }, m, 10);
  EXPECT_EQ(comm.peak_buffer_bytes(), 10 * sizeof(int));
}

TEST(Communicator, AllgatherConcatenatesInRankOrder) {
  const communicator comm(3, cost_model{});
  const std::vector<std::vector<int>> data{{1, 2}, {}, {3}};
  phase_metrics m;
  EXPECT_EQ(comm.allgather(data, m), (std::vector<int>{1, 2, 3}));
}

TEST(Communicator, AllreduceMapMergesWithMin) {
  const communicator comm(2, cost_model{});
  using map_t = std::unordered_map<std::pair<int, int>, int, util::pair_hash>;
  std::vector<map_t> maps(2);
  maps[0][{0, 1}] = 5;
  maps[0][{0, 2}] = 7;
  maps[1][{0, 1}] = 3;
  maps[1][{1, 2}] = 9;
  phase_metrics m;
  comm.allreduce_map(maps, [](int a, int b) { return std::min(a, b); }, m);
  for (const auto& map : maps) {
    ASSERT_EQ(map.size(), 3u);
    EXPECT_EQ(map.at({0, 1}), 3);
    EXPECT_EQ(map.at({0, 2}), 7);
    EXPECT_EQ(map.at({1, 2}), 9);
  }
}

TEST(Communicator, AllreduceMapAccountingMatchesDensePath) {
  // Regression: the map merge used to charge the *sum* of per-rank entry
  // counts in one monolithic call and never recorded a per-chunk buffer. It
  // must mirror the dense allreduce: the payload is the merged (reduced) map,
  // charged per chunk, with note_buffer_bytes per chunk.
  using map_t = std::unordered_map<std::pair<int, int>, int, util::pair_hash>;
  constexpr std::uint64_t entry_bytes = sizeof(std::pair<int, int>) + sizeof(int);
  const communicator comm(3, cost_model{});

  const auto build_maps = [] {
    std::vector<map_t> maps(3);
    // 5 distinct keys; {0,1} duplicated across ranks resolves by min.
    maps[0][{0, 1}] = 5;
    maps[0][{0, 2}] = 7;
    maps[1][{0, 1}] = 3;
    maps[1][{1, 2}] = 9;
    maps[2][{1, 3}] = 4;
    maps[2][{2, 3}] = 6;
    return maps;
  };

  auto mono = build_maps();
  phase_metrics m_mono;
  comm.reset_peak_buffer();
  comm.allreduce_map(mono, [](int a, int b) { return std::min(a, b); }, m_mono);
  EXPECT_EQ(m_mono.collective_calls, 1u);
  EXPECT_EQ(m_mono.collective_bytes, 5 * entry_bytes);  // merged size, not 6
  EXPECT_EQ(comm.peak_buffer_bytes(), 5 * entry_bytes);

  auto chunked = build_maps();
  phase_metrics m_chunked;
  comm.reset_peak_buffer();
  comm.allreduce_map(chunked, [](int a, int b) { return std::min(a, b); },
                     m_chunked, 2);
  EXPECT_EQ(m_chunked.collective_calls, 3u);  // ceil(5 / 2)
  EXPECT_EQ(m_chunked.collective_bytes, m_mono.collective_bytes);
  EXPECT_EQ(comm.peak_buffer_bytes(), 2 * entry_bytes);  // chunked peak shrinks
  EXPECT_GT(m_chunked.sim_units, m_mono.sim_units);  // extra alpha charges
  EXPECT_EQ(mono, chunked);  // accounting change never alters the reduction

  for (const auto& map : mono) {
    ASSERT_EQ(map.size(), 5u);
    EXPECT_EQ(map.at({0, 1}), 3);
  }
}

TEST(Communicator, AllreduceMapPoolFanOutChargesFullMapPeak) {
  // Regression: the parallel replication fan-out copies whole-map replicas
  // concurrently, so the §V-F per-chunk buffer bound recorded by the chunk
  // loop does not describe that path's real peak. The pool branch must
  // charge the full merged map as the collective buffer; the sequential
  // path keeps the chunk bound.
  using map_t = std::unordered_map<std::pair<int, int>, int, util::pair_hash>;
  constexpr std::size_t items = 2048;  // >= the 1024 fan-out threshold
  constexpr std::size_t chunk = 256;
  constexpr std::uint64_t entry_bytes =
      sizeof(std::pair<int, int>) + sizeof(int);
  const auto build_maps = [] {
    std::vector<map_t> maps(2);
    for (int i = 0; i < static_cast<int>(items); ++i) {
      maps[static_cast<std::size_t>(i) % 2][{i, i + 1}] = i;  // disjoint keys
    }
    return maps;
  };
  const auto min_val = [](int a, int b) { return std::min(a, b); };
  phase_metrics m;

  const communicator sequential(2, cost_model{});
  auto seq_maps = build_maps();
  sequential.reset_peak_buffer();
  sequential.allreduce_map(seq_maps, min_val, m, chunk);
  EXPECT_EQ(sequential.peak_buffer_bytes(), chunk * entry_bytes);

  parallel::worker_pool pool(2);
  const communicator pooled(2, cost_model{}, &pool);
  auto pool_maps = build_maps();
  pooled.reset_peak_buffer();
  pooled.allreduce_map(pool_maps, min_val, m, chunk);
  EXPECT_EQ(pooled.peak_buffer_bytes(), items * entry_bytes);
  EXPECT_EQ(pool_maps, seq_maps);  // accounting only; same reduction
}

struct test_visitor {
  graph::vertex_id v = 0;
  std::uint64_t prio = 0;
  [[nodiscard]] graph::vertex_id target() const { return v; }
  [[nodiscard]] std::uint64_t priority() const { return prio; }
};

TEST(Mailbox, FifoPreservesArrivalOrder) {
  mailbox<test_visitor> box(queue_policy::fifo);
  box.push({1, 9});
  box.push({2, 1});
  box.push({3, 5});
  EXPECT_EQ(box.pop().v, 1u);
  EXPECT_EQ(box.pop().v, 2u);
  EXPECT_EQ(box.pop().v, 3u);
  EXPECT_TRUE(box.empty());
}

TEST(Mailbox, PriorityPopsLowestFirst) {
  mailbox<test_visitor> box(queue_policy::priority);
  box.push({1, 9});
  box.push({2, 1});
  box.push({3, 5});
  EXPECT_EQ(box.pop().v, 2u);
  EXPECT_EQ(box.pop().v, 3u);
  EXPECT_EQ(box.pop().v, 1u);
}

TEST(Mailbox, PriorityTiesAreFifoStable) {
  mailbox<test_visitor> box(queue_policy::priority);
  box.push({10, 4});
  box.push({11, 4});
  box.push({12, 4});
  EXPECT_EQ(box.pop().v, 10u);
  EXPECT_EQ(box.pop().v, 11u);
  EXPECT_EQ(box.pop().v, 12u);
}

TEST(Mailbox, SizeAndClear) {
  mailbox<test_visitor> box(queue_policy::priority);
  box.push({1, 1});
  box.push({2, 2});
  EXPECT_EQ(box.size(), 2u);
  box.clear();
  EXPECT_TRUE(box.empty());
}

// A toy engine workload: propagate min label along a path graph.
struct label_visitor {
  graph::vertex_id v = 0;
  std::uint64_t label = 0;
  [[nodiscard]] graph::vertex_id target() const { return v; }
  [[nodiscard]] std::uint64_t priority() const { return label; }
};

class label_handler {
 public:
  label_handler(const graph::csr_graph& g, std::vector<std::uint64_t>& labels)
      : graph_(&g), labels_(&labels) {}

  bool pre_visit(const label_visitor& v, int) {
    if (v.label >= (*labels_)[v.v]) return false;
    (*labels_)[v.v] = v.label;
    return true;
  }

  template <typename Emitter>
  bool visit(const label_visitor& v, int, Emitter& out) {
    if (v.label != (*labels_)[v.v]) return false;
    for (const graph::vertex_id u : graph_->neighbors(v.v)) {
      out.to_vertex(label_visitor{u, v.label + 1});
    }
    return true;
  }

 private:
  const graph::csr_graph* graph_;
  std::vector<std::uint64_t>* labels_;
};

class EngineModes
    : public ::testing::TestWithParam<std::tuple<queue_policy, execution_mode, int>> {};

TEST_P(EngineModes, PropagatesBfsDepthOnPath) {
  const auto [policy, mode, ranks] = GetParam();
  const graph::csr_graph g(graph::generate_path(32));
  const partitioner parts(g.num_vertices(), ranks, partition_scheme::hash);
  std::vector<std::uint64_t> labels(g.num_vertices(), ~std::uint64_t{0});
  label_handler handler(g, labels);
  engine_config config{policy, mode, 4, cost_model{}};
  const auto metrics = run_visitors<label_visitor>(parts, handler,
                                                   {{0, 0}}, config);
  for (graph::vertex_id v = 0; v < 32; ++v) EXPECT_EQ(labels[v], v);
  EXPECT_GT(metrics.visitors_processed, 0u);
  EXPECT_GT(metrics.rounds, 0u);
  if (ranks > 1) EXPECT_GT(metrics.messages_remote, 0u);
  EXPECT_GT(metrics.sim_units, 0.0);
  EXPECT_GT(metrics.queue_peak_items, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, EngineModes,
    ::testing::Combine(::testing::Values(queue_policy::fifo,
                                         queue_policy::priority),
                       ::testing::Values(execution_mode::async,
                                         execution_mode::bsp),
                       ::testing::Values(1, 3, 8)));

TEST(Engine, NoVisitorsTerminatesImmediately) {
  const graph::csr_graph g(graph::generate_path(4));
  const partitioner parts(4, 2, partition_scheme::hash);
  std::vector<std::uint64_t> labels(4, ~std::uint64_t{0});
  label_handler handler(g, labels);
  const auto metrics =
      run_visitors<label_visitor>(parts, handler, {}, engine_config{});
  EXPECT_EQ(metrics.rounds, 0u);
  EXPECT_EQ(metrics.visitors_processed, 0u);
}

TEST(Engine, PreVisitRejectionCounted) {
  const graph::csr_graph g(graph::generate_path(4));
  const partitioner parts(4, 1, partition_scheme::hash);
  std::vector<std::uint64_t> labels(4, 0);  // already optimal: all rejected
  label_handler handler(g, labels);
  const auto metrics = run_visitors<label_visitor>(parts, handler,
                                                   {{0, 5}}, engine_config{});
  EXPECT_EQ(metrics.visitors_processed, 0u);
  EXPECT_EQ(metrics.previsit_rejections, 1u);
}

TEST(DistGraph, LocalVerticesPartitionTheGraph) {
  const graph::csr_graph g(graph::generate_grid(10, 10));
  const dist_graph dgraph(g, {4, partition_scheme::hash, false, 0});
  std::set<graph::vertex_id> seen;
  for (int r = 0; r < 4; ++r) {
    for (const auto v : dgraph.local_vertices(r)) {
      EXPECT_EQ(dgraph.owner(v), r);
      EXPECT_TRUE(seen.insert(v).second) << "vertex owned twice";
    }
  }
  EXPECT_EQ(seen.size(), g.num_vertices());
}

TEST(DistGraph, DelegatesSelectedByDegreeThreshold) {
  const graph::csr_graph g(graph::generate_star(100));  // hub degree 99
  const dist_graph dgraph(g, {4, partition_scheme::hash, true, 50});
  EXPECT_TRUE(dgraph.is_delegate(0));
  EXPECT_FALSE(dgraph.is_delegate(1));
  EXPECT_EQ(dgraph.delegate_count(), 1u);
}

TEST(DistGraph, DelegatesDisabled) {
  const graph::csr_graph g(graph::generate_star(100));
  const dist_graph dgraph(g, {4, partition_scheme::hash, false, 50});
  EXPECT_FALSE(dgraph.is_delegate(0));
  EXPECT_EQ(dgraph.delegate_count(), 0u);
}

TEST(DistGraph, SlicesCoverEveryArcExactlyOnce) {
  const graph::csr_graph g(graph::generate_star(37));
  const int ranks = 4;
  const dist_graph dgraph(g, {ranks, partition_scheme::hash, true, 10});
  std::multiset<graph::vertex_id> from_slices;
  for (int r = 0; r < ranks; ++r) {
    dgraph.for_each_arc_in_slice(0, r, [&](graph::vertex_id t, graph::weight_t) {
      from_slices.insert(t);
    });
  }
  std::multiset<graph::vertex_id> all;
  dgraph.for_each_arc(0, [&](graph::vertex_id t, graph::weight_t) {
    all.insert(t);
  });
  EXPECT_EQ(from_slices, all);
  EXPECT_EQ(dgraph.slice_rank_count(0), ranks);
  EXPECT_EQ(dgraph.slice_rank_count(1), 1);  // leaf: degree 1
}

}  // namespace
