// Unit + property tests for BFS, connected components, Dijkstra,
// Bellman-Ford, multi-source Voronoi and MST.
#include <gtest/gtest.h>

#include <tuple>

#include "graph/bellman_ford.hpp"
#include "graph/bfs.hpp"
#include "graph/connected_components.hpp"
#include "graph/dijkstra.hpp"
#include "graph/generators.hpp"
#include "graph/mst.hpp"
#include "util/random.hpp"

namespace {

using namespace dsteiner;
using namespace dsteiner::graph;

edge_list weighted_random_graph(vertex_id n, std::uint64_t edges,
                                weight_t w_hi, std::uint64_t seed) {
  edge_list list = generate_erdos_renyi(n, edges, seed);
  assign_uniform_weights(list, 1, w_hi, seed ^ 0xabcdULL);
  return list;
}

TEST(Bfs, LevelsOnPath) {
  const csr_graph g(generate_path(6));
  const auto bfs = breadth_first_search(g, 0);
  for (vertex_id v = 0; v < 6; ++v) EXPECT_EQ(bfs.levels[v], v);
  EXPECT_EQ(bfs.max_level, 5u);
  EXPECT_EQ(bfs.reached, 6u);
  EXPECT_EQ(bfs.parent[3], 2u);
  EXPECT_EQ(bfs.parent[0], k_no_vertex);
}

TEST(Bfs, UnreachableMarked) {
  edge_list list(4);
  list.add_undirected_edge(0, 1, 1);
  const csr_graph g(list);
  const auto bfs = breadth_first_search(g, 0);
  EXPECT_EQ(bfs.levels[3], k_unreached_level);
  EXPECT_EQ(bfs.reached, 2u);
}

TEST(ConnectedComponents, CountsAndLargest) {
  edge_list list(10);
  list.add_undirected_edge(0, 1, 1);
  list.add_undirected_edge(1, 2, 1);
  list.add_undirected_edge(4, 5, 1);
  const csr_graph g(list);
  const auto cc = connected_components(g);
  // {0,1,2}, {4,5}, and isolated 3,6,7,8,9.
  EXPECT_EQ(cc.component_count, 7u);
  EXPECT_EQ(cc.sizes[cc.largest_component], 3u);
  const auto largest = largest_component_vertices(g);
  EXPECT_EQ(largest, (std::vector<vertex_id>{0, 1, 2}));
}

TEST(Dijkstra, KnownSmallGraph) {
  edge_list list;
  list.add_undirected_edge(0, 1, 4);
  list.add_undirected_edge(0, 2, 1);
  list.add_undirected_edge(2, 1, 2);
  list.add_undirected_edge(1, 3, 5);
  const csr_graph g(list);
  const auto r = dijkstra(g, 0);
  EXPECT_EQ(r.distance[1], 3u);  // 0-2-1
  EXPECT_EQ(r.distance[3], 8u);
  EXPECT_EQ(r.parent[1], 2u);
}

TEST(Dijkstra, UnreachableIsInfinity) {
  edge_list list(3);
  list.add_undirected_edge(0, 1, 1);
  const auto r = dijkstra(csr_graph(list), 0);
  EXPECT_EQ(r.distance[2], k_inf_distance);
  EXPECT_EQ(r.parent[2], k_no_vertex);
}

TEST(ReconstructPath, RecoverVertexSequence) {
  const csr_graph g(generate_path(5));
  const auto r = dijkstra(g, 0);
  const auto path = reconstruct_path(r.parent, 0, 4);
  EXPECT_EQ(path, (std::vector<vertex_id>{0, 1, 2, 3, 4}));
  EXPECT_EQ(reconstruct_path(r.parent, 0, 0),
            (std::vector<vertex_id>{0}));
}

TEST(ReconstructPath, EmptyWhenUnreachable) {
  edge_list list(3);
  list.add_undirected_edge(0, 1, 1);
  const auto r = dijkstra(csr_graph(list), 0);
  EXPECT_TRUE(reconstruct_path(r.parent, 0, 2).empty());
}

// ---- Property sweep: Dijkstra == Bellman-Ford on random weighted graphs.

class ShortestPathProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ShortestPathProperty, DijkstraMatchesBellmanFord) {
  const auto [n, seed] = GetParam();
  const auto list =
      weighted_random_graph(n, static_cast<std::uint64_t>(n) * 3, 50, seed);
  const csr_graph g(list);
  const auto dj = dijkstra(g, 0);
  const auto bf = bellman_ford(g, 0);
  EXPECT_EQ(dj.distance, bf.distance);
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, ShortestPathProperty,
    ::testing::Combine(::testing::Values(20, 60, 150),
                       ::testing::Values(1, 2, 3, 4, 5)));

// ---- Multi-source Voronoi properties.

class VoronoiOracleProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(VoronoiOracleProperty, CellDistancesAreMinOverSeeds) {
  const auto [n, num_seeds, seed] = GetParam();
  const auto list =
      weighted_random_graph(n, static_cast<std::uint64_t>(n) * 3, 30, seed);
  const csr_graph g(list);
  util::rng gen(seed);
  const auto picks = util::sample_without_replacement(n, num_seeds, gen);
  std::vector<vertex_id> seeds(picks.begin(), picks.end());

  const auto cells = multi_source_voronoi(g, seeds);

  // Per-seed Dijkstra gives the reference minimum.
  std::vector<sssp_result> runs;
  for (const auto s : seeds) runs.push_back(dijkstra(g, s));
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    weight_t best = k_inf_distance;
    vertex_id best_seed = k_no_vertex;
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      if (runs[i].distance[v] < best ||
          (runs[i].distance[v] == best && seeds[i] < best_seed)) {
        best = runs[i].distance[v];
        best_seed = seeds[i];
      }
    }
    EXPECT_EQ(cells.distance[v], best) << "vertex " << v;
    if (best != k_inf_distance) {
      // Tie-break: the owning seed is the smallest among the closest.
      EXPECT_EQ(cells.src[v], best_seed) << "vertex " << v;
    }
  }
}

TEST_P(VoronoiOracleProperty, PredecessorChainsAreConsistent) {
  const auto [n, num_seeds, seed] = GetParam();
  const auto list =
      weighted_random_graph(n, static_cast<std::uint64_t>(n) * 3, 30, seed);
  const csr_graph g(list);
  util::rng gen(seed + 100);
  const auto picks = util::sample_without_replacement(n, num_seeds, gen);
  std::vector<vertex_id> seeds(picks.begin(), picks.end());
  const auto cells = multi_source_voronoi(g, seeds);

  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    if (cells.src[v] == k_no_vertex) continue;
    if (v == cells.src[v]) {
      EXPECT_EQ(cells.distance[v], 0u);
      EXPECT_EQ(cells.pred[v], v);
      continue;
    }
    const vertex_id p = cells.pred[v];
    ASSERT_NE(p, k_no_vertex);
    // Same cell, distance decreases by exactly the connecting edge weight.
    EXPECT_EQ(cells.src[p], cells.src[v]);
    const auto w = g.edge_weight(p, v);
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ(cells.distance[p] + *w, cells.distance[v]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, VoronoiOracleProperty,
    ::testing::Combine(::testing::Values(40, 120), ::testing::Values(2, 5, 12),
                       ::testing::Values(1, 2, 3)));

// ---- MST.

TEST(Mst, KnownSmallGraph) {
  edge_list list;
  list.add_undirected_edge(0, 1, 1);
  list.add_undirected_edge(1, 2, 2);
  list.add_undirected_edge(0, 2, 10);
  const csr_graph g(list);
  const auto prim = prim_mst(g, 0);
  EXPECT_TRUE(prim.spanning);
  EXPECT_EQ(prim.total_weight, 3u);
  EXPECT_EQ(prim.edges.size(), 2u);
}

TEST(Mst, PrimNotSpanningOnDisconnected) {
  edge_list list(4);
  list.add_undirected_edge(0, 1, 1);
  list.add_undirected_edge(2, 3, 1);
  const auto prim = prim_mst(csr_graph(list), 0);
  EXPECT_FALSE(prim.spanning);
  EXPECT_EQ(prim.edges.size(), 1u);
}

TEST(Mst, KruskalForestOnDisconnected) {
  edge_list list(4);
  list.add_undirected_edge(0, 1, 1);
  list.add_undirected_edge(2, 3, 2);
  const auto forest = kruskal_mst(list);
  EXPECT_FALSE(forest.spanning);
  EXPECT_EQ(forest.edges.size(), 2u);
  EXPECT_EQ(forest.total_weight, 3u);
}

TEST(Mst, EmptyGraph) {
  const auto prim = prim_mst(csr_graph(edge_list{}), 0);
  EXPECT_TRUE(prim.spanning);
  EXPECT_TRUE(prim.edges.empty());
}

class MstProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MstProperty, PrimEqualsKruskalWeight) {
  const auto [n, seed] = GetParam();
  auto list = weighted_random_graph(n, static_cast<std::uint64_t>(n) * 2, 100,
                                    seed);
  connect_components(list, 101, seed);
  const csr_graph g(list);
  const auto prim = prim_mst(g, 0);
  const auto kruskal = kruskal_mst(list);
  EXPECT_TRUE(prim.spanning);
  EXPECT_TRUE(kruskal.spanning);
  EXPECT_EQ(prim.total_weight, kruskal.total_weight);
  EXPECT_EQ(prim.edges.size(), kruskal.edges.size());
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, MstProperty,
                         ::testing::Combine(::testing::Values(10, 50, 200),
                                            ::testing::Values(1, 2, 3, 4)));

}  // namespace
