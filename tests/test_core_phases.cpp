// Integration tests for the core algorithm phases: distributed Voronoi
// against the sequential oracle, distance-graph construction, MST, pruning
// and tree-edge collection.
#include <gtest/gtest.h>

#include <tuple>

#include "core/distance_graph.hpp"
#include "core/mst_prim.hpp"
#include "core/pruning.hpp"
#include "core/steiner_state.hpp"
#include "core/tree_edges.hpp"
#include "core/voronoi.hpp"
#include "graph/dijkstra.hpp"
#include "graph/generators.hpp"
#include "runtime/comm.hpp"
#include "seed/seed_select.hpp"
#include "util/random.hpp"

namespace {

using namespace dsteiner;
using namespace dsteiner::core;
using namespace dsteiner::runtime;
using graph::vertex_id;
using graph::weight_t;

graph::csr_graph make_test_graph(int n, std::uint64_t seed) {
  graph::edge_list list =
      graph::generate_erdos_renyi(n, static_cast<std::uint64_t>(n) * 3, seed);
  graph::assign_uniform_weights(list, 1, 40, seed ^ 0x77);
  graph::connect_components(list, 41, seed);
  return graph::csr_graph(list);
}

std::vector<vertex_id> pick_seeds(const graph::csr_graph& g, std::size_t count,
                                  std::uint64_t seed) {
  util::rng gen(seed);
  const auto picks =
      util::sample_without_replacement(g.num_vertices(), count, gen);
  return {picks.begin(), picks.end()};
}

// ---- Distributed Voronoi equals the sequential oracle under every
// combination of ranks, queue policy, execution mode and delegate setting.

class VoronoiDistributed
    : public ::testing::TestWithParam<
          std::tuple<int, queue_policy, execution_mode, bool>> {};

TEST_P(VoronoiDistributed, MatchesSequentialOracle) {
  const auto [ranks, policy, mode, delegates] = GetParam();
  const auto g = make_test_graph(150, 7);
  const auto seeds = pick_seeds(g, 8, 21);

  const dist_graph dgraph(
      g, {ranks, partition_scheme::hash, delegates, delegates ? 8u : 0u});
  steiner_state state(g.num_vertices());
  const engine_config config{policy, mode, 16, cost_model{}};
  const auto metrics = compute_voronoi_cells(dgraph, seeds, state, config);

  const auto oracle = graph::multi_source_voronoi(g, seeds);
  EXPECT_EQ(state.distance, oracle.distance);
  EXPECT_EQ(state.src, oracle.src);
  EXPECT_EQ(state.pred, oracle.pred);
  EXPECT_GT(metrics.visitors_processed, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, VoronoiDistributed,
    ::testing::Combine(::testing::Values(1, 4, 16),
                       ::testing::Values(queue_policy::fifo,
                                         queue_policy::priority),
                       ::testing::Values(execution_mode::async,
                                         execution_mode::bsp),
                       ::testing::Values(false, true)));

TEST(VoronoiDistributed, PriorityQueueSendsFewerMessages) {
  // The paper's core claim (Fig. 6): message prioritization cuts traffic.
  graph::edge_list list = graph::generate_erdos_renyi(600, 2400, 3);
  graph::assign_uniform_weights(list, 1, 1000, 5);
  graph::connect_components(list, 1001, 3);
  const graph::csr_graph g(list);
  const auto seeds = pick_seeds(g, 6, 9);
  const dist_graph dgraph(g, {4, partition_scheme::hash, false, 0});

  steiner_state fifo_state(g.num_vertices());
  steiner_state prio_state(g.num_vertices());
  const auto fifo_metrics = compute_voronoi_cells(
      dgraph, seeds, fifo_state,
      {queue_policy::fifo, execution_mode::async, 16, cost_model{}});
  const auto prio_metrics = compute_voronoi_cells(
      dgraph, seeds, prio_state,
      {queue_policy::priority, execution_mode::async, 16, cost_model{}});

  EXPECT_EQ(fifo_state.distance, prio_state.distance);  // result identical
  EXPECT_LT(prio_metrics.messages_total(), fifo_metrics.messages_total());
}

// ---- Distance graph construction.

class DistanceGraphPhase
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(DistanceGraphPhase, MatchesSequentialScan) {
  const auto [ranks, dense] = GetParam();
  const auto g = make_test_graph(120, 11);
  const auto seeds = pick_seeds(g, 6, 13);

  const dist_graph dgraph(g, {ranks, partition_scheme::hash, true, 16});
  steiner_state state(g.num_vertices());
  const engine_config config{queue_policy::priority, execution_mode::async, 16,
                             cost_model{}};
  (void)compute_voronoi_cells(dgraph, seeds, state, config);

  std::vector<cross_edge_map> per_rank;
  (void)find_local_min_edges(dgraph, state, per_rank, config);
  const communicator comm(ranks, cost_model{});
  global_reduce_options options;
  options.dense = dense;
  options.seeds = seeds;
  (void)reduce_global_min_edges(comm, per_rank, options);

  // Sequential reference: scan all undirected edges once.
  cross_edge_map reference;
  for (vertex_id u = 0; u < g.num_vertices(); ++u) {
    if (state.src[u] == graph::k_no_vertex) continue;
    const auto nbrs = g.neighbors(u);
    const auto wts = g.weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vertex_id v = nbrs[i];
      if (u >= v || state.src[v] == graph::k_no_vertex) continue;
      if (state.src[u] == state.src[v]) continue;
      const seed_pair key{std::min(state.src[u], state.src[v]),
                          std::max(state.src[u], state.src[v])};
      const cross_edge_entry candidate{
          state.distance[u] + wts[i] + state.distance[v], std::min(u, v),
          std::max(u, v), wts[i]};
      const auto [it, inserted] = reference.emplace(key, candidate);
      if (!inserted) it->second = min_entry(it->second, candidate);
    }
  }

  for (int r = 0; r < ranks; ++r) {
    const auto& map = per_rank[static_cast<std::size_t>(r)];
    ASSERT_EQ(map.size(), reference.size()) << "rank " << r;
    for (const auto& [key, entry] : reference) {
      const auto it = map.find(key);
      ASSERT_NE(it, map.end());
      EXPECT_EQ(it->second, entry);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SparseAndDense, DistanceGraphPhase,
                         ::testing::Combine(::testing::Values(1, 3, 8),
                                            ::testing::Values(false, true)));

TEST(DistanceGraphPhase, ChunkedDenseMatchesMonolithic) {
  const auto g = make_test_graph(100, 17);
  const auto seeds = pick_seeds(g, 7, 19);
  const dist_graph dgraph(g, {4, partition_scheme::hash, false, 0});
  steiner_state state(g.num_vertices());
  const engine_config config{};
  (void)compute_voronoi_cells(dgraph, seeds, state, config);

  std::vector<cross_edge_map> mono, chunked;
  (void)find_local_min_edges(dgraph, state, mono, config);
  chunked = mono;
  const communicator comm(4, cost_model{});
  global_reduce_options mono_opts{true, seeds, 0};
  global_reduce_options chunk_opts{true, seeds, 3};
  (void)reduce_global_min_edges(comm, mono, mono_opts);
  (void)reduce_global_min_edges(comm, chunked, chunk_opts);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(mono[r].size(), chunked[r].size());
    for (const auto& [key, entry] : mono[r]) {
      EXPECT_EQ(chunked[r].at(key), entry);
    }
  }
}

TEST(DensePairIndex, IsABijection) {
  const std::size_t n = 9;
  std::vector<bool> hit(n * (n - 1) / 2, false);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const std::size_t slot = dense_pair_index(i, j, n);
      ASSERT_LT(slot, hit.size());
      EXPECT_FALSE(hit[slot]);
      hit[slot] = true;
    }
  }
  for (const bool h : hit) EXPECT_TRUE(h);
}

// ---- MST of G'1 and pruning.

TEST(DistanceGraphMst, SpansSeedsOnConnectedGraph) {
  const auto g = make_test_graph(80, 23);
  const auto seeds = pick_seeds(g, 5, 29);
  const dist_graph dgraph(g, {4, partition_scheme::hash, false, 0});
  steiner_state state(g.num_vertices());
  const engine_config config{};
  (void)compute_voronoi_cells(dgraph, seeds, state, config);
  std::vector<cross_edge_map> per_rank;
  (void)find_local_min_edges(dgraph, state, per_rank, config);
  const communicator comm(4, cost_model{});
  (void)reduce_global_min_edges(comm, per_rank, {});

  runtime::phase_metrics metrics;
  const auto mst = compute_distance_graph_mst(per_rank.front(), seeds, comm,
                                              metrics);
  EXPECT_TRUE(mst.spans_all_seeds);
  EXPECT_EQ(mst.mst_pairs.size(), seeds.size() - 1);
  EXPECT_GT(metrics.sim_units, 0.0);
}

TEST(DistanceGraphMst, ForestWhenSeedsDisconnected) {
  graph::edge_list list(6);
  list.add_undirected_edge(0, 1, 1);
  list.add_undirected_edge(2, 3, 1);
  const graph::csr_graph g(list);
  const std::vector<vertex_id> seeds{0, 1, 2, 3};
  const dist_graph dgraph(g, {2, partition_scheme::hash, false, 0});
  steiner_state state(g.num_vertices());
  (void)compute_voronoi_cells(dgraph, seeds, state, engine_config{});
  std::vector<cross_edge_map> per_rank;
  (void)find_local_min_edges(dgraph, state, per_rank, engine_config{});
  const communicator comm(2, cost_model{});
  (void)reduce_global_min_edges(comm, per_rank, {});
  runtime::phase_metrics metrics;
  const auto mst = compute_distance_graph_mst(per_rank.front(), seeds, comm,
                                              metrics);
  EXPECT_FALSE(mst.spans_all_seeds);
  EXPECT_EQ(mst.mst_pairs.size(), 2u);  // one bridge per component
}

TEST(Pruning, KeepsExactlyMstPairs) {
  const auto g = make_test_graph(100, 31);
  const auto seeds = pick_seeds(g, 8, 37);
  const dist_graph dgraph(g, {4, partition_scheme::hash, false, 0});
  steiner_state state(g.num_vertices());
  (void)compute_voronoi_cells(dgraph, seeds, state, engine_config{});
  std::vector<cross_edge_map> per_rank;
  (void)find_local_min_edges(dgraph, state, per_rank, engine_config{});
  const communicator comm(4, cost_model{});
  (void)reduce_global_min_edges(comm, per_rank, {});
  runtime::phase_metrics metrics;
  const auto mst =
      compute_distance_graph_mst(per_rank.front(), seeds, comm, metrics);

  const std::size_t before = per_rank.front().size();
  (void)prune_cross_edges(comm, per_rank, mst.mst_pairs);
  for (const auto& map : per_rank) {
    EXPECT_EQ(map.size(), mst.mst_pairs.size());
    for (const auto& pair : mst.mst_pairs) EXPECT_TRUE(map.contains(pair));
  }
  EXPECT_GE(before, mst.mst_pairs.size());
}

}  // namespace
