// Epoch subsystem tests: copy-on-write overlay semantics, lazy/cheap
// materialization, chained fingerprints, compaction, delta composition — and
// the edge-delta warm starts built on top: a repair across a graph mutation
// must be bit-identical to a cold solve on the mutated graph, in both the
// sequential and the threaded engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <vector>

#include "core/steiner_solver.hpp"
#include "core/warm_start.hpp"
#include "graph/epoch_graph.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

namespace {

using namespace dsteiner;
using namespace dsteiner::core;
using graph::edge_delta;
using graph::edge_edit;
using graph::epoch_graph;
using graph::epoch_store;
using graph::vertex_id;
using graph::weight_t;

graph::csr_graph make_connected_graph(int n, weight_t w_hi, std::uint64_t seed) {
  graph::edge_list list =
      graph::generate_erdos_renyi(n, static_cast<std::uint64_t>(n) * 3, seed);
  graph::assign_uniform_weights(list, 1, w_hi, seed ^ 0x99);
  graph::connect_components(list, w_hi + 1, seed);
  return graph::csr_graph(list);
}

/// Rebuilds the graph an epoch should describe, from scratch through the
/// edge-list path — the reference for materialization equivalence.
graph::csr_graph reference_csr(const epoch_graph& epoch) {
  graph::edge_list list;
  list.set_num_vertices(epoch.num_vertices());
  for (vertex_id u = 0; u < epoch.num_vertices(); ++u) {
    const auto nbrs = epoch.neighbors(u);
    const auto wts = epoch.weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (u < nbrs[i]) list.add_undirected_edge(u, nbrs[i], wts[i]);
    }
  }
  return graph::csr_graph(list);
}

void expect_same_tree(const steiner_result& a, const steiner_result& b) {
  EXPECT_EQ(a.total_distance, b.total_distance);
  EXPECT_EQ(a.tree_edges, b.tree_edges);
  EXPECT_EQ(a.num_seeds, b.num_seeds);
  EXPECT_EQ(a.spans_all_seeds, b.spans_all_seeds);
}

// ---- epoch_graph ------------------------------------------------------------

TEST(EpochGraph, BaseEpochSharesTheCsr) {
  const auto g = make_connected_graph(60, 10, 1);
  const std::uint64_t fp = g.fingerprint();
  const auto base = epoch_graph::make_base(g);
  EXPECT_EQ(base->epoch_id(), 0u);
  EXPECT_EQ(base->fingerprint(), fp);  // continuous with structural keys
  EXPECT_EQ(base->num_vertices(), g.num_vertices());
  EXPECT_EQ(base->num_arcs(), g.num_arcs());
  EXPECT_EQ(base->overlay_rows(), 0u);
  EXPECT_EQ(base->csr()->fingerprint(), fp);
  EXPECT_EQ(base->parent(), nullptr);
}

TEST(EpochGraph, DeriveIsLazyAndCopiesOnlyTouchedRows) {
  const auto base = epoch_graph::make_base(make_connected_graph(80, 10, 2));
  const auto nbrs = base->neighbors(5);
  ASSERT_FALSE(nbrs.empty());
  const vertex_id other = nbrs.front();

  edge_delta delta;
  delta.edits.push_back(edge_edit::reweight(5, other, 999));
  const auto next = base->derive(delta, /*compact_fraction=*/0.25);

  EXPECT_EQ(next->epoch_id(), 1u);
  EXPECT_NE(next->fingerprint(), base->fingerprint());
  EXPECT_FALSE(next->materialized());  // derivation did not build a CSR
  EXPECT_EQ(next->overlay_rows(), 2u);  // exactly the two endpoint rows
  EXPECT_EQ(next->parent(), base);
  ASSERT_EQ(next->delta_from_parent().size(), 1u);
  EXPECT_TRUE(next->delta_from_parent().front().raised());

  // Overlay reads see the edit without materialization; the base is intact.
  EXPECT_EQ(next->edge_weight(5, other), std::optional<weight_t>(999));
  EXPECT_EQ(next->edge_weight(other, 5), std::optional<weight_t>(999));
  EXPECT_NE(base->edge_weight(5, other), std::optional<weight_t>(999));
  EXPECT_EQ(next->num_arcs(), base->num_arcs());
}

TEST(EpochGraph, MaterializationMatchesEdgeListRebuild) {
  const auto base = epoch_graph::make_base(make_connected_graph(100, 20, 3));
  edge_delta delta;
  const auto row7 = base->neighbors(7);
  ASSERT_GE(row7.size(), 2u);
  delta.edits.push_back(edge_edit::reweight(7, row7[0], 123));
  delta.edits.push_back(edge_edit::disable(7, row7[1]));
  // A brand-new edge between two vertices that are not yet adjacent.
  std::optional<std::pair<vertex_id, vertex_id>> fresh;
  for (vertex_id u = 0; u < base->num_vertices() && !fresh; ++u) {
    for (vertex_id v = u + 1; v < base->num_vertices(); ++v) {
      if (!base->edge_weight(u, v)) {
        fresh = {u, v};
        break;
      }
    }
  }
  ASSERT_TRUE(fresh.has_value());
  delta.edits.push_back(edge_edit::enable(fresh->first, fresh->second, 4));

  const auto next = base->derive(delta);
  const auto materialized = next->csr();
  const auto reference = reference_csr(*next);
  // Bit-identical arrays => identical structural fingerprint: the patch-based
  // materialization is indistinguishable from the edge-list path.
  EXPECT_EQ(materialized->offsets(), reference.offsets());
  EXPECT_EQ(materialized->targets(), reference.targets());
  EXPECT_EQ(materialized->arc_weights(), reference.arc_weights());
  EXPECT_EQ(materialized->fingerprint(), reference.fingerprint());
  EXPECT_EQ(next->num_arcs(), materialized->num_arcs());
  EXPECT_TRUE(next->materialized());

  next->release_materialization();
  EXPECT_FALSE(next->materialized());
  EXPECT_EQ(next->csr()->fingerprint(), reference.fingerprint());  // rebuilds
}

TEST(EpochGraph, RejectsInvalidEdits) {
  const auto base = epoch_graph::make_base(make_connected_graph(40, 10, 4));
  const vertex_id u = 3;
  const auto nbrs = base->neighbors(u);
  ASSERT_FALSE(nbrs.empty());
  const vertex_id v = nbrs.front();
  std::optional<vertex_id> non_adjacent;
  for (vertex_id w = 0; w < base->num_vertices(); ++w) {
    if (w != u && !base->edge_weight(u, w)) {
      non_adjacent = w;
      break;
    }
  }
  ASSERT_TRUE(non_adjacent.has_value());

  const auto derive_one = [&](edge_edit edit) {
    edge_delta delta;
    delta.edits.push_back(edit);
    return base->derive(delta);
  };
  EXPECT_THROW((void)derive_one(edge_edit::reweight(u, 100000, 5)),
               std::invalid_argument);  // out of range
  EXPECT_THROW((void)derive_one(edge_edit::reweight(u, u, 5)),
               std::invalid_argument);  // self loop
  EXPECT_THROW((void)derive_one(edge_edit::reweight(u, v, 0)),
               std::invalid_argument);  // weights are >= 1
  EXPECT_THROW((void)derive_one(edge_edit::reweight(u, *non_adjacent, 5)),
               std::invalid_argument);  // absent edge
  EXPECT_THROW((void)derive_one(edge_edit::disable(u, *non_adjacent)),
               std::invalid_argument);
  EXPECT_THROW((void)derive_one(edge_edit::enable(u, v, 5)),
               std::invalid_argument);  // already present
}

TEST(EpochGraph, CompactionRebasesAndPreservesContent) {
  const auto base = epoch_graph::make_base(make_connected_graph(60, 10, 5));
  // Reweight every edge: the overlay touches every row, far past any
  // reasonable compaction fraction.
  edge_delta delta;
  for (vertex_id u = 0; u < base->num_vertices(); ++u) {
    const auto nbrs = base->neighbors(u);
    const auto wts = base->weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (u < nbrs[i]) delta.edits.push_back(edge_edit::reweight(u, nbrs[i], wts[i] + 7));
    }
  }
  const auto next = base->derive(delta, /*compact_fraction=*/0.1);
  EXPECT_TRUE(next->compacted());
  EXPECT_EQ(next->overlay_rows(), 0u);  // rebased: fresh CSR, empty overlay
  EXPECT_EQ(next->parent(), base);      // provenance survives rebasing
  const auto reference = reference_csr(*next);
  EXPECT_EQ(next->csr()->fingerprint(), reference.fingerprint());

  // compact_fraction 0 disables compaction outright.
  const auto lazy = base->derive(delta, /*compact_fraction=*/0.0);
  EXPECT_FALSE(lazy->compacted());
  EXPECT_GT(lazy->overlay_rows(), 0u);
  EXPECT_EQ(lazy->csr()->fingerprint(), reference.fingerprint());
}

TEST(EpochGraph, FingerprintChainsAreReproducible) {
  const auto g = make_connected_graph(50, 10, 6);
  const auto a0 = epoch_graph::make_base(graph::csr_graph(g));
  const auto b0 = epoch_graph::make_base(graph::csr_graph(g));
  const auto nbrs = a0->neighbors(2);
  ASSERT_FALSE(nbrs.empty());
  edge_delta delta;
  delta.edits.push_back(edge_edit::reweight(2, nbrs.front(), 55));
  const auto a1 = a0->derive(delta);
  const auto b1 = b0->derive(delta);
  EXPECT_EQ(a1->fingerprint(), b1->fingerprint());  // same history, same key
  // An empty delta still advances the epoch and the fingerprint: epochs are
  // provenance identities, not content hashes.
  const auto a2 = a1->derive(edge_delta{});
  EXPECT_EQ(a2->epoch_id(), 2u);
  EXPECT_NE(a2->fingerprint(), a1->fingerprint());
  EXPECT_EQ(a2->csr()->fingerprint(), a1->csr()->fingerprint());
}

// ---- epoch_store ------------------------------------------------------------

TEST(EpochStore, AdvanceRetiresBeyondTheLiveWindow) {
  epoch_store::config cfg;
  cfg.max_live_epochs = 2;
  epoch_store store(make_connected_graph(50, 10, 7), cfg);
  EXPECT_EQ(store.current()->epoch_id(), 0u);
  EXPECT_EQ(store.live_count(), 1u);

  const auto nbrs = store.current()->neighbors(1);
  ASSERT_FALSE(nbrs.empty());
  edge_delta delta;
  delta.edits.push_back(edge_edit::reweight(1, nbrs.front(), 77));

  (void)store.advance(delta);
  EXPECT_EQ(store.live_count(), 2u);
  EXPECT_EQ(store.first_live_epoch(), 0u);

  (void)store.advance(edge_delta{});
  EXPECT_EQ(store.current()->epoch_id(), 2u);
  EXPECT_EQ(store.live_count(), 2u);
  EXPECT_EQ(store.first_live_epoch(), 1u);
  EXPECT_EQ(store.find(0), nullptr);  // retired
  ASSERT_NE(store.find(1), nullptr);
  EXPECT_EQ(store.find(1)->epoch_id(), 1u);
  EXPECT_EQ(store.find(99), nullptr);
}

TEST(EpochStore, DeltaBetweenFoldsAndCancels) {
  epoch_store store(make_connected_graph(50, 10, 8));
  const auto base = store.current();
  const auto nbrs = base->neighbors(4);
  ASSERT_GE(nbrs.size(), 2u);
  const vertex_id a = nbrs[0];
  vertex_id b = graph::k_no_vertex;
  for (const vertex_id cand : nbrs) {
    if (cand != a) {
      b = cand;
      break;
    }
  }
  ASSERT_NE(b, graph::k_no_vertex);
  const weight_t original = *base->edge_weight(4, a);

  edge_delta first;
  first.edits.push_back(edge_edit::reweight(4, a, original + 5));
  first.edits.push_back(edge_edit::disable(4, b));
  (void)store.advance(first);
  edge_delta second;
  second.edits.push_back(edge_edit::reweight(4, a, original));  // undo
  (void)store.advance(second);

  const auto composed = store.delta_between(0, 2);
  ASSERT_TRUE(composed.has_value());
  // The reweight round-trip folded away; only the disable survives.
  ASSERT_EQ(composed->size(), 1u);
  EXPECT_EQ(composed->front().u, std::min<vertex_id>(4, b));
  EXPECT_EQ(composed->front().v, std::max<vertex_id>(4, b));
  EXPECT_TRUE(composed->front().had_edge);
  EXPECT_FALSE(composed->front().has_edge);

  EXPECT_TRUE(store.delta_between(1, 1).has_value());
  EXPECT_TRUE(store.delta_between(1, 1)->empty());
  EXPECT_FALSE(store.delta_between(2, 1).has_value());  // backwards
  EXPECT_FALSE(store.delta_between(5, 6).has_value());  // unknown
}

// ---- edge-delta warm starts -------------------------------------------------

solver_config quiet_solver() {
  solver_config config;
  config.num_ranks = 8;
  config.validate = true;
  config.allow_disconnected_seeds = true;
  return config;
}

/// Applies `delta` to `epoch`, then checks the edge-warm repair from a donor
/// on `epoch` against a cold solve on the derived epoch.
void check_edge_warm(const epoch_graph::ptr& epoch, const edge_delta& delta,
                     const std::vector<vertex_id>& seeds,
                     const solver_config& config) {
  solve_artifacts donor;
  (void)solve_steiner_tree_capture(*epoch->csr(), seeds, config, donor);
  const auto next = epoch->derive(delta);
  warm_start_stats stats;
  const auto warm = solve_steiner_tree_edge_warm(
      *next->csr(), seeds, donor, epoch->csr()->fingerprint(),
      next->delta_from_parent(), config, nullptr, &stats);
  const auto cold = solve_steiner_tree(*next->csr(), seeds, config);
  expect_same_tree(warm, cold);
  EXPECT_EQ(stats.edge_edits, next->delta_from_parent().size());
}

TEST(EdgeWarmStart, ReweightRaiseEqualsCold) {
  const auto base = epoch_graph::make_base(make_connected_graph(150, 20, 20));
  const std::vector<vertex_id> seeds{3, 40, 77, 120};
  // Raise a tree-ish edge near a seed: guaranteed to damage some witnesses.
  const auto nbrs = base->neighbors(3);
  ASSERT_FALSE(nbrs.empty());
  edge_delta delta;
  delta.edits.push_back(edge_edit::reweight(3, nbrs.front(), 500));
  check_edge_warm(base, delta, seeds, quiet_solver());
}

TEST(EdgeWarmStart, ReweightLowerEqualsCold) {
  const auto base = epoch_graph::make_base(make_connected_graph(150, 20, 21));
  const std::vector<vertex_id> seeds{10, 60, 90, 140};
  edge_delta delta;
  // A drastic shortcut between two far-apart seeds' neighbourhoods.
  const auto nbrs = base->neighbors(60);
  ASSERT_FALSE(nbrs.empty());
  delta.edits.push_back(edge_edit::reweight(60, nbrs.front(), 1));
  check_edge_warm(base, delta, seeds, quiet_solver());
}

TEST(EdgeWarmStart, DisableAndEnableEqualCold) {
  const auto base = epoch_graph::make_base(make_connected_graph(150, 20, 22));
  const std::vector<vertex_id> seeds{5, 50, 100};
  const auto nbrs = base->neighbors(50);
  ASSERT_GE(nbrs.size(), 1u);
  edge_delta delta;
  delta.edits.push_back(edge_edit::disable(50, nbrs.front()));
  std::optional<std::pair<vertex_id, vertex_id>> fresh;
  for (vertex_id v = 0; v < base->num_vertices() && !fresh; ++v) {
    if (v != 5 && !base->edge_weight(5, v)) fresh = {vertex_id{5}, v};
  }
  ASSERT_TRUE(fresh.has_value());
  delta.edits.push_back(edge_edit::enable(fresh->first, fresh->second, 2));
  check_edge_warm(base, delta, seeds, quiet_solver());
}

TEST(EdgeWarmStart, CombinedSeedAndEdgeDeltaEqualsCold) {
  const auto base = epoch_graph::make_base(make_connected_graph(200, 25, 23));
  const std::vector<vertex_id> donor_seeds{5, 60, 110, 170};
  const std::vector<vertex_id> target_seeds{5, 42, 110, 170, 188};
  const solver_config config = quiet_solver();

  solve_artifacts donor;
  (void)solve_steiner_tree_capture(*base->csr(), donor_seeds, config, donor);
  const auto nbrs = base->neighbors(110);
  ASSERT_FALSE(nbrs.empty());
  edge_delta delta;
  delta.edits.push_back(edge_edit::reweight(110, nbrs.front(), 300));
  const auto next = base->derive(delta);

  warm_start_stats stats;
  const auto warm = solve_steiner_tree_edge_warm(
      *next->csr(), target_seeds, donor, base->csr()->fingerprint(),
      next->delta_from_parent(), config, nullptr, &stats);
  const auto cold = solve_steiner_tree(*next->csr(), target_seeds, config);
  expect_same_tree(warm, cold);
  EXPECT_EQ(stats.added_seeds, 2u);
  EXPECT_EQ(stats.removed_seeds, 1u);
  EXPECT_EQ(stats.edge_edits, 1u);
}

TEST(EdgeWarmStart, MismatchedDonorFingerprintThrows) {
  const auto base = epoch_graph::make_base(make_connected_graph(80, 10, 24));
  const solver_config config = quiet_solver();
  solve_artifacts donor;
  (void)solve_steiner_tree_capture(*base->csr(), std::vector<vertex_id>{1, 40},
                                   config, donor);
  const auto nbrs = base->neighbors(1);
  ASSERT_FALSE(nbrs.empty());
  edge_delta delta;
  delta.edits.push_back(edge_edit::reweight(1, nbrs.front(), 99));
  const auto next = base->derive(delta);
  EXPECT_THROW(
      (void)solve_steiner_tree_edge_warm(
          *next->csr(), std::vector<vertex_id>{1, 40}, donor,
          /*donor_graph_fingerprint=*/0xdead, next->delta_from_parent(), config),
      std::invalid_argument);
}

/// The main randomized guarantee: chains of reweight/disable(/enable) edits,
/// with warm repairs feeding the next epoch's donor, stay bit-identical to
/// cold solves at every step — sequential and threaded engines.
void randomized_edge_chain(runtime::execution_mode mode, std::uint64_t rng_seed) {
  solver_config config = quiet_solver();
  config.mode = mode;
  if (mode == runtime::execution_mode::parallel_threads) config.num_threads = 4;

  util::rng gen(rng_seed);
  epoch_store store(make_connected_graph(220, 25, rng_seed));
  std::vector<vertex_id> seeds{11, 60, 140, 200};

  solve_artifacts artifacts;
  (void)solve_steiner_tree_capture(*store.current()->csr(), seeds, config,
                                   artifacts);
  std::uint64_t donor_epoch = store.current()->epoch_id();
  std::uint64_t donor_fp = store.current()->csr()->fingerprint();

  for (int step = 0; step < 8; ++step) {
    // 1-3 random edge edits against the current epoch.
    const auto current = store.current();
    edge_delta delta;
    std::set<std::pair<vertex_id, vertex_id>> touched;
    const int edits = 1 + static_cast<int>(gen.uniform(0, 2));
    for (int e = 0; e < edits; ++e) {
      const vertex_id u = gen.uniform(0, current->num_vertices() - 1);
      const auto nbrs = current->neighbors(u);
      if (nbrs.empty()) continue;
      const vertex_id v =
          nbrs[static_cast<std::size_t>(gen.uniform(0, nbrs.size() - 1))];
      if (!touched.insert({std::min(u, v), std::max(u, v)}).second) continue;
      switch (gen.uniform(0, 3)) {
        case 0: delta.edits.push_back(edge_edit::disable(u, v)); break;
        case 1:
          delta.edits.push_back(
              edge_edit::reweight(u, v, 1 + gen.uniform(0, 4)));
          break;
        default:
          delta.edits.push_back(
              edge_edit::reweight(u, v, 50 + gen.uniform(0, 200)));
          break;
      }
    }
    const auto next = store.advance(delta);

    // Occasionally also drift the seed set.
    if (step % 3 == 2) {
      const vertex_id s = gen.uniform(0, next->num_vertices() - 1);
      const auto it = std::find(seeds.begin(), seeds.end(), s);
      if (it != seeds.end() && seeds.size() > 2) {
        seeds.erase(it);
      } else if (it == seeds.end()) {
        seeds.push_back(s);
      }
    }

    const auto composed = store.delta_between(donor_epoch, next->epoch_id());
    ASSERT_TRUE(composed.has_value());
    solve_artifacts next_artifacts;
    const auto warm = solve_steiner_tree_edge_warm(
        *next->csr(), seeds, artifacts, donor_fp, *composed, config,
        &next_artifacts);
    const auto cold = solve_steiner_tree(*next->csr(), seeds, config);
    expect_same_tree(warm, cold);

    artifacts = std::move(next_artifacts);
    donor_epoch = next->epoch_id();
    donor_fp = next->csr()->fingerprint();
  }
}

TEST(EdgeWarmStart, RandomizedChainEqualsColdSequential) {
  randomized_edge_chain(runtime::execution_mode::async, 0x5eed1);
}

TEST(EdgeWarmStart, RandomizedChainEqualsColdThreaded) {
  randomized_edge_chain(runtime::execution_mode::parallel_threads, 0x5eed2);
}

/// Donors may also skip epochs: repair directly from an old epoch across a
/// composed multi-epoch delta.
TEST(EdgeWarmStart, MultiEpochComposedDeltaEqualsCold) {
  const solver_config config = quiet_solver();
  epoch_store store(make_connected_graph(180, 20, 26));
  const std::vector<vertex_id> seeds{7, 33, 71, 150};
  solve_artifacts donor;
  (void)solve_steiner_tree_capture(*store.current()->csr(), seeds, config,
                                   donor);
  const std::uint64_t donor_fp = store.current()->csr()->fingerprint();

  for (int hop = 0; hop < 3; ++hop) {
    const auto current = store.current();
    const vertex_id u = static_cast<vertex_id>(10 + hop * 37);
    const auto nbrs = current->neighbors(u);
    ASSERT_FALSE(nbrs.empty());
    edge_delta delta;
    delta.edits.push_back(
        edge_edit::reweight(u, nbrs.front(), hop % 2 == 0 ? 400 : 1));
    (void)store.advance(delta);
  }
  const auto target = store.current();
  const auto composed = store.delta_between(0, target->epoch_id());
  ASSERT_TRUE(composed.has_value());
  const auto warm = solve_steiner_tree_edge_warm(
      *target->csr(), seeds, donor, donor_fp, *composed, config);
  const auto cold = solve_steiner_tree(*target->csr(), seeds, config);
  expect_same_tree(warm, cold);
}

}  // namespace
