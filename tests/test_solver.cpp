// End-to-end solver tests: validity, determinism across every runtime
// configuration, approximation bound against exact optima, edge cases.
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/exact.hpp"
#include "baselines/mehlhorn.hpp"
#include "core/steiner_solver.hpp"
#include "core/validation.hpp"
#include "graph/dijkstra.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

namespace {

using namespace dsteiner;
using namespace dsteiner::core;
using graph::vertex_id;
using graph::weight_t;

graph::csr_graph make_connected_graph(int n, weight_t w_hi, std::uint64_t seed) {
  graph::edge_list list =
      graph::generate_erdos_renyi(n, static_cast<std::uint64_t>(n) * 3, seed);
  graph::assign_uniform_weights(list, 1, w_hi, seed ^ 0x99);
  graph::connect_components(list, w_hi + 1, seed);
  return graph::csr_graph(list);
}

std::vector<vertex_id> pick_seeds(const graph::csr_graph& g, std::size_t count,
                                  std::uint64_t seed) {
  util::rng gen(seed);
  const auto picks =
      util::sample_without_replacement(g.num_vertices(), count, gen);
  return {picks.begin(), picks.end()};
}

TEST(Solver, HandPickedExample) {
  // The paper's Fig. 1 style example: a 9-vertex graph with 3 seeds.
  graph::edge_list list;
  list.add_undirected_edge(0, 1, 2);
  list.add_undirected_edge(1, 2, 4);
  list.add_undirected_edge(0, 3, 2);
  list.add_undirected_edge(1, 4, 1);
  list.add_undirected_edge(2, 5, 1);
  list.add_undirected_edge(3, 4, 2);
  list.add_undirected_edge(4, 5, 2);
  list.add_undirected_edge(3, 6, 16);
  list.add_undirected_edge(4, 7, 20);
  list.add_undirected_edge(5, 8, 24);
  list.add_undirected_edge(6, 7, 18);
  list.add_undirected_edge(7, 8, 1);
  const graph::csr_graph g(list);
  const std::vector<vertex_id> seeds{0, 2, 7};

  solver_config config;
  config.num_ranks = 4;
  config.validate = true;
  const auto result = solve_steiner_tree(g, seeds, config);
  EXPECT_TRUE(result.spans_all_seeds);
  const auto check = validate_steiner_tree(g, seeds, result.tree_edges);
  EXPECT_TRUE(check.valid) << check.error;

  // Exact optimum for comparison (3 terminals -> trivial for the DP).
  const auto exact = baselines::exact_steiner_tree(g, seeds);
  EXPECT_GE(result.total_distance, exact.optimal_distance);
  EXPECT_LE(result.total_distance, 2 * exact.optimal_distance);
}

TEST(Solver, SingleSeedYieldsEmptyTree) {
  const auto g = make_connected_graph(50, 10, 1);
  const auto result = solve_steiner_tree(g, std::vector<vertex_id>{7});
  EXPECT_TRUE(result.tree_edges.empty());
  EXPECT_EQ(result.total_distance, 0u);
  EXPECT_EQ(result.num_seeds, 1u);
}

TEST(Solver, DuplicateSeedsDeduplicated) {
  const auto g = make_connected_graph(50, 10, 2);
  const std::vector<vertex_id> seeds{3, 9, 3, 9, 3};
  const auto result = solve_steiner_tree(g, seeds);
  EXPECT_EQ(result.num_seeds, 2u);
  const auto check =
      validate_steiner_tree(g, std::vector<vertex_id>{3, 9}, result.tree_edges);
  EXPECT_TRUE(check.valid) << check.error;
}

TEST(Solver, TwoSeedsReproduceShortestPath) {
  // |S| = 2: the Steiner tree degenerates to a shortest weighted path (§I).
  const auto g = make_connected_graph(120, 25, 3);
  const std::vector<vertex_id> seeds{0, 100};
  const auto result = solve_steiner_tree(g, seeds);
  const auto sp = graph::dijkstra(g, 0);
  EXPECT_EQ(result.total_distance, sp.distance[100]);
}

TEST(Solver, OutOfRangeSeedThrows) {
  const auto g = make_connected_graph(20, 10, 4);
  EXPECT_THROW((void)solve_steiner_tree(g, std::vector<vertex_id>{5, 999}),
               std::out_of_range);
}

TEST(Solver, DisconnectedSeedsThrowByDefault) {
  graph::edge_list list(4);
  list.add_undirected_edge(0, 1, 1);
  list.add_undirected_edge(2, 3, 1);
  const graph::csr_graph g(list);
  EXPECT_THROW((void)solve_steiner_tree(g, std::vector<vertex_id>{0, 2}),
               std::runtime_error);
}

TEST(Solver, DisconnectedSeedsForestWhenAllowed) {
  graph::edge_list list(6);
  list.add_undirected_edge(0, 1, 3);
  list.add_undirected_edge(1, 2, 4);
  list.add_undirected_edge(3, 4, 5);
  const graph::csr_graph g(list);
  solver_config config;
  config.allow_disconnected_seeds = true;
  const auto result =
      solve_steiner_tree(g, std::vector<vertex_id>{0, 2, 3, 4}, config);
  EXPECT_FALSE(result.spans_all_seeds);
  // Forest: path 0-1-2 plus edge 3-4.
  EXPECT_EQ(result.total_distance, 3u + 4u + 5u);
}

TEST(Solver, PhaseBreakdownCoversAllSixSteps) {
  const auto g = make_connected_graph(150, 30, 5);
  const auto seeds = pick_seeds(g, 10, 6);
  const auto result = solve_steiner_tree(g, seeds);
  for (const char* name :
       {runtime::phase_names::voronoi, runtime::phase_names::local_min_edge,
        runtime::phase_names::global_min_edge, runtime::phase_names::mst,
        runtime::phase_names::pruning, runtime::phase_names::tree_edge}) {
    ASSERT_NE(result.phases.find(name), nullptr) << name;
  }
  const auto total = result.phases.total();
  EXPECT_GT(total.sim_units, 0.0);
  EXPECT_GT(total.messages_total(), 0u);
  EXPECT_GT(result.memory.graph_bytes, 0u);
  EXPECT_GT(result.memory.algorithm_bytes(), 0u);
}

// ---- Determinism: the output tree is a pure function of (graph, seeds),
// regardless of ranks, queue policy, execution mode, partitioning, delegates
// or the dense/sparse reduction path.

class SolverDeterminism
    : public ::testing::TestWithParam<
          std::tuple<int, runtime::queue_policy, runtime::execution_mode,
                     runtime::partition_scheme, bool, bool>> {};

TEST_P(SolverDeterminism, SameTreeEveryConfiguration) {
  const auto [ranks, policy, mode, scheme, delegates, dense] = GetParam();
  const auto g = make_connected_graph(130, 20, 7);
  const auto seeds = pick_seeds(g, 9, 8);

  solver_config reference_config;  // defaults: 16 ranks, priority, async
  const auto reference = solve_steiner_tree(g, seeds, reference_config);

  solver_config config;
  config.num_ranks = ranks;
  config.policy = policy;
  config.mode = mode;
  config.scheme = scheme;
  config.use_delegates = delegates;
  config.delegate_threshold = 8;
  config.dense_distance_graph = dense;
  config.validate = true;
  const auto result = solve_steiner_tree(g, seeds, config);

  EXPECT_EQ(result.total_distance, reference.total_distance);
  EXPECT_EQ(result.tree_edges, reference.tree_edges);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, SolverDeterminism,
    ::testing::Combine(
        ::testing::Values(1, 5, 16),
        ::testing::Values(runtime::queue_policy::fifo,
                          runtime::queue_policy::priority),
        ::testing::Values(runtime::execution_mode::async,
                          runtime::execution_mode::bsp),
        ::testing::Values(runtime::partition_scheme::block,
                          runtime::partition_scheme::hash),
        ::testing::Values(false, true), ::testing::Values(false, true)));

// ---- Approximation bound against the exact DP on small instances.

class SolverBound : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SolverBound, WithinTwoApproximation) {
  const auto [n, num_seeds, seed] = GetParam();
  const auto g = make_connected_graph(n, 25, seed);
  const auto seeds = pick_seeds(g, num_seeds, seed + 50);

  solver_config config;
  config.validate = true;
  const auto result = solve_steiner_tree(g, seeds, config);
  const auto exact = baselines::exact_steiner_tree(g, seeds);

  EXPECT_GE(result.total_distance, exact.optimal_distance);
  // The theoretical bound is 2(1 - 1/l) < 2.
  EXPECT_LT(static_cast<double>(result.total_distance),
            2.0 * static_cast<double>(exact.optimal_distance) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(SmallInstances, SolverBound,
                         ::testing::Combine(::testing::Values(30, 60, 100),
                                            ::testing::Values(3, 5, 8),
                                            ::testing::Values(11, 12, 13)));

TEST(Solver, MatchesMehlhornQualityClass) {
  // Not necessarily the identical tree, but both are 2-approximations built
  // from the same distance graph; totals should be close.
  const auto g = make_connected_graph(200, 30, 17);
  const auto seeds = pick_seeds(g, 12, 18);
  const auto ours = solve_steiner_tree(g, seeds);
  const auto mehlhorn = baselines::mehlhorn_steiner_tree(g, seeds);
  const double ratio = static_cast<double>(ours.total_distance) /
                       static_cast<double>(mehlhorn.total_distance);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

}  // namespace
