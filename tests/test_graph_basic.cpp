// Unit tests for the graph substrate: edge lists, CSR, union-find, stats,
// DOT export.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/csr_graph.hpp"
#include "graph/dot_export.hpp"
#include "graph/edge_list.hpp"
#include "graph/graph_stats.hpp"
#include "graph/union_find.hpp"

namespace {

using namespace dsteiner;
using graph::edge_list;
using graph::csr_graph;

TEST(EdgeList, AddTracksVertexCount) {
  edge_list list;
  list.add_edge(3, 7, 2);
  EXPECT_EQ(list.num_vertices(), 8u);
  EXPECT_EQ(list.size(), 1u);
}

TEST(EdgeList, UndirectedAddsBothDirections) {
  edge_list list;
  list.add_undirected_edge(0, 1, 5);
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list.edges()[0].source, 0u);
  EXPECT_EQ(list.edges()[1].source, 1u);
  EXPECT_EQ(list.edges()[1].weight, 5u);
}

TEST(EdgeList, SymmetrizeCreatesReverseArcs) {
  edge_list list;
  list.add_edge(0, 1, 3);
  list.add_edge(2, 0, 4);
  list.symmetrize();
  EXPECT_EQ(list.size(), 4u);
  const csr_graph g(list);
  EXPECT_EQ(g.edge_weight(1, 0), 3u);
  EXPECT_EQ(g.edge_weight(0, 2), 4u);
}

TEST(EdgeList, CanonicalizeDropsSelfLoopsAndParallel) {
  edge_list list;
  list.add_edge(1, 1, 9);   // self loop
  list.add_edge(0, 1, 7);
  list.add_edge(0, 1, 3);   // parallel, lighter
  list.add_edge(0, 1, 12);  // parallel, heavier
  list.canonicalize();
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list.edges()[0].weight, 3u);  // kept the minimum
}

TEST(EdgeList, StreamRoundTrip) {
  edge_list list;
  list.add_undirected_edge(0, 1, 5);
  list.add_undirected_edge(1, 2, 7);
  std::stringstream buffer;
  list.to_stream(buffer);
  const edge_list loaded = edge_list::from_stream(buffer);
  ASSERT_EQ(loaded.size(), list.size());
  EXPECT_EQ(loaded.edges(), list.edges());
}

TEST(EdgeList, ParsesCommentsAndDefaultWeight) {
  std::stringstream in("# comment\n0 1\n1 2 9\n");
  const edge_list list = edge_list::from_stream(in);
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list.edges()[0].weight, 1u);
  EXPECT_EQ(list.edges()[1].weight, 9u);
}

TEST(EdgeList, MalformedLineThrows) {
  std::stringstream in("zero one\n");
  EXPECT_THROW((void)edge_list::from_stream(in), std::runtime_error);
}

TEST(CsrGraph, EmptyGraph) {
  const csr_graph g{edge_list{}};
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_arcs(), 0u);
}

TEST(CsrGraph, DegreesAndNeighbors) {
  edge_list list;
  list.add_undirected_edge(0, 1, 1);
  list.add_undirected_edge(0, 2, 2);
  list.add_undirected_edge(1, 2, 3);
  const csr_graph g(list);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_arcs(), 6u);
  EXPECT_EQ(g.degree(0), 2u);
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0], 1u);  // rows sorted by target
  EXPECT_EQ(nbrs[1], 2u);
}

TEST(CsrGraph, EdgeWeightLookup) {
  edge_list list;
  list.add_undirected_edge(0, 1, 4);
  list.add_undirected_edge(1, 2, 6);
  const csr_graph g(list);
  EXPECT_EQ(g.edge_weight(0, 1), 4u);
  EXPECT_EQ(g.edge_weight(2, 1), 6u);
  EXPECT_FALSE(g.edge_weight(0, 2).has_value());
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(2, 0));
}

TEST(CsrGraph, ParallelArcLookupReturnsMinimum) {
  edge_list list;  // intentionally NOT canonicalized
  list.add_edge(0, 1, 9);
  list.add_edge(0, 1, 2);
  const csr_graph g(list);
  EXPECT_EQ(g.edge_weight(0, 1), 2u);
}

TEST(CsrGraph, IsolatedVertices) {
  edge_list list(5);
  list.add_undirected_edge(0, 1, 1);
  const csr_graph g(list);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.degree(4), 0u);
  EXPECT_TRUE(g.neighbors(4).empty());
}

TEST(CsrGraph, MemoryBytesPositive) {
  edge_list list;
  list.add_undirected_edge(0, 1, 1);
  const csr_graph g(list);
  EXPECT_GT(g.memory_bytes(), 0u);
}

TEST(UnionFind, BasicMerging) {
  graph::union_find uf(5);
  EXPECT_EQ(uf.set_count(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(0, 2));  // already joined
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_FALSE(uf.connected(0, 3));
  EXPECT_EQ(uf.set_count(), 3u);
}

TEST(UnionFind, FindIsIdempotent) {
  graph::union_find uf(4);
  uf.unite(0, 1);
  uf.unite(2, 3);
  const auto r = uf.find(1);
  EXPECT_EQ(uf.find(1), r);
  EXPECT_EQ(uf.find(0), r);
}

TEST(GraphStats, ComputesTableThreeColumns) {
  edge_list list;
  list.add_undirected_edge(0, 1, 5);
  list.add_undirected_edge(0, 2, 10);
  list.add_undirected_edge(0, 3, 20);
  const csr_graph g(list);
  const auto stats = graph::compute_statistics(g);
  EXPECT_EQ(stats.num_vertices, 4u);
  EXPECT_EQ(stats.num_arcs, 6u);
  EXPECT_EQ(stats.max_degree, 3u);
  EXPECT_DOUBLE_EQ(stats.avg_degree, 1.5);
  EXPECT_EQ(stats.min_weight, 5u);
  EXPECT_EQ(stats.max_weight, 20u);
  EXPECT_EQ(stats.num_components, 1u);
  EXPECT_EQ(stats.largest_component_size, 4u);
  EXPECT_FALSE(graph::describe(stats).empty());
}

TEST(DotExport, EmitsSeedColorsAndEdges) {
  const std::vector<graph::weighted_edge> edges{{0, 1, 5}, {1, 2, 7}};
  const std::vector<graph::vertex_id> seeds{0, 2};
  std::ostringstream out;
  graph::write_dot(out, edges, seeds);
  const std::string dot = out.str();
  EXPECT_NE(dot.find("v0 [fillcolor=red]"), std::string::npos);
  EXPECT_NE(dot.find("v1 [fillcolor=lightblue]"), std::string::npos);
  EXPECT_NE(dot.find("v0 -- v1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"7\""), std::string::npos);
}

TEST(DotExport, LabelsOptional) {
  const std::vector<graph::weighted_edge> edges{{0, 1, 5}};
  const std::vector<graph::vertex_id> seeds{0};
  graph::dot_options options;
  options.show_labels = true;
  options.show_weights = false;
  std::ostringstream out;
  graph::write_dot(out, edges, seeds, options);
  EXPECT_NE(out.str().find("label=\"0\""), std::string::npos);
  EXPECT_EQ(out.str().find("label=\"5\""), std::string::npos);
}

}  // namespace
