// Tests for the sequential baselines (KMB, Mehlhorn, WWW, Takahashi) and the
// exact solvers (Dreyfus-Wagner DP vs brute force).
#include <gtest/gtest.h>

#include <span>
#include <tuple>

#include "baselines/exact.hpp"
#include "graph/dijkstra.hpp"
#include "baselines/kmb.hpp"
#include "baselines/mehlhorn.hpp"
#include "baselines/takahashi.hpp"
#include "baselines/www.hpp"
#include "core/validation.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

namespace {

using namespace dsteiner;
using namespace dsteiner::baselines;
using graph::vertex_id;
using graph::weight_t;

graph::csr_graph make_connected_graph(int n, weight_t w_hi, std::uint64_t seed) {
  graph::edge_list list =
      graph::generate_erdos_renyi(n, static_cast<std::uint64_t>(n) * 3, seed);
  graph::assign_uniform_weights(list, 1, w_hi, seed ^ 0x5a5a);
  graph::connect_components(list, w_hi + 1, seed);
  return graph::csr_graph(list);
}

std::vector<vertex_id> pick_seeds(const graph::csr_graph& g, std::size_t count,
                                  std::uint64_t seed) {
  util::rng gen(seed);
  const auto picks =
      util::sample_without_replacement(g.num_vertices(), count, gen);
  return {picks.begin(), picks.end()};
}

// ---- Exact solvers first (they anchor everything else).

TEST(Exact, TrivialCases) {
  const auto g = make_connected_graph(20, 10, 1);
  EXPECT_EQ(exact_steiner_tree(g, std::vector<vertex_id>{4}).optimal_distance, 0u);
  const auto two = exact_steiner_tree(g, std::vector<vertex_id>{0, 11});
  const auto sp = graph::dijkstra(g, 0);
  EXPECT_EQ(two.optimal_distance, sp.distance[11]);
}

TEST(Exact, RejectsTooManyTerminals) {
  const auto g = make_connected_graph(30, 10, 2);
  exact_options options;
  options.max_terminals = 4;
  EXPECT_THROW(
      (void)exact_steiner_tree(g, pick_seeds(g, 5, 3), options),
      std::invalid_argument);
}

TEST(Exact, RejectsUnreachableSeeds) {
  graph::edge_list list(4);
  list.add_undirected_edge(0, 1, 1);
  list.add_undirected_edge(2, 3, 1);
  const graph::csr_graph g(list);
  EXPECT_THROW((void)exact_steiner_tree(g, std::vector<vertex_id>{0, 2}),
               std::runtime_error);
}

TEST(Exact, ReconstructedTreeIsValidAndMatchesDistance) {
  const auto g = make_connected_graph(40, 15, 4);
  const auto seeds = pick_seeds(g, 5, 5);
  const auto result = exact_steiner_tree(g, seeds);
  const auto check = core::validate_steiner_tree(g, seeds, result.tree_edges);
  EXPECT_TRUE(check.valid) << check.error;
  EXPECT_EQ(core::tree_distance(result.tree_edges), result.optimal_distance);
}

class ExactVsBruteForce
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ExactVsBruteForce, DpMatchesSubsetEnumeration) {
  const auto [n, num_seeds, seed] = GetParam();
  graph::edge_list list = graph::generate_erdos_renyi(
      n, static_cast<std::uint64_t>(n) * 2, seed);
  graph::assign_uniform_weights(list, 1, 20, seed ^ 0x123);
  graph::connect_components(list, 21, seed);
  const graph::csr_graph g(list);
  const auto seeds = pick_seeds(g, num_seeds, seed + 7);

  const auto dp = exact_steiner_tree(g, seeds);
  const auto brute = brute_force_steiner_distance(g, seeds);
  EXPECT_EQ(dp.optimal_distance, brute);
}

INSTANTIATE_TEST_SUITE_P(TinyGraphs, ExactVsBruteForce,
                         ::testing::Combine(::testing::Values(8, 11, 14),
                                            ::testing::Values(2, 3, 4),
                                            ::testing::Values(1, 2, 3, 4)));

// ---- 2-approximation baselines: validity + bound on random instances.

using solver_fn = approx_result (*)(const graph::csr_graph&,
                                    std::span<const vertex_id>);

struct named_solver {
  const char* name;
  solver_fn run;
};

class ApproxBaselines
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {
 protected:
  static constexpr named_solver solvers[] = {
      {"KMB", &kmb_steiner_tree},
      {"Mehlhorn", &mehlhorn_steiner_tree},
      {"WWW", &www_steiner_tree},
      {"Takahashi", &takahashi_steiner_tree},
  };
};

TEST_P(ApproxBaselines, ValidTreesWithinBound) {
  const auto [n, num_seeds, seed] = GetParam();
  const auto g = make_connected_graph(n, 25, seed);
  const auto seeds = pick_seeds(g, num_seeds, seed + 31);
  const auto exact = exact_steiner_tree(g, seeds);

  for (const auto& solver : solvers) {
    const auto result = solver.run(g, seeds);
    const auto check = core::validate_steiner_tree(g, seeds, result.tree_edges);
    EXPECT_TRUE(check.valid) << solver.name << ": " << check.error;
    EXPECT_EQ(core::tree_distance(result.tree_edges), result.total_distance)
        << solver.name;
    EXPECT_GE(result.total_distance, exact.optimal_distance) << solver.name;
    EXPECT_LE(result.total_distance, 2 * exact.optimal_distance) << solver.name;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ApproxBaselines,
                         ::testing::Combine(::testing::Values(30, 60, 120),
                                            ::testing::Values(3, 6, 9),
                                            ::testing::Values(41, 42, 43)));

TEST(ApproxBaselinesEdgeCases, SingleSeed) {
  const auto g = make_connected_graph(30, 10, 6);
  const std::vector<vertex_id> one{5};
  EXPECT_TRUE(kmb_steiner_tree(g, one).tree_edges.empty());
  EXPECT_TRUE(mehlhorn_steiner_tree(g, one).tree_edges.empty());
  EXPECT_TRUE(www_steiner_tree(g, one).tree_edges.empty());
  EXPECT_TRUE(takahashi_steiner_tree(g, one).tree_edges.empty());
}

TEST(ApproxBaselinesEdgeCases, UnreachableSeedsThrow) {
  graph::edge_list list(4);
  list.add_undirected_edge(0, 1, 1);
  list.add_undirected_edge(2, 3, 1);
  const graph::csr_graph g(list);
  const std::vector<vertex_id> seeds{0, 2};
  EXPECT_THROW((void)kmb_steiner_tree(g, seeds), std::runtime_error);
  EXPECT_THROW((void)mehlhorn_steiner_tree(g, seeds), std::runtime_error);
  EXPECT_THROW((void)www_steiner_tree(g, seeds), std::runtime_error);
  EXPECT_THROW((void)takahashi_steiner_tree(g, seeds), std::runtime_error);
}

TEST(ApproxBaselinesEdgeCases, TwoSeedsGiveShortestPath) {
  const auto g = make_connected_graph(80, 20, 8);
  const std::vector<vertex_id> seeds{0, 60};
  const auto sp = graph::dijkstra(g, 0).distance[60];
  EXPECT_EQ(kmb_steiner_tree(g, seeds).total_distance, sp);
  EXPECT_EQ(mehlhorn_steiner_tree(g, seeds).total_distance, sp);
  EXPECT_EQ(www_steiner_tree(g, seeds).total_distance, sp);
  EXPECT_EQ(takahashi_steiner_tree(g, seeds).total_distance, sp);
}

TEST(ApproxBaselines, SeedsOnPathGraphRecoverSubpath) {
  // On a path, the Steiner tree is exactly the sub-path between the extreme
  // seeds; every algorithm must find it.
  graph::edge_list list = graph::generate_path(20);
  graph::assign_uniform_weights(list, 1, 9, 77);
  const graph::csr_graph g(list);
  const std::vector<vertex_id> seeds{3, 10, 15};
  graph::weight_t expected = 0;
  for (vertex_id v = 3; v < 15; ++v) expected += *g.edge_weight(v, v + 1);

  EXPECT_EQ(kmb_steiner_tree(g, seeds).total_distance, expected);
  EXPECT_EQ(mehlhorn_steiner_tree(g, seeds).total_distance, expected);
  EXPECT_EQ(www_steiner_tree(g, seeds).total_distance, expected);
  EXPECT_EQ(takahashi_steiner_tree(g, seeds).total_distance, expected);
  const auto exact = exact_steiner_tree(g, seeds);
  EXPECT_EQ(exact.optimal_distance, expected);
}

}  // namespace
