// Tests for the interactive exploration session (§I workflow).
#include <gtest/gtest.h>

#include "core/interactive.hpp"
#include "core/validation.hpp"
#include "graph/generators.hpp"
#include "service/steiner_service.hpp"

namespace {

using namespace dsteiner;
using graph::vertex_id;
using graph::weight_t;

graph::csr_graph make_graph(std::uint64_t seed) {
  graph::edge_list list = graph::generate_erdos_renyi(200, 600, seed);
  graph::assign_uniform_weights(list, 1, 30, seed ^ 0x31);
  graph::connect_components(list, 31, seed);
  return graph::csr_graph(list);
}

TEST(Interactive, LazyRecomputeAndCaching) {
  core::exploration_session session(make_graph(1));
  EXPECT_FALSE(session.up_to_date());
  session.add_seed(3);
  session.add_seed(77);
  session.add_seed(150);
  const auto& first = session.tree();
  EXPECT_EQ(session.recompute_count(), 1u);
  EXPECT_TRUE(session.up_to_date());
  // Repeated queries hit the cache.
  (void)session.tree();
  (void)session.tree();
  EXPECT_EQ(session.recompute_count(), 1u);
  EXPECT_FALSE(first.tree_edges.empty());
}

TEST(Interactive, MatchesFreshSolve) {
  const auto g = make_graph(2);
  core::exploration_session session(g);
  const std::vector<vertex_id> seeds{5, 60, 120, 199};
  session.set_seeds(seeds);
  const auto& via_session = session.tree();
  core::solver_config config;
  config.allow_disconnected_seeds = true;
  const auto fresh = core::solve_steiner_tree(g, seeds, config);
  EXPECT_EQ(via_session.tree_edges, fresh.tree_edges);
  EXPECT_EQ(via_session.total_distance, fresh.total_distance);
}

TEST(Interactive, EditsInvalidate) {
  core::exploration_session session(make_graph(3));
  session.set_seeds(std::vector<vertex_id>{1, 50});
  (void)session.tree();
  EXPECT_TRUE(session.up_to_date());
  EXPECT_TRUE(session.add_seed(100));
  EXPECT_FALSE(session.up_to_date());
  (void)session.tree();
  EXPECT_TRUE(session.remove_seed(100));
  EXPECT_FALSE(session.up_to_date());
  EXPECT_EQ(session.recompute_count(), 2u);
}

TEST(Interactive, IdempotentEditsDoNotInvalidate) {
  core::exploration_session session(make_graph(4));
  session.set_seeds(std::vector<vertex_id>{1, 2});
  (void)session.tree();
  EXPECT_FALSE(session.add_seed(1));     // already present
  EXPECT_FALSE(session.remove_seed(9));  // never present
  EXPECT_TRUE(session.up_to_date());
}

TEST(Interactive, AddRemoveRoundTripRestoresTree) {
  core::exploration_session session(make_graph(5));
  session.set_seeds(std::vector<vertex_id>{10, 90, 170});
  const auto baseline = session.tree().tree_edges;
  session.add_seed(42);
  (void)session.tree();
  session.remove_seed(42);
  EXPECT_EQ(session.tree().tree_edges, baseline);  // deterministic solver
}

TEST(Interactive, SingleOrNoSeedsYieldEmptyTree) {
  core::exploration_session session(make_graph(6));
  EXPECT_TRUE(session.tree().tree_edges.empty());
  session.add_seed(7);
  EXPECT_TRUE(session.tree().tree_edges.empty());
}

TEST(Interactive, FilterEdgesMayProduceForest) {
  core::exploration_session session(make_graph(7));
  session.set_seeds(std::vector<vertex_id>{0, 100, 180});
  const auto before = session.tree().total_distance;
  session.filter_edges_above(5);  // keep only the strongest relationships
  const auto& after = session.tree();
  // Either a (possibly partial) forest or an empty tree; never an exception.
  if (after.spans_all_seeds) {
    const auto check = core::validate_steiner_tree(
        session.graph(), session.seeds(), after.tree_edges);
    EXPECT_TRUE(check.valid) << check.error;
  }
  EXPECT_GE(before, 1u);
}

TEST(Interactive, ReweightChangesDistances) {
  core::exploration_session session(make_graph(8));
  session.set_seeds(std::vector<vertex_id>{3, 140});
  const auto before = session.tree().total_distance;
  session.reweight([](vertex_id, vertex_id, weight_t w) { return w * 10; });
  const auto after = session.tree().total_distance;
  EXPECT_EQ(after, before * 10);  // uniform scaling preserves the tree shape
}

TEST(Interactive, RankKnobPreservesResult) {
  core::exploration_session session(make_graph(9));
  session.set_seeds(std::vector<vertex_id>{11, 44, 99, 160});
  const auto with_16 = session.tree().tree_edges;
  session.set_ranks(64);
  EXPECT_FALSE(session.up_to_date());
  EXPECT_EQ(session.tree().tree_edges, with_16);
  session.set_ranks(64);  // no-op: same value
  EXPECT_TRUE(session.up_to_date());
}

TEST(Interactive, SeedEditsUseWarmStartAndCacheHits) {
  core::exploration_session session(make_graph(11));
  session.set_seeds(std::vector<vertex_id>{10, 90, 170});
  const auto baseline = session.tree().tree_edges;
  EXPECT_EQ(session.last_solve_kind(), service::solve_kind::cold);
  EXPECT_EQ(session.recompute_count(), 1u);

  session.add_seed(42);  // small delta: repaired, not recomputed
  (void)session.tree();
  EXPECT_EQ(session.last_solve_kind(), service::solve_kind::warm_start);
  EXPECT_EQ(session.recompute_count(), 2u);

  session.remove_seed(42);  // back to a seed set the service has seen
  EXPECT_EQ(session.tree().tree_edges, baseline);
  EXPECT_EQ(session.last_solve_kind(), service::solve_kind::cache_hit);
  EXPECT_EQ(session.recompute_count(), 2u);  // cache hits are not solver runs

  const auto stats = session.service().stats();
  EXPECT_EQ(stats.cold_solves, 1u);
  EXPECT_EQ(stats.warm_solves, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
}

TEST(Interactive, GraphEditsDeriveEpochsInsteadOfRebuilding) {
  core::exploration_session session(make_graph(12));
  session.set_seeds(std::vector<vertex_id>{3, 140});
  (void)session.tree();
  EXPECT_EQ(session.current_epoch(), 0u);
  const auto fingerprint_before = session.service().graph_fingerprint();

  // A *small* reweight (4 edges): the service derives an epoch and the next
  // query repairs the previous solve across the edge delta — no rebuild, no
  // cold solve, and the stats survive the edit.
  int budget = 4;
  session.reweight([&budget](vertex_id, vertex_id, weight_t w) {
    return budget-- > 0 ? w + 3 : w;
  });
  EXPECT_EQ(session.current_epoch(), 1u);
  EXPECT_NE(session.service().graph_fingerprint(), fingerprint_before);
  EXPECT_FALSE(session.up_to_date());

  (void)session.tree();
  EXPECT_EQ(session.last_solve_kind(), service::solve_kind::warm_start);
  const auto stats = session.service().stats();
  EXPECT_EQ(stats.cold_solves, 1u);        // only the original solve was cold
  EXPECT_EQ(stats.edge_warm_solves, 1u);   // the edit repaired across epochs
  EXPECT_EQ(stats.epoch_advances, 1u);

  // The repaired tree is the mutated graph's tree, bit-identical to fresh.
  core::solver_config config;
  config.allow_disconnected_seeds = true;
  const auto fresh =
      core::solve_steiner_tree(session.graph(), session.seeds(), config);
  EXPECT_EQ(session.tree().tree_edges, fresh.tree_edges);
  EXPECT_EQ(session.tree().total_distance, fresh.total_distance);
}

TEST(Interactive, NoOpReweightKeepsCacheAndEpoch) {
  core::exploration_session session(make_graph(13));
  session.set_seeds(std::vector<vertex_id>{10, 90});
  (void)session.tree();
  session.reweight([](vertex_id, vertex_id, weight_t w) { return w; });
  EXPECT_TRUE(session.up_to_date());  // nothing changed: no epoch, no solve
  EXPECT_EQ(session.current_epoch(), 0u);
  EXPECT_EQ(session.recompute_count(), 1u);
}

TEST(Interactive, FilterDerivesAnEpochToo) {
  core::exploration_session session(make_graph(14));
  session.set_seeds(std::vector<vertex_id>{0, 100, 180});
  (void)session.tree();
  session.filter_edges_above(15);
  EXPECT_EQ(session.current_epoch(), 1u);
  EXPECT_FALSE(session.up_to_date());
  (void)session.tree();  // forest or tree, never an exception, any path
  EXPECT_EQ(session.service().stats().epoch_advances, 1u);
}

TEST(Interactive, RejectsBadInput) {
  core::exploration_session session(make_graph(10));
  EXPECT_THROW(session.add_seed(10000), std::out_of_range);
  EXPECT_THROW(session.set_seeds(std::vector<vertex_id>{1, 10000}),
               std::out_of_range);
  EXPECT_THROW(session.set_ranks(0), std::invalid_argument);
}

TEST(Interactive, RejectedSetSeedsLeavesStateUntouched) {
  core::exploration_session session(make_graph(15));
  session.set_seeds(std::vector<vertex_id>{1, 2});
  (void)session.tree();
  EXPECT_THROW(session.set_seeds(std::vector<vertex_id>{5, 10000}),
               std::out_of_range);
  // The failed edit must not half-apply: old seeds and cached tree stand.
  EXPECT_EQ(session.seeds(), (std::vector<vertex_id>{1, 2}));
  EXPECT_TRUE(session.up_to_date());
}

TEST(Interactive, FilterVerticesIsolatesThemInOneEpoch) {
  const auto g = make_graph(16);
  core::exploration_session session{graph::csr_graph(g)};
  session.set_seeds(std::vector<vertex_id>{5, 60, 120});
  (void)session.tree();

  // Remove a "class of vertices": every id in [150, 160) that is not a seed.
  session.filter_vertices(
      [](vertex_id v) { return v < 150 || v >= 160; });
  EXPECT_EQ(session.current_epoch(), 1u);
  EXPECT_FALSE(session.up_to_date());
  for (vertex_id v = 150; v < 160; ++v) {
    EXPECT_EQ(session.graph().degree(v), 0u) << v;
  }
  // Removed vertices can no longer appear in the tree.
  const auto& after = session.tree();
  for (const auto& e : after.tree_edges) {
    EXPECT_TRUE(e.source < 150 || e.source >= 160);
    EXPECT_TRUE(e.target < 150 || e.target >= 160);
  }

  // Bit-identical to a fresh solve on a manually vertex-filtered graph.
  graph::edge_list survivors(g.num_vertices());
  for (vertex_id u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto wts = g.weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vertex_id t = nbrs[i];
      const auto gone = [](vertex_id v) { return v >= 150 && v < 160; };
      if (u < t && !gone(u) && !gone(t)) {
        survivors.add_undirected_edge(u, t, wts[i]);
      }
    }
  }
  core::solver_config reference_config;
  reference_config.allow_disconnected_seeds = true;
  const auto reference = core::solve_steiner_tree(
      graph::csr_graph(survivors), session.seeds(), reference_config);
  EXPECT_EQ(after.tree_edges, reference.tree_edges);
  EXPECT_EQ(after.total_distance, reference.total_distance);
}

TEST(Interactive, FilterVerticesRejectsSeedsAndLeavesStateUntouched) {
  core::exploration_session session(make_graph(17));
  session.set_seeds(std::vector<vertex_id>{5, 60, 120});
  (void)session.tree();
  // Removing a seed vertex is an error, reported before anything applies.
  EXPECT_THROW(session.filter_vertices([](vertex_id v) { return v != 60; }),
               std::invalid_argument);
  EXPECT_THROW(session.remove_vertices(std::vector<vertex_id>{4, 5}),
               std::invalid_argument);
  EXPECT_THROW(session.remove_vertices(std::vector<vertex_id>{100000}),
               std::out_of_range);
  EXPECT_EQ(session.current_epoch(), 0u);  // no epoch was derived
  EXPECT_TRUE(session.up_to_date());       // cached tree still stands

  // After explicitly removing the seed, the same filter is legal.
  session.remove_seed(60);
  session.filter_vertices([](vertex_id v) { return v != 60; });
  EXPECT_EQ(session.current_epoch(), 1u);
  EXPECT_EQ(session.graph().degree(60), 0u);
  (void)session.tree();  // solvable: remaining seeds never lost their edges
}

TEST(Interactive, RemoveVerticesWithNoEdgesIsANoOp) {
  // An already-isolated victim contributes no edits: no epoch is derived.
  graph::edge_list list(4);
  list.add_undirected_edge(0, 1, 3);
  list.add_undirected_edge(1, 2, 4);
  core::exploration_session session{graph::csr_graph(list)};
  session.set_seeds(std::vector<vertex_id>{0, 2});
  (void)session.tree();
  session.remove_vertices(std::vector<vertex_id>{3});  // vertex 3 is isolated
  EXPECT_EQ(session.current_epoch(), 0u);
  EXPECT_TRUE(session.up_to_date());
}

TEST(Interactive, ParallelEdgesFilterAndReweightActOnPairs) {
  // Epoch edits act per undirected pair; parallel edges are judged by their
  // minimum weight (the only arc shortest paths use).
  graph::edge_list list(4);
  list.add_undirected_edge(0, 1, 9);
  list.add_undirected_edge(0, 1, 12);  // heavier parallel arc
  list.add_undirected_edge(1, 2, 4);
  list.add_undirected_edge(2, 3, 20);
  list.add_undirected_edge(0, 3, 15);
  list.add_undirected_edge(0, 3, 16);  // both above the cutoff below
  core::exploration_session session{graph::csr_graph(list)};
  session.set_seeds(std::vector<vertex_id>{0, 2});
  (void)session.tree();

  session.filter_edges_above(10);
  EXPECT_EQ(session.current_epoch(), 1u);
  const graph::csr_graph& g = session.graph();
  // (0,1): min 9 kept, heavier parallel collapsed onto it.
  EXPECT_EQ(g.edge_weight(0, 1), std::optional<weight_t>(9));
  // (2,3) and both (0,3) arcs dropped — one disable each, no throw.
  EXPECT_FALSE(g.edge_weight(2, 3).has_value());
  EXPECT_FALSE(g.edge_weight(0, 3).has_value());
  EXPECT_EQ(g.degree(3), 0u);

  // reweight sees each pair's minimum once.
  session.reweight([](vertex_id, vertex_id, weight_t w) { return w * 2; });
  EXPECT_EQ(session.graph().edge_weight(0, 1), std::optional<weight_t>(18));
  EXPECT_EQ(session.graph().edge_weight(1, 2), std::optional<weight_t>(8));
  (void)session.tree();  // still solvable after the edits
}

}  // namespace
