// Tests for the interactive exploration session (§I workflow).
#include <gtest/gtest.h>

#include "core/interactive.hpp"
#include "core/validation.hpp"
#include "graph/generators.hpp"
#include "service/steiner_service.hpp"

namespace {

using namespace dsteiner;
using graph::vertex_id;
using graph::weight_t;

graph::csr_graph make_graph(std::uint64_t seed) {
  graph::edge_list list = graph::generate_erdos_renyi(200, 600, seed);
  graph::assign_uniform_weights(list, 1, 30, seed ^ 0x31);
  graph::connect_components(list, 31, seed);
  return graph::csr_graph(list);
}

TEST(Interactive, LazyRecomputeAndCaching) {
  core::exploration_session session(make_graph(1));
  EXPECT_FALSE(session.up_to_date());
  session.add_seed(3);
  session.add_seed(77);
  session.add_seed(150);
  const auto& first = session.tree();
  EXPECT_EQ(session.recompute_count(), 1u);
  EXPECT_TRUE(session.up_to_date());
  // Repeated queries hit the cache.
  (void)session.tree();
  (void)session.tree();
  EXPECT_EQ(session.recompute_count(), 1u);
  EXPECT_FALSE(first.tree_edges.empty());
}

TEST(Interactive, MatchesFreshSolve) {
  const auto g = make_graph(2);
  core::exploration_session session(g);
  const std::vector<vertex_id> seeds{5, 60, 120, 199};
  session.set_seeds(seeds);
  const auto& via_session = session.tree();
  core::solver_config config;
  config.allow_disconnected_seeds = true;
  const auto fresh = core::solve_steiner_tree(g, seeds, config);
  EXPECT_EQ(via_session.tree_edges, fresh.tree_edges);
  EXPECT_EQ(via_session.total_distance, fresh.total_distance);
}

TEST(Interactive, EditsInvalidate) {
  core::exploration_session session(make_graph(3));
  session.set_seeds(std::vector<vertex_id>{1, 50});
  (void)session.tree();
  EXPECT_TRUE(session.up_to_date());
  EXPECT_TRUE(session.add_seed(100));
  EXPECT_FALSE(session.up_to_date());
  (void)session.tree();
  EXPECT_TRUE(session.remove_seed(100));
  EXPECT_FALSE(session.up_to_date());
  EXPECT_EQ(session.recompute_count(), 2u);
}

TEST(Interactive, IdempotentEditsDoNotInvalidate) {
  core::exploration_session session(make_graph(4));
  session.set_seeds(std::vector<vertex_id>{1, 2});
  (void)session.tree();
  EXPECT_FALSE(session.add_seed(1));     // already present
  EXPECT_FALSE(session.remove_seed(9));  // never present
  EXPECT_TRUE(session.up_to_date());
}

TEST(Interactive, AddRemoveRoundTripRestoresTree) {
  core::exploration_session session(make_graph(5));
  session.set_seeds(std::vector<vertex_id>{10, 90, 170});
  const auto baseline = session.tree().tree_edges;
  session.add_seed(42);
  (void)session.tree();
  session.remove_seed(42);
  EXPECT_EQ(session.tree().tree_edges, baseline);  // deterministic solver
}

TEST(Interactive, SingleOrNoSeedsYieldEmptyTree) {
  core::exploration_session session(make_graph(6));
  EXPECT_TRUE(session.tree().tree_edges.empty());
  session.add_seed(7);
  EXPECT_TRUE(session.tree().tree_edges.empty());
}

TEST(Interactive, FilterEdgesMayProduceForest) {
  core::exploration_session session(make_graph(7));
  session.set_seeds(std::vector<vertex_id>{0, 100, 180});
  const auto before = session.tree().total_distance;
  session.filter_edges_above(5);  // keep only the strongest relationships
  const auto& after = session.tree();
  // Either a (possibly partial) forest or an empty tree; never an exception.
  if (after.spans_all_seeds) {
    const auto check = core::validate_steiner_tree(
        session.graph(), session.seeds(), after.tree_edges);
    EXPECT_TRUE(check.valid) << check.error;
  }
  EXPECT_GE(before, 1u);
}

TEST(Interactive, ReweightChangesDistances) {
  core::exploration_session session(make_graph(8));
  session.set_seeds(std::vector<vertex_id>{3, 140});
  const auto before = session.tree().total_distance;
  session.reweight([](vertex_id, vertex_id, weight_t w) { return w * 10; });
  const auto after = session.tree().total_distance;
  EXPECT_EQ(after, before * 10);  // uniform scaling preserves the tree shape
}

TEST(Interactive, RankKnobPreservesResult) {
  core::exploration_session session(make_graph(9));
  session.set_seeds(std::vector<vertex_id>{11, 44, 99, 160});
  const auto with_16 = session.tree().tree_edges;
  session.set_ranks(64);
  EXPECT_FALSE(session.up_to_date());
  EXPECT_EQ(session.tree().tree_edges, with_16);
  session.set_ranks(64);  // no-op: same value
  EXPECT_TRUE(session.up_to_date());
}

TEST(Interactive, SeedEditsUseWarmStartAndCacheHits) {
  core::exploration_session session(make_graph(11));
  session.set_seeds(std::vector<vertex_id>{10, 90, 170});
  const auto baseline = session.tree().tree_edges;
  EXPECT_EQ(session.last_solve_kind(), service::solve_kind::cold);
  EXPECT_EQ(session.recompute_count(), 1u);

  session.add_seed(42);  // small delta: repaired, not recomputed
  (void)session.tree();
  EXPECT_EQ(session.last_solve_kind(), service::solve_kind::warm_start);
  EXPECT_EQ(session.recompute_count(), 2u);

  session.remove_seed(42);  // back to a seed set the service has seen
  EXPECT_EQ(session.tree().tree_edges, baseline);
  EXPECT_EQ(session.last_solve_kind(), service::solve_kind::cache_hit);
  EXPECT_EQ(session.recompute_count(), 2u);  // cache hits are not solver runs

  const auto stats = session.service().stats();
  EXPECT_EQ(stats.cold_solves, 1u);
  EXPECT_EQ(stats.warm_solves, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
}

TEST(Interactive, GraphEditsStartAFreshService) {
  core::exploration_session session(make_graph(12));
  session.set_seeds(std::vector<vertex_id>{3, 140});
  (void)session.tree();
  const auto fingerprint_before = session.service().graph_fingerprint();
  session.reweight([](vertex_id, vertex_id, weight_t w) { return w + 1; });
  EXPECT_NE(session.service().graph_fingerprint(), fingerprint_before);
  (void)session.tree();
  EXPECT_EQ(session.last_solve_kind(), service::solve_kind::cold);
}

TEST(Interactive, RejectsBadInput) {
  core::exploration_session session(make_graph(10));
  EXPECT_THROW(session.add_seed(10000), std::out_of_range);
  EXPECT_THROW(session.set_seeds(std::vector<vertex_id>{1, 10000}),
               std::out_of_range);
  EXPECT_THROW(session.set_ranks(0), std::invalid_argument);
}

}  // namespace
