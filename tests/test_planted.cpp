// Tests for planted-optimum instances and the tree-distance (LCA) oracle.
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/exact.hpp"
#include "baselines/planted.hpp"
#include "core/steiner_solver.hpp"
#include "core/validation.hpp"
#include "graph/bfs.hpp"
#include "graph/dijkstra.hpp"

namespace {

using namespace dsteiner;
using namespace dsteiner::baselines;
using graph::vertex_id;
using graph::weight_t;

TEST(TreeDistanceOracle, MatchesDijkstraOnTheTree) {
  // Explicit small tree: 0-1(3), 0-2(5), 1-3(2), 1-4(7), 2-5(1).
  const std::vector<vertex_id> parent{0, 0, 0, 1, 1, 2};
  const std::vector<weight_t> weight{0, 3, 5, 2, 7, 1};
  const tree_distance_oracle oracle(parent, weight);

  graph::edge_list list(6);
  for (vertex_id v = 1; v < 6; ++v) {
    list.add_undirected_edge(parent[v], v, weight[v]);
  }
  const graph::csr_graph g(list);
  for (vertex_id u = 0; u < 6; ++u) {
    const auto sp = graph::dijkstra(g, u);
    for (vertex_id v = 0; v < 6; ++v) {
      EXPECT_EQ(oracle.distance(u, v), sp.distance[v]) << u << "->" << v;
    }
  }
  EXPECT_EQ(oracle.lca(3, 4), 1u);
  EXPECT_EQ(oracle.lca(3, 5), 0u);
  EXPECT_EQ(oracle.lca(1, 3), 1u);
}

TEST(TreeDistanceOracle, LargeRandomTreeSpotChecks) {
  const planted_params params{.num_vertices = 500,
                              .num_seeds = 2,
                              .num_noise_edges = 0,
                              .seed = 3};
  const auto instance = make_planted_instance(params);
  // Noise-free instance: graph IS the tree, so Dijkstra distances must equal
  // the optimum path between the two seeds.
  const auto sp = graph::dijkstra(instance.graph, instance.seeds[0]);
  EXPECT_EQ(sp.distance[instance.seeds[1]], instance.optimal_distance);
}

TEST(Planted, OptimalEdgesFormValidTree) {
  const planted_params params{
      .num_vertices = 300, .num_seeds = 12, .num_noise_edges = 900, .seed = 5};
  const auto instance = make_planted_instance(params);
  const auto check = core::validate_steiner_tree(
      instance.graph, instance.seeds, instance.optimal_edges);
  EXPECT_TRUE(check.valid) << check.error;
  EXPECT_EQ(core::tree_distance(instance.optimal_edges),
            instance.optimal_distance);
}

TEST(Planted, NoiseEdgesAreNeverShortcuts) {
  const planted_params params{
      .num_vertices = 200, .num_seeds = 5, .num_noise_edges = 600, .seed = 7};
  const auto instance = make_planted_instance(params);
  // Shortest-path distances in the full graph must equal tree distances:
  // every noise edge is strictly heavier than the tree path it spans.
  const auto tree_only = make_planted_instance(planted_params{
      .num_vertices = 200, .num_seeds = 5, .num_noise_edges = 0, .seed = 7});
  for (const vertex_id s : instance.seeds) {
    const auto with_noise = graph::dijkstra(instance.graph, s);
    const auto without = graph::dijkstra(tree_only.graph, s);
    EXPECT_EQ(with_noise.distance, without.distance) << "seed " << s;
  }
}

TEST(Planted, DpConfirmsClaimedOptimumAtSmallSeedCounts) {
  const planted_params params{
      .num_vertices = 120, .num_seeds = 6, .num_noise_edges = 360, .seed = 9};
  const auto instance = make_planted_instance(params);
  const auto exact = exact_steiner_tree(instance.graph, instance.seeds);
  EXPECT_EQ(exact.optimal_distance, instance.optimal_distance);
}

class PlantedSolverRatio
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PlantedSolverRatio, RatioBetweenOneAndTwo) {
  const auto [n, num_seeds, seed] = GetParam();
  planted_params params;
  params.num_vertices = static_cast<vertex_id>(n);
  params.num_seeds = static_cast<std::size_t>(num_seeds);
  params.num_noise_edges = static_cast<std::uint64_t>(n) * 3;
  params.seed = static_cast<std::uint64_t>(seed);
  const auto instance = make_planted_instance(params);

  core::solver_config config;
  config.validate = true;
  const auto result =
      core::solve_steiner_tree(instance.graph, instance.seeds, config);
  const double ratio = static_cast<double>(result.total_distance) /
                       static_cast<double>(instance.optimal_distance);
  EXPECT_GE(ratio, 1.0 - 1e-12);
  EXPECT_LE(ratio, 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    PlantedSweep, PlantedSolverRatio,
    ::testing::Combine(::testing::Values(200, 800),
                       ::testing::Values(10, 50, 200),
                       ::testing::Values(1, 2, 3)));

TEST(Planted, ParameterValidation) {
  EXPECT_THROW((void)make_planted_instance({.num_vertices = 1}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)make_planted_instance({.num_vertices = 10, .num_seeds = 11}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)make_planted_instance({.num_vertices = 10, .num_seeds = 1}),
      std::invalid_argument);
}

TEST(Planted, DeterministicPerSeed) {
  const planted_params params{
      .num_vertices = 100, .num_seeds = 8, .num_noise_edges = 200, .seed = 13};
  const auto a = make_planted_instance(params);
  const auto b = make_planted_instance(params);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.optimal_distance, b.optimal_distance);
  EXPECT_EQ(a.graph.num_arcs(), b.graph.num_arcs());
}

}  // namespace
