// Cross-family property suite: the end-to-end solver against every graph
// generator in the library, checking validity, agreement with the
// sequential Mehlhorn formulation, and the dual-ascent bracket
// LB <= D(GS) on each family.
#include <gtest/gtest.h>

#include <functional>
#include <tuple>

#include "baselines/dual_ascent.hpp"
#include "baselines/mehlhorn.hpp"
#include "core/steiner_solver.hpp"
#include "core/validation.hpp"
#include "graph/generators.hpp"
#include "seed/seed_select.hpp"

namespace {

using namespace dsteiner;
using graph::vertex_id;
using graph::weight_t;

struct family {
  const char* name;
  std::function<graph::edge_list(std::uint64_t seed)> build;
};

const family k_families[] = {
    {"grid", [](std::uint64_t) { return graph::generate_grid(12, 14); }},
    {"cycle", [](std::uint64_t) { return graph::generate_cycle(150); }},
    {"star", [](std::uint64_t) { return graph::generate_star(120); }},
    {"complete", [](std::uint64_t) { return graph::generate_complete(24); }},
    {"random_tree",
     [](std::uint64_t s) { return graph::generate_random_tree(140, s); }},
    {"watts_strogatz",
     [](std::uint64_t s) {
       return graph::generate_watts_strogatz(160, 3, 0.1, s);
     }},
    {"erdos_renyi",
     [](std::uint64_t s) {
       graph::edge_list list = graph::generate_erdos_renyi(150, 450, s);
       graph::connect_components(list, 30, s);
       return list;
     }},
    {"rmat",
     [](std::uint64_t s) {
       graph::rmat_params params;
       params.scale = 8;
       params.edge_factor = 6;
       params.seed = s;
       graph::edge_list list = graph::generate_rmat(params);
       graph::connect_components(list, 30, s);
       return list;
     }},
};

class SolverFamilies
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SolverFamilies, ValidTreeMatchingMehlhornBracketedByDualAscent) {
  const auto [family_index, num_seeds, seed] = GetParam();
  const family& fam = k_families[family_index];

  graph::edge_list list = fam.build(static_cast<std::uint64_t>(seed));
  graph::assign_uniform_weights(list, 1, 25,
                                static_cast<std::uint64_t>(seed) ^ 0xfa);
  const graph::csr_graph g(list);
  const auto seeds = seed::select_seeds(
      g, static_cast<std::size_t>(num_seeds),
      seed::seed_strategy::uniform_random, static_cast<std::uint64_t>(seed));

  core::solver_config config;
  config.validate = true;
  const auto ours = core::solve_steiner_tree(g, seeds, config);

  // Validity (also enforced by config.validate; re-checked for the message).
  const auto check = core::validate_steiner_tree(g, seeds, ours.tree_edges);
  ASSERT_TRUE(check.valid) << fam.name << ": " << check.error;

  // Same formulation => identical total distance to sequential Mehlhorn.
  const auto mehlhorn = baselines::mehlhorn_steiner_tree(g, seeds);
  EXPECT_EQ(ours.total_distance, mehlhorn.total_distance) << fam.name;

  // Lower-bound bracket: LB <= D(GS) <= 2 * LB is implied by theory only
  // against Dmin, but LB <= D(GS) must always hold.
  const auto lb = baselines::dual_ascent_lower_bound(g, seeds);
  EXPECT_TRUE(lb.converged) << fam.name;
  EXPECT_LE(lb.lower_bound, ours.total_distance) << fam.name;

  // On trees the construction is exact: D(GS) == LB-certified optimum.
  if (std::string(fam.name) == "random_tree") {
    EXPECT_EQ(lb.lower_bound, ours.total_distance) << "trees are exact";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, SolverFamilies,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Values(3, 8, 16),
                       ::testing::Values(1, 2)),
    [](const auto& info) {
      return std::string(k_families[std::get<0>(info.param)].name) + "_s" +
             std::to_string(std::get<1>(info.param)) + "_r" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
