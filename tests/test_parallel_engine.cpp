// Tests for the threaded parallel runtime (src/runtime/parallel/): SPSC
// channel stress, superstep barrier aggregation, worker pool reuse, the
// thread engine itself, and the headline guarantee — N-thread solves are
// bit-identical to sequential-engine solves over random graphs and seed
// sets, and thread-engine metrics are invariant in the worker count.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/steiner_solver.hpp"
#include "core/warm_start.hpp"
#include "graph/dijkstra.hpp"
#include "graph/generators.hpp"
#include "runtime/parallel/spsc_channel.hpp"
#include "runtime/parallel/superstep_barrier.hpp"
#include "runtime/parallel/thread_engine.hpp"
#include "runtime/parallel/worker_pool.hpp"
#include "runtime/visitor_engine.hpp"

namespace {

using namespace dsteiner;
using namespace dsteiner::runtime;

// ---- spsc_channel -----------------------------------------------------------

TEST(SpscChannel, SingleThreadedFifoAcrossBlocks) {
  parallel::spsc_channel<std::uint64_t, 4> ch;  // tiny blocks: force linking
  std::uint64_t out = 0;
  EXPECT_FALSE(ch.try_pop(out));
  for (std::uint64_t i = 0; i < 1000; ++i) ch.push(i);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ch.try_pop(out));
    ASSERT_EQ(out, i);
  }
  EXPECT_FALSE(ch.try_pop(out));
}

TEST(SpscChannel, InterleavedPushPopRecyclesBlocks) {
  parallel::spsc_channel<std::uint64_t, 8> ch;
  std::uint64_t next_pop = 0, out = 0;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    ch.push(i);
    if (i % 3 == 0) {
      ASSERT_TRUE(ch.try_pop(out));
      ASSERT_EQ(out, next_pop++);
    }
  }
  while (ch.try_pop(out)) {
    ASSERT_EQ(out, next_pop++);
  }
  EXPECT_EQ(next_pop, 10000u);
}

TEST(SpscChannel, ConcurrentStressPreservesOrderAndCompleteness) {
  constexpr std::uint64_t k_items = 200000;
  parallel::spsc_channel<std::uint64_t, 64> ch;
  std::atomic<bool> start{false};
  std::thread producer([&] {
    while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
    for (std::uint64_t i = 0; i < k_items; ++i) ch.push(i);
  });
  std::uint64_t received = 0;
  std::uint64_t spins = 0;
  bool ordered = true;
  start.store(true, std::memory_order_release);
  while (received < k_items) {
    std::uint64_t out = 0;
    if (ch.try_pop(out)) {
      ordered = ordered && out == received;
      ++received;
    } else if (++spins % 1024 == 0) {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(received, k_items);
  std::uint64_t out = 0;
  EXPECT_FALSE(ch.try_pop(out));
}

// ---- superstep_barrier ------------------------------------------------------

TEST(SuperstepBarrier, AggregatesContributionsPerEpoch) {
  constexpr std::size_t k_parties = 4;
  constexpr std::uint64_t k_epochs = 50;
  parallel::superstep_barrier barrier(k_parties);
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> parties;
  for (std::size_t w = 0; w < k_parties; ++w) {
    parties.emplace_back([&, w] {
      for (std::uint64_t e = 0; e < k_epochs; ++e) {
        // Party w contributes w + e; the sum and max are epoch functions.
        const auto agg = barrier.arrive_and_wait(
            w + e, static_cast<double>(w + e));
        const std::uint64_t want_sum =
            k_parties * e + k_parties * (k_parties - 1) / 2;
        const double want_max = static_cast<double>(k_parties - 1 + e);
        if (agg.outstanding != want_sum || agg.max_work != want_max) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& t : parties) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(barrier.epoch(), k_epochs);
}

TEST(SuperstepBarrier, RejectsZeroParties) {
  EXPECT_THROW(parallel::superstep_barrier(0), std::invalid_argument);
}

// ---- worker_pool ------------------------------------------------------------

TEST(WorkerPool, RunsJobOnEveryWorkerAndIsReusable) {
  parallel::worker_pool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  for (int round = 0; round < 5; ++round) {
    std::vector<std::atomic<int>> hits(3);
    pool.run([&](std::size_t w) { ++hits[w]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(WorkerPool, ZeroThreadsMeansHardwareConcurrency) {
  parallel::worker_pool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

// ---- thread_engine on a toy workload ---------------------------------------

struct label_visitor {
  graph::vertex_id v = 0;
  std::uint64_t label = 0;
  [[nodiscard]] graph::vertex_id target() const { return v; }
  [[nodiscard]] std::uint64_t priority() const { return label; }
};

class label_handler {
 public:
  label_handler(const graph::csr_graph& g, std::vector<std::uint64_t>& labels)
      : graph_(&g), labels_(&labels) {}

  bool pre_visit(const label_visitor& v, int) {
    if (v.label >= (*labels_)[v.v]) return false;
    (*labels_)[v.v] = v.label;
    return true;
  }

  template <typename Emitter>
  bool visit(const label_visitor& v, int, Emitter& out) {
    if (v.label != (*labels_)[v.v]) return false;
    for (const graph::vertex_id u : graph_->neighbors(v.v)) {
      out.to_vertex(label_visitor{u, v.label + 1});
    }
    return true;
  }

 private:
  const graph::csr_graph* graph_;
  std::vector<std::uint64_t>* labels_;
};

class ThreadEngineModes
    : public ::testing::TestWithParam<std::tuple<queue_policy, int, int>> {};

TEST_P(ThreadEngineModes, PropagatesBfsDepthOnPath) {
  const auto [policy, ranks, threads] = GetParam();
  const graph::csr_graph g(graph::generate_path(32));
  const partitioner parts(g.num_vertices(), ranks, partition_scheme::hash);
  std::vector<std::uint64_t> labels(g.num_vertices(), ~std::uint64_t{0});
  label_handler handler(g, labels);
  engine_config config{policy, execution_mode::parallel_threads, 4,
                       cost_model{}, static_cast<std::size_t>(threads)};
  const auto metrics = run_visitors<label_visitor>(parts, handler,
                                                   {{0, 0}}, config);
  for (graph::vertex_id v = 0; v < 32; ++v) EXPECT_EQ(labels[v], v);
  EXPECT_GT(metrics.visitors_processed, 0u);
  EXPECT_GT(metrics.rounds, 0u);
  if (ranks > 1) {
    EXPECT_GT(metrics.messages_remote, 0u);
  }
  EXPECT_GT(metrics.sim_units, 0.0);
  EXPECT_GT(metrics.queue_peak_items, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, ThreadEngineModes,
    ::testing::Combine(::testing::Values(queue_policy::fifo,
                                         queue_policy::priority),
                       ::testing::Values(1, 3, 8),
                       ::testing::Values(1, 2, 4)));

TEST(ThreadEngine, NoVisitorsTerminatesImmediately) {
  const graph::csr_graph g(graph::generate_path(4));
  const partitioner parts(4, 2, partition_scheme::hash);
  std::vector<std::uint64_t> labels(4, ~std::uint64_t{0});
  label_handler handler(g, labels);
  engine_config config;
  config.mode = execution_mode::parallel_threads;
  config.num_threads = 2;
  const auto metrics =
      run_visitors<label_visitor>(parts, handler, {}, config);
  EXPECT_EQ(metrics.rounds, 0u);
  EXPECT_EQ(metrics.visitors_processed, 0u);
}

TEST(ThreadEngine, MetricsAreInvariantInThreadCount) {
  const graph::csr_graph g(graph::generate_grid(16, 16));
  std::vector<phase_metrics> runs;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    const partitioner parts(g.num_vertices(), 8, partition_scheme::hash);
    std::vector<std::uint64_t> labels(g.num_vertices(), ~std::uint64_t{0});
    label_handler handler(g, labels);
    engine_config config{queue_policy::priority,
                         execution_mode::parallel_threads, 16, cost_model{},
                         threads};
    runs.push_back(run_visitors<label_visitor>(parts, handler, {{0, 0}},
                                               config));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].rounds, runs[0].rounds);
    EXPECT_EQ(runs[i].visitors_processed, runs[0].visitors_processed);
    EXPECT_EQ(runs[i].visitors_skipped, runs[0].visitors_skipped);
    EXPECT_EQ(runs[i].previsit_rejections, runs[0].previsit_rejections);
    EXPECT_EQ(runs[i].messages_local, runs[0].messages_local);
    EXPECT_EQ(runs[i].messages_remote, runs[0].messages_remote);
    EXPECT_EQ(runs[i].queue_peak_items, runs[0].queue_peak_items);
    EXPECT_DOUBLE_EQ(runs[i].sim_units, runs[0].sim_units);
  }
}

// ---- cooperative cancellation ----------------------------------------------

/// label_handler with a per-visit nap: keeps an engine run long enough that a
/// budget (deadline or external cancel) deterministically trips mid-run.
class sleepy_label_handler {
 public:
  sleepy_label_handler(const graph::csr_graph& g,
                       std::vector<std::uint64_t>& labels,
                       std::chrono::microseconds nap)
      : inner_(g, labels), nap_(nap) {}

  bool pre_visit(const label_visitor& v, int rank) {
    return inner_.pre_visit(v, rank);
  }

  template <typename Emitter>
  bool visit(const label_visitor& v, int rank, Emitter& out) {
    std::this_thread::sleep_for(nap_);
    return inner_.visit(v, rank, out);
  }

 private:
  label_handler inner_;
  std::chrono::microseconds nap_;
};

TEST(EngineCancellation, PreCancelledBudgetStopsBothEnginesImmediately) {
  const graph::csr_graph g(graph::generate_path(32));
  util::cancel_source source;
  (void)source.request_cancel();
  util::run_budget budget;
  budget.cancel = source.token();
  for (const execution_mode mode :
       {execution_mode::async, execution_mode::parallel_threads}) {
    const partitioner parts(g.num_vertices(), 4, partition_scheme::hash);
    std::vector<std::uint64_t> labels(g.num_vertices(), ~std::uint64_t{0});
    label_handler handler(g, labels);
    engine_config config;
    config.mode = mode;
    config.num_threads = 2;
    config.budget = &budget;
    try {
      (void)run_visitors<label_visitor>(parts, handler, {{0, 0}}, config);
      FAIL() << "engine ignored a cancelled budget (mode "
             << static_cast<int>(mode) << ")";
    } catch (const util::operation_cancelled& stopped) {
      EXPECT_EQ(stopped.why(), util::cancel_reason::cancelled);
    }
  }
}

// The mid-run checkpoint, deterministically: a 64x64 grid with 200µs visits
// needs seconds of work, the deadline allows ~25ms — the run *must* die at a
// checkpoint, and the polls counter proves the cooperative path (not a fluke
// exception) killed it. Exercises the superstep barrier's OR-fold vote in
// parallel_threads mode: all workers abandon the same superstep or the
// barrier would deadlock — reaching the throw at all is the proof.
TEST(EngineCancellation, DeadlineStopsEnginesMidRun) {
  const graph::csr_graph g(graph::generate_grid(64, 64));
  for (const execution_mode mode :
       {execution_mode::async, execution_mode::parallel_threads}) {
    const partitioner parts(g.num_vertices(), 8, partition_scheme::hash);
    std::vector<std::uint64_t> labels(g.num_vertices(), ~std::uint64_t{0});
    sleepy_label_handler handler(g, labels, std::chrono::microseconds(200));
    std::atomic<std::uint64_t> polls{0};
    util::run_budget budget;
    budget.deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(25);
    budget.polls = &polls;
    engine_config config;
    config.mode = mode;
    config.batch_size = 4;
    config.num_threads = 2;
    config.budget = &budget;
    try {
      (void)run_visitors<label_visitor>(parts, handler, {{0, 0}}, config);
      FAIL() << "engine outlived its deadline (mode "
             << static_cast<int>(mode) << ")";
    } catch (const util::operation_cancelled& stopped) {
      EXPECT_EQ(stopped.why(), util::cancel_reason::deadline);
    }
    EXPECT_GT(polls.load(), 0u);  // the checkpoint actually ran
    // The run died early: the full grid BFS never completed its labelling.
    std::uint64_t unlabelled = 0;
    for (const std::uint64_t label : labels) {
      if (label == ~std::uint64_t{0}) ++unlabelled;
    }
    EXPECT_GT(unlabelled, 0u);
  }
}

TEST(EngineCancellation, ExternalCancelStopsThreadedRun) {
  const graph::csr_graph g(graph::generate_grid(64, 64));
  const partitioner parts(g.num_vertices(), 8, partition_scheme::hash);
  std::vector<std::uint64_t> labels(g.num_vertices(), ~std::uint64_t{0});
  sleepy_label_handler handler(g, labels, std::chrono::microseconds(200));
  util::cancel_source source;
  util::run_budget budget;
  budget.cancel = source.token();
  engine_config config;
  config.mode = execution_mode::parallel_threads;
  config.batch_size = 4;
  config.num_threads = 2;
  config.budget = &budget;

  std::thread canceller([&source] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    (void)source.request_cancel();
  });
  try {
    (void)run_visitors<label_visitor>(parts, handler, {{0, 0}}, config);
    FAIL() << "engine outlived an external cancel";
  } catch (const util::operation_cancelled& stopped) {
    EXPECT_EQ(stopped.why(), util::cancel_reason::cancelled);
  }
  canceller.join();
}

// ---- full-solver determinism -----------------------------------------------

graph::csr_graph random_connected_graph(graph::vertex_id n,
                                        std::uint64_t seed) {
  graph::edge_list list =
      graph::generate_erdos_renyi(n, static_cast<std::uint64_t>(n) * 3, seed);
  graph::assign_uniform_weights(list, 1, 1000, seed ^ 0x77);
  graph::connect_components(list, 1001, seed);
  return graph::csr_graph(list);
}

std::vector<graph::vertex_id> random_seeds(graph::vertex_id n,
                                           std::size_t count,
                                           std::uint64_t salt) {
  std::vector<graph::vertex_id> seeds;
  for (std::size_t i = 0; i < count; ++i) {
    seeds.push_back((salt * 2654435761u + i * 40503u) % n);
  }
  return seeds;
}

void expect_identical(const core::steiner_result& a,
                      const core::steiner_result& b) {
  EXPECT_EQ(a.tree_edges, b.tree_edges);
  EXPECT_EQ(a.total_distance, b.total_distance);
  EXPECT_EQ(a.num_seeds, b.num_seeds);
  EXPECT_EQ(a.spans_all_seeds, b.spans_all_seeds);
  EXPECT_EQ(a.distance_graph_edges, b.distance_graph_edges);
}

TEST(ParallelSolve, BitIdenticalToSequentialOverRandomGraphs) {
  for (std::uint64_t trial = 0; trial < 4; ++trial) {
    const graph::csr_graph g = random_connected_graph(400, 0xabc + trial);
    const auto seeds = random_seeds(g.num_vertices(), 8 + trial * 3, trial);

    core::solver_config sequential;
    sequential.num_ranks = 8;
    sequential.validate = true;
    const auto reference = core::solve_steiner_tree(g, seeds, sequential);

    for (const std::size_t threads : {1u, 2u, 4u}) {
      core::solver_config par = sequential;
      par.mode = execution_mode::parallel_threads;
      par.num_threads = threads;
      const auto result = core::solve_steiner_tree(g, seeds, par);
      expect_identical(result, reference);
    }
  }
}

TEST(ParallelSolve, PhaseMetricsInvariantInThreadCount) {
  const graph::csr_graph g = random_connected_graph(500, 0x1234);
  const auto seeds = random_seeds(g.num_vertices(), 12, 7);

  std::vector<core::steiner_result> results;
  for (const std::size_t threads : {1u, 4u}) {
    core::solver_config config;
    config.num_ranks = 8;
    config.mode = execution_mode::parallel_threads;
    config.num_threads = threads;
    results.push_back(core::solve_steiner_tree(g, seeds, config));
  }
  expect_identical(results[0], results[1]);
  for (const auto& [name, m0] : results[0].phases.by_name()) {
    const auto* m1 = results[1].phases.find(name);
    ASSERT_NE(m1, nullptr) << name;
    EXPECT_EQ(m0.rounds, m1->rounds) << name;
    EXPECT_EQ(m0.visitors_processed, m1->visitors_processed) << name;
    EXPECT_EQ(m0.visitors_skipped, m1->visitors_skipped) << name;
    EXPECT_EQ(m0.previsit_rejections, m1->previsit_rejections) << name;
    EXPECT_EQ(m0.messages_local, m1->messages_local) << name;
    EXPECT_EQ(m0.messages_remote, m1->messages_remote) << name;
    EXPECT_EQ(m0.queue_peak_items, m1->queue_peak_items) << name;
    EXPECT_DOUBLE_EQ(m0.sim_units, m1->sim_units) << name;
  }
}

TEST(ParallelSolve, FifoAndBlockPartitioningStayIdentical) {
  const graph::csr_graph g = random_connected_graph(300, 0x9e9e);
  const auto seeds = random_seeds(g.num_vertices(), 10, 3);

  core::solver_config sequential;
  sequential.num_ranks = 6;
  sequential.policy = queue_policy::fifo;
  sequential.scheme = partition_scheme::block;
  const auto reference = core::solve_steiner_tree(g, seeds, sequential);

  core::solver_config par = sequential;
  par.mode = execution_mode::parallel_threads;
  par.num_threads = 3;
  expect_identical(core::solve_steiner_tree(g, seeds, par), reference);
}

TEST(ParallelSolve, DelegatesMatchSequential) {
  // A star inside a random graph forces the delegate relay path.
  graph::edge_list list = graph::generate_star(600);
  graph::assign_uniform_weights(list, 1, 50, 0x44);
  const graph::csr_graph g(list);
  const auto seeds = random_seeds(g.num_vertices(), 9, 5);

  core::solver_config sequential;
  sequential.num_ranks = 8;
  sequential.delegate_threshold = 64;  // hub qualifies
  const auto reference = core::solve_steiner_tree(g, seeds, sequential);

  core::solver_config par = sequential;
  par.mode = execution_mode::parallel_threads;
  par.num_threads = 4;
  expect_identical(core::solve_steiner_tree(g, seeds, par), reference);
}

// ---- bucketed (delta-stepping) phase 1 --------------------------------------

TEST(BucketedGrowth, TreeMatchesStrictOverRandomGraphs) {
  for (std::uint64_t trial = 0; trial < 3; ++trial) {
    const graph::csr_graph g = random_connected_graph(400, 0xB0C + trial);
    const auto seeds = random_seeds(g.num_vertices(), 8 + trial * 2, trial);

    core::solver_config strict;
    strict.num_ranks = 8;
    strict.validate = true;
    const auto reference = core::solve_steiner_tree(g, seeds, strict);

    core::solver_config relaxed = strict;
    relaxed.growth = growth_mode::bucketed;
    const auto seq = core::solve_steiner_tree(g, seeds, relaxed);
    expect_identical(seq, reference);
    EXPECT_EQ(seq.growth.mode, growth_mode::bucketed);
    EXPECT_GT(seq.growth.delta, 0u);          // heuristic_delta resolved
    EXPECT_GT(seq.growth.buckets_processed, 0u);

    relaxed.mode = execution_mode::parallel_threads;
    relaxed.num_threads = 4;
    const auto par = core::solve_steiner_tree(g, seeds, relaxed);
    expect_identical(par, reference);
    EXPECT_GT(par.growth.buckets_processed, 0u);
  }
}

TEST(BucketedGrowth, EdgeTilingOnHubMatchesStrict) {
  // A star with delegates off forces the hub's scatter through the tile
  // path: degree 599 over tile width 32 must emit ~19 tile work items.
  graph::edge_list list = graph::generate_star(600);
  graph::assign_uniform_weights(list, 1, 50, 0x77);
  const graph::csr_graph g(list);
  const auto seeds = random_seeds(g.num_vertices(), 9, 5);

  core::solver_config strict;
  strict.num_ranks = 8;
  strict.use_delegates = false;
  const auto reference = core::solve_steiner_tree(g, seeds, strict);

  core::solver_config relaxed = strict;
  relaxed.growth = growth_mode::bucketed;
  relaxed.tile_threshold = 32;
  for (const execution_mode mode :
       {execution_mode::async, execution_mode::parallel_threads}) {
    relaxed.mode = mode;
    relaxed.num_threads = 4;
    const auto result = core::solve_steiner_tree(g, seeds, relaxed);
    expect_identical(result, reference);
    EXPECT_GT(result.growth.tiles_emitted, 0u)
        << "mode " << static_cast<int>(mode);
    EXPECT_EQ(result.growth.tile_threshold, 32u);
  }
}

TEST(BucketedGrowth, TreeInvariantInThreadCount) {
  const graph::csr_graph g = random_connected_graph(500, 0xBEE);
  const auto seeds = random_seeds(g.num_vertices(), 12, 9);
  core::solver_config config;
  config.num_ranks = 8;
  config.growth = growth_mode::bucketed;
  config.mode = execution_mode::parallel_threads;
  std::vector<core::steiner_result> results;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    config.num_threads = threads;
    results.push_back(core::solve_steiner_tree(g, seeds, config));
  }
  expect_identical(results[1], results[0]);
  expect_identical(results[2], results[0]);
}

TEST(BucketedGrowth, OracleBucketPruneKeepsTreeIdentical) {
  const graph::csr_graph g = random_connected_graph(300, 0xFACE);
  const auto seeds = random_seeds(g.num_vertices(), 8, 4);
  core::solver_config strict;
  strict.num_ranks = 8;
  const auto reference = core::solve_steiner_tree(g, seeds, strict);

  // Exact per-vertex min_s d(s, v): the tightest valid upper bound, so the
  // bucket prune closes the run as early as it ever legally can.
  std::vector<graph::weight_t> bound(g.num_vertices(),
                                     graph::k_inf_distance);
  for (const graph::vertex_id s : seeds) {
    const auto sp = graph::dijkstra(g, s);
    for (graph::vertex_id v = 0; v < g.num_vertices(); ++v) {
      bound[v] = std::min(bound[v], sp.distance[v]);
    }
  }
  core::solve_assists assists;
  assists.prune_upper_bound = bound;

  core::solver_config relaxed = strict;
  relaxed.growth = growth_mode::bucketed;
  for (const execution_mode mode :
       {execution_mode::async, execution_mode::parallel_threads}) {
    relaxed.mode = mode;
    relaxed.num_threads = 4;
    const auto result =
        core::solve_steiner_tree_assisted(g, seeds, assists, relaxed);
    expect_identical(result, reference);
  }
}

TEST(ThreadEngine, AdaptiveBatchKeepsTreeIdentical) {
  // batch_size = 0 opts the threaded engine into barrier-ratio adaptive
  // batch sizing — wall-clock tuning that must not leak into the output.
  const graph::csr_graph g = random_connected_graph(400, 0xAB);
  const auto seeds = random_seeds(g.num_vertices(), 10, 6);
  core::solver_config reference_cfg;
  reference_cfg.num_ranks = 8;
  const auto reference = core::solve_steiner_tree(g, seeds, reference_cfg);

  core::solver_config adaptive = reference_cfg;
  adaptive.mode = execution_mode::parallel_threads;
  adaptive.num_threads = 4;
  adaptive.batch_size = 0;
  expect_identical(core::solve_steiner_tree(g, seeds, adaptive), reference);
}

TEST(ParallelSolve, WarmStartRepairUnderThreadedEngineMatchesCold) {
  const graph::csr_graph g = random_connected_graph(400, 0x5151);
  auto donor_seeds = random_seeds(g.num_vertices(), 10, 11);

  core::solver_config config;
  config.num_ranks = 8;
  config.mode = execution_mode::parallel_threads;
  config.num_threads = 4;
  config.allow_disconnected_seeds = true;

  core::solve_artifacts donor;
  (void)core::solve_steiner_tree_capture(g, donor_seeds, config, donor);

  auto target = donor_seeds;
  target.push_back((donor_seeds.front() + 137) % g.num_vertices());
  const auto cold = core::solve_steiner_tree(g, target, config);
  const auto warm =
      core::solve_steiner_tree_warm(g, target, donor, config, nullptr, nullptr);
  expect_identical(warm, cold);
}

}  // namespace
