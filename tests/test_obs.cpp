// Tests for the observability layer (src/obs/ + its service wiring): the
// Prometheus exposition and its validator, the latency-histogram percentile
// estimator, query-scoped tracing (bit-identity contract, summaries, Chrome
// JSON, the slow-query log), the live debug endpoint, and executor priority
// aging.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/steiner_solver.hpp"
#include "graph/generators.hpp"
#include "obs/cost_model.hpp"
#include "obs/debug_server.hpp"
#include "obs/prom_validate.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "service/debug_endpoint.hpp"
#include "service/executor.hpp"
#include "service/latency_histogram.hpp"
#include "service/metrics_text.hpp"
#include "service/steiner_service.hpp"

namespace {

using namespace dsteiner;
using namespace dsteiner::service;
using graph::vertex_id;
using graph::weight_t;

graph::csr_graph make_connected_graph(int n, weight_t w_hi, std::uint64_t seed) {
  graph::edge_list list =
      graph::generate_erdos_renyi(n, static_cast<std::uint64_t>(n) * 3, seed);
  graph::assign_uniform_weights(list, 1, w_hi, seed ^ 0x99);
  graph::connect_components(list, w_hi + 1, seed);
  return graph::csr_graph(list);
}

query make_query(std::vector<vertex_id> seeds) {
  query q;
  q.seeds = std::move(seeds);
  return q;
}

service_config obs_config(std::size_t threads) {
  service_config config;
  config.exec.num_threads = threads;
  config.solver.num_ranks = 8;
  // Every query is "slow": the slow-query log captures each trace, so the
  // tests can inspect /tracez and the ring deterministically.
  config.trace.slow_query_threshold_seconds = 1e-9;
  return config;
}

/// Value of the series whose sample line starts with `name` followed by a
/// space or '{' (first match); -1.0 when the series is absent.
double series_value(const std::string& text, const std::string& name) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind(name, 0) != 0) continue;
    const char next = line.size() > name.size() ? line[name.size()] : '\0';
    if (next != ' ') continue;
    return std::stod(line.substr(name.size() + 1));
  }
  return -1.0;
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

/// Connects to the loopback debug server, sends `data` raw (no framing),
/// optionally half-closes the write side, and returns whatever the server
/// answers. Exercises the malformed-client paths http_get() cannot reach.
std::string raw_request(std::uint16_t port, const std::string& data,
                        bool shutdown_write) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return {};
  }
  if (!data.empty()) (void)::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
  if (shutdown_write) ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

// ---- latency histogram ------------------------------------------------------

TEST(LatencyHistogram, PercentileInterpolatesWithinBucket) {
  latency_histogram hist;
  for (int i = 0; i < 100; ++i) hist.record(3e-6);  // bucket [2us, 4us)
  const auto snap = hist.snapshot();
  EXPECT_GE(snap.percentile(50.0), 2e-6);
  EXPECT_LE(snap.percentile(50.0), 4e-6);
  // Interpolation is monotone across the bucket.
  EXPECT_LT(snap.percentile(10.0), snap.percentile(90.0));
  EXPECT_DOUBLE_EQ(snap.percentile(50.0), snap.quantile(0.5));
  EXPECT_EQ(latency_histogram::snapshot_data{}.percentile(99.0), 0.0);
}

TEST(LatencyHistogram, PercentileSpansBuckets) {
  latency_histogram hist;
  for (int i = 0; i < 90; ++i) hist.record(3e-6);    // [2us, 4us)
  for (int i = 0; i < 10; ++i) hist.record(100e-6);  // [64us, 128us)
  const auto snap = hist.snapshot();
  EXPECT_LE(snap.percentile(50.0), 4e-6);
  EXPECT_GE(snap.percentile(99.0), 64e-6);
  EXPECT_LE(snap.percentile(99.0), 128e-6);
}

// ---- prometheus validator ---------------------------------------------------

TEST(PromValidate, AcceptsMinimalWellFormedExposition) {
  const std::string text =
      "# HELP app_requests_total Requests\n"
      "# TYPE app_requests_total counter\n"
      "app_requests_total 5\n"
      "# HELP app_depth Queue depth\n"
      "# TYPE app_depth gauge\n"
      "app_depth 2\n";
  const auto report = obs::validate_prometheus(text);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.series, 2u);
  EXPECT_EQ(report.families, 2u);
}

TEST(PromValidate, FlagsCounterWithoutTotalSuffix) {
  const auto report = obs::validate_prometheus(
      "# HELP app_requests Requests\n"
      "# TYPE app_requests counter\n"
      "app_requests 5\n");
  EXPECT_FALSE(report.ok());
}

TEST(PromValidate, FlagsDuplicateSeries) {
  const auto report = obs::validate_prometheus(
      "# HELP app_x_total X\n"
      "# TYPE app_x_total counter\n"
      "app_x_total 1\n"
      "app_x_total 2\n");
  EXPECT_FALSE(report.ok());
}

TEST(PromValidate, FlagsNonCumulativeHistogramBuckets) {
  const auto report = obs::validate_prometheus(
      "# HELP app_h H\n"
      "# TYPE app_h histogram\n"
      "app_h_bucket{le=\"1\"} 5\n"
      "app_h_bucket{le=\"2\"} 3\n"
      "app_h_bucket{le=\"+Inf\"} 3\n"
      "app_h_sum 4\n"
      "app_h_count 3\n");
  EXPECT_FALSE(report.ok());
}

TEST(PromValidate, FlagsMissingInfBucket) {
  const auto report = obs::validate_prometheus(
      "# HELP app_h H\n"
      "# TYPE app_h histogram\n"
      "app_h_bucket{le=\"1\"} 5\n"
      "app_h_sum 4\n"
      "app_h_count 5\n");
  EXPECT_FALSE(report.ok());
}

TEST(PromValidate, FlagsDuplicateHelpAndTypeDeclarations) {
  const auto dup_help = obs::validate_prometheus(
      "# HELP app_x_total X\n"
      "# HELP app_x_total X again\n"
      "# TYPE app_x_total counter\n"
      "app_x_total 1\n");
  EXPECT_FALSE(dup_help.ok());
  EXPECT_NE(dup_help.to_string().find("duplicate HELP"), std::string::npos);

  const auto dup_type = obs::validate_prometheus(
      "# HELP app_x_total X\n"
      "# TYPE app_x_total counter\n"
      "# TYPE app_x_total counter\n"
      "app_x_total 1\n");
  EXPECT_FALSE(dup_type.ok());
}

TEST(PromValidate, FlagsInterleavedFamilySamples) {
  // app_a_total's samples are split by an app_b_total sample — scrapers keep
  // only one contiguous run of a family, so this loses data silently.
  const auto report = obs::validate_prometheus(
      "# HELP app_a_total A\n"
      "# TYPE app_a_total counter\n"
      "# HELP app_b_total B\n"
      "# TYPE app_b_total counter\n"
      "app_a_total{k=\"1\"} 1\n"
      "app_b_total 2\n"
      "app_a_total{k=\"2\"} 3\n");
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("interleaved samples"), std::string::npos);
}

TEST(PromValidate, AcceptsContiguousMultiSampleFamilies) {
  // Label-varied samples of one family in one run — including histogram
  // machinery spanning _bucket/_sum/_count — are NOT interleaving.
  const auto report = obs::validate_prometheus(
      "# HELP app_a_total A\n"
      "# TYPE app_a_total counter\n"
      "app_a_total{k=\"1\"} 1\n"
      "app_a_total{k=\"2\"} 3\n"
      "# HELP app_h H\n"
      "# TYPE app_h histogram\n"
      "app_h_bucket{le=\"1\"} 2\n"
      "app_h_bucket{le=\"+Inf\"} 3\n"
      "app_h_sum 4\n"
      "app_h_count 3\n"
      "# HELP app_b_total B\n"
      "# TYPE app_b_total counter\n"
      "app_b_total 2\n");
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// ---- service exposition -----------------------------------------------------

TEST(Metrics, ExpositionParsesCleanAndCountersAreMonotone) {
  steiner_service svc(make_connected_graph(200, 25, 41), obs_config(2));
  std::vector<vertex_id> seeds{3, 40, 90, 140};
  (void)svc.solve(make_query(seeds));
  (void)svc.solve(make_query(seeds));  // cache hit

  const std::string first = render_metrics_text(svc.snapshot());
  const auto report = obs::validate_prometheus(first);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.series, 50u);

  std::vector<vertex_id> more{5, 60, 110, 160, 190};
  (void)svc.solve(make_query(more));
  const std::string second = render_metrics_text(svc.snapshot());
  const auto report2 = obs::validate_prometheus(second);
  EXPECT_TRUE(report2.ok()) << report2.to_string();

  // Counters must be monotone across scrapes and reflect the extra query.
  for (const char* name :
       {"dsteiner_queries_total", "dsteiner_cold_solves_total",
        "dsteiner_cache_hits_total", "dsteiner_executor_executed_total",
        "dsteiner_query_seconds_count"}) {
    const double a = series_value(first, name);
    const double b = series_value(second, name);
    ASSERT_GE(a, 0.0) << name << " missing from first scrape";
    ASSERT_GE(b, 0.0) << name << " missing from second scrape";
    EXPECT_GE(b, a) << name << " went backwards";
  }
  EXPECT_GT(series_value(second, "dsteiner_queries_total"),
            series_value(first, "dsteiner_queries_total"));
  // The model histograms landed (a cold solve records all three when an
  // admission estimate exists, two otherwise).
  EXPECT_GE(series_value(second, "dsteiner_modelled_solve_seconds_count"), 1.0);
  EXPECT_GE(series_value(second, "dsteiner_model_abs_error_seconds_count"),
            1.0);
}

// ---- tracing ----------------------------------------------------------------

TEST(Tracing, TracedAndUntracedSolvesAreBitIdentical) {
  const auto g = make_connected_graph(250, 25, 42);
  const std::vector<vertex_id> seeds{4, 60, 120, 200, 240};
  core::solver_config solver;
  solver.num_ranks = 8;

  const auto plain = core::solve_steiner_tree(g, seeds, solver);

  obs::trace_config cfg;
  obs::query_trace trace(cfg, 1);
  core::solver_config traced_config = solver;
  traced_config.trace = &trace;
  const auto traced = core::solve_steiner_tree(g, seeds, traced_config);

  EXPECT_EQ(plain.tree_edges, traced.tree_edges);
  EXPECT_EQ(plain.total_distance, traced.total_distance);
  // Simulated metrics are part of the determinism contract too.
  EXPECT_EQ(plain.phases.total().sim_units, traced.phases.total().sim_units);
  EXPECT_GT(trace.probe().total_samples(), 0u);
}

TEST(Tracing, ThreadedEngineBitIdenticalAndSampled) {
  const auto g = make_connected_graph(300, 25, 43);
  const std::vector<vertex_id> seeds{7, 80, 150, 220, 280};
  core::solver_config solver;
  solver.num_ranks = 8;
  solver.mode = runtime::execution_mode::parallel_threads;
  solver.num_threads = 4;

  const auto plain = core::solve_steiner_tree(g, seeds, solver);

  obs::trace_config cfg;
  obs::query_trace trace(cfg, solver.num_threads);
  core::solver_config traced_config = solver;
  traced_config.trace = &trace;
  const auto traced = core::solve_steiner_tree(g, seeds, traced_config);

  EXPECT_EQ(plain.tree_edges, traced.tree_edges);
  EXPECT_EQ(plain.total_distance, traced.total_distance);
  EXPECT_GT(trace.probe().total_samples(), 0u);
  // Every worker lane saw at least one superstep of the solve.
  for (std::size_t lane = 0; lane < trace.probe().lanes(); ++lane) {
    EXPECT_FALSE(trace.probe().lane_samples(lane).empty()) << "lane " << lane;
  }
}

TEST(Tracing, ServiceHandleExposesTraceAndSlowLogCaptures) {
  const auto g = make_connected_graph(200, 25, 44);
  steiner_service svc(graph::csr_graph(g), obs_config(1));

  // Warm-up solve: the admission estimator is history-based (cold-solve p50),
  // so the traced request below gets a non-zero completion estimate.
  (void)svc.solve(make_query({7, 60, 110, 170}));

  request r;
  r.q.seeds = {3, 50, 100, 150};
  query_handle h = svc.submit(r);
  const query_result out = h.get();

  ASSERT_NE(out.trace, nullptr);
  ASSERT_NE(h.trace(), nullptr);
  const auto summary = h.trace_summary();
  ASSERT_TRUE(summary.has_value());
  EXPECT_EQ(summary->request_id, h.id());
  EXPECT_EQ(summary->query_id, out.query_id);
  EXPECT_GT(summary->total_seconds, 0.0);
  EXPECT_GT(summary->supersteps, 0u);
  EXPECT_GT(summary->visitors, 0u);
  // admission + queue_wait + six solver phases.
  EXPECT_GE(summary->spans, 8u);
  EXPECT_GT(summary->samples, 0u);
  // Tracing was on with an estimate computed at admission.
  EXPECT_GT(summary->admission_estimate_seconds, 0.0);

  const std::string json = out.trace->to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("Voronoi Cell"), std::string::npos);
  EXPECT_NE(json.find("queue_wait"), std::string::npos);

  // threshold = 1ns: the solve must have landed in the slow-query log.
  EXPECT_GE(svc.slow_log().size(), 1u);
  EXPECT_GE(svc.stats().slow_queries, 1u);
}

TEST(Tracing, DisabledTracingYieldsNoTraceAndIdenticalTrees) {
  const auto g = make_connected_graph(200, 25, 45);
  const std::vector<vertex_id> seeds{3, 50, 100, 150};

  service_config on = obs_config(1);
  service_config off = obs_config(1);
  off.trace.enabled = false;
  // Head sampling is a separate always-on knob (and deterministically
  // samples the first execution) — zero it to turn observation fully off.
  off.trace.sample_rate = 0.0;

  steiner_service svc_on(graph::csr_graph(g), on);
  steiner_service svc_off(graph::csr_graph(g), off);
  const query_result a = svc_on.solve(make_query(seeds));
  const query_result b = svc_off.solve(make_query(seeds));

  EXPECT_NE(a.trace, nullptr);
  EXPECT_EQ(b.trace, nullptr);
  EXPECT_EQ(a.result.tree_edges, b.result.tree_edges);
  EXPECT_EQ(a.result.total_distance, b.result.total_distance);
  EXPECT_EQ(svc_off.slow_log().size(), 0u);
}

// ---- debug endpoint ---------------------------------------------------------

TEST(DebugEndpoint, ServesMetricsStatuszAndTracez) {
  const auto g = make_connected_graph(200, 25, 46);
  steiner_service svc(graph::csr_graph(g), obs_config(1));
  (void)svc.solve(make_query({3, 50, 100, 150}));

  debug_endpoint endpoint(svc);
  ASSERT_TRUE(endpoint.start());
  ASSERT_TRUE(endpoint.running());
  ASSERT_NE(endpoint.port(), 0);

  const std::string metrics =
      obs::http_body(obs::http_get(endpoint.port(), "/metrics"));
  ASSERT_FALSE(metrics.empty());
  const auto report = obs::validate_prometheus(metrics);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(series_value(metrics, "dsteiner_queries_total"), 0.0);

  const std::string statusz =
      obs::http_body(obs::http_get(endpoint.port(), "/statusz"));
  EXPECT_NE(statusz.find("queries:"), std::string::npos);
  EXPECT_NE(statusz.find("epoch:"), std::string::npos);
  EXPECT_NE(statusz.find("slow_queries:"), std::string::npos);

  const std::string tracez =
      obs::http_body(obs::http_get(endpoint.port(), "/tracez"));
  ASSERT_FALSE(tracez.empty());
  EXPECT_EQ(tracez.front(), '[');
  EXPECT_EQ(tracez.back(), ']');
  // The slow log captured the solve (1ns threshold), so /tracez carries at
  // least one Chrome trace object.
  EXPECT_NE(tracez.find("\"traceEvents\""), std::string::npos);

  const std::string missing = obs::http_get(endpoint.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  // Only routed requests count as served — the 404 above does not.
  EXPECT_GE(endpoint.server().requests_served(), 3u);
  endpoint.stop();
  EXPECT_FALSE(endpoint.running());
}

TEST(DebugEndpoint, ScrapesConcurrentWithQueries) {
  const auto g = make_connected_graph(250, 25, 47);
  steiner_service svc(graph::csr_graph(g), obs_config(2));
  debug_endpoint endpoint(svc);
  ASSERT_TRUE(endpoint.start());

  std::atomic<bool> stop{false};
  std::atomic<int> scrapes_ok{0};
  std::thread scraper([&] {
    while (!stop.load()) {
      const std::string body =
          obs::http_body(obs::http_get(endpoint.port(), "/metrics"));
      if (!body.empty() && obs::validate_prometheus(body).ok()) ++scrapes_ok;
    }
  });
  for (std::uint64_t i = 0; i < 12; ++i) {
    query q;
    q.seeds = {static_cast<vertex_id>(3 + i), 50, 100,
               static_cast<vertex_id>(150 + i)};
    (void)svc.solve(std::move(q));
  }
  stop.store(true);
  scraper.join();
  EXPECT_GT(scrapes_ok.load(), 0);
}

// ---- cluster observability plane --------------------------------------------

TEST(ClusterTelemetry, DistributedSolveFeedsClusterzTraceAndMetrics) {
  const auto g = make_connected_graph(250, 25, 52);
  service_config config = obs_config(1);
  config.distributed.world = 2;
  steiner_service svc(graph::csr_graph(g), config);
  debug_endpoint endpoint(svc);
  ASSERT_TRUE(endpoint.start());

  // Before any distributed solve: the route answers with the empty document.
  const std::string empty_doc =
      obs::http_body(obs::http_get(endpoint.port(), "/clusterz"));
  EXPECT_NE(empty_doc.find("\"world\":0"), std::string::npos);

  const query_result result = svc.solve(make_query({3, 50, 100, 150}));
  ASSERT_NE(result.trace, nullptr);

  // The straggler digest landed in the trace summary...
  const obs::trace_summary& summary = result.trace->summary();
  EXPECT_EQ(summary.cluster_world, 2u);
  EXPECT_GT(summary.cluster_supersteps, 0u);
  EXPECT_GE(summary.cluster_critical_rank, 0);
  EXPECT_GE(summary.cluster_max_compute_skew, 1.0);
  EXPECT_GT(summary.cluster_comm_wait_fraction, 0.0);
  EXPECT_LE(summary.cluster_comm_wait_fraction, 1.0);

  // ...and the Chrome export carries one track per rank under the synthetic
  // cluster process next to the service-side spans.
  EXPECT_FALSE(result.trace->rank_slices().empty());
  const std::string chrome = result.trace->to_chrome_json();
  EXPECT_NE(chrome.find("\"name\":\"cluster\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"rank 0\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"rank 1\""), std::string::npos);
  EXPECT_NE(chrome.find("rank_compute"), std::string::npos);

  // /clusterz now serves the merged straggler report.
  const std::string clusterz =
      obs::http_body(obs::http_get(endpoint.port(), "/clusterz"));
  EXPECT_NE(clusterz.find("\"world\":2"), std::string::npos);
  EXPECT_NE(clusterz.find("\"straggler_report\":["), std::string::npos);
  EXPECT_NE(clusterz.find("\"critical_rank\""), std::string::npos);

  // /statusz has the cluster line; /metrics carries the new families and
  // still parses clean.
  const std::string statusz =
      obs::http_body(obs::http_get(endpoint.port(), "/statusz"));
  EXPECT_NE(statusz.find("cluster: telemetry_samples="), std::string::npos);
  const std::string metrics =
      obs::http_body(obs::http_get(endpoint.port(), "/metrics"));
  EXPECT_TRUE(obs::validate_prometheus(metrics).ok());
  EXPECT_GT(series_value(metrics, "dsteiner_cluster_telemetry_samples_total"),
            0.0);
  EXPECT_GT(series_value(metrics, "dsteiner_cluster_supersteps_total"), 0.0);
  EXPECT_GE(series_value(metrics,
                         "dsteiner_cluster_straggler_supersteps_total"),
            0.0);

  const auto snap = svc.snapshot();
  EXPECT_EQ(snap.cluster_superstep_seconds.count,
            snap.stats.cluster_telemetry_samples);
  EXPECT_EQ(snap.cluster_comm_wait_seconds.count,
            snap.stats.cluster_telemetry_samples);
}

// ---- executor priority aging ------------------------------------------------

TEST(Executor, AgingPromotesStarvedBackgroundTask) {
  executor_config config;
  config.num_threads = 1;
  config.queue_capacity = 512;
  config.aging_step_seconds = 0.005;
  executor exec(config);

  std::atomic<bool> background_ran{false};
  std::atomic<int> interactive_left{400};

  // A self-sustaining stream of interactive tasks: each one takes ~1ms and
  // re-posts itself, so under strict priority the background task below
  // would wait for the whole stream. Aging must pull it forward.
  executor::task interactive = [&](double) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (background_ran.load() || interactive_left.fetch_sub(1) <= 0) return;
    executor::task_options opts;
    opts.priority = 0;
    std::function<void(double)> self;  // re-post a fresh copy of this body
    exec.post(
        [&](double wait) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          if (background_ran.load() || interactive_left.fetch_sub(1) <= 0) {
            return;
          }
          executor::task_options again;
          again.priority = 0;
          exec.post(
              [&](double) {
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
                (void)wait;
              },
              again);
        },
        opts);
  };

  {
    executor::task_options opts;
    opts.priority = 0;
    for (int i = 0; i < 8; ++i) exec.post(interactive, opts);
  }
  {
    executor::task_options opts;
    opts.priority = 2;  // background
    exec.post([&](double) { background_ran.store(true); }, opts);
  }

  for (int spin = 0; spin < 4000 && !background_ran.load(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(background_ran.load());
  EXPECT_GE(exec.stats().promoted, 1u);
}

TEST(Executor, NoAgingKeepsStrictPriorityAndCountsNothing) {
  executor_config config;
  config.num_threads = 1;
  config.queue_capacity = 64;
  executor exec(config);  // aging_step_seconds == 0: historical behaviour
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    executor::task_options opts;
    opts.priority = static_cast<std::size_t>(i % 3);
    exec.post([&](double) { ++ran; }, opts);
  }
  while (ran.load() < 10) std::this_thread::yield();
  EXPECT_EQ(exec.stats().promoted, 0u);
}

TEST(Executor, StatsReportLiveQueueDepth) {
  executor_config config;
  config.num_threads = 1;
  config.queue_capacity = 64;
  executor exec(config);
  std::atomic<bool> release{false};
  exec.post([&](double) {
    while (!release.load()) std::this_thread::yield();
  });
  exec.post([](double) {});
  exec.post([](double) {});
  // The blocker occupies the worker; two tasks wait in the queue.
  for (int spin = 0; spin < 2000 && exec.stats().queue_depth < 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(exec.stats().queue_depth, 2u);
  release.store(true);
}

// ---- latency histogram windows ----------------------------------------------

TEST(LatencyHistogram, ResetWindowDrainsExactlyOnce) {
  latency_histogram hist;
  hist.record(1e-3);
  hist.record(1e-3);
  hist.record(2e-3);
  const auto w1 = hist.reset_window();
  EXPECT_EQ(w1.count, 3u);
  EXPECT_GT(w1.total_seconds, 0.0);
  // Drained: the live histogram starts a fresh window.
  EXPECT_EQ(hist.snapshot().count, 0u);
  hist.record(5e-3);
  const auto w2 = hist.reset_window();
  EXPECT_EQ(w2.count, 1u);

  // Windows recompose without double counting.
  latency_histogram::snapshot_data acc{};
  acc.accumulate(w1);
  acc.accumulate(w2);
  EXPECT_EQ(acc.count, 4u);
  EXPECT_GT(acc.percentile(50.0), 0.0);
}

TEST(LatencyHistogram, AllZeroBucketWindowHasFinitePercentiles) {
  // A windowed snapshot can carry a count with no bucket mass (e.g. a
  // snapshot raced between the bucket and count updates, or an accumulate
  // of empty windows with a stale count). Percentiles must degrade to 0.
  latency_histogram::snapshot_data z{};
  z.count = 7;
  EXPECT_EQ(z.percentile(50.0), 0.0);
  EXPECT_FALSE(std::isnan(z.percentile(99.0)));
  EXPECT_FALSE(std::isnan(z.quantile(0.999)));
}

// ---- cost model -------------------------------------------------------------

TEST(CostModel, DisabledOrEmptyPredictsZero) {
  obs::query_features f;
  f.x[obs::query_features::k_bias] = 1.0;
  f.x[obs::query_features::k_seeds] = 8.0;

  obs::cost_model_config off;
  off.enabled = false;
  obs::cost_model disabled(off);
  disabled.observe(f, 1.0);
  EXPECT_EQ(disabled.predict_seconds(f), 0.0);
  EXPECT_FALSE(disabled.ready());

  obs::cost_model empty;
  EXPECT_EQ(empty.predict_seconds(f), 0.0);
  EXPECT_FALSE(empty.ready());

  // Non-finite and negative targets must not poison the coefficients.
  empty.observe(f, std::numeric_limits<double>::quiet_NaN());
  empty.observe(f, -1.0);
  EXPECT_EQ(empty.snapshot().samples, 0u);
}

TEST(CostModel, RlsConvergesAndBeatsGlobalP50Baseline) {
  // Synthetic workload with the admission estimator's real failure mode:
  // per-query cost varies ~5x with |S|, which a global p50 cannot express.
  // The model sees the analytic features and must fit the curve online.
  obs::cost_model model;
  const double counts[] = {4.0, 8.0, 12.0, 16.0, 20.0};
  std::vector<double> history, model_err, baseline_err;
  for (int i = 0; i < 120; ++i) {
    const double s = counts[i % 5];
    obs::query_features f;
    f.x[obs::query_features::k_bias] = 1.0;
    f.x[obs::query_features::k_seeds] = s;
    f.x[obs::query_features::k_seeds_sq] = s * s;
    f.x[obs::query_features::k_log_vertices] = 10.0;  // fixed graph
    f.x[obs::query_features::k_log_arcs] = 11.5;
    f.x[obs::query_features::k_seeds_log_n] = s * 10.0;
    f.x[obs::query_features::k_inv_threads] = 1.0;
    const double y = 0.01 + 0.002 * s + 0.0001 * s * s;
    if (model.ready()) {
      // Online evaluation: predict before this sample trains the model,
      // against the global-p50-so-far baseline on the same query.
      model_err.push_back(std::abs(model.predict_seconds(f) - y));
      baseline_err.push_back(std::abs(median(history) - y));
    }
    model.observe(f, y);
    history.push_back(y);
  }
  ASSERT_FALSE(model_err.empty());
  EXPECT_LT(median(model_err), median(baseline_err));

  const auto snap = model.snapshot();
  EXPECT_TRUE(snap.enabled);
  EXPECT_TRUE(snap.ready);
  EXPECT_EQ(snap.samples, 120u);
  EXPECT_LT(snap.abs_error_ema_seconds, 0.01);
}

// ---- SLO tracker ------------------------------------------------------------

TEST(Slo, BurnRateWindowsRotateAndExpire) {
  obs::slo_config cfg;
  cfg.objective_seconds = {1.0};
  cfg.error_budget = 0.1;  // short 60s / long 600s / 60 buckets of 10s
  obs::slo_tracker tracker(1, cfg);
  EXPECT_TRUE(tracker.violates(0, 2.0));
  EXPECT_FALSE(tracker.violates(0, 0.5));

  tracker.record_at(0, 0.5, 5.0);  // good
  tracker.record_at(0, 2.0, 5.0);  // bad

  const auto s1 = tracker.snapshot_at(5.0);
  ASSERT_EQ(s1.classes.size(), 1u);
  EXPECT_EQ(s1.classes[0].good_total, 1u);
  EXPECT_EQ(s1.classes[0].bad_total, 1u);
  EXPECT_EQ(s1.classes[0].short_good, 1u);
  EXPECT_EQ(s1.classes[0].short_bad, 1u);
  // bad ratio 0.5 against a 0.1 budget: burning 5x sustainable.
  EXPECT_DOUBLE_EQ(s1.classes[0].burn_rate_short, 5.0);
  EXPECT_DOUBLE_EQ(s1.classes[0].burn_rate_long, 5.0);
  EXPECT_EQ(s1.classes[0].window_latency.count, 2u);

  // 95s later: outside the short window, still inside the long one.
  const auto s2 = tracker.snapshot_at(100.0);
  EXPECT_EQ(s2.classes[0].short_good + s2.classes[0].short_bad, 0u);
  EXPECT_DOUBLE_EQ(s2.classes[0].burn_rate_short, 0.0);
  EXPECT_EQ(s2.classes[0].long_good, 1u);
  EXPECT_EQ(s2.classes[0].long_bad, 1u);
  EXPECT_DOUBLE_EQ(s2.classes[0].burn_rate_long, 5.0);

  // Past the long window: the ring expired the events; lifetime totals stay.
  const auto s3 = tracker.snapshot_at(700.0);
  EXPECT_EQ(s3.classes[0].long_good + s3.classes[0].long_bad, 0u);
  EXPECT_DOUBLE_EQ(s3.classes[0].burn_rate_long, 0.0);
  EXPECT_EQ(s3.classes[0].good_total, 1u);
  EXPECT_EQ(s3.classes[0].bad_total, 1u);

  obs::slo_config off = cfg;
  off.enabled = false;
  obs::slo_tracker disabled(1, off);
  disabled.record_at(0, 5.0, 1.0);
  EXPECT_FALSE(disabled.violates(0, 5.0));
  EXPECT_EQ(disabled.snapshot_at(1.0).classes[0].bad_total, 0u);
}

TEST(Slo, ViolationIsForceRetainedInSlowLog) {
  const auto g = make_connected_graph(200, 25, 48);
  service_config config = obs_config(1);
  // Far above any solve time: the slow threshold alone would retain nothing.
  config.trace.slow_query_threshold_seconds = 1e9;
  config.trace.sample_rate = 0.0;
  // Zero-latency objective for every class: each completion violates.
  config.slo.objective_seconds = {0.0};
  steiner_service svc(graph::csr_graph(g), config);
  (void)svc.solve(make_query({3, 50, 100, 150}));

  EXPECT_GE(svc.stats().slo_violations, 1u);
  EXPECT_GE(svc.stats().slow_queries, 1u);
  EXPECT_GE(svc.slow_log().size(), 1u);
  const auto snap = svc.snapshot();
  ASSERT_FALSE(snap.slo.classes.empty());
  std::uint64_t bad = 0;
  for (const auto& c : snap.slo.classes) bad += c.bad_total;
  EXPECT_GE(bad, 1u);
}

// ---- head sampling ----------------------------------------------------------

TEST(Sampling, HeadSamplingRateIsExact) {
  const auto g = make_connected_graph(220, 25, 49);
  service_config config = obs_config(1);
  config.trace.enabled = false;           // only sampling can create traces
  config.trace.sample_rate = 0.25;        // every 4th execution
  config.trace.slow_query_threshold_seconds = 1e9;
  config.slo.enabled = false;             // nothing force-retained
  steiner_service svc(graph::csr_graph(g), config);

  for (std::uint64_t i = 0; i < 8; ++i) {
    query q;
    q.seeds = {static_cast<vertex_id>(5 + i), 60, 120,
               static_cast<vertex_id>(160 + i)};
    (void)svc.solve(std::move(q));
  }
  // Deterministic modulo sampling: executions 0 and 4 of 8.
  EXPECT_EQ(svc.stats().sampled_traces, 2u);
  EXPECT_EQ(svc.flight_recorder().size(), 2u);
  EXPECT_EQ(svc.slow_log().size(), 0u);
}

TEST(Sampling, SampledSolveBitIdenticalToUntracedBothEngines) {
  const auto g = make_connected_graph(300, 25, 50);
  const std::vector<vertex_id> seeds{7, 80, 150, 220, 280};
  for (const bool threaded : {false, true}) {
    service_config sampled_cfg = obs_config(1);
    sampled_cfg.trace.enabled = false;
    sampled_cfg.trace.sample_rate = 1.0;  // every query head-sampled
    sampled_cfg.trace.slow_query_threshold_seconds = 1e9;
    service_config plain_cfg = sampled_cfg;
    plain_cfg.trace.sample_rate = 0.0;    // never sampled
    if (threaded) {
      for (auto* c : {&sampled_cfg, &plain_cfg}) {
        c->solver.mode = runtime::execution_mode::parallel_threads;
        c->solver.num_threads = 4;
      }
    }
    steiner_service svc_sampled(graph::csr_graph(g), sampled_cfg);
    steiner_service svc_plain(graph::csr_graph(g), plain_cfg);
    const query_result a = svc_sampled.solve(make_query(seeds));
    const query_result b = svc_plain.solve(make_query(seeds));

    EXPECT_NE(a.trace, nullptr) << "threaded=" << threaded;
    EXPECT_EQ(b.trace, nullptr) << "threaded=" << threaded;
    EXPECT_EQ(a.result.tree_edges, b.result.tree_edges)
        << "threaded=" << threaded;
    EXPECT_EQ(a.result.total_distance, b.result.total_distance)
        << "threaded=" << threaded;
    EXPECT_EQ(a.result.phases.total().sim_units,
              b.result.phases.total().sim_units)
        << "threaded=" << threaded;
  }
}

// ---- debug endpoint: query params, /slo, robustness -------------------------

TEST(DebugServer, QueryParamParsing) {
  EXPECT_EQ(obs::query_param("limit=5&mode=full", "mode"), "full");
  EXPECT_EQ(obs::query_param("limit=5&mode=full", "limit"), "5");
  EXPECT_EQ(obs::query_param("limit=5", "missing"), "");
  EXPECT_EQ(obs::query_param("", "limit"), "");
  EXPECT_EQ(obs::query_param_u64("limit=12", "limit", 99), 12u);
  EXPECT_EQ(obs::query_param_u64("limit=abc", "limit", 99), 99u);
  EXPECT_EQ(obs::query_param_u64("", "limit", 99), 99u);
}

TEST(DebugEndpoint, TracezHonorsLimitAndSloRouteServesBurnRates) {
  const auto g = make_connected_graph(200, 25, 51);
  steiner_service svc(graph::csr_graph(g), obs_config(1));
  for (std::uint64_t i = 0; i < 3; ++i) {
    query q;
    q.seeds = {static_cast<vertex_id>(3 + i), 50, 100,
               static_cast<vertex_id>(140 + i)};
    (void)svc.solve(std::move(q));
  }
  debug_endpoint endpoint(svc);
  ASSERT_TRUE(endpoint.start());

  const std::string all =
      obs::http_body(obs::http_get(endpoint.port(), "/tracez"));
  EXPECT_GE(count_occurrences(all, "\"traceEvents\""), 3u);
  const std::string one =
      obs::http_body(obs::http_get(endpoint.port(), "/tracez?limit=1"));
  EXPECT_EQ(count_occurrences(one, "\"traceEvents\""), 1u);
  // A malformed limit falls back to "everything".
  const std::string junk =
      obs::http_body(obs::http_get(endpoint.port(), "/tracez?limit=bogus"));
  EXPECT_EQ(count_occurrences(junk, "\"traceEvents\""),
            count_occurrences(all, "\"traceEvents\""));

  const std::string slo = obs::http_body(obs::http_get(endpoint.port(), "/slo"));
  ASSERT_FALSE(slo.empty());
  const auto report = obs::validate_prometheus(slo);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_NE(slo.find("dsteiner_slo_burn_rate{priority="), std::string::npos);
  EXPECT_NE(slo.find("window=\"short\""), std::string::npos);
  EXPECT_NE(slo.find("window=\"long\""), std::string::npos);

  // /statusz grew cost-model and burn-rate rows.
  const std::string statusz =
      obs::http_body(obs::http_get(endpoint.port(), "/statusz"));
  EXPECT_NE(statusz.find("cost_model:"), std::string::npos);
  EXPECT_NE(statusz.find("cost_model.w["), std::string::npos);
  EXPECT_NE(statusz.find("slo["), std::string::npos);

  // /metrics carries the new families alongside the old ones.
  const std::string metrics =
      obs::http_body(obs::http_get(endpoint.port(), "/metrics"));
  EXPECT_TRUE(obs::validate_prometheus(metrics).ok());
  EXPECT_GE(series_value(metrics, "dsteiner_cost_model_samples"), 1.0);
  EXPECT_GE(series_value(metrics, "dsteiner_sampled_traces_total"), 0.0);
  EXPECT_GE(series_value(metrics, "dsteiner_slo_violations_total"), 0.0);
  EXPECT_NE(metrics.find("dsteiner_estimate_error_model_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(metrics.find("dsteiner_estimate_error_baseline_seconds_bucket"),
            std::string::npos);
}

TEST(DebugServer, OversizedRequestLineGets404) {
  obs::debug_server server;
  server.add_route("/ping", "text/plain",
                   [](std::string_view) { return std::string("pong"); });
  ASSERT_TRUE(server.start());
  // 8 KiB with no CRLF overflows the 4 KiB request buffer.
  const std::string response =
      raw_request(server.port(), std::string(8192, 'A'), true);
  EXPECT_NE(response.find("404"), std::string::npos);
  EXPECT_NE(response.find("request line too long"), std::string::npos);
  // The server survives and still answers well-formed requests.
  EXPECT_EQ(obs::http_body(obs::http_get(server.port(), "/ping")), "pong");
  server.stop();
}

TEST(DebugServer, PartialAndStalledRequestsGet400) {
  obs::debug_server server;
  server.add_route("/ping", "text/plain",
                   [](std::string_view) { return std::string("pong"); });
  server.set_read_timeout_ms(100);  // keep the stalled case fast
  ASSERT_TRUE(server.start());

  // Half-close after a partial request line: disconnect-before-CRLF.
  const std::string partial = raw_request(server.port(), "GET /pi", true);
  EXPECT_NE(partial.find("400"), std::string::npos);
  EXPECT_NE(partial.find("incomplete request"), std::string::npos);

  // Stalled client: stays connected, never completes the line; the read
  // deadline must answer instead of wedging the accept loop.
  const std::string stalled = raw_request(server.port(), "GET /pi", false);
  EXPECT_NE(stalled.find("400"), std::string::npos);

  EXPECT_EQ(obs::http_body(obs::http_get(server.port(), "/ping")), "pong");
  server.stop();
}

}  // namespace
