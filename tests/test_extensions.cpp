// Tests for the extension modules: delta-stepping, binary graph IO, Yen's
// k-shortest paths, dual-ascent lower bounds and key-path improvement.
#include <gtest/gtest.h>

#include <sstream>
#include <tuple>

#include "baselines/dual_ascent.hpp"
#include "baselines/exact.hpp"
#include "baselines/key_path_improvement.hpp"
#include "baselines/mehlhorn.hpp"
#include "core/steiner_solver.hpp"
#include "core/validation.hpp"
#include "graph/delta_stepping.hpp"
#include "graph/dijkstra.hpp"
#include "graph/generators.hpp"
#include "graph/graph_io.hpp"
#include "graph/k_shortest_paths.hpp"
#include "util/random.hpp"

namespace {

using namespace dsteiner;
using graph::vertex_id;
using graph::weight_t;

graph::csr_graph make_connected_graph(int n, weight_t w_hi, std::uint64_t seed) {
  graph::edge_list list =
      graph::generate_erdos_renyi(n, static_cast<std::uint64_t>(n) * 3, seed);
  graph::assign_uniform_weights(list, 1, w_hi, seed ^ 0x44);
  graph::connect_components(list, w_hi + 1, seed);
  return graph::csr_graph(list);
}

std::vector<vertex_id> pick_seeds(const graph::csr_graph& g, std::size_t count,
                                  std::uint64_t seed) {
  util::rng gen(seed);
  const auto picks =
      util::sample_without_replacement(g.num_vertices(), count, gen);
  return {picks.begin(), picks.end()};
}

// ---- Delta stepping.

class DeltaStepping
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DeltaStepping, MatchesDijkstra) {
  const auto [n, delta, seed] = GetParam();
  const auto g = make_connected_graph(n, 60, seed);
  const auto reference = graph::dijkstra(g, 0);
  const auto ds = graph::delta_stepping(g, 0, static_cast<weight_t>(delta));
  EXPECT_EQ(ds.distance, reference.distance);
  EXPECT_EQ(ds.parent, reference.parent);
  EXPECT_GT(ds.buckets_processed, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeltaStepping,
    ::testing::Combine(::testing::Values(40, 150),
                       ::testing::Values(0, 1, 7, 64, 10000),
                       ::testing::Values(1, 2, 3)));

TEST(DeltaStepping, LightHeavySplitObserved) {
  const auto g = make_connected_graph(200, 100, 5);
  const auto ds = graph::delta_stepping(g, 0, 50);
  EXPECT_GT(ds.light_relaxations, 0u);
  EXPECT_GT(ds.heavy_relaxations, 0u);
}

TEST(DeltaStepping, MatchesDijkstraOnHubHeavyPowerLawGraph) {
  // RMAT's skewed degree distribution is the shape that stresses bucketed
  // scheduling: a few hubs own most arcs, so bucket membership churns hard.
  graph::rmat_params params;
  params.scale = 10;
  params.edge_factor = 12;
  params.seed = 0xD5;
  graph::edge_list list = graph::generate_rmat(params);
  graph::assign_uniform_weights(list, 1, 500, 0xD5 ^ 0x44);
  graph::connect_components(list, 501, 0xD5);
  const graph::csr_graph g(list);

  const auto reference = graph::dijkstra(g, 0);
  for (const weight_t delta : {weight_t{0}, weight_t{3}, weight_t{250}}) {
    const auto ds = graph::delta_stepping(g, 0, delta);
    EXPECT_EQ(ds.distance, reference.distance) << "delta=" << delta;
    EXPECT_EQ(ds.parent, reference.parent) << "delta=" << delta;
  }
}

TEST(DeltaStepping, HeuristicDeltaIsTheAverageArcWeight) {
  graph::edge_list list(3);
  list.add_undirected_edge(0, 1, 10);
  list.add_undirected_edge(1, 2, 30);
  const graph::csr_graph g(list);
  EXPECT_EQ(graph::heuristic_delta(g), 20u);  // (10+10+30+30)/4
}

TEST(DeltaStepping, UnreachableStaysInfinite) {
  graph::edge_list list(3);
  list.add_undirected_edge(0, 1, 4);
  const auto ds = graph::delta_stepping(graph::csr_graph(list), 0, 2);
  EXPECT_EQ(ds.distance[2], graph::k_inf_distance);
}

// ---- Binary graph IO.

TEST(GraphIo, RoundTripPreservesEverything) {
  const auto g = make_connected_graph(120, 40, 7);
  std::stringstream buffer;
  graph::save_binary_graph(buffer, g);
  const auto loaded = graph::load_binary_graph(buffer);
  EXPECT_EQ(loaded.num_vertices(), g.num_vertices());
  EXPECT_EQ(loaded.num_arcs(), g.num_arcs());
  EXPECT_EQ(loaded.offsets(), g.offsets());
  EXPECT_EQ(loaded.targets(), g.targets());
  EXPECT_EQ(loaded.arc_weights(), g.arc_weights());
}

TEST(GraphIo, RejectsBadMagic) {
  std::stringstream buffer("not a graph at all, definitely");
  EXPECT_THROW((void)graph::load_binary_graph(buffer), std::runtime_error);
}

TEST(GraphIo, RejectsTruncation) {
  const auto g = make_connected_graph(50, 10, 9);
  std::stringstream buffer;
  graph::save_binary_graph(buffer, g);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW((void)graph::load_binary_graph(truncated), std::runtime_error);
}

TEST(GraphIo, FileRoundTrip) {
  const auto g = make_connected_graph(30, 10, 11);
  const std::string path = "/tmp/dsteiner_io_test.bin";
  graph::save_binary_graph_file(path, g);
  const auto loaded = graph::load_binary_graph_file(path);
  EXPECT_EQ(loaded.targets(), g.targets());
  EXPECT_THROW((void)graph::load_binary_graph_file("/nonexistent/x.bin"),
               std::runtime_error);
}

// ---- Yen's k shortest paths.

TEST(Yen, FirstPathIsShortest) {
  const auto g = make_connected_graph(80, 30, 13);
  const auto paths = graph::yen_k_shortest_paths(g, 0, 50, 5);
  ASSERT_FALSE(paths.empty());
  const auto sp = graph::dijkstra(g, 0);
  EXPECT_EQ(paths.front().total_distance, sp.distance[50]);
}

TEST(Yen, PathsAreSortedDistinctAndSimple) {
  const auto g = make_connected_graph(60, 20, 17);
  const auto paths = graph::yen_k_shortest_paths(g, 1, 40, 8);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const auto& p = paths[i];
    EXPECT_EQ(p.vertices.front(), 1u);
    EXPECT_EQ(p.vertices.back(), 40u);
    // Simple: no repeated vertices.
    std::set<vertex_id> unique(p.vertices.begin(), p.vertices.end());
    EXPECT_EQ(unique.size(), p.vertices.size());
    // Edges exist and sum to the claimed distance.
    weight_t total = 0;
    for (std::size_t j = 0; j + 1 < p.vertices.size(); ++j) {
      const auto w = g.edge_weight(p.vertices[j], p.vertices[j + 1]);
      ASSERT_TRUE(w.has_value());
      total += *w;
    }
    EXPECT_EQ(total, p.total_distance);
    if (i > 0) {
      EXPECT_GE(p.total_distance, paths[i - 1].total_distance);
      EXPECT_NE(p.vertices, paths[i - 1].vertices);
    }
  }
}

TEST(Yen, ExhaustsSmallGraphs) {
  // A 4-cycle has exactly two simple paths between opposite corners.
  graph::edge_list list = graph::generate_cycle(4);
  graph::assign_uniform_weights(list, 1, 9, 3);
  const graph::csr_graph g(list);
  const auto paths = graph::yen_k_shortest_paths(g, 0, 2, 10);
  EXPECT_EQ(paths.size(), 2u);
}

TEST(Yen, NoPathReturnsEmpty) {
  graph::edge_list list(4);
  list.add_undirected_edge(0, 1, 1);
  const auto paths =
      graph::yen_k_shortest_paths(graph::csr_graph(list), 0, 3, 4);
  EXPECT_TRUE(paths.empty());
}

TEST(Yen, PathUnionSubgraphDeduplicates) {
  const auto g = make_connected_graph(60, 20, 19);
  const auto paths = graph::yen_k_shortest_paths(g, 0, 30, 6);
  const auto subgraph = graph::path_union_subgraph(g, paths);
  std::set<std::pair<vertex_id, vertex_id>> keys;
  for (const auto& e : subgraph) {
    EXPECT_LT(e.source, e.target);
    EXPECT_TRUE(keys.insert({e.source, e.target}).second);
    EXPECT_EQ(g.edge_weight(e.source, e.target), e.weight);
  }
}

// ---- Dual ascent lower bound.

class DualAscentProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DualAscentProperty, BoundsExactOptimumFromBelow) {
  const auto [n, num_seeds, seed] = GetParam();
  const auto g = make_connected_graph(n, 25, seed);
  const auto seeds = pick_seeds(g, num_seeds, seed + 3);
  const auto lb = baselines::dual_ascent_lower_bound(g, seeds);
  const auto exact = baselines::exact_steiner_tree(g, seeds);
  EXPECT_TRUE(lb.converged);
  EXPECT_GT(lb.lower_bound, 0u);
  EXPECT_LE(lb.lower_bound, exact.optimal_distance);
  // Dual ascent is typically within ~2x of optimal; sanity-check usefulness.
  EXPECT_GE(2 * lb.lower_bound, exact.optimal_distance);
}

INSTANTIATE_TEST_SUITE_P(SmallInstances, DualAscentProperty,
                         ::testing::Combine(::testing::Values(40, 100),
                                            ::testing::Values(3, 6, 10),
                                            ::testing::Values(21, 22, 23)));

TEST(DualAscent, TwoSeedsEqualsShortestPath) {
  // With |S| = 2 dual ascent converges to the exact shortest-path distance.
  const auto g = make_connected_graph(80, 20, 29);
  const std::vector<vertex_id> seeds{3, 60};
  const auto lb = baselines::dual_ascent_lower_bound(g, seeds);
  const auto sp = graph::dijkstra(g, 3);
  EXPECT_TRUE(lb.converged);
  EXPECT_LE(lb.lower_bound, sp.distance[60]);
  EXPECT_GE(lb.lower_bound, sp.distance[60] / 2);
}

TEST(DualAscent, IterationCapStillValid) {
  const auto g = make_connected_graph(100, 25, 31);
  const auto seeds = pick_seeds(g, 8, 33);
  baselines::dual_ascent_options options;
  options.max_iterations = 3;
  const auto capped = baselines::dual_ascent_lower_bound(g, seeds, options);
  const auto full = baselines::dual_ascent_lower_bound(g, seeds);
  EXPECT_LE(capped.lower_bound, full.lower_bound);
  EXPECT_LE(capped.iterations, 3u);
}

TEST(DualAscent, SingleSeedIsZero) {
  const auto g = make_connected_graph(20, 10, 35);
  const auto lb =
      baselines::dual_ascent_lower_bound(g, std::vector<vertex_id>{4});
  EXPECT_EQ(lb.lower_bound, 0u);
  EXPECT_TRUE(lb.converged);
}

TEST(DualAscent, UnreachableSeedsThrow) {
  graph::edge_list list(4);
  list.add_undirected_edge(0, 1, 1);
  list.add_undirected_edge(2, 3, 1);
  const graph::csr_graph g(list);
  EXPECT_THROW((void)baselines::dual_ascent_lower_bound(
                   g, std::vector<vertex_id>{0, 2}),
               std::runtime_error);
}

// ---- Key-path improvement.

class KeyPathImprovement
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(KeyPathImprovement, NeverWorsensAndStaysValid) {
  const auto [n, num_seeds, seed] = GetParam();
  const auto g = make_connected_graph(n, 25, seed);
  const auto seeds = pick_seeds(g, num_seeds, seed + 5);
  const auto base = core::solve_steiner_tree(g, seeds, {});
  const auto improved =
      baselines::improve_steiner_tree(g, seeds, base.tree_edges);
  EXPECT_LE(improved.total_distance, base.total_distance);
  EXPECT_EQ(improved.initial_distance, base.total_distance);
  const auto check = core::validate_steiner_tree(g, seeds, improved.tree_edges);
  EXPECT_TRUE(check.valid) << check.error;
  // The improved tree can never beat the exact optimum.
  const auto exact = baselines::exact_steiner_tree(g, seeds);
  EXPECT_GE(improved.total_distance, exact.optimal_distance);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, KeyPathImprovement,
                         ::testing::Combine(::testing::Values(40, 100, 180),
                                            ::testing::Values(4, 8),
                                            ::testing::Values(41, 42, 43)));

TEST(KeyPathImprovementEdge, RepairsObviousDetour) {
  // Triangle with a cheap bypass: tree through the expensive edge must be
  // exchanged for the two cheap ones.
  graph::edge_list list;
  list.add_undirected_edge(0, 1, 10);
  list.add_undirected_edge(0, 2, 2);
  list.add_undirected_edge(2, 1, 2);
  const graph::csr_graph g(list);
  const std::vector<vertex_id> seeds{0, 1};
  const std::vector<graph::weighted_edge> bad_tree{{0, 1, 10}};
  const auto improved = baselines::improve_steiner_tree(g, seeds, bad_tree);
  EXPECT_EQ(improved.total_distance, 4u);
  EXPECT_EQ(improved.exchanges, 1u);
}

TEST(KeyPathImprovementEdge, EmptyTreePassesThrough) {
  const auto g = make_connected_graph(20, 10, 51);
  const auto improved = baselines::improve_steiner_tree(
      g, std::vector<vertex_id>{5}, {});
  EXPECT_TRUE(improved.tree_edges.empty());
  EXPECT_EQ(improved.total_distance, 0u);
}

TEST(KeyPathImprovementEdge, LocalOptimumIsStable) {
  const auto g = make_connected_graph(80, 20, 53);
  const auto seeds = pick_seeds(g, 6, 55);
  const auto base = core::solve_steiner_tree(g, seeds, {});
  const auto once = baselines::improve_steiner_tree(g, seeds, base.tree_edges);
  const auto twice =
      baselines::improve_steiner_tree(g, seeds, once.tree_edges);
  EXPECT_EQ(twice.total_distance, once.total_distance);
  EXPECT_EQ(twice.exchanges, 0u);
}

TEST(Integration, RefinedTreeBracketedByDualAscent) {
  // End-to-end: LB <= refined <= base <= 2 * LB ties four modules together.
  const auto g = make_connected_graph(150, 30, 57);
  const auto seeds = pick_seeds(g, 12, 59);
  const auto base = core::solve_steiner_tree(g, seeds, {});
  const auto improved =
      baselines::improve_steiner_tree(g, seeds, base.tree_edges);
  const auto lb = baselines::dual_ascent_lower_bound(g, seeds);
  EXPECT_LE(lb.lower_bound, improved.total_distance);
  EXPECT_LE(improved.total_distance, base.total_distance);
  EXPECT_LE(base.total_distance, 2 * lb.lower_bound * 2);  // loose sanity
}

}  // namespace
