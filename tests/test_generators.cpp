// Unit tests for graph generators and weight assignment.
#include <gtest/gtest.h>

#include <set>

#include "graph/connected_components.hpp"
#include "graph/csr_graph.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"

namespace {

using namespace dsteiner;
using namespace dsteiner::graph;

TEST(Generators, PathShape) {
  const csr_graph g(generate_path(5));
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_arcs(), 8u);  // 4 undirected edges
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
}

TEST(Generators, CycleShape) {
  const csr_graph g(generate_cycle(6));
  for (vertex_id v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Generators, StarShape) {
  const csr_graph g(generate_star(7));
  EXPECT_EQ(g.degree(0), 6u);
  for (vertex_id v = 1; v < 7; ++v) EXPECT_EQ(g.degree(v), 1u);
}

TEST(Generators, GridShape) {
  const csr_graph g(generate_grid(3, 4));
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_arcs(), 2u * (3 * 3 + 2 * 4));  // 17 undirected edges
  EXPECT_EQ(g.degree(0), 2u);   // corner
  EXPECT_EQ(g.degree(5), 4u);   // interior (row 1, col 1)
}

TEST(Generators, CompleteShape) {
  const csr_graph g(generate_complete(5));
  for (vertex_id v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Generators, RandomTreeIsSpanningTree) {
  const edge_list list = generate_random_tree(50, 3);
  EXPECT_EQ(list.size(), 2u * 49u);
  const csr_graph g(list);
  const auto cc = connected_components(g);
  EXPECT_EQ(cc.component_count, 1u);
}

TEST(Generators, ErdosRenyiEdgeCount) {
  const edge_list list = generate_erdos_renyi(100, 250, 7);
  EXPECT_EQ(list.size(), 500u);  // 250 undirected edges
  EXPECT_THROW((void)generate_erdos_renyi(4, 100, 7), std::invalid_argument);
}

TEST(Generators, ErdosRenyiDeterministic) {
  const edge_list a = generate_erdos_renyi(64, 128, 9);
  const edge_list b = generate_erdos_renyi(64, 128, 9);
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(Generators, RmatDeterministicAndSkewed) {
  rmat_params params;
  params.scale = 10;
  params.edge_factor = 8;
  params.seed = 5;
  const edge_list a = generate_rmat(params);
  const edge_list b = generate_rmat(params);
  EXPECT_EQ(a.edges(), b.edges());

  const csr_graph g(a);
  EXPECT_EQ(g.num_vertices(), 1024u);
  const auto stats = compute_statistics(g);
  // Scale-free-ish: the max degree dwarfs the average.
  EXPECT_GT(static_cast<double>(stats.max_degree), 5.0 * stats.avg_degree);
}

TEST(Generators, RmatRejectsBadProbabilities) {
  rmat_params params;
  params.a = 0.8;
  params.b = 0.2;
  params.c = 0.2;
  EXPECT_THROW((void)generate_rmat(params), std::invalid_argument);
}

TEST(Generators, WattsStrogatzDegreeSum) {
  const edge_list list = generate_watts_strogatz(100, 3, 0.1, 11);
  // Rewiring never changes the edge count (k per side).
  EXPECT_EQ(list.size(), 2u * 300u);
  EXPECT_THROW((void)generate_watts_strogatz(10, 5, 0.1, 1), std::invalid_argument);
}

TEST(Generators, UniformWeightsInRangeAndSymmetric) {
  edge_list list = generate_grid(8, 8);
  assign_uniform_weights(list, 5, 50, 99);
  const csr_graph g(list);
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto wts = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_GE(wts[i], 5u);
      EXPECT_LE(wts[i], 50u);
      // Both directions of an undirected edge agree.
      EXPECT_EQ(g.edge_weight(nbrs[i], v), wts[i]);
    }
  }
}

TEST(Generators, UniformWeightsDeterministicPerSeed) {
  edge_list a = generate_grid(4, 4);
  edge_list b = generate_grid(4, 4);
  assign_uniform_weights(a, 1, 100, 42);
  assign_uniform_weights(b, 1, 100, 42);
  EXPECT_EQ(a.edges(), b.edges());
  assign_uniform_weights(b, 1, 100, 43);
  EXPECT_NE(a.edges(), b.edges());
}

TEST(Generators, ConnectComponentsBridgesEverything) {
  edge_list list(9);
  list.add_undirected_edge(0, 1, 1);
  list.add_undirected_edge(3, 4, 1);
  list.add_undirected_edge(6, 7, 1);
  connect_components(list, 99, 1);
  const auto cc = connected_components(csr_graph(list));
  EXPECT_EQ(cc.component_count, 1u);
}

TEST(Generators, ConnectComponentsNoopWhenConnected) {
  edge_list list = generate_path(5);
  const std::size_t before = list.size();
  connect_components(list, 99, 1);
  EXPECT_EQ(list.size(), before);
}

}  // namespace
