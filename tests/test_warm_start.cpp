// Warm-start recomputation tests: a warm solve after a seed-set delta must be
// bit-identical to a cold solve (the solver's determinism guarantee) while
// doing measurably less phase-1/phase-2 work.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/steiner_solver.hpp"
#include "core/validation.hpp"
#include "core/warm_start.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

namespace {

using namespace dsteiner;
using namespace dsteiner::core;
using graph::vertex_id;
using graph::weight_t;

graph::csr_graph make_connected_graph(int n, weight_t w_hi, std::uint64_t seed) {
  graph::edge_list list =
      graph::generate_erdos_renyi(n, static_cast<std::uint64_t>(n) * 3, seed);
  graph::assign_uniform_weights(list, 1, w_hi, seed ^ 0x99);
  graph::connect_components(list, w_hi + 1, seed);
  return graph::csr_graph(list);
}

void expect_same_tree(const steiner_result& warm, const steiner_result& cold) {
  EXPECT_EQ(warm.total_distance, cold.total_distance);
  EXPECT_EQ(warm.tree_edges, cold.tree_edges);
  EXPECT_EQ(warm.num_seeds, cold.num_seeds);
  EXPECT_EQ(warm.spans_all_seeds, cold.spans_all_seeds);
}

TEST(WarmStart, SeedDeltaHelpers) {
  const std::vector<vertex_id> donor{2, 5, 9};
  const std::vector<vertex_id> target{2, 7, 9, 11};
  const auto delta = compute_seed_delta(donor, target);
  EXPECT_EQ(delta.added, (std::vector<vertex_id>{7, 11}));
  EXPECT_EQ(delta.removed, (std::vector<vertex_id>{5}));
  EXPECT_EQ(delta.size(), 3u);
}

TEST(WarmStart, CanonicalizeSeedsSortsAndDedups) {
  const auto g = make_connected_graph(30, 10, 1);
  const auto canon =
      canonicalize_seeds(g, std::vector<vertex_id>{9, 3, 9, 1, 3});
  EXPECT_EQ(canon, (std::vector<vertex_id>{1, 3, 9}));
  EXPECT_THROW((void)canonicalize_seeds(g, std::vector<vertex_id>{5, 999}),
               std::out_of_range);
}

TEST(WarmStart, CaptureMatchesPlainSolve) {
  const auto g = make_connected_graph(120, 20, 2);
  const std::vector<vertex_id> seeds{3, 40, 77, 100};
  solver_config config;
  config.validate = true;
  solve_artifacts artifacts;
  const auto captured = solve_steiner_tree_capture(g, seeds, config, artifacts);
  const auto plain = solve_steiner_tree(g, seeds, config);
  expect_same_tree(captured, plain);
  EXPECT_EQ(artifacts.seeds, seeds);  // already canonical
  EXPECT_FALSE(artifacts.empty());
  EXPECT_EQ(artifacts.state.distance.size(), g.num_vertices());
  EXPECT_EQ(artifacts.global_en.size(), captured.distance_graph_edges);
  EXPECT_GT(artifacts.memory_bytes(), 0u);
}

TEST(WarmStart, AddSeedEqualsCold) {
  const auto g = make_connected_graph(150, 25, 3);
  solver_config config;
  config.validate = true;
  solve_artifacts donor;
  (void)solve_steiner_tree_capture(g, std::vector<vertex_id>{10, 60, 120},
                                   config, donor);
  const std::vector<vertex_id> next{10, 60, 90, 120};
  warm_start_stats stats;
  const auto warm =
      solve_steiner_tree_warm(g, next, donor, config, nullptr, &stats);
  const auto cold = solve_steiner_tree(g, next, config);
  expect_same_tree(warm, cold);
  EXPECT_EQ(stats.added_seeds, 1u);
  EXPECT_EQ(stats.removed_seeds, 0u);
  EXPECT_EQ(stats.reset_vertices, 0u);
}

TEST(WarmStart, RemoveSeedEqualsCold) {
  const auto g = make_connected_graph(150, 25, 4);
  solver_config config;
  config.validate = true;
  solve_artifacts donor;
  (void)solve_steiner_tree_capture(g, std::vector<vertex_id>{10, 60, 90, 120},
                                   config, donor);
  const std::vector<vertex_id> next{10, 60, 120};
  warm_start_stats stats;
  const auto warm =
      solve_steiner_tree_warm(g, next, donor, config, nullptr, &stats);
  const auto cold = solve_steiner_tree(g, next, config);
  expect_same_tree(warm, cold);
  EXPECT_EQ(stats.removed_seeds, 1u);
  EXPECT_GT(stats.reset_vertices, 0u);  // seed 90's cell contained at least 90
}

TEST(WarmStart, MixedDeltaEqualsCold) {
  const auto g = make_connected_graph(200, 30, 5);
  solver_config config;
  config.validate = true;
  solve_artifacts donor;
  (void)solve_steiner_tree_capture(
      g, std::vector<vertex_id>{5, 50, 100, 150}, config, donor);
  const std::vector<vertex_id> next{5, 42, 100, 150, 188};
  const auto warm = solve_steiner_tree_warm(g, next, donor, config);
  const auto cold = solve_steiner_tree(g, next, config);
  expect_same_tree(warm, cold);
}

TEST(WarmStart, EmptyDeltaReproducesDonorTree) {
  const auto g = make_connected_graph(100, 15, 6);
  solver_config config;
  solve_artifacts donor;
  const auto first = solve_steiner_tree_capture(
      g, std::vector<vertex_id>{7, 33, 71}, config, donor);
  warm_start_stats stats;
  const auto warm = solve_steiner_tree_warm(
      g, std::vector<vertex_id>{7, 33, 71}, donor, config, nullptr, &stats);
  expect_same_tree(warm, first);
  EXPECT_EQ(stats.changed_vertices, 0u);
  EXPECT_EQ(stats.rescanned_vertices, 0u);
  EXPECT_EQ(stats.retained_entries, donor.global_en.size());
}

TEST(WarmStart, RandomDeltaChainEqualsColdEveryStep) {
  // Chain warm starts (each step's capture feeds the next) through a random
  // walk of add/remove edits; every step must match the cold solve.
  const auto g = make_connected_graph(250, 30, 7);
  solver_config config;
  config.validate = true;
  util::rng gen(0xabcde);

  std::vector<vertex_id> seeds{11, 60, 140, 200};
  solve_artifacts artifacts;
  (void)solve_steiner_tree_capture(g, seeds, config, artifacts);

  for (int step = 0; step < 12; ++step) {
    // Mutate: flip 1-3 membership decisions.
    const int flips = 1 + static_cast<int>(gen.uniform(0, 2));
    for (int f = 0; f < flips; ++f) {
      const vertex_id v = gen.uniform(0, g.num_vertices() - 1);
      const auto it = std::find(seeds.begin(), seeds.end(), v);
      if (it != seeds.end() && seeds.size() > 2) {
        seeds.erase(it);
      } else if (it == seeds.end()) {
        seeds.push_back(v);
      }
    }
    solve_artifacts next_artifacts;
    const auto warm = solve_steiner_tree_warm(g, seeds, artifacts, config,
                                              &next_artifacts);
    const auto cold = solve_steiner_tree(g, seeds, config);
    expect_same_tree(warm, cold);
    artifacts = std::move(next_artifacts);
    ASSERT_EQ(artifacts.seeds.size(), warm.num_seeds);
  }
}

TEST(WarmStart, DoesLessPhaseOneWorkThanCold) {
  // A spatially local graph with many small cells: a one-seed delta touches
  // only the handful of neighbouring cells, so both the Voronoi repair and
  // the partial phase-2 rescan stay local. (On an expander-like graph a
  // single delta can churn most cells and the incremental rescan
  // legitimately approaches full-scan cost.)
  graph::edge_list list = graph::generate_grid(24, 25);  // 600 vertices
  graph::assign_uniform_weights(list, 1, 30, 0x77);
  const graph::csr_graph g(list);
  solver_config config;
  solve_artifacts donor;
  std::vector<vertex_id> seeds;
  for (vertex_id s = 12; s < 600; s += 30) seeds.push_back(s);  // 20 seeds
  (void)solve_steiner_tree_capture(g, seeds, config, donor);

  seeds.push_back(301);
  warm_start_stats stats;
  const auto warm =
      solve_steiner_tree_warm(g, seeds, donor, config, nullptr, &stats);
  const auto cold = solve_steiner_tree(g, seeds, config);
  expect_same_tree(warm, cold);

  EXPECT_LT(stats.rescanned_vertices, g.num_vertices() / 2);

  const auto* warm_voronoi = warm.phases.find(runtime::phase_names::voronoi);
  const auto* cold_voronoi = cold.phases.find(runtime::phase_names::voronoi);
  ASSERT_NE(warm_voronoi, nullptr);
  ASSERT_NE(cold_voronoi, nullptr);
  EXPECT_LT(warm_voronoi->visitors_processed, cold_voronoi->visitors_processed);
  EXPECT_LT(warm_voronoi->messages_total(), cold_voronoi->messages_total());

  const auto* warm_scan = warm.phases.find(runtime::phase_names::local_min_edge);
  const auto* cold_scan = cold.phases.find(runtime::phase_names::local_min_edge);
  ASSERT_NE(warm_scan, nullptr);
  ASSERT_NE(cold_scan, nullptr);
  EXPECT_LT(warm_scan->visitors_processed, cold_scan->visitors_processed);
}

TEST(WarmStart, DonorConfigDoesNotMatter) {
  // Artifacts are config-independent (determinism): a donor computed under
  // one runtime configuration warm-starts a query under another.
  const auto g = make_connected_graph(150, 20, 9);
  solver_config donor_config;
  donor_config.num_ranks = 4;
  donor_config.policy = runtime::queue_policy::fifo;
  donor_config.mode = runtime::execution_mode::bsp;
  solve_artifacts donor;
  (void)solve_steiner_tree_capture(g, std::vector<vertex_id>{12, 55, 101},
                                   donor_config, donor);

  solver_config query_config;  // defaults: 16 ranks, priority, async
  query_config.validate = true;
  const std::vector<vertex_id> next{12, 55, 101, 140};
  const auto warm = solve_steiner_tree_warm(g, next, donor, query_config);
  const auto cold = solve_steiner_tree(g, next, query_config);
  expect_same_tree(warm, cold);
}

TEST(WarmStart, DenseReductionEqualsCold) {
  const auto g = make_connected_graph(150, 20, 10);
  solver_config config;
  config.dense_distance_graph = true;
  config.allreduce_chunk_items = 3;
  solve_artifacts donor;
  (void)solve_steiner_tree_capture(g, std::vector<vertex_id>{9, 70, 130},
                                   config, donor);
  const std::vector<vertex_id> next{9, 44, 70, 130};
  const auto warm = solve_steiner_tree_warm(g, next, donor, config);
  const auto cold = solve_steiner_tree(g, next, config);
  expect_same_tree(warm, cold);
}

TEST(WarmStart, ForestDeltasWhenSeedsDisconnect) {
  graph::edge_list list(8);
  list.add_undirected_edge(0, 1, 3);
  list.add_undirected_edge(1, 2, 4);
  list.add_undirected_edge(3, 4, 5);
  list.add_undirected_edge(4, 5, 2);
  const graph::csr_graph g(list);
  solver_config config;
  config.allow_disconnected_seeds = true;
  solve_artifacts donor;
  (void)solve_steiner_tree_capture(g, std::vector<vertex_id>{0, 2, 3}, config,
                                   donor);
  const std::vector<vertex_id> next{0, 2, 3, 5};
  const auto warm = solve_steiner_tree_warm(g, next, donor, config);
  const auto cold = solve_steiner_tree(g, next, config);
  expect_same_tree(warm, cold);
  EXPECT_FALSE(warm.spans_all_seeds);
}

TEST(WarmStart, ShrinkToSingleSeedYieldsEmptyTree) {
  const auto g = make_connected_graph(60, 10, 11);
  solver_config config;
  solve_artifacts donor;
  (void)solve_steiner_tree_capture(g, std::vector<vertex_id>{4, 30}, config,
                                   donor);
  const auto warm =
      solve_steiner_tree_warm(g, std::vector<vertex_id>{4}, donor, config);
  EXPECT_TRUE(warm.tree_edges.empty());
  EXPECT_EQ(warm.total_distance, 0u);
}

TEST(WarmStart, MismatchedDonorThrows) {
  const auto g = make_connected_graph(60, 10, 12);
  const auto other = make_connected_graph(90, 10, 13);
  solver_config config;
  solve_artifacts donor;
  (void)solve_steiner_tree_capture(other, std::vector<vertex_id>{1, 50},
                                   config, donor);
  EXPECT_THROW((void)solve_steiner_tree_warm(g, std::vector<vertex_id>{1, 20},
                                             donor, config),
               std::invalid_argument);

  // Same |V|, different graph: the fingerprint check must still reject —
  // repairing stale labels would silently produce a wrong tree.
  const auto same_size = make_connected_graph(60, 10, 14);
  solve_artifacts same_size_donor;
  (void)solve_steiner_tree_capture(same_size, std::vector<vertex_id>{1, 50},
                                   config, same_size_donor);
  EXPECT_THROW((void)solve_steiner_tree_warm(
                   g, std::vector<vertex_id>{1, 20}, same_size_donor, config),
               std::invalid_argument);

  const solve_artifacts empty_donor;
  EXPECT_THROW((void)solve_steiner_tree_warm(g, std::vector<vertex_id>{1, 20},
                                             empty_donor, config),
               std::invalid_argument);
}

}  // namespace
