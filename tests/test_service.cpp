// Tests for the concurrent query service: executor pool semantics, sharded
// LRU cache behaviour, and the service facade's three execution paths (cold,
// warm start, cache hit) — including the determinism stress test: concurrent
// queries must produce bit-identical trees to sequential cold solves.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "core/steiner_solver.hpp"
#include "graph/epoch_graph.hpp"
#include "graph/generators.hpp"
#include "service/executor.hpp"
#include "service/metrics_text.hpp"
#include "service/result_cache.hpp"
#include "service/steiner_service.hpp"

namespace {

using namespace dsteiner;
using namespace dsteiner::service;
using graph::vertex_id;
using graph::weight_t;

graph::csr_graph make_connected_graph(int n, weight_t w_hi, std::uint64_t seed) {
  graph::edge_list list =
      graph::generate_erdos_renyi(n, static_cast<std::uint64_t>(n) * 3, seed);
  graph::assign_uniform_weights(list, 1, w_hi, seed ^ 0x99);
  graph::connect_components(list, w_hi + 1, seed);
  return graph::csr_graph(list);
}

// ---- executor ---------------------------------------------------------------

TEST(Executor, RunsEveryPostedTask) {
  std::atomic<int> ran{0};
  {
    executor exec({2, 16});
    for (int i = 0; i < 50; ++i) {
      exec.post([&ran](double) { ++ran; });
    }
  }  // destructor drains the queue
  EXPECT_EQ(ran.load(), 50);
}

TEST(Executor, StatsCountExecutions) {
  executor exec({1, 64});
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) exec.post([&ran](double) { ++ran; });
  while (ran.load() < 10) std::this_thread::yield();
  const auto stats = exec.stats();
  EXPECT_EQ(stats.submitted, 10u);
  EXPECT_EQ(stats.executed, 10u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GE(stats.total_queue_wait_seconds, 0.0);
}

TEST(Executor, TryPostShedsLoadWhenFull) {
  executor exec({1, 1});
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::atomic<int> ran{0};
  // Occupy the single worker, then fill the single queue slot.
  exec.post([gate, &ran](double) { gate.wait(); ++ran; });
  while (exec.queue_depth() > 0) std::this_thread::yield();  // worker picked up
  exec.post([gate, &ran](double) { gate.wait(); ++ran; });   // queued
  bool accepted_extra = exec.try_post([&ran](double) { ++ran; });
  EXPECT_FALSE(accepted_extra);
  EXPECT_EQ(exec.stats().rejected, 1u);
  release.set_value();
}

// ---- result cache -----------------------------------------------------------

result_cache::entry_ptr make_entry(std::vector<vertex_id> seeds,
                                   graph::weight_t distance,
                                   double solve_cost_seconds = 0.0,
                                   std::uint64_t epoch_id = 0) {
  auto entry = std::make_shared<cached_solve>();
  entry->seeds = std::move(seeds);
  entry->result.total_distance = distance;
  entry->solve_cost_seconds = solve_cost_seconds;
  entry->epoch_id = epoch_id;
  return entry;
}

TEST(ResultCache, HitMissAndLruEviction) {
  result_cache cache({/*capacity=*/2, /*shards=*/1});
  const cache_key a{1, 10, 0}, b{1, 20, 0}, c{1, 30, 0};
  const std::vector<vertex_id> seeds_a{1}, seeds_b{2}, seeds_c{3};
  cache.insert(a, make_entry(seeds_a, 100));
  cache.insert(b, make_entry(seeds_b, 200));

  ASSERT_NE(cache.find(a, seeds_a), nullptr);  // refreshes a: b is now LRU
  cache.insert(c, make_entry(seeds_c, 300));   // evicts b

  EXPECT_EQ(cache.find(b, seeds_b), nullptr);
  ASSERT_NE(cache.find(a, seeds_a), nullptr);
  ASSERT_NE(cache.find(c, seeds_c), nullptr);

  const auto stats = cache.snapshot();
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(ResultCache, SeedMismatchIsAMissNotAWrongTree) {
  result_cache cache({4, 1});
  const cache_key key{1, 42, 0};
  cache.insert(key, make_entry({1, 2, 3}, 100));
  // Same 64-bit key, different canonical seeds (simulated hash collision).
  const std::vector<vertex_id> other{4, 5, 6};
  EXPECT_EQ(cache.find(key, other), nullptr);
  EXPECT_EQ(cache.snapshot().misses, 1u);
}

TEST(ResultCache, OccupancyNeverExceedsCapacity) {
  result_cache cache({8, 4});
  for (std::uint64_t i = 0; i < 100; ++i) {
    cache.insert(cache_key{1, i, 0},
                 make_entry({static_cast<vertex_id>(i)}, i));
  }
  const auto stats = cache.snapshot();
  EXPECT_LE(stats.entries, 8u);
  EXPECT_EQ(stats.insertions, 100u);
  EXPECT_EQ(stats.insertions - stats.evictions, stats.entries);
}

TEST(ResultCache, CostAwareEvictionPrefersCheapEntries) {
  // Capacity 3, window 4: on overflow the cheapest-to-recompute entry within
  // the LRU tail window is evicted, not necessarily the coldest.
  result_cache cache({/*capacity=*/3, /*shards=*/1, /*eviction_window=*/4});
  const cache_key a{1, 10, 0}, b{1, 20, 0}, c{1, 30, 0}, d{1, 40, 0};
  const std::vector<vertex_id> sa{1}, sb{2}, sc{3}, sd{4};
  cache.insert(a, make_entry(sa, 100, /*cost=*/10.0));  // expensive, coldest
  cache.insert(b, make_entry(sb, 200, /*cost=*/0.001));  // cheap
  cache.insert(c, make_entry(sc, 300, /*cost=*/5.0));
  cache.insert(d, make_entry(sd, 400, /*cost=*/7.0));  // overflow

  EXPECT_EQ(cache.find(b, sb), nullptr);  // cheap b went, not cold a
  EXPECT_NE(cache.find(a, sa), nullptr);
  EXPECT_NE(cache.find(c, sc), nullptr);
  EXPECT_NE(cache.find(d, sd), nullptr);
  EXPECT_EQ(cache.snapshot().evictions, 1u);
}

TEST(ResultCache, EvictionWindowOneIsPlainLru) {
  result_cache cache({/*capacity=*/2, /*shards=*/1, /*eviction_window=*/1});
  const cache_key a{1, 10, 0}, b{1, 20, 0}, c{1, 30, 0};
  const std::vector<vertex_id> sa{1}, sb{2}, sc{3};
  cache.insert(a, make_entry(sa, 100, /*cost=*/0.001));  // cheap but also LRU
  cache.insert(b, make_entry(sb, 200, /*cost=*/9.0));
  cache.insert(c, make_entry(sc, 300, /*cost=*/9.0));
  EXPECT_EQ(cache.find(a, sa), nullptr);  // window 1: strict LRU order
  EXPECT_NE(cache.find(b, sb), nullptr);
  EXPECT_NE(cache.find(c, sc), nullptr);
}

TEST(ResultCache, CostAwareEvictionNeverDropsTheFreshInsert) {
  // Window larger than the shard: the just-inserted MRU entry must survive
  // even when it is the cheapest of all.
  result_cache cache({/*capacity=*/2, /*shards=*/1, /*eviction_window=*/8});
  const cache_key a{1, 10, 0}, b{1, 20, 0}, c{1, 30, 0};
  const std::vector<vertex_id> sa{1}, sb{2}, sc{3};
  cache.insert(a, make_entry(sa, 100, /*cost=*/5.0));
  cache.insert(b, make_entry(sb, 200, /*cost=*/6.0));
  cache.insert(c, make_entry(sc, 300, /*cost=*/0.001));  // cheapest, freshest
  EXPECT_NE(cache.find(c, sc), nullptr);
  EXPECT_EQ(cache.find(a, sa), nullptr);  // cheapest *candidate* evicted
}

TEST(ResultCache, StaleEpochEntriesEvictFirst) {
  // Window 1 would be plain LRU — but a stale-epoch entry anywhere in the
  // shard outranks LRU order as the victim.
  result_cache cache({/*capacity=*/2, /*shards=*/1, /*eviction_window=*/1});
  cache.set_live_epoch(1);
  const cache_key a{1, 10, 0}, b{1, 20, 0}, c{1, 30, 0};
  const std::vector<vertex_id> sa{1}, sb{2}, sc{3};
  cache.insert(a, make_entry(sa, 100, /*cost=*/9.0, /*epoch=*/1));  // live, LRU
  cache.insert(b, make_entry(sb, 200, /*cost=*/9.0, /*epoch=*/0));  // stale
  cache.insert(c, make_entry(sc, 300, /*cost=*/9.0, /*epoch=*/1));  // overflow

  EXPECT_EQ(cache.find(b, sb), nullptr);  // stale b went, not LRU-tail a
  EXPECT_NE(cache.find(a, sa), nullptr);  // the sole live entry survived
  EXPECT_NE(cache.find(c, sc), nullptr);
}

TEST(ResultCache, AllLiveFallsBackToCostAwareWindow) {
  result_cache cache({/*capacity=*/3, /*shards=*/1, /*eviction_window=*/4});
  cache.set_live_epoch(2);
  const cache_key a{1, 10, 0}, b{1, 20, 0}, c{1, 30, 0}, d{1, 40, 0};
  const std::vector<vertex_id> sa{1}, sb{2}, sc{3}, sd{4};
  cache.insert(a, make_entry(sa, 100, /*cost=*/10.0, /*epoch=*/2));
  cache.insert(b, make_entry(sb, 200, /*cost=*/0.001, /*epoch=*/2));
  cache.insert(c, make_entry(sc, 300, /*cost=*/5.0, /*epoch=*/2));
  cache.insert(d, make_entry(sd, 400, /*cost=*/7.0, /*epoch=*/2));
  EXPECT_EQ(cache.find(b, sb), nullptr);  // cheapest live in the window
  EXPECT_NE(cache.find(a, sa), nullptr);
}

TEST(ResultCache, RetireEpochsPurgesOldEntries) {
  result_cache cache({8, 2});
  const std::vector<vertex_id> seeds{1};
  for (std::uint64_t e = 0; e < 4; ++e) {
    cache.insert(cache_key{e, 10, 0}, make_entry(seeds, 100, 0.0, e));
  }
  cache.set_live_epoch(3);
  EXPECT_EQ(cache.retire_epochs_before(2), 2u);  // epochs 0 and 1 purged
  const auto stats = cache.snapshot();
  EXPECT_EQ(stats.retired, 2u);
  EXPECT_EQ(stats.evictions, 0u);  // retirement is not capacity pressure
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(cache.find(cache_key{0, 10, 0}, seeds), nullptr);
  EXPECT_EQ(cache.find(cache_key{1, 10, 0}, seeds), nullptr);
  EXPECT_NE(cache.find(cache_key{2, 10, 0}, seeds), nullptr);
  EXPECT_NE(cache.find(cache_key{3, 10, 0}, seeds), nullptr);
}

// ---- latency histogram ------------------------------------------------------

TEST(LatencyHistogram, BucketsAreLog2Microseconds) {
  EXPECT_EQ(latency_histogram::bucket_of(0.0), 0u);
  EXPECT_EQ(latency_histogram::bucket_of(0.5e-6), 0u);
  EXPECT_EQ(latency_histogram::bucket_of(1.5e-6), 0u);
  EXPECT_EQ(latency_histogram::bucket_of(2.5e-6), 1u);
  EXPECT_EQ(latency_histogram::bucket_of(5.0e-6), 2u);
  EXPECT_EQ(latency_histogram::bucket_of(1.0e-3), 9u);    // 1024 µs
  EXPECT_EQ(latency_histogram::bucket_of(3600.0),
            latency_histogram::k_buckets - 1);  // clamps to the last bucket
}

TEST(LatencyHistogram, CountsMeanAndQuantiles) {
  latency_histogram hist;
  for (int i = 0; i < 90; ++i) hist.record(10e-6);   // ~10 µs: bucket [8,16)
  for (int i = 0; i < 10; ++i) hist.record(900e-6);  // ~0.9 ms tail
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_NEAR(snap.mean(), (90 * 10e-6 + 10 * 900e-6) / 100.0, 1e-12);
  // p50 falls inside the 8-16 µs bucket; p99 in the 512-1024 µs bucket.
  EXPECT_GE(snap.quantile(0.50), 8e-6);
  EXPECT_LE(snap.quantile(0.50), 16e-6);
  EXPECT_GE(snap.quantile(0.99), 512e-6);
  EXPECT_LE(snap.quantile(0.99), 1024e-6);
  EXPECT_LE(snap.quantile(1.0), 1024e-6);
  EXPECT_EQ(latency_histogram{}.snapshot().quantile(0.5), 0.0);  // empty
}

// ---- service facade ---------------------------------------------------------

service_config quiet_config(std::size_t threads) {
  service_config config;
  config.exec.num_threads = threads;
  config.exec.queue_capacity = 64;
  config.solver.num_ranks = 8;
  return config;
}

TEST(Service, ColdThenCacheHit) {
  steiner_service svc(make_connected_graph(150, 20, 21), quiet_config(2));
  query q;
  q.seeds = {3, 70, 120};
  const auto first = svc.solve(q);
  EXPECT_EQ(first.kind, solve_kind::cold);
  const auto second = svc.solve(q);
  EXPECT_EQ(second.kind, solve_kind::cache_hit);
  EXPECT_EQ(second.result.tree_edges, first.result.tree_edges);
  EXPECT_EQ(second.result.total_distance, first.result.total_distance);
  EXPECT_EQ(second.solve_seconds, 0.0);

  const auto stats = svc.stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.cold_solves, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache.hits, 1u);
}

TEST(Service, SeedOrderAndDuplicatesShareACacheEntry) {
  steiner_service svc(make_connected_graph(150, 20, 22), quiet_config(1));
  query a, b;
  a.seeds = {3, 70, 120};
  b.seeds = {120, 3, 70, 3};  // same canonical set
  (void)svc.solve(a);
  const auto second = svc.solve(b);
  EXPECT_EQ(second.kind, solve_kind::cache_hit);
}

TEST(Service, WarmStartOnSeedDelta) {
  const auto g = make_connected_graph(200, 25, 23);
  steiner_service svc(graph::csr_graph(g), quiet_config(2));
  query base;
  base.seeds = {5, 60, 110, 170};
  (void)svc.solve(base);

  query edited;
  edited.seeds = {5, 60, 110, 170, 42};
  const auto warm = svc.solve(edited);
  EXPECT_EQ(warm.kind, solve_kind::warm_start);
  EXPECT_EQ(warm.warm.added_seeds, 1u);

  // Bit-identical to an independent cold solve.
  core::solver_config reference = svc.config().solver;
  const auto cold = core::solve_steiner_tree(g, edited.seeds, reference);
  EXPECT_EQ(warm.result.tree_edges, cold.tree_edges);
  EXPECT_EQ(warm.result.total_distance, cold.total_distance);
  EXPECT_EQ(svc.stats().warm_solves, 1u);
}

TEST(Service, WarmStartRespectsDeltaLimit) {
  auto config = quiet_config(1);
  config.warm_delta_limit = 1;
  steiner_service svc(make_connected_graph(200, 25, 24), config);
  query base;
  base.seeds = {5, 60, 110};
  (void)svc.solve(base);

  query far;  // delta 3 > limit 1: must solve cold
  far.seeds = {5, 20, 80, 150};
  const auto result = svc.solve(far);
  EXPECT_EQ(result.kind, solve_kind::cold);
}

TEST(Service, QueryFlagsForceFreshColdSolves) {
  steiner_service svc(make_connected_graph(150, 20, 25), quiet_config(1));
  query q;
  q.seeds = {3, 70, 120};
  q.use_cache = false;
  q.allow_warm_start = false;
  const auto first = svc.solve(q);
  const auto second = svc.solve(q);
  EXPECT_EQ(first.kind, solve_kind::cold);
  EXPECT_EQ(second.kind, solve_kind::cold);
  EXPECT_EQ(svc.stats().cold_solves, 2u);
  EXPECT_EQ(second.result.tree_edges, first.result.tree_edges);
}

TEST(Service, DistributedColdSolveBitIdenticalToInProcess) {
  const auto g = make_connected_graph(220, 25, 27);
  auto config = quiet_config(2);
  config.distributed.world = 3;
  steiner_service dist_svc(graph::csr_graph(g), config);
  steiner_service local_svc(graph::csr_graph(g), quiet_config(2));
  query q;
  q.seeds = {5, 60, 110, 170};
  const auto dist = dist_svc.solve(q);
  const auto local = local_svc.solve(q);
  EXPECT_EQ(dist.kind, solve_kind::cold);
  EXPECT_EQ(dist.result.tree_edges, local.result.tree_edges);
  EXPECT_EQ(dist.result.total_distance, local.result.total_distance);

  // Distributed solves still feed the cache: identical repeats are free.
  const auto repeat = dist_svc.solve(q);
  EXPECT_EQ(repeat.kind, solve_kind::cache_hit);

  const auto stats = dist_svc.stats();
  EXPECT_EQ(stats.distributed_solves, 1u);
  EXPECT_GT(stats.net_bytes_modelled, 0u);
  EXPECT_GE(stats.net_bytes_sent, stats.net_bytes_modelled);
  EXPECT_GT(stats.net_frames_sent, 0u);
  EXPECT_GT(stats.net_supersteps, 0u);
  EXPECT_GT(stats.net_vote_rounds, 0u);

  // The paired modelled/measured histograms carry one sample per superstep
  // and surface in /metrics next to the latency families.
  const auto snap = dist_svc.snapshot();
  EXPECT_GT(snap.comm_bytes_measured.count, 0u);
  EXPECT_EQ(snap.comm_bytes_measured.count, snap.comm_bytes_modelled.count);
  const std::string text = render_metrics_text(snap);
  EXPECT_NE(text.find("dsteiner_net_bytes_sent_total"), std::string::npos);
  EXPECT_NE(text.find("dsteiner_comm_bytes_measured_bucket"),
            std::string::npos);
  EXPECT_NE(text.find("dsteiner_comm_bytes_modelled_bucket"),
            std::string::npos);
}

TEST(Service, ConfigOverrideGetsItsOwnCacheEntry) {
  steiner_service svc(make_connected_graph(150, 20, 26), quiet_config(1));
  query q;
  q.seeds = {3, 70, 120};
  const auto with_default = svc.solve(q);

  core::solver_config other = svc.config().solver;
  other.num_ranks = 32;
  q.config = other;
  const auto with_override = svc.solve(q);
  EXPECT_NE(with_override.kind, solve_kind::cache_hit);
  // Determinism: different runtime config, same tree.
  EXPECT_EQ(with_override.result.tree_edges, with_default.result.tree_edges);
}

TEST(Service, TrivialAndInvalidQueries) {
  steiner_service svc(make_connected_graph(100, 15, 27), quiet_config(1));
  query empty;
  const auto none = svc.solve(empty);
  EXPECT_TRUE(none.result.tree_edges.empty());

  query single;
  single.seeds = {7};
  EXPECT_TRUE(svc.solve(single).result.tree_edges.empty());

  query invalid;
  invalid.seeds = {1, 100000};
  auto future = svc.submit(invalid);
  EXPECT_THROW((void)future.get(), std::out_of_range);
}

TEST(Service, TrySubmitShedsWhenSaturated) {
  auto config = quiet_config(1);
  config.exec.queue_capacity = 1;
  steiner_service svc(make_connected_graph(300, 25, 28), config);
  std::vector<std::future<query_result>> accepted;
  std::size_t rejected = 0;
  for (int i = 0; i < 12; ++i) {
    query q;
    q.seeds = {2, static_cast<vertex_id>(20 + i), 250};
    q.use_cache = false;
    q.allow_warm_start = false;
    if (auto f = svc.try_submit(q)) {
      accepted.push_back(std::move(*f));
    } else {
      ++rejected;
    }
  }
  for (auto& f : accepted) (void)f.get();
  EXPECT_EQ(accepted.size() + rejected, 12u);
  EXPECT_EQ(svc.stats().exec.rejected, rejected);
  // With a single worker and one queue slot, 12 back-to-back submissions
  // cannot all be admitted.
  EXPECT_GT(rejected, 0u);
}

// The determinism guarantee under concurrency: N worker threads x M
// interleaved queries (shared seed sets, deltas, repeats) must produce trees
// bit-identical to sequential cold solves, no matter which path (cold, warm,
// cache) each query took.
TEST(Service, ConcurrentQueriesMatchSequentialColdSolves) {
  const auto g = make_connected_graph(250, 25, 29);
  core::solver_config solver;
  solver.num_ranks = 8;

  std::vector<std::vector<vertex_id>> seed_sets = {
      {3, 70, 120},          {3, 70, 120, 200},    {3, 120, 200},
      {10, 50, 90, 130},     {10, 50, 90, 130, 170}, {50, 90, 130},
      {3, 70, 120},          {10, 50, 90, 130},    {220, 40, 8},
      {220, 40, 8, 111},     {3, 70, 120, 200},    {50, 90, 130},
  };

  // Sequential cold references.
  std::vector<core::steiner_result> reference;
  reference.reserve(seed_sets.size());
  for (const auto& seeds : seed_sets) {
    reference.push_back(core::solve_steiner_tree(g, seeds, solver));
  }

  service_config config;
  config.solver = solver;
  config.exec.num_threads = 4;
  config.exec.queue_capacity = 64;
  steiner_service svc(graph::csr_graph(g), config);

  for (int round = 0; round < 2; ++round) {
    std::vector<std::future<query_result>> futures;
    futures.reserve(seed_sets.size());
    for (const auto& seeds : seed_sets) {
      query q;
      q.seeds = seeds;
      futures.push_back(svc.submit(q));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const auto qr = futures[i].get();
      EXPECT_EQ(qr.result.tree_edges, reference[i].tree_edges)
          << "query " << i << " via " << to_string(qr.kind);
      EXPECT_EQ(qr.result.total_distance, reference[i].total_distance);
    }
  }

  const auto stats = svc.stats();
  EXPECT_EQ(stats.queries, 2 * seed_sets.size());
  EXPECT_EQ(stats.cold_solves + stats.warm_solves + stats.cache_hits +
                stats.coalesced,
            stats.queries);
  EXPECT_GT(stats.cache_hits + stats.coalesced, 0u);  // repeats get deduped
}

// Single-flight: N identical queries racing through a multi-worker pool must
// trigger exactly one cold solve — the rest coalesce onto it or hit the cache
// it populates.
TEST(Service, IdenticalConcurrentQueriesCoalesceIntoOneSolve) {
  service_config config;
  config.solver.num_ranks = 8;
  config.exec.num_threads = 4;
  config.exec.queue_capacity = 32;
  config.enable_warm_start = false;
  steiner_service svc(make_connected_graph(300, 25, 30), config);

  query q;
  q.seeds = {5, 60, 110, 170, 230};
  std::vector<std::future<query_result>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(svc.submit(q));

  std::vector<query_result> results;
  results.reserve(futures.size());
  for (auto& f : futures) results.push_back(f.get());
  for (const auto& r : results) {
    EXPECT_EQ(r.result.tree_edges, results.front().result.tree_edges);
  }
  const auto stats = svc.stats();
  EXPECT_EQ(stats.cold_solves, 1u);
  EXPECT_EQ(stats.cache_hits + stats.coalesced, 7u);
}

// Metrics export: snapshot() must agree with the counters and have histogram
// populations matching the paths taken.
TEST(Service, SnapshotExportsCountersAndLatencyHistograms) {
  steiner_service svc(make_connected_graph(150, 20, 31), quiet_config(2));
  query q;
  q.seeds = {3, 70, 120};
  (void)svc.solve(q);  // cold
  (void)svc.solve(q);  // cache hit
  query edited = q;
  edited.seeds.push_back(40);
  (void)svc.solve(edited);  // warm start

  const auto snap = svc.snapshot();
  EXPECT_EQ(snap.stats.queries, 3u);
  EXPECT_EQ(snap.stats.cold_solves, 1u);
  EXPECT_EQ(snap.stats.cache_hits, 1u);
  EXPECT_EQ(snap.stats.warm_solves, 1u);
  EXPECT_EQ(snap.total.count, 3u);       // every query lands in `total`
  EXPECT_EQ(snap.queue_wait.count, 3u);  // and records its queue wait
  EXPECT_EQ(snap.cold_solve.count, 1u);
  EXPECT_EQ(snap.warm_solve.count, 1u);
  EXPECT_EQ(snap.cache_hit_total.count, 1u);
  EXPECT_GT(snap.cold_solve.mean(), 0.0);
  EXPECT_GE(snap.cold_solve.quantile(0.99), snap.cold_solve.quantile(0.01));
}

// Core-budget split: intra-query engine workers = budget / executor workers,
// and a budgeted parallel solve still matches the sequential tree.
TEST(Service, CoreBudgetGrantsIntraQueryThreads) {
  const auto g = make_connected_graph(200, 25, 32);
  auto config = quiet_config(2);
  config.core_budget = 8;
  config.solver.mode = runtime::execution_mode::parallel_threads;
  steiner_service svc(graph::csr_graph(g), config);
  EXPECT_EQ(svc.intra_query_threads(), 4u);  // 8 cores / 2 executor workers
  EXPECT_EQ(svc.config().solver.num_threads, 4u);

  query q;
  q.seeds = {5, 60, 110, 170};
  const auto parallel = svc.solve(q);
  EXPECT_EQ(parallel.kind, solve_kind::cold);

  core::solver_config sequential = quiet_config(1).solver;
  const auto reference = core::solve_steiner_tree(g, q.seeds, sequential);
  EXPECT_EQ(parallel.result.tree_edges, reference.tree_edges);
  EXPECT_EQ(parallel.result.total_distance, reference.total_distance);
}

// An explicit per-query thread count wins over the service grant.
TEST(Service, ExplicitThreadCountIsNotOverridden) {
  auto config = quiet_config(4);
  config.core_budget = 16;
  config.solver.mode = runtime::execution_mode::parallel_threads;
  config.solver.num_threads = 2;
  steiner_service svc(make_connected_graph(100, 15, 33), config);
  EXPECT_EQ(svc.config().solver.num_threads, 2u);
}

// ---- graph epochs through the service ---------------------------------------

// An edge reweight no longer rebuilds the service: the old epoch's cached
// tree stays servable through an epoch pin, and the new epoch's first solve
// is a warm-start repair bit-identical to a cold solve of the mutated graph.
TEST(ServiceEpochs, AdvanceServesOldEpochAndEdgeWarmStartsNew) {
  const auto g = make_connected_graph(200, 25, 40);
  steiner_service svc(graph::csr_graph(g), quiet_config(2));
  query q;
  q.seeds = {5, 60, 110, 170};
  const auto first = svc.solve(q);
  EXPECT_EQ(first.kind, solve_kind::cold);
  EXPECT_EQ(first.epoch, 0u);
  EXPECT_EQ(svc.current_epoch(), 0u);

  const auto nbrs = g.neighbors(60);
  ASSERT_FALSE(nbrs.empty());
  graph::edge_delta delta;
  delta.edits.push_back(graph::edge_edit::reweight(60, nbrs.front(), 400));
  EXPECT_EQ(svc.advance_epoch(delta), 1u);
  EXPECT_EQ(svc.current_epoch(), 1u);
  EXPECT_EQ(svc.stats().epoch_advances, 1u);

  // Pinned to the old epoch: still a cache hit with the old tree.
  query pinned = q;
  pinned.epoch = 0;
  const auto old_hit = svc.solve(pinned);
  EXPECT_EQ(old_hit.kind, solve_kind::cache_hit);
  EXPECT_EQ(old_hit.epoch, 0u);
  EXPECT_EQ(old_hit.result.tree_edges, first.result.tree_edges);

  // Unpinned: edge-delta warm start on the mutated graph.
  const auto fresh = svc.solve(q);
  EXPECT_EQ(fresh.kind, solve_kind::warm_start);
  EXPECT_EQ(fresh.epoch, 1u);
  EXPECT_GT(fresh.warm.edge_edits, 0u);
  const auto cold = core::solve_steiner_tree(svc.graph(), q.seeds,
                                             svc.config().solver);
  EXPECT_EQ(fresh.result.tree_edges, cold.tree_edges);
  EXPECT_EQ(fresh.result.total_distance, cold.total_distance);
  EXPECT_EQ(svc.stats().edge_warm_solves, 1u);

  // And the repaired solve populated the new epoch's cache.
  const auto again = svc.solve(q);
  EXPECT_EQ(again.kind, solve_kind::cache_hit);
  EXPECT_EQ(again.epoch, 1u);
}

// Stale-while-warming: with max_stale_epochs on, a current-epoch miss serves
// the previous epoch's cached tree (marked stale) and refreshes behind.
TEST(ServiceEpochs, StaleHitServesPreviousEpochAndRefreshes) {
  const auto g = make_connected_graph(200, 25, 41);
  auto config = quiet_config(2);
  config.max_stale_epochs = 1;
  steiner_service svc(graph::csr_graph(g), config);
  query q;
  q.seeds = {5, 60, 110, 170};
  const auto first = svc.solve(q);

  const auto nbrs = g.neighbors(5);
  ASSERT_FALSE(nbrs.empty());
  graph::edge_delta delta;
  delta.edits.push_back(graph::edge_edit::reweight(5, nbrs.front(), 300));
  (void)svc.advance_epoch(delta);

  const auto stale = svc.solve(q);
  EXPECT_EQ(stale.kind, solve_kind::stale_hit);
  EXPECT_EQ(stale.epoch, 0u);  // explicitly the old epoch's tree
  EXPECT_EQ(stale.result.tree_edges, first.result.tree_edges);
  EXPECT_EQ(svc.stats().stale_hits, 1u);

  // A stale-intolerant query gets the current epoch (solving, coalescing
  // with the background refresh, or hitting the cache it already filled).
  query strict = q;
  strict.allow_stale = false;
  const auto fresh = svc.solve(strict);
  EXPECT_EQ(fresh.epoch, 1u);
  const auto cold = core::solve_steiner_tree(svc.graph(), q.seeds,
                                             svc.config().solver);
  EXPECT_EQ(fresh.result.tree_edges, cold.tree_edges);

  // Pinned queries never serve stale: the pin is authoritative.
  query pinned = q;
  pinned.epoch = 1;
  EXPECT_NE(svc.solve(pinned).kind, solve_kind::stale_hit);
}

// Epoch retirement: once the live window slides past an epoch, its cache
// entries and donors are purged and pins to it are rejected.
TEST(ServiceEpochs, RetirementEvictsOldEpochState) {
  const auto g = make_connected_graph(150, 20, 42);
  auto config = quiet_config(1);
  config.epochs.max_live_epochs = 2;
  steiner_service svc(graph::csr_graph(g), config);
  query q;
  q.seeds = {3, 70, 120};
  (void)svc.solve(q);  // epoch-0 entry + donor

  const auto nbrs = g.neighbors(3);
  ASSERT_FALSE(nbrs.empty());
  graph::edge_delta delta;
  delta.edits.push_back(graph::edge_edit::reweight(3, nbrs.front(), 200));
  (void)svc.advance_epoch(delta);
  EXPECT_EQ(svc.epochs().first_live_epoch(), 0u);  // still within the window
  (void)svc.advance_epoch(graph::edge_delta{});
  EXPECT_EQ(svc.epochs().first_live_epoch(), 1u);  // epoch 0 retired

  EXPECT_GE(svc.stats().cache.retired, 1u);
  query pinned = q;
  pinned.epoch = 0;
  EXPECT_THROW((void)svc.solve(pinned), std::invalid_argument);
}

// Donor selection ranks by estimated reset-region volume (sum of affected
// Voronoi cell sizes), not raw delta count: with two donors at equal delta
// size, the repair starts from the one whose removed cell is small.
TEST(ServiceEpochs, DonorSelectionPrefersSmallResetVolume) {
  // Path graph 0-1-...-99 with unit weights: cell sizes are predictable.
  graph::edge_list list(100);
  for (vertex_id v = 0; v + 1 < 100; ++v) list.add_undirected_edge(v, v + 1, 1);
  auto config = quiet_config(1);
  config.solver.num_ranks = 4;
  steiner_service svc(graph::csr_graph(list), config);

  // Donor 1: {0, 30, 90} — removing 0 resets its [0..15] cell (16 vertices).
  query d1;
  d1.seeds = {0, 30, 90};
  (void)svc.solve(d1);
  // Donor 2 (more recent): {30, 60, 90} — removing 60 resets ~[46..75] (30).
  query d2;
  d2.seeds = {30, 60, 90};
  (void)svc.solve(d2);

  // Target {30, 90}: both donors have raw delta 1. Raw-count ranking with
  // recency tie-break would pick donor 2; volume ranking must pick donor 1.
  query target;
  target.seeds = {30, 90};
  const auto warm = svc.solve(target);
  ASSERT_EQ(warm.kind, solve_kind::warm_start);
  EXPECT_EQ(warm.warm.removed_seeds, 1u);
  EXPECT_EQ(warm.warm.reset_vertices, 16u);  // donor 1's cell of seed 0
}

// The Prometheus text rendering agrees with the counters and emits valid
// histogram series.
TEST(ServiceEpochs, MetricsTextRendersSnapshot) {
  steiner_service svc(make_connected_graph(120, 15, 43), quiet_config(1));
  query q;
  q.seeds = {3, 70, 110};
  (void)svc.solve(q);
  (void)svc.solve(q);

  const std::string text = render_metrics_text(svc.snapshot());
  EXPECT_NE(text.find("# TYPE dsteiner_queries_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("dsteiner_queries_total 2"), std::string::npos);
  EXPECT_NE(text.find("dsteiner_cold_solves_total 1"), std::string::npos);
  EXPECT_NE(text.find("dsteiner_cache_hits_total 1"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dsteiner_query_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("dsteiner_query_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("dsteiner_query_seconds_count 2"), std::string::npos);
  // Custom prefix namespacing.
  const std::string other = render_metrics_text(svc.snapshot(), "steiner");
  EXPECT_NE(other.find("steiner_queries_total 2"), std::string::npos);
  EXPECT_EQ(other.find("dsteiner_"), std::string::npos);
}

// A failing leader must not strand coalesced waiters: everyone sees the
// exception.
TEST(Service, CoalescedQueriesPropagateLeaderFailure) {
  graph::edge_list list(4);
  list.add_undirected_edge(0, 1, 1);
  list.add_undirected_edge(2, 3, 1);
  service_config config;
  config.exec.num_threads = 2;
  steiner_service svc(graph::csr_graph(list), config);

  query q;
  q.seeds = {0, 2};  // disconnected; allow_disconnected_seeds is off
  std::vector<std::future<query_result>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(svc.submit(q));
  for (auto& f : futures) EXPECT_THROW((void)f.get(), std::runtime_error);
}

}  // namespace
