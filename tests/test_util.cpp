// Unit tests for util: PRNG, stats, formatting, hashing, timer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "util/format.hpp"
#include "util/hash.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace dsteiner;

TEST(Random, DeterministicAcrossInstances) {
  util::rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Random, DifferentSeedsDiverge) {
  util::rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b();
  EXPECT_LT(equal, 5);
}

TEST(Random, UniformRespectsBounds) {
  util::rng gen(7);
  for (int i = 0; i < 10000; ++i) {
    const auto x = gen.uniform(10, 20);
    EXPECT_GE(x, 10u);
    EXPECT_LE(x, 20u);
  }
}

TEST(Random, UniformSingletonRange) {
  util::rng gen(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(gen.uniform(5, 5), 5u);
}

TEST(Random, UniformCoversRange) {
  util::rng gen(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(gen.uniform(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Random, UniformRealInUnitInterval) {
  util::rng gen(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = gen.uniform_real();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Random, ChanceExtremes) {
  util::rng gen(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(gen.chance(0.0));
    EXPECT_TRUE(gen.chance(1.0));
  }
}

TEST(Random, SampleWithoutReplacementDistinct) {
  util::rng gen(5);
  const auto sample = util::sample_without_replacement(100, 30, gen);
  ASSERT_EQ(sample.size(), 30u);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const auto v : sample) EXPECT_LT(v, 100u);
}

TEST(Random, SampleWholePopulation) {
  util::rng gen(5);
  const auto sample = util::sample_without_replacement(10, 10, gen);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Random, SampleZero) {
  util::rng gen(5);
  EXPECT_TRUE(util::sample_without_replacement(10, 0, gen).empty());
}

TEST(Random, ShuffleIsPermutation) {
  util::rng gen(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  util::shuffle(shuffled, gen);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
}

TEST(Random, SplitMixAvalanche) {
  std::uint64_t s1 = 0, s2 = 1;
  const auto a = util::splitmix64(s1);
  const auto b = util::splitmix64(s2);
  EXPECT_NE(a, b);
}

TEST(Stats, EmptyDefaults) {
  util::summary_stats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Stats, KnownValues) {
  util::summary_stats s = util::summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);  // classic population-stddev example
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, SingleSample) {
  util::summary_stats s = util::summarize({3.5});
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(util::percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(util::percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(util::percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(util::percentile(v, 25), 2.0);
}

TEST(Format, WithCommas) {
  EXPECT_EQ(util::with_commas(0), "0");
  EXPECT_EQ(util::with_commas(999), "999");
  EXPECT_EQ(util::with_commas(1000), "1,000");
  EXPECT_EQ(util::with_commas(1234567), "1,234,567");
}

TEST(Format, Bytes) {
  EXPECT_EQ(util::format_bytes(512), "512B");
  EXPECT_EQ(util::format_bytes(1536), "1.5KB");
  EXPECT_EQ(util::format_bytes(std::uint64_t{3} << 30), "3.0GB");
}

TEST(Format, Count) {
  EXPECT_EQ(util::format_count(950), "950");
  EXPECT_EQ(util::format_count(9400), "9.4K");
  EXPECT_EQ(util::format_count(85.7e6), "85.7M");
  EXPECT_EQ(util::format_count(3.5e9), "3.5B");
}

TEST(Format, TableRendersAllCells) {
  util::table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_rule();
  t.add_row({"333", "4"});
  const std::string out = t.render();
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_NE(out.find("bb"), std::string::npos);
  EXPECT_EQ(t.rows(), 3u);  // two data rows + one rule
}

TEST(Format, DurationUnits) {
  EXPECT_EQ(util::format_duration(0.0005), "500.0us");
  EXPECT_EQ(util::format_duration(0.005), "5.0ms");
  EXPECT_EQ(util::format_duration(5.25), "5.25s");
  EXPECT_EQ(util::format_duration(120), "2.0m");
  EXPECT_EQ(util::format_duration(7200), "2.00h");
}

TEST(Hash, PairHashSpreads) {
  util::pair_hash h;
  std::set<std::size_t> values;
  for (std::uint64_t i = 0; i < 100; ++i) {
    values.insert(h(std::pair{i, i + 1}));
  }
  EXPECT_GT(values.size(), 95u);
}

TEST(Hash, Mix64Injective) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(util::mix64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Timer, MeasuresElapsed) {
  util::timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.milliseconds(), 15.0);
  t.restart();
  EXPECT_LT(t.milliseconds(), 15.0);
}

}  // namespace
