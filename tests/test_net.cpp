// The distributed transport subsystem (src/runtime/net/): wire-format
// round-trips and strict rejection, loopback mesh semantics, the termination
// vote, and the headline guarantee — a distributed solve over any world size
// and either backend is bit-identical to the single-process solver.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <thread>
#include <tuple>
#include <vector>

#include "core/steiner_solver.hpp"
#include "core/validation.hpp"
#include "graph/generators.hpp"
#include "runtime/net/dist_solver.hpp"
#include "runtime/net/frame.hpp"
#include "runtime/net/loopback_backend.hpp"
#include "runtime/net/tcp_backend.hpp"
#include "runtime/net/termination.hpp"
#include "util/cancellation.hpp"
#include "util/random.hpp"

namespace {

using namespace dsteiner;
using namespace dsteiner::runtime::net;
using graph::vertex_id;
using graph::weight_t;

graph::csr_graph make_connected_graph(int n, weight_t w_hi,
                                      std::uint64_t seed) {
  graph::edge_list list =
      graph::generate_erdos_renyi(n, static_cast<std::uint64_t>(n) * 3, seed);
  graph::assign_uniform_weights(list, 1, w_hi, seed ^ 0x99);
  graph::connect_components(list, w_hi + 1, seed);
  return graph::csr_graph(list);
}

std::vector<vertex_id> pick_seeds(const graph::csr_graph& g, std::size_t count,
                                  std::uint64_t seed) {
  util::rng gen(seed);
  const auto picks =
      util::sample_without_replacement(g.num_vertices(), count, gen);
  return {picks.begin(), picks.end()};
}

// ---- frame round-trips ------------------------------------------------------

TEST(NetFrame, VisitorBatchRoundTrip) {
  const std::vector<net_visitor> in{
      {1, 2, 3, 4},
      {graph::k_no_vertex, graph::k_no_vertex, 0, graph::k_inf_distance},
      {42, 0, 7, 123456789}};
  const frame f = encode_visitor_batch(in);
  EXPECT_EQ(f.type, frame_type::visitor_batch);
  EXPECT_EQ(f.payload.size(), in.size() * 32);
  EXPECT_EQ(decode_visitor_batch(f), in);
}

TEST(NetFrame, GhostAndWalkAndEdgeRoundTrip) {
  const std::vector<ghost_label> ghosts{{5, 2, 17}, {9, 9, 0}};
  EXPECT_EQ(decode_ghost_batch(encode_ghost_batch(ghosts)), ghosts);

  const std::vector<vertex_id> walk{0, 7, graph::k_no_vertex};
  EXPECT_EQ(decode_walk_batch(encode_walk_batch(walk)), walk);

  const std::vector<graph::weighted_edge> edges{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(decode_edge_batch(encode_edge_batch(edges)), edges);
}

TEST(NetFrame, EnEntryRoundTrip) {
  const std::vector<wire_en_entry> in{{1, 2, 30, 4, 5, 6},
                                      {7, 8, 90, 10, 11, 12}};
  const frame f = encode_en_batch(in);
  EXPECT_EQ(f.payload.size(), in.size() * 48);
  EXPECT_EQ(decode_en_batch(f), in);
}

TEST(NetFrame, VoteRoundTrip) {
  bucket_vote vote;
  vote.outstanding = 123;
  vote.min_bucket = 9;
  vote.superstep = 17;
  vote.cancel = 1;
  EXPECT_EQ(decode_vote(encode_vote(vote, false)), vote);
  const frame confirm = encode_vote(vote, true);
  EXPECT_EQ(confirm.type, frame_type::vote_confirm);
  EXPECT_EQ(decode_vote(confirm), vote);
}

TEST(NetFrame, MarkerAndHelloRoundTrip) {
  EXPECT_EQ(decode_marker(make_marker(99)), 99u);
  int rank = -1;
  int world = -1;
  decode_hello(encode_hello(3, 8), rank, world);
  EXPECT_EQ(rank, 3);
  EXPECT_EQ(world, 8);
}

TEST(NetFrame, WholeFrameEncodeDecode) {
  const std::vector<net_visitor> in{{1, 2, 3, 4}};
  const frame f = encode_visitor_batch(in);
  const std::vector<std::uint8_t> bytes = encode_frame(f);
  EXPECT_EQ(bytes.size(), k_header_bytes + f.payload.size());
  const frame back = decode_frame(bytes);
  EXPECT_EQ(back.type, f.type);
  EXPECT_EQ(back.payload, f.payload);
}

// ---- strict rejection -------------------------------------------------------

TEST(NetFrame, RejectsTruncatedHeader) {
  const std::vector<std::uint8_t> bytes(k_header_bytes - 1, 0);
  EXPECT_THROW((void)decode_header(bytes), wire_error);
}

TEST(NetFrame, RejectsBadMagic) {
  std::vector<std::uint8_t> bytes = encode_frame(make_marker(0));
  bytes[0] ^= 0xFF;
  EXPECT_THROW((void)decode_frame(bytes), wire_error);
}

TEST(NetFrame, RejectsOversizedLength) {
  std::vector<std::uint8_t> bytes = encode_frame(make_marker(0));
  // Patch the length field beyond k_max_payload_bytes.
  const std::uint32_t huge = k_max_payload_bytes + 1;
  for (int i = 0; i < 4; ++i) {
    bytes[4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(huge >> (8 * i));
  }
  EXPECT_THROW((void)decode_header(bytes), wire_error);
}

TEST(NetFrame, RejectsUnknownType) {
  std::vector<std::uint8_t> bytes = encode_frame(make_marker(0));
  bytes[2] = 200;
  EXPECT_THROW((void)decode_header(bytes), wire_error);
}

TEST(NetFrame, RejectsTruncatedAndTrailingPayload) {
  const std::vector<std::uint8_t> bytes =
      encode_frame(encode_visitor_batch(std::vector<net_visitor>{{1, 2, 3, 4}}));
  std::vector<std::uint8_t> truncated(bytes.begin(), bytes.end() - 1);
  EXPECT_THROW((void)decode_frame(truncated), wire_error);
  std::vector<std::uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_THROW((void)decode_frame(trailing), wire_error);
}

TEST(NetFrame, RejectsPartialRecords) {
  frame f = encode_visitor_batch(std::vector<net_visitor>{{1, 2, 3, 4}});
  f.payload.pop_back();  // 31 bytes: not a whole 32-byte record
  EXPECT_THROW((void)decode_visitor_batch(f), wire_error);
}

TEST(NetFrame, RejectsWrongType) {
  const frame f = make_marker(0);
  EXPECT_THROW((void)decode_visitor_batch(f), wire_error);
  EXPECT_THROW((void)decode_vote(f), wire_error);
}

// ---- loopback mesh ----------------------------------------------------------

TEST(NetLoopback, DeliversPerPeerFifoWithStats) {
  loopback_mesh mesh(3);
  comm_backend& a = mesh.endpoint(0);
  comm_backend& b = mesh.endpoint(1);

  a.send(1, make_marker(1));
  a.send(1, make_marker(2));
  int from = -1;
  frame f;
  ASSERT_TRUE(b.recv(from, f));
  EXPECT_EQ(from, 0);
  EXPECT_EQ(decode_marker(f), 1u);
  ASSERT_TRUE(b.recv(from, f));
  EXPECT_EQ(decode_marker(f), 2u);

  EXPECT_EQ(a.stats().frames_sent, 2u);
  EXPECT_EQ(a.stats().bytes_sent, 2 * (k_header_bytes + 4));
  EXPECT_EQ(b.stats().frames_received, 2u);

  mesh.close_all();
  EXPECT_FALSE(b.recv(from, f));
  EXPECT_THROW(a.send(1, make_marker(3)), wire_error);
}

TEST(NetLoopback, DrainsPendingFramesAfterClose) {
  loopback_mesh mesh(2);
  mesh.endpoint(0).send(1, make_marker(7));
  mesh.close_all();
  int from = -1;
  frame f;
  ASSERT_TRUE(mesh.endpoint(1).recv(from, f));
  EXPECT_EQ(decode_marker(f), 7u);
  EXPECT_FALSE(mesh.endpoint(1).recv(from, f));
}

TEST(NetTermination, TwoPhaseVoteStopsOnlyWhenAllIdle) {
  loopback_mesh mesh(2);
  vote_decision d0;
  vote_decision d1;
  std::thread peer([&] {
    peer_channels chans(mesh.endpoint(1));
    termination_vote vote(chans);
    d1 = vote.round(5, false, 2, 0);  // this rank still has work
  });
  peer_channels chans(mesh.endpoint(0));
  termination_vote vote(chans);
  d0 = vote.round(0, false, UINT64_MAX, 0);
  peer.join();
  EXPECT_FALSE(d0.stop);
  EXPECT_FALSE(d1.stop);
  EXPECT_EQ(d0.min_bucket, 2u);  // min-folded across ranks

  std::thread peer2([&] {
    peer_channels c(mesh.endpoint(1));
    termination_vote v(c);
    d1 = v.round(0, false, UINT64_MAX, 1);
  });
  peer_channels c0(mesh.endpoint(0));
  termination_vote v0(c0);
  d0 = v0.round(0, false, UINT64_MAX, 1);
  peer2.join();
  EXPECT_TRUE(d0.stop);   // proposed idle + confirmed idle
  EXPECT_TRUE(d1.stop);
  EXPECT_EQ(v0.rounds(), 2u);  // propose + confirm
}

// ---- distributed bit-identity ----------------------------------------------

void expect_identical(const core::steiner_result& a,
                      const core::steiner_result& b) {
  EXPECT_EQ(a.tree_edges, b.tree_edges);
  EXPECT_EQ(a.total_distance, b.total_distance);
  EXPECT_EQ(a.num_seeds, b.num_seeds);
  EXPECT_EQ(a.spans_all_seeds, b.spans_all_seeds);
}

TEST(NetDistSolve, LoopbackMatchesSingleProcessAcrossWorldSizes) {
  for (const std::uint64_t graph_seed : {11ull, 23ull}) {
    const graph::csr_graph g = make_connected_graph(300, 40, graph_seed);
    const auto seeds = pick_seeds(g, 7, graph_seed ^ 0xF00);
    core::solver_config config;
    config.validate = true;
    const auto reference = core::solve_steiner_tree(g, seeds, config);
    for (const int world : {1, 2, 3, 5}) {
      std::vector<net_solve_report> reports;
      const auto distributed =
          solve_loopback(g, seeds, config, world, &reports);
      expect_identical(distributed, reference);
      ASSERT_EQ(reports.size(), static_cast<std::size_t>(world));
      if (world > 1) {
        std::uint64_t measured = 0;
        for (const auto& r : reports) measured += r.stats.bytes_sent;
        EXPECT_GT(measured, 0u);
        EXPECT_EQ(reports[0].supersteps, reports[1].supersteps);
      }
    }
  }
}

TEST(NetDistSolve, BucketedGrowthMatchesStrict) {
  const graph::csr_graph g = make_connected_graph(250, 30, 77);
  const auto seeds = pick_seeds(g, 5, 0xABC);
  core::solver_config strict;
  const auto reference = core::solve_steiner_tree(g, seeds, strict);

  core::solver_config bucketed = strict;
  bucketed.growth = runtime::growth_mode::bucketed;
  const auto distributed = solve_loopback(g, seeds, bucketed, 3);
  expect_identical(distributed, reference);
}

TEST(NetDistSolve, RmatGraphMatches) {
  graph::rmat_params params;
  params.scale = 8;
  params.edge_factor = 8;
  params.seed = 5;
  graph::edge_list list = graph::generate_rmat(params);
  graph::assign_uniform_weights(list, 1, 20, 0x5EED);
  graph::connect_components(list, 21, 5);
  const graph::csr_graph g(list);
  const auto seeds = pick_seeds(g, 6, 42);

  core::solver_config config;
  config.validate = true;
  const auto reference = core::solve_steiner_tree(g, seeds, config);
  expect_identical(solve_loopback(g, seeds, config, 4), reference);
}

TEST(NetDistSolve, SingleSeedAndDuplicateSeeds) {
  const graph::csr_graph g = make_connected_graph(60, 10, 3);
  const auto one = solve_loopback(g, std::vector<vertex_id>{5}, {}, 2);
  EXPECT_TRUE(one.tree_edges.empty());
  EXPECT_EQ(one.num_seeds, 1u);

  const auto dup =
      solve_loopback(g, std::vector<vertex_id>{5, 9, 5, 9, 12}, {}, 2);
  const auto reference =
      core::solve_steiner_tree(g, std::vector<vertex_id>{5, 9, 12});
  expect_identical(dup, reference);
}

TEST(NetDistSolve, CancelledBudgetUnwindsAllRanks) {
  const graph::csr_graph g = make_connected_graph(200, 20, 9);
  const auto seeds = pick_seeds(g, 5, 1);
  util::cancel_source source;
  source.request_cancel();
  util::run_budget budget;
  budget.cancel = source.token();
  core::solver_config config;
  config.budget = &budget;
  EXPECT_THROW((void)solve_loopback(g, seeds, config, 3),
               util::operation_cancelled);
}

TEST(NetDistSolve, ReportsModelledAndMeasuredTraffic) {
  const graph::csr_graph g = make_connected_graph(300, 25, 15);
  const auto seeds = pick_seeds(g, 6, 2);
  std::vector<net_solve_report> reports;
  (void)solve_loopback(g, seeds, {}, 4, &reports);
  for (const auto& r : reports) {
    EXPECT_GT(r.stats.bytes_sent, 0u);
    EXPECT_GT(r.bytes_modelled, 0u);
    // Measured wire bytes include headers/markers/votes, so they dominate
    // the payload-only model.
    EXPECT_GE(r.stats.bytes_sent, r.bytes_modelled);
    EXPECT_FALSE(r.samples.empty());
    std::uint64_t modelled = 0;
    for (const auto& s : r.samples) modelled += s.bytes_modelled;
    EXPECT_EQ(modelled, r.bytes_modelled);
    EXPECT_GT(r.vote_rounds, 0u);
  }
}

// ---- TCP backend ------------------------------------------------------------

std::uint16_t test_base_port() {
  // Derived from the pid so parallel ctest shards don't collide.
  return static_cast<std::uint16_t>(20000 + (::getpid() % 20000));
}

TEST(NetTcp, MeshExchangesFramesBothWays) {
  const std::uint16_t port = test_base_port();
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Rank 1 process: echo rank 0's marker value back, doubled.
    int status = 1;
    try {
      tcp_backend net({1, 2, port, 15000});
      int from = -1;
      frame f;
      if (net.recv(from, f) && from == 0) {
        net.send(0, make_marker(decode_marker(f) * 2));
        status = 0;
      }
    } catch (...) {
    }
    ::_exit(status);
  }
  tcp_backend net({0, 2, port, 15000});
  net.send(1, make_marker(21));
  int from = -1;
  frame f;
  ASSERT_TRUE(net.recv(from, f));
  EXPECT_EQ(from, 1);
  EXPECT_EQ(decode_marker(f), 42u);
  EXPECT_GT(net.stats().bytes_sent, 0u);
  EXPECT_GT(net.stats().bytes_received, 0u);
  int wstatus = -1;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  EXPECT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0);
}

TEST(NetTcp, DistributedSolveBitIdenticalToSingleProcess) {
  const std::uint16_t port =
      static_cast<std::uint16_t>(test_base_port() + 100);
  const graph::csr_graph g = make_connected_graph(250, 30, 51);
  const auto seeds = pick_seeds(g, 6, 7);
  core::solver_config config;
  const auto reference = core::solve_steiner_tree(g, seeds, config);

  constexpr int k_world = 3;
  std::vector<pid_t> children;
  for (int rank = 1; rank < k_world; ++rank) {
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      // Child process: rank `rank` of the TCP mesh. Exit 0 iff its copy of
      // the result matches the single-process reference bit for bit.
      int status = 1;
      try {
        tcp_backend net({rank, k_world, port, 15000});
        const auto mine = solve_rank(g, seeds, config, net);
        if (mine.tree_edges == reference.tree_edges &&
            mine.total_distance == reference.total_distance) {
          status = 0;
        }
      } catch (...) {
      }
      ::_exit(status);
    }
    children.push_back(child);
  }

  tcp_backend net({0, k_world, port, 15000});
  net_solve_report report;
  const auto distributed = solve_rank(g, seeds, config, net, &report);
  expect_identical(distributed, reference);
  EXPECT_GT(report.stats.bytes_sent, 0u);
  EXPECT_GT(report.ghost_labels_sent, 0u);

  for (const pid_t child : children) {
    int wstatus = -1;
    ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
    EXPECT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0)
        << "child rank failed or mismatched";
  }
}

}  // namespace
