// The distributed transport subsystem (src/runtime/net/): wire-format
// round-trips and strict rejection, loopback mesh semantics, the termination
// vote, and the headline guarantee — a distributed solve over any world size
// and either backend is bit-identical to the single-process solver.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <thread>
#include <tuple>
#include <vector>

#include "core/steiner_solver.hpp"
#include "core/validation.hpp"
#include "graph/generators.hpp"
#include "obs/trace.hpp"
#include "runtime/net/cluster_telemetry.hpp"
#include "runtime/net/dist_solver.hpp"
#include "runtime/net/frame.hpp"
#include "runtime/net/loopback_backend.hpp"
#include "runtime/net/tcp_backend.hpp"
#include "runtime/net/termination.hpp"
#include "util/cancellation.hpp"
#include "util/random.hpp"

namespace {

using namespace dsteiner;
using namespace dsteiner::runtime::net;
using graph::vertex_id;
using graph::weight_t;

graph::csr_graph make_connected_graph(int n, weight_t w_hi,
                                      std::uint64_t seed) {
  graph::edge_list list =
      graph::generate_erdos_renyi(n, static_cast<std::uint64_t>(n) * 3, seed);
  graph::assign_uniform_weights(list, 1, w_hi, seed ^ 0x99);
  graph::connect_components(list, w_hi + 1, seed);
  return graph::csr_graph(list);
}

std::vector<vertex_id> pick_seeds(const graph::csr_graph& g, std::size_t count,
                                  std::uint64_t seed) {
  util::rng gen(seed);
  const auto picks =
      util::sample_without_replacement(g.num_vertices(), count, gen);
  return {picks.begin(), picks.end()};
}

// ---- frame round-trips ------------------------------------------------------

TEST(NetFrame, VisitorBatchRoundTrip) {
  const std::vector<net_visitor> in{
      {1, 2, 3, 4},
      {graph::k_no_vertex, graph::k_no_vertex, 0, graph::k_inf_distance},
      {42, 0, 7, 123456789}};
  const frame f = encode_visitor_batch(in);
  EXPECT_EQ(f.type, frame_type::visitor_batch);
  EXPECT_EQ(f.payload.size(), in.size() * 32);
  EXPECT_EQ(decode_visitor_batch(f), in);
}

TEST(NetFrame, GhostAndWalkAndEdgeRoundTrip) {
  const std::vector<ghost_label> ghosts{{5, 2, 17}, {9, 9, 0}};
  EXPECT_EQ(decode_ghost_batch(encode_ghost_batch(ghosts)), ghosts);

  const std::vector<vertex_id> walk{0, 7, graph::k_no_vertex};
  EXPECT_EQ(decode_walk_batch(encode_walk_batch(walk)), walk);

  const std::vector<graph::weighted_edge> edges{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(decode_edge_batch(encode_edge_batch(edges)), edges);
}

TEST(NetFrame, EnEntryRoundTrip) {
  const std::vector<wire_en_entry> in{{1, 2, 30, 4, 5, 6},
                                      {7, 8, 90, 10, 11, 12}};
  const frame f = encode_en_batch(in);
  EXPECT_EQ(f.payload.size(), in.size() * 48);
  EXPECT_EQ(decode_en_batch(f), in);
}

TEST(NetFrame, VoteRoundTrip) {
  bucket_vote vote;
  vote.outstanding = 123;
  vote.min_bucket = 9;
  vote.superstep = 17;
  vote.cancel = 1;
  EXPECT_EQ(decode_vote(encode_vote(vote, false)), vote);
  const frame confirm = encode_vote(vote, true);
  EXPECT_EQ(confirm.type, frame_type::vote_confirm);
  EXPECT_EQ(decode_vote(confirm), vote);
}

TEST(NetFrame, MarkerAndHelloRoundTrip) {
  EXPECT_EQ(decode_marker(make_marker(99)), 99u);
  int rank = -1;
  int world = -1;
  decode_hello(encode_hello(3, 8), rank, world);
  EXPECT_EQ(rank, 3);
  EXPECT_EQ(world, 8);
}

TEST(NetFrame, WholeFrameEncodeDecode) {
  const std::vector<net_visitor> in{{1, 2, 3, 4}};
  const frame f = encode_visitor_batch(in);
  const std::vector<std::uint8_t> bytes = encode_frame(f);
  EXPECT_EQ(bytes.size(), k_header_bytes + f.payload.size());
  const frame back = decode_frame(bytes);
  EXPECT_EQ(back.type, f.type);
  EXPECT_EQ(back.payload, f.payload);
}

TEST(NetFrame, TelemetryRoundTrip) {
  rank_telemetry in;
  in.rank = 2;
  in.phase = static_cast<std::uint8_t>(telemetry_phase::voronoi);
  in.superstep = 17;
  in.visitors = 12345;
  in.min_bucket = 9;
  in.ghost_labels = 77;
  in.compute_nanos = 1111;
  in.send_flush_nanos = 222;
  in.recv_wait_nanos = 3333;
  in.vote_nanos = 44;
  in.peers = {{3, 480, 2, 320}, {0, 0, 0, 0}, {7, 9000, 1, 64}};

  const frame f = encode_telemetry(in);
  EXPECT_EQ(f.type, frame_type::telemetry);
  EXPECT_EQ(f.payload.size(), 69u + in.peers.size() * 24);
  EXPECT_EQ(decode_telemetry(f), in);
  // Whole-frame trip (what actually crosses the wire to rank 0).
  EXPECT_EQ(decode_telemetry(decode_frame(encode_frame(f))), in);

  EXPECT_EQ(in.total_nanos(), 1111u + 222u + 3333u + 44u);
  EXPECT_EQ(in.comm_nanos(), 222u + 3333u + 44u);
}

TEST(NetFrame, TelemetryRejectsTruncationAndBadPhase) {
  rank_telemetry sample;
  sample.phase = static_cast<std::uint8_t>(telemetry_phase::tree_walk);
  sample.peers.resize(2);

  frame truncated = encode_telemetry(sample);
  truncated.payload.pop_back();  // partial peer record
  EXPECT_THROW((void)decode_telemetry(truncated), wire_error);

  frame short_peers = encode_telemetry(sample);
  short_peers.payload.resize(short_peers.payload.size() - 24);  // count lies
  EXPECT_THROW((void)decode_telemetry(short_peers), wire_error);

  frame bad_phase = encode_telemetry(sample);
  bad_phase.payload[4] = 0;  // phase byte below the enum range
  EXPECT_THROW((void)decode_telemetry(bad_phase), wire_error);
  bad_phase.payload[4] = 99;  // and above it
  EXPECT_THROW((void)decode_telemetry(bad_phase), wire_error);

  EXPECT_THROW((void)decode_telemetry(make_marker(0)), wire_error);
}

// ---- strict rejection -------------------------------------------------------

TEST(NetFrame, RejectsTruncatedHeader) {
  const std::vector<std::uint8_t> bytes(k_header_bytes - 1, 0);
  EXPECT_THROW((void)decode_header(bytes), wire_error);
}

TEST(NetFrame, RejectsBadMagic) {
  std::vector<std::uint8_t> bytes = encode_frame(make_marker(0));
  bytes[0] ^= 0xFF;
  EXPECT_THROW((void)decode_frame(bytes), wire_error);
}

TEST(NetFrame, RejectsOversizedLength) {
  std::vector<std::uint8_t> bytes = encode_frame(make_marker(0));
  // Patch the length field beyond k_max_payload_bytes.
  const std::uint32_t huge = k_max_payload_bytes + 1;
  for (int i = 0; i < 4; ++i) {
    bytes[4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(huge >> (8 * i));
  }
  EXPECT_THROW((void)decode_header(bytes), wire_error);
}

TEST(NetFrame, RejectsUnknownType) {
  std::vector<std::uint8_t> bytes = encode_frame(make_marker(0));
  bytes[2] = 200;
  EXPECT_THROW((void)decode_header(bytes), wire_error);
}

TEST(NetFrame, RejectsTruncatedAndTrailingPayload) {
  const std::vector<std::uint8_t> bytes =
      encode_frame(encode_visitor_batch(std::vector<net_visitor>{{1, 2, 3, 4}}));
  std::vector<std::uint8_t> truncated(bytes.begin(), bytes.end() - 1);
  EXPECT_THROW((void)decode_frame(truncated), wire_error);
  std::vector<std::uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_THROW((void)decode_frame(trailing), wire_error);
}

TEST(NetFrame, RejectsPartialRecords) {
  frame f = encode_visitor_batch(std::vector<net_visitor>{{1, 2, 3, 4}});
  f.payload.pop_back();  // 31 bytes: not a whole 32-byte record
  EXPECT_THROW((void)decode_visitor_batch(f), wire_error);
}

TEST(NetFrame, RejectsWrongType) {
  const frame f = make_marker(0);
  EXPECT_THROW((void)decode_visitor_batch(f), wire_error);
  EXPECT_THROW((void)decode_vote(f), wire_error);
}

// ---- loopback mesh ----------------------------------------------------------

TEST(NetLoopback, DeliversPerPeerFifoWithStats) {
  loopback_mesh mesh(3);
  comm_backend& a = mesh.endpoint(0);
  comm_backend& b = mesh.endpoint(1);

  a.send(1, make_marker(1));
  a.send(1, make_marker(2));
  int from = -1;
  frame f;
  ASSERT_TRUE(b.recv(from, f));
  EXPECT_EQ(from, 0);
  EXPECT_EQ(decode_marker(f), 1u);
  ASSERT_TRUE(b.recv(from, f));
  EXPECT_EQ(decode_marker(f), 2u);

  EXPECT_EQ(a.stats().frames_sent, 2u);
  EXPECT_EQ(a.stats().bytes_sent, 2 * (k_header_bytes + 4));
  EXPECT_EQ(b.stats().frames_received, 2u);

  mesh.close_all();
  EXPECT_FALSE(b.recv(from, f));
  EXPECT_THROW(a.send(1, make_marker(3)), wire_error);
}

TEST(NetLoopback, DrainsPendingFramesAfterClose) {
  loopback_mesh mesh(2);
  mesh.endpoint(0).send(1, make_marker(7));
  mesh.close_all();
  int from = -1;
  frame f;
  ASSERT_TRUE(mesh.endpoint(1).recv(from, f));
  EXPECT_EQ(decode_marker(f), 7u);
  EXPECT_FALSE(mesh.endpoint(1).recv(from, f));
}

TEST(NetTermination, TwoPhaseVoteStopsOnlyWhenAllIdle) {
  loopback_mesh mesh(2);
  vote_decision d0;
  vote_decision d1;
  std::thread peer([&] {
    peer_channels chans(mesh.endpoint(1));
    termination_vote vote(chans);
    d1 = vote.round(5, false, 2, 0);  // this rank still has work
  });
  peer_channels chans(mesh.endpoint(0));
  termination_vote vote(chans);
  d0 = vote.round(0, false, UINT64_MAX, 0);
  peer.join();
  EXPECT_FALSE(d0.stop);
  EXPECT_FALSE(d1.stop);
  EXPECT_EQ(d0.min_bucket, 2u);  // min-folded across ranks

  std::thread peer2([&] {
    peer_channels c(mesh.endpoint(1));
    termination_vote v(c);
    d1 = v.round(0, false, UINT64_MAX, 1);
  });
  peer_channels c0(mesh.endpoint(0));
  termination_vote v0(c0);
  d0 = v0.round(0, false, UINT64_MAX, 1);
  peer2.join();
  EXPECT_TRUE(d0.stop);   // proposed idle + confirmed idle
  EXPECT_TRUE(d1.stop);
  EXPECT_EQ(v0.rounds(), 2u);  // propose + confirm
}

// ---- distributed bit-identity ----------------------------------------------

void expect_identical(const core::steiner_result& a,
                      const core::steiner_result& b) {
  EXPECT_EQ(a.tree_edges, b.tree_edges);
  EXPECT_EQ(a.total_distance, b.total_distance);
  EXPECT_EQ(a.num_seeds, b.num_seeds);
  EXPECT_EQ(a.spans_all_seeds, b.spans_all_seeds);
}

TEST(NetDistSolve, LoopbackMatchesSingleProcessAcrossWorldSizes) {
  for (const std::uint64_t graph_seed : {11ull, 23ull}) {
    const graph::csr_graph g = make_connected_graph(300, 40, graph_seed);
    const auto seeds = pick_seeds(g, 7, graph_seed ^ 0xF00);
    core::solver_config config;
    config.validate = true;
    const auto reference = core::solve_steiner_tree(g, seeds, config);
    for (const int world : {1, 2, 3, 5}) {
      std::vector<net_solve_report> reports;
      const auto distributed =
          solve_loopback(g, seeds, config, world, &reports);
      expect_identical(distributed, reference);
      ASSERT_EQ(reports.size(), static_cast<std::size_t>(world));
      if (world > 1) {
        std::uint64_t measured = 0;
        for (const auto& r : reports) measured += r.stats.bytes_sent;
        EXPECT_GT(measured, 0u);
        EXPECT_EQ(reports[0].supersteps, reports[1].supersteps);
      }
    }
  }
}

TEST(NetDistSolve, BucketedGrowthMatchesStrict) {
  const graph::csr_graph g = make_connected_graph(250, 30, 77);
  const auto seeds = pick_seeds(g, 5, 0xABC);
  core::solver_config strict;
  const auto reference = core::solve_steiner_tree(g, seeds, strict);

  core::solver_config bucketed = strict;
  bucketed.growth = runtime::growth_mode::bucketed;
  const auto distributed = solve_loopback(g, seeds, bucketed, 3);
  expect_identical(distributed, reference);
}

TEST(NetDistSolve, RmatGraphMatches) {
  graph::rmat_params params;
  params.scale = 8;
  params.edge_factor = 8;
  params.seed = 5;
  graph::edge_list list = graph::generate_rmat(params);
  graph::assign_uniform_weights(list, 1, 20, 0x5EED);
  graph::connect_components(list, 21, 5);
  const graph::csr_graph g(list);
  const auto seeds = pick_seeds(g, 6, 42);

  core::solver_config config;
  config.validate = true;
  const auto reference = core::solve_steiner_tree(g, seeds, config);
  expect_identical(solve_loopback(g, seeds, config, 4), reference);
}

TEST(NetDistSolve, SingleSeedAndDuplicateSeeds) {
  const graph::csr_graph g = make_connected_graph(60, 10, 3);
  const auto one = solve_loopback(g, std::vector<vertex_id>{5}, {}, 2);
  EXPECT_TRUE(one.tree_edges.empty());
  EXPECT_EQ(one.num_seeds, 1u);

  const auto dup =
      solve_loopback(g, std::vector<vertex_id>{5, 9, 5, 9, 12}, {}, 2);
  const auto reference =
      core::solve_steiner_tree(g, std::vector<vertex_id>{5, 9, 12});
  expect_identical(dup, reference);
}

TEST(NetDistSolve, CancelledBudgetUnwindsAllRanks) {
  const graph::csr_graph g = make_connected_graph(200, 20, 9);
  const auto seeds = pick_seeds(g, 5, 1);
  util::cancel_source source;
  source.request_cancel();
  util::run_budget budget;
  budget.cancel = source.token();
  core::solver_config config;
  config.budget = &budget;
  EXPECT_THROW((void)solve_loopback(g, seeds, config, 3),
               util::operation_cancelled);
}

TEST(NetDistSolve, ReportsModelledAndMeasuredTraffic) {
  const graph::csr_graph g = make_connected_graph(300, 25, 15);
  const auto seeds = pick_seeds(g, 6, 2);
  std::vector<net_solve_report> reports;
  (void)solve_loopback(g, seeds, {}, 4, &reports);
  for (const auto& r : reports) {
    EXPECT_GT(r.stats.bytes_sent, 0u);
    EXPECT_GT(r.bytes_modelled, 0u);
    // Measured wire bytes include headers/markers/votes, so they dominate
    // the payload-only model.
    EXPECT_GE(r.stats.bytes_sent, r.bytes_modelled);
    EXPECT_FALSE(r.samples.empty());
    std::uint64_t modelled = 0;
    for (const auto& s : r.samples) modelled += s.bytes_modelled;
    EXPECT_EQ(modelled, r.bytes_modelled);
    EXPECT_GT(r.vote_rounds, 0u);
  }
}

// ---- cluster telemetry plane ------------------------------------------------

using sample_key = std::tuple<std::uint8_t, std::uint32_t, std::int32_t,
                              std::uint64_t>;

std::vector<sample_key> cluster_keys(const cluster_trace& trace) {
  std::vector<sample_key> keys;
  keys.reserve(trace.samples.size());
  for (const rank_telemetry& s : trace.samples) {
    keys.emplace_back(s.phase, s.superstep, s.rank, s.visitors);
  }
  return keys;
}

TEST(NetClusterTelemetry, MergeIsDeterministicAcrossRunsAndCoversAllRanks) {
  const graph::csr_graph g = make_connected_graph(300, 35, 19);
  const auto seeds = pick_seeds(g, 6, 0xBEEF);
  core::solver_config config;  // net_telemetry defaults on

  for (const int world : {2, 3}) {
    std::vector<std::vector<sample_key>> runs;
    for (int run = 0; run < 2; ++run) {
      std::vector<net_solve_report> reports;
      (void)solve_loopback(g, seeds, config, world, &reports);
      ASSERT_EQ(reports.size(), static_cast<std::size_t>(world));

      const cluster_trace& cluster = reports[0].cluster;
      EXPECT_EQ(cluster.world, world);
      // Rank 0 absorbed exactly what every rank emitted, no frame lost to
      // the data-plane interleaving.
      std::size_t emitted = 0;
      for (const net_solve_report& r : reports) {
        emitted += r.telemetry.size();
        EXPECT_TRUE(r.rank == 0 || r.cluster.samples.empty())
            << "cluster merge leaked off rank 0";
      }
      EXPECT_EQ(cluster.samples.size(), emitted);

      // Canonical (phase, superstep, rank) order, every rank present.
      std::vector<bool> seen(static_cast<std::size_t>(world), false);
      for (std::size_t i = 0; i < cluster.samples.size(); ++i) {
        const rank_telemetry& s = cluster.samples[i];
        ASSERT_GE(s.rank, 0);
        ASSERT_LT(s.rank, world);
        seen[static_cast<std::size_t>(s.rank)] = true;
        if (i > 0) {
          const rank_telemetry& p = cluster.samples[i - 1];
          EXPECT_LE(std::make_tuple(p.phase, p.superstep, p.rank),
                    std::make_tuple(s.phase, s.superstep, s.rank));
        }
      }
      for (const bool rank_seen : seen) EXPECT_TRUE(rank_seen);
      runs.push_back(cluster_keys(cluster));
    }
    // Same graph/seeds/world => identical merged sample keys run over run
    // (timings move, the schedule does not).
    EXPECT_EQ(runs[0], runs[1]) << "world " << world;
  }

  // world 1: the plane degenerates to rank 0 observing itself.
  std::vector<net_solve_report> solo;
  (void)solve_loopback(g, seeds, config, 1, &solo);
  ASSERT_EQ(solo.size(), 1u);
  EXPECT_EQ(solo[0].cluster.samples.size(), solo[0].telemetry.size());
  EXPECT_FALSE(solo[0].cluster.samples.empty());
}

TEST(NetClusterTelemetry, StragglerReportAttributesEverySuperstepGroup) {
  const graph::csr_graph g = make_connected_graph(250, 30, 31);
  const auto seeds = pick_seeds(g, 5, 0xCAFE);
  std::vector<net_solve_report> reports;
  (void)solve_loopback(g, seeds, {}, 3, &reports);
  const cluster_trace& cluster = reports[0].cluster;
  ASSERT_FALSE(cluster.samples.empty());

  const auto rows = straggler_rows(cluster);
  std::size_t grouped = 0;
  for (const straggler_row& row : rows) {
    EXPECT_GE(row.critical_rank, 0);
    EXPECT_LT(row.critical_rank, 3);
    EXPECT_GE(row.compute_skew, 1.0);
    EXPECT_GE(row.comm_wait_fraction, 0.0);
    EXPECT_LE(row.comm_wait_fraction, 1.0);
    for (const rank_telemetry& s : cluster.samples) {
      if (s.phase == row.phase && s.superstep == row.superstep) ++grouped;
    }
  }
  EXPECT_EQ(grouped, cluster.samples.size());  // every sample attributed

  const cluster_summary summary = summarize_cluster(cluster);
  EXPECT_EQ(summary.world, 3);
  EXPECT_EQ(summary.supersteps, rows.size());
  EXPECT_GE(summary.critical_rank, 0);
  EXPECT_GE(summary.max_compute_skew, 1.0);
  EXPECT_LE(summary.critical_supersteps, summary.supersteps);

  const std::string json = render_cluster_json(cluster);
  EXPECT_NE(json.find("\"straggler_report\""), std::string::npos);
  EXPECT_NE(json.find("\"critical_rank\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(NetClusterTelemetry, TracedAndUntracedSolvesBitIdentical) {
  const graph::csr_graph g = make_connected_graph(300, 25, 47);
  const auto seeds = pick_seeds(g, 6, 0x7777);

  core::solver_config off;
  off.net_telemetry = false;
  std::vector<net_solve_report> off_reports;
  const auto baseline = solve_loopback(g, seeds, off, 3, &off_reports);
  EXPECT_TRUE(off_reports[0].cluster.samples.empty());
  EXPECT_TRUE(off_reports[0].telemetry.empty());

  obs::query_trace trace(obs::trace_config{}, 1);
  core::solver_config on;
  on.net_telemetry = true;
  on.trace = &trace;
  std::vector<net_solve_report> on_reports;
  const auto traced = solve_loopback(g, seeds, on, 3, &on_reports);

  // The whole observability plane is pure observation.
  expect_identical(traced, baseline);
  EXPECT_FALSE(on_reports[0].cluster.samples.empty());
  EXPECT_FALSE(trace.spans().empty());          // phase spans from solve_rank
  EXPECT_GT(trace.probe().total_samples(), 0u); // per-superstep engine rows
}

// ---- TCP backend ------------------------------------------------------------

std::uint16_t test_base_port() {
  // Derived from the pid so parallel ctest shards don't collide.
  return static_cast<std::uint16_t>(20000 + (::getpid() % 20000));
}

TEST(NetTcp, MeshExchangesFramesBothWays) {
  const std::uint16_t port = test_base_port();
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Rank 1 process: echo rank 0's marker value back, doubled.
    int status = 1;
    try {
      tcp_backend net({1, 2, port, 15000});
      int from = -1;
      frame f;
      if (net.recv(from, f) && from == 0) {
        net.send(0, make_marker(decode_marker(f) * 2));
        status = 0;
      }
    } catch (...) {
    }
    ::_exit(status);
  }
  tcp_backend net({0, 2, port, 15000});
  net.send(1, make_marker(21));
  int from = -1;
  frame f;
  ASSERT_TRUE(net.recv(from, f));
  EXPECT_EQ(from, 1);
  EXPECT_EQ(decode_marker(f), 42u);
  EXPECT_GT(net.stats().bytes_sent, 0u);
  EXPECT_GT(net.stats().bytes_received, 0u);
  int wstatus = -1;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  EXPECT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0);
}

TEST(NetTcp, DistributedSolveBitIdenticalToSingleProcess) {
  const std::uint16_t port =
      static_cast<std::uint16_t>(test_base_port() + 100);
  const graph::csr_graph g = make_connected_graph(250, 30, 51);
  const auto seeds = pick_seeds(g, 6, 7);
  core::solver_config config;
  const auto reference = core::solve_steiner_tree(g, seeds, config);

  constexpr int k_world = 3;
  std::vector<pid_t> children;
  for (int rank = 1; rank < k_world; ++rank) {
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      // Child process: rank `rank` of the TCP mesh. Exit 0 iff its copy of
      // the result matches the single-process reference bit for bit.
      int status = 1;
      try {
        tcp_backend net({rank, k_world, port, 15000});
        const auto mine = solve_rank(g, seeds, config, net);
        if (mine.tree_edges == reference.tree_edges &&
            mine.total_distance == reference.total_distance) {
          status = 0;
        }
      } catch (...) {
      }
      ::_exit(status);
    }
    children.push_back(child);
  }

  // Rank 0 (this process) additionally carries a query trace; the children
  // run untraced. Mixing is safe — tracing and telemetry are pure
  // observation, which the bit-identity expectations below re-prove over a
  // real kernel socket mesh.
  obs::query_trace trace(obs::trace_config{}, 1);
  core::solver_config traced_config = config;
  traced_config.trace = &trace;

  tcp_backend net({0, k_world, port, 15000});
  net_solve_report report;
  const auto distributed = solve_rank(g, seeds, traced_config, net, &report);
  expect_identical(distributed, reference);
  EXPECT_GT(report.stats.bytes_sent, 0u);
  EXPECT_GT(report.ghost_labels_sent, 0u);

  // The telemetry plane crossed the TCP mesh: rank 0's merged cluster trace
  // covers every forked rank, and the trace recorded the distributed phases.
  ASSERT_FALSE(report.cluster.samples.empty());
  EXPECT_EQ(report.cluster.world, k_world);
  std::vector<bool> covered(k_world, false);
  for (const rank_telemetry& s : report.cluster.samples) {
    ASSERT_GE(s.rank, 0);
    ASSERT_LT(s.rank, k_world);
    covered[static_cast<std::size_t>(s.rank)] = true;
  }
  for (const bool rank_covered : covered) EXPECT_TRUE(rank_covered);
  EXPECT_FALSE(trace.spans().empty());
  EXPECT_GT(trace.probe().total_samples(), 0u);

  for (const pid_t child : children) {
    int wstatus = -1;
    ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
    EXPECT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0)
        << "child rank failed or mismatched";
  }
}

}  // namespace
