// Tests for seed-selection strategies, tree validation and the dataset
// registry.
#include <gtest/gtest.h>

#include <set>

#include "core/validation.hpp"
#include "graph/bfs.hpp"
#include "graph/connected_components.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"
#include "io/dataset.hpp"
#include "seed/seed_select.hpp"

namespace {

using namespace dsteiner;
using graph::vertex_id;
using graph::weight_t;
using seed::seed_strategy;

graph::csr_graph make_test_graph() {
  graph::edge_list list =
      graph::generate_erdos_renyi(400, 1200, 5);
  graph::assign_uniform_weights(list, 1, 50, 6);
  return graph::csr_graph(list);  // intentionally possibly disconnected
}

class SeedStrategies : public ::testing::TestWithParam<seed_strategy> {};

TEST_P(SeedStrategies, ReturnsDistinctSeedsInLargestComponent) {
  const auto g = make_test_graph();
  const auto component = graph::largest_component_vertices(g);
  const std::set<vertex_id> in_component(component.begin(), component.end());

  const auto seeds = seed::select_seeds(g, 25, GetParam(), 42);
  ASSERT_EQ(seeds.size(), 25u);
  std::set<vertex_id> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 25u);
  for (const auto s : seeds) EXPECT_TRUE(in_component.contains(s));
}

TEST_P(SeedStrategies, DeterministicPerRngSeed) {
  const auto g = make_test_graph();
  const auto a = seed::select_seeds(g, 10, GetParam(), 7);
  const auto b = seed::select_seeds(g, 10, GetParam(), 7);
  EXPECT_EQ(a, b);
}

TEST_P(SeedStrategies, ThrowsWhenComponentTooSmall) {
  const graph::csr_graph g(graph::generate_path(5));
  EXPECT_THROW((void)seed::select_seeds(g, 10, GetParam(), 1),
               std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, SeedStrategies,
                         ::testing::Values(seed_strategy::bfs_level,
                                           seed_strategy::uniform_random,
                                           seed_strategy::eccentric,
                                           seed_strategy::proximate),
                         [](const auto& info) {
                           switch (info.param) {
                             case seed_strategy::bfs_level: return "BfsLevel";
                             case seed_strategy::uniform_random: return "UniformRandom";
                             case seed_strategy::eccentric: return "Eccentric";
                             case seed_strategy::proximate: return "Proximate";
                           }
                           return "Unknown";
                         });

TEST(SeedStrategies, EccentricSpreadsFartherThanProximate) {
  // On a long path the eccentric strategy must pick well-spread vertices and
  // proximate tightly-clustered ones; compare pairwise hop spans.
  const graph::csr_graph g(graph::generate_path(400));
  const auto eccentric =
      seed::select_seeds(g, 6, seed_strategy::eccentric, 3);
  const auto proximate =
      seed::select_seeds(g, 6, seed_strategy::proximate, 3);
  const auto span = [](const std::vector<vertex_id>& seeds) {
    return *std::max_element(seeds.begin(), seeds.end()) -
           *std::min_element(seeds.begin(), seeds.end());
  };
  EXPECT_GT(span(eccentric), span(proximate));
  EXPECT_GT(span(eccentric), 300u);  // near the full path
}

TEST(SeedStrategies, StringNames) {
  EXPECT_EQ(seed::to_string(seed_strategy::bfs_level), "BFS-level");
  EXPECT_EQ(seed::to_string(seed_strategy::proximate), "Proximate");
}

// ---- validate_steiner_tree rejection cases.

TEST(Validation, AcceptsSingleSeedEmptyTree) {
  const graph::csr_graph g(graph::generate_path(4));
  EXPECT_TRUE(core::validate_steiner_tree(g, std::vector<vertex_id>{2}, {}));
}

TEST(Validation, RejectsEmptyTreeForMultipleSeeds) {
  const graph::csr_graph g(graph::generate_path(4));
  const auto r = core::validate_steiner_tree(g, std::vector<vertex_id>{0, 3}, {});
  EXPECT_FALSE(r.valid);
}

TEST(Validation, RejectsNonGraphEdge) {
  const graph::csr_graph g(graph::generate_path(4));
  const std::vector<graph::weighted_edge> edges{{0, 2, 1}};
  EXPECT_FALSE(core::validate_steiner_tree(g, std::vector<vertex_id>{0, 2}, edges));
}

TEST(Validation, RejectsWrongWeight) {
  graph::edge_list list;
  list.add_undirected_edge(0, 1, 7);
  const graph::csr_graph g(list);
  const std::vector<graph::weighted_edge> edges{{0, 1, 8}};
  const auto r =
      core::validate_steiner_tree(g, std::vector<vertex_id>{0, 1}, edges);
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.error.find("weight"), std::string::npos);
}

TEST(Validation, RejectsCycle) {
  const graph::csr_graph g(graph::generate_cycle(3));
  const std::vector<graph::weighted_edge> edges{{0, 1, 1}, {1, 2, 1}, {0, 2, 1}};
  const auto r =
      core::validate_steiner_tree(g, std::vector<vertex_id>{0, 1, 2}, edges);
  EXPECT_FALSE(r.valid);
}

TEST(Validation, RejectsDisconnectedForest) {
  const graph::csr_graph g(graph::generate_path(6));
  const std::vector<graph::weighted_edge> edges{{0, 1, 1}, {3, 4, 1}};
  EXPECT_FALSE(
      core::validate_steiner_tree(g, std::vector<vertex_id>{0, 1, 3, 4}, edges));
}

TEST(Validation, RejectsMissingSeed) {
  const graph::csr_graph g(graph::generate_path(6));
  const std::vector<graph::weighted_edge> edges{{0, 1, 1}};
  const auto r =
      core::validate_steiner_tree(g, std::vector<vertex_id>{0, 1, 5}, edges);
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.error.find("seed"), std::string::npos);
}

TEST(Validation, RejectsSteinerLeaf) {
  const graph::csr_graph g(graph::generate_path(4));
  // 0-1-2-3 with seeds {0, 2}: edge (2,3) dangles a non-seed leaf 3.
  const std::vector<graph::weighted_edge> edges{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}};
  const auto r =
      core::validate_steiner_tree(g, std::vector<vertex_id>{0, 2}, edges);
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.error.find("leaf"), std::string::npos);
}

TEST(Validation, RejectsDuplicateEdge) {
  const graph::csr_graph g(graph::generate_path(3));
  const std::vector<graph::weighted_edge> edges{{0, 1, 1}, {1, 2, 1}, {0, 1, 1}};
  EXPECT_FALSE(
      core::validate_steiner_tree(g, std::vector<vertex_id>{0, 2}, edges));
}

TEST(Validation, RejectsSelfLoop) {
  const graph::csr_graph g(graph::generate_path(3));
  const std::vector<graph::weighted_edge> edges{{1, 1, 1}};
  EXPECT_FALSE(
      core::validate_steiner_tree(g, std::vector<vertex_id>{0, 1}, edges));
}

TEST(Validation, TreeDistanceSumsWeights) {
  const std::vector<graph::weighted_edge> edges{{0, 1, 5}, {1, 2, 7}};
  EXPECT_EQ(core::tree_distance(edges), 12u);
  EXPECT_EQ(core::tree_distance({}), 0u);
}

// ---- Dataset registry.

TEST(Dataset, RegistryHasAllEightMirrors) {
  const auto& specs = io::dataset_specs();
  ASSERT_EQ(specs.size(), 8u);
  EXPECT_EQ(specs.front().key, "WDC");
  EXPECT_EQ(specs.back().key, "CTS");
  // Size ordering preserved (Table III, largest to smallest).
  for (std::size_t i = 1; i < specs.size(); ++i) {
    EXPECT_GE(specs[i - 1].scale, specs[i].scale);
  }
}

TEST(Dataset, SpecLookup) {
  EXPECT_EQ(io::spec_for("LVJ").paper_name, "LiveJournal");
  EXPECT_THROW((void)io::spec_for("NOPE"), std::out_of_range);
}

TEST(Dataset, LoadsSmallestMirrorWithPaperWeightRange) {
  const auto ds = io::load_dataset("CTS");
  EXPECT_EQ(ds.graph.num_vertices(), 2048u);
  const auto stats = graph::compute_statistics(ds.graph);
  EXPECT_GE(stats.min_weight, ds.spec.weight_lo);
  EXPECT_LE(stats.max_weight, ds.spec.weight_hi);
  EXPECT_GT(stats.num_arcs, 0u);
}

TEST(Dataset, ScaleAdjustShrinks) {
  const auto full = io::load_dataset("CTS");
  const auto half = io::load_dataset("CTS", -1);
  EXPECT_EQ(half.graph.num_vertices() * 2, full.graph.num_vertices());
  EXPECT_THROW((void)io::load_dataset("CTS", -20), std::invalid_argument);
}

TEST(Dataset, DeterministicTopology) {
  const auto a = io::build_topology(io::spec_for("CTS"));
  const auto b = io::build_topology(io::spec_for("CTS"));
  EXPECT_EQ(a.edges(), b.edges());
}

}  // namespace
