// Tests for the request/handle service API: the priority admission queue,
// cost-aware deadline admission, queued/solving deadline expiry, cooperative
// cancellation (mid-cold-solve, both engines), query_handle status
// transitions, the stale-refresh dedup token, and the QoS metrics export.
//
// Timing strategy: every "mid-X" assertion rides on a solve that takes tens
// of milliseconds (n = 50k ER graph ~ 90ms) while the triggering event lands
// within ~1ms — generous margins that only widen under sanitizers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/steiner_solver.hpp"
#include "graph/epoch_graph.hpp"
#include "graph/generators.hpp"
#include "service/executor.hpp"
#include "service/metrics_text.hpp"
#include "service/steiner_service.hpp"
#include "util/cancellation.hpp"

namespace {

using namespace dsteiner;
using namespace dsteiner::service;
using namespace std::chrono_literals;
using graph::vertex_id;
using graph::weight_t;

graph::csr_graph make_connected_graph(int n, weight_t w_hi, std::uint64_t seed) {
  graph::edge_list list =
      graph::generate_erdos_renyi(n, static_cast<std::uint64_t>(n) * 3, seed);
  graph::assign_uniform_weights(list, 1, w_hi, seed ^ 0x99);
  graph::connect_components(list, w_hi + 1, seed);
  return graph::csr_graph(list);
}

/// A graph whose cold solve takes ~90ms — long enough that a cancel or
/// deadline landing within a millisecond or two is reliably "mid-solve".
graph::csr_graph make_slow_graph(std::uint64_t seed) {
  return make_connected_graph(50000, 30, seed);
}

std::vector<vertex_id> spread_seeds(const graph::csr_graph& g, std::size_t k,
                                    std::uint64_t salt) {
  std::vector<vertex_id> seeds;
  for (std::size_t i = 0; i < k; ++i) {
    seeds.push_back(
        static_cast<vertex_id>((salt * 7919 + i * 104729) % g.num_vertices()));
  }
  return seeds;
}

void spin_until(const std::function<bool()>& done,
                std::chrono::seconds limit = 20s) {
  const auto give_up = std::chrono::steady_clock::now() + limit;
  while (!done()) {
    ASSERT_LT(std::chrono::steady_clock::now(), give_up) << "spin timed out";
    std::this_thread::sleep_for(100us);
  }
}

// ---- executor: priority queue semantics -------------------------------------

TEST(PriorityExecutor, DrainsLevelsInOrderFifoWithin) {
  executor exec({/*threads=*/1, /*capacity=*/16});
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  exec.post([gate](double) { gate.wait(); });
  // Wait for the gate to occupy the worker, then queue behind it.
  while (exec.queue_depth() > 0) std::this_thread::yield();

  std::mutex order_mutex;
  std::vector<int> order;
  const auto record = [&](int tag) {
    return executor::task([&, tag](double) {
      const std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(tag);
    });
  };
  const auto enqueue = [&](int tag, std::size_t priority) {
    executor::task_options opts;
    opts.priority = priority;
    ASSERT_TRUE(exec.try_post(record(tag), std::move(opts)));
  };
  enqueue(20, 2);
  enqueue(10, 1);
  enqueue(21, 2);
  enqueue(0, 0);
  enqueue(11, 1);
  enqueue(1, 0);
  EXPECT_EQ(exec.backlog_ahead(0), 2u);
  EXPECT_EQ(exec.backlog_ahead(1), 4u);
  EXPECT_EQ(exec.backlog_ahead(2), 6u);
  release.set_value();
  spin_until([&] {
    const std::lock_guard<std::mutex> lock(order_mutex);
    return order.size() == 6;
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 10, 11, 20, 21}));
}

TEST(PriorityExecutor, ExpiredQueuedTaskIsDroppedNotRun) {
  executor exec({1, 16});
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  exec.post([gate](double) { gate.wait(); });
  while (exec.queue_depth() > 0) std::this_thread::yield();

  std::atomic<bool> ran{false};
  std::atomic<bool> dropped{false};
  executor::task_options opts;
  opts.deadline = std::chrono::steady_clock::now() + 1ms;
  opts.on_dropped = [&dropped](drop_reason why) {
    EXPECT_EQ(why, drop_reason::expired);
    dropped = true;
  };
  ASSERT_TRUE(exec.try_post([&ran](double) { ran = true; }, std::move(opts)));
  std::this_thread::sleep_for(5ms);  // let the deadline lapse while queued
  release.set_value();
  spin_until([&] { return dropped.load(); });
  EXPECT_FALSE(ran.load());
  EXPECT_EQ(exec.stats().expired, 1u);
}

TEST(PriorityExecutor, FullQueueDisplacesLowestLevelForHigherArrival) {
  executor exec({1, /*capacity=*/1});
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  exec.post([gate](double) { gate.wait(); });
  while (exec.queue_depth() > 0) std::this_thread::yield();

  std::atomic<bool> background_dropped{false};
  std::atomic<bool> interactive_ran{false};
  executor::task_options bg;
  bg.priority = 2;
  bg.on_dropped = [&](drop_reason why) {
    EXPECT_EQ(why, drop_reason::displaced);
    background_dropped = true;
  };
  ASSERT_TRUE(exec.try_post([](double) {}, std::move(bg)));

  // Same-level arrival cannot displace: rejected.
  executor::task_options bg2;
  bg2.priority = 2;
  EXPECT_FALSE(exec.try_post([](double) {}, std::move(bg2)));

  executor::task_options it;
  it.priority = 0;
  ASSERT_TRUE(
      exec.try_post([&](double) { interactive_ran = true; }, std::move(it)));
  EXPECT_TRUE(background_dropped.load());
  release.set_value();
  spin_until([&] { return interactive_ran.load(); });
  const auto stats = exec.stats();
  EXPECT_EQ(stats.displaced, 1u);
  EXPECT_EQ(stats.rejected, 1u);
}

// ---- query_handle lifecycle -------------------------------------------------

service_config one_worker_config() {
  service_config config;
  config.exec.num_threads = 1;
  config.exec.queue_capacity = 64;
  config.solver.num_ranks = 8;
  return config;
}

TEST(RequestApi, StatusTransitionsQueuedRunningDone) {
  steiner_service svc(make_connected_graph(200, 25, 50), one_worker_config());
  query gate_query;
  gate_query.seeds = {3, 70, 120};
  request gate(gate_query);  // the query->request promotion constructor
  query_handle gate_handle = svc.submit(gate);
  ASSERT_TRUE(gate_handle.valid());
  spin_until([&] { return gate_handle.status() != request_status::queued; });

  request r;
  r.q.seeds = {5, 90, 150};
  r.priority = priority_class::batch;
  query_handle h = svc.submit(r);
  EXPECT_TRUE(h.valid());
  EXPECT_GT(h.id(), gate_handle.id());
  EXPECT_EQ(h.priority(), priority_class::batch);
  // Queued or later (the gate may already have finished): never a terminal
  // failure state on this path.
  EXPECT_FALSE(h.status() == request_status::rejected);

  const query_result via_get = h.get();
  EXPECT_EQ(h.status(), request_status::done);
  EXPECT_TRUE(h.finished());
  const auto via_poll = h.poll();
  ASSERT_TRUE(via_poll.has_value());
  EXPECT_EQ(via_poll->result.tree_edges, via_get.result.tree_edges);
  EXPECT_TRUE(h.wait_for(0s));
  (void)gate_handle.get();

  // Empty handles refuse access instead of crashing.
  query_handle empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_THROW((void)empty.status(), std::logic_error);
}

TEST(RequestApi, SolveRequestConvenienceAndFailurePropagation) {
  steiner_service svc(make_connected_graph(150, 20, 51), one_worker_config());
  request r;
  r.q.seeds = {3, 70, 120};
  const query_result out = svc.solve(r);
  EXPECT_EQ(out.kind, solve_kind::cold);

  request invalid;
  invalid.q.seeds = {1, 1000000};
  query_handle h = svc.submit(invalid);
  EXPECT_THROW((void)h.get(), std::out_of_range);
  EXPECT_EQ(h.status(), request_status::failed);
}

TEST(RequestApi, RelaxedDeterminismRunsBucketedAndMatchesStrictTree) {
  service_config cfg = one_worker_config();
  cfg.enable_cache = false;  // both requests must actually solve
  steiner_service svc(make_connected_graph(400, 40, 53), cfg);

  request strict;
  strict.q.seeds = {5, 90, 150, 260};
  strict.q.allow_warm_start = false;
  const query_result strict_out = svc.solve(strict);
  EXPECT_EQ(strict_out.kind, solve_kind::cold);
  EXPECT_EQ(strict_out.result.growth.mode, runtime::growth_mode::strict_order);

  request relaxed;
  relaxed.q.seeds = {5, 90, 150, 260};
  relaxed.q.allow_warm_start = false;  // keep it cold, not a donor repair
  relaxed.determinism = determinism_mode::relaxed;
  const query_result relaxed_out = svc.solve(relaxed);
  EXPECT_EQ(relaxed_out.kind, solve_kind::cold);
  // The relaxed tier changes the schedule, never the tree.
  EXPECT_EQ(relaxed_out.result.tree_edges, strict_out.result.tree_edges);
  EXPECT_EQ(relaxed_out.result.total_distance,
            strict_out.result.total_distance);
  EXPECT_EQ(relaxed_out.result.growth.mode, runtime::growth_mode::bucketed);
  EXPECT_GT(relaxed_out.result.growth.buckets_processed, 0u);

  const service_stats s = svc.stats();
  EXPECT_EQ(s.bucketed_solves, 1u);
  EXPECT_GT(s.growth_buckets_processed, 0u);
  EXPECT_GT(s.growth_last_delta, 0u);
  EXPECT_GT(s.growth_last_tile_threshold, 0u);

  // The exposition carries the growth counters (satellite of the same PR).
  const std::string text = render_metrics_text(svc.snapshot(), "dsteiner");
  EXPECT_NE(text.find("dsteiner_bucketed_solves_total 1"), std::string::npos);
  EXPECT_NE(text.find("dsteiner_growth_buckets_processed_total"),
            std::string::npos);
}

// ---- cancellation -----------------------------------------------------------

TEST(Cancellation, PreCancelledTokenNeverReachesAWorker) {
  steiner_service svc(make_connected_graph(150, 20, 52), one_worker_config());
  util::cancel_source source;
  (void)source.request_cancel();
  request r;
  r.q.seeds = {3, 70, 120};
  r.cancel = source.token();
  query_handle h = svc.submit(r);
  EXPECT_EQ(h.status(), request_status::cancelled);
  EXPECT_THROW((void)h.get(), util::operation_cancelled);
  const auto stats = svc.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.queries, 0u);  // no solver work happened
}

TEST(Cancellation, WhileQueuedFreesTheSlotWithoutSolving) {
  steiner_service svc(make_slow_graph(53), one_worker_config());
  request gate;
  gate.q.seeds = spread_seeds(svc.graph(), 12, 1);
  query_handle gate_handle = svc.submit(gate);
  spin_until([&] { return gate_handle.status() == request_status::running; });

  request r;
  r.q.seeds = spread_seeds(svc.graph(), 12, 2);
  query_handle h = svc.submit(r);
  EXPECT_EQ(h.status(), request_status::queued);
  EXPECT_TRUE(h.cancel());
  EXPECT_FALSE(h.cancel());  // second call reports "already requested"
  try {
    (void)h.get();
    FAIL() << "cancelled request returned a result";
  } catch (const util::operation_cancelled& stopped) {
    EXPECT_EQ(stopped.why(), util::cancel_reason::cancelled);
  }
  EXPECT_EQ(h.status(), request_status::cancelled);
  (void)gate_handle.get();
  const auto stats = svc.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.cold_solves, 1u);  // only the gate solved
}

/// Mid-cold-solve cancellation: the solver checkpoint must fire (the solve
/// stops early — no cold_solve counted, nothing cached) and the worker must
/// come back (a follow-up query completes).
void expect_cancel_stops_cold_solve(service_config config,
                                    std::uint64_t graph_seed) {
  steiner_service svc(make_slow_graph(graph_seed), config);
  request r;
  r.q.seeds = spread_seeds(svc.graph(), 12, 3);
  query_handle h = svc.submit(r);
  spin_until([&] { return h.status() == request_status::running; });
  (void)h.cancel();
  try {
    (void)h.get();
    FAIL() << "cancelled request returned a result";
  } catch (const util::operation_cancelled& stopped) {
    EXPECT_EQ(stopped.why(), util::cancel_reason::cancelled);
  }
  EXPECT_EQ(h.status(), request_status::cancelled);

  auto stats = svc.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.queries, 1u);      // it *started* executing...
  EXPECT_EQ(stats.cold_solves, 0u);  // ...but the checkpoint killed it early

  // Partial work was discarded: re-issuing the query is a fresh cold solve
  // (nothing was cached), and the worker is free to run it.
  request again;
  again.q.seeds = r.q.seeds;
  const query_result out = svc.solve(again);
  EXPECT_EQ(out.kind, solve_kind::cold);
  EXPECT_EQ(svc.stats().cold_solves, 1u);
}

TEST(Cancellation, MidColdSolveSequentialEngine) {
  expect_cancel_stops_cold_solve(one_worker_config(), 54);
}

TEST(Cancellation, MidColdSolveParallelThreadsEngine) {
  service_config config = one_worker_config();
  config.solver.mode = runtime::execution_mode::parallel_threads;
  config.solver.num_threads = 4;
  expect_cancel_stops_cold_solve(config, 55);
}

// ---- deadlines --------------------------------------------------------------

TEST(Deadline, ExpiresWhileQueued) {
  steiner_service svc(make_slow_graph(56), one_worker_config());
  request gate;
  gate.q.seeds = spread_seeds(svc.graph(), 12, 4);
  query_handle gate_handle = svc.submit(gate);
  spin_until([&] { return gate_handle.status() == request_status::running; });

  // ~90ms of gate ahead of it, 10ms of deadline: expires in the queue.
  request r;
  r.q.seeds = spread_seeds(svc.graph(), 12, 5);
  r.deadline = std::chrono::steady_clock::now() + 10ms;
  query_handle h = svc.submit(r);
  EXPECT_NE(h.status(), request_status::rejected);  // admitted (no history)
  try {
    (void)h.get();
    FAIL() << "expired request returned a result";
  } catch (const util::operation_cancelled& stopped) {
    EXPECT_EQ(stopped.why(), util::cancel_reason::deadline);
  }
  EXPECT_EQ(h.status(), request_status::expired);
  (void)gate_handle.get();
  const auto stats = svc.stats();
  EXPECT_EQ(stats.deadline_expired, 1u);
  EXPECT_EQ(stats.cold_solves, 1u);  // the expired request never solved
}

TEST(Deadline, ExpiresMidSolveAtACheckpoint) {
  steiner_service svc(make_slow_graph(57), one_worker_config());
  request r;
  r.q.seeds = spread_seeds(svc.graph(), 12, 6);
  // Fresh service: no latency history, so admission lets this through; the
  // solve (~90ms) then outlives the 20ms deadline and dies at a checkpoint.
  r.deadline = std::chrono::steady_clock::now() + 20ms;
  query_handle h = svc.submit(r);
  EXPECT_NE(h.status(), request_status::rejected);
  try {
    (void)h.get();
    FAIL() << "request outlived its deadline";
  } catch (const util::operation_cancelled& stopped) {
    EXPECT_EQ(stopped.why(), util::cancel_reason::deadline);
  }
  EXPECT_EQ(h.status(), request_status::expired);
  const auto stats = svc.stats();
  EXPECT_EQ(stats.deadline_expired, 1u);
  EXPECT_EQ(stats.cold_solves, 0u);
}

TEST(Deadline, CostModelRejectsUnmeetableAdmitsGenerous) {
  // n=20k: cold solves ~30ms, so after two warm-up solves the cold p50 is
  // well above the 2ms deadline below (and far below the 60s one).
  steiner_service svc(make_connected_graph(20000, 30, 58), one_worker_config());
  for (std::uint64_t warm = 0; warm < 2; ++warm) {
    request w;
    w.q.seeds = spread_seeds(svc.graph(), 12, 10 + warm);
    (void)svc.solve(w);
  }

  request tight;
  tight.q.seeds = spread_seeds(svc.graph(), 12, 20);
  tight.deadline = std::chrono::steady_clock::now() + 2ms;
  query_handle rejected = svc.submit(tight);
  EXPECT_EQ(rejected.status(), request_status::rejected);
  EXPECT_EQ(rejected.rejection(), reject_reason::deadline_unmeetable);
  try {
    (void)rejected.get();
    FAIL() << "rejected request returned a result";
  } catch (const request_rejected& why) {
    EXPECT_EQ(why.reason(), reject_reason::deadline_unmeetable);
  }

  request generous;
  generous.q.seeds = spread_seeds(svc.graph(), 12, 21);
  generous.deadline = std::chrono::steady_clock::now() + 60s;
  query_handle admitted = svc.submit(generous);
  EXPECT_EQ(admitted.get().kind, solve_kind::cold);
  EXPECT_EQ(admitted.status(), request_status::done);

  // A cached repeat is predicted near-free: even a tight deadline admits.
  request cached;
  cached.q.seeds = spread_seeds(svc.graph(), 12, 21);
  cached.deadline = std::chrono::steady_clock::now() + 5ms;
  query_handle hit = svc.submit(cached);
  EXPECT_EQ(hit.get().kind, solve_kind::cache_hit);

  const auto stats = svc.stats();
  EXPECT_EQ(stats.deadline_rejected, 1u);
  EXPECT_EQ(stats.shed_by_priority[priority_index(priority_class::interactive)],
            1u);
}

// ---- priority ordering under saturation --------------------------------------

TEST(Priority, InteractiveOvertakesBatchAndBackgroundInQueue) {
  steiner_service svc(make_slow_graph(59), one_worker_config());
  request gate;
  gate.q.seeds = spread_seeds(svc.graph(), 12, 30);
  query_handle gate_handle = svc.submit(gate);
  spin_until([&] { return gate_handle.status() == request_status::running; });

  // Enqueue background, then batch, then interactive — reverse priority
  // order — while the single worker is pinned by the gate.
  std::vector<query_handle> background, batch, interactive;
  for (std::uint64_t i = 0; i < 3; ++i) {
    request r;
    r.q.seeds = spread_seeds(svc.graph(), 10, 40 + i);
    r.priority = priority_class::background;
    background.push_back(svc.submit(r));
  }
  for (std::uint64_t i = 0; i < 3; ++i) {
    request r;
    r.q.seeds = spread_seeds(svc.graph(), 10, 50 + i);
    r.priority = priority_class::batch;
    batch.push_back(svc.submit(r));
  }
  for (std::uint64_t i = 0; i < 3; ++i) {
    request r;
    r.q.seeds = spread_seeds(svc.graph(), 10, 60 + i);
    r.priority = priority_class::interactive;
    interactive.push_back(svc.submit(r));
  }
  (void)gate_handle.get();

  // query_result::query_id counts execution starts: every interactive query
  // must have begun before every batch query, and batch before background.
  const auto max_id = [](std::vector<query_handle>& handles) {
    std::uint64_t max = 0;
    for (auto& h : handles) max = std::max(max, h.get().query_id);
    return max;
  };
  const auto min_id = [](std::vector<query_handle>& handles) {
    std::uint64_t min = ~std::uint64_t{0};
    for (auto& h : handles) min = std::min(min, h.get().query_id);
    return min;
  };
  EXPECT_LT(max_id(interactive), min_id(batch));
  EXPECT_LT(max_id(batch), min_id(background));

  const auto stats = svc.stats();
  EXPECT_EQ(stats.admitted_by_priority[0], 4u);  // gate + 3 interactive
  EXPECT_EQ(stats.admitted_by_priority[1], 3u);
  EXPECT_EQ(stats.admitted_by_priority[2], 3u);
}

TEST(Priority, SaturationDisplacesBackgroundForInteractive) {
  service_config config = one_worker_config();
  config.exec.queue_capacity = 1;
  steiner_service svc(make_slow_graph(60), config);
  request gate;
  gate.q.seeds = spread_seeds(svc.graph(), 12, 70);
  query_handle gate_handle = svc.submit(gate);
  spin_until([&] { return gate_handle.status() == request_status::running; });

  request bg;
  bg.q.seeds = spread_seeds(svc.graph(), 10, 71);
  bg.priority = priority_class::background;
  query_handle bg_handle = svc.submit(bg);
  EXPECT_EQ(bg_handle.status(), request_status::queued);

  request it;
  it.q.seeds = spread_seeds(svc.graph(), 10, 72);
  query_handle it_handle = svc.submit(it);  // full queue: displaces bg
  EXPECT_EQ(bg_handle.status(), request_status::rejected);
  EXPECT_EQ(bg_handle.rejection(), reject_reason::queue_full);
  EXPECT_THROW((void)bg_handle.get(), request_rejected);

  (void)gate_handle.get();
  EXPECT_EQ(it_handle.get().kind, solve_kind::cold);
  const auto stats = svc.stats();
  EXPECT_EQ(stats.exec.displaced, 1u);
  EXPECT_EQ(stats.shed_by_priority[priority_index(priority_class::background)],
            1u);
}

// ---- stale-refresh dedup ----------------------------------------------------

TEST(StaleRefresh, BurstOfStaleHitsEnqueuesOneRefresh) {
  const auto g = make_connected_graph(200, 25, 61);
  service_config config = one_worker_config();
  config.max_stale_epochs = 1;
  config.enable_warm_start = false;  // make the refresh a plain cold solve
  steiner_service svc(graph::csr_graph(g), config);
  query q;
  q.seeds = {5, 60, 110, 170};
  (void)svc.solve(q);  // epoch-0 entry

  const auto nbrs = g.neighbors(5);
  ASSERT_FALSE(nbrs.empty());
  graph::edge_delta delta;
  delta.edits.push_back(graph::edge_edit::reweight(5, nbrs.front(), 300));
  (void)svc.advance_epoch(delta);

  // Five stale-tolerant queries, all queued before any refresh can run (the
  // refresh sits at background priority behind these interactive ones).
  std::vector<std::future<query_result>> futures;
  for (int i = 0; i < 5; ++i) futures.push_back(svc.submit(q));
  for (auto& f : futures) {
    EXPECT_EQ(f.get().kind, solve_kind::stale_hit);
  }
  // Let the single deduplicated refresh drain.
  spin_until([&] { return svc.stats().cold_solves == 2; });

  const auto stats = svc.stats();
  EXPECT_EQ(stats.stale_hits, 5u);
  EXPECT_EQ(stats.stale_refreshes, 1u);
  EXPECT_EQ(stats.stale_refreshes_deduped, 4u);
  EXPECT_EQ(stats.cold_solves, 2u);  // epoch-0 original + one refresh

  // The refresh populated the current epoch: no more staleness.
  const auto fresh = svc.solve(q);
  EXPECT_EQ(fresh.kind, solve_kind::cache_hit);
  EXPECT_EQ(fresh.epoch, 1u);
}

// ---- metrics export ---------------------------------------------------------

TEST(QosMetrics, SnapshotAndTextExposeQosCounters) {
  steiner_service svc(make_connected_graph(150, 20, 62), one_worker_config());
  util::cancel_source source;
  (void)source.request_cancel();
  request r;
  r.q.seeds = {3, 70, 120};
  r.cancel = source.token();
  (void)svc.submit(r);  // cancelled on arrival

  request ok;
  ok.q.seeds = {3, 70, 120};
  ok.priority = priority_class::batch;
  (void)svc.submit(ok).get();

  const std::string text = render_metrics_text(svc.snapshot());
  EXPECT_NE(text.find("dsteiner_cancelled_total 1"), std::string::npos);
  EXPECT_NE(text.find("dsteiner_deadline_rejected_total 0"), std::string::npos);
  EXPECT_NE(text.find("dsteiner_deadline_expired_total 0"), std::string::npos);
  EXPECT_NE(text.find("dsteiner_stale_refreshes_total 0"), std::string::npos);
  EXPECT_NE(
      text.find("dsteiner_requests_admitted_total{priority=\"batch\"} 1"),
      std::string::npos);
  EXPECT_NE(
      text.find("dsteiner_requests_shed_total{priority=\"interactive\"} 0"),
      std::string::npos);
  EXPECT_NE(text.find("dsteiner_executor_displaced_total 0"),
            std::string::npos);
  EXPECT_NE(text.find("dsteiner_leader_abandoned_total 0"), std::string::npos);
  EXPECT_NE(text.find("dsteiner_fragment_published_total"), std::string::npos);
  EXPECT_NE(text.find("dsteiner_oracle_pruned_visitors_total"),
            std::string::npos);
}

// ---- earliest-deadline-first within a priority level ------------------------

TEST(PriorityExecutor, EarliestDeadlineFirstWithinLevel) {
  executor exec({/*threads=*/1, /*capacity=*/16});
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  exec.post([gate](double) { gate.wait(); });
  while (exec.queue_depth() > 0) std::this_thread::yield();

  std::mutex order_mutex;
  std::vector<int> order;
  const auto enqueue = [&](int tag,
                           std::chrono::steady_clock::time_point deadline) {
    executor::task_options opts;
    opts.deadline = deadline;
    ASSERT_TRUE(exec.try_post(
        [&, tag](double) {
          const std::lock_guard<std::mutex> lock(order_mutex);
          order.push_back(tag);
        },
        std::move(opts)));
  };
  const auto now = std::chrono::steady_clock::now();
  // Same level, arrival order 3 (no deadline), 2 (late), 0 (early), 1 (mid),
  // 4 (no deadline): EDF must run 0, 1, 2, then the deadline-free FIFO tail.
  enqueue(3, std::chrono::steady_clock::time_point::max());
  enqueue(2, now + 60s);
  enqueue(0, now + 20s);
  enqueue(1, now + 40s);
  enqueue(4, std::chrono::steady_clock::time_point::max());
  release.set_value();
  spin_until([&] {
    const std::lock_guard<std::mutex> lock(order_mutex);
    return order.size() == 5;
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Deadline, TighterDeadlineOvertakesEarlierArrivalSameClass) {
  steiner_service svc(make_slow_graph(63), one_worker_config());
  request gate;
  gate.q.seeds = spread_seeds(svc.graph(), 12, 80);
  query_handle gate_handle = svc.submit(gate);
  spin_until([&] { return gate_handle.status() == request_status::running; });

  // Arrives first with a loose deadline, then a tight-deadline sibling at
  // the same priority: EDF must start the tight one first.
  request loose;
  loose.q.seeds = spread_seeds(svc.graph(), 10, 81);
  loose.deadline = std::chrono::steady_clock::now() + 120s;
  query_handle loose_handle = svc.submit(loose);
  request tight;
  tight.q.seeds = spread_seeds(svc.graph(), 10, 82);
  tight.deadline = std::chrono::steady_clock::now() + 60s;
  query_handle tight_handle = svc.submit(tight);

  (void)gate_handle.get();
  EXPECT_LT(tight_handle.get().query_id, loose_handle.get().query_id);
}

// ---- cancellation propagation into coalesced leaders ------------------------

TEST(Cancellation, AbandonedRidersStopACoalescedRefreshLeader) {
  // A background stale-refresh is the canonical requester-less leader: its
  // solve has no budget of its own, so before this PR it always ran to
  // completion. Riders that coalesce onto it and then cancel must now stop
  // the underlying solve via the group-abandon token.
  const auto g = make_slow_graph(64);
  service_config config = one_worker_config();
  config.exec.num_threads = 2;  // leader + a lane for the riders to park from
  config.max_stale_epochs = 1;
  config.enable_warm_start = false;
  config.enable_fragment_reuse = false;
  steiner_service svc(graph::csr_graph(g), config);
  query q;
  q.seeds = spread_seeds(svc.graph(), 12, 90);
  (void)svc.solve(q);  // epoch-0 entry (the stale donor)

  const auto nbrs = g.neighbors(q.seeds.front());
  ASSERT_FALSE(nbrs.empty());
  graph::edge_delta delta;
  delta.edits.push_back(
      graph::edge_edit::reweight(q.seeds.front(), nbrs.front(), 500));
  (void)svc.advance_epoch(delta);

  // Stale hit: serves epoch-0 and enqueues the background refresh leader.
  EXPECT_EQ(svc.solve(q).kind, solve_kind::stale_hit);
  spin_until([&] { return svc.stats().stale_refreshes == 1; });
  std::this_thread::sleep_for(20ms);  // leader picked up + registered (~90ms solve)

  // A rider that would coalesce onto the refresh: fresh-epoch query, same
  // key. It parks on the leader, then cancels — the last (only) interest
  // share leaving must abandon the leader's solve at its next checkpoint.
  util::cancel_source rider_cancel;
  request rider;
  rider.q = q;
  rider.q.allow_stale = false;
  rider.cancel = rider_cancel.token();
  query_handle rider_handle = svc.submit(rider);
  std::this_thread::sleep_for(10ms);  // let the rider park on the leader
  (void)rider_cancel.request_cancel();
  EXPECT_THROW((void)rider_handle.get(), util::operation_cancelled);

  // The leader dies abandoned instead of completing: its cold solve never
  // lands, and the counter records the abandonment.
  spin_until([&] { return svc.stats().leader_abandoned == 1; });
  const auto stats = svc.stats();
  EXPECT_EQ(stats.leader_abandoned, 1u);
  EXPECT_EQ(stats.cold_solves, 1u);  // only the epoch-0 original
}

// ---- running-solve accounting in the admission cost model -------------------

TEST(Deadline, RunningSolveCountsTowardCompletionEstimate) {
  // Warm the cost model with one real solve, then pin the only worker with a
  // second one. A request whose deadline covers the per-path estimate but
  // not the *running* solve's residual must be rejected as unmeetable even
  // though the queue itself is empty — only the in-flight work blocks it.
  steiner_service svc(make_slow_graph(65), one_worker_config());
  request warmup;
  warmup.q.seeds = spread_seeds(svc.graph(), 12, 95);
  warmup.q.use_cache = false;
  (void)svc.submit(warmup).get();
  // The worker books total_exec_seconds after the promise resolves.
  spin_until([&] { return svc.stats().exec.mean_exec_seconds() > 0.0; });
  const double mean_exec = svc.stats().exec.mean_exec_seconds();
  const double cold_p50 = svc.snapshot().cold_solve.quantile(0.5);

  request pin;
  pin.q.seeds = spread_seeds(svc.graph(), 12, 96);
  pin.q.use_cache = false;
  query_handle pin_handle = svc.submit(pin);
  spin_until([&] { return pin_handle.status() == request_status::running; });

  // Deadline = path estimate + half the running solve's cost: meetable on an
  // idle worker, unmeetable behind a just-started ~mean_exec solve.
  request tight;
  tight.q.seeds = spread_seeds(svc.graph(), 12, 97);
  tight.q.use_cache = false;
  tight.q.allow_warm_start = false;
  tight.deadline = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(cold_p50 + 0.5 * mean_exec));
  query_handle tight_handle = svc.submit(tight);
  EXPECT_EQ(tight_handle.status(), request_status::rejected);
  EXPECT_EQ(tight_handle.rejection(), reject_reason::deadline_unmeetable);

  // Same shape with a generous deadline: admitted while the worker is busy.
  request generous = tight;
  generous.q.seeds = spread_seeds(svc.graph(), 12, 98);
  generous.deadline = std::chrono::steady_clock::now() + 120s;
  query_handle generous_handle = svc.submit(generous);
  EXPECT_NE(generous_handle.status(), request_status::rejected);
  (void)pin_handle.get();
  (void)generous_handle.get();
}

}  // namespace
