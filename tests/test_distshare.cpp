// Shared distance substrate tests (service/distshare/): fragment store
// lifecycle, landmark oracle bound validity, bit-identical fragment-seeded /
// oracle-pruned solves (sequential + threaded), and concurrent borrow stress.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/steiner_solver.hpp"
#include "core/warm_start.hpp"
#include "graph/dijkstra.hpp"
#include "graph/generators.hpp"
#include "service/distshare/landmark_oracle.hpp"
#include "service/distshare/sssp_fragment_store.hpp"
#include "service/steiner_service.hpp"
#include "util/random.hpp"

namespace {

using namespace dsteiner;
using namespace dsteiner::service::distshare;
using graph::vertex_id;
using graph::weight_t;

graph::csr_graph make_connected_graph(int n, weight_t w_hi, std::uint64_t seed) {
  graph::edge_list list =
      graph::generate_erdos_renyi(n, static_cast<std::uint64_t>(n) * 3, seed);
  graph::assign_uniform_weights(list, 1, w_hi, seed ^ 0x99);
  graph::connect_components(list, w_hi + 1, seed);
  return graph::csr_graph(list);
}

std::vector<vertex_id> random_seeds(const graph::csr_graph& g, std::size_t k,
                                    util::rng& gen) {
  std::vector<vertex_id> seeds;
  while (seeds.size() < k) {
    const vertex_id v = gen.uniform(0, g.num_vertices() - 1);
    if (std::find(seeds.begin(), seeds.end(), v) == seeds.end()) {
      seeds.push_back(v);
    }
  }
  return seeds;
}

void expect_same_tree(const core::steiner_result& a,
                      const core::steiner_result& b) {
  EXPECT_EQ(a.total_distance, b.total_distance);
  EXPECT_EQ(a.tree_edges, b.tree_edges);
  EXPECT_EQ(a.num_seeds, b.num_seeds);
  EXPECT_EQ(a.spans_all_seeds, b.spans_all_seeds);
}

/// Converged labelling + fragments for `seeds`, published into `store`.
core::solve_artifacts capture_and_publish(const graph::csr_graph& g,
                                          std::vector<vertex_id> seeds,
                                          sssp_fragment_store& store,
                                          std::uint64_t epoch_id = 0,
                                          double cost = 1.0) {
  std::sort(seeds.begin(), seeds.end());
  core::solve_artifacts artifacts;
  (void)core::solve_steiner_tree_capture(g, seeds, {}, artifacts);
  (void)store.publish_from_state(g.fingerprint(), epoch_id, artifacts.state,
                                 seeds, cost);
  return artifacts;
}

// ---- fragment store lifecycle -----------------------------------------------

TEST(FragmentStore, PublishThenBorrowRoundTrips) {
  const auto g = make_connected_graph(200, 15, 7);
  sssp_fragment_store store;
  const std::vector<vertex_id> seeds{10, 60, 150};
  const auto artifacts = capture_and_publish(g, seeds, store);

  const auto stats = store.snapshot();
  EXPECT_EQ(stats.published, 3u);
  EXPECT_EQ(stats.fragments, 3u);
  EXPECT_GT(stats.bytes_in_use, 0u);

  for (const vertex_id s : seeds) {
    const fragment_ptr frag = store.borrow(g.fingerprint(), s);
    ASSERT_NE(frag, nullptr);
    EXPECT_EQ(frag->seed, s);
    ASSERT_FALSE(frag->vertices.empty());
    // The seed itself leads the distance-sorted membership at distance 0.
    EXPECT_EQ(frag->vertices.front(), s);
    EXPECT_EQ(frag->distance.front(), 0u);
    EXPECT_EQ(frag->radius, frag->distance.back());
    // Labels match the converged state, and the set is pred-closed.
    for (std::size_t i = 0; i < frag->vertices.size(); ++i) {
      const vertex_id v = frag->vertices[i];
      EXPECT_EQ(artifacts.state.src[v], s);
      EXPECT_EQ(frag->distance[i], artifacts.state.distance[v]);
      EXPECT_EQ(frag->pred[i], artifacts.state.pred[v]);
      EXPECT_TRUE(std::find(frag->vertices.begin(), frag->vertices.end(),
                            frag->pred[i]) != frag->vertices.end());
    }
  }
  EXPECT_EQ(store.borrow(g.fingerprint(), 11), nullptr);  // not a seed
  EXPECT_EQ(store.borrow(g.fingerprint() ^ 1, 10), nullptr);  // other epoch
  EXPECT_EQ(store.snapshot().hits, 3u);
  EXPECT_EQ(store.snapshot().misses, 2u);
}

TEST(FragmentStore, TruncationIsPredClosedAndDistanceSorted) {
  const auto g = make_connected_graph(300, 9, 11);
  fragment_store_config cfg;
  cfg.max_fragment_vertices = 12;
  sssp_fragment_store store(cfg);
  (void)capture_and_publish(g, {5, 200}, store);
  for (const vertex_id s : {vertex_id{5}, vertex_id{200}}) {
    const fragment_ptr frag = store.borrow(g.fingerprint(), s);
    ASSERT_NE(frag, nullptr);
    EXPECT_LE(frag->vertices.size(), 12u);
    EXPECT_TRUE(std::is_sorted(frag->distance.begin(), frag->distance.end()));
    for (std::size_t i = 0; i < frag->vertices.size(); ++i) {
      EXPECT_TRUE(std::find(frag->vertices.begin(), frag->vertices.end(),
                            frag->pred[i]) != frag->vertices.end())
          << "pred chain truncated for vertex " << frag->vertices[i];
    }
  }
}

TEST(FragmentStore, CostAwareEvictionKeepsReusedAndExpensive) {
  const auto g = make_connected_graph(120, 10, 13);
  fragment_store_config cfg;
  cfg.shards = 1;  // deterministic shared budget
  cfg.max_fragment_vertices = 0;
  sssp_fragment_store store(cfg);
  (void)capture_and_publish(g, {3, 70}, store, /*epoch_id=*/0, /*cost=*/8.0);
  // Borrow both so the first pair carries reuse weight.
  ASSERT_NE(store.borrow(g.fingerprint(), 3), nullptr);
  ASSERT_NE(store.borrow(g.fingerprint(), 70), nullptr);

  // Shrink the budget by re-creating the store? No — instead publish cheap
  // one-off cells until the budget evicts: the cheap, never-borrowed ones
  // must go first.
  const auto before = store.snapshot();
  ASSERT_EQ(before.evictions, 0u);
  fragment_store_config tight = cfg;
  tight.memory_budget_bytes = before.bytes_in_use + 200;
  sssp_fragment_store bounded(tight);
  (void)capture_and_publish(g, {3, 70}, bounded, 0, /*cost=*/8.0);
  ASSERT_NE(bounded.borrow(g.fingerprint(), 3), nullptr);
  ASSERT_NE(bounded.borrow(g.fingerprint(), 70), nullptr);
  (void)capture_and_publish(g, {20, 90}, bounded, 0, /*cost=*/0.01);
  const auto after = bounded.snapshot();
  EXPECT_GT(after.evictions, 0u);
  // The hot/expensive fragments survived eviction pressure.
  EXPECT_NE(bounded.borrow(g.fingerprint(), 3), nullptr);
  EXPECT_NE(bounded.borrow(g.fingerprint(), 70), nullptr);
}

TEST(FragmentStore, EpochRetirementPurges) {
  const auto g = make_connected_graph(100, 10, 17);
  sssp_fragment_store store;
  core::solve_artifacts old_epoch, new_epoch;
  const std::vector<vertex_id> old_seeds{2, 50};
  const std::vector<vertex_id> new_seeds{8, 77};
  (void)core::solve_steiner_tree_capture(g, old_seeds, {}, old_epoch);
  (void)core::solve_steiner_tree_capture(g, new_seeds, {}, new_epoch);
  // Distinct fingerprints stand in for two epochs' graph contents.
  const std::size_t p_old = store.publish_from_state(
      g.fingerprint(), /*epoch_id=*/3, old_epoch.state, old_seeds, 1.0);
  const std::size_t p_new = store.publish_from_state(
      g.fingerprint() ^ 1, /*epoch_id=*/5, new_epoch.state, new_seeds, 1.0);
  ASSERT_GT(p_old, 0u);
  ASSERT_GT(p_new, 0u);
  EXPECT_EQ(store.snapshot().fragments, p_old + p_new);
  EXPECT_EQ(store.retire_epochs_before(4), p_old);
  const auto stats = store.snapshot();
  EXPECT_EQ(stats.fragments, p_new);
  EXPECT_EQ(stats.retired, p_old);
  EXPECT_EQ(store.borrow(g.fingerprint(), 2), nullptr);
}

TEST(FragmentStore, BorrowedFragmentSurvivesEviction) {
  const auto g = make_connected_graph(150, 10, 19);
  sssp_fragment_store store;
  (void)capture_and_publish(g, {4, 90}, store);
  const fragment_ptr held = store.borrow(g.fingerprint(), 4);
  ASSERT_NE(held, nullptr);
  store.clear();
  EXPECT_EQ(store.snapshot().fragments, 0u);
  // The ref-counted fragment outlives its index slot.
  EXPECT_EQ(held->seed, 4u);
  EXPECT_FALSE(held->vertices.empty());
}

// ---- landmark oracle --------------------------------------------------------

TEST(LandmarkOracle, BoundsSandwichTrueDistances) {
  util::rng gen(23);
  for (int round = 0; round < 4; ++round) {
    const auto g = make_connected_graph(180 + 40 * round, 12, 23 + round);
    landmark_oracle::config cfg;
    cfg.num_landmarks = 6;
    landmark_oracle oracle(cfg);
    oracle.advance_epoch(g.fingerprint(), {});
    oracle.build(g, g.fingerprint());
    ASSERT_TRUE(oracle.stats().built);
    EXPECT_TRUE(oracle.stats().upper_valid);
    EXPECT_TRUE(oracle.stats().lower_valid);

    const std::vector<vertex_id> sources = random_seeds(g, 4, gen);
    std::vector<vertex_id> canonical = sources;
    std::sort(canonical.begin(), canonical.end());
    const auto ub = oracle.prune_bounds(g.fingerprint(), canonical);
    ASSERT_EQ(ub.size(), g.num_vertices());

    // Truth: min over sources of the exact SSSP distance.
    std::vector<weight_t> truth(g.num_vertices(), graph::k_inf_distance);
    for (const vertex_id s : sources) {
      const auto d = graph::dijkstra(g, s).distance;
      for (vertex_id v = 0; v < g.num_vertices(); ++v) {
        truth[v] = std::min(truth[v], d[v]);
      }
      for (vertex_id v = 0; v < g.num_vertices(); ++v) {
        // lower_bound(s, v) <= d(s, v) for every pair.
        const weight_t lb = oracle.lower_bound(g.fingerprint(), s, v);
        if (d[v] != graph::k_inf_distance) {
          EXPECT_LE(lb, d[v]) << "lb violated for (" << s << "," << v << ")";
        }
      }
    }
    for (vertex_id v = 0; v < g.num_vertices(); ++v) {
      // ub[v] >= min_s d(s, v): pruning strictly above ub is safe.
      EXPECT_GE(ub[v], truth[v]) << "ub violated at " << v;
    }
  }
}

TEST(LandmarkOracle, EdgeDeltaDegradesTheRightBoundSide) {
  const auto g = make_connected_graph(120, 10, 29);
  landmark_oracle oracle({4, 2});
  oracle.advance_epoch(g.fingerprint(), {});
  oracle.build(g, g.fingerprint());
  ASSERT_TRUE(oracle.stats().upper_valid && oracle.stats().lower_valid);

  // A raised edge grows distances: stale tables may understate, upper dies.
  graph::applied_edge_edit raised;
  raised.u = g.neighbors(0).empty() ? 1 : 0;
  raised.v = g.neighbors(0).empty() ? 2 : g.neighbors(0).front();
  raised.had_edge = raised.has_edge = true;
  raised.old_weight = 1;
  raised.new_weight = 5;
  oracle.advance_epoch(g.fingerprint() ^ 0xA, {&raised, 1});
  EXPECT_FALSE(oracle.stats().upper_valid);
  EXPECT_TRUE(oracle.stats().lower_valid);
  EXPECT_TRUE(oracle.prune_bounds(g.fingerprint() ^ 0xA, {}).empty());
  // Bounds for the exact build fingerprint stay fully usable (pinned epoch).
  EXPECT_FALSE(
      oracle.prune_bounds(g.fingerprint(), std::vector<vertex_id>{0}).empty());

  // A lowered edge shrinks distances: stale tables may overstate, lower dies.
  graph::applied_edge_edit lowered = raised;
  lowered.old_weight = 5;
  lowered.new_weight = 1;
  oracle.advance_epoch(g.fingerprint() ^ 0xB, {&lowered, 1});
  EXPECT_FALSE(oracle.stats().lower_valid);
  EXPECT_EQ(oracle.lower_bound(g.fingerprint() ^ 0xB, 0, 5), 0u);
  EXPECT_TRUE(oracle.needs_build(g.fingerprint() ^ 0xB));
}

// ---- bit-identity of assisted solves ----------------------------------------

class AssistedSolve : public ::testing::TestWithParam<runtime::execution_mode> {
};

TEST_P(AssistedSolve, FragmentSeededAndPrunedMatchesCold) {
  util::rng gen(31);
  core::solver_config config;
  config.num_ranks = 8;
  config.mode = GetParam();
  if (config.mode == runtime::execution_mode::parallel_threads) {
    config.num_threads = 4;
  }
  config.validate = true;

  for (int round = 0; round < 6; ++round) {
    const auto g = make_connected_graph(160 + 30 * round, 14, 100 + round);
    // Donor solve on a seed set overlapping the query's.
    const std::vector<vertex_id> donor_seeds = random_seeds(g, 8, gen);
    sssp_fragment_store store;
    (void)capture_and_publish(g, donor_seeds, store);

    // Query: a random subset of the donor's seeds plus fresh ones.
    std::vector<vertex_id> seeds;
    for (const vertex_id s : donor_seeds) {
      if (gen.uniform(0, 1) == 0) seeds.push_back(s);
    }
    for (const vertex_id s : random_seeds(g, 3, gen)) {
      if (std::find(seeds.begin(), seeds.end(), s) == seeds.end()) {
        seeds.push_back(s);
      }
    }
    if (seeds.size() < 2) seeds = donor_seeds;
    std::sort(seeds.begin(), seeds.end());

    std::vector<core::sssp_fragment_view> views;
    std::vector<fragment_ptr> borrowed;
    for (const vertex_id s : seeds) {
      if (fragment_ptr f = store.borrow(g.fingerprint(), s)) {
        views.push_back(f->view());
        borrowed.push_back(std::move(f));
      }
    }
    landmark_oracle oracle({5, 2});
    oracle.advance_epoch(g.fingerprint(), {});
    oracle.build(g, g.fingerprint());
    const auto bounds = oracle.prune_bounds(g.fingerprint(), seeds);

    core::solve_assists assists;
    assists.fragments = views;
    assists.prune_upper_bound = bounds;
    core::assist_stats astats;
    const auto assisted =
        core::solve_steiner_tree_assisted(g, seeds, assists, config,
                                          /*capture=*/nullptr, &astats);
    const auto cold = core::solve_steiner_tree(g, seeds, config);
    expect_same_tree(assisted, cold);
    if (!views.empty()) {
      EXPECT_EQ(astats.fragments_injected, views.size());
      EXPECT_GT(astats.preseeded_vertices, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, AssistedSolve,
                         ::testing::Values(
                             runtime::execution_mode::async,
                             runtime::execution_mode::parallel_threads));

// ---- concurrent borrow stress ----------------------------------------------

TEST(FragmentStore, ConcurrentPublishBorrowStress) {
  const auto g = make_connected_graph(160, 10, 37);
  sssp_fragment_store store;
  core::solve_artifacts artifacts;
  std::vector<vertex_id> seeds{5, 40, 80, 120, 150};
  (void)core::solve_steiner_tree_capture(g, seeds, {}, artifacts);

  std::atomic<std::uint64_t> borrowed_total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      util::rng gen(1000 + t);
      for (int i = 0; i < 200; ++i) {
        if (i % 20 == 0) {
          (void)store.publish_from_state(g.fingerprint(), 0, artifacts.state,
                                         seeds, 0.5);
        }
        const vertex_id s = seeds[gen.uniform(0, seeds.size() - 1)];
        if (const fragment_ptr f = store.borrow(g.fingerprint(), s)) {
          // Validate the borrowed view while other threads publish/evict.
          ASSERT_EQ(f->seed, s);
          ASSERT_EQ(f->vertices.size(), f->distance.size());
          borrowed_total.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(borrowed_total.load(), 0u);
  const auto stats = store.snapshot();
  EXPECT_EQ(stats.hits + stats.misses, 6u * 200u);
}

// ---- service-level integration ----------------------------------------------

service::service_config distshare_config(std::size_t workers) {
  service::service_config config;
  config.exec.num_threads = workers;
  config.exec.queue_capacity = 64;
  config.solver.num_ranks = 8;
  config.enable_warm_start = false;  // isolate the fragment path from donors
  config.enable_cache = false;       // and from the result cache
  return config;
}

TEST(ServiceDistshare, OverlappingQueriesHitFragmentsAndMatch) {
  const auto g = make_connected_graph(220, 12, 41);
  service::steiner_service svc(graph::csr_graph(g), distshare_config(1));
  service::steiner_service plain_svc(graph::csr_graph(g), [] {
    auto c = distshare_config(1);
    c.enable_fragment_reuse = false;
    return c;
  }());

  service::query first;
  first.seeds = {10, 60, 110, 160, 200};
  const auto cold = svc.solve(first);
  EXPECT_EQ(cold.kind, service::solve_kind::cold);
  EXPECT_EQ(cold.assist.fragments_injected, 0u);

  service::query second;
  second.seeds = {10, 60, 110, 160, 30};  // 4/5 overlap
  const auto assisted = svc.solve(second);
  const auto reference = plain_svc.solve(second);
  EXPECT_EQ(assisted.kind, service::solve_kind::cold);
  EXPECT_GT(assisted.assist.fragments_injected, 0u);
  EXPECT_GT(assisted.assist.preseeded_vertices, 0u);
  EXPECT_EQ(assisted.result.tree_edges, reference.result.tree_edges);
  EXPECT_EQ(assisted.result.total_distance, reference.result.total_distance);

  const auto stats = svc.stats();
  EXPECT_EQ(stats.fragment_assisted, 1u);
  EXPECT_GE(stats.fragment_hits, 4u);
  EXPECT_GT(stats.fragments.published, 0u);
  // Phase-1 repeat work shrank: the assisted solve processed fewer visitors.
  const auto* cold_voronoi =
      cold.result.phases.find(runtime::phase_names::voronoi);
  const auto* warm_voronoi =
      assisted.result.phases.find(runtime::phase_names::voronoi);
  ASSERT_NE(cold_voronoi, nullptr);
  ASSERT_NE(warm_voronoi, nullptr);
  EXPECT_LT(warm_voronoi->visitors_processed, cold_voronoi->visitors_processed);
}

TEST(ServiceDistshare, EpochAdvanceRetiresFragmentsAndOracle) {
  const auto g = make_connected_graph(150, 10, 43);
  auto config = distshare_config(1);
  config.epochs.max_live_epochs = 1;  // advancing retires immediately
  config.enable_oracle = true;
  config.oracle.num_landmarks = 4;
  service::steiner_service svc(graph::csr_graph(g), config);
  svc.warm_distance_oracle();
  ASSERT_TRUE(svc.oracle_stats().built);
  ASSERT_TRUE(svc.oracle_stats().upper_valid);

  service::query q;
  q.seeds = {5, 70, 130};
  (void)svc.solve(q);
  ASSERT_GT(svc.fragments().snapshot().fragments, 0u);

  // Raise an existing edge: fragments retire with their epoch, the oracle's
  // upper side dies with the raise.
  const vertex_id u = 5;
  ASSERT_FALSE(g.neighbors(u).empty());
  const vertex_id v = g.neighbors(u).front();
  const weight_t w = g.weights(u).front();
  (void)svc.advance_epoch(
      {{graph::edge_edit::reweight(u, v, w + 10)}});
  EXPECT_EQ(svc.fragments().snapshot().fragments, 0u);
  EXPECT_FALSE(svc.oracle_stats().upper_valid);
  EXPECT_TRUE(svc.oracle_stats().lower_valid);

  // Queries on the new epoch still solve correctly (no assists available).
  const auto after = svc.solve(q);
  EXPECT_EQ(after.kind, service::solve_kind::cold);
  EXPECT_EQ(after.assist.fragments_injected, 0u);

  // A blocking re-warm restores both bound sides for the new epoch.
  svc.warm_distance_oracle();
  EXPECT_TRUE(svc.oracle_stats().upper_valid);
  EXPECT_TRUE(svc.oracle_stats().lower_valid);
}

TEST(ServiceDistshare, OracleAssistedServiceSolvesMatchPlain) {
  const auto g = make_connected_graph(200, 12, 47);
  auto config = distshare_config(2);
  config.enable_oracle = true;
  config.oracle.num_landmarks = 6;
  service::steiner_service svc(graph::csr_graph(g), config);
  svc.warm_distance_oracle();
  service::steiner_service plain_svc(graph::csr_graph(g), distshare_config(2));

  util::rng gen(49);
  for (int i = 0; i < 5; ++i) {
    service::query q;
    q.seeds = random_seeds(g, 6, gen);
    const auto pruned = svc.solve(q);
    const auto reference = plain_svc.solve(q);
    EXPECT_EQ(pruned.result.tree_edges, reference.result.tree_edges);
    EXPECT_EQ(pruned.result.total_distance, reference.result.total_distance);
  }
  EXPECT_GT(svc.stats().oracle_builds, 0u);
}

}  // namespace
