#include "seed/seed_select.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_set>

#include "graph/bfs.hpp"
#include "graph/connected_components.hpp"
#include "util/random.hpp"

namespace dsteiner::seed {

namespace {

using graph::vertex_id;

[[nodiscard]] std::vector<vertex_id> bfs_level_seeds(
    const graph::csr_graph& graph, const std::vector<vertex_id>& component,
    std::size_t count, util::rng& gen) {
  // BFS from a random component vertex; bucket vertices by level.
  const vertex_id start = component[gen.uniform(0, component.size() - 1)];
  const graph::bfs_result bfs = graph::breadth_first_search(graph, start);
  std::vector<std::vector<vertex_id>> buckets(bfs.max_level + 1);
  for (const vertex_id v : component) buckets[bfs.levels[v]].push_back(v);

  // Proportional allocation: "a higher percentage of vertices are selected
  // from a level with higher vertex frequency" (§V). Largest-remainder
  // rounding keeps the total exactly `count`.
  const double total = static_cast<double>(component.size());
  std::vector<std::size_t> quota(buckets.size(), 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  std::size_t allocated = 0;
  for (std::size_t level = 0; level < buckets.size(); ++level) {
    const double share =
        static_cast<double>(count) * static_cast<double>(buckets[level].size()) / total;
    quota[level] = std::min<std::size_t>(static_cast<std::size_t>(share),
                                         buckets[level].size());
    allocated += quota[level];
    remainders.push_back({share - static_cast<double>(quota[level]), level});
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (const auto& [frac, level] : remainders) {
    if (allocated >= count) break;
    if (quota[level] < buckets[level].size()) {
      ++quota[level];
      ++allocated;
    }
  }
  // Rounding can still fall short when some buckets saturate; top up anywhere.
  for (std::size_t level = 0; allocated < count && level < buckets.size(); ++level) {
    while (allocated < count && quota[level] < buckets[level].size()) {
      ++quota[level];
      ++allocated;
    }
  }

  std::vector<vertex_id> seeds;
  seeds.reserve(count);
  for (std::size_t level = 0; level < buckets.size(); ++level) {
    if (quota[level] == 0) continue;
    const auto picks =
        util::sample_without_replacement(buckets[level].size(), quota[level], gen);
    for (const std::uint64_t index : picks) seeds.push_back(buckets[level][index]);
  }
  return seeds;
}

/// k-BFS of [31]: each subsequent source extremizes the cumulative BFS-level
/// sum over all previous rounds (max -> eccentric, min -> proximate).
[[nodiscard]] std::vector<vertex_id> k_bfs_seeds(
    const graph::csr_graph& graph, const std::vector<vertex_id>& component,
    std::size_t count, bool maximize, util::rng& gen) {
  std::vector<vertex_id> seeds;
  seeds.reserve(count);
  std::unordered_set<vertex_id> chosen;
  std::vector<std::uint64_t> level_sum(graph.num_vertices(), 0);

  vertex_id source = component[gen.uniform(0, component.size() - 1)];
  seeds.push_back(source);
  chosen.insert(source);
  while (seeds.size() < count) {
    const graph::bfs_result bfs = graph::breadth_first_search(graph, source);
    for (const vertex_id v : component) level_sum[v] += bfs.levels[v];
    vertex_id best = graph::k_no_vertex;
    for (const vertex_id v : component) {
      if (chosen.contains(v)) continue;
      if (best == graph::k_no_vertex) {
        best = v;
        continue;
      }
      const bool better = maximize ? level_sum[v] > level_sum[best]
                                   : level_sum[v] < level_sum[best];
      if (better) best = v;
    }
    assert(best != graph::k_no_vertex);
    seeds.push_back(best);
    chosen.insert(best);
    source = best;
  }
  return seeds;
}

}  // namespace

std::string to_string(seed_strategy strategy) {
  switch (strategy) {
    case seed_strategy::bfs_level: return "BFS-level";
    case seed_strategy::uniform_random: return "Uniform Random";
    case seed_strategy::eccentric: return "Eccentric";
    case seed_strategy::proximate: return "Proximate";
  }
  return "?";
}

std::vector<graph::vertex_id> select_seeds(const graph::csr_graph& graph,
                                           std::size_t count,
                                           seed_strategy strategy,
                                           std::uint64_t rng_seed) {
  const std::vector<vertex_id> component = graph::largest_component_vertices(graph);
  if (component.size() < count) {
    throw std::invalid_argument(
        "select_seeds: largest component smaller than requested seed count");
  }
  util::rng gen(rng_seed);
  std::vector<vertex_id> seeds;
  switch (strategy) {
    case seed_strategy::bfs_level:
      seeds = bfs_level_seeds(graph, component, count, gen);
      break;
    case seed_strategy::uniform_random: {
      const auto picks =
          util::sample_without_replacement(component.size(), count, gen);
      seeds.reserve(count);
      for (const std::uint64_t index : picks) seeds.push_back(component[index]);
      break;
    }
    case seed_strategy::eccentric:
      seeds = k_bfs_seeds(graph, component, count, /*maximize=*/true, gen);
      break;
    case seed_strategy::proximate:
      seeds = k_bfs_seeds(graph, component, count, /*maximize=*/false, gen);
      break;
  }
  std::sort(seeds.begin(), seeds.end());
  assert(seeds.size() == count);
  return seeds;
}

}  // namespace dsteiner::seed
