// Seed-vertex selection strategies (paper §V "Seed Vertex Selection" and
// §V-E "Studying Seed Selection Alternatives").
//
// All strategies sample from the largest connected component so the Steiner
// tree exists. The paper's default methodology ("BFS-level") samples vertices
// across BFS levels proportionally to level population, avoiding seed sets
// dominated by directly-connected vertices; uniform-random, eccentric
// (k-BFS max, far-apart seeds) and proximate (k-BFS min, clustered seeds)
// are the §V-E alternatives.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace dsteiner::seed {

enum class seed_strategy {
  bfs_level,       ///< paper default: proportional sampling across BFS levels
  uniform_random,  ///< uniform over the largest component
  eccentric,       ///< k-BFS picking mutually faraway vertices
  proximate,       ///< k-BFS picking mutually close vertices
};

[[nodiscard]] std::string to_string(seed_strategy strategy);

/// Selects `count` distinct seed vertices from the largest connected
/// component of `graph`. Deterministic in `rng_seed`. Throws
/// std::invalid_argument if the component has fewer than `count` vertices.
[[nodiscard]] std::vector<graph::vertex_id> select_seeds(
    const graph::csr_graph& graph, std::size_t count, seed_strategy strategy,
    std::uint64_t rng_seed);

}  // namespace dsteiner::seed
