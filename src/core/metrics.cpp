#include "core/metrics.hpp"

// memory_accounting is header-only; this translation unit keeps the build
// layout uniform (one object per core module).
