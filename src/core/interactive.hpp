// Legacy spelling of the interactive exploration session.
//
// The session delegates all queries to service::steiner_service, which
// inverted the graph -> runtime -> core -> service layering while the class
// lived here. It now lives in src/service/exploration_session.hpp; this
// header remains so existing includes and the core::exploration_session name
// keep working.
#pragma once

#include "service/exploration_session.hpp"

namespace dsteiner::core {

using exploration_session = service::exploration_session;

}  // namespace dsteiner::core
