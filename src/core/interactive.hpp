// Interactive exploration session — the paper's motivating workflow (§I):
// "a user will interact with such computation in various ways, exploring the
// relationships ... adding or removing classes of edges and/or vertices and
// adjusting edge distance functions based on investigating the output."
//
// A session owns a graph and a mutable seed set; every edit (add/remove
// seeds, re-weight, filter edges) invalidates the cached result, which is
// recomputed lazily on the next query. Queries are delegated to a private
// service::steiner_service, so a session gets the service's result cache and
// warm-start repair for free: re-adding a previously queried seed set is a
// cache hit, and a small seed delta repairs the previous solve instead of
// recomputing phase 1 from scratch. Graph edits (re-weighting, filtering)
// change the graph fingerprint and therefore start a fresh service.
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "core/steiner_solver.hpp"
#include "graph/csr_graph.hpp"
#include "graph/types.hpp"
#include "service/query.hpp"

namespace dsteiner::service {
class steiner_service;
}  // namespace dsteiner::service

namespace dsteiner::core {

class exploration_session {
 public:
  explicit exploration_session(graph::csr_graph graph, solver_config config = {});
  ~exploration_session();

  /// Seed-set edits (idempotent; return true if the set changed).
  bool add_seed(graph::vertex_id v);
  bool remove_seed(graph::vertex_id v);
  void set_seeds(std::span<const graph::vertex_id> seeds);
  void clear_seeds();

  [[nodiscard]] std::vector<graph::vertex_id> seeds() const {
    return {seeds_.begin(), seeds_.end()};
  }
  [[nodiscard]] std::size_t seed_count() const noexcept { return seeds_.size(); }

  /// Rebuilds the graph keeping only edges with weight <= cutoff — the §I
  /// "removing classes of edges" interaction. Seeds are preserved; the next
  /// query may legitimately find them disconnected (a Steiner forest is
  /// returned because the session enables allow_disconnected_seeds).
  void filter_edges_above(graph::weight_t cutoff);

  /// Replaces every edge weight via fn(u, v, w) — "adjusting edge distance
  /// functions". fn must return a weight >= 1.
  template <typename Fn>
  void reweight(Fn&& fn) {
    const graph::csr_graph& g = graph();
    graph::edge_list edges;
    edges.set_num_vertices(g.num_vertices());
    for (graph::vertex_id u = 0; u < g.num_vertices(); ++u) {
      const auto nbrs = g.neighbors(u);
      const auto wts = g.weights(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (u < nbrs[i]) {
          edges.add_undirected_edge(u, nbrs[i], fn(u, nbrs[i], wts[i]));
        }
      }
    }
    replace_graph(graph::csr_graph(edges));
  }

  /// Scale-out knob: change the simulated rank count for future queries.
  void set_ranks(int num_ranks);

  /// The Steiner tree for the current seed set; cached until the next edit.
  /// Empty result (no edges) for fewer than two seeds.
  const steiner_result& tree();

  /// True if the cache is valid (no recompute pending).
  [[nodiscard]] bool up_to_date() const noexcept { return cached_.has_value(); }

  /// Number of solver runs (cold or warm) performed so far; service cache
  /// hits do not count (observability for tests/UX).
  [[nodiscard]] std::uint64_t recompute_count() const noexcept {
    return recomputes_;
  }

  /// How the backing service satisfied the most recent tree() recompute.
  [[nodiscard]] service::solve_kind last_solve_kind() const noexcept {
    return last_kind_;
  }

  /// The backing query service (stats: cache hit rates, warm-start counts).
  [[nodiscard]] const service::steiner_service& service() const noexcept {
    return *service_;
  }

  /// The session's graph lives in the backing service (one copy, not two).
  /// The returned reference is invalidated by graph edits (reweight,
  /// filter_edges_above), which replace the service — re-fetch after editing.
  [[nodiscard]] const graph::csr_graph& graph() const noexcept;

 private:
  void invalidate() noexcept { cached_.reset(); }
  void replace_graph(graph::csr_graph next);

  solver_config config_;
  std::unique_ptr<service::steiner_service> service_;
  std::set<graph::vertex_id> seeds_;
  std::optional<steiner_result> cached_;
  std::uint64_t recomputes_ = 0;
  service::solve_kind last_kind_ = service::solve_kind::cold;
};

}  // namespace dsteiner::core
