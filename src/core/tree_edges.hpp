// Steiner-tree edge identification (paper Alg. 6, TREE_EDGE_ASYNC).
//
// After pruning, every surviving cross-cell edge (u, v) belongs to the final
// tree. Starting from u and v, asynchronous walk visitors follow pred
// pointers back to each cell's seed, adding each traversed edge. An in-tree
// bitmap stops walks that reach an already-collected vertex — this is why the
// phase's message count is proportional to |ES|, "orders of magnitude
// smaller" than |E| (§IV, Table IV).
#pragma once

#include <cstdint>
#include <vector>

#include "core/distance_graph.hpp"
#include "core/steiner_state.hpp"
#include "graph/types.hpp"
#include "runtime/dist_graph.hpp"
#include "runtime/perf_model.hpp"
#include "runtime/visitor_engine.hpp"

namespace dsteiner::core {

/// TREE_EDGE_VISITOR of Alg. 6: carries only the vertex being visited.
struct tree_edge_visitor {
  graph::vertex_id vj = 0;

  [[nodiscard]] graph::vertex_id target() const noexcept { return vj; }
  [[nodiscard]] std::uint64_t priority() const noexcept { return 0; }
};

/// Runs Alg. 6: seeds walks from every pruned cross-cell edge, collects tree
/// edges into `per_rank_es` (one list per rank, Alg. 6 lines 3-4 place each
/// cross edge at u's home partition). `in_tree` must be empty or |V| wide.
[[nodiscard]] runtime::phase_metrics collect_tree_edges(
    const runtime::dist_graph& dgraph, const steiner_state& state,
    const cross_edge_map& pruned_en,
    std::vector<std::vector<graph::weighted_edge>>& per_rank_es,
    const runtime::engine_config& config);

}  // namespace dsteiner::core
