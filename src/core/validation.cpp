#include "core/validation.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "graph/union_find.hpp"
#include "graph/types.hpp"
#include "util/hash.hpp"

namespace dsteiner::core {

namespace {

validation_result fail(const std::string& message) {
  return {false, message};
}

}  // namespace

validation_result validate_steiner_tree(
    const graph::csr_graph& graph, std::span<const graph::vertex_id> seeds,
    std::span<const graph::weighted_edge> edges) {
  const std::unordered_set<graph::vertex_id> seed_set(seeds.begin(), seeds.end());

  if (seed_set.size() <= 1) {
    if (!edges.empty()) return fail("single-seed query must yield an empty tree");
    return {true, {}};
  }
  if (edges.empty()) return fail("empty edge set cannot span multiple seeds");

  // Edge existence, weights, duplicates; collect tree vertices and degrees.
  std::unordered_set<std::pair<graph::vertex_id, graph::vertex_id>, util::pair_hash>
      seen;
  std::unordered_map<graph::vertex_id, std::size_t> degree;
  for (const auto& e : edges) {
    if (e.source >= graph.num_vertices() || e.target >= graph.num_vertices()) {
      return fail("edge endpoint outside the graph");
    }
    if (e.source == e.target) return fail("self-loop in tree");
    const auto key = std::pair{std::min(e.source, e.target),
                               std::max(e.source, e.target)};
    if (!seen.insert(key).second) {
      std::ostringstream msg;
      msg << "duplicate edge (" << key.first << ", " << key.second << ")";
      return fail(msg.str());
    }
    const auto w = graph.edge_weight(e.source, e.target);
    if (!w) {
      std::ostringstream msg;
      msg << "edge (" << e.source << ", " << e.target << ") not in graph";
      return fail(msg.str());
    }
    if (*w != e.weight) {
      std::ostringstream msg;
      msg << "edge (" << e.source << ", " << e.target << ") weight " << e.weight
          << " != graph weight " << *w;
      return fail(msg.str());
    }
    ++degree[e.source];
    ++degree[e.target];
  }

  // Acyclic + connected: |vertices| == |edges| + 1 and no union-find cycle.
  std::unordered_map<graph::vertex_id, std::size_t> compact;
  for (const auto& [v, d] : degree) {
    compact.emplace(v, compact.size());
  }
  if (compact.size() != edges.size() + 1) {
    return fail("edge set is not a single tree (|V| != |E| + 1)");
  }
  graph::union_find sets(compact.size());
  for (const auto& e : edges) {
    if (!sets.unite(compact.at(e.source), compact.at(e.target))) {
      return fail("cycle detected in tree edges");
    }
  }

  // Spans every seed.
  for (const graph::vertex_id s : seed_set) {
    if (!compact.contains(s)) {
      std::ostringstream msg;
      msg << "seed " << s << " missing from tree";
      return fail(msg.str());
    }
  }

  // No non-seed leaves.
  for (const auto& [v, d] : degree) {
    if (d == 1 && !seed_set.contains(v)) {
      std::ostringstream msg;
      msg << "leaf " << v << " is a Steiner vertex";
      return fail(msg.str());
    }
  }

  return {true, {}};
}

graph::weight_t tree_distance(
    std::span<const graph::weighted_edge> edges) noexcept {
  graph::weight_t total = 0;
  for (const auto& e : edges) total += e.weight;
  return total;
}

}  // namespace dsteiner::core
