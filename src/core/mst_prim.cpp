#include "core/mst_prim.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "graph/edge_list.hpp"
#include "graph/mst.hpp"
#include "util/timer.hpp"

namespace dsteiner::core {

distance_graph_mst compute_distance_graph_mst(
    const cross_edge_map& global_en, std::span<const graph::vertex_id> seeds,
    const runtime::communicator& comm, runtime::phase_metrics& metrics) {
  util::timer wall;
  distance_graph_mst result;
  result.num_g1_vertices = seeds.size();
  result.num_g1_edges = global_en.size();

  // G'1 over seed indices 0..|S|-1; edge weight = bridge distance.
  std::unordered_map<graph::vertex_id, graph::vertex_id> seed_index;
  seed_index.reserve(seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    seed_index.emplace(seeds[i], static_cast<graph::vertex_id>(i));
  }
  graph::edge_list g1(static_cast<graph::vertex_id>(seeds.size()));
  for (const auto& [pair, entry] : global_en) {
    g1.add_undirected_edge(seed_index.at(pair.first), seed_index.at(pair.second),
                           entry.bridge_distance);
  }

  // Prim from seed 0 (the paper's choice); repeated from unreached seeds to
  // produce a forest when seeds span multiple components.
  const graph::csr_graph g1_csr(g1);
  std::vector<bool> covered(seeds.size(), false);
  std::size_t covered_count = 0;
  std::size_t tree_components = 0;
  for (std::size_t root = 0; root < seeds.size(); ++root) {
    if (covered[root]) continue;
    ++tree_components;
    const graph::mst_result mst =
        graph::prim_mst(g1_csr, static_cast<graph::vertex_id>(root));
    covered[root] = true;
    ++covered_count;
    for (const auto& e : mst.edges) {
      for (const graph::vertex_id endpoint : {e.source, e.target}) {
        if (!covered[endpoint]) {
          covered[endpoint] = true;
          ++covered_count;
        }
      }
      const graph::vertex_id s = seeds[e.source];
      const graph::vertex_id t = seeds[e.target];
      result.mst_pairs.emplace_back(std::min(s, t), std::max(s, t));
      result.total_weight += e.weight;
    }
    // prim_mst only spans root's component; the outer loop catches the rest.
  }
  result.spans_all_seeds = tree_components <= 1 && covered_count == seeds.size();
  std::sort(result.mst_pairs.begin(), result.mst_pairs.end());

  // Simulated cost: every rank runs the same sequential Prim concurrently.
  const double s = static_cast<double>(seeds.size());
  const double heap_ops =
      static_cast<double>(result.num_g1_edges) * std::max(1.0, std::log2(std::max(2.0, s)));
  metrics.sim_units += heap_ops * comm.costs().sequential_unit;
  // Result redistribution (the "moving results" component of the MST bar).
  comm.charge_collective(result.mst_pairs.size() * sizeof(seed_pair), metrics);
  metrics.wall_seconds += wall.seconds();
  return result;
}

}  // namespace dsteiner::core
