#include "core/distance_graph.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace dsteiner::core {

namespace {

class cross_edge_handler {
 public:
  cross_edge_handler(const runtime::dist_graph& dgraph,
                     const steiner_state& state,
                     std::vector<cross_edge_map>& per_rank_en,
                     bool probe_both_directions = false)
      : dgraph_(&dgraph), state_(&state), en_(&per_rank_en),
        probe_both_directions_(probe_both_directions) {}

  bool pre_visit(const cross_edge_visitor&, int) { return true; }

  template <typename Emitter>
  bool visit(const cross_edge_visitor& v, int rank, Emitter& out) {
    switch (v.kind) {
      case cross_edge_visitor::kind_t::scan: {
        const graph::vertex_id u = v.routed;
        if (!state_->reached(u)) return true;  // isolated from every seed
        if (dgraph_->is_delegate(u)) {
          cross_edge_visitor relay{u, u, state_->src[u], state_->distance[u],
                                   0, cross_edge_visitor::kind_t::relay};
          for (int q = 0; q < dgraph_->num_ranks(); ++q) out.to_rank(q, relay);
          return true;
        }
        emit_probes(u, state_->src[u], state_->distance[u], rank, out,
                    /*slice_only=*/false);
        return true;
      }
      case cross_edge_visitor::kind_t::relay:
        emit_probes(v.u, v.src_u, v.d_u, rank, out, /*slice_only=*/true);
        return true;
      case cross_edge_visitor::kind_t::probe: {
        const graph::vertex_id vt = v.routed;
        if (!state_->reached(vt)) return true;
        const graph::vertex_id src_v = state_->src[vt];
        if (src_v == v.src_u) return true;  // same cell: not a cross edge
        const seed_pair key{std::min(v.src_u, src_v), std::max(v.src_u, src_v)};
        const cross_edge_entry candidate{
            v.d_u + v.w + state_->distance[vt], std::min(v.u, vt),
            std::max(v.u, vt), v.w};
        auto& local = (*en_)[static_cast<std::size_t>(rank)];
        const auto [it, inserted] = local.emplace(key, candidate);
        if (!inserted) it->second = min_entry(it->second, candidate);
        return true;
      }
    }
    return true;
  }

 private:
  /// Probes each arc (u, vt) with u < vt — one probe per undirected edge.
  /// In both-directions mode (partial rescans) the ordering filter is lifted:
  /// only self-loops are skipped, so edges towards unscanned vertices are
  /// probed regardless of endpoint order.
  template <typename Emitter>
  void emit_probes(graph::vertex_id u, graph::vertex_id src_u,
                   graph::weight_t d_u, int rank, Emitter& out,
                   bool slice_only) {
    const auto probe_arc = [&](graph::vertex_id vt, graph::weight_t w) {
      if (probe_both_directions_ ? u == vt : u >= vt) return;
      out.to_vertex(cross_edge_visitor{vt, u, src_u, d_u, w,
                                       cross_edge_visitor::kind_t::probe});
    };
    if (slice_only) {
      dgraph_->for_each_arc_in_slice(u, rank, probe_arc);
    } else {
      dgraph_->for_each_arc(u, probe_arc);
    }
  }

  const runtime::dist_graph* dgraph_;
  const steiner_state* state_;
  std::vector<cross_edge_map>* en_;
  bool probe_both_directions_;
};

}  // namespace

runtime::phase_metrics find_local_min_edges(
    const runtime::dist_graph& dgraph, const steiner_state& state,
    std::vector<cross_edge_map>& per_rank_en,
    const runtime::engine_config& config) {
  per_rank_en.assign(static_cast<std::size_t>(dgraph.num_ranks()), {});
  cross_edge_handler handler(dgraph, state, per_rank_en);
  // do_traversal(init_all): one scan visitor per vertex, seeded at its owner.
  std::vector<cross_edge_visitor> initial;
  initial.reserve(dgraph.graph().num_vertices());
  for (graph::vertex_id u = 0; u < dgraph.graph().num_vertices(); ++u) {
    initial.push_back(cross_edge_visitor{u});
  }
  return runtime::run_visitors(dgraph.parts(), handler, std::move(initial),
                               config);
}

runtime::phase_metrics find_local_min_edges_partial(
    const runtime::dist_graph& dgraph, const steiner_state& state,
    std::span<const graph::vertex_id> vertices,
    std::vector<cross_edge_map>& per_rank_en,
    const runtime::engine_config& config) {
  per_rank_en.assign(static_cast<std::size_t>(dgraph.num_ranks()), {});
  cross_edge_handler handler(dgraph, state, per_rank_en,
                             /*probe_both_directions=*/true);
  std::vector<cross_edge_visitor> initial;
  initial.reserve(vertices.size());
  for (const graph::vertex_id u : vertices) {
    initial.push_back(cross_edge_visitor{u});
  }
  return runtime::run_visitors(dgraph.parts(), handler, std::move(initial),
                               config);
}

std::size_t dense_pair_index(std::size_t i, std::size_t j,
                             std::size_t num_seeds) noexcept {
  assert(i < j && j < num_seeds);
  // Row-major upper triangle: row i starts after i rows of shrinking length.
  return i * (2 * num_seeds - i - 1) / 2 + (j - i - 1);
}

runtime::phase_metrics reduce_global_min_edges(
    const runtime::communicator& comm, std::vector<cross_edge_map>& per_rank_en,
    const global_reduce_options& options) {
  runtime::phase_metrics metrics;
  util::timer wall;
  if (!options.dense) {
    comm.allreduce_map(per_rank_en,
                       [](const cross_edge_entry& a, const cross_edge_entry& b) {
                         return min_entry(a, b);
                       },
                       metrics, options.chunk_items);
    metrics.wall_seconds = wall.seconds();
    return metrics;
  }

  // Dense mode: materialise the (|S| choose 2) buffer of Alg. 3 line 2.
  const std::span<const graph::vertex_id> seeds = options.seeds;
  if (seeds.empty()) {
    throw std::invalid_argument(
        "reduce_global_min_edges: dense mode requires the seed list");
  }
  std::unordered_map<graph::vertex_id, std::size_t> seed_index;
  seed_index.reserve(seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) seed_index.emplace(seeds[i], i);

  const std::size_t slots = seeds.size() * (seeds.size() - 1) / 2;
  std::vector<std::vector<cross_edge_entry>> dense(per_rank_en.size());
  for (std::size_t r = 0; r < per_rank_en.size(); ++r) {
    dense[r].assign(slots, cross_edge_entry{});
    for (const auto& [key, entry] : per_rank_en[r]) {
      const std::size_t i = seed_index.at(key.first);
      const std::size_t j = seed_index.at(key.second);
      const std::size_t slot =
          dense_pair_index(std::min(i, j), std::max(i, j), seeds.size());
      dense[r][slot] = min_entry(dense[r][slot], entry);
    }
  }
  comm.allreduce(dense,
                 [](const cross_edge_entry& a, const cross_edge_entry& b) {
                   return min_entry(a, b);
                 },
                 metrics, options.chunk_items);
  // Rebuild the (now identical) per-rank maps from the reduced buffer.
  for (std::size_t r = 0; r < per_rank_en.size(); ++r) {
    per_rank_en[r].clear();
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      for (std::size_t j = i + 1; j < seeds.size(); ++j) {
        const cross_edge_entry& entry =
            dense[r][dense_pair_index(i, j, seeds.size())];
        if (entry.bridge_distance == graph::k_inf_distance) continue;
        const seed_pair key{std::min(seeds[i], seeds[j]),
                            std::max(seeds[i], seeds[j])};
        per_rank_en[r].emplace(key, entry);
      }
    }
  }
  metrics.wall_seconds = wall.seconds();
  return metrics;
}

}  // namespace dsteiner::core
