// Sequential MST of the distance graph G'1 (paper Alg. 3 line 17).
//
// G'1 has at most (|S| choose 2) edges — orders of magnitude smaller than the
// data graph — so the paper replicates it on every rank and runs a
// *sequential* Prim locally, avoiding both distributed MST and remote memory
// copies. The simulated clock is charged the sequential Prim cost once (all
// ranks compute concurrently) plus a collective charge for moving the result
// into the distributed structures, mirroring the paper's note that the MST
// step time "includes time spent in moving results from the sequential code
// to the distributed data structure".
#pragma once

#include <span>
#include <vector>

#include "core/distance_graph.hpp"
#include "runtime/comm.hpp"
#include "runtime/perf_model.hpp"

namespace dsteiner::core {

struct distance_graph_mst {
  /// Cell pairs (canonical seed-id pairs) kept by the MST G'2.
  std::vector<seed_pair> mst_pairs;
  graph::weight_t total_weight = 0;
  bool spans_all_seeds = false;
  std::size_t num_g1_edges = 0;  ///< |E'1|
  std::size_t num_g1_vertices = 0;
};

/// Computes G'2 = MST(G'1) from the globally-reduced EN map. When G'1 is
/// disconnected (seeds in different components) the result is a minimum
/// spanning forest and `spans_all_seeds` is false.
[[nodiscard]] distance_graph_mst compute_distance_graph_mst(
    const cross_edge_map& global_en, std::span<const graph::vertex_id> seeds,
    const runtime::communicator& comm, runtime::phase_metrics& metrics);

}  // namespace dsteiner::core
