// Global edge pruning (paper Alg. 5, EDGE_PRUNING_COLL; Alg. 3 line 18).
//
// Marks every cross-cell edge "deleted" except those whose cell pair was
// selected by the MST G'2, then performs the paper's second
// MPI_Allreduce(MPI_MIN) on endpoint ids so exactly one bridge survives per
// cell pair (multiple bridges with identical distance can tie; the
// (distance, u, v) order resolves them deterministically).
#pragma once

#include <span>
#include <vector>

#include "core/distance_graph.hpp"
#include "core/mst_prim.hpp"
#include "runtime/comm.hpp"
#include "runtime/perf_model.hpp"

namespace dsteiner::core {

/// Prunes per-rank EN maps down to the MST-selected pairs and charges the
/// uniqueness collective. Returns the pruning-phase metrics.
[[nodiscard]] runtime::phase_metrics prune_cross_edges(
    const runtime::communicator& comm,
    std::vector<cross_edge_map>& per_rank_en,
    std::span<const seed_pair> mst_pairs);

}  // namespace dsteiner::core
