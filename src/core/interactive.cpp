#include "core/interactive.hpp"

#include <stdexcept>
#include <utility>

#include "service/steiner_service.hpp"

namespace dsteiner::core {

exploration_session::exploration_session(graph::csr_graph graph,
                                         solver_config config)
    : config_(config) {
  // Interactive editing routinely disconnects seeds; return forests instead
  // of throwing mid-session.
  config_.allow_disconnected_seeds = true;
  replace_graph(std::move(graph));
}

exploration_session::~exploration_session() = default;

const graph::csr_graph& exploration_session::graph() const noexcept {
  return service_->graph();
}

void exploration_session::replace_graph(graph::csr_graph next) {
  service::service_config service_config;
  service_config.solver = config_;
  // One user, one in-flight query: a single worker keeps edits ordered while
  // still buying the service's cache and warm-start repair. A graph edit
  // changes the fingerprint, so a fresh service (empty cache) is correct.
  service_config.exec.num_threads = 1;
  service_config.exec.queue_capacity = 16;
  service_ = std::make_unique<service::steiner_service>(std::move(next),
                                                        service_config);
  invalidate();
}

bool exploration_session::add_seed(graph::vertex_id v) {
  if (v >= graph().num_vertices()) {
    throw std::out_of_range("exploration_session: seed id out of range");
  }
  if (!seeds_.insert(v).second) return false;
  invalidate();
  return true;
}

bool exploration_session::remove_seed(graph::vertex_id v) {
  if (seeds_.erase(v) == 0) return false;
  invalidate();
  return true;
}

void exploration_session::set_seeds(std::span<const graph::vertex_id> seeds) {
  seeds_.clear();
  for (const graph::vertex_id v : seeds) {
    if (v >= graph().num_vertices()) {
      throw std::out_of_range("exploration_session: seed id out of range");
    }
    seeds_.insert(v);
  }
  invalidate();
}

void exploration_session::clear_seeds() {
  seeds_.clear();
  invalidate();
}

void exploration_session::filter_edges_above(graph::weight_t cutoff) {
  const graph::csr_graph& g = graph();
  graph::edge_list kept;
  kept.set_num_vertices(g.num_vertices());
  for (graph::vertex_id u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto wts = g.weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (u < nbrs[i] && wts[i] <= cutoff) {
        kept.add_undirected_edge(u, nbrs[i], wts[i]);
      }
    }
  }
  replace_graph(graph::csr_graph(kept));
}

void exploration_session::set_ranks(int num_ranks) {
  if (num_ranks <= 0) {
    throw std::invalid_argument("exploration_session: ranks must be positive");
  }
  if (config_.num_ranks == num_ranks) return;
  config_.num_ranks = num_ranks;
  invalidate();
}

const steiner_result& exploration_session::tree() {
  if (!cached_) {
    service::query q;
    q.seeds.assign(seeds_.begin(), seeds_.end());
    q.config = config_;  // per-query override tracks set_ranks edits
    auto qr = service_->solve(std::move(q));
    last_kind_ = qr.kind;
    if (qr.kind != service::solve_kind::cache_hit) ++recomputes_;
    cached_ = std::move(qr.result);
  }
  return *cached_;
}

}  // namespace dsteiner::core
