#include "core/interactive.hpp"

#include <stdexcept>

namespace dsteiner::core {

exploration_session::exploration_session(graph::csr_graph graph,
                                         solver_config config)
    : graph_(std::move(graph)), config_(config) {
  // Interactive editing routinely disconnects seeds; return forests instead
  // of throwing mid-session.
  config_.allow_disconnected_seeds = true;
}

bool exploration_session::add_seed(graph::vertex_id v) {
  if (v >= graph_.num_vertices()) {
    throw std::out_of_range("exploration_session: seed id out of range");
  }
  if (!seeds_.insert(v).second) return false;
  invalidate();
  return true;
}

bool exploration_session::remove_seed(graph::vertex_id v) {
  if (seeds_.erase(v) == 0) return false;
  invalidate();
  return true;
}

void exploration_session::set_seeds(std::span<const graph::vertex_id> seeds) {
  seeds_.clear();
  for (const graph::vertex_id v : seeds) {
    if (v >= graph_.num_vertices()) {
      throw std::out_of_range("exploration_session: seed id out of range");
    }
    seeds_.insert(v);
  }
  invalidate();
}

void exploration_session::clear_seeds() {
  seeds_.clear();
  invalidate();
}

void exploration_session::filter_edges_above(graph::weight_t cutoff) {
  graph::edge_list kept;
  kept.set_num_vertices(graph_.num_vertices());
  for (graph::vertex_id u = 0; u < graph_.num_vertices(); ++u) {
    const auto nbrs = graph_.neighbors(u);
    const auto wts = graph_.weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (u < nbrs[i] && wts[i] <= cutoff) {
        kept.add_undirected_edge(u, nbrs[i], wts[i]);
      }
    }
  }
  graph_ = graph::csr_graph(kept);
  invalidate();
}

void exploration_session::set_ranks(int num_ranks) {
  if (num_ranks <= 0) {
    throw std::invalid_argument("exploration_session: ranks must be positive");
  }
  if (config_.num_ranks == num_ranks) return;
  config_.num_ranks = num_ranks;
  invalidate();
}

const steiner_result& exploration_session::tree() {
  if (!cached_) {
    const std::vector<graph::vertex_id> seed_list(seeds_.begin(), seeds_.end());
    cached_ = solve_steiner_tree(graph_, seed_list, config_);
    ++recomputes_;
  }
  return *cached_;
}

}  // namespace dsteiner::core
