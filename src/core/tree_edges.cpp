#include "core/tree_edges.hpp"

#include <algorithm>
#include <cassert>

namespace dsteiner::core {

namespace {

class tree_edge_handler {
 public:
  tree_edge_handler(const runtime::dist_graph& dgraph,
                    const steiner_state& state,
                    std::vector<std::vector<graph::weighted_edge>>& per_rank_es)
      : dgraph_(&dgraph),
        state_(&state),
        es_(&per_rank_es),
        in_tree_(dgraph.graph().num_vertices(), 0) {}

  bool pre_visit(const tree_edge_visitor& v, int) {
    // Arrival check: a walk into an already-collected vertex carries no new
    // work (its chain to the seed is already in ES).
    return in_tree_[v.vj] == 0;
  }

  template <typename Emitter>
  bool visit(const tree_edge_visitor& v, int rank, Emitter& out) {
    const graph::vertex_id vj = v.vj;
    if (in_tree_[vj] != 0) return false;  // raced with another walk this round
    in_tree_[vj] = 1;
    if (vj == state_->src[vj]) return true;  // reached the cell's seed
    const graph::vertex_id p = state_->pred[vj];
    assert(p != graph::k_no_vertex);
    // The arc (vj -> pred) lives in vj's adjacency, so its weight is local.
    const auto w = dgraph_->graph().edge_weight(vj, p);
    assert(w.has_value());
    (*es_)[static_cast<std::size_t>(rank)].push_back(
        {std::min(p, vj), std::max(p, vj), *w});
    // Alg. 6 lines 12-13: continue the walk only while pred is not the seed.
    if (p != state_->src[vj]) out.to_vertex(tree_edge_visitor{p});
    return true;
  }

 private:
  const runtime::dist_graph* dgraph_;
  const steiner_state* state_;
  std::vector<std::vector<graph::weighted_edge>>* es_;
  // Byte-per-vertex, not vector<bool>: under the threaded engine each rank's
  // worker flips only its owned vertices, and bit-packing would make
  // neighbouring vertices on different workers share a byte (a data race).
  std::vector<std::uint8_t> in_tree_;
};

}  // namespace

runtime::phase_metrics collect_tree_edges(
    const runtime::dist_graph& dgraph, const steiner_state& state,
    const cross_edge_map& pruned_en,
    std::vector<std::vector<graph::weighted_edge>>& per_rank_es,
    const runtime::engine_config& config) {
  per_rank_es.assign(static_cast<std::size_t>(dgraph.num_ranks()), {});
  tree_edge_handler handler(dgraph, state, per_rank_es);

  // Deterministic seeding order: sort the pruned bridges by cell pair.
  std::vector<std::pair<seed_pair, cross_edge_entry>> bridges(pruned_en.begin(),
                                                              pruned_en.end());
  std::sort(bridges.begin(), bridges.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<tree_edge_visitor> initial;
  initial.reserve(bridges.size() * 2);
  for (const auto& [pair, entry] : bridges) {
    // Alg. 6 lines 3-4: the cross edge itself joins ES at u's home partition.
    per_rank_es[static_cast<std::size_t>(dgraph.owner(entry.u))].push_back(
        {entry.u, entry.v, entry.edge_weight});
    initial.push_back(tree_edge_visitor{entry.u});
    initial.push_back(tree_edge_visitor{entry.v});
  }
  return runtime::run_visitors(dgraph.parts(), handler, std::move(initial),
                               config);
}

}  // namespace dsteiner::core
