#include "core/warm_start.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "core/solver_detail.hpp"
#include "core/voronoi.hpp"
#include "runtime/comm.hpp"
#include "runtime/dist_graph.hpp"
#include "util/hash.hpp"

namespace dsteiner::core {

steiner_result solve_steiner_tree_capture(
    const graph::csr_graph& graph, std::span<const graph::vertex_id> seeds,
    const solver_config& config, solve_artifacts& capture) {
  return detail::solve_cold(graph, seeds, config, &capture);
}

std::vector<graph::vertex_id> canonicalize_seeds(
    const graph::csr_graph& graph, std::span<const graph::vertex_id> seeds) {
  return detail::dedup_seeds(graph, seeds);
}

std::vector<graph::vertex_id> canonicalize_seeds(
    graph::vertex_id num_vertices, std::span<const graph::vertex_id> seeds) {
  return detail::dedup_seeds(num_vertices, seeds);
}

seed_delta compute_seed_delta(std::span<const graph::vertex_id> donor,
                              std::span<const graph::vertex_id> target) {
  seed_delta delta;
  std::set_difference(target.begin(), target.end(), donor.begin(), donor.end(),
                      std::back_inserter(delta.added));
  std::set_difference(donor.begin(), donor.end(), target.begin(), target.end(),
                      std::back_inserter(delta.removed));
  return delta;
}

namespace {

using edge_key = std::pair<graph::vertex_id, graph::vertex_id>;

edge_key key_of(graph::vertex_id a, graph::vertex_id b) noexcept {
  return a < b ? edge_key{a, b} : edge_key{b, a};
}

/// Shared repair core behind the seed-delta and edge-delta warm starts:
/// starts from a converged donor labelling, resets exactly the regions the
/// deltas invalidate, re-relaxes from the injected frontiers, and rebuilds
/// phase 2 incrementally over the affected cells. `expected_fingerprint` is
/// the structural fingerprint of the graph the donor was solved on — the
/// target graph itself for pure seed deltas, the parent epoch's CSR for edge
/// deltas.
steiner_result repair_solve(const graph::csr_graph& graph,
                            std::span<const graph::vertex_id> seeds,
                            const solve_artifacts& prev,
                            std::uint64_t expected_fingerprint,
                            std::span<const graph::applied_edge_edit> edits,
                            const solver_config& config,
                            solve_artifacts* capture,
                            warm_start_stats* stats_out) {
  if (prev.empty() || prev.graph_fingerprint != expected_fingerprint) {
    throw std::invalid_argument(
        "solve_steiner_tree_warm: donor artifacts do not match the graph");
  }
  if (prev.state.distance.size() != graph.num_vertices()) {
    throw std::invalid_argument(
        "solve_steiner_tree_warm: donor vertex set differs from the graph");
  }

  steiner_result result;
  if (config.budget != nullptr) config.budget->check();
  const std::vector<graph::vertex_id> seed_list =
      detail::dedup_seeds(graph, seeds);
  result.num_seeds = seed_list.size();
  result.memory.graph_bytes = graph.memory_bytes();
  warm_start_stats stats;
  stats.edge_edits = edits.size();
  if (seed_list.size() <= 1) {
    if (stats_out != nullptr) *stats_out = stats;
    return result;
  }

  const seed_delta delta = compute_seed_delta(prev.seeds, seed_list);
  stats.added_seeds = delta.added.size();
  stats.removed_seeds = delta.removed.size();

  const runtime::dist_graph_config dconfig{
      config.num_ranks, config.scheme, config.use_delegates,
      config.delegate_threshold};
  const runtime::dist_graph dgraph(graph, dconfig);
  result.delegate_count = dgraph.delegate_count();
  result.memory.partition_bytes = dgraph.memory_bytes();

  const detail::engine_context context(config);
  const runtime::engine_config& engine = context.config;
  // Pool handoff mirrors solve_cold: collectives run between engine phases,
  // so the per-solve worker pool is idle and can speed the allreduce fan-out.
  const runtime::communicator comm(config.num_ranks, config.costs, engine.pool);
  comm.reset_peak_buffer();

  // Step 1 (repair): start from the donor labelling, reset invalidated
  // regions, re-enter them from their boundary, bootstrap added seeds and
  // inject improvement frontiers across lowered edges.
  steiner_state state = prev.state;
  const graph::vertex_id n = graph.num_vertices();

  std::vector<char> is_reset(n, 0);
  std::vector<graph::vertex_id> reset_list;
  const auto reset_vertex = [&](graph::vertex_id v) {
    state.distance[v] = graph::k_inf_distance;
    state.src[v] = graph::k_no_vertex;
    state.pred[v] = graph::k_no_vertex;
    is_reset[v] = 1;
    reset_list.push_back(v);
  };

  // 1a. Removed seeds: reset their whole cells (pred chains never leave a
  // cell, so no outside vertex references them).
  if (!delta.removed.empty()) {
    const std::unordered_set<graph::vertex_id> removed(delta.removed.begin(),
                                                       delta.removed.end());
    for (graph::vertex_id v = 0; v < n; ++v) {
      if (state.src[v] != graph::k_no_vertex && removed.contains(state.src[v])) {
        reset_vertex(v);
      }
    }
  }

  // 1b. Raised/disabled edges: any vertex whose donor shortest-path witness
  // crosses one has a stale (now unachievable) label. The witness of v is
  // its pred chain, so the invalidated set is the union of pred-subtrees
  // hanging off the modified arcs; reset it and re-enter from the boundary
  // exactly like a removed cell. (Conservative: a raised edge that is still
  // on a shortest path resets and rebuilds to the same labels.)
  std::unordered_set<edge_key, util::pair_hash> raised;
  for (const graph::applied_edge_edit& e : edits) {
    if (e.raised()) raised.insert(key_of(e.u, e.v));
  }
  if (!raised.empty()) {
    // Pred-tree children lists over the donor labelling (reset cells are
    // self-contained and already cleared; their members just never match).
    std::vector<std::vector<graph::vertex_id>> children(n);
    for (graph::vertex_id v = 0; v < n; ++v) {
      const graph::vertex_id p = prev.state.pred[v];
      if (p != graph::k_no_vertex && p != v) children[p].push_back(v);
    }
    std::vector<graph::vertex_id> stack;
    for (graph::vertex_id v = 0; v < n; ++v) {
      const graph::vertex_id p = prev.state.pred[v];
      if (is_reset[v] != 0 || p == graph::k_no_vertex || p == v) continue;
      if (raised.contains(key_of(p, v))) stack.push_back(v);
    }
    while (!stack.empty()) {
      const graph::vertex_id v = stack.back();
      stack.pop_back();
      if (is_reset[v] != 0) continue;
      reset_vertex(v);
      ++stats.damaged_vertices;
      for (const graph::vertex_id c : children[v]) {
        if (is_reset[c] == 0) stack.push_back(c);
      }
    }
  }
  stats.reset_vertices = reset_list.size();

  std::vector<voronoi_visitor> initial;
  initial.reserve(delta.added.size() + reset_list.size());
  for (const graph::vertex_id s : delta.added) {
    initial.push_back(voronoi_visitor{s, s, s, 0});
  }
  // Boundary re-entry: the graph is symmetric, so a reset vertex's adjacency
  // enumerates exactly the arcs entering the reset region from outside —
  // with the *target* graph's weights, so repaired labels are born correct.
  for (const graph::vertex_id v : reset_list) {
    const auto nbrs = graph.neighbors(v);
    const auto wts = graph.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const graph::vertex_id u = nbrs[i];
      if (!state.reached(u)) continue;  // also inside the reset region
      initial.push_back(
          voronoi_visitor{v, u, state.src[u], state.distance[u] + wts[i]});
    }
  }
  // Lowered/enabled edges between two live vertices: neither endpoint is
  // reset, so boundary re-entry never probes the edge — inject both
  // directions explicitly. (Later improvements re-scatter on their own.)
  for (const graph::applied_edge_edit& e : edits) {
    if (!e.lowered()) continue;
    const std::optional<graph::weight_t> w = graph.edge_weight(e.u, e.v);
    if (!w) continue;  // defensive: lowered() implies presence
    if (state.reached(e.u)) {
      initial.push_back(voronoi_visitor{e.v, e.u, state.src[e.u],
                                        state.distance[e.u] + *w});
    }
    if (state.reached(e.v)) {
      initial.push_back(voronoi_visitor{e.u, e.v, state.src[e.v],
                                        state.distance[e.v] + *w});
    }
  }
  {
    detail::phase_span span(config.trace, runtime::phase_names::voronoi,
                            config.costs);
    auto metrics = repair_voronoi_cells(dgraph, std::move(initial), state, engine);
    result.phases.phase(runtime::phase_names::voronoi) = metrics;
    span.close(metrics);
  }
  result.memory.state_bytes = state.memory_bytes() + n / 8;

  // Affected cells: any cell that gained or lost a member or whose labels
  // moved, plus the delta seeds, plus every cell holding a modified-edge
  // endpoint (its minimum bridge may have changed even when no label did).
  // Only these can contribute distance-graph entries that differ from the
  // donor's.
  std::unordered_set<graph::vertex_id> affected(delta.added.begin(),
                                                delta.added.end());
  affected.insert(delta.removed.begin(), delta.removed.end());
  const auto mark_cell = [&affected](graph::vertex_id cell) {
    if (cell != graph::k_no_vertex) affected.insert(cell);
  };
  for (const graph::applied_edge_edit& e : edits) {
    mark_cell(prev.state.src[e.u]);
    mark_cell(prev.state.src[e.v]);
    mark_cell(state.src[e.u]);
    mark_cell(state.src[e.v]);
  }
  std::size_t changed = 0;
  for (graph::vertex_id v = 0; v < n; ++v) {
    if (state.tuple_of(v) == prev.state.tuple_of(v)) continue;
    ++changed;
    mark_cell(prev.state.src[v]);
    mark_cell(state.src[v]);
  }
  stats.changed_vertices = changed;
  stats.affected_cells = affected.size();

  // Step 2a (incremental): rescan only members of affected cells.
  std::vector<graph::vertex_id> scan;
  for (graph::vertex_id v = 0; v < n; ++v) {
    if (state.src[v] != graph::k_no_vertex && affected.contains(state.src[v])) {
      scan.push_back(v);
    }
  }
  stats.rescanned_vertices = scan.size();
  std::vector<cross_edge_map> per_rank_en;
  {
    detail::phase_span span(config.trace, runtime::phase_names::local_min_edge,
                            config.costs);
    auto metrics =
        find_local_min_edges_partial(dgraph, state, scan, per_rank_en, engine);
    result.phases.phase(runtime::phase_names::local_min_edge) = metrics;
    span.close(metrics);
  }

  // Step 2b: global reduction over the rescanned entries only (off-engine:
  // checkpoint at the boundary).
  if (config.budget != nullptr) config.budget->check();
  {
    detail::phase_span span(config.trace, runtime::phase_names::global_min_edge,
                            config.costs);
    global_reduce_options options;
    options.dense = config.dense_distance_graph;
    options.seeds = seed_list;
    options.chunk_items = config.allreduce_chunk_items;
    auto metrics = reduce_global_min_edges(comm, per_rank_en, options);
    result.phases.phase(runtime::phase_names::global_min_edge) = metrics;
    span.close(metrics);
  }

  // Reuse donor entries between two unaffected cells: their membership and
  // labels are untouched and a modified edge's endpoints always lie in
  // affected cells, so their minimum bridge is unchanged. (Every rank
  // already holds the donor's reduced EN — allreduce semantics — so this
  // merge moves no data and charges nothing.)
  for (const auto& [key, entry] : prev.global_en) {
    if (affected.contains(key.first) || affected.contains(key.second)) continue;
    ++stats.retained_entries;
    for (auto& local : per_rank_en) {
      const auto [it, inserted] = local.emplace(key, entry);
      if (!inserted) it->second = min_entry(it->second, entry);
    }
  }

  // Steps 3-6 are shared with the cold path.
  detail::finish_solve(graph, dgraph, comm, engine, config, seed_list, state,
                       per_rank_en, result, capture);
  if (stats_out != nullptr) *stats_out = stats;
  return result;
}

}  // namespace

steiner_result solve_steiner_tree_warm(const graph::csr_graph& graph,
                                       std::span<const graph::vertex_id> seeds,
                                       const solve_artifacts& prev,
                                       const solver_config& config,
                                       solve_artifacts* capture,
                                       warm_start_stats* stats_out) {
  return repair_solve(graph, seeds, prev, graph.fingerprint(), {}, config,
                      capture, stats_out);
}

steiner_result solve_steiner_tree_edge_warm(
    const graph::csr_graph& graph, std::span<const graph::vertex_id> seeds,
    const solve_artifacts& prev, std::uint64_t donor_graph_fingerprint,
    std::span<const graph::applied_edge_edit> edits, const solver_config& config,
    solve_artifacts* capture, warm_start_stats* stats_out) {
  return repair_solve(graph, seeds, prev, donor_graph_fingerprint, edits,
                      config, capture, stats_out);
}

}  // namespace dsteiner::core
