// The distributed 2-approximation Steiner minimal tree solver — the paper's
// primary contribution (Alg. 2 / Alg. 3).
//
// Pipeline (each step maps to a phase in the Figs. 3-6 breakdown):
//   1. VORONOI_CELL_ASYNC        — asynchronous multi-cell Bellman-Ford
//   2. LOCAL_MIN_DIST_EDGE_ASYNC — per-partition min cross-cell bridges
//   3. GLOBAL_MIN_DIST_EDGE_COLL — Allreduce(MIN) -> distance graph G'1
//   4. MST_SEQUENTIAL            — replicated sequential Prim -> G'2
//   5. EDGE_PRUNING_COLL         — keep only MST-selected bridges
//   6. TREE_EDGE_ASYNC           — pred walk-backs -> Steiner tree GS
//
// Guarantee: D(GS)/Dmin(G) <= 2(1 - 1/l) where l is the minimum number of
// leaves in any Steiner minimal tree (Mehlhorn's proof, §II-III). The output
// is deterministic — independent of queue policy, execution mode, rank count
// and partitioning — because all state updates are lexicographic minima.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/metrics.hpp"
#include "core/steiner_state.hpp"
#include "graph/csr_graph.hpp"
#include "obs/cost_model.hpp"
#include "graph/types.hpp"
#include "runtime/dist_graph.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/perf_model.hpp"
#include "runtime/visitor_engine.hpp"

namespace dsteiner::obs {
class query_trace;
}  // namespace dsteiner::obs

namespace dsteiner::core {

struct solve_artifacts;

struct solver_config {
  /// Simulated MPI processes (the paper runs 16 per node).
  int num_ranks = 16;
  runtime::queue_policy policy = runtime::queue_policy::priority;
  runtime::execution_mode mode = runtime::execution_mode::async;
  runtime::partition_scheme scheme = runtime::partition_scheme::hash;
  bool use_delegates = true;
  std::uint64_t delegate_threshold = 1024;
  /// Visitors a rank drains per scheduling round.
  std::size_t batch_size = 64;
  /// Worker threads for execution_mode::parallel_threads (ignored by the
  /// other modes): 0 = one per hardware thread, capped at num_ranks. The
  /// solve output and simulated metrics are invariant in this value — only
  /// wall time changes (the threaded engine's determinism guarantee).
  std::size_t num_threads = 0;
  runtime::cost_model costs{};

  /// Phase-1 scheduling: strict priority order (default; bit-identical
  /// metrics across engines/thread counts) or delta-stepping buckets
  /// (faster cold solves, same output tree, schedule-dependent metrics).
  /// Only phase 1 is ever bucketed; all other phases stay strict.
  runtime::growth_mode growth = runtime::growth_mode::strict_order;
  /// Bucket width for bucketed growth; 0 resolves to graph::heuristic_delta
  /// (average arc weight) at solve time.
  std::uint64_t bucket_delta = 0;
  /// Degree threshold above which bucketed growth splits a non-delegate
  /// vertex's scatter into edge tiles of this width; 0 resolves to
  /// max(64, 4 * average degree) at solve time.
  std::uint64_t tile_threshold = 0;

  /// Distance-graph reduction: sparse map merge (default) or the paper's
  /// dense (|S| choose 2) buffer; either path optionally chunked (§V-F).
  bool dense_distance_graph = false;
  std::size_t allreduce_chunk_items = 0;

  /// When false (default), seeds in different components raise
  /// std::runtime_error; when true the solver returns a Steiner forest and
  /// flags spans_all_seeds = false.
  bool allow_disconnected_seeds = false;

  /// Run validate_steiner_tree on the output (cheap; asserts invariants).
  bool validate = false;

  /// Distributed-runtime telemetry plane (runtime/net/): when true, every
  /// rank emits one telemetry frame per superstep boundary to rank 0, which
  /// merges all ranks' samples into net_solve_report::cluster. Pure
  /// observation — nothing is ever read back, so telemetry-on and -off
  /// distributed solves are bit-identical (under test in test_net); only
  /// traffic totals move, by the telemetry frames' own bytes. Excluded from
  /// the service's config hash for the same reason as `trace`.
  bool net_telemetry = true;

  /// Cooperative cancellation/deadline budget, polled at solver checkpoints
  /// (engine rounds / superstep barriers and phase boundaries); a tripped
  /// budget unwinds the solve via util::operation_cancelled with all partial
  /// work discarded. Null = never stops. QoS only — it cannot change the
  /// output tree, so it does not participate in the service's config hash.
  /// The pointee must outlive the solve (the service stores it in the
  /// request's handle state).
  const util::run_budget* budget = nullptr;

  /// Per-query span trace (src/obs/). When non-null, solver phases open
  /// spans and the engines record per-superstep samples into the trace's
  /// probe. Pure observation — the solver never reads anything back from
  /// the trace, so traced and untraced solves are bit-identical. Excluded
  /// from the service's config hash for the same reason as `budget`. Must
  /// outlive the solve; the solve is the sole span writer while it runs.
  obs::query_trace* trace = nullptr;
};

/// How phase 1 actually ran: the resolved growth knobs and the bucket/tile
/// work they produced. All zeros under strict order.
struct growth_stats {
  runtime::growth_mode mode = runtime::growth_mode::strict_order;
  std::uint64_t delta = 0;            ///< resolved bucket width
  std::uint64_t tile_threshold = 0;   ///< resolved tile width
  std::uint64_t buckets_processed = 0;
  std::uint64_t tiles_emitted = 0;
  std::uint64_t bucket_pruned = 0;    ///< visitors dropped by bucket pruning
};

struct steiner_result {
  std::vector<graph::weighted_edge> tree_edges;  ///< GS, canonical u < v per edge
  graph::weight_t total_distance = 0;            ///< D(GS)
  std::size_t num_seeds = 0;                     ///< |S| after deduplication
  bool spans_all_seeds = true;

  runtime::phase_breakdown phases;  ///< per-phase wall/simulated time + messages
  memory_accounting memory;

  std::size_t distance_graph_edges = 0;  ///< |E'1|
  std::uint64_t delegate_count = 0;      ///< high-degree vertices split across ranks
  growth_stats growth;                   ///< phase-1 scheduling telemetry

  [[nodiscard]] double wall_seconds() const { return phases.total().wall_seconds; }
  [[nodiscard]] std::uint64_t total_messages() const {
    return phases.total().messages_total();
  }
};

/// Runs Alg. 3 on `graph` for `seeds`. Seeds are deduplicated; each must be a
/// valid vertex id. |S| <= 1 yields an empty tree.
[[nodiscard]] steiner_result solve_steiner_tree(
    const graph::csr_graph& graph, std::span<const graph::vertex_id> seeds,
    const solver_config& config = {});

/// Cross-query assists for a cold solve (the service's shared distance
/// substrate, service/distshare/). Both members are *output-neutral by
/// construction* — fragments only pre-seed state with achievable labels,
/// bounds only drop provably non-improving visitors — so, like
/// solver_config::budget, they do not participate in the service's config
/// hash and assisted/unassisted solves share one cache entry. The spans must
/// outlive the solve.
struct solve_assists {
  /// Settled per-seed fragments from earlier solves on the *same* graph
  /// content. Fragments whose seed is not in this solve's canonical seed set
  /// are ignored.
  std::span<const sssp_fragment_view> fragments;
  /// Per-vertex upper bound on min_s d1(s, v) for this exact graph and seed
  /// set (landmark oracle). Empty disables pruning.
  std::span<const graph::weight_t> prune_upper_bound;

  [[nodiscard]] bool empty() const noexcept {
    return fragments.empty() && prune_upper_bound.empty();
  }
};

/// How much phase-1 work the assists actually absorbed.
struct assist_stats {
  std::size_t fragments_injected = 0;   ///< fragments whose seed matched
  std::size_t preseeded_vertices = 0;   ///< labels adopted before relaxation
  std::size_t frontier_visitors = 0;    ///< initial visitors injected
  std::uint64_t pruned_visitors = 0;    ///< admission drops by the bound
};

/// Cold solve pre-seeded from `assists` — bit-identical to
/// solve_steiner_tree(graph, seeds, config); only the phase-1 work (and
/// therefore the phase metrics) shrinks. `capture`, when non-null, receives
/// warm-start artifacts exactly as solve_steiner_tree_capture would.
[[nodiscard]] steiner_result solve_steiner_tree_assisted(
    const graph::csr_graph& graph, std::span<const graph::vertex_id> seeds,
    const solve_assists& assists, const solver_config& config = {},
    solve_artifacts* capture = nullptr, assist_stats* stats = nullptr);

/// Admission-time feature extraction for the learned admission cost model
/// (obs::cost_model): fills the analytic features knowable before a solve
/// runs — |S|, graph scale, their interaction terms, and the engine
/// mode/worker grant resolved exactly as engine_context will resolve them.
/// O(1), no CSR access (callers pass epoch header counts, never materialize
/// an overlay for this). Service-side features (seed spread, overlay
/// fraction, warm/fragment state) are filled in by the caller.
[[nodiscard]] obs::query_features extract_query_features(
    graph::vertex_id num_vertices, std::uint64_t num_arcs,
    std::size_t seed_count, const solver_config& config);

}  // namespace dsteiner::core
