#include "core/steiner_solver.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "core/distance_graph.hpp"
#include "core/mst_prim.hpp"
#include "core/pruning.hpp"
#include "core/solver_detail.hpp"
#include "core/steiner_state.hpp"
#include "core/tree_edges.hpp"
#include "core/validation.hpp"
#include "core/voronoi.hpp"
#include "core/warm_start.hpp"
#include "graph/delta_stepping.hpp"
#include "runtime/comm.hpp"
#include "util/timer.hpp"

namespace dsteiner::core {

namespace detail {

std::vector<graph::vertex_id> dedup_seeds(
    graph::vertex_id num_vertices, std::span<const graph::vertex_id> seeds) {
  std::unordered_set<graph::vertex_id> unique;
  std::vector<graph::vertex_id> result;
  result.reserve(seeds.size());
  for (const graph::vertex_id s : seeds) {
    if (s >= num_vertices) {
      throw std::out_of_range("solve_steiner_tree: seed id out of range");
    }
    if (unique.insert(s).second) result.push_back(s);
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<graph::vertex_id> dedup_seeds(
    const graph::csr_graph& graph, std::span<const graph::vertex_id> seeds) {
  return dedup_seeds(graph.num_vertices(), seeds);
}

void finish_solve(const graph::csr_graph& graph,
                  const runtime::dist_graph& dgraph,
                  const runtime::communicator& comm,
                  const runtime::engine_config& engine,
                  const solver_config& config,
                  std::span<const graph::vertex_id> seed_list,
                  const steiner_state& state,
                  std::vector<cross_edge_map>& per_rank_en,
                  steiner_result& result, solve_artifacts* capture) {
  // Checkpoint between the reduction and the sequential tail: phases 3-5 run
  // without an engine (no per-round poll), so the boundaries are where a
  // cancelled or expired solve stops.
  if (config.budget != nullptr) config.budget->check();
  result.distance_graph_edges = per_rank_en.front().size();
  {
    std::uint64_t en_bytes = 0;
    for (const auto& local : per_rank_en) {
      en_bytes += local.size() * (sizeof(seed_pair) + sizeof(cross_edge_entry));
    }
    result.memory.distance_graph_bytes = en_bytes;
  }
  // Capture G'1 before pruning shrinks the per-rank maps in place.
  if (capture != nullptr) capture->global_en = per_rank_en.front();

  // Step 3: sequential MST of G'1, replicated (line 17).
  distance_graph_mst mst;
  {
    phase_span span(config.trace, runtime::phase_names::mst, config.costs);
    runtime::phase_metrics metrics;
    mst = compute_distance_graph_mst(per_rank_en.front(), seed_list, comm,
                                     metrics);
    result.phases.phase(runtime::phase_names::mst) = metrics;
    span.close(metrics);
  }
  if (config.budget != nullptr) config.budget->check();
  result.spans_all_seeds = mst.spans_all_seeds;
  if (!mst.spans_all_seeds && !config.allow_disconnected_seeds) {
    throw std::runtime_error(
        "solve_steiner_tree: seeds are not mutually reachable "
        "(set allow_disconnected_seeds to obtain a Steiner forest)");
  }

  // Step 4: global edge pruning (line 18).
  {
    phase_span span(config.trace, runtime::phase_names::pruning, config.costs);
    auto metrics = prune_cross_edges(comm, per_rank_en, mst.mst_pairs);
    result.phases.phase(runtime::phase_names::pruning) = metrics;
    span.close(metrics);
  }

  // Step 5: Steiner tree edges (line 19) and result assembly (line 20).
  {
    phase_span span(config.trace, runtime::phase_names::tree_edge, config.costs);
    std::vector<std::vector<graph::weighted_edge>> per_rank_es;
    auto metrics =
        collect_tree_edges(dgraph, state, per_rank_en.front(), per_rank_es, engine);
    result.tree_edges = comm.allgather(per_rank_es, metrics);
    // D(GS): one partial sum per rank, reduced (Alg. 3 line 20).
    std::vector<std::vector<graph::weight_t>> partial(
        static_cast<std::size_t>(config.num_ranks),
        std::vector<graph::weight_t>(1, 0));
    for (std::size_t r = 0; r < per_rank_es.size(); ++r) {
      for (const auto& e : per_rank_es[r]) partial[r][0] += e.weight;
    }
    comm.allreduce(partial,
                   [](graph::weight_t a, graph::weight_t b) { return a + b; },
                   metrics);
    result.total_distance = partial.front().front();
    result.phases.phase(runtime::phase_names::tree_edge) = metrics;
    span.close(metrics);
  }
  std::sort(result.tree_edges.begin(), result.tree_edges.end(),
            [](const graph::weighted_edge& a, const graph::weighted_edge& b) {
              return std::tuple{a.source, a.target} < std::tuple{b.source, b.target};
            });
  result.memory.tree_bytes =
      result.tree_edges.size() * sizeof(graph::weighted_edge);
  result.memory.collective_buffer_bytes = comm.peak_buffer_bytes();
  for (const auto& [name, metrics] : result.phases.by_name()) {
    result.memory.queue_peak_bytes =
        std::max(result.memory.queue_peak_bytes, metrics.queue_peak_bytes);
  }

  if (config.validate && result.spans_all_seeds) {
    const auto check = validate_steiner_tree(graph, seed_list, result.tree_edges);
    if (!check) {
      throw std::logic_error("solve_steiner_tree: invalid output tree: " +
                             check.error);
    }
  }
  if (capture != nullptr) {
    capture->seeds.assign(seed_list.begin(), seed_list.end());
    capture->state = state;
    capture->graph_fingerprint = graph.fingerprint();
  }
}

steiner_result solve_cold(const graph::csr_graph& graph,
                          std::span<const graph::vertex_id> seeds,
                          const solver_config& config,
                          solve_artifacts* capture,
                          const solve_assists& assists,
                          assist_stats* assist_out) {
  steiner_result result;
  if (config.budget != nullptr) config.budget->check();
  const std::vector<graph::vertex_id> seed_list = dedup_seeds(graph, seeds);
  result.num_seeds = seed_list.size();
  result.memory.graph_bytes = graph.memory_bytes();
  if (seed_list.size() <= 1) return result;

  const runtime::dist_graph_config dconfig{
      config.num_ranks, config.scheme, config.use_delegates,
      config.delegate_threshold};
  const runtime::dist_graph dgraph(graph, dconfig);
  result.delegate_count = dgraph.delegate_count();
  result.memory.partition_bytes = dgraph.memory_bytes();

  const engine_context context(config);
  const runtime::engine_config& engine = context.config;
  // The communicator borrows the solve's worker pool (null in async mode) to
  // parallelize the allreduce_map replication fan-out between engine phases.
  const runtime::communicator comm(config.num_ranks, config.costs, engine.pool);
  comm.reset_peak_buffer();

  // Phase-1 scheduling: bucketed growth runs phase 1 (and only phase 1) as
  // bucketed delta-stepping with the knobs resolved here; 0-valued knobs get
  // graph-derived defaults. The landmark oracle's largest upper bound caps the
  // useful priority range: once every open bucket starts above it, nothing
  // left can improve any cell and the engines drain-and-stop.
  runtime::engine_config phase1 = engine;
  if (config.growth == runtime::growth_mode::bucketed) {
    phase1.growth = runtime::growth_mode::bucketed;
    phase1.bucket_delta = config.bucket_delta != 0
                              ? config.bucket_delta
                              : graph::heuristic_delta(graph);
    const std::uint64_t avg_degree =
        graph.num_vertices() == 0 ? 0 : graph.num_arcs() / graph.num_vertices();
    phase1.tile_threshold =
        config.tile_threshold != 0
            ? config.tile_threshold
            : std::max<std::uint64_t>(64, 4 * avg_degree);
    if (!assists.prune_upper_bound.empty()) {
      phase1.priority_limit =
          *std::max_element(assists.prune_upper_bound.begin(),
                            assists.prune_upper_bound.end());
    }
    result.growth.mode = runtime::growth_mode::bucketed;
    result.growth.delta = phase1.bucket_delta;
    result.growth.tile_threshold = phase1.tile_threshold;
  }

  // Step 1: Voronoi cells (Alg. 3 line 12). With assists, the state is
  // pre-seeded from shared fragments (the initial frontier shrinks to the
  // fragment surface) and the admission check drops visitors the landmark
  // bound proves non-improving — same fixed point, less relaxation.
  steiner_state state(graph.num_vertices());
  result.memory.state_bytes = state.memory_bytes() + graph.num_vertices() / 8;
  {
    phase_span span(config.trace, runtime::phase_names::voronoi, config.costs);
    assist_stats astats;
    std::atomic<std::uint64_t> pruned{0};
    std::atomic<std::uint64_t> tiles{0};
    const voronoi_tiling tiling{&tiles};
    runtime::phase_metrics metrics;
    if (assists.empty()) {
      metrics = compute_voronoi_cells(dgraph, seed_list, state, phase1,
                                      voronoi_prune{}, tiling);
    } else {
      std::vector<voronoi_visitor> initial = inject_fragments(
          graph, assists.fragments, seed_list, state, &astats.preseeded_vertices);
      for (const sssp_fragment_view& frag : assists.fragments) {
        if (std::binary_search(seed_list.begin(), seed_list.end(), frag.seed)) {
          ++astats.fragments_injected;
        }
      }
      astats.frontier_visitors = initial.size();
      const voronoi_prune prune{assists.prune_upper_bound, &pruned};
      metrics = repair_voronoi_cells(dgraph, std::move(initial), state, phase1,
                                     prune, tiling);
    }
    if (config.growth == runtime::growth_mode::bucketed) {
      result.growth.buckets_processed = metrics.buckets_processed;
      result.growth.bucket_pruned = metrics.bucket_pruned;
      result.growth.tiles_emitted = tiles.load(std::memory_order_relaxed);
    }
    astats.pruned_visitors = pruned.load(std::memory_order_relaxed);
    if (assist_out != nullptr) *assist_out = astats;
    if (config.trace != nullptr && !assists.empty()) {
      config.trace->add_event("fragments_injected",
                              static_cast<double>(astats.fragments_injected));
      config.trace->add_event("oracle_pruned_visitors",
                              static_cast<double>(astats.pruned_visitors));
    }
    result.phases.phase(runtime::phase_names::voronoi) = metrics;
    span.close(metrics);
  }

  // Step 2a: partition-local min cross-cell edges (line 13).
  std::vector<cross_edge_map> per_rank_en;
  {
    phase_span span(config.trace, runtime::phase_names::local_min_edge,
                    config.costs);
    auto metrics = find_local_min_edges(dgraph, state, per_rank_en, engine);
    result.phases.phase(runtime::phase_names::local_min_edge) = metrics;
    span.close(metrics);
  }

  // Step 2b: global Allreduce(MIN) (line 14). The reduction runs off-engine,
  // so checkpoint at its boundary.
  if (config.budget != nullptr) config.budget->check();
  {
    phase_span span(config.trace, runtime::phase_names::global_min_edge,
                    config.costs);
    global_reduce_options options;
    options.dense = config.dense_distance_graph;
    options.seeds = seed_list;
    options.chunk_items = config.allreduce_chunk_items;
    auto metrics = reduce_global_min_edges(comm, per_rank_en, options);
    result.phases.phase(runtime::phase_names::global_min_edge) = metrics;
    span.close(metrics);
  }

  // Steps 3-6: MST, pruning, tree edges, assembly.
  finish_solve(graph, dgraph, comm, engine, config, seed_list, state,
               per_rank_en, result, capture);
  return result;
}

}  // namespace detail

steiner_result solve_steiner_tree(const graph::csr_graph& graph,
                                  std::span<const graph::vertex_id> seeds,
                                  const solver_config& config) {
  return detail::solve_cold(graph, seeds, config, nullptr);
}

steiner_result solve_steiner_tree_assisted(
    const graph::csr_graph& graph, std::span<const graph::vertex_id> seeds,
    const solve_assists& assists, const solver_config& config,
    solve_artifacts* capture, assist_stats* stats) {
  return detail::solve_cold(graph, seeds, config, capture, assists, stats);
}

obs::query_features extract_query_features(graph::vertex_id num_vertices,
                                           std::uint64_t num_arcs,
                                           std::size_t seed_count,
                                           const solver_config& config) {
  using qf = obs::query_features;
  obs::query_features f;
  const double seeds = static_cast<double>(seed_count);
  const double log_n = std::log2(1.0 + static_cast<double>(num_vertices));
  const double log_m = std::log2(1.0 + static_cast<double>(num_arcs));
  f.x[qf::k_bias] = 1.0;
  f.x[qf::k_seeds] = seeds;
  f.x[qf::k_log_vertices] = log_n;
  f.x[qf::k_log_arcs] = log_m;
  f.x[qf::k_seeds_log_n] = seeds * log_n;
  f.x[qf::k_seeds_sq] = seeds * seeds;
  // Resolve the engine mode and worker grant exactly as engine_context will,
  // so admission-time predictions price the threads the solve actually gets.
  const bool threaded =
      config.mode == runtime::execution_mode::parallel_threads;
  std::size_t workers = 1;
  if (threaded) {
    const std::size_t want =
        config.num_threads != 0
            ? config.num_threads
            : runtime::parallel::worker_pool::default_threads();
    workers = std::min(
        want, static_cast<std::size_t>(std::max(1, config.num_ranks)));
  }
  f.x[qf::k_threaded] = threaded ? 1.0 : 0.0;
  f.x[qf::k_inv_threads] =
      1.0 / static_cast<double>(std::max<std::size_t>(1, workers));
  f.x[qf::k_bucketed] =
      config.growth == runtime::growth_mode::bucketed ? 1.0 : 0.0;
  return f;
}

}  // namespace dsteiner::core
