// Memory accounting for the Fig. 8 experiment: cluster-wide peak usage split
// into the in-memory graph vs. algorithm state (vertex states, communication
// buffers and messages).
#pragma once

#include <cstdint>

namespace dsteiner::core {

struct memory_accounting {
  std::uint64_t graph_bytes = 0;        ///< CSR arrays (the HavoqGT binary graph)
  std::uint64_t state_bytes = 0;        ///< per-vertex src/pred/d1 + in-tree bits
  std::uint64_t partition_bytes = 0;    ///< per-rank bookkeeping (owner lists, delegates)
  std::uint64_t queue_peak_bytes = 0;   ///< max visitor-queue occupancy across phases
  std::uint64_t distance_graph_bytes = 0;  ///< EN maps + G'1 (+ dense buffers)
  std::uint64_t collective_buffer_bytes = 0;  ///< peak per-rank collective buffer
  std::uint64_t tree_bytes = 0;         ///< output ES

  /// Everything except the graph itself (the paper's "Application Runtime"
  /// bar).
  [[nodiscard]] std::uint64_t algorithm_bytes() const noexcept {
    return state_bytes + partition_bytes + queue_peak_bytes +
           distance_graph_bytes + collective_buffer_bytes + tree_bytes;
  }

  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return graph_bytes + algorithm_bytes();
  }
};

}  // namespace dsteiner::core
