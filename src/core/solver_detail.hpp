// Internal pipeline pieces shared by the cold solver (steiner_solver.cpp) and
// the warm-start path (warm_start.cpp). Not part of the public API.
#pragma once

#include <algorithm>
#include <optional>
#include <span>
#include <vector>

#include "core/distance_graph.hpp"
#include "core/steiner_solver.hpp"
#include "core/warm_start.hpp"
#include "obs/trace.hpp"
#include "runtime/comm.hpp"
#include "runtime/dist_graph.hpp"
#include "runtime/parallel/worker_pool.hpp"
#include "runtime/visitor_engine.hpp"

namespace dsteiner::core::detail {

/// Validates, deduplicates and sorts a user seed list. Throws
/// std::out_of_range on ids >= num_vertices.
[[nodiscard]] std::vector<graph::vertex_id> dedup_seeds(
    graph::vertex_id num_vertices, std::span<const graph::vertex_id> seeds);
[[nodiscard]] std::vector<graph::vertex_id> dedup_seeds(
    const graph::csr_graph& graph, std::span<const graph::vertex_id> seeds);

/// Engine configuration plus the persistent worker pool that backs it in
/// parallel_threads mode. One context lives for a whole solve, so every
/// engine phase (Voronoi, local min edge, tree edge) reuses the same
/// threads instead of respawning per phase.
struct engine_context {
  runtime::engine_config config;
  std::optional<runtime::parallel::worker_pool> pool;

  explicit engine_context(const solver_config& solver)
      : config{solver.policy, solver.mode, solver.batch_size, solver.costs} {
    config.budget = solver.budget;  // engines poll the checkpoint per round
    if (solver.trace != nullptr) config.probe = &solver.trace->probe();
    if (solver.mode != runtime::execution_mode::parallel_threads) return;
    const std::size_t want =
        solver.num_threads != 0 ? solver.num_threads
                                : runtime::parallel::worker_pool::default_threads();
    config.num_threads =
        std::min(want, static_cast<std::size_t>(std::max(1, solver.num_ranks)));
    pool.emplace(config.num_threads);
    config.pool = &*pool;
  }

  engine_context(const engine_context&) = delete;
  engine_context& operator=(const engine_context&) = delete;
};

/// Opens a solver-phase span: stamps the probe's phase label (so engine
/// samples taken during the phase carry it) and remembers the start offset.
/// `close(metrics)` records the span with the phase's engine totals and the
/// cost model's simulated-seconds prediction — the per-phase half of the
/// measured-vs-model comparison. No-ops throughout when `trace` is null.
class phase_span {
 public:
  phase_span(obs::query_trace* trace, const char* name,
             const runtime::cost_model& costs) noexcept
      : trace_(trace), name_(name), costs_(&costs) {
    if (trace_ == nullptr) return;
    trace_->probe().set_phase(name_);
    start_ = trace_->now_seconds();
  }

  void close(const runtime::phase_metrics& metrics) noexcept {
    if (trace_ == nullptr) return;
    trace_->close_span(name_, "phase", start_, metrics.rounds,
                       metrics.visitors_processed + metrics.visitors_skipped,
                       metrics.messages_total(),
                       metrics.sim_seconds(*costs_));
    trace_ = nullptr;  // close once
  }

 private:
  obs::query_trace* trace_;
  const char* name_;
  const runtime::cost_model* costs_;
  double start_ = 0.0;
};

/// Full cold solve, optionally capturing warm-start artifacts. `assists`
/// pre-seeds phase 1 from shared SSSP fragments and/or prunes it with oracle
/// upper bounds (both output-neutral; see solve_assists); `assist_out`, when
/// non-null, reports how much work they absorbed.
[[nodiscard]] steiner_result solve_cold(const graph::csr_graph& graph,
                                        std::span<const graph::vertex_id> seeds,
                                        const solver_config& config,
                                        solve_artifacts* capture,
                                        const solve_assists& assists = {},
                                        assist_stats* assist_out = nullptr);

/// Phases 3-6 of Alg. 3 (MST, pruning, tree-edge collection, result
/// assembly), shared between cold and warm solves. `per_rank_en` must hold
/// the globally-reduced EN maps; `state` the converged Voronoi labelling.
/// Fills the remaining phase metrics, the output tree, memory totals, runs
/// optional validation, and captures (seed_list, state, pre-pruning EN) into
/// `capture` when non-null.
void finish_solve(const graph::csr_graph& graph,
                  const runtime::dist_graph& dgraph,
                  const runtime::communicator& comm,
                  const runtime::engine_config& engine,
                  const solver_config& config,
                  std::span<const graph::vertex_id> seed_list,
                  const steiner_state& state,
                  std::vector<cross_edge_map>& per_rank_en,
                  steiner_result& result, solve_artifacts* capture);

}  // namespace dsteiner::core::detail
