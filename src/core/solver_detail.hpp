// Internal pipeline pieces shared by the cold solver (steiner_solver.cpp) and
// the warm-start path (warm_start.cpp). Not part of the public API.
#pragma once

#include <span>
#include <vector>

#include "core/distance_graph.hpp"
#include "core/steiner_solver.hpp"
#include "core/warm_start.hpp"
#include "runtime/comm.hpp"
#include "runtime/dist_graph.hpp"
#include "runtime/visitor_engine.hpp"

namespace dsteiner::core::detail {

/// Validates, deduplicates and sorts a user seed list. Throws
/// std::out_of_range on ids >= |V|.
[[nodiscard]] std::vector<graph::vertex_id> dedup_seeds(
    const graph::csr_graph& graph, std::span<const graph::vertex_id> seeds);

/// Full cold solve, optionally capturing warm-start artifacts.
[[nodiscard]] steiner_result solve_cold(const graph::csr_graph& graph,
                                        std::span<const graph::vertex_id> seeds,
                                        const solver_config& config,
                                        solve_artifacts* capture);

/// Phases 3-6 of Alg. 3 (MST, pruning, tree-edge collection, result
/// assembly), shared between cold and warm solves. `per_rank_en` must hold
/// the globally-reduced EN maps; `state` the converged Voronoi labelling.
/// Fills the remaining phase metrics, the output tree, memory totals, runs
/// optional validation, and captures (seed_list, state, pre-pruning EN) into
/// `capture` when non-null.
void finish_solve(const graph::csr_graph& graph,
                  const runtime::dist_graph& dgraph,
                  const runtime::communicator& comm,
                  const runtime::engine_config& engine,
                  const solver_config& config,
                  std::span<const graph::vertex_id> seed_list,
                  const steiner_state& state,
                  std::vector<cross_edge_map>& per_rank_en,
                  steiner_result& result, solve_artifacts* capture);

}  // namespace dsteiner::core::detail
