// Warm-start recomputation for interactive seed-set edits (§I workflow).
//
// The interactive and service workloads re-query the same graph with seed
// sets that differ by a small add/remove delta. A cold solve re-grows all |S|
// Voronoi cells from scratch; the warm-start path instead *repairs* the
// previous solve:
//
//   - Added seed s: inject s's bootstrap visitor (r=0, t=s, vp=s) over the
//     converged donor labelling. Relaxations only ever decrease the
//     lexicographic (d1, src, pred) tuple, and the fixed point is the unique
//     per-vertex minimum over all seed-to-vertex paths, so repairing from the
//     donor state converges to exactly the cold labelling for S u {s}.
//   - Removed seed t: reset exactly t's cell {v : src(v) = t} to "unreached"
//     (pred chains never leave a cell, so no other vertex references t's
//     cell) and re-enter the region from its boundary: every arc (u, v) with
//     u outside and v inside the reset region injects u's current label.
//
// Phase 2 is rebuilt incrementally: only cells whose labelling or membership
// changed ("affected" cells) can contribute different distance-graph entries,
// so the local scan covers only their members and entries between two
// unaffected cells are reused from the donor. Phases 3-6 (MST, pruning,
// tree-edge collection) run as usual — they are orders of magnitude cheaper
// (Table IV). The result is bit-identical to a cold solve; the savings show
// up in the Voronoi Cell / Local Min Dist. Edge phase metrics.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/distance_graph.hpp"
#include "core/steiner_solver.hpp"
#include "graph/epoch_graph.hpp"

namespace dsteiner::core {

/// Everything a later warm start (or the service result cache) needs from a
/// finished solve. Captured between the global reduction and pruning, so
/// `global_en` is the full distance graph G'1, not the pruned remnant.
struct solve_artifacts {
  std::vector<graph::vertex_id> seeds;  ///< canonical: deduplicated, sorted
  steiner_state state;                  ///< converged Voronoi labelling
  cross_edge_map global_en;             ///< reduced G'1 (pre-pruning)
  /// Fingerprint of the graph these artifacts belong to; a warm start
  /// against any other graph throws rather than repairing stale labels.
  std::uint64_t graph_fingerprint = 0;

  [[nodiscard]] bool empty() const noexcept { return state.distance.empty(); }

  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return seeds.size() * sizeof(graph::vertex_id) + state.memory_bytes() +
           global_en.size() * (sizeof(seed_pair) + sizeof(cross_edge_entry));
  }
};

/// Cold solve that additionally captures warm-start artifacts for `capture`.
/// Identical output to solve_steiner_tree.
[[nodiscard]] steiner_result solve_steiner_tree_capture(
    const graph::csr_graph& graph, std::span<const graph::vertex_id> seeds,
    const solver_config& config, solve_artifacts& capture);

/// Canonical form of a seed list: validated, deduplicated, sorted — the shape
/// stored in solve_artifacts::seeds and used as a cache key. The
/// vertex-count overload lets epoch-aware callers canonicalize (and key
/// caches) without materializing a CSR first.
[[nodiscard]] std::vector<graph::vertex_id> canonicalize_seeds(
    const graph::csr_graph& graph, std::span<const graph::vertex_id> seeds);
[[nodiscard]] std::vector<graph::vertex_id> canonicalize_seeds(
    graph::vertex_id num_vertices, std::span<const graph::vertex_id> seeds);

/// Add/remove delta between two canonical seed sets.
struct seed_delta {
  std::vector<graph::vertex_id> added;    ///< in target, not in donor
  std::vector<graph::vertex_id> removed;  ///< in donor, not in target

  [[nodiscard]] std::size_t size() const noexcept {
    return added.size() + removed.size();
  }
};

/// Symmetric difference `target \ donor` / `donor \ target`. Both inputs must
/// be canonical (sorted, deduplicated).
[[nodiscard]] seed_delta compute_seed_delta(
    std::span<const graph::vertex_id> donor,
    std::span<const graph::vertex_id> target);

/// Observability for the repair: how much phase-1/2 work the warm start
/// actually did versus a cold solve's full sweep.
struct warm_start_stats {
  std::size_t added_seeds = 0;
  std::size_t removed_seeds = 0;
  std::size_t edge_edits = 0;        ///< applied edge edits repaired over
  std::size_t reset_vertices = 0;    ///< vertices cleared (removed cells + damage)
  std::size_t damaged_vertices = 0;  ///< cleared because a raised/disabled edge
                                     ///< invalidated their shortest-path witness
  std::size_t changed_vertices = 0;  ///< labels that differ from the donor
  std::size_t affected_cells = 0;    ///< cells rescanned in phase 2
  std::size_t rescanned_vertices = 0;  ///< phase-2 partial scan size
  std::size_t retained_entries = 0;  ///< G'1 entries reused from the donor
};

/// Warm-start solve of `seeds` against `prev` (a finished solve on the same
/// graph). Returns a result bit-identical to solve_steiner_tree(graph, seeds,
/// config) — the solver's determinism guarantee makes the donor's labelling
/// config-independent, so `prev` may come from a solve under any
/// solver_config. Throws std::invalid_argument when `prev` does not belong to
/// `graph` (callers such as the service fall back to a cold solve). Large
/// deltas remain correct but do proportionally less saving; the caller
/// decides the cutoff.
[[nodiscard]] steiner_result solve_steiner_tree_warm(
    const graph::csr_graph& graph, std::span<const graph::vertex_id> seeds,
    const solve_artifacts& prev, const solver_config& config,
    solve_artifacts* capture = nullptr, warm_start_stats* stats = nullptr);

/// Warm-start solve across a *graph* mutation: `prev` is a finished solve on
/// the epoch whose structural CSR fingerprint is `donor_graph_fingerprint`,
/// and `edits` is the applied edge delta taking that epoch to `graph` (see
/// graph::epoch_store::delta_between). The repair generalizes the seed-delta
/// path — it may change seeds and edges in one pass:
///
///   - Raised/disabled edges invalidate exactly the vertices whose
///     shortest-path witness (pred chain) crosses them: those pred-subtrees
///     are reset like removed cells and re-entered from their boundary.
///   - Lowered/enabled edges only open improvement frontiers: their
///     endpoints' current labels are injected across the edge and relaxation
///     propagates the gains.
///   - Phase 2 rescans only cells touched by label changes, seed deltas, or
///     modified-edge endpoints; bridges between untouched cell pairs cannot
///     involve a modified edge and are reused from the donor.
///
/// The result is bit-identical to solve_steiner_tree(graph, seeds, config).
/// Throws std::invalid_argument when `prev` does not match
/// `donor_graph_fingerprint` or the vertex set differs (epochs preserve |V|).
[[nodiscard]] steiner_result solve_steiner_tree_edge_warm(
    const graph::csr_graph& graph, std::span<const graph::vertex_id> seeds,
    const solve_artifacts& prev, std::uint64_t donor_graph_fingerprint,
    std::span<const graph::applied_edge_edit> edits, const solver_config& config,
    solve_artifacts* capture = nullptr, warm_start_stats* stats = nullptr);

}  // namespace dsteiner::core
