#include "core/pruning.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/hash.hpp"
#include "util/timer.hpp"

namespace dsteiner::core {

runtime::phase_metrics prune_cross_edges(
    const runtime::communicator& comm,
    std::vector<cross_edge_map>& per_rank_en,
    std::span<const seed_pair> mst_pairs) {
  runtime::phase_metrics metrics;
  util::timer wall;

  const std::unordered_set<seed_pair, util::pair_hash> keep(mst_pairs.begin(),
                                                            mst_pairs.end());
  for (auto& local : per_rank_en) {
    std::erase_if(local, [&](const auto& item) {
      return !keep.contains(item.first);
    });
  }

  // Uniqueness collective: Allreduce(MIN) over the surviving entries' ids
  // (Alg. 5 lines 13-15). The maps were already globally reduced, so this is
  // a fidelity/accounting step; the element-wise minimum also re-asserts the
  // deterministic winner should per-rank copies ever diverge.
  std::vector<std::vector<cross_edge_entry>> buffers(per_rank_en.size());
  for (std::size_t r = 0; r < per_rank_en.size(); ++r) {
    std::vector<std::pair<seed_pair, cross_edge_entry>> sorted(
        per_rank_en[r].begin(), per_rank_en[r].end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    buffers[r].reserve(sorted.size());
    for (const auto& [key, entry] : sorted) buffers[r].push_back(entry);
  }
  comm.allreduce(buffers,
                 [](const cross_edge_entry& a, const cross_edge_entry& b) {
                   return min_entry(a, b);
                 },
                 metrics);
  // Write the reduced winners back into the per-rank maps.
  for (std::size_t r = 0; r < per_rank_en.size(); ++r) {
    std::vector<std::pair<seed_pair, cross_edge_entry>> sorted(
        per_rank_en[r].begin(), per_rank_en[r].end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      per_rank_en[r][sorted[i].first] = buffers[r][i];
    }
  }

  metrics.wall_seconds = wall.seconds();
  return metrics;
}

}  // namespace dsteiner::core
