#include "core/voronoi.hpp"

#include <algorithm>
#include <cassert>
#include <tuple>
#include <vector>

namespace dsteiner::core {

namespace {

/// Handler implementing Alg. 4's visit() in the pre_visit/visit split of the
/// engine: pre_visit performs the state relaxation (lines 5-9), visit the
/// neighbour scatter (lines 10-13) unless a better update superseded it.
class voronoi_handler {
 public:
  /// `tile_width` > 0 (bucketed growth with tiling) splits non-delegate
  /// vertices of degree > tile_width into ceil(degree / tile_width) edge
  /// tiles spread round-robin over ranks.
  voronoi_handler(const runtime::dist_graph& dgraph, steiner_state& state,
                  const voronoi_prune& prune = {},
                  std::uint64_t tile_width = 0,
                  const voronoi_tiling& tiling = {})
      : dgraph_(&dgraph),
        state_(&state),
        prune_(prune),
        tile_width_(tile_width),
        tiles_(tiling.tiles) {}

  // Arrival-time admission check only: a visitor that cannot improve the
  // target's *current* state is dropped. The relaxation itself happens at
  // processing time (Alg. 4 lines 5-9 live in visit()), so a FIFO queue
  // exhibits the label-correcting cascades the paper measures in Fig. 6 and
  // the priority queue approximates Dijkstra's settling order.
  //
  // Oracle pruning rides on the same check: a proposed distance strictly
  // above a known-achievable upper bound can never become the target's final
  // label (nor seed a final label downstream — every product of its scatter
  // is dominated the same way), so dropping it is output-neutral. The
  // counter is relaxed-atomic because the threaded engine runs pre_visit
  // concurrently across workers.
  bool pre_visit(const voronoi_visitor& v, int rank) {
    // Relays and tiles carry their own label, run on arbitrary ranks and
    // never touch vertex state — admit unconditionally.
    if (v.kind != voronoi_visitor::kind_t::normal) return true;
    assert(dgraph_->owner(v.vj) == rank);
    (void)rank;
    if (!prune_.upper_bound.empty() && v.r > prune_.upper_bound[v.vj]) {
      if (prune_.pruned != nullptr) {
        prune_.pruned->fetch_add(1, std::memory_order_relaxed);
      }
      return false;
    }
    return std::tuple{v.r, v.t, v.vp} < state_->tuple_of(v.vj);
  }

  template <typename Emitter>
  bool visit(const voronoi_visitor& v, int rank, Emitter& out) {
    if (v.kind == voronoi_visitor::kind_t::relay) {
      // Enumerate this rank's slice of the delegate's adjacency and scatter.
      dgraph_->for_each_arc_in_slice(
          v.vj, rank, [&](graph::vertex_id vi, graph::weight_t w) {
            out.to_vertex(voronoi_visitor{vi, v.vj, v.t, v.r + w});
          });
      return true;
    }
    if (v.kind == voronoi_visitor::kind_t::tile) {
      // One contiguous arc range of a hub's scatter. Like a relay the tile
      // scatters the label it carries; if the hub was relabelled since, the
      // improving update emitted fresh tiles and these emissions lose at
      // admission — no state read, so tiles are safe on any rank/thread.
      const std::uint64_t begin =
          static_cast<std::uint64_t>(v.tile) * tile_width_;
      dgraph_->for_each_arc_in_range(
          v.vj, begin, begin + tile_width_,
          [&](graph::vertex_id vi, graph::weight_t w) {
            out.to_vertex(voronoi_visitor{vi, v.vj, v.t, v.r + w});
          });
      return true;
    }
    // Alg. 4 lines 5-9: relax at processing time; skip if superseded.
    if (std::tuple{v.r, v.t, v.vp} >= state_->tuple_of(v.vj)) return false;
    state_->distance[v.vj] = v.r;
    state_->src[v.vj] = v.t;
    state_->pred[v.vj] = v.vp;
    if (dgraph_->is_delegate(v.vj)) {
      // Broadcast relays: each rank scatters its slice of the hub's edges.
      const int slices = dgraph_->num_ranks();
      for (int q = 0; q < slices; ++q) {
        voronoi_visitor relay{v.vj, v.vp, v.t, v.r,
                              voronoi_visitor::kind_t::relay};
        out.to_rank(q, relay);
      }
      return true;
    }
    const std::uint64_t degree = dgraph_->graph().degree(v.vj);
    if (tile_width_ != 0 && degree > tile_width_) {
      // Edge tiling (katana deltaTile): split the hub's scatter into
      // independent arc-range work items spread round-robin over ranks so
      // one hub cannot serialize a bucket on its owner.
      const auto p = static_cast<std::uint64_t>(dgraph_->num_ranks());
      const std::uint64_t ntiles = (degree + tile_width_ - 1) / tile_width_;
      for (std::uint64_t i = 0; i < ntiles; ++i) {
        voronoi_visitor tv{v.vj, v.vp, v.t, v.r,
                           voronoi_visitor::kind_t::tile};
        tv.tile = static_cast<std::uint32_t>(i);
        out.to_rank(static_cast<int>(i % p), tv);
      }
      if (tiles_ != nullptr) {
        tiles_->fetch_add(ntiles, std::memory_order_relaxed);
      }
      return true;
    }
    dgraph_->for_each_arc(v.vj, [&](graph::vertex_id vi, graph::weight_t w) {
      out.to_vertex(voronoi_visitor{vi, v.vj, v.t, v.r + w});
    });
    return true;
  }

 private:
  const runtime::dist_graph* dgraph_;
  steiner_state* state_;
  voronoi_prune prune_;
  std::uint64_t tile_width_ = 0;  ///< 0 = tiling off
  std::atomic<std::uint64_t>* tiles_ = nullptr;
};

}  // namespace

runtime::phase_metrics compute_voronoi_cells(
    const runtime::dist_graph& dgraph, std::span<const graph::vertex_id> seeds,
    steiner_state& state, const runtime::engine_config& config) {
  std::vector<voronoi_visitor> initial;
  initial.reserve(seeds.size());
  for (const graph::vertex_id s : seeds) {
    initial.push_back(voronoi_visitor{s, s, s, 0});
  }
  return repair_voronoi_cells(dgraph, std::move(initial), state, config);
}

runtime::phase_metrics compute_voronoi_cells(
    const runtime::dist_graph& dgraph, std::span<const graph::vertex_id> seeds,
    steiner_state& state, const runtime::engine_config& config,
    const voronoi_prune& prune, const voronoi_tiling& tiling) {
  std::vector<voronoi_visitor> initial;
  initial.reserve(seeds.size());
  for (const graph::vertex_id s : seeds) {
    initial.push_back(voronoi_visitor{s, s, s, 0});
  }
  return repair_voronoi_cells(dgraph, std::move(initial), state, config, prune,
                              tiling);
}

runtime::phase_metrics repair_voronoi_cells(
    const runtime::dist_graph& dgraph, std::vector<voronoi_visitor> initial,
    steiner_state& state, const runtime::engine_config& config) {
  voronoi_handler handler(dgraph, state);
  return runtime::run_visitors(dgraph.parts(), handler, std::move(initial),
                               config);
}

runtime::phase_metrics repair_voronoi_cells(
    const runtime::dist_graph& dgraph, std::vector<voronoi_visitor> initial,
    steiner_state& state, const runtime::engine_config& config,
    const voronoi_prune& prune) {
  voronoi_handler handler(dgraph, state, prune);
  return runtime::run_visitors(dgraph.parts(), handler, std::move(initial),
                               config);
}

runtime::phase_metrics repair_voronoi_cells(
    const runtime::dist_graph& dgraph, std::vector<voronoi_visitor> initial,
    steiner_state& state, const runtime::engine_config& config,
    const voronoi_prune& prune, const voronoi_tiling& tiling) {
  // Tiling is meaningful only under bucketed growth: in strict order the
  // priority queue already interleaves hubs' scatters and extra tile
  // messages would change the bit-identical schedule.
  const std::uint64_t tile_width =
      config.growth == runtime::growth_mode::bucketed ? config.tile_threshold
                                                      : 0;
  voronoi_handler handler(dgraph, state, prune, tile_width, tiling);
  return runtime::run_visitors(dgraph.parts(), handler, std::move(initial),
                               config);
}

std::vector<voronoi_visitor> inject_fragments(
    const graph::csr_graph& graph,
    std::span<const sssp_fragment_view> fragments,
    std::span<const graph::vertex_id> seeds, steiner_state& state,
    std::size_t* preseeded) {
  const graph::vertex_id n = graph.num_vertices();

  // 1. Pre-seed: per-vertex lexicographic minimum across all usable
  // fragments. `touched` stays duplicate-free (a vertex is pushed only on its
  // first label) so the frontier scan below visits each adjacency once.
  std::vector<graph::vertex_id> touched;
  for (const sssp_fragment_view& frag : fragments) {
    if (!std::binary_search(seeds.begin(), seeds.end(), frag.seed)) {
      continue;  // labels from a non-seed would not be achievable here
    }
    for (std::size_t i = 0; i < frag.vertices.size(); ++i) {
      const graph::vertex_id v = frag.vertices[i];
      if (v >= n) continue;  // defensive: fragment from a different graph
      const std::tuple cand{frag.distance[i], frag.seed, frag.pred[i]};
      if (cand >= state.tuple_of(v)) continue;
      if (!state.reached(v)) touched.push_back(v);
      state.distance[v] = frag.distance[i];
      state.src[v] = frag.seed;
      state.pred[v] = frag.pred[i];
    }
  }
  if (preseeded != nullptr) *preseeded = touched.size();

  // 2. Seed bootstraps: seeds fully covered by a fragment drop theirs at
  // admission (equal tuple); everything else grows from scratch as usual.
  std::vector<voronoi_visitor> initial;
  initial.reserve(seeds.size() + touched.size());
  for (const graph::vertex_id s : seeds) {
    initial.push_back(voronoi_visitor{s, s, s, 0});
  }

  // 3. Improving frontier: scatter from a pre-seeded vertex across exactly
  // the arcs whose relaxation improves the target's current state — the
  // fragment surface and cross-fragment seams. One converged cell is
  // internally consistent (label(u) <= label(v) + w along every internal
  // arc), so interior arcs emit nothing; the scan is a comparison per arc,
  // not engine work.
  for (const graph::vertex_id v : touched) {
    const auto nbrs = graph.neighbors(v);
    const auto wts = graph.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const graph::vertex_id u = nbrs[i];
      const graph::weight_t d = state.distance[v] + wts[i];
      if (std::tuple{d, state.src[v], v} < state.tuple_of(u)) {
        initial.push_back(voronoi_visitor{u, v, state.src[v], d});
      }
    }
  }
  return initial;
}

}  // namespace dsteiner::core
