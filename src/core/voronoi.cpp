#include "core/voronoi.hpp"

#include <cassert>
#include <tuple>
#include <vector>

namespace dsteiner::core {

namespace {

/// Handler implementing Alg. 4's visit() in the pre_visit/visit split of the
/// engine: pre_visit performs the state relaxation (lines 5-9), visit the
/// neighbour scatter (lines 10-13) unless a better update superseded it.
class voronoi_handler {
 public:
  voronoi_handler(const runtime::dist_graph& dgraph, steiner_state& state)
      : dgraph_(&dgraph), state_(&state) {}

  // Arrival-time admission check only: a visitor that cannot improve the
  // target's *current* state is dropped. The relaxation itself happens at
  // processing time (Alg. 4 lines 5-9 live in visit()), so a FIFO queue
  // exhibits the label-correcting cascades the paper measures in Fig. 6 and
  // the priority queue approximates Dijkstra's settling order.
  bool pre_visit(const voronoi_visitor& v, int rank) {
    if (v.kind == voronoi_visitor::kind_t::relay) return true;
    assert(dgraph_->owner(v.vj) == rank);
    (void)rank;
    return std::tuple{v.r, v.t, v.vp} < state_->tuple_of(v.vj);
  }

  template <typename Emitter>
  bool visit(const voronoi_visitor& v, int rank, Emitter& out) {
    if (v.kind == voronoi_visitor::kind_t::relay) {
      // Enumerate this rank's slice of the delegate's adjacency and scatter.
      dgraph_->for_each_arc_in_slice(
          v.vj, rank, [&](graph::vertex_id vi, graph::weight_t w) {
            out.to_vertex(voronoi_visitor{vi, v.vj, v.t, v.r + w});
          });
      return true;
    }
    // Alg. 4 lines 5-9: relax at processing time; skip if superseded.
    if (std::tuple{v.r, v.t, v.vp} >= state_->tuple_of(v.vj)) return false;
    state_->distance[v.vj] = v.r;
    state_->src[v.vj] = v.t;
    state_->pred[v.vj] = v.vp;
    if (dgraph_->is_delegate(v.vj)) {
      // Broadcast relays: each rank scatters its slice of the hub's edges.
      const int slices = dgraph_->num_ranks();
      for (int q = 0; q < slices; ++q) {
        voronoi_visitor relay{v.vj, v.vp, v.t, v.r,
                              voronoi_visitor::kind_t::relay};
        out.to_rank(q, relay);
      }
      return true;
    }
    dgraph_->for_each_arc(v.vj, [&](graph::vertex_id vi, graph::weight_t w) {
      out.to_vertex(voronoi_visitor{vi, v.vj, v.t, v.r + w});
    });
    return true;
  }

 private:
  const runtime::dist_graph* dgraph_;
  steiner_state* state_;
};

}  // namespace

runtime::phase_metrics compute_voronoi_cells(
    const runtime::dist_graph& dgraph, std::span<const graph::vertex_id> seeds,
    steiner_state& state, const runtime::engine_config& config) {
  std::vector<voronoi_visitor> initial;
  initial.reserve(seeds.size());
  for (const graph::vertex_id s : seeds) {
    initial.push_back(voronoi_visitor{s, s, s, 0});
  }
  return repair_voronoi_cells(dgraph, std::move(initial), state, config);
}

runtime::phase_metrics repair_voronoi_cells(
    const runtime::dist_graph& dgraph, std::vector<voronoi_visitor> initial,
    steiner_state& state, const runtime::engine_config& config) {
  voronoi_handler handler(dgraph, state);
  return runtime::run_visitors(dgraph.parts(), handler, std::move(initial),
                               config);
}

}  // namespace dsteiner::core
