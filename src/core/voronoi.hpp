// Distributed Voronoi-cell computation (paper Alg. 4, "VORONOI_CELL_ASYNC").
//
// All |S| cells grow concurrently through asynchronous Bellman-Ford
// relaxations: when vertex vj is visited by neighbour vp from cell t with
// tentative distance r, vj joins N(t) if (r, t, vp) improves its state, then
// notifies its neighbours. Message prioritization (priority mailbox keyed on
// r) approximates Dijkstra's settling order and is the paper's headline
// optimization (§V-C).
//
// Vertex delegates: a high-degree vertex's scatter is split into per-rank
// relay visitors, each enumerating only that rank's slice of the adjacency.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "core/steiner_state.hpp"
#include "graph/types.hpp"
#include "runtime/dist_graph.hpp"
#include "runtime/perf_model.hpp"
#include "runtime/visitor_engine.hpp"

namespace dsteiner::core {

/// The VORONOI_CELL_VISITOR of Alg. 4 (lines 14-18), extended with a relay
/// kind for delegate scatter and a tile kind for bucketed edge tiling.
struct voronoi_visitor {
  graph::vertex_id vj = 0;  ///< vertex being visited
  graph::vertex_id vp = 0;  ///< vertex that sent the visitor (pred candidate)
  graph::vertex_id t = 0;   ///< seed owning vp's cell
  graph::weight_t r = 0;    ///< proposed distance d1(t, vj)

  /// tile: one contiguous arc-range of a high-degree vertex's scatter
  /// (bucketed growth only; katana's deltaTile). Like a relay it carries its
  /// label and never touches vertex state — it may run on any rank, and a
  /// stale tile's emissions are dominated at admission.
  enum class kind_t : std::uint8_t { normal, relay, tile };
  kind_t kind = kind_t::normal;
  std::uint32_t tile = 0;  ///< tile index (arc range [tile*T, (tile+1)*T))

  [[nodiscard]] graph::vertex_id target() const noexcept { return vj; }
  [[nodiscard]] std::uint64_t priority() const noexcept { return r; }
};

/// Optional admission pruning for Alg. 4 (service/distshare landmark oracle).
/// `upper_bound[v]`, when non-empty, must be a *true* upper bound on
/// min_{s in S} d1(s, v) for the exact graph being solved: a visitor whose
/// proposed distance strictly exceeds it is provably non-improving (its tuple
/// can never be v's final label, and everything it would scatter is likewise
/// dominated), so dropping it cannot change the fixed point — only the work.
/// Equal distances are always admitted: the lexicographic (src, pred)
/// tie-break may still need them.
struct voronoi_prune {
  std::span<const graph::weight_t> upper_bound;  ///< per vertex; empty = off
  std::atomic<std::uint64_t>* pruned = nullptr;  ///< optional drop counter
};

/// Edge-tiling telemetry for bucketed growth (the tiling itself is switched
/// by engine_config::growth + tile_threshold; the tile width is the
/// threshold). Relaxed-atomic: tiles are emitted concurrently by workers.
struct voronoi_tiling {
  std::atomic<std::uint64_t>* tiles = nullptr;  ///< optional emitted-tile counter
};

/// Runs Alg. 4 to quiescence, filling `state`. Seeds bootstrap themselves:
/// each s in S receives (r=0, t=s, vp=s).
[[nodiscard]] runtime::phase_metrics compute_voronoi_cells(
    const runtime::dist_graph& dgraph, std::span<const graph::vertex_id> seeds,
    steiner_state& state, const runtime::engine_config& config);

/// Overload with oracle pruning and tiling telemetry (bucketed growth).
[[nodiscard]] runtime::phase_metrics compute_voronoi_cells(
    const runtime::dist_graph& dgraph, std::span<const graph::vertex_id> seeds,
    steiner_state& state, const runtime::engine_config& config,
    const voronoi_prune& prune, const voronoi_tiling& tiling);

/// Warm-start repair: re-runs Alg. 4 to quiescence from caller-chosen initial
/// visitors over an existing (partially valid) `state`. Used after a seed-set
/// delta: `initial` carries the bootstrap visitors of added seeds plus
/// re-entry visitors along the boundary of reset (removed-cell) regions.
/// Because every update strictly decreases the lexicographic (d1, src, pred)
/// tuple and the fixed point is the unique minimum over all seed-to-vertex
/// paths, repairing from a converged donor state reaches the same labelling a
/// cold run would.
[[nodiscard]] runtime::phase_metrics repair_voronoi_cells(
    const runtime::dist_graph& dgraph, std::vector<voronoi_visitor> initial,
    steiner_state& state, const runtime::engine_config& config);

/// Overload with oracle pruning (see voronoi_prune).
[[nodiscard]] runtime::phase_metrics repair_voronoi_cells(
    const runtime::dist_graph& dgraph, std::vector<voronoi_visitor> initial,
    steiner_state& state, const runtime::engine_config& config,
    const voronoi_prune& prune);

/// Overload with oracle pruning and tiling telemetry (bucketed growth).
[[nodiscard]] runtime::phase_metrics repair_voronoi_cells(
    const runtime::dist_graph& dgraph, std::vector<voronoi_visitor> initial,
    steiner_state& state, const runtime::engine_config& config,
    const voronoi_prune& prune, const voronoi_tiling& tiling);

/// Fragment-injection entry point — the cross-query analogue of warm-start
/// frontier injection. Pre-seeds a fresh `state` with the lexicographic
/// minimum label each vertex gets across `fragments` (fragments whose seed is
/// not in the canonical `seeds` set are skipped: their labels would not be
/// achievable in this solve), then returns the initial visitor set that makes
/// relaxation from this state reach exactly the cold fixed point:
///
///   - one bootstrap visitor (r=0, t=s, vp=s) per seed, covering seeds with
///     no (or truncated) fragments;
///   - one scatter visitor per fragment-boundary arc whose relaxation would
///     improve its target's pre-seeded state. Interior arcs of a single
///     fragment never qualify (a converged cell satisfies the relaxation
///     inequality along every internal arc), so the frontier is the fragment
///     surface plus cross-fragment seams, not the whole membership.
///
/// Why this is bit-identical to cold: every pre-seeded label is an achievable
/// triple (so the state never drops below the true fixed point), and any wave
/// that a pre-seeded vertex absorbs without improvement is dominated — along
/// interior arcs by the cell's own internal consistency, and across every arc
/// where domination could break, an initial scatter was emitted. Relaxation
/// therefore still delivers the canonical optimal chain to every vertex, and
/// the unique lexicographic fixed point is reached with (typically far) fewer
/// relaxations.
///
/// `preseeded`, when non-null, receives the number of vertices pre-seeded.
[[nodiscard]] std::vector<voronoi_visitor> inject_fragments(
    const graph::csr_graph& graph,
    std::span<const sssp_fragment_view> fragments,
    std::span<const graph::vertex_id> seeds, steiner_state& state,
    std::size_t* preseeded = nullptr);

}  // namespace dsteiner::core
