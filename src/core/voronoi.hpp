// Distributed Voronoi-cell computation (paper Alg. 4, "VORONOI_CELL_ASYNC").
//
// All |S| cells grow concurrently through asynchronous Bellman-Ford
// relaxations: when vertex vj is visited by neighbour vp from cell t with
// tentative distance r, vj joins N(t) if (r, t, vp) improves its state, then
// notifies its neighbours. Message prioritization (priority mailbox keyed on
// r) approximates Dijkstra's settling order and is the paper's headline
// optimization (§V-C).
//
// Vertex delegates: a high-degree vertex's scatter is split into per-rank
// relay visitors, each enumerating only that rank's slice of the adjacency.
#pragma once

#include <cstdint>
#include <span>

#include "core/steiner_state.hpp"
#include "graph/types.hpp"
#include "runtime/dist_graph.hpp"
#include "runtime/perf_model.hpp"
#include "runtime/visitor_engine.hpp"

namespace dsteiner::core {

/// The VORONOI_CELL_VISITOR of Alg. 4 (lines 14-18), extended with a relay
/// kind for delegate scatter.
struct voronoi_visitor {
  graph::vertex_id vj = 0;  ///< vertex being visited
  graph::vertex_id vp = 0;  ///< vertex that sent the visitor (pred candidate)
  graph::vertex_id t = 0;   ///< seed owning vp's cell
  graph::weight_t r = 0;    ///< proposed distance d1(t, vj)

  enum class kind_t : std::uint8_t { normal, relay };
  kind_t kind = kind_t::normal;

  [[nodiscard]] graph::vertex_id target() const noexcept { return vj; }
  [[nodiscard]] std::uint64_t priority() const noexcept { return r; }
};

/// Runs Alg. 4 to quiescence, filling `state`. Seeds bootstrap themselves:
/// each s in S receives (r=0, t=s, vp=s).
[[nodiscard]] runtime::phase_metrics compute_voronoi_cells(
    const runtime::dist_graph& dgraph, std::span<const graph::vertex_id> seeds,
    steiner_state& state, const runtime::engine_config& config);

/// Warm-start repair: re-runs Alg. 4 to quiescence from caller-chosen initial
/// visitors over an existing (partially valid) `state`. Used after a seed-set
/// delta: `initial` carries the bootstrap visitors of added seeds plus
/// re-entry visitors along the boundary of reset (removed-cell) regions.
/// Because every update strictly decreases the lexicographic (d1, src, pred)
/// tuple and the fixed point is the unique minimum over all seed-to-vertex
/// paths, repairing from a converged donor state reaches the same labelling a
/// cold run would.
[[nodiscard]] runtime::phase_metrics repair_voronoi_cells(
    const runtime::dist_graph& dgraph, std::vector<voronoi_visitor> initial,
    steiner_state& state, const runtime::engine_config& config);

}  // namespace dsteiner::core
