// Distance graph G'1 construction (paper Alg. 5 and Alg. 3 lines 13-16).
//
// After Voronoi cells are known, every edge (u, v) in E with src(u) != src(v)
// is a *cross-cell* edge bridging cells N(s) and N(t); its bridging cost is
// d1(s,u) + d(u,v) + d1(v,t). Mehlhorn's G'1 keeps, per cell pair, only the
// minimum-cost bridge:
//   1. LOCAL_MIN_DIST_EDGE_ASYNC — a vertex-centric scan: each vertex probes
//      its neighbours with (src, d1) payloads; the receiving owner updates
//      its partition-local EN map. One probe per undirected edge.
//   2. GLOBAL_MIN_DIST_EDGE_COLL — MPI_Allreduce(MPI_MIN) over the per-rank
//      EN copies. Sparse map-merge by default; a dense (|S| choose 2) buffer
//      mode (optionally chunked) reproduces the paper's Fig. 8 memory
//      behaviour.
//
// Deterministic tie-break: entries are ordered by (bridge distance, u, v), so
// the global minimum per cell pair is unique.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/steiner_state.hpp"
#include "graph/types.hpp"
#include "runtime/comm.hpp"
#include "runtime/dist_graph.hpp"
#include "runtime/perf_model.hpp"
#include "runtime/visitor_engine.hpp"
#include "util/hash.hpp"

namespace dsteiner::core {

/// Seed-id pair identifying a Voronoi cell pair; canonical first < second.
using seed_pair = std::pair<graph::vertex_id, graph::vertex_id>;

/// The minimum-distance bridge between one cell pair.
struct cross_edge_entry {
  graph::weight_t bridge_distance = graph::k_inf_distance;  ///< d1(s,u)+d(u,v)+d1(v,t)
  graph::vertex_id u = graph::k_no_vertex;  ///< cross-edge endpoint, u < v
  graph::vertex_id v = graph::k_no_vertex;
  graph::weight_t edge_weight = 0;  ///< d(u, v)

  friend bool operator==(const cross_edge_entry&, const cross_edge_entry&) = default;
};

/// Lexicographic (distance, u, v) minimum — the library-wide tie-break.
[[nodiscard]] inline const cross_edge_entry& min_entry(
    const cross_edge_entry& a, const cross_edge_entry& b) noexcept {
  if (a.bridge_distance != b.bridge_distance) {
    return a.bridge_distance < b.bridge_distance ? a : b;
  }
  if (a.u != b.u) return a.u < b.u ? a : b;
  return a.v <= b.v ? a : b;
}

/// Per-rank map EN: cell pair -> best bridge seen by this rank.
using cross_edge_map =
    std::unordered_map<seed_pair, cross_edge_entry, util::pair_hash>;

/// Visitor for the local scan: `scan` enumerates a vertex's arcs, `relay`
/// enumerates a delegate's per-rank slice, `probe` delivers one endpoint's
/// (src, d1) to the other endpoint's owner.
struct cross_edge_visitor {
  enum class kind_t : std::uint8_t { scan, relay, probe };

  graph::vertex_id routed = 0;  ///< routing target (u for scan/relay, v for probe)
  graph::vertex_id u = 0;       ///< probing endpoint
  graph::vertex_id src_u = graph::k_no_vertex;
  graph::weight_t d_u = graph::k_inf_distance;
  graph::weight_t w = 0;        ///< d(u, v) carried by probes
  kind_t kind = kind_t::scan;

  [[nodiscard]] graph::vertex_id target() const noexcept { return routed; }
  [[nodiscard]] std::uint64_t priority() const noexcept { return 0; }
};

/// Step 1: fills `per_rank_en` (size = num ranks) with partition-local
/// minima. `state` must hold converged Voronoi cells.
[[nodiscard]] runtime::phase_metrics find_local_min_edges(
    const runtime::dist_graph& dgraph, const steiner_state& state,
    std::vector<cross_edge_map>& per_rank_en,
    const runtime::engine_config& config);

/// Incremental variant of step 1 for warm starts: scans only `vertices`
/// (members of Voronoi cells whose labels or membership changed since a
/// cached solve). Unlike the full scan — which probes each undirected edge
/// once from its lower endpoint — the partial scan probes *both* directions
/// of every arc of a scanned vertex, so a bridge whose lower endpoint lies in
/// an unchanged (unscanned) cell is still rediscovered. Entries between two
/// unchanged cells are by definition unchanged and must be merged in from the
/// cached solve by the caller.
[[nodiscard]] runtime::phase_metrics find_local_min_edges_partial(
    const runtime::dist_graph& dgraph, const steiner_state& state,
    std::span<const graph::vertex_id> vertices,
    std::vector<cross_edge_map>& per_rank_en,
    const runtime::engine_config& config);

/// Options for the global reduction.
struct global_reduce_options {
  /// Use a dense (|S| choose 2) buffer instead of the sparse map merge;
  /// requires `seeds`. Reproduces the paper's Alg. 3 line 2 representation.
  bool dense = false;
  std::span<const graph::vertex_id> seeds;
  /// Items per collective chunk; 0 = one monolithic call (§V-F). Applies to
  /// both the dense buffer and the sparse map merge.
  std::size_t chunk_items = 0;
};

/// Step 2: MPI_Allreduce(MPI_MIN); afterwards every rank's EN holds the
/// global minima.
[[nodiscard]] runtime::phase_metrics reduce_global_min_edges(
    const runtime::communicator& comm, std::vector<cross_edge_map>& per_rank_en,
    const global_reduce_options& options = {});

/// Dense-buffer index of the pair (i, j), i < j, among (|S| choose 2) slots.
[[nodiscard]] std::size_t dense_pair_index(std::size_t i, std::size_t j,
                                           std::size_t num_seeds) noexcept;

}  // namespace dsteiner::core
