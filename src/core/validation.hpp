// Steiner tree validation — the invariants every solver output must satisfy.
// Used by the test suite's property checks and (optionally) by the solver
// itself after each run.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace dsteiner::core {

struct validation_result {
  bool valid = false;
  std::string error;  ///< empty when valid

  explicit operator bool() const noexcept { return valid; }
};

/// Checks that `edges` forms a valid Steiner tree of `graph` for `seeds`:
///  - every edge exists in the graph with the stated weight,
///  - no duplicate (undirected) edges,
///  - the edge set is acyclic and connected (a single tree),
///  - the tree contains every seed,
///  - every leaf is a seed (no dangling Steiner vertices — KMB step 5).
/// A single-seed query is valid with an empty edge set.
[[nodiscard]] validation_result validate_steiner_tree(
    const graph::csr_graph& graph, std::span<const graph::vertex_id> seeds,
    std::span<const graph::weighted_edge> edges);

/// Total distance D(GS) = sum of edge weights.
[[nodiscard]] graph::weight_t tree_distance(
    std::span<const graph::weighted_edge> edges) noexcept;

}  // namespace dsteiner::core
