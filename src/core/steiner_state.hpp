// Distributed per-vertex state for the Steiner tree computation.
//
// Every vertex maintains src(v) (the seed owning its Voronoi cell), pred(v)
// (its predecessor on the shortest path towards src(v)) and d1(src(v), v)
// (Alg. 2 step 1 / Alg. 3 INITIALIZATION). The arrays are global in this
// simulation but obey owner discipline: only the owning rank mutates a
// vertex's slots.
//
// Library-wide deterministic tie-break: a vertex's state is the lexicographic
// minimum achievable (distance, src, pred) triple, making the final Voronoi
// assignment (and therefore the Steiner tree) independent of message
// scheduling, queue policy and rank count.
#pragma once

#include <cstdint>
#include <span>
#include <tuple>
#include <vector>

#include "graph/types.hpp"

namespace dsteiner::core {

/// Read-only view of a settled per-seed SSSP fragment: a subset of `seed`'s
/// Voronoi cell from a converged solve, truncated to a radius/vertex budget.
/// Invariants the producer must guarantee (service/distshare enforces them):
/// labels come from a converged solve on the *same* graph content the
/// consumer solves on, and the set is pred-closed (every vertex's pred is in
/// the fragment — distance truncation preserves this because weights are
/// strictly positive). Under those invariants every label is an achievable
/// (distance, src, pred) triple, so pre-seeding a solve from fragments can
/// only skip work, never change the fixed point (see inject_fragments).
struct sssp_fragment_view {
  graph::vertex_id seed = 0;
  std::span<const graph::vertex_id> vertices;
  std::span<const graph::weight_t> distance;  ///< d1(seed, v), exact
  std::span<const graph::vertex_id> pred;     ///< in-fragment predecessor
};

class steiner_state {
 public:
  steiner_state() = default;

  /// Alg. 3 INITIALIZATION: every vertex starts unreached
  /// (src = pred = d1 = infinity); seed bootstrap happens via visitors.
  explicit steiner_state(graph::vertex_id num_vertices) {
    distance.assign(num_vertices, graph::k_inf_distance);
    src.assign(num_vertices, graph::k_no_vertex);
    pred.assign(num_vertices, graph::k_no_vertex);
  }

  std::vector<graph::weight_t> distance;
  std::vector<graph::vertex_id> src;
  std::vector<graph::vertex_id> pred;

  /// The tie-break tuple; updates must strictly decrease it.
  [[nodiscard]] std::tuple<graph::weight_t, graph::vertex_id, graph::vertex_id>
  tuple_of(graph::vertex_id v) const noexcept {
    return {distance[v], src[v], pred[v]};
  }

  [[nodiscard]] bool reached(graph::vertex_id v) const noexcept {
    return src[v] != graph::k_no_vertex;
  }

  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return distance.size() * sizeof(graph::weight_t) +
           src.size() * sizeof(graph::vertex_id) +
           pred.size() * sizeof(graph::vertex_id);
  }
};

}  // namespace dsteiner::core
