#include "obs/cost_model.hpp"

#include <cmath>

namespace dsteiner::obs {

const char* query_features::name(std::size_t i) noexcept {
  switch (i) {
    case k_bias: return "bias";
    case k_seeds: return "seeds";
    case k_log_vertices: return "log2_vertices";
    case k_log_arcs: return "log2_arcs";
    case k_seeds_log_n: return "seeds_x_log2_n";
    case k_seeds_sq: return "seeds_squared";
    case k_spread: return "seed_spread";
    case k_overlay: return "overlay_fraction";
    case k_warm: return "warm_start";
    case k_fragments: return "fragment_fraction";
    case k_threaded: return "threaded_engine";
    case k_inv_threads: return "inv_threads";
    case k_bucketed: return "bucketed_growth";
    default: return "unknown";
  }
}

cost_model::cost_model(cost_model_config cfg) : config_(cfg) {
  if (!(config_.forgetting > 0.0) || config_.forgetting > 1.0) {
    config_.forgetting = 1.0;
  }
  if (!(config_.prior_variance > 0.0)) config_.prior_variance = 100.0;
  for (std::size_t i = 0; i < k_d; ++i) {
    p_[i].fill(0.0);
    p_[i][i] = config_.prior_variance;
  }
}

double cost_model::predict_seconds(const query_features& f) const {
  if (!config_.enabled) return 0.0;
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_ == 0) return 0.0;
  double y = 0.0;
  for (std::size_t i = 0; i < k_d; ++i) y += w_[i] * f.x[i];
  if (!std::isfinite(y) || y < 0.0) return 0.0;
  return y;
}

bool cost_model::ready() const {
  if (!config_.enabled) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return samples_ >= config_.min_samples;
}

void cost_model::observe(const query_features& f, double solve_seconds) {
  if (!config_.enabled) return;
  if (!std::isfinite(solve_seconds) || solve_seconds < 0.0) return;
  for (double v : f.x) {
    if (!std::isfinite(v)) return;
  }

  std::lock_guard<std::mutex> lock(mu_);

  // Standard RLS with forgetting factor lambda:
  //   px    = P x
  //   k     = px / (lambda + x' px)
  //   e     = y - w' x
  //   w    += k e
  //   P     = (P - k px') / lambda
  const double lambda = config_.forgetting;
  std::array<double, k_d> px{};
  for (std::size_t i = 0; i < k_d; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < k_d; ++j) acc += p_[i][j] * f.x[j];
    px[i] = acc;
  }
  double denom = lambda;
  for (std::size_t i = 0; i < k_d; ++i) denom += f.x[i] * px[i];
  if (!(denom > 0.0) || !std::isfinite(denom)) return;

  double predicted = 0.0;
  for (std::size_t i = 0; i < k_d; ++i) predicted += w_[i] * f.x[i];
  const double err = solve_seconds - predicted;

  std::array<double, k_d> gain{};
  for (std::size_t i = 0; i < k_d; ++i) gain[i] = px[i] / denom;
  for (std::size_t i = 0; i < k_d; ++i) w_[i] += gain[i] * err;
  for (std::size_t i = 0; i < k_d; ++i) {
    for (std::size_t j = 0; j < k_d; ++j) {
      p_[i][j] = (p_[i][j] - gain[i] * px[j]) / lambda;
    }
  }

  ++samples_;
  const double abs_err = std::fabs(err);
  // EMA with ~64-sample memory; seeded from the first residual.
  constexpr double k_alpha = 1.0 / 64.0;
  abs_error_ema_ = samples_ == 1
                       ? abs_err
                       : abs_error_ema_ + k_alpha * (abs_err - abs_error_ema_);
}

cost_model_snapshot cost_model::snapshot() const {
  cost_model_snapshot out;
  out.enabled = config_.enabled;
  std::lock_guard<std::mutex> lock(mu_);
  out.samples = samples_;
  out.ready = config_.enabled && samples_ >= config_.min_samples;
  out.abs_error_ema_seconds = abs_error_ema_;
  out.coefficients = w_;
  return out;
}

}  // namespace dsteiner::obs
