// Per-superstep engine telemetry sink — the runtime half of src/obs/.
//
// The visitor engines (runtime/visitor_engine.hpp cooperative rounds,
// runtime/parallel/thread_engine.hpp real supersteps) record one
// `superstep_sample` per rank per superstep into a probe lane. Lanes are
// single-writer by construction: the threaded engine gives worker w lane w
// (a worker is the only thread that touches its ranks), the cooperative
// engine writes everything into lane 0 from the one thread it runs on.
// Recording is therefore lock-free — an append into a pre-owned vector plus
// one steady-clock read — and bounded: a lane that reaches its capacity
// drops further samples (counted) instead of growing without limit, so a
// million-superstep solve cannot turn its trace into a memory hog.
//
// The probe never feeds back into execution: samples are observations of
// decisions already taken, so tracing-on and tracing-off solves stay
// bit-identical (under test in tests/test_obs.cpp).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

namespace dsteiner::obs {

/// One rank's (or one worker's, rank == -1) activity in one superstep.
struct superstep_sample {
  const char* phase = "";     ///< solver phase name (static string)
  std::uint32_t superstep = 0;
  std::int32_t rank = -1;     ///< -1 = worker/engine aggregate row
  std::uint32_t visitors = 0;     ///< visit() dispatches this superstep
  std::uint32_t sent = 0;         ///< messages emitted this superstep
  std::uint32_t drained = 0;      ///< channel items admitted in the deliver phase
  std::uint32_t backlog = 0;      ///< mailbox depth after the compute batch
  float work_units = 0.0F;        ///< simulated work (cost-model units)
  float compute_seconds = 0.0F;   ///< wall time computing (aggregate rows)
  float barrier_wait_seconds = 0.0F;  ///< wall time stalled at barriers
  double end_offset_seconds = 0.0;    ///< stamp vs the trace origin (record())
  // Bucketed (delta-stepping) growth only; UINT64_MAX marks a strict-order
  // sample so the exporter can omit the fields.
  std::uint64_t bucket = UINT64_MAX;  ///< bucket drained this superstep
  std::uint32_t light = 0;  ///< relaxations into the current bucket
  std::uint32_t heavy = 0;  ///< relaxations into later buckets
};

class engine_probe {
 public:
  /// `origin` anchors sample timestamps (the owning trace's epoch); `lanes`
  /// is the maximum concurrent writer count (engine workers); `capacity`
  /// bounds samples per lane.
  engine_probe(std::chrono::steady_clock::time_point origin, std::size_t lanes,
               std::size_t capacity)
      : origin_(origin), capacity_(capacity), lanes_(lanes == 0 ? 1 : lanes) {
    for (auto& l : lanes_) l.samples.reserve(std::min<std::size_t>(capacity, 64));
  }

  /// Current solver phase, stamped onto subsequent samples. Called by the
  /// solver thread between engine runs; the worker pool's run() handoff
  /// sequences it before any worker records (no concurrent access).
  void set_phase(const char* name) noexcept { phase_ = name; }

  /// Appends a sample to `lane`. Safe to call concurrently from distinct
  /// lanes; each lane must have exactly one writer. Out-of-range lanes and
  /// full lanes drop (counted per lane).
  void record(std::size_t lane, superstep_sample s) noexcept {
    if (lane >= lanes_.size()) return;
    auto& l = lanes_[lane];
    if (l.samples.size() >= capacity_) {
      ++l.dropped;
      return;
    }
    s.phase = phase_;
    s.end_offset_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      origin_)
            .count();
    l.samples.push_back(s);
  }

  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_.size(); }

  /// Read side — only valid once every writer is done (the trace is final).
  [[nodiscard]] std::span<const superstep_sample> lane_samples(
      std::size_t lane) const noexcept {
    if (lane >= lanes_.size()) return {};
    return lanes_[lane].samples;
  }

  [[nodiscard]] std::size_t total_samples() const noexcept {
    std::size_t n = 0;
    for (const auto& l : lanes_) n += l.samples.size();
    return n;
  }

  [[nodiscard]] std::uint64_t dropped() const noexcept {
    std::uint64_t n = 0;
    for (const auto& l : lanes_) n += l.dropped;
    return n;
  }

 private:
  /// Cache-line padded so two workers recording into neighbouring lanes do
  /// not false-share.
  struct alignas(64) lane {
    std::vector<superstep_sample> samples;
    std::uint64_t dropped = 0;
  };

  std::chrono::steady_clock::time_point origin_;
  std::size_t capacity_;
  const char* phase_ = "";
  std::vector<lane> lanes_;
};

}  // namespace dsteiner::obs
