#include "obs/debug_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dsteiner::obs {
namespace {

/// Writes all of `data`, tolerating short writes. Returns false on error.
bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n <= 0) return false;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

void send_response(int fd, const char* status, const std::string& content_type,
                   const std::string& body) {
  char header[256];
  const int n = std::snprintf(header, sizeof(header),
                              "HTTP/1.0 %s\r\n"
                              "Content-Type: %s\r\n"
                              "Content-Length: %zu\r\n"
                              "Connection: close\r\n\r\n",
                              status, content_type.c_str(), body.size());
  if (n <= 0) return;
  if (!write_all(fd, header, static_cast<std::size_t>(n))) return;
  write_all(fd, body.data(), body.size());
}

}  // namespace

void debug_server::add_route(std::string path, std::string content_type,
                             std::function<std::string(std::string_view)> handler) {
  routes_.push_back(
      {std::move(path), std::move(content_type), std::move(handler)});
}

std::string query_param(std::string_view query, std::string_view key) {
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? query : query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view{}
                                          : query.substr(amp + 1);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) continue;
    if (pair.substr(0, eq) == key) return std::string(pair.substr(eq + 1));
  }
  return {};
}

std::uint64_t query_param_u64(std::string_view query, std::string_view key,
                              std::uint64_t fallback) {
  const std::string value = query_param(query, key);
  if (value.empty()) return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') return fallback;
  return static_cast<std::uint64_t>(parsed);
}

bool debug_server::start(std::uint16_t port) {
  if (running_.load(std::memory_order_acquire)) return false;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  // Recover the ephemeral port the kernel picked when port == 0.
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }

  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void debug_server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

debug_server::~debug_server() { stop(); }

void debug_server::serve_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    // Short timeout so the stop flag is honoured promptly without signals.
    const int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) continue;
    if ((pfd.revents & POLLIN) == 0) continue;

    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    handle_connection(conn);
    ::close(conn);
  }
}

void debug_server::handle_connection(int fd) {
  // Bound the read in both space and time: a request line fits comfortably
  // in 4 KiB, we never accept bodies, and the whole read gets one wall-clock
  // budget — a stalled (or byte-dripping) client cannot hold the
  // single-threaded accept loop past read_timeout_ms_.
  char buf[4096];
  std::size_t have = 0;
  bool complete = false;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(read_timeout_ms_);
  while (have < sizeof(buf) - 1) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) break;
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    if (::poll(&pfd, 1, static_cast<int>(remaining.count())) <= 0) break;
    const ssize_t n = ::recv(fd, buf + have, sizeof(buf) - 1 - have, 0);
    if (n <= 0) break;
    have += static_cast<std::size_t>(n);
    buf[have] = '\0';
    if (std::strstr(buf, "\r\n") != nullptr) {
      complete = true;
      break;
    }
  }
  buf[have] = '\0';

  if (!complete) {
    if (have >= sizeof(buf) - 1) {
      // Buffer full with no end-of-line in sight: no registered route has a
      // request line this long, so answer as for an unknown resource.
      send_response(fd, "404 Not Found", "text/plain",
                    "request line too long\n");
    } else {
      send_response(fd, "400 Bad Request", "text/plain",
                    "incomplete request\n");
    }
    return;
  }
  if (std::strncmp(buf, "GET ", 4) != 0) {
    send_response(fd, "400 Bad Request", "text/plain", "bad request\n");
    return;
  }
  const char* path_begin = buf + 4;
  const char* path_end = path_begin;
  while (*path_end != '\0' && *path_end != ' ' && *path_end != '\r' &&
         *path_end != '\n' && *path_end != '?') {
    ++path_end;
  }
  const std::string path(path_begin, path_end);

  std::string_view query;
  if (*path_end == '?') {
    const char* query_begin = path_end + 1;
    const char* query_end = query_begin;
    while (*query_end != '\0' && *query_end != ' ' && *query_end != '\r' &&
           *query_end != '\n') {
      ++query_end;
    }
    query = std::string_view(query_begin,
                             static_cast<std::size_t>(query_end - query_begin));
  }

  for (const auto& r : routes_) {
    if (r.path == path) {
      requests_.fetch_add(1, std::memory_order_relaxed);
      send_response(fd, "200 OK", r.content_type, r.handler(query));
      return;
    }
  }
  std::string listing =
      "not found: " + (path.size() > 128 ? path.substr(0, 128) + "..." : path) +
      "\nroutes:\n";
  for (const auto& r : routes_) listing += "  " + r.path + "\n";
  send_response(fd, "404 Not Found", "text/plain", listing);
}

std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return {};
  }

  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (!write_all(fd, request.data(), request.size())) {
    ::close(fd);
    return {};
  }

  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_body(const std::string& response) {
  const std::size_t pos = response.find("\r\n\r\n");
  if (pos == std::string::npos) return {};
  return response.substr(pos + 4);
}

}  // namespace dsteiner::obs
