// Bounded ring of recent slow-query traces.
//
// The service pushes a finalized query_trace here when a query's total
// latency meets trace_config::slow_query_threshold_seconds. Consumers
// (the /tracez debug route, tests, operators) snapshot the ring and render
// each entry's Chrome JSON. Mutex-protected — pushes happen once per slow
// query, far off any hot path, and snapshots copy shared_ptrs only.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/trace.hpp"

namespace dsteiner::obs {

class slow_query_log {
 public:
  explicit slow_query_log(std::size_t capacity = 32)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Retains `trace` (evicting the oldest entry at capacity). The trace must
  /// already be finalized — the log never mutates it.
  void push(std::shared_ptr<const query_trace> trace) {
    if (trace == nullptr) return;
    const std::lock_guard lock(mu_);
    ++recorded_;
    if (ring_.size() >= capacity_) ring_.pop_front();
    ring_.push_back(std::move(trace));
  }

  /// Most-recent-last copy of the retained traces.
  [[nodiscard]] std::vector<std::shared_ptr<const query_trace>> snapshot()
      const {
    const std::lock_guard lock(mu_);
    return {ring_.begin(), ring_.end()};
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard lock(mu_);
    return ring_.size();
  }

  /// Lifetime count of slow queries observed (monotone, survives eviction).
  [[nodiscard]] std::uint64_t recorded() const {
    const std::lock_guard lock(mu_);
    return recorded_;
  }

 private:
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<std::shared_ptr<const query_trace>> ring_;
  std::uint64_t recorded_ = 0;
};

}  // namespace dsteiner::obs
