#include "obs/prom_validate.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <set>
#include <sstream>

namespace dsteiner::obs {
namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' ||
           c == ':';
  };
  auto tail = [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c)) != 0;
  };
  if (!head(name.front())) return false;
  for (char c : name) {
    if (!tail(c)) return false;
  }
  return true;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Maps a sample name to its metric family: histogram samples `x_bucket`,
/// `x_sum`, `x_count` belong to family `x`.
std::string family_of(const std::string& name,
                      const std::map<std::string, std::string>& types) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    if (ends_with(name, suffix)) {
      const std::string base = name.substr(0, name.size() - std::strlen(suffix));
      auto it = types.find(base);
      if (it != types.end() && it->second == "histogram") return base;
    }
  }
  return name;
}

double parse_le(const std::string& labels) {
  // labels is the raw text between braces, e.g. le="0.001" or le="+Inf".
  const std::size_t pos = labels.find("le=\"");
  if (pos == std::string::npos) return std::numeric_limits<double>::quiet_NaN();
  const std::size_t begin = pos + 4;
  const std::size_t end = labels.find('"', begin);
  if (end == std::string::npos) return std::numeric_limits<double>::quiet_NaN();
  const std::string v = labels.substr(begin, end - begin);
  if (v == "+Inf") return std::numeric_limits<double>::infinity();
  char* stop = nullptr;
  const double d = std::strtod(v.c_str(), &stop);
  if (stop == v.c_str()) return std::numeric_limits<double>::quiet_NaN();
  return d;
}

/// Removes the le="..." pair so buckets of one histogram share a group key.
std::string strip_le(const std::string& labels) {
  const std::size_t pos = labels.find("le=\"");
  if (pos == std::string::npos) return labels;
  std::size_t end = labels.find('"', pos + 4);
  if (end == std::string::npos) return labels;
  ++end;  // past closing quote
  if (end < labels.size() && labels[end] == ',') ++end;
  std::string out = labels.substr(0, pos) + labels.substr(end);
  if (!out.empty() && out.back() == ',') out.pop_back();
  return out;
}

struct bucket_state {
  double prev_le = -std::numeric_limits<double>::infinity();
  double prev_value = 0.0;
  bool saw_inf = false;
  double inf_value = 0.0;
  std::size_t line = 0;
};

}  // namespace

std::string prom_report::to_string() const {
  std::string out;
  for (const auto& p : problems) {
    out += "line " + std::to_string(p.line) + ": " + p.message + "\n";
  }
  return out;
}

prom_report validate_prometheus(const std::string& text) {
  prom_report report;
  auto fail = [&](std::size_t line, std::string message) {
    report.problems.push_back({line, std::move(message)});
  };

  std::map<std::string, std::string> types;  // family -> type
  std::set<std::string> helps;               // families with # HELP
  std::set<std::string> seen_series;         // name + "{" + labels + "}"
  // Interleaving detection: the exposition format requires every family's
  // samples to form one contiguous run. A sample from a family we already
  // moved past means two runs — scrapers keep only one of them.
  std::string open_family;
  std::set<std::string> closed_families;
  // histogram family + label-group -> running bucket state
  std::map<std::string, bucket_state> buckets;
  // histogram family + label-group -> _count value (to cross-check +Inf)
  std::map<std::string, double> counts;

  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;

    if (line[0] == '#') {
      std::istringstream meta(line);
      std::string hash;
      std::string kind;
      std::string name;
      meta >> hash >> kind >> name;
      if (kind == "HELP") {
        if (!valid_metric_name(name)) fail(lineno, "bad HELP name: " + name);
        if (!helps.insert(name).second) {
          fail(lineno, "duplicate HELP declaration for " + name);
        }
      } else if (kind == "TYPE") {
        std::string type;
        meta >> type;
        if (!valid_metric_name(name)) fail(lineno, "bad TYPE name: " + name);
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          fail(lineno, "unknown TYPE '" + type + "' for " + name);
        }
        if (types.count(name) != 0) {
          fail(lineno, "duplicate TYPE declaration for " + name);
        }
        if (type == "counter" && !ends_with(name, "_total")) {
          fail(lineno, "counter " + name + " does not end in _total");
        }
        types[name] = type;
      }
      // Other comments are legal and ignored.
      continue;
    }

    // Sample line: name[{labels}] value [timestamp]
    std::size_t brace = line.find('{');
    std::string name;
    std::string labels;
    std::size_t value_begin = 0;
    if (brace != std::string::npos) {
      name = line.substr(0, brace);
      const std::size_t close = line.find('}', brace);
      if (close == std::string::npos) {
        fail(lineno, "unterminated label set");
        continue;
      }
      labels = line.substr(brace + 1, close - brace - 1);
      value_begin = close + 1;
    } else {
      const std::size_t space = line.find(' ');
      if (space == std::string::npos) {
        fail(lineno, "sample line with no value");
        continue;
      }
      name = line.substr(0, space);
      value_begin = space;
    }

    if (!valid_metric_name(name)) {
      fail(lineno, "bad metric name: " + name);
      continue;
    }

    const std::string value_text = line.substr(value_begin);
    char* stop = nullptr;
    const double value = std::strtod(value_text.c_str(), &stop);
    if (stop == value_text.c_str()) {
      fail(lineno, "unparseable value for " + name + ": '" + value_text + "'");
      continue;
    }

    const std::string family = family_of(name, types);
    if (types.count(family) == 0) {
      fail(lineno, "sample " + name + " has no preceding # TYPE " + family);
    }
    if (helps.count(family) == 0) {
      fail(lineno, "sample " + name + " has no preceding # HELP " + family);
    }

    if (family != open_family) {
      if (!open_family.empty()) closed_families.insert(open_family);
      if (closed_families.count(family) != 0) {
        fail(lineno, "interleaved samples for family " + family);
      }
      open_family = family;
    }

    const std::string series_key = name + "{" + labels + "}";
    if (!seen_series.insert(series_key).second) {
      fail(lineno, "duplicate series " + series_key);
    } else {
      ++report.series;
    }

    if (ends_with(name, "_bucket") && types[family] == "histogram") {
      const std::string group = family + "{" + strip_le(labels) + "}";
      const double le = parse_le(labels);
      auto& st = buckets[group];
      st.line = lineno;
      if (std::isnan(le)) {
        fail(lineno, "bucket of " + family + " lacks a parseable le label");
      } else {
        if (le <= st.prev_le) {
          fail(lineno, "bucket le bounds not increasing for " + family);
        }
        if (value < st.prev_value) {
          fail(lineno, "bucket counts not cumulative for " + family);
        }
        st.prev_le = le;
        st.prev_value = value;
        if (std::isinf(le)) {
          st.saw_inf = true;
          st.inf_value = value;
        }
      }
    } else if (ends_with(name, "_count") && types[family] == "histogram") {
      counts[family + "{" + labels + "}"] = value;
    }
  }

  for (const auto& [group, st] : buckets) {
    if (!st.saw_inf) {
      fail(st.line, "histogram " + group + " missing le=\"+Inf\" bucket");
      continue;
    }
    auto it = counts.find(group);
    if (it == counts.end()) {
      fail(st.line, "histogram " + group + " missing _count sample");
    } else if (it->second != st.inf_value) {
      fail(st.line, "histogram " + group + " +Inf bucket (" +
                        std::to_string(st.inf_value) + ") != _count (" +
                        std::to_string(it->second) + ")");
    }
  }

  report.families = types.size();
  return report;
}

}  // namespace dsteiner::obs
