#include "obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace dsteiner::obs {
namespace {

/// Appends a Chrome trace_event "X" (complete) record. Timestamps/durations
/// are microseconds per the trace_event spec.
void append_complete(std::string& out, const char* name, const char* cat,
                     double start_seconds, double dur_seconds, int pid,
                     int tid, const char* args_json) {
  char buf[512];
  const double ts_us = start_seconds * 1e6;
  const double dur_us = std::max(dur_seconds, 0.0) * 1e6;
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":%d,"
                "\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":%s},",
                name, cat, pid, tid, ts_us, dur_us,
                args_json != nullptr ? args_json : "{}");
  out += buf;
}

/// pid of the synthetic "cluster" process that carries one track per rank of
/// a distributed solve (pid 1 is the service process).
constexpr int k_cluster_pid = 2;

/// Appends an instant ("i") event — distshare annotations.
void append_instant(std::string& out, const char* name, double at_seconds,
                    double value) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"cat\":\"distshare\",\"ph\":\"i\","
                "\"pid\":1,\"tid\":0,\"ts\":%.3f,\"s\":\"p\","
                "\"args\":{\"value\":%.6g}},",
                name, at_seconds * 1e6, value);
  out += buf;
}

/// Appends a counter ("C") event — per-rank visitor/message/backlog tracks.
void append_counter(std::string& out, const char* name, double at_seconds,
                    std::uint32_t visitors, std::uint32_t sent,
                    std::uint32_t backlog) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"ts\":%.3f,"
                "\"args\":{\"visitors\":%u,\"sent\":%u,\"backlog\":%u}},",
                name, at_seconds * 1e6, visitors, sent, backlog);
  out += buf;
}

}  // namespace

query_trace::query_trace(const trace_config& cfg, std::size_t engine_lanes,
                         double pre_seconds)
    : origin_(std::chrono::steady_clock::now() -
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(std::max(pre_seconds, 0.0)))),
      cfg_(cfg),
      probe_(origin_, engine_lanes, cfg.samples_per_lane) {
  spans_.reserve(std::min<std::size_t>(cfg_.span_capacity, 32));
  events_.reserve(std::min<std::size_t>(cfg_.event_capacity, 32));
}

double query_trace::now_seconds() const noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       origin_)
      .count();
}

void query_trace::add_span(span s) noexcept {
  if (spans_.size() >= cfg_.span_capacity) {
    ++dropped_;
    return;
  }
  spans_.push_back(s);
}

void query_trace::close_span(const char* name, const char* category,
                             double start_seconds, std::uint64_t supersteps,
                             std::uint64_t visitors, std::uint64_t messages,
                             double modelled_seconds) noexcept {
  span s;
  s.name = name;
  s.category = category;
  s.start_seconds = start_seconds;
  s.dur_seconds = std::max(now_seconds() - start_seconds, 0.0);
  s.supersteps = supersteps;
  s.visitors = visitors;
  s.messages = messages;
  s.modelled_seconds = modelled_seconds;
  add_span(s);
}

void query_trace::add_event(const char* name, double value) noexcept {
  if (events_.size() >= cfg_.event_capacity) {
    ++dropped_;
    return;
  }
  trace_event e;
  e.name = name;
  e.at_seconds = now_seconds();
  e.value = value;
  events_.push_back(e);
}

void query_trace::add_rank_slice(rank_slice s) noexcept {
  if (rank_slices_.size() >= cfg_.rank_slice_capacity) {
    ++dropped_;
    return;
  }
  rank_slices_.push_back(s);
}

void query_trace::set_cluster_summary(std::uint32_t world,
                                      std::uint64_t supersteps,
                                      std::int32_t critical_rank,
                                      std::uint64_t critical_supersteps,
                                      double max_compute_skew,
                                      double comm_wait_fraction) noexcept {
  summary_.cluster_world = world;
  summary_.cluster_supersteps = supersteps;
  summary_.cluster_critical_rank = critical_rank;
  summary_.cluster_critical_supersteps = critical_supersteps;
  summary_.cluster_max_compute_skew = max_compute_skew;
  summary_.cluster_comm_wait_fraction = comm_wait_fraction;
}

void query_trace::finalize(std::uint64_t request_id, std::uint64_t query_id,
                           double queue_wait_seconds, double solve_seconds,
                           double total_seconds,
                           double admission_estimate_seconds,
                           double modelled_seconds) noexcept {
  summary_.request_id = request_id;
  summary_.query_id = query_id;
  summary_.queue_wait_seconds = queue_wait_seconds;
  summary_.solve_seconds = solve_seconds;
  summary_.total_seconds = total_seconds;
  summary_.admission_estimate_seconds = admission_estimate_seconds;
  summary_.estimate_error_seconds =
      admission_estimate_seconds > 0.0
          ? total_seconds - admission_estimate_seconds
          : 0.0;
  summary_.modelled_seconds = modelled_seconds;
  summary_.model_error_seconds =
      modelled_seconds > 0.0 ? solve_seconds - modelled_seconds : 0.0;
  // Phase spans carry the per-phase engine totals; fold them up so the
  // summary answers "how many supersteps/messages did this query cost"
  // without walking the span list.
  summary_.supersteps = 0;
  summary_.visitors = 0;
  summary_.messages = 0;
  for (const auto& s : spans_) {
    summary_.supersteps += s.supersteps;
    summary_.visitors += s.visitors;
    summary_.messages += s.messages;
  }
  summary_.spans = spans_.size();
  summary_.samples = probe_.total_samples();
  summary_.dropped = dropped_ + probe_.dropped();
}

std::string query_trace::to_chrome_json() const {
  std::string out;
  out.reserve(4096 + probe_.total_samples() * 160 + spans_.size() * 200);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";

  // Thread naming metadata: tid 0 = service/phase spans, tid 1+w = workers.
  out +=
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"service\"}},";
  for (std::size_t w = 0; w < probe_.lanes(); ++w) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%zu,\"args\":{\"name\":\"engine worker %zu\"}},",
                  w + 1, w);
    out += buf;
  }

  for (const auto& s : spans_) {
    char args[256];
    std::snprintf(args, sizeof(args),
                  "{\"supersteps\":%" PRIu64 ",\"visitors\":%" PRIu64
                  ",\"messages\":%" PRIu64 ",\"modelled_seconds\":%.6g}",
                  s.supersteps, s.visitors, s.messages, s.modelled_seconds);
    append_complete(out, s.name, s.category, s.start_seconds, s.dur_seconds, 1,
                    0, args);
  }

  for (const auto& e : events_) {
    append_instant(out, e.name, e.at_seconds, e.value);
  }

  // Engine samples: aggregate rows (rank == -1) become per-worker
  // compute/barrier slices; per-rank rows become counter tracks keyed by
  // phase+rank so Perfetto draws one series per rank.
  for (std::size_t w = 0; w < probe_.lanes(); ++w) {
    for (const auto& s : probe_.lane_samples(w)) {
      if (s.rank < 0) {
        const double end = s.end_offset_seconds;
        const double barrier = s.barrier_wait_seconds;
        const double compute = s.compute_seconds;
        char args[256];
        if (s.bucket != UINT64_MAX) {
          // Bucketed growth: expose the bucket index and the light/heavy
          // relaxation split so delta tuning is visible in Perfetto.
          std::snprintf(args, sizeof(args),
                        "{\"superstep\":%u,\"visitors\":%u,\"sent\":%u,"
                        "\"drained\":%u,\"bucket\":%" PRIu64
                        ",\"light\":%u,\"heavy\":%u}",
                        s.superstep, s.visitors, s.sent, s.drained, s.bucket,
                        s.light, s.heavy);
        } else {
          std::snprintf(args, sizeof(args),
                        "{\"superstep\":%u,\"visitors\":%u,\"sent\":%u,"
                        "\"drained\":%u}",
                        s.superstep, s.visitors, s.sent, s.drained);
        }
        // The sample is stamped at superstep end: compute ran first, then
        // the barrier wait. Lay the slices back-to-back ending at the stamp.
        append_complete(out, s.phase, "superstep",
                        end - barrier - compute, compute, 1,
                        static_cast<int>(w) + 1, args);
        if (barrier > 0.0F) {
          append_complete(out, "barrier_wait", "barrier", end - barrier,
                          barrier, 1, static_cast<int>(w) + 1, "{}");
        }
      } else {
        char name[64];
        std::snprintf(name, sizeof(name), "rank %d", s.rank);
        append_counter(out, name, s.end_offset_seconds, s.visitors, s.sent,
                       s.backlog);
      }
    }
  }

  // Cluster telemetry: one Perfetto track per rank of the distributed solve,
  // under a second synthetic process. Remote ranks' clocks cannot be aligned
  // with the trace origin, so each rank's compute/send/recv/vote slices are
  // laid end to end from a per-rank cursor starting at 0 — honest about
  // relative durations and skew, silent about absolute offsets.
  if (!rank_slices_.empty()) {
    out +=
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,"
        "\"args\":{\"name\":\"cluster\"}},";
    std::int32_t max_rank = 0;
    for (const auto& s : rank_slices_) max_rank = std::max(max_rank, s.rank);
    for (std::int32_t r = 0; r <= max_rank; ++r) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,"
                    "\"tid\":%d,\"args\":{\"name\":\"rank %d\"}},",
                    r, r);
      out += buf;
    }
    std::vector<double> cursor(static_cast<std::size_t>(max_rank) + 1, 0.0);
    for (const auto& s : rank_slices_) {
      double& at = cursor[static_cast<std::size_t>(s.rank)];
      char args[256];
      std::snprintf(args, sizeof(args),
                    "{\"superstep\":%u,\"visitors\":%" PRIu64
                    ",\"bytes_sent\":%" PRIu64 "}",
                    s.superstep, s.visitors, s.bytes_sent);
      append_complete(out, s.phase, "rank_compute", at, s.compute_seconds,
                      k_cluster_pid, s.rank, args);
      at += s.compute_seconds;
      const struct {
        const char* name;
        double dur;
      } comm[] = {{"send_flush", s.send_flush_seconds},
                  {"recv_wait", s.recv_wait_seconds},
                  {"vote", s.vote_seconds}};
      for (const auto& c : comm) {
        if (c.dur <= 0.0) continue;
        append_complete(out, c.name, "rank_comm", at, c.dur, k_cluster_pid,
                        s.rank, "{}");
        at += c.dur;
      }
    }
  }

  if (out.back() == ',') out.pop_back();
  out += "]}";
  return out;
}

}  // namespace dsteiner::obs
