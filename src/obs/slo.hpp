// SLO tracking: per-priority-class latency objectives, sliding-window
// good/bad event counters, and multi-window error-budget burn rates.
//
// Each completed query is scored against its priority class's latency
// objective (good: total latency <= objective, bad: above). Events land
// in a ring of fixed-width time buckets sized to cover the long window;
// the short window reads a suffix of the same ring. Burn rate is the
// SRE-standard ratio
//
//     burn = (bad / (good + bad) over the window) / error_budget
//
// so burn == 1.0 means the service is spending its error budget exactly
// at the sustainable rate, and e.g. burn >= 14.4 on the short window is
// the classic "page now" threshold for a 1h/30d budget pair scaled down.
// Exporting both windows from one ring lets dashboards alert on
// fast-burn (short window, quick detection) and slow-burn (long window,
// low noise) conditions without double-counting: the per-class latency
// detail is drained from a live histogram via reset_window(), so every
// event is attributed to exactly one bucket.
//
// The tracker is time-explicit — record_at()/snapshot_at() take the
// clock as a parameter, so tests drive window rotation deterministically;
// record()/snapshot() wrap them with a steady clock for production use.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "service/latency_histogram.hpp"

namespace dsteiner::obs {

struct slo_config {
  bool enabled = true;
  /// Latency objective per priority class, seconds (index = priority
  /// class index). Classes beyond the vector reuse the last entry.
  std::vector<double> objective_seconds = {0.25, 2.0, 10.0};
  /// Allowed fraction of bad events over the long window (0.01 = 99% SLO).
  double error_budget = 0.01;
  double short_window_seconds = 60.0;
  double long_window_seconds = 600.0;
  /// Ring resolution: the long window is split into this many buckets
  /// (bucket width = long_window_seconds / ring_buckets).
  std::size_t ring_buckets = 60;
};

struct slo_class_snapshot {
  double objective_seconds = 0.0;
  /// Lifetime totals (monotone — exported as Prometheus counters).
  std::uint64_t good_total = 0;
  std::uint64_t bad_total = 0;
  /// Windowed counts (include the current partial bucket).
  std::uint64_t short_good = 0;
  std::uint64_t short_bad = 0;
  std::uint64_t long_good = 0;
  std::uint64_t long_bad = 0;
  double burn_rate_short = 0.0;
  double burn_rate_long = 0.0;
  /// Latency detail over the long window.
  service::latency_histogram::snapshot_data window_latency{};
};

struct slo_snapshot {
  bool enabled = false;
  double error_budget = 0.0;
  double short_window_seconds = 0.0;
  double long_window_seconds = 0.0;
  std::vector<slo_class_snapshot> classes;
};

class slo_tracker {
 public:
  slo_tracker(std::size_t num_classes, slo_config cfg = {});

  slo_tracker(const slo_tracker&) = delete;
  slo_tracker& operator=(const slo_tracker&) = delete;

  /// Latency objective for a class (last entry reused past the vector).
  [[nodiscard]] double objective_seconds(std::size_t cls) const noexcept;

  /// True when `latency_seconds` misses the class objective — the caller
  /// uses this to force-retain violating traces in the slow-query log.
  [[nodiscard]] bool violates(std::size_t cls,
                              double latency_seconds) const noexcept;

  /// Score one completed query at an explicit clock reading (seconds on
  /// any monotone axis; tests pass synthetic time).
  void record_at(std::size_t cls, double latency_seconds, double now_seconds);

  [[nodiscard]] slo_snapshot snapshot_at(double now_seconds) const;

  /// Production wrappers over the tracker's own steady clock.
  void record(std::size_t cls, double latency_seconds);
  [[nodiscard]] slo_snapshot snapshot() const;

  [[nodiscard]] bool enabled() const noexcept { return config_.enabled; }

 private:
  struct bucket {
    std::int64_t index = -1;  ///< absolute bucket number, -1 = empty
    std::uint64_t good = 0;
    std::uint64_t bad = 0;
    service::latency_histogram::snapshot_data latency{};
  };

  struct class_state {
    std::uint64_t good_total = 0;
    std::uint64_t bad_total = 0;
    /// Latencies since the last rotation; drained exactly once into the
    /// owning bucket via reset_window().
    service::latency_histogram live;
    std::vector<bucket> ring;
    std::int64_t current = -1;  ///< bucket number `live` is accumulating for
  };

  [[nodiscard]] std::int64_t bucket_index(double now_seconds) const noexcept;
  void rotate(class_state& cs, std::int64_t idx) const;
  [[nodiscard]] double clock_seconds() const;

  slo_config config_;
  double bucket_width_seconds_ = 1.0;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  /// unique_ptr because class_state embeds a latency_histogram (atomics —
  /// neither copyable nor movable), which vector growth would require.
  mutable std::vector<std::unique_ptr<class_state>> classes_;
};

}  // namespace dsteiner::obs
