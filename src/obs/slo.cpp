#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>

namespace dsteiner::obs {

namespace {

double burn_rate(std::uint64_t good, std::uint64_t bad, double budget) {
  const std::uint64_t total = good + bad;
  if (total == 0 || !(budget > 0.0)) return 0.0;
  const double bad_ratio =
      static_cast<double>(bad) / static_cast<double>(total);
  return bad_ratio / budget;
}

}  // namespace

slo_tracker::slo_tracker(std::size_t num_classes, slo_config cfg)
    : config_(std::move(cfg)), epoch_(std::chrono::steady_clock::now()) {
  if (config_.ring_buckets == 0) config_.ring_buckets = 1;
  if (!(config_.long_window_seconds > 0.0)) config_.long_window_seconds = 600.0;
  if (!(config_.short_window_seconds > 0.0) ||
      config_.short_window_seconds > config_.long_window_seconds) {
    config_.short_window_seconds =
        std::min(60.0, config_.long_window_seconds);
  }
  bucket_width_seconds_ =
      config_.long_window_seconds / static_cast<double>(config_.ring_buckets);
  const std::size_t count = std::max<std::size_t>(num_classes, 1);
  classes_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    classes_.push_back(std::make_unique<class_state>());
    classes_.back()->ring.resize(config_.ring_buckets);
  }
}

double slo_tracker::objective_seconds(std::size_t cls) const noexcept {
  if (config_.objective_seconds.empty()) return 1.0;
  if (cls >= config_.objective_seconds.size()) {
    return config_.objective_seconds.back();
  }
  return config_.objective_seconds[cls];
}

bool slo_tracker::violates(std::size_t cls,
                           double latency_seconds) const noexcept {
  return config_.enabled && latency_seconds > objective_seconds(cls);
}

std::int64_t slo_tracker::bucket_index(double now_seconds) const noexcept {
  if (!(now_seconds > 0.0)) return 0;
  return static_cast<std::int64_t>(now_seconds / bucket_width_seconds_);
}

void slo_tracker::rotate(class_state& cs, std::int64_t idx) const {
  if (cs.current == idx) return;
  if (cs.current >= 0) {
    // Attribute everything recorded since the last rotation to the bucket
    // that was current. reset_window() drains, so these events cannot be
    // re-counted by a later rotation or snapshot.
    auto drained = cs.live.reset_window();
    auto& old_slot = cs.ring[static_cast<std::size_t>(cs.current) %
                             cs.ring.size()];
    if (old_slot.index == cs.current) old_slot.latency.accumulate(drained);
  }
  cs.current = idx;
  auto& slot = cs.ring[static_cast<std::size_t>(idx) % cs.ring.size()];
  if (slot.index != idx) {
    slot = bucket{};
    slot.index = idx;
  }
}

void slo_tracker::record_at(std::size_t cls, double latency_seconds,
                            double now_seconds) {
  if (!config_.enabled) return;
  if (!std::isfinite(latency_seconds) || latency_seconds < 0.0) return;
  if (cls >= classes_.size()) cls = classes_.size() - 1;

  std::lock_guard<std::mutex> lock(mu_);
  auto& cs = *classes_[cls];
  const std::int64_t idx = bucket_index(now_seconds);
  rotate(cs, idx);
  auto& slot = cs.ring[static_cast<std::size_t>(idx) % cs.ring.size()];
  if (latency_seconds <= objective_seconds(cls)) {
    ++slot.good;
    ++cs.good_total;
  } else {
    ++slot.bad;
    ++cs.bad_total;
  }
  cs.live.record(latency_seconds);
}

slo_snapshot slo_tracker::snapshot_at(double now_seconds) const {
  slo_snapshot out;
  out.enabled = config_.enabled;
  out.error_budget = config_.error_budget;
  out.short_window_seconds = config_.short_window_seconds;
  out.long_window_seconds = config_.long_window_seconds;
  out.classes.resize(classes_.size());
  if (!config_.enabled) return out;

  const std::int64_t idx = bucket_index(now_seconds);
  const auto short_buckets = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(
          std::llround(config_.short_window_seconds / bucket_width_seconds_)),
      1, static_cast<std::int64_t>(config_.ring_buckets));
  const std::int64_t long_buckets =
      static_cast<std::int64_t>(config_.ring_buckets);

  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    auto& cs = *classes_[c];
    rotate(cs, idx);
    // Fold the current partial bucket's latencies in so the snapshot is
    // complete; `live` is drained, future records start a fresh window.
    auto& cur = cs.ring[static_cast<std::size_t>(idx) % cs.ring.size()];
    cur.latency.accumulate(cs.live.reset_window());

    auto& sc = out.classes[c];
    sc.objective_seconds = objective_seconds(c);
    sc.good_total = cs.good_total;
    sc.bad_total = cs.bad_total;
    for (const auto& slot : cs.ring) {
      if (slot.index < 0 || slot.index > idx) continue;
      if (slot.index > idx - long_buckets) {
        sc.long_good += slot.good;
        sc.long_bad += slot.bad;
        sc.window_latency.accumulate(slot.latency);
      }
      if (slot.index > idx - short_buckets) {
        sc.short_good += slot.good;
        sc.short_bad += slot.bad;
      }
    }
    sc.burn_rate_short =
        burn_rate(sc.short_good, sc.short_bad, config_.error_budget);
    sc.burn_rate_long =
        burn_rate(sc.long_good, sc.long_bad, config_.error_budget);
  }
  return out;
}

double slo_tracker::clock_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void slo_tracker::record(std::size_t cls, double latency_seconds) {
  record_at(cls, latency_seconds, clock_seconds());
}

slo_snapshot slo_tracker::snapshot() const {
  return snapshot_at(clock_seconds());
}

}  // namespace dsteiner::obs
