// Minimal TCP debug endpoint — plain POSIX sockets, a blocking poll() loop,
// one background thread, zero dependencies.
//
// The server answers "GET <path>" with the output of a registered handler
// (HTTP/1.0 semantics: one request per connection, Connection: close). It
// exists to make the service's observability reachable by curl and
// Prometheus scrapers:
//
//   /metrics  -> render_metrics_text (Prometheus text exposition)
//   /statusz  -> human-readable service status
//   /tracez   -> recent slow-query traces as Chrome trace JSON
//
// Deliberately not a web server: no keep-alive, no TLS, no request bodies,
// 4 KiB request cap, loopback-oriented. Handlers run on the server thread —
// they must be snapshot-cheap (ours render from atomic counters and
// shared_ptr copies). Port 0 binds an ephemeral port (tests); `port()`
// reports the bound value.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace dsteiner::obs {

class debug_server {
 public:
  /// Registers `handler` for exact-match `path` before start(). Handlers
  /// must be callable from the server thread for the server's lifetime.
  void add_route(std::string path, std::string content_type,
                 std::function<std::string()> handler);

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and launches the accept loop.
  /// Returns false (with no thread started) if the socket cannot be bound.
  bool start(std::uint16_t port = 0);

  /// Idempotent; joins the server thread. Called by the destructor.
  void stop();

  ~debug_server();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// The bound port (meaningful after a successful start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  struct route {
    std::string path;
    std::string content_type;
    std::function<std::string()> handler;
  };

  void serve_loop();
  void handle_connection(int fd);

  std::vector<route> routes_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_{0};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Blocking loopback HTTP GET used by tests and the bench-smoke scrape.
/// Returns the full response (status line + headers + body), or an empty
/// string on connect/IO failure.
std::string http_get(std::uint16_t port, const std::string& path);

/// Strips the header block from an http_get() response, returning the body.
std::string http_body(const std::string& response);

}  // namespace dsteiner::obs
