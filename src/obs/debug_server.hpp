// Minimal TCP debug endpoint — plain POSIX sockets, a blocking poll() loop,
// one background thread, zero dependencies.
//
// The server answers "GET <path>" with the output of a registered handler
// (HTTP/1.0 semantics: one request per connection, Connection: close). It
// exists to make the service's observability reachable by curl and
// Prometheus scrapers:
//
//   /metrics  -> render_metrics_text (Prometheus text exposition)
//   /statusz  -> human-readable service status
//   /tracez   -> recent slow-query traces as Chrome trace JSON
//
// Deliberately not a web server: no keep-alive, no TLS, no request bodies,
// 4 KiB request cap, loopback-oriented. Handlers run on the server thread —
// they must be snapshot-cheap (ours render from atomic counters and
// shared_ptr copies). Port 0 binds an ephemeral port (tests); `port()`
// reports the bound value.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace dsteiner::obs {

class debug_server {
 public:
  /// Registers `handler` for exact-match `path` before start(). The handler
  /// receives the raw query string (the part after '?', possibly empty —
  /// parse it with query_param()). Handlers must be callable from the
  /// server thread for the server's lifetime.
  void add_route(std::string path, std::string content_type,
                 std::function<std::string(std::string_view)> handler);

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and launches the accept loop.
  /// Returns false (with no thread started) if the socket cannot be bound.
  bool start(std::uint16_t port = 0);

  /// Idempotent; joins the server thread. Called by the destructor.
  void stop();

  ~debug_server();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// The bound port (meaningful after a successful start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Total wall-clock budget for reading one request (default 1000 ms).
  /// A client that connects and stalls — or drips bytes slower than a
  /// request line — gets a 400 when the budget runs out instead of wedging
  /// the single-threaded accept loop. Tests shrink this to keep the
  /// stalled-client case fast; call before start().
  void set_read_timeout_ms(int ms) noexcept { read_timeout_ms_ = ms; }

 private:
  struct route {
    std::string path;
    std::string content_type;
    std::function<std::string(std::string_view)> handler;
  };

  void serve_loop();
  void handle_connection(int fd);

  std::vector<route> routes_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_{0};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  int read_timeout_ms_ = 1000;
};

/// Returns the value of `key` in a "?a=1&b=2" style query string (the part
/// after '?', without the '?'), or empty when absent. No %-decoding — the
/// debug routes only take small numeric/identifier values. Shared by the
/// /tracez and /slo routes.
std::string query_param(std::string_view query, std::string_view key);

/// Numeric variant of query_param(): parses the value as an unsigned
/// integer, returning `fallback` when the key is absent or non-numeric.
std::uint64_t query_param_u64(std::string_view query, std::string_view key,
                              std::uint64_t fallback);

/// Blocking loopback HTTP GET used by tests and the bench-smoke scrape.
/// Returns the full response (status line + headers + body), or an empty
/// string on connect/IO failure.
std::string http_get(std::uint16_t port, const std::string& path);

/// Strips the header block from an http_get() response, returning the body.
std::string http_body(const std::string& response);

}  // namespace dsteiner::obs
