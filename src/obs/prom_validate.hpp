// Prometheus text-exposition validator.
//
// A small line-by-line parser for the text format our /metrics route emits.
// It enforces the hygiene rules the exposition satellite cares about and
// that real scrapers reject violations of:
//
//   * every sample belongs to a series introduced by # HELP and # TYPE;
//   * no duplicate # HELP or # TYPE declarations for a family;
//   * no duplicate series (same name + label set twice);
//   * each family's samples form one contiguous run (no interleaving —
//     scrapers keep only one run of a family that appears twice);
//   * counter series names end in `_total` (excluding histogram machinery);
//   * histogram buckets are cumulative (non-decreasing in `le` order), end
//     with an `le="+Inf"` bucket, and that bucket equals `_count`;
//   * sample values parse as numbers; metric names are [a-zA-Z_:][a-zA-Z0-9_:]*.
//
// Used three ways: the tests/test_obs.cpp parser test, the bench-smoke
// `--debug-endpoint` scrape (CI fails on malformed exposition), and ad hoc
// by anyone adding a series to metrics_text.cpp.
#pragma once

#include <string>
#include <vector>

namespace dsteiner::obs {

struct prom_problem {
  std::size_t line = 0;  ///< 1-based line number in the exposition text
  std::string message;
};

struct prom_report {
  std::vector<prom_problem> problems;
  std::size_t series = 0;   ///< distinct (name, labels) samples seen
  std::size_t families = 0; ///< distinct # TYPE declarations seen

  [[nodiscard]] bool ok() const noexcept { return problems.empty(); }

  /// One problem per line, "line N: message". Empty when ok().
  [[nodiscard]] std::string to_string() const;
};

/// Parses `text` as Prometheus text exposition and reports every violation.
[[nodiscard]] prom_report validate_prometheus(const std::string& text);

}  // namespace dsteiner::obs
