// Query-scoped span tracing.
//
// A `query_trace` is created by the service when a request is admitted and
// rides the whole lifecycle: queue wait, solve phases (voronoi / local-min /
// global-min / mst / pruning), distshare interactions (fragment borrows,
// oracle prunes, donor picks), and — through the embedded `engine_probe` —
// per-rank, per-superstep engine activity. It is deliberately simple:
//
//   * spans and events are appended by ONE thread at a time (the executor
//     worker running the solve); the engine probe's lanes carry the only
//     concurrent writers, and those are single-writer per lane;
//   * storage is bounded (span/event capacities, probe lane capacity) so an
//     adversarial query cannot balloon memory — overflow drops and counts;
//   * nothing read from the trace influences the solve, preserving the
//     bit-identity contract (tracing on/off produces identical trees).
//
// After the solve the service calls `finalize()` to freeze a `trace_summary`
// (totals + admission-estimate error + measured-vs-model residual) and the
// whole object is published read-only via shared_ptr to the query handle,
// the slow-query log, and the /tracez debug route. `to_chrome_json()`
// renders the standard Chrome trace_event array form, loadable in Perfetto
// or chrome://tracing: tid 0 is the service-level span tree, tid 1+w is
// engine worker w's compute/barrier timeline, and per-rank counter tracks
// carry visitor/message/backlog series.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/engine_probe.hpp"

namespace dsteiner::obs {

/// Knobs for per-query tracing. Excluded from the service config hash —
/// observability never changes answers, so cached results stay valid across
/// tracing reconfigurations (same rule as util::run_budget).
struct trace_config {
  bool enabled = true;
  std::size_t span_capacity = 256;        ///< max spans per query
  std::size_t event_capacity = 256;       ///< max point events per query
  std::size_t samples_per_lane = 4096;    ///< max probe samples per worker lane
  /// Queries whose total latency meets this threshold are captured by the
  /// slow-query log. <= 0 disables capture.
  double slow_query_threshold_seconds = 0.250;
  std::size_t slow_log_capacity = 32;     ///< retained slow traces (ring)
  /// Always-on head sampling: even with `enabled` false, roughly one in
  /// round(1 / sample_rate) queries gets a full trace captured into the
  /// flight-recorder ring, so /tracez and the cost model see representative
  /// traffic without callers opting in. Deterministic (admission counter
  /// modulo, not RNG) so tests can assert exact rates. <= 0 disables.
  double sample_rate = 1.0 / 64.0;
  std::size_t flight_recorder_capacity = 64;  ///< retained sampled traces
  /// Max merged cluster-telemetry slices per query (distributed solves:
  /// ranks x supersteps); overflow drops and counts like spans/events.
  std::size_t rank_slice_capacity = 4096;
};

/// One closed interval of work. Offsets are seconds since the trace origin
/// (admission time), so the queue-wait span starts at ~0 by construction.
struct span {
  const char* name = "";      ///< static string (phase_names / literals)
  const char* category = "";  ///< "service" | "phase" | "distshare"
  double start_seconds = 0.0;
  double dur_seconds = 0.0;
  std::uint64_t supersteps = 0;
  std::uint64_t visitors = 0;
  std::uint64_t messages = 0;
  double modelled_seconds = 0.0;  ///< perf_model prediction for this span
};

/// A point-in-time annotation ("fragment_borrow", "oracle_prune", ...).
struct trace_event {
  const char* name = "";
  double at_seconds = 0.0;
  double value = 0.0;
};

/// One rank's activity in one superstep of a distributed solve, merged in by
/// the service from the runtime/net cluster telemetry (rank 0's aggregation).
/// Remote ranks' clocks are not comparable to the trace origin, so the Chrome
/// exporter lays each rank's slices end to end from a per-rank cursor —
/// relative durations and cross-rank skew are faithful, absolute alignment
/// with the service track is not.
struct rank_slice {
  const char* phase = "";  ///< static string (telemetry phase name)
  std::int32_t rank = 0;
  std::uint32_t superstep = 0;
  double compute_seconds = 0.0;
  double send_flush_seconds = 0.0;
  double recv_wait_seconds = 0.0;
  double vote_seconds = 0.0;
  std::uint64_t visitors = 0;
  std::uint64_t bytes_sent = 0;  ///< data-frame wire bytes to all peers
};

/// The cheap digest attached to query_handle / query_result: everything a
/// caller needs to decide "was this query healthy" without walking spans.
struct trace_summary {
  std::uint64_t request_id = 0;
  std::uint64_t query_id = 0;
  double queue_wait_seconds = 0.0;
  double solve_seconds = 0.0;
  double total_seconds = 0.0;
  /// dispatch()'s completion estimate at admission; NaN-free: 0 when the
  /// request bypassed admission estimation (direct submit paths).
  double admission_estimate_seconds = 0.0;
  /// total - estimate (signed: positive means slower than promised).
  double estimate_error_seconds = 0.0;
  std::uint64_t supersteps = 0;   ///< engine supersteps/rounds, all phases
  std::uint64_t visitors = 0;     ///< visitor dispatches, all phases
  std::uint64_t messages = 0;     ///< messages sent, all phases
  double modelled_seconds = 0.0;  ///< perf_model simulated time for the solve
  /// solve_seconds - modelled_seconds (signed model residual).
  double model_error_seconds = 0.0;
  std::size_t spans = 0;
  std::size_t samples = 0;
  std::uint64_t dropped = 0;  ///< spans + events + samples lost to capacity

  // Distributed cluster attribution (solves routed via distributed.world
  // >= 2; all-zero otherwise). Folded from the merged rank telemetry's
  // straggler report via set_cluster_summary().
  std::uint32_t cluster_world = 0;
  std::uint64_t cluster_supersteps = 0;  ///< attributed superstep groups
  std::int32_t cluster_critical_rank = -1;  ///< most frequent critical rank
  std::uint64_t cluster_critical_supersteps = 0;
  double cluster_max_compute_skew = 0.0;  ///< worst max/median compute ratio
  double cluster_comm_wait_fraction = 0.0;  ///< comm share of all rank time
};

class query_trace {
 public:
  /// `pre_seconds` back-dates the origin so work that happened before the
  /// trace object existed (admission bookkeeping, queue wait already elapsed
  /// when tracing starts late) still lands at positive offsets.
  query_trace(const trace_config& cfg, std::size_t engine_lanes,
              double pre_seconds = 0.0);

  query_trace(const query_trace&) = delete;
  query_trace& operator=(const query_trace&) = delete;

  /// Seconds since the trace origin (monotonic clock).
  [[nodiscard]] double now_seconds() const noexcept;

  /// Records a closed span. Single-writer; drops (counted) at capacity.
  void add_span(span s) noexcept;

  /// Convenience: closes a span that started at `start_seconds` and ends now.
  void close_span(const char* name, const char* category, double start_seconds,
                  std::uint64_t supersteps = 0, std::uint64_t visitors = 0,
                  std::uint64_t messages = 0,
                  double modelled_seconds = 0.0) noexcept;

  /// Records a point event at the current offset. Single-writer; bounded.
  void add_event(const char* name, double value = 0.0) noexcept;

  /// Records one merged cluster-telemetry slice (distributed solves).
  /// Single-writer like spans/events; drops (counted) at capacity.
  void add_rank_slice(rank_slice s) noexcept;

  /// Writes the distributed straggler digest into the summary. Independent
  /// of finalize() (which never touches the cluster_* fields), so the
  /// service may call them in either order.
  void set_cluster_summary(std::uint32_t world, std::uint64_t supersteps,
                           std::int32_t critical_rank,
                           std::uint64_t critical_supersteps,
                           double max_compute_skew,
                           double comm_wait_fraction) noexcept;

  /// The engine-facing sample sink. Its lifetime is the trace's; the solver
  /// config carries `&probe()` down into engine_config.
  [[nodiscard]] engine_probe& probe() noexcept { return probe_; }
  [[nodiscard]] const engine_probe& probe() const noexcept { return probe_; }

  /// Freezes the summary. Call exactly once, after all writers are done.
  void finalize(std::uint64_t request_id, std::uint64_t query_id,
                double queue_wait_seconds, double solve_seconds,
                double total_seconds, double admission_estimate_seconds,
                double modelled_seconds) noexcept;

  [[nodiscard]] const trace_summary& summary() const noexcept {
    return summary_;
  }

  [[nodiscard]] const std::vector<span>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] const std::vector<trace_event>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] const std::vector<rank_slice>& rank_slices() const noexcept {
    return rank_slices_;
  }

  /// Renders the Chrome trace_event JSON array ({"traceEvents":[...]}).
  /// Read-only; call after finalize().
  [[nodiscard]] std::string to_chrome_json() const;

 private:
  std::chrono::steady_clock::time_point origin_;
  trace_config cfg_;
  std::vector<span> spans_;
  std::vector<trace_event> events_;
  std::vector<rank_slice> rank_slices_;
  std::uint64_t dropped_ = 0;
  engine_probe probe_;
  trace_summary summary_;
};

}  // namespace dsteiner::obs
