// Learned admission cost model: online recursive-least-squares regression
// from per-query analytic features to solve seconds.
//
// The service's admission estimator has to predict how long a solve will
// take *before* running it. The global per-path p50 it shipped with treats
// every cold solve alike, but the drivers of cost are analytic and known at
// admission — Saikia & Karmakar's round-complexity bounds say terminal
// count, a diameter proxy and the round structure decide the work, and the
// serving layer adds its own (warm repair vs cold, fragment pre-seeding,
// engine mode and thread grant, epoch overlay size). This model regresses
// observed solve time onto exactly those features, online:
//
//   * every completed real solve (cold or warm) calls observe(features, y);
//   * admission calls predict_seconds(features) and uses the result once
//     ready() — enough samples seen — falling back to the global-p50 path
//     before that (and keeping it as a comparison baseline forever);
//   * recursive least squares with a forgetting factor, so the model tracks
//     drift (graph mutations, cache temperature, hardware contention)
//     instead of averaging over a stale past.
//
// The RLS update is O(d^2) on a d=13 feature vector behind one mutex —
// nanoseconds against a solve, and admission-rate cheap. Observability is
// first-class: snapshot() exposes the coefficient vector, sample count and
// a residual EMA for /statusz and the Prometheus exposition, so the
// measured-vs-model loop the repo's ROADMAP calls "itself a paper-grade
// result" closes with the weights in plain sight.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>

namespace dsteiner::obs {

/// The admission feature vector. Indices are named so the service, the core
/// extractor and /statusz agree on what each coefficient means.
struct query_features {
  static constexpr std::size_t k_dim = 13;

  enum index : std::size_t {
    k_bias = 0,         ///< always 1
    k_seeds = 1,        ///< |S| after canonicalization
    k_log_vertices = 2, ///< log2(1 + n)
    k_log_arcs = 3,     ///< log2(1 + m)
    k_seeds_log_n = 4,  ///< |S| * log2(1 + n) — per-cell growth proxy
    k_seeds_sq = 5,     ///< |S|^2 — distance-graph pair count (phase 2)
    k_spread = 6,       ///< oracle seed-spread lower bound (0 = unknown)
    k_overlay = 7,      ///< epoch overlay fraction (overlay arcs / m)
    k_warm = 8,         ///< 1 when the solve is a warm-start repair
    k_fragments = 9,    ///< fraction of seeds with a borrowable fragment
    k_threaded = 10,    ///< 1 when the threaded engine runs the solve
    k_inv_threads = 11, ///< 1 / engine worker count (1 for sequential)
    k_bucketed = 12,    ///< 1 when phase 1 runs bucketed (relaxed) growth
  };

  std::array<double, k_dim> x{};

  [[nodiscard]] static const char* name(std::size_t i) noexcept;
};

struct cost_model_config {
  bool enabled = true;
  /// observe() calls before ready() — below this, admission stays on the
  /// global-p50 baseline. Small by design: RLS is sample-efficient and the
  /// baseline keeps covering until the switch.
  std::size_t min_samples = 16;
  /// RLS forgetting factor (lambda in (0, 1]): 1.0 = ordinary recursive
  /// least squares, lower values discount old solves so the model tracks
  /// epoch edits and load drift. Effective memory ~ 1 / (1 - lambda).
  double forgetting = 0.995;
  /// Initial covariance scale (P = prior_variance * I) — the ridge prior.
  /// Large = weak prior, coefficients move fast on the first samples.
  double prior_variance = 100.0;
};

/// Point-in-time view of the model for /statusz and the metrics exposition.
struct cost_model_snapshot {
  bool enabled = false;
  bool ready = false;
  std::uint64_t samples = 0;
  /// EMA of |y - prediction| over training observations (seconds).
  double abs_error_ema_seconds = 0.0;
  std::array<double, query_features::k_dim> coefficients{};
};

class cost_model {
 public:
  explicit cost_model(cost_model_config cfg = {});

  cost_model(const cost_model&) = delete;
  cost_model& operator=(const cost_model&) = delete;

  /// Predicted solve seconds for `f`, floored at zero. Returns 0.0 when the
  /// model is disabled, has seen nothing, or the prediction is non-finite
  /// (callers treat 0 as "no prediction" and fall back).
  [[nodiscard]] double predict_seconds(const query_features& f) const;

  /// True once the model has enough samples for admission to trust it.
  [[nodiscard]] bool ready() const;

  /// One RLS update from a completed solve. Non-finite or negative targets
  /// are dropped (a crashed timer must not poison the coefficients).
  void observe(const query_features& f, double solve_seconds);

  [[nodiscard]] cost_model_snapshot snapshot() const;

 private:
  static constexpr std::size_t k_d = query_features::k_dim;

  cost_model_config config_;
  mutable std::mutex mu_;
  std::array<double, k_d> w_{};                 ///< coefficient vector
  std::array<std::array<double, k_d>, k_d> p_;  ///< inverse-covariance state
  std::uint64_t samples_ = 0;
  double abs_error_ema_ = 0.0;
};

}  // namespace dsteiner::obs
