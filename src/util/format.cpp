#include "util/format.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace dsteiner::util {

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int counter = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (counter != 0 && counter % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++counter;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  constexpr std::uint64_t kib = 1024, mib = kib * 1024, gib = mib * 1024,
                          tib = gib * 1024;
  if (bytes >= tib) {
    std::snprintf(buf, sizeof buf, "%.1fTB", static_cast<double>(bytes) / static_cast<double>(tib));
  } else if (bytes >= gib) {
    std::snprintf(buf, sizeof buf, "%.1fGB", static_cast<double>(bytes) / static_cast<double>(gib));
  } else if (bytes >= mib) {
    std::snprintf(buf, sizeof buf, "%.1fMB", static_cast<double>(bytes) / static_cast<double>(mib));
  } else if (bytes >= kib) {
    std::snprintf(buf, sizeof buf, "%.1fKB", static_cast<double>(bytes) / static_cast<double>(kib));
  } else {
    std::snprintf(buf, sizeof buf, "%lluB", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string format_count(double value) {
  char buf[64];
  if (value >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.1fB", value / 1e9);
  } else if (value >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.1fM", value / 1e6);
  } else if (value >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fK", value / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", value);
  }
  return buf;
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

table::table(std::vector<std::string> header) : header_(std::move(header)) {}

void table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void table::add_rule() { rows_.emplace_back(); }

std::string table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto rule = [&] {
    std::string line = "+";
    for (const std::size_t w : widths) line += std::string(w + 2, '-') + "+";
    line += "\n";
    return line;
  }();

  const auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    line += "\n";
    return line;
  };

  std::ostringstream out;
  out << rule << emit_row(header_) << rule;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i].empty()) {
      // Skip a trailing rule: the closing rule below covers it.
      if (i + 1 < rows_.size()) out << rule;
    } else {
      out << emit_row(rows_[i]);
    }
  }
  out << rule;
  return out.str();
}

}  // namespace dsteiner::util
