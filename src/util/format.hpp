// Plain-text table rendering for the benchmark harnesses. Every bench binary
// prints the same rows/series the paper reports; this module keeps them
// aligned and readable without any external dependency.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dsteiner::util {

/// Thousands separator: 1234567 -> "1,234,567".
[[nodiscard]] std::string with_commas(std::uint64_t value);

/// Human-readable byte count: 1536 -> "1.5KB".
[[nodiscard]] std::string format_bytes(std::uint64_t bytes);

/// Large-count shorthand matching the paper's style: 3.5e9 -> "3.5B",
/// 85.7e6 -> "85.7M", 9400 -> "9.4K".
[[nodiscard]] std::string format_count(double value);

/// Fixed-point with the given number of decimals.
[[nodiscard]] std::string format_fixed(double value, int decimals);

/// Column-aligned plain-text table. Usage:
///   table t({"graph", "|S|", "time"});
///   t.add_row({"LVJ-mini", "100", "6.4s"});
///   std::cout << t.render();
class table {
 public:
  explicit table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Inserts a horizontal rule before the next row.
  void add_rule();

  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row vector == rule
};

}  // namespace dsteiner::util
