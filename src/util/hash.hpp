// Hash helpers for pair-keyed maps (cross-cell edge maps are keyed by
// (seed, seed) pairs).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

namespace dsteiner::util {

/// 64-bit finalizer (murmur3 fmix64); good avalanche for integer keys.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Order-dependent combiner for streaming hashes (fingerprints, cache keys).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                                   std::uint64_t value) noexcept {
  return mix64(seed ^ (mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

/// Streaming hash of a span of integral values (graph fingerprints, canonical
/// seed sets). Deterministic across platforms for fixed-width types.
template <typename T>
[[nodiscard]] constexpr std::uint64_t hash_range(const T* data, std::size_t size,
                                                 std::uint64_t seed = 0) noexcept {
  std::uint64_t h = hash_combine(seed, size);
  for (std::size_t i = 0; i < size; ++i) {
    h = hash_combine(h, static_cast<std::uint64_t>(data[i]));
  }
  return h;
}

/// Hash functor for std::pair of integral types.
struct pair_hash {
  template <typename A, typename B>
  [[nodiscard]] std::size_t operator()(const std::pair<A, B>& p) const noexcept {
    const auto a = static_cast<std::uint64_t>(p.first);
    const auto b = static_cast<std::uint64_t>(p.second);
    return static_cast<std::size_t>(mix64(a * 0x9e3779b97f4a7c15ULL ^ mix64(b)));
  }
};

}  // namespace dsteiner::util
