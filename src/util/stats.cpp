#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dsteiner::util {

void summary_stats::add(double sample) noexcept {
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double summary_stats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double summary_stats::stddev() const noexcept { return std::sqrt(variance()); }

summary_stats summarize(const std::vector<double>& samples) noexcept {
  summary_stats s;
  for (const double x : samples) s.add(x);
  return s;
}

double percentile(std::vector<double> samples, double p) {
  assert(!samples.empty());
  assert(p >= 0.0 && p <= 100.0);
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace dsteiner::util
