// Cooperative cancellation and deadline budgets for long-running work.
//
// The service's request/handle API lets a caller abandon a query (cancel) or
// bound it in time (deadline). Solves are CPU loops with no natural
// interruption points, so stopping one is cooperative: the work polls a
// *checkpoint* — `run_budget::check()` — at its natural round boundaries
// (visitor-engine rounds, the threaded engine's superstep barrier, solver
// phase transitions) and unwinds via `operation_cancelled` when the budget is
// exhausted. Checkpoints are one or two relaxed atomic loads (plus a clock
// read only when a deadline is armed), cheap enough for every superstep.
//
// Split source/token like std::stop_source/std::stop_token: the party that
// may cancel holds the `cancel_source`; the work holds `cancel_token` copies.
// A default-constructed token is inert (never cancels), so plumbing stays
// unconditional.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>

namespace dsteiner::util {

/// Why a checkpoint stopped the work.
enum class cancel_reason : std::uint8_t {
  none = 0,
  cancelled,  ///< a cancel_source fired (caller abandoned the work)
  deadline,   ///< the absolute deadline passed
};

[[nodiscard]] constexpr const char* to_string(cancel_reason reason) noexcept {
  switch (reason) {
    case cancel_reason::none: return "none";
    case cancel_reason::cancelled: return "cancelled";
    case cancel_reason::deadline: return "deadline";
  }
  return "?";
}

/// Thrown by a checkpoint when its budget is exhausted. Partial work is
/// discarded by ordinary stack unwinding; catchers translate the reason into
/// their own status (the service maps it to request_status::cancelled or
/// ::expired).
class operation_cancelled : public std::runtime_error {
 public:
  explicit operation_cancelled(cancel_reason why)
      : std::runtime_error(why == cancel_reason::deadline
                               ? "operation stopped: deadline expired"
                               : "operation stopped: cancelled"),
        why_(why) {}

  [[nodiscard]] cancel_reason why() const noexcept { return why_; }

 private:
  cancel_reason why_;
};

class cancel_source;

/// Observer end of a cancellation channel. Copyable, cheap (one shared_ptr);
/// a default-constructed token never reports cancellation.
class cancel_token {
 public:
  cancel_token() = default;

  /// True if this token is connected to a source (i.e. cancellation is
  /// possible at all).
  [[nodiscard]] bool can_cancel() const noexcept { return state_ != nullptr; }

  [[nodiscard]] bool cancelled() const noexcept {
    return state_ != nullptr && state_->load(std::memory_order_acquire) != 0;
  }

 private:
  friend class cancel_source;
  explicit cancel_token(
      std::shared_ptr<const std::atomic<std::uint8_t>> state) noexcept
      : state_(std::move(state)) {}

  std::shared_ptr<const std::atomic<std::uint8_t>> state_;
};

/// Owner end: `request_cancel()` flips every token minted from this source.
/// Thread-safe; cancellation is sticky (there is no reset — mint a new
/// source per unit of work).
class cancel_source {
 public:
  cancel_source() : state_(std::make_shared<std::atomic<std::uint8_t>>(0)) {}

  [[nodiscard]] cancel_token token() const noexcept {
    return cancel_token{state_};
  }

  /// Requests cancellation. Returns true if this call was the first (the
  /// transition), false if the source had already fired.
  bool request_cancel() noexcept {
    std::uint8_t expected = 0;
    return state_->compare_exchange_strong(expected, 1,
                                           std::memory_order_acq_rel);
  }

  [[nodiscard]] bool cancel_requested() const noexcept {
    return state_->load(std::memory_order_acquire) != 0;
  }

 private:
  std::shared_ptr<std::atomic<std::uint8_t>> state_;
};

/// The QoS envelope one unit of work runs under: up to two cancellation
/// tokens (the service's per-request handle and the caller's own token) plus
/// an absolute deadline. Engines and solver phases poll it at checkpoints.
///
/// `polls` is optional observability for tests: when non-null, every
/// checkpoint evaluation increments it, proving the cooperative path is
/// actually wired through a given engine or phase.
struct run_budget {
  using clock = std::chrono::steady_clock;

  cancel_token cancel;       ///< handle-level token (query_handle::cancel)
  cancel_token user_cancel;  ///< caller-supplied request token
  /// Shared-work abandonment: the service arms this on single-flight leader
  /// solves with the group's interest token, so a solve whose every rider
  /// (and requester) walked away stops at the next checkpoint instead of
  /// running to completion for nobody.
  cancel_token group_cancel;
  clock::time_point deadline = clock::time_point::max();
  std::atomic<std::uint64_t>* polls = nullptr;

  [[nodiscard]] bool has_deadline() const noexcept {
    return deadline != clock::time_point::max();
  }

  /// Evaluates the budget. Cancellation outranks the deadline when both have
  /// tripped (the caller's intent is the stronger signal).
  [[nodiscard]] cancel_reason stop_reason() const noexcept {
    if (polls != nullptr) polls->fetch_add(1, std::memory_order_relaxed);
    if (cancel.cancelled() || user_cancel.cancelled() ||
        group_cancel.cancelled()) {
      return cancel_reason::cancelled;
    }
    if (has_deadline() && clock::now() >= deadline) {
      return cancel_reason::deadline;
    }
    return cancel_reason::none;
  }

  [[nodiscard]] bool stop_requested() const noexcept {
    return stop_reason() != cancel_reason::none;
  }

  /// The checkpoint: throws operation_cancelled when the budget is exhausted.
  void check() const {
    const cancel_reason why = stop_reason();
    if (why != cancel_reason::none) throw operation_cancelled(why);
  }
};

}  // namespace dsteiner::util
