// Summary statistics accumulator, used for repeated-run benches (Fig. 7
// reports means and standard deviations across edge-weight distributions).
#pragma once

#include <cstddef>
#include <vector>

namespace dsteiner::util {

/// Online accumulator (Welford) with min/max tracking.
class summary_stats {
 public:
  void add(double sample) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Population variance (n denominator). Zero for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Convenience: stats over a whole sample vector.
[[nodiscard]] summary_stats summarize(const std::vector<double>& samples) noexcept;

/// Exact percentile by sorting a copy (fine for bench-sized inputs).
/// `p` in [0, 100]; linear interpolation between closest ranks.
[[nodiscard]] double percentile(std::vector<double> samples, double p);

}  // namespace dsteiner::util
