// Wall-clock timing helpers used by the benchmark harnesses and the solver's
// per-phase breakdown.
#pragma once

#include <chrono>
#include <string>

namespace dsteiner::util {

/// Monotonic stopwatch. Constructed running; `seconds()` reads elapsed time
/// without stopping; `restart()` zeroes it.
class timer {
 public:
  timer() noexcept : start_(clock::now()) {}

  void restart() noexcept { start_ = clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Formats a duration the way the paper's tables do: "5,813.3s", "85ms", "1.0h".
[[nodiscard]] std::string format_duration(double seconds);

}  // namespace dsteiner::util
