#include "util/timer.hpp"

#include <cstdio>

namespace dsteiner::util {

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds < 0) seconds = 0;
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%.1fms", seconds * 1e3);
  } else if (seconds < 60.0) {
    std::snprintf(buf, sizeof buf, "%.2fs", seconds);
  } else if (seconds < 3600.0) {
    std::snprintf(buf, sizeof buf, "%.1fm", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fh", seconds / 3600.0);
  }
  return buf;
}

}  // namespace dsteiner::util
