// Deterministic pseudo-random number generation for reproducible experiments.
//
// All stochastic components of the library (graph generators, weight
// assignment, seed-vertex sampling) draw from `rng`, a xoshiro256** engine
// seeded via splitmix64. Runs with the same seed are bit-identical across
// platforms, which the test suite relies on.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace dsteiner::util {

/// splitmix64 step; used to expand a single 64-bit seed into engine state.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** 1.0 — fast, high-quality 64-bit PRNG.
/// Satisfies std::uniform_random_bit_generator.
class rng {
 public:
  using result_type = std::uint64_t;

  explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform real in [0, 1).
  [[nodiscard]] double uniform_real() noexcept;

  /// Bernoulli trial with probability p of returning true.
  [[nodiscard]] bool chance(double p) noexcept;

 private:
  std::uint64_t s_[4];
};

/// Fisher-Yates shuffle with the library engine (std::shuffle is not
/// guaranteed to be reproducible across standard library implementations).
template <typename T>
void shuffle(std::vector<T>& items, rng& gen) noexcept {
  if (items.empty()) return;
  for (std::size_t i = items.size() - 1; i > 0; --i) {
    const std::size_t j = static_cast<std::size_t>(gen.uniform(0, i));
    using std::swap;
    swap(items[i], items[j]);
  }
}

/// Sample `count` distinct values from [0, population) without replacement.
/// Uses Floyd's algorithm: O(count) expected draws, no O(population) scratch.
[[nodiscard]] std::vector<std::uint64_t> sample_without_replacement(
    std::uint64_t population, std::uint64_t count, rng& gen);

}  // namespace dsteiner::util
