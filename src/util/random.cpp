#include "util/random.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace dsteiner::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

rng::rng(std::uint64_t seed) noexcept {
  // Expand the seed so that even seed=0 yields a well-mixed state.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

rng::result_type rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t rng::uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
  assert(lo <= hi);
  const std::uint64_t span = hi - lo + 1;  // span==0 means the full 2^64 range
  if (span == 0) return (*this)();
  // Debiased modulo (rejection sampling on the tail).
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw = (*this)();
  while (draw >= limit) draw = (*this)();
  return lo + draw % span;
}

double rng::uniform_real() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool rng::chance(double p) noexcept { return uniform_real() < p; }

std::vector<std::uint64_t> sample_without_replacement(std::uint64_t population,
                                                      std::uint64_t count,
                                                      rng& gen) {
  assert(count <= population);
  std::unordered_set<std::uint64_t> chosen;
  std::vector<std::uint64_t> result;
  result.reserve(count);
  // Floyd's algorithm: for j in [population-count, population), pick t in
  // [0, j]; insert t unless taken, else insert j. Guarantees uniformity.
  for (std::uint64_t j = population - count; j < population; ++j) {
    const std::uint64_t t = gen.uniform(0, j);
    if (chosen.insert(t).second) {
      result.push_back(t);
    } else {
      chosen.insert(j);
      result.push_back(j);
    }
  }
  return result;
}

}  // namespace dsteiner::util
