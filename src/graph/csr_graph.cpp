#include "graph/csr_graph.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <utility>

#include "util/hash.hpp"

namespace dsteiner::graph {

csr_graph csr_graph::from_sorted_parts(std::vector<std::uint64_t> offsets,
                                       std::vector<vertex_id> targets,
                                       std::vector<weight_t> weights) {
  assert(!offsets.empty() && offsets.front() == 0);
  assert(offsets.back() == targets.size());
  assert(targets.size() == weights.size());
#ifndef NDEBUG
  for (std::size_t v = 0; v + 1 < offsets.size(); ++v) {
    assert(offsets[v] <= offsets[v + 1]);
    for (std::uint64_t i = offsets[v] + 1; i < offsets[v + 1]; ++i) {
      assert(std::pair{targets[i - 1], weights[i - 1]} <=
             std::pair{targets[i], weights[i]});
    }
  }
#endif
  csr_graph g;
  g.offsets_ = std::move(offsets);
  g.targets_ = std::move(targets);
  g.weights_ = std::move(weights);
  g.fingerprint_ = util::hash_range(g.offsets_.data(), g.offsets_.size(), 0x5d5a);
  g.fingerprint_ =
      util::hash_range(g.targets_.data(), g.targets_.size(), g.fingerprint_);
  g.fingerprint_ =
      util::hash_range(g.weights_.data(), g.weights_.size(), g.fingerprint_);
  return g;
}

csr_graph::csr_graph(const edge_list& list) {
  const vertex_id n = list.num_vertices();
  offsets_.assign(n + 1, 0);
  for (const auto& e : list.edges()) ++offsets_[e.source + 1];
  std::partial_sum(offsets_.begin(), offsets_.end(), offsets_.begin());

  targets_.resize(list.size());
  weights_.resize(list.size());
  std::vector<std::uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& e : list.edges()) {
    const std::uint64_t slot = cursor[e.source]++;
    targets_[slot] = e.target;
    weights_[slot] = e.weight;
  }

  // Sort each adjacency row by (target, weight) so neighbor scans are ordered
  // and edge_weight() can early-exit deterministically.
  for (vertex_id v = 0; v < n; ++v) {
    const std::uint64_t begin = offsets_[v], end = offsets_[v + 1];
    std::vector<std::pair<vertex_id, weight_t>> row;
    row.reserve(end - begin);
    for (std::uint64_t i = begin; i < end; ++i) row.emplace_back(targets_[i], weights_[i]);
    std::sort(row.begin(), row.end());
    for (std::uint64_t i = begin; i < end; ++i) {
      targets_[i] = row[i - begin].first;
      weights_[i] = row[i - begin].second;
    }
  }

  fingerprint_ = util::hash_range(offsets_.data(), offsets_.size(), 0x5d5a);
  fingerprint_ = util::hash_range(targets_.data(), targets_.size(), fingerprint_);
  fingerprint_ = util::hash_range(weights_.data(), weights_.size(), fingerprint_);
}

std::optional<weight_t> csr_graph::edge_weight(vertex_id u, vertex_id v) const noexcept {
  const auto nbrs = neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return std::nullopt;
  // Rows are sorted by (target, weight): the first hit is the minimum weight.
  return weights(u)[static_cast<std::size_t>(it - nbrs.begin())];
}

std::uint64_t csr_graph::memory_bytes() const noexcept {
  return offsets_.size() * sizeof(std::uint64_t) +
         targets_.size() * sizeof(vertex_id) + weights_.size() * sizeof(weight_t);
}

}  // namespace dsteiner::graph
