#include "graph/edge_list.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dsteiner::graph {

void edge_list::add_edge(vertex_id u, vertex_id v, weight_t w) {
  edges_.push_back({u, v, w});
  num_vertices_ = std::max(num_vertices_, std::max(u, v) + 1);
}

void edge_list::add_undirected_edge(vertex_id u, vertex_id v, weight_t w) {
  add_edge(u, v, w);
  add_edge(v, u, w);
}

void edge_list::symmetrize() {
  const std::size_t original = edges_.size();
  edges_.reserve(original * 2);
  for (std::size_t i = 0; i < original; ++i) {
    const weighted_edge e = edges_[i];
    edges_.push_back({e.target, e.source, e.weight});
  }
  canonicalize();
}

void edge_list::canonicalize() {
  std::erase_if(edges_, [](const weighted_edge& e) { return e.source == e.target; });
  std::sort(edges_.begin(), edges_.end(),
            [](const weighted_edge& a, const weighted_edge& b) {
              if (a.source != b.source) return a.source < b.source;
              if (a.target != b.target) return a.target < b.target;
              return a.weight < b.weight;
            });
  // Parallel edges: the sort put the minimum weight first; unique keeps it.
  edges_.erase(std::unique(edges_.begin(), edges_.end(),
                           [](const weighted_edge& a, const weighted_edge& b) {
                             return a.source == b.source && a.target == b.target;
                           }),
               edges_.end());
}

edge_list edge_list::from_stream(std::istream& in) {
  edge_list result;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') continue;
    std::istringstream fields(line);
    vertex_id u = 0, v = 0;
    weight_t w = 1;
    if (!(fields >> u >> v)) {
      throw std::runtime_error("edge_list: malformed line: " + line);
    }
    fields >> w;  // weight column is optional; defaults to 1
    result.add_edge(u, v, w);
  }
  return result;
}

void edge_list::to_stream(std::ostream& out) const {
  out << "# dsteiner edge list: source target weight\n";
  for (const auto& e : edges_) {
    out << e.source << ' ' << e.target << ' ' << e.weight << '\n';
  }
}

edge_list edge_list::load_text(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("edge_list: cannot open " + path);
  return from_stream(in);
}

void edge_list::save_text(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("edge_list: cannot write " + path);
  to_stream(out);
}

}  // namespace dsteiner::graph
