// Graphviz DOT export for Steiner trees — used to regenerate the paper's
// Fig. 9 (MiCo Steiner trees with seed vertices in red and Steiner vertices
// in blue).
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "graph/types.hpp"

namespace dsteiner::graph {

struct dot_options {
  std::string graph_name = "steiner_tree";
  std::string seed_color = "red";
  std::string steiner_color = "lightblue";
  bool show_weights = true;
  bool show_labels = false;  ///< vertex-id labels on nodes
};

/// Writes the subgraph formed by `edges` (typically a Steiner tree); vertices
/// in `seeds` are filled with seed_color, all others with steiner_color.
void write_dot(std::ostream& out, std::span<const weighted_edge> edges,
               std::span<const vertex_id> seeds, const dot_options& options = {});

void write_dot_file(const std::string& path, std::span<const weighted_edge> edges,
                    std::span<const vertex_id> seeds,
                    const dot_options& options = {});

}  // namespace dsteiner::graph
