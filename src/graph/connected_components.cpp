#include "graph/connected_components.hpp"

#include <algorithm>
#include <deque>

namespace dsteiner::graph {

components_result connected_components(const csr_graph& graph) {
  components_result result;
  const vertex_id n = graph.num_vertices();
  constexpr std::uint32_t unlabelled = ~std::uint32_t{0};
  result.labels.assign(n, unlabelled);

  std::deque<vertex_id> frontier;
  for (vertex_id root = 0; root < n; ++root) {
    if (result.labels[root] != unlabelled) continue;
    const std::uint32_t label = result.component_count++;
    result.sizes.push_back(0);
    result.labels[root] = label;
    frontier.push_back(root);
    while (!frontier.empty()) {
      const vertex_id v = frontier.front();
      frontier.pop_front();
      ++result.sizes[label];
      for (const vertex_id u : graph.neighbors(v)) {
        if (result.labels[u] != unlabelled) continue;
        result.labels[u] = label;
        frontier.push_back(u);
      }
    }
  }
  if (result.component_count > 0) {
    const auto it = std::max_element(result.sizes.begin(), result.sizes.end());
    result.largest_component =
        static_cast<std::uint32_t>(it - result.sizes.begin());
  }
  return result;
}

std::vector<vertex_id> largest_component_vertices(const csr_graph& graph) {
  const auto cc = connected_components(graph);
  std::vector<vertex_id> vertices;
  if (cc.component_count == 0) return vertices;
  vertices.reserve(cc.sizes[cc.largest_component]);
  for (vertex_id v = 0; v < graph.num_vertices(); ++v) {
    if (cc.labels[v] == cc.largest_component) vertices.push_back(v);
  }
  return vertices;
}

}  // namespace dsteiner::graph
