#include "graph/dijkstra.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <tuple>

namespace dsteiner::graph {

sssp_result dijkstra(const csr_graph& graph, vertex_id source) {
  assert(source < graph.num_vertices());
  sssp_result result;
  result.distance.assign(graph.num_vertices(), k_inf_distance);
  result.parent.assign(graph.num_vertices(), k_no_vertex);

  using entry = std::pair<weight_t, vertex_id>;  // (distance, vertex)
  std::priority_queue<entry, std::vector<entry>, std::greater<>> heap;
  result.distance[source] = 0;
  heap.push({0, source});
  while (!heap.empty()) {
    const auto [dist, v] = heap.top();
    heap.pop();
    if (dist != result.distance[v]) continue;  // stale entry
    const auto nbrs = graph.neighbors(v);
    const auto wts = graph.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vertex_id u = nbrs[i];
      const weight_t candidate = dist + wts[i];
      ++result.relaxations;
      if (candidate < result.distance[u] ||
          (candidate == result.distance[u] && v < result.parent[u])) {
        result.distance[u] = candidate;
        result.parent[u] = v;
        heap.push({candidate, u});
      }
    }
  }
  return result;
}

voronoi_assignment multi_source_voronoi(const csr_graph& graph,
                                        std::span<const vertex_id> seeds) {
  voronoi_assignment result;
  const vertex_id n = graph.num_vertices();
  result.distance.assign(n, k_inf_distance);
  result.src.assign(n, k_no_vertex);
  result.pred.assign(n, k_no_vertex);

  // Heap entries carry the full tie-break tuple so the first settled entry
  // per vertex is the lexicographic minimum of (distance, seed, pred).
  using entry = std::tuple<weight_t, vertex_id, vertex_id, vertex_id>;
  std::priority_queue<entry, std::vector<entry>, std::greater<>> heap;
  for (const vertex_id s : seeds) {
    assert(s < n);
    heap.push({0, s, s, s});  // seeds own themselves at distance 0 (Alg. 3 line 8)
  }

  const auto state_of = [&](vertex_id v) {
    return std::tuple{result.distance[v], result.src[v], result.pred[v]};
  };

  while (!heap.empty()) {
    const auto [dist, seed, from, v] = heap.top();
    heap.pop();
    if (std::tuple{dist, seed, from} >= state_of(v)) continue;
    result.distance[v] = dist;
    result.src[v] = seed;
    result.pred[v] = from;
    const auto nbrs = graph.neighbors(v);
    const auto wts = graph.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vertex_id u = nbrs[i];
      const weight_t candidate = dist + wts[i];
      ++result.relaxations;
      if (std::tuple{candidate, seed, v} < state_of(u)) {
        heap.push({candidate, seed, v, u});
      }
    }
  }
  return result;
}

std::vector<std::vector<weight_t>> apsp_over_seeds(
    const csr_graph& graph, std::span<const vertex_id> seeds,
    std::vector<std::vector<vertex_id>>* parents) {
  std::vector<std::vector<weight_t>> matrix;
  matrix.reserve(seeds.size());
  if (parents != nullptr) {
    parents->clear();
    parents->reserve(seeds.size());
  }
  for (const vertex_id s : seeds) {
    sssp_result run = dijkstra(graph, s);
    std::vector<weight_t> row;
    row.reserve(seeds.size());
    for (const vertex_id t : seeds) row.push_back(run.distance[t]);
    matrix.push_back(std::move(row));
    if (parents != nullptr) parents->push_back(std::move(run.parent));
  }
  return matrix;
}

std::vector<vertex_id> reconstruct_path(std::span<const vertex_id> parent,
                                        vertex_id source, vertex_id target) {
  std::vector<vertex_id> path;
  vertex_id v = target;
  while (v != k_no_vertex) {
    path.push_back(v);
    if (v == source) break;
    v = parent[v];
  }
  if (path.empty() || path.back() != source) return {};
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace dsteiner::graph
