// Mutable edge-list representation used while constructing graphs; the CSR
// structure (csr_graph.hpp) is built from a finalized edge list.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/types.hpp"

namespace dsteiner::graph {

/// A bag of weighted directed edges plus the implied vertex-count bound.
class edge_list {
 public:
  edge_list() = default;
  explicit edge_list(vertex_id num_vertices) : num_vertices_(num_vertices) {}

  void add_edge(vertex_id u, vertex_id v, weight_t w);

  /// Adds both (u,v,w) and (v,u,w).
  void add_undirected_edge(vertex_id u, vertex_id v, weight_t w);

  /// Ensures every edge (u,v) has a reverse (v,u) with the same weight.
  /// Table III: "we create symmetric edges (2|E| edges)".
  void symmetrize();

  /// Drops self-loops and, among parallel edges, keeps the minimum weight
  /// (ties broken deterministically). Sorts edges by (source, target).
  void canonicalize();

  [[nodiscard]] vertex_id num_vertices() const noexcept { return num_vertices_; }
  void set_num_vertices(vertex_id n) noexcept { num_vertices_ = n; }

  [[nodiscard]] std::size_t size() const noexcept { return edges_.size(); }
  [[nodiscard]] bool empty() const noexcept { return edges_.empty(); }

  [[nodiscard]] const std::vector<weighted_edge>& edges() const noexcept {
    return edges_;
  }
  [[nodiscard]] std::vector<weighted_edge>& edges() noexcept { return edges_; }

  /// Text format: one "u v w" triple per line; '#' comments allowed.
  static edge_list from_stream(std::istream& in);
  void to_stream(std::ostream& out) const;

  static edge_list load_text(const std::string& path);
  void save_text(const std::string& path) const;

 private:
  std::vector<weighted_edge> edges_;
  vertex_id num_vertices_ = 0;
};

}  // namespace dsteiner::graph
