// Synthetic graph generators.
//
// The paper evaluates on proprietary/large web, social and citation graphs
// (Table III). Those are unavailable here, so the dataset registry
// (io/dataset.hpp) builds scaled-down mirrors from these generators: RMAT
// reproduces the skewed degree distributions of web/social graphs; the
// regular families (grid, path, star, ...) serve tests and examples.
// All generators are deterministic in the provided seed.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"
#include "graph/types.hpp"
#include "util/random.hpp"

namespace dsteiner::graph {

/// RMAT parameters. Defaults follow the Graph500 skew (a=0.57, b=c=0.19),
/// which yields web/social-like power-law degree distributions.
struct rmat_params {
  std::uint64_t scale = 10;        ///< |V| = 2^scale
  std::uint64_t edge_factor = 16;  ///< directed edge samples = edge_factor * |V|
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;                 ///< d = 1 - a - b - c
  double noise = 0.05;             ///< per-level probability perturbation
  std::uint64_t seed = 1;
};

/// Scale-free RMAT graph; output is symmetrized and canonicalized (self-loops
/// and duplicate arcs removed), weights uninitialised to 1.
[[nodiscard]] edge_list generate_rmat(const rmat_params& params);

/// Erdős–Rényi G(n, m): m distinct undirected edges chosen uniformly.
[[nodiscard]] edge_list generate_erdos_renyi(vertex_id num_vertices,
                                             std::uint64_t num_edges,
                                             std::uint64_t seed);

/// rows x cols 4-neighbour grid; vertex (r, c) has id r * cols + c.
[[nodiscard]] edge_list generate_grid(vertex_id rows, vertex_id cols);

/// Simple path 0 - 1 - ... - (n-1).
[[nodiscard]] edge_list generate_path(vertex_id num_vertices);

/// Cycle through vertices 0..n-1.
[[nodiscard]] edge_list generate_cycle(vertex_id num_vertices);

/// Star with hub 0 and leaves 1..n-1.
[[nodiscard]] edge_list generate_star(vertex_id num_vertices);

/// Complete graph K_n (use only for small n).
[[nodiscard]] edge_list generate_complete(vertex_id num_vertices);

/// Uniform random spanning tree over n vertices (random attachment).
[[nodiscard]] edge_list generate_random_tree(vertex_id num_vertices,
                                             std::uint64_t seed);

/// Watts–Strogatz small world: ring lattice with k neighbours per side,
/// each edge rewired with probability beta.
[[nodiscard]] edge_list generate_watts_strogatz(vertex_id num_vertices,
                                                std::uint64_t k, double beta,
                                                std::uint64_t seed);

/// Assigns every arc a uniform random weight in [lo, hi]; the two directions
/// of an undirected edge always receive the same weight (Table III lists the
/// per-dataset weight ranges, e.g. LiveJournal [1, 5K]).
void assign_uniform_weights(edge_list& list, weight_t lo, weight_t hi,
                            std::uint64_t seed);

/// Adds minimum-weight edges joining distinct connected components until the
/// graph is connected (keeps synthetic mirrors usable for Steiner queries
/// whose seeds must be mutually reachable).
void connect_components(edge_list& list, weight_t bridge_weight,
                        std::uint64_t seed);

}  // namespace dsteiner::graph
