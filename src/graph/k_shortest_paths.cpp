#include "graph/k_shortest_paths.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <set>
#include <unordered_set>

#include "util/hash.hpp"

namespace dsteiner::graph {

namespace {

/// Dijkstra that ignores a set of banned vertices and banned (directed)
/// edges — the spur computation inside Yen's loop.
[[nodiscard]] weighted_path restricted_shortest_path(
    const csr_graph& graph, vertex_id source, vertex_id target,
    const std::vector<bool>& banned_vertex,
    const std::unordered_set<std::pair<vertex_id, vertex_id>, util::pair_hash>&
        banned_edge) {
  const vertex_id n = graph.num_vertices();
  std::vector<weight_t> dist(n, k_inf_distance);
  std::vector<vertex_id> parent(n, k_no_vertex);
  using entry = std::pair<weight_t, vertex_id>;
  std::priority_queue<entry, std::vector<entry>, std::greater<>> heap;
  dist[source] = 0;
  heap.push({0, source});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d != dist[v]) continue;
    if (v == target) break;
    const auto nbrs = graph.neighbors(v);
    const auto wts = graph.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vertex_id u = nbrs[i];
      if (banned_vertex[u]) continue;
      if (banned_edge.contains({v, u})) continue;
      const weight_t candidate = d + wts[i];
      if (candidate < dist[u] ||
          (candidate == dist[u] && v < parent[u])) {
        dist[u] = candidate;
        parent[u] = v;
        heap.push({candidate, u});
      }
    }
  }
  weighted_path path;
  if (dist[target] == k_inf_distance) return path;
  path.total_distance = dist[target];
  for (vertex_id v = target; v != k_no_vertex; v = parent[v]) {
    path.vertices.push_back(v);
    if (v == source) break;
  }
  std::reverse(path.vertices.begin(), path.vertices.end());
  return path;
}

/// Candidate ordering: (distance, vertex sequence) — deterministic.
struct path_less {
  bool operator()(const weighted_path& a, const weighted_path& b) const {
    if (a.total_distance != b.total_distance) {
      return a.total_distance < b.total_distance;
    }
    return a.vertices < b.vertices;
  }
};

}  // namespace

std::vector<weighted_path> yen_k_shortest_paths(const csr_graph& graph,
                                                vertex_id source,
                                                vertex_id target,
                                                std::size_t k) {
  assert(source < graph.num_vertices() && target < graph.num_vertices());
  std::vector<weighted_path> accepted;
  if (k == 0) return accepted;

  std::vector<bool> no_banned_vertices(graph.num_vertices(), false);
  const weighted_path first = restricted_shortest_path(
      graph, source, target, no_banned_vertices, {});
  if (first.vertices.empty()) return accepted;
  accepted.push_back(first);

  std::set<weighted_path, path_less> candidates;
  std::vector<bool> banned_vertex(graph.num_vertices(), false);
  while (accepted.size() < k) {
    const weighted_path& previous = accepted.back();
    // Each prefix of the last accepted path spawns a spur candidate.
    for (std::size_t spur = 0; spur + 1 < previous.vertices.size(); ++spur) {
      const vertex_id spur_vertex = previous.vertices[spur];

      // Ban the outgoing edge of every accepted path sharing this prefix.
      std::unordered_set<std::pair<vertex_id, vertex_id>, util::pair_hash>
          banned_edge;
      for (const auto& path : accepted) {
        if (path.vertices.size() <= spur + 1) continue;
        if (std::equal(path.vertices.begin(),
                       path.vertices.begin() + static_cast<std::ptrdiff_t>(spur + 1),
                       previous.vertices.begin())) {
          banned_edge.insert({path.vertices[spur], path.vertices[spur + 1]});
        }
      }
      // Ban the prefix vertices (loopless requirement).
      std::fill(banned_vertex.begin(), banned_vertex.end(), false);
      for (std::size_t i = 0; i < spur; ++i) {
        banned_vertex[previous.vertices[i]] = true;
      }

      const weighted_path spur_path = restricted_shortest_path(
          graph, spur_vertex, target, banned_vertex, banned_edge);
      if (spur_path.vertices.empty()) continue;

      // Stitch prefix + spur path.
      weighted_path candidate;
      candidate.vertices.assign(
          previous.vertices.begin(),
          previous.vertices.begin() + static_cast<std::ptrdiff_t>(spur));
      candidate.vertices.insert(candidate.vertices.end(),
                                spur_path.vertices.begin(),
                                spur_path.vertices.end());
      candidate.total_distance = spur_path.total_distance;
      for (std::size_t i = 0; i < spur; ++i) {
        candidate.total_distance +=
            *graph.edge_weight(previous.vertices[i], previous.vertices[i + 1]);
      }
      candidates.insert(std::move(candidate));
    }
    // Accept the best unseen candidate.
    bool found = false;
    while (!candidates.empty()) {
      weighted_path best = *candidates.begin();
      candidates.erase(candidates.begin());
      if (std::find(accepted.begin(), accepted.end(), best) ==
          accepted.end()) {
        accepted.push_back(std::move(best));
        found = true;
        break;
      }
    }
    if (!found) break;  // fewer than k simple paths exist
  }
  return accepted;
}

std::vector<weighted_edge> path_union_subgraph(
    const csr_graph& graph, const std::vector<weighted_path>& paths) {
  std::set<std::pair<vertex_id, vertex_id>> seen;
  std::vector<weighted_edge> edges;
  for (const auto& path : paths) {
    for (std::size_t i = 0; i + 1 < path.vertices.size(); ++i) {
      const vertex_id u = std::min(path.vertices[i], path.vertices[i + 1]);
      const vertex_id v = std::max(path.vertices[i], path.vertices[i + 1]);
      if (!seen.insert({u, v}).second) continue;
      edges.push_back({u, v, *graph.edge_weight(u, v)});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const weighted_edge& a, const weighted_edge& b) {
              return std::tuple{a.source, a.target} <
                     std::tuple{b.source, b.target};
            });
  return edges;
}

}  // namespace dsteiner::graph
