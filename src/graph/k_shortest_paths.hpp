// K shortest loopless paths (Yen's algorithm).
//
// The paper's §I frames |S| = 2 exploration through "sets of edges that
// exist in shortest weighted paths and near-shortest weighted paths (low
// total distance paths)" with augmenting-path refinement; Steiner trees are
// the |S| > 2 generalization. This module provides that |S| = 2 framework:
// the k lowest-distance simple paths between a vertex pair, whose edge union
// forms the "near-shortest path subgraph" a user explores.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace dsteiner::graph {

struct weighted_path {
  std::vector<vertex_id> vertices;  ///< source .. target
  weight_t total_distance = 0;

  friend bool operator==(const weighted_path&, const weighted_path&) = default;
};

/// Up to k shortest simple paths from source to target, ordered by
/// (total distance, lexicographic vertex sequence). Fewer than k paths are
/// returned when the graph does not contain k simple paths.
[[nodiscard]] std::vector<weighted_path> yen_k_shortest_paths(
    const csr_graph& graph, vertex_id source, vertex_id target, std::size_t k);

/// Union of the edges of `paths` (canonical u < v) — the near-shortest-path
/// subgraph of §I.
[[nodiscard]] std::vector<weighted_edge> path_union_subgraph(
    const csr_graph& graph, const std::vector<weighted_path>& paths);

}  // namespace dsteiner::graph
