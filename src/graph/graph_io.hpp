// Binary graph serialization — the analogue of the "HavoqGT binary graph
// format" whose storage sizes Table III reports. The CSR arrays are written
// verbatim with a small header, so loading is a read into three vectors
// (no rebuild), mirroring how the paper's pipeline separates one-time
// ingestion from query-time loading.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr_graph.hpp"

namespace dsteiner::graph {

/// Magic + version guarding the layout.
inline constexpr std::uint64_t k_binary_graph_magic = 0x445354454e455231ULL;

void save_binary_graph(std::ostream& out, const csr_graph& graph);
void save_binary_graph_file(const std::string& path, const csr_graph& graph);

/// Throws std::runtime_error on bad magic/version/truncation.
[[nodiscard]] csr_graph load_binary_graph(std::istream& in);
[[nodiscard]] csr_graph load_binary_graph_file(const std::string& path);

}  // namespace dsteiner::graph
