// Breadth-first search over hop counts (ignores edge weights). The paper's
// seed-selection methodology (§V "Seed Vertex Selection", §V-E) is built on
// BFS levels within the largest connected component.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace dsteiner::graph {

/// Hop distance used by BFS levels; k_unreached_level marks unreachable
/// vertices.
using bfs_level = std::uint32_t;
inline constexpr bfs_level k_unreached_level = ~bfs_level{0};

struct bfs_result {
  std::vector<bfs_level> levels;  ///< per-vertex hop count from the source
  std::vector<vertex_id> parent;  ///< BFS-tree parent (k_no_vertex at source/unreached)
  bfs_level max_level = 0;        ///< eccentricity of the source within its component
  std::uint64_t reached = 0;      ///< vertices visited (component size)
};

/// Standard queue-based BFS from `source`.
[[nodiscard]] bfs_result breadth_first_search(const csr_graph& graph,
                                              vertex_id source);

}  // namespace dsteiner::graph
