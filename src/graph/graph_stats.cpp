#include "graph/graph_stats.hpp"

#include <algorithm>
#include <sstream>

#include "graph/connected_components.hpp"
#include "util/format.hpp"

namespace dsteiner::graph {

graph_statistics compute_statistics(const csr_graph& graph) {
  graph_statistics stats;
  stats.num_vertices = graph.num_vertices();
  stats.num_arcs = graph.num_arcs();
  stats.memory_bytes = graph.memory_bytes();
  if (stats.num_vertices > 0) {
    stats.avg_degree =
        static_cast<double>(stats.num_arcs) / static_cast<double>(stats.num_vertices);
  }
  for (vertex_id v = 0; v < graph.num_vertices(); ++v) {
    stats.max_degree = std::max(stats.max_degree, graph.degree(v));
  }
  if (stats.num_arcs > 0) {
    const auto& weights = graph.arc_weights();
    const auto [lo, hi] = std::minmax_element(weights.begin(), weights.end());
    stats.min_weight = *lo;
    stats.max_weight = *hi;
  }
  const auto cc = connected_components(graph);
  stats.num_components = cc.component_count;
  stats.largest_component_size =
      cc.component_count > 0 ? cc.sizes[cc.largest_component] : 0;
  return stats;
}

std::string describe(const graph_statistics& stats) {
  std::ostringstream out;
  out << "|V|=" << util::format_count(static_cast<double>(stats.num_vertices))
      << " 2|E|=" << util::format_count(static_cast<double>(stats.num_arcs))
      << " maxdeg=" << util::format_count(static_cast<double>(stats.max_degree))
      << " avgdeg=" << util::format_fixed(stats.avg_degree, 1) << " weights=["
      << stats.min_weight << ", " << stats.max_weight << "]"
      << " mem=" << util::format_bytes(stats.memory_bytes);
  return out.str();
}

}  // namespace dsteiner::graph
