// Delta-stepping SSSP (Meyer & Sanders) — the work-efficient parallel
// shortest-path algorithm the paper discusses as the alternative to its
// Bellman-Ford formulation (§III: Ceccarello et al. [25] use Delta-stepping
// for multi-source distance computation; Wang et al. [26] adapt it on GPUs
// but "the technique does not naturally extend to distributed memory").
//
// Provided as a substrate kernel for comparison: buckets of width delta are
// processed in order; light edges (w < delta) are relaxed iteratively within
// a bucket, heavy edges once on bucket settlement.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace dsteiner::graph {

struct delta_stepping_result {
  std::vector<weight_t> distance;
  std::vector<vertex_id> parent;
  std::uint64_t buckets_processed = 0;
  std::uint64_t light_relaxations = 0;
  std::uint64_t heavy_relaxations = 0;
};

/// SSSP from `source` with bucket width `delta` (0 picks a heuristic width:
/// average edge weight). Distances equal Dijkstra's; parents use the same
/// (distance, parent-id) tie-break as the rest of the library.
[[nodiscard]] delta_stepping_result delta_stepping(const csr_graph& graph,
                                                   vertex_id source,
                                                   weight_t delta = 0);

/// The heuristic bucket width a delta of 0 resolves to: the average arc
/// weight, floored at 1. Shared with the engine's bucketed growth mode so
/// `bucket_delta = 0` means the same thing everywhere.
[[nodiscard]] weight_t heuristic_delta(const csr_graph& graph);

}  // namespace dsteiner::graph
