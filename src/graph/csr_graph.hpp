// Compressed sparse row (CSR) weighted graph — the cache-friendly structure
// the paper uses for its sequential baselines ("cache friendly CSR graph data
// structure", §V-G) and that backs each distributed partition here.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/types.hpp"

namespace dsteiner::graph {

/// Immutable CSR adjacency with per-edge weights. Directed representation:
/// undirected graphs carry both arc directions (2|E| entries).
class csr_graph {
 public:
  csr_graph() = default;

  /// Builds from a (not necessarily canonical) edge list. The input is copied
  /// and counting-sorted by source; parallel edges and self-loops are
  /// preserved as given — call edge_list::canonicalize() first if undesired.
  explicit csr_graph(const edge_list& list);

  /// Adopts pre-built CSR arrays whose rows are already sorted by
  /// (target, weight) — the fast path for epoch materialization, which patches
  /// a parent CSR's rows instead of round-tripping through an edge list.
  /// Preconditions (asserted in debug builds): offsets is a monotone prefix
  /// array of size |V|+1 ending at targets.size(), targets/weights have equal
  /// size, and each row obeys the (target, weight) sort order. The structural
  /// fingerprint is computed exactly as the edge-list constructor would, so
  /// identical content yields an identical fingerprint regardless of the
  /// construction path.
  [[nodiscard]] static csr_graph from_sorted_parts(
      std::vector<std::uint64_t> offsets, std::vector<vertex_id> targets,
      std::vector<weight_t> weights);

  [[nodiscard]] vertex_id num_vertices() const noexcept {
    return offsets_.empty() ? 0 : static_cast<vertex_id>(offsets_.size() - 1);
  }

  /// Number of stored arcs (2|E| for symmetric graphs).
  [[nodiscard]] std::uint64_t num_arcs() const noexcept { return targets_.size(); }

  [[nodiscard]] std::uint64_t degree(vertex_id v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }

  [[nodiscard]] std::span<const vertex_id> neighbors(vertex_id v) const noexcept {
    return {targets_.data() + offsets_[v], targets_.data() + offsets_[v + 1]};
  }

  [[nodiscard]] std::span<const weight_t> weights(vertex_id v) const noexcept {
    return {weights_.data() + offsets_[v], weights_.data() + offsets_[v + 1]};
  }

  /// Weight of arc (u, v) if present; minimum across parallel arcs.
  [[nodiscard]] std::optional<weight_t> edge_weight(vertex_id u,
                                                    vertex_id v) const noexcept;

  [[nodiscard]] bool has_edge(vertex_id u, vertex_id v) const noexcept {
    return edge_weight(u, v).has_value();
  }

  /// Bytes held by the CSR arrays (used by the Fig. 8 memory accounting).
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept;

  /// Structural fingerprint over (offsets, targets, weights), computed once at
  /// construction. Two graphs with equal fingerprints are treated as identical
  /// by the query service's result cache and warm-start donor matching.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept { return fingerprint_; }

  /// Raw arrays, exposed for kernels that iterate all arcs edge-centrically.
  [[nodiscard]] const std::vector<std::uint64_t>& offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] const std::vector<vertex_id>& targets() const noexcept {
    return targets_;
  }
  [[nodiscard]] const std::vector<weight_t>& arc_weights() const noexcept {
    return weights_;
  }

 private:
  std::vector<std::uint64_t> offsets_;  // size |V|+1
  std::vector<vertex_id> targets_;      // size = num_arcs
  std::vector<weight_t> weights_;       // size = num_arcs
  std::uint64_t fingerprint_ = 0;
};

}  // namespace dsteiner::graph
