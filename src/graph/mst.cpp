#include "graph/mst.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <tuple>

#include "graph/union_find.hpp"

namespace dsteiner::graph {

mst_result prim_mst(const csr_graph& graph, vertex_id root) {
  mst_result result;
  const vertex_id n = graph.num_vertices();
  if (n == 0) {
    result.spanning = true;
    return result;
  }
  assert(root < n);

  // (weight, attach-from, vertex): lexicographic order makes tie-breaking
  // deterministic across runs and platforms.
  using entry = std::tuple<weight_t, vertex_id, vertex_id>;
  std::priority_queue<entry, std::vector<entry>, std::greater<>> heap;
  std::vector<bool> in_tree(n, false);

  heap.push({0, k_no_vertex, root});
  while (!heap.empty()) {
    const auto [w, from, v] = heap.top();
    heap.pop();
    if (in_tree[v]) continue;
    in_tree[v] = true;
    if (from != k_no_vertex) {
      result.edges.push_back({std::min(from, v), std::max(from, v), w});
      result.total_weight += w;
    }
    const auto nbrs = graph.neighbors(v);
    const auto wts = graph.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (!in_tree[nbrs[i]]) heap.push({wts[i], v, nbrs[i]});
    }
  }
  result.spanning =
      result.edges.size() + 1 == static_cast<std::size_t>(n);
  return result;
}

mst_result kruskal_mst(const edge_list& list) {
  mst_result result;
  const vertex_id n = list.num_vertices();
  std::vector<weighted_edge> sorted(list.edges());
  std::sort(sorted.begin(), sorted.end(),
            [](const weighted_edge& a, const weighted_edge& b) {
              return std::tuple{a.weight, std::min(a.source, a.target),
                                std::max(a.source, a.target)} <
                     std::tuple{b.weight, std::min(b.source, b.target),
                                std::max(b.source, b.target)};
            });
  union_find sets(n);
  for (const auto& e : sorted) {
    if (e.source == e.target) continue;
    if (!sets.unite(e.source, e.target)) continue;
    result.edges.push_back(
        {std::min(e.source, e.target), std::max(e.source, e.target), e.weight});
    result.total_weight += e.weight;
  }
  result.spanning = n == 0 || result.edges.size() + 1 == static_cast<std::size_t>(n);
  return result;
}

}  // namespace dsteiner::graph
