// Sequential minimum-spanning-tree algorithms.
//
// The paper argues distributed MST on the whole graph (the WWW/Widmayer
// approach) has poor parallel efficiency and instead runs a *sequential* MST
// only on the small distance graph G'1 (Alg. 3 line 17, "Boost's
// implementation of Prim's algorithm"). This module provides that Prim as
// well as Kruskal (used by tests as an independent cross-check and by the
// WWW baseline).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"
#include "graph/types.hpp"

namespace dsteiner::graph {

struct mst_result {
  std::vector<weighted_edge> edges;  ///< tree/forest edges, source < target
  weight_t total_weight = 0;
  bool spanning = false;  ///< true if a single tree spans every vertex
};

/// Prim with a binary heap, started from `root`. Spans root's connected
/// component only; `spanning` reports whether that covered the whole graph.
/// Deterministic: ties are broken by (weight, endpoint id).
[[nodiscard]] mst_result prim_mst(const csr_graph& graph, vertex_id root = 0);

/// Kruskal over an edge list; produces a minimum spanning forest on
/// disconnected inputs. Deterministic: edges sorted by (weight, source,
/// target).
[[nodiscard]] mst_result kruskal_mst(const edge_list& list);

}  // namespace dsteiner::graph
