#include "graph/delta_stepping.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

namespace dsteiner::graph {

weight_t heuristic_delta(const csr_graph& graph) {
  // Heuristic width: the average edge weight (Meyer & Sanders suggest
  // Theta(max_weight / max_degree); the mean works well on our inputs).
  if (graph.num_arcs() == 0) return 1;
  unsigned __int128 sum = 0;
  for (const weight_t w : graph.arc_weights()) sum += w;
  return std::max<weight_t>(1, static_cast<weight_t>(sum / graph.num_arcs()));
}

delta_stepping_result delta_stepping(const csr_graph& graph, vertex_id source,
                                     weight_t delta) {
  assert(source < graph.num_vertices());
  delta_stepping_result result;
  const vertex_id n = graph.num_vertices();
  result.distance.assign(n, k_inf_distance);
  result.parent.assign(n, k_no_vertex);

  if (delta == 0) delta = heuristic_delta(graph);

  std::vector<std::deque<vertex_id>> buckets;
  const auto bucket_of = [&](weight_t dist) {
    return static_cast<std::size_t>(dist / delta);
  };
  const auto place = [&](vertex_id v, weight_t dist) {
    const std::size_t b = bucket_of(dist);
    if (b >= buckets.size()) buckets.resize(b + 1);
    buckets[b].push_back(v);
  };

  const auto relax = [&](vertex_id from, vertex_id to, weight_t dist) {
    if (dist < result.distance[to] ||
        (dist == result.distance[to] && from < result.parent[to])) {
      const bool improved_distance = dist < result.distance[to];
      result.distance[to] = dist;
      result.parent[to] = from;
      if (improved_distance) place(to, dist);
      return true;
    }
    return false;
  };

  result.distance[source] = 0;
  result.parent[source] = k_no_vertex;
  place(source, 0);

  std::vector<vertex_id> settled;  // bucket members for the heavy pass
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    settled.clear();
    // Light-edge phase: re-process the bucket until it stops refilling.
    while (!buckets[b].empty()) {
      std::deque<vertex_id> frontier;
      frontier.swap(buckets[b]);
      for (const vertex_id v : frontier) {
        if (bucket_of(result.distance[v]) != b) continue;  // moved earlier
        settled.push_back(v);
        const auto nbrs = graph.neighbors(v);
        const auto wts = graph.weights(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          if (wts[i] >= delta) continue;
          ++result.light_relaxations;
          relax(v, nbrs[i], result.distance[v] + wts[i]);
        }
      }
    }
    // Heavy-edge phase: each settled vertex relaxes its heavy edges once.
    std::sort(settled.begin(), settled.end());
    settled.erase(std::unique(settled.begin(), settled.end()), settled.end());
    for (const vertex_id v : settled) {
      if (bucket_of(result.distance[v]) != b) continue;
      const auto nbrs = graph.neighbors(v);
      const auto wts = graph.weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (wts[i] < delta) continue;
        ++result.heavy_relaxations;
        relax(v, nbrs[i], result.distance[v] + wts[i]);
      }
    }
    ++result.buckets_processed;
  }
  return result;
}

}  // namespace dsteiner::graph
