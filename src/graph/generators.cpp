#include "graph/generators.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "graph/connected_components.hpp"
#include "util/hash.hpp"

namespace dsteiner::graph {

edge_list generate_rmat(const rmat_params& params) {
  if (params.a + params.b + params.c > 1.0) {
    throw std::invalid_argument("generate_rmat: a + b + c must be <= 1");
  }
  const vertex_id n = vertex_id{1} << params.scale;
  const std::uint64_t samples = params.edge_factor * n;
  util::rng gen(params.seed);

  edge_list list(n);
  list.edges().reserve(samples * 2);
  for (std::uint64_t i = 0; i < samples; ++i) {
    vertex_id u = 0, v = 0;
    for (std::uint64_t level = 0; level < params.scale; ++level) {
      // Perturb quadrant probabilities per level so degree correlation decays
      // (standard RMAT noise trick).
      const double jitter = 1.0 + params.noise * (gen.uniform_real() - 0.5);
      const double a = params.a * jitter;
      const double b = params.b * jitter;
      const double c = params.c * jitter;
      const double total = a + b + c + (1.0 - params.a - params.b - params.c) * jitter;
      const double draw = gen.uniform_real() * total;
      u <<= 1;
      v <<= 1;
      if (draw < a) {
        // top-left: no bit set
      } else if (draw < a + b) {
        v |= 1;
      } else if (draw < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u != v) list.add_edge(u, v, 1);
  }
  list.symmetrize();
  return list;
}

edge_list generate_erdos_renyi(vertex_id num_vertices, std::uint64_t num_edges,
                               std::uint64_t seed) {
  const std::uint64_t max_edges = num_vertices * (num_vertices - 1) / 2;
  if (num_edges > max_edges) {
    throw std::invalid_argument("generate_erdos_renyi: too many edges requested");
  }
  util::rng gen(seed);
  std::unordered_set<std::pair<vertex_id, vertex_id>, util::pair_hash> chosen;
  chosen.reserve(num_edges * 2);
  edge_list list(num_vertices);
  while (chosen.size() < num_edges) {
    vertex_id u = gen.uniform(0, num_vertices - 1);
    vertex_id v = gen.uniform(0, num_vertices - 1);
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (chosen.emplace(u, v).second) list.add_undirected_edge(u, v, 1);
  }
  list.canonicalize();
  return list;
}

edge_list generate_grid(vertex_id rows, vertex_id cols) {
  edge_list list(rows * cols);
  for (vertex_id r = 0; r < rows; ++r) {
    for (vertex_id c = 0; c < cols; ++c) {
      const vertex_id v = r * cols + c;
      if (c + 1 < cols) list.add_undirected_edge(v, v + 1, 1);
      if (r + 1 < rows) list.add_undirected_edge(v, v + cols, 1);
    }
  }
  return list;
}

edge_list generate_path(vertex_id num_vertices) {
  edge_list list(num_vertices);
  for (vertex_id v = 0; v + 1 < num_vertices; ++v) {
    list.add_undirected_edge(v, v + 1, 1);
  }
  return list;
}

edge_list generate_cycle(vertex_id num_vertices) {
  edge_list list = generate_path(num_vertices);
  if (num_vertices >= 3) list.add_undirected_edge(num_vertices - 1, 0, 1);
  return list;
}

edge_list generate_star(vertex_id num_vertices) {
  edge_list list(num_vertices);
  for (vertex_id v = 1; v < num_vertices; ++v) list.add_undirected_edge(0, v, 1);
  return list;
}

edge_list generate_complete(vertex_id num_vertices) {
  edge_list list(num_vertices);
  for (vertex_id u = 0; u < num_vertices; ++u) {
    for (vertex_id v = u + 1; v < num_vertices; ++v) {
      list.add_undirected_edge(u, v, 1);
    }
  }
  return list;
}

edge_list generate_random_tree(vertex_id num_vertices, std::uint64_t seed) {
  util::rng gen(seed);
  edge_list list(num_vertices);
  for (vertex_id v = 1; v < num_vertices; ++v) {
    const vertex_id parent = gen.uniform(0, v - 1);
    list.add_undirected_edge(parent, v, 1);
  }
  return list;
}

edge_list generate_watts_strogatz(vertex_id num_vertices, std::uint64_t k,
                                  double beta, std::uint64_t seed) {
  if (2 * k >= num_vertices) {
    throw std::invalid_argument("generate_watts_strogatz: k too large");
  }
  util::rng gen(seed);
  std::unordered_set<std::pair<vertex_id, vertex_id>, util::pair_hash> chosen;
  const auto key = [](vertex_id u, vertex_id v) {
    return u < v ? std::pair{u, v} : std::pair{v, u};
  };
  // Ring lattice...
  for (vertex_id v = 0; v < num_vertices; ++v) {
    for (std::uint64_t j = 1; j <= k; ++j) {
      chosen.insert(key(v, (v + j) % num_vertices));
    }
  }
  // ...with beta-probability rewiring of each lattice edge's far endpoint.
  std::vector<std::pair<vertex_id, vertex_id>> lattice(chosen.begin(), chosen.end());
  std::sort(lattice.begin(), lattice.end());
  for (const auto& [u, v] : lattice) {
    if (!gen.chance(beta)) continue;
    const vertex_id w = gen.uniform(0, num_vertices - 1);
    if (w == u || chosen.contains(key(u, w))) continue;
    chosen.erase(key(u, v));
    chosen.insert(key(u, w));
  }
  edge_list list(num_vertices);
  for (const auto& [u, v] : chosen) list.add_undirected_edge(u, v, 1);
  list.canonicalize();
  return list;
}

void assign_uniform_weights(edge_list& list, weight_t lo, weight_t hi,
                            std::uint64_t seed) {
  assert(lo >= 1 && lo <= hi);
  // Hash the canonical endpoint pair with the seed so both directions of an
  // undirected edge deterministically agree, independent of edge order.
  for (auto& e : list.edges()) {
    const undirected_key k(e.source, e.target);
    const std::uint64_t h =
        util::mix64(util::mix64(k.lo ^ seed * 0x9e3779b97f4a7c15ULL) ^ k.hi);
    e.weight = lo + h % (hi - lo + 1);
  }
}

void connect_components(edge_list& list, weight_t bridge_weight,
                        std::uint64_t seed) {
  const csr_graph graph(list);
  const auto cc = connected_components(graph);
  if (cc.component_count <= 1) return;
  util::rng gen(seed);
  // Collect one random member per component, then chain them onto the first.
  std::vector<std::vector<vertex_id>> members(cc.component_count);
  for (vertex_id v = 0; v < graph.num_vertices(); ++v) {
    members[cc.labels[v]].push_back(v);
  }
  std::vector<vertex_id> representative(cc.component_count);
  for (std::size_t c = 0; c < members.size(); ++c) {
    representative[c] = members[c][gen.uniform(0, members[c].size() - 1)];
  }
  for (std::size_t c = 1; c < representative.size(); ++c) {
    list.add_undirected_edge(representative[0], representative[c], bridge_weight);
  }
  list.canonicalize();
}

}  // namespace dsteiner::graph
