// Graph mutation epochs: immutable-base + copy-on-write overlay views over
// csr_graph.
//
// The paper's §I workflow has users "adding or removing classes of edges
// and/or vertices and adjusting edge distance functions" interactively.
// Rebuilding a CSR (and everything keyed by its fingerprint — result cache,
// warm-start donors) per edit throws away exactly the state that makes
// interactive latency acceptable. An epoch_graph instead derives a new
// *epoch* from a batch of edge edits:
//
//   - Derivation is O(delta + touched rows): only the adjacency rows whose
//     edges changed are copied into a private overlay; every other row keeps
//     pointing at the shared immutable base CSR.
//   - Each epoch carries a *chained* content fingerprint
//     hash(parent fingerprint, applied delta), so deriving is O(delta) in
//     hashing work too — no O(m) array rehash until a solve actually needs
//     the materialized CSR.
//   - The full csr_graph view is materialized lazily (first solve), by
//     patching the base arrays row-wise — a memcpy-speed rebuild that skips
//     the edge-list round trip and per-row re-sort. An epoch whose overlay is
//     empty shares the base CSR outright.
//   - When accumulated overlay rows exceed a configurable fraction of the
//     base arc count, derivation compacts: the fresh CSR becomes the new
//     base and the overlay resets (bounding both derivation cost and the
//     memory retired epochs can pin).
//
// Epoch provenance (parent pointer + the *applied* delta, with old weights
// recorded) is what lets the warm-start layer repair a donor solve from a
// previous epoch instead of recomputing (core/warm_start.hpp), and what lets
// the service keep serving old-epoch cached results while new-epoch solves
// warm up (service/steiner_service.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace dsteiner::graph {

/// One requested undirected edge edit. `reweight` sets the weight of every
/// parallel arc between u and v (both directions); `disable` removes them;
/// `enable` inserts a fresh undirected edge (the edge must be absent).
struct edge_edit {
  enum class op_t : std::uint8_t { reweight, disable, enable };

  vertex_id u = 0;
  vertex_id v = 0;
  weight_t weight = 1;  ///< new weight for reweight/enable; ignored by disable
  op_t op = op_t::reweight;

  [[nodiscard]] static edge_edit reweight(vertex_id u, vertex_id v, weight_t w) {
    return {u, v, w, op_t::reweight};
  }
  [[nodiscard]] static edge_edit disable(vertex_id u, vertex_id v) {
    return {u, v, 0, op_t::disable};
  }
  [[nodiscard]] static edge_edit enable(vertex_id u, vertex_id v, weight_t w) {
    return {u, v, w, op_t::enable};
  }
};

/// A batch of edge edits deriving one epoch from its parent.
struct edge_delta {
  std::vector<edge_edit> edits;

  [[nodiscard]] bool empty() const noexcept { return edits.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return edits.size(); }
};

/// An edit as actually applied, annotated with the before/after weights the
/// warm-start repair needs to classify it (raised/removed edges damage the
/// donor labelling; lowered/added edges only open improvement frontiers).
/// min_weight semantics: for parallel edges the recorded weight is the
/// minimum across the parallel arcs (the only one shortest paths can use).
struct applied_edge_edit {
  vertex_id u = 0;
  vertex_id v = 0;
  bool had_edge = false;  ///< edge existed before the edit
  bool has_edge = false;  ///< edge exists after the edit
  weight_t old_weight = 0;  ///< valid when had_edge
  weight_t new_weight = 0;  ///< valid when has_edge

  /// True when the edit can invalidate donor labels whose shortest-path
  /// witness crossed this edge (weight raised, or edge removed).
  [[nodiscard]] bool raised() const noexcept {
    return had_edge && (!has_edge || new_weight > old_weight);
  }
  /// True when the edit can only create better paths (weight lowered, or
  /// edge added).
  [[nodiscard]] bool lowered() const noexcept {
    return has_edge && (!had_edge || new_weight < old_weight);
  }
  /// True when the edit left the effective weight unchanged (no-op).
  [[nodiscard]] bool unchanged() const noexcept {
    return had_edge == has_edge && (!has_edge || new_weight == old_weight);
  }
};

/// One immutable epoch of a mutating graph. Instances are shared_ptr-managed
/// (derive() links child to parent); all accessors are const and thread-safe.
class epoch_graph : public std::enable_shared_from_this<epoch_graph> {
 public:
  using ptr = std::shared_ptr<const epoch_graph>;

  /// Epoch 0 over an immutable base CSR. Its fingerprint is the CSR's
  /// structural fingerprint, so epoch-keyed caches are continuous with
  /// fingerprint-keyed ones for an unedited graph.
  [[nodiscard]] static ptr make_base(csr_graph base);

  /// Derives the next epoch by applying `delta` — O(delta + touched rows +
  /// inherited overlay), never O(m) unless the compaction threshold trips.
  /// Throws std::invalid_argument on out-of-range endpoints, self-loops,
  /// zero weights, reweight/disable of an absent edge, or enable of a
  /// present one. `compact_fraction` > 0: when the resulting overlay holds
  /// more than compact_fraction * base arcs, the epoch materializes eagerly
  /// and rebases (empty overlay over the fresh CSR).
  [[nodiscard]] ptr derive(const edge_delta& delta,
                           double compact_fraction = 0.25) const;

  [[nodiscard]] std::uint64_t epoch_id() const noexcept { return epoch_id_; }

  /// Chained content fingerprint: hash(parent fingerprint, applied delta).
  /// Identifies graph content by provenance — two epochs with the same edit
  /// history have equal fingerprints; cache keys built from it never alias
  /// across epochs.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept { return fingerprint_; }

  /// Parent epoch (nullptr for a base epoch, or after this epoch retired).
  /// Compaction does NOT sever the link — provenance survives rebasing, only
  /// the storage representation changes.
  [[nodiscard]] ptr parent() const;

  /// The delta that derived this epoch from parent(), annotated with the
  /// weights it replaced. Empty for a base epoch.
  [[nodiscard]] std::span<const applied_edge_edit> delta_from_parent()
      const noexcept {
    return applied_;
  }

  // ---- overlay-aware reads (no materialization required) -------------------

  [[nodiscard]] vertex_id num_vertices() const noexcept {
    return base_->num_vertices();
  }
  [[nodiscard]] std::uint64_t num_arcs() const noexcept { return num_arcs_; }
  [[nodiscard]] std::uint64_t degree(vertex_id v) const noexcept;
  [[nodiscard]] std::span<const vertex_id> neighbors(vertex_id v) const noexcept;
  [[nodiscard]] std::span<const weight_t> weights(vertex_id v) const noexcept;
  /// Weight of edge (u, v) if present; minimum across parallel arcs.
  [[nodiscard]] std::optional<weight_t> edge_weight(vertex_id u,
                                                    vertex_id v) const noexcept;

  // ---- materialization -----------------------------------------------------

  /// The full CSR view of this epoch, materialized on first call (thread-
  /// safe) by patching the base arrays row-wise. An epoch with an empty
  /// overlay returns the base CSR itself — zero copies. Callers keep the
  /// returned shared_ptr for as long as they use the graph: a retired
  /// epoch's cached materialization may be released concurrently.
  [[nodiscard]] std::shared_ptr<const csr_graph> csr() const;

  /// Drops the cached materialization (and nothing else). In-flight holders
  /// of the shared_ptr are unaffected; a later csr() call rebuilds. No-op
  /// when the overlay is empty (the base CSR is shared, not owned per-epoch)
  /// or on a base/rebased epoch.
  void release_materialization() const;

  /// Called by the epoch store when this epoch falls out of the live window:
  /// releases the cached materialization and severs the parent link so
  /// ancestor epochs (and their overlay rows) can be freed. Holders of this
  /// epoch keep reading it; only its provenance pointer is gone.
  void retire() const;

  [[nodiscard]] bool materialized() const;

  /// Arcs held in private overlay rows (0 for a base or just-compacted
  /// epoch). Drives the compaction decision in derive().
  [[nodiscard]] std::uint64_t overlay_arcs() const noexcept { return overlay_arcs_; }
  /// Number of copy-on-write rows this epoch privately owns.
  [[nodiscard]] std::size_t overlay_rows() const noexcept { return rows_.size(); }
  /// True when derive() hit the compaction threshold and rebased this epoch
  /// onto a freshly materialized CSR.
  [[nodiscard]] bool compacted() const noexcept { return compacted_; }

  /// Bytes of private overlay storage (Fig. 8-style accounting).
  [[nodiscard]] std::uint64_t overlay_bytes() const noexcept;

 private:
  epoch_graph() = default;

  struct overlay_row {
    std::vector<vertex_id> targets;
    std::vector<weight_t> weights;
  };

  /// Row of v as this epoch sees it (overlay if touched, base otherwise).
  [[nodiscard]] const overlay_row* find_row(vertex_id v) const noexcept {
    const auto it = rows_.find(v);
    return it == rows_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] csr_graph materialize() const;

  std::shared_ptr<const csr_graph> base_;  ///< shared rebase anchor
  std::unordered_map<vertex_id, overlay_row> rows_;  ///< COW rows vs base_
  std::uint64_t overlay_arcs_ = 0;  ///< sum of overlay row sizes
  std::uint64_t num_arcs_ = 0;

  std::uint64_t epoch_id_ = 0;
  std::uint64_t fingerprint_ = 0;
  std::vector<applied_edge_edit> applied_;
  bool compacted_ = false;

  mutable std::mutex csr_mutex_;  ///< guards csr_ and parent_
  mutable ptr parent_;            ///< severed by retire()
  mutable std::shared_ptr<const csr_graph> csr_;  ///< lazy materialization
};

/// Thread-safe manager of an epoch chain: holds a bounded window of *live*
/// epochs, derives new ones, retires the oldest, and composes the applied
/// delta between any two live epochs (what an edge-delta warm start needs to
/// repair a donor from an earlier epoch).
class epoch_store {
 public:
  struct config {
    /// Overlay-size fraction of base arcs past which derive() compacts.
    double compact_fraction = 0.25;
    /// Live epochs retained (>= 1). Advancing past the window retires the
    /// oldest epoch: its cached materialization is released and the service
    /// layer purges its cache entries and donors.
    std::size_t max_live_epochs = 4;
  };

  explicit epoch_store(csr_graph base) : epoch_store(std::move(base), config{}) {}
  epoch_store(csr_graph base, config cfg);

  [[nodiscard]] epoch_graph::ptr current() const;

  /// Derives and installs a new current epoch; retires epochs that fall out
  /// of the live window. Returns the new epoch.
  epoch_graph::ptr advance(const edge_delta& delta);

  /// Live epoch by id; nullptr when unknown or retired.
  [[nodiscard]] epoch_graph::ptr find(std::uint64_t epoch_id) const;

  /// All live epochs, oldest first.
  [[nodiscard]] std::vector<epoch_graph::ptr> live() const;

  /// Composed applied delta taking epoch `from` to epoch `to` (from <= to,
  /// both live). Edits on the same undirected edge are folded (old weight
  /// from the first touch, new weight from the last); edits whose net effect
  /// is a no-op are dropped. nullopt when either epoch is not live.
  [[nodiscard]] std::optional<std::vector<applied_edge_edit>> delta_between(
      std::uint64_t from, std::uint64_t to) const;

  /// Oldest live epoch id (everything below is retired).
  [[nodiscard]] std::uint64_t first_live_epoch() const;
  [[nodiscard]] std::size_t live_count() const;

 private:
  mutable std::mutex mutex_;
  config config_;
  std::deque<epoch_graph::ptr> live_;  ///< front = oldest
};

}  // namespace dsteiner::graph
