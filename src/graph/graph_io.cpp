#include "graph/graph_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "graph/edge_list.hpp"

namespace dsteiner::graph {

namespace {

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void write_vector(std::ostream& out, const std::vector<T>& values) {
  write_pod(out, static_cast<std::uint64_t>(values.size()));
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(T)));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("binary graph: truncated stream");
  return value;
}

template <typename T>
std::vector<T> read_vector(std::istream& in) {
  const auto count = read_pod<std::uint64_t>(in);
  std::vector<T> values(count);
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!in) throw std::runtime_error("binary graph: truncated stream");
  return values;
}

}  // namespace

void save_binary_graph(std::ostream& out, const csr_graph& graph) {
  write_pod(out, k_binary_graph_magic);
  write_pod(out, std::uint64_t{1});  // version
  write_vector(out, graph.offsets());
  write_vector(out, graph.targets());
  write_vector(out, graph.arc_weights());
  if (!out) throw std::runtime_error("binary graph: write failure");
}

csr_graph load_binary_graph(std::istream& in) {
  if (read_pod<std::uint64_t>(in) != k_binary_graph_magic) {
    throw std::runtime_error("binary graph: bad magic");
  }
  if (read_pod<std::uint64_t>(in) != 1) {
    throw std::runtime_error("binary graph: unsupported version");
  }
  const auto offsets = read_vector<std::uint64_t>(in);
  const auto targets = read_vector<vertex_id>(in);
  const auto weights = read_vector<weight_t>(in);
  if (offsets.empty() || targets.size() != weights.size() ||
      offsets.back() != targets.size()) {
    throw std::runtime_error("binary graph: inconsistent arrays");
  }
  // Rebuild through the edge list so the class invariants (sorted rows) are
  // re-established by construction rather than trusted from the file.
  edge_list list(static_cast<vertex_id>(offsets.size() - 1));
  list.edges().reserve(targets.size());
  for (vertex_id v = 0; v + 1 < offsets.size(); ++v) {
    for (std::uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      list.edges().push_back({v, targets[i], weights[i]});
    }
  }
  list.set_num_vertices(static_cast<vertex_id>(offsets.size() - 1));
  return csr_graph(list);
}

void save_binary_graph_file(const std::string& path, const csr_graph& graph) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("binary graph: cannot write " + path);
  save_binary_graph(out, graph);
}

csr_graph load_binary_graph_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("binary graph: cannot open " + path);
  return load_binary_graph(in);
}

}  // namespace dsteiner::graph
