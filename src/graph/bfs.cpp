#include "graph/bfs.hpp"

#include <cassert>
#include <deque>

namespace dsteiner::graph {

bfs_result breadth_first_search(const csr_graph& graph, vertex_id source) {
  assert(source < graph.num_vertices());
  bfs_result result;
  result.levels.assign(graph.num_vertices(), k_unreached_level);
  result.parent.assign(graph.num_vertices(), k_no_vertex);

  std::deque<vertex_id> frontier{source};
  result.levels[source] = 0;
  result.reached = 1;
  while (!frontier.empty()) {
    const vertex_id v = frontier.front();
    frontier.pop_front();
    const bfs_level next = result.levels[v] + 1;
    for (const vertex_id u : graph.neighbors(v)) {
      if (result.levels[u] != k_unreached_level) continue;
      result.levels[u] = next;
      result.parent[u] = v;
      result.max_level = next;
      ++result.reached;
      frontier.push_back(u);
    }
  }
  return result;
}

}  // namespace dsteiner::graph
