// Connected-component labelling; the evaluation methodology restricts all
// seed sampling to the largest connected component ("first, we identify the
// largest connected component using BFS", §V).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace dsteiner::graph {

struct components_result {
  std::vector<std::uint32_t> labels;   ///< per-vertex component id (dense, 0-based)
  std::vector<std::uint64_t> sizes;    ///< per-component vertex count
  std::uint32_t component_count = 0;
  std::uint32_t largest_component = 0; ///< id of the largest component
};

/// Labels components by repeated BFS.
[[nodiscard]] components_result connected_components(const csr_graph& graph);

/// Vertices of the largest component, ascending order.
[[nodiscard]] std::vector<vertex_id> largest_component_vertices(
    const csr_graph& graph);

}  // namespace dsteiner::graph
