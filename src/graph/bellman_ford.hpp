// Sequential Bellman-Ford SSSP. The distributed Voronoi phase (§III) is
// "based on Bellman-Ford's algorithm" because relaxation tolerates arbitrary
// message orderings; this sequential version documents the baseline the
// asynchronous engine generalizes, and the tests cross-check both against
// Dijkstra.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/dijkstra.hpp"
#include "graph/types.hpp"

namespace dsteiner::graph {

struct bellman_ford_result {
  std::vector<weight_t> distance;
  std::vector<vertex_id> parent;
  std::uint64_t rounds = 0;       ///< full relaxation sweeps until fixpoint
  std::uint64_t relaxations = 0;  ///< total edge relaxations attempted
};

/// Queue-less Bellman-Ford: sweeps all arcs until no distance changes.
/// O(V * E) worst case; weights are non-negative so no cycle detection needed.
[[nodiscard]] bellman_ford_result bellman_ford(const csr_graph& graph,
                                               vertex_id source);

}  // namespace dsteiner::graph
