#include "graph/epoch_graph.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "util/hash.hpp"

namespace dsteiner::graph {

namespace {

/// Effective row view (targets + weights) of a vertex, without copying.
struct row_view {
  std::span<const vertex_id> targets;
  std::span<const weight_t> weights;
};

/// Minimum weight among arcs to `v` inside a sorted row; nullopt if absent.
std::optional<weight_t> row_min_weight(const row_view& row, vertex_id v) {
  const auto it = std::lower_bound(row.targets.begin(), row.targets.end(), v);
  if (it == row.targets.end() || *it != v) return std::nullopt;
  // Rows are sorted by (target, weight): the first arc of the group is the
  // minimum across parallel arcs.
  return row.weights[static_cast<std::size_t>(it - row.targets.begin())];
}

}  // namespace

epoch_graph::ptr epoch_graph::make_base(csr_graph base) {
  auto epoch = std::shared_ptr<epoch_graph>(new epoch_graph());
  epoch->base_ = std::make_shared<const csr_graph>(std::move(base));
  epoch->num_arcs_ = epoch->base_->num_arcs();
  epoch->fingerprint_ = epoch->base_->fingerprint();
  epoch->csr_ = epoch->base_;
  return epoch;
}

std::uint64_t epoch_graph::degree(vertex_id v) const noexcept {
  const overlay_row* row = find_row(v);
  return row != nullptr ? row->targets.size() : base_->degree(v);
}

std::span<const vertex_id> epoch_graph::neighbors(vertex_id v) const noexcept {
  const overlay_row* row = find_row(v);
  return row != nullptr ? std::span<const vertex_id>(row->targets)
                        : base_->neighbors(v);
}

std::span<const weight_t> epoch_graph::weights(vertex_id v) const noexcept {
  const overlay_row* row = find_row(v);
  return row != nullptr ? std::span<const weight_t>(row->weights)
                        : base_->weights(v);
}

std::optional<weight_t> epoch_graph::edge_weight(vertex_id u,
                                                 vertex_id v) const noexcept {
  if (u >= num_vertices()) return std::nullopt;
  return row_min_weight({neighbors(u), weights(u)}, v);
}

epoch_graph::ptr epoch_graph::derive(const edge_delta& delta,
                                     double compact_fraction) const {
  auto child = std::shared_ptr<epoch_graph>(new epoch_graph());
  child->base_ = base_;
  child->rows_ = rows_;  // COW inheritance: rows are small, bounded by compaction
  child->num_arcs_ = num_arcs_;
  child->epoch_id_ = epoch_id_ + 1;
  child->parent_ = shared_from_this();
  child->applied_.reserve(delta.size());

  const vertex_id n = num_vertices();
  // Private (copy-on-write) row of v in the child, copying from the base on
  // first touch.
  const auto ensure_row = [&child](vertex_id v) -> overlay_row& {
    const auto it = child->rows_.find(v);
    if (it != child->rows_.end()) return it->second;
    overlay_row row;
    const auto nbrs = child->base_->neighbors(v);
    const auto wts = child->base_->weights(v);
    row.targets.assign(nbrs.begin(), nbrs.end());
    row.weights.assign(wts.begin(), wts.end());
    return child->rows_.emplace(v, std::move(row)).first->second;
  };
  // Sets every parallel arc to `to` inside `row` to weight w; returns the
  // number of arcs touched (0 = edge absent).
  const auto reweight_in_row = [](overlay_row& row, vertex_id to, weight_t w) {
    const auto begin =
        std::lower_bound(row.targets.begin(), row.targets.end(), to);
    std::size_t count = 0;
    for (auto it = begin; it != row.targets.end() && *it == to; ++it, ++count) {
      row.weights[static_cast<std::size_t>(it - row.targets.begin())] = w;
    }
    return count;
  };
  const auto erase_in_row = [](overlay_row& row, vertex_id to) {
    const auto begin =
        std::lower_bound(row.targets.begin(), row.targets.end(), to);
    auto end = begin;
    while (end != row.targets.end() && *end == to) ++end;
    const std::size_t count = static_cast<std::size_t>(end - begin);
    row.weights.erase(row.weights.begin() + (begin - row.targets.begin()),
                      row.weights.begin() + (end - row.targets.begin()));
    row.targets.erase(begin, end);
    return count;
  };
  const auto insert_in_row = [](overlay_row& row, vertex_id to, weight_t w) {
    // Sorted by (target, weight): position among an existing target group
    // honours the weight order too.
    std::size_t pos = 0;
    while (pos < row.targets.size() &&
           std::pair{row.targets[pos], row.weights[pos]} < std::pair{to, w}) {
      ++pos;
    }
    row.targets.insert(row.targets.begin() + pos, to);
    row.weights.insert(row.weights.begin() + pos, w);
  };

  for (const edge_edit& edit : delta.edits) {
    if (edit.u >= n || edit.v >= n) {
      throw std::invalid_argument("epoch_graph: edge edit endpoint out of range");
    }
    if (edit.u == edit.v) {
      throw std::invalid_argument("epoch_graph: self-loop edits are not allowed");
    }
    applied_edge_edit applied;
    applied.u = std::min(edit.u, edit.v);
    applied.v = std::max(edit.u, edit.v);
    const overlay_row* existing = child->find_row(edit.u);
    const row_view before =
        existing != nullptr
            ? row_view{existing->targets, existing->weights}
            : row_view{child->base_->neighbors(edit.u),
                       child->base_->weights(edit.u)};
    const std::optional<weight_t> old_w = row_min_weight(before, edit.v);
    applied.had_edge = old_w.has_value();
    applied.old_weight = old_w.value_or(0);

    switch (edit.op) {
      case edge_edit::op_t::reweight: {
        if (edit.weight == 0) {
          throw std::invalid_argument("epoch_graph: edge weights must be >= 1");
        }
        if (!old_w) {
          throw std::invalid_argument(
              "epoch_graph: reweight of an absent edge (use enable)");
        }
        (void)reweight_in_row(ensure_row(edit.u), edit.v, edit.weight);
        (void)reweight_in_row(ensure_row(edit.v), edit.u, edit.weight);
        applied.has_edge = true;
        applied.new_weight = edit.weight;
        break;
      }
      case edge_edit::op_t::disable: {
        if (!old_w) {
          throw std::invalid_argument("epoch_graph: disable of an absent edge");
        }
        const std::size_t fwd = erase_in_row(ensure_row(edit.u), edit.v);
        const std::size_t rev = erase_in_row(ensure_row(edit.v), edit.u);
        child->num_arcs_ -= fwd + rev;
        applied.has_edge = false;
        break;
      }
      case edge_edit::op_t::enable: {
        if (edit.weight == 0) {
          throw std::invalid_argument("epoch_graph: edge weights must be >= 1");
        }
        if (old_w) {
          throw std::invalid_argument(
              "epoch_graph: enable of a present edge (use reweight)");
        }
        insert_in_row(ensure_row(edit.u), edit.v, edit.weight);
        insert_in_row(ensure_row(edit.v), edit.u, edit.weight);
        child->num_arcs_ += 2;
        applied.has_edge = true;
        applied.new_weight = edit.weight;
        break;
      }
    }
    child->applied_.push_back(applied);
  }

  child->overlay_arcs_ = 0;
  for (const auto& [v, row] : child->rows_) {
    child->overlay_arcs_ += row.targets.size();
  }

  // Chained content fingerprint: O(delta) instead of O(m).
  std::uint64_t fp = util::hash_combine(fingerprint_, 0xe90c);
  for (const applied_edge_edit& e : child->applied_) {
    fp = util::hash_combine(fp, e.u);
    fp = util::hash_combine(fp, e.v);
    fp = util::hash_combine(fp, (e.had_edge ? 1u : 0u) | (e.has_edge ? 2u : 0u));
    fp = util::hash_combine(fp, e.old_weight);
    fp = util::hash_combine(fp, e.new_weight);
  }
  child->fingerprint_ = fp;

  if (compact_fraction > 0.0 &&
      static_cast<double>(child->overlay_arcs_) >
          compact_fraction * static_cast<double>(child->base_->num_arcs())) {
    child->base_ = std::make_shared<const csr_graph>(child->materialize());
    child->rows_.clear();
    child->overlay_arcs_ = 0;
    child->csr_ = child->base_;
    child->compacted_ = true;
  }
  return child;
}

csr_graph epoch_graph::materialize() const {
  const vertex_id n = num_vertices();
  std::vector<std::uint64_t> offsets(n + 1, 0);
  for (vertex_id v = 0; v < n; ++v) offsets[v + 1] = offsets[v] + degree(v);

  std::vector<vertex_id> targets(offsets[n]);
  std::vector<weight_t> weights(offsets[n]);
  for (vertex_id v = 0; v < n; ++v) {
    const auto nbrs = neighbors(v);
    const auto wts = this->weights(v);
    std::copy(nbrs.begin(), nbrs.end(), targets.begin() + offsets[v]);
    std::copy(wts.begin(), wts.end(), weights.begin() + offsets[v]);
  }
  return csr_graph::from_sorted_parts(std::move(offsets), std::move(targets),
                                      std::move(weights));
}

std::shared_ptr<const csr_graph> epoch_graph::csr() const {
  const std::lock_guard<std::mutex> lock(csr_mutex_);
  if (csr_ == nullptr) {
    csr_ = rows_.empty() ? base_
                         : std::make_shared<const csr_graph>(materialize());
  }
  return csr_;
}

void epoch_graph::release_materialization() const {
  const std::lock_guard<std::mutex> lock(csr_mutex_);
  if (csr_ != nullptr && csr_ != base_) csr_.reset();
}

void epoch_graph::retire() const {
  const std::lock_guard<std::mutex> lock(csr_mutex_);
  if (csr_ != nullptr && csr_ != base_) csr_.reset();
  parent_.reset();
}

epoch_graph::ptr epoch_graph::parent() const {
  const std::lock_guard<std::mutex> lock(csr_mutex_);
  return parent_;
}

bool epoch_graph::materialized() const {
  const std::lock_guard<std::mutex> lock(csr_mutex_);
  return csr_ != nullptr;
}

std::uint64_t epoch_graph::overlay_bytes() const noexcept {
  std::uint64_t bytes = 0;
  for (const auto& [v, row] : rows_) {
    bytes += sizeof(vertex_id) + row.targets.size() * sizeof(vertex_id) +
             row.weights.size() * sizeof(weight_t);
  }
  return bytes;
}

// ---- epoch_store -------------------------------------------------------------

epoch_store::epoch_store(csr_graph base, config cfg) : config_(cfg) {
  config_.max_live_epochs = std::max<std::size_t>(1, config_.max_live_epochs);
  live_.push_back(epoch_graph::make_base(std::move(base)));
}

epoch_graph::ptr epoch_store::current() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return live_.back();
}

epoch_graph::ptr epoch_store::advance(const edge_delta& delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  epoch_graph::ptr next = live_.back()->derive(delta, config_.compact_fraction);
  live_.push_back(next);
  while (live_.size() > config_.max_live_epochs) {
    live_.front()->retire();
    live_.pop_front();
  }
  return next;
}

epoch_graph::ptr epoch_store::find(std::uint64_t epoch_id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  // Epoch ids are consecutive: index arithmetic instead of a scan.
  const std::uint64_t first = live_.front()->epoch_id();
  if (epoch_id < first || epoch_id > live_.back()->epoch_id()) return nullptr;
  return live_[static_cast<std::size_t>(epoch_id - first)];
}

std::vector<epoch_graph::ptr> epoch_store::live() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {live_.begin(), live_.end()};
}

std::optional<std::vector<applied_edge_edit>> epoch_store::delta_between(
    std::uint64_t from, std::uint64_t to) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t first = live_.front()->epoch_id();
  const std::uint64_t last = live_.back()->epoch_id();
  if (from > to || from < first || to > last) return std::nullopt;

  // Fold the chain (from, to] per undirected edge: old state from the first
  // touch, new state from the last; net no-ops vanish. std::map keeps the
  // output deterministic.
  std::map<undirected_key, applied_edge_edit> folded;
  for (std::uint64_t id = from + 1; id <= to; ++id) {
    const epoch_graph::ptr& epoch = live_[static_cast<std::size_t>(id - first)];
    for (const applied_edge_edit& e : epoch->delta_from_parent()) {
      const undirected_key key(e.u, e.v);
      const auto [it, inserted] = folded.emplace(key, e);
      if (!inserted) {
        it->second.has_edge = e.has_edge;
        it->second.new_weight = e.new_weight;
      }
    }
  }
  std::vector<applied_edge_edit> out;
  out.reserve(folded.size());
  for (const auto& [key, e] : folded) {
    if (!e.unchanged()) out.push_back(e);
  }
  return out;
}

std::uint64_t epoch_store::first_live_epoch() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return live_.front()->epoch_id();
}

std::size_t epoch_store::live_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return live_.size();
}

}  // namespace dsteiner::graph
