// Sequential shortest-path kernels.
//
// Three roles in this repository:
//  1. `sssp` / `apsp_over_seeds` implement the expensive distance phase of the
//     KMB baseline (Alg. 1 step 1) and the APSP column of Table I.
//  2. `multi_source_voronoi` is the sequential Voronoi-cell oracle (the VC
//     column of Table I, the core of the sequential Mehlhorn baseline, and
//     the ground truth the distributed implementation is tested against).
//  3. Both use the library-wide deterministic tie-break: a vertex's state is
//     the lexicographic minimum of (distance, seed, predecessor), so results
//     are scheduling-independent.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace dsteiner::graph {

struct sssp_result {
  std::vector<weight_t> distance;  ///< k_inf_distance where unreachable
  std::vector<vertex_id> parent;   ///< shortest-path-tree parent; k_no_vertex at source
  std::uint64_t relaxations = 0;   ///< edge relaxations performed (work metric)
};

/// Binary-heap Dijkstra from a single source. O((V + E) log V).
[[nodiscard]] sssp_result dijkstra(const csr_graph& graph, vertex_id source);

/// Per-vertex Voronoi assignment: the nearest seed (`src`), the distance to
/// it, and the shortest-path-tree predecessor within the cell.
/// Matches the paper's per-vertex state (Alg. 2 step 1).
struct voronoi_assignment {
  std::vector<weight_t> distance;  ///< d1(src(v), v)
  std::vector<vertex_id> src;      ///< owning seed; k_no_vertex if unreachable
  std::vector<vertex_id> pred;     ///< predecessor towards src; seeds point to themselves
  std::uint64_t relaxations = 0;
};

/// Multi-source Dijkstra growing all Voronoi cells at once. Ties are broken
/// by (distance, seed id, predecessor id) ascending, which makes the
/// assignment unique. O((V + E) log V) total, independent of |S|.
[[nodiscard]] voronoi_assignment multi_source_voronoi(
    const csr_graph& graph, std::span<const vertex_id> seeds);

/// Distances between every pair of seeds: runs one Dijkstra per seed
/// (the KMB distance-graph construction). result[i][j] is the shortest-path
/// distance from seeds[i] to seeds[j].
///
/// `parents`, if non-null, receives each seed's full shortest-path tree for
/// path reconstruction (|S| x |V| memory — intended for the small mirrors).
[[nodiscard]] std::vector<std::vector<weight_t>> apsp_over_seeds(
    const csr_graph& graph, std::span<const vertex_id> seeds,
    std::vector<std::vector<vertex_id>>* parents = nullptr);

/// Reconstructs the path from `source`'s shortest-path tree to `target` as a
/// sequence of vertices source..target. Empty if unreachable.
[[nodiscard]] std::vector<vertex_id> reconstruct_path(
    std::span<const vertex_id> parent, vertex_id source, vertex_id target);

}  // namespace dsteiner::graph
