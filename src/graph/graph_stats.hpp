// Dataset characterization — reproduces the columns of the paper's Table III
// (|V|, 2|E|, max degree, average degree, edge-weight range, storage size).
#pragma once

#include <cstdint>
#include <string>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace dsteiner::graph {

struct graph_statistics {
  std::uint64_t num_vertices = 0;
  std::uint64_t num_arcs = 0;  ///< 2|E| for symmetric graphs
  std::uint64_t max_degree = 0;
  double avg_degree = 0.0;
  weight_t min_weight = 0;
  weight_t max_weight = 0;
  std::uint64_t memory_bytes = 0;  ///< CSR in-memory footprint
  std::uint64_t num_components = 0;
  std::uint64_t largest_component_size = 0;
};

[[nodiscard]] graph_statistics compute_statistics(const csr_graph& graph);

/// One-line human-readable summary ("|V|=4.8M 2|E|=85.7M maxdeg=20.3K ...").
[[nodiscard]] std::string describe(const graph_statistics& stats);

}  // namespace dsteiner::graph
