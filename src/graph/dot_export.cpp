#include "graph/dot_export.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>
#include <unordered_set>

namespace dsteiner::graph {

void write_dot(std::ostream& out, std::span<const weighted_edge> edges,
               std::span<const vertex_id> seeds, const dot_options& options) {
  const std::unordered_set<vertex_id> seed_set(seeds.begin(), seeds.end());
  std::unordered_set<vertex_id> vertices;
  for (const auto& e : edges) {
    vertices.insert(e.source);
    vertices.insert(e.target);
  }
  for (const vertex_id s : seeds) vertices.insert(s);

  out << "graph " << options.graph_name << " {\n";
  out << "  node [shape=circle, style=filled, width=0.2, fixedsize=true"
      << (options.show_labels ? "" : ", label=\"\"") << "];\n";
  for (const vertex_id v : vertices) {
    out << "  v" << v << " [fillcolor="
        << (seed_set.contains(v) ? options.seed_color : options.steiner_color);
    if (options.show_labels) out << ", label=\"" << v << "\"";
    out << "];\n";
  }
  for (const auto& e : edges) {
    out << "  v" << e.source << " -- v" << e.target;
    if (options.show_weights) out << " [label=\"" << e.weight << "\"]";
    out << ";\n";
  }
  out << "}\n";
}

void write_dot_file(const std::string& path, std::span<const weighted_edge> edges,
                    std::span<const vertex_id> seeds, const dot_options& options) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_dot_file: cannot write " + path);
  write_dot(out, edges, seeds, options);
}

}  // namespace dsteiner::graph
