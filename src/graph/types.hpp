// Fundamental graph types shared across the library.
//
// Following the paper's notation (§II, Table II): the background graph is
// G(V, E, d) with a distance function d : E -> Z+ \ {0}; smaller weights mean
// stronger relationships. Vertex ids are 64-bit to match the paper's
// billion-edge framing even though the bundled synthetic mirrors are smaller.
#pragma once

#include <cstdint>
#include <limits>

namespace dsteiner::graph {

using vertex_id = std::uint64_t;
using weight_t = std::uint64_t;

/// Sentinel for "no vertex" (src/pred of unreached vertices, paper Alg. 3
/// initialises these to infinity).
inline constexpr vertex_id k_no_vertex = std::numeric_limits<vertex_id>::max();

/// Sentinel distance: greater than any achievable path distance.
inline constexpr weight_t k_inf_distance = std::numeric_limits<weight_t>::max();

/// A weighted, directed edge record. Undirected graphs store both directions
/// ("symmetric edges, 2|E|" in the paper's Table III).
struct weighted_edge {
  vertex_id source = 0;
  vertex_id target = 0;
  weight_t weight = 1;

  friend bool operator==(const weighted_edge&, const weighted_edge&) = default;
};

/// Canonical undirected key for an edge: (min endpoint, max endpoint).
struct undirected_key {
  vertex_id lo = 0;
  vertex_id hi = 0;

  undirected_key() = default;
  undirected_key(vertex_id u, vertex_id v) noexcept
      : lo(u < v ? u : v), hi(u < v ? v : u) {}

  friend bool operator==(const undirected_key&, const undirected_key&) = default;
  friend auto operator<=>(const undirected_key&, const undirected_key&) = default;
};

}  // namespace dsteiner::graph
