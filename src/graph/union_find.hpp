// Disjoint-set union with union by rank and path compression; used by
// Kruskal's MST, connectivity checks, and the WWW baseline's component
// merging.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

namespace dsteiner::graph {

class union_find {
 public:
  explicit union_find(std::size_t count) : parent_(count), rank_(count, 0) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  [[nodiscard]] std::size_t find(std::size_t x) noexcept {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets containing a and b; returns false if already merged.
  bool unite(std::size_t a, std::size_t b) noexcept {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
    --set_count_adjustment_;
    return true;
  }

  [[nodiscard]] bool connected(std::size_t a, std::size_t b) noexcept {
    return find(a) == find(b);
  }

  [[nodiscard]] std::size_t size() const noexcept { return parent_.size(); }

  /// Number of disjoint sets remaining.
  [[nodiscard]] std::size_t set_count() const noexcept {
    return parent_.size() + set_count_adjustment_;
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::uint8_t> rank_;
  std::ptrdiff_t set_count_adjustment_ = 0;  // decremented per successful unite
};

}  // namespace dsteiner::graph
