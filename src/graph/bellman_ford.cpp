#include "graph/bellman_ford.hpp"

#include <cassert>

namespace dsteiner::graph {

bellman_ford_result bellman_ford(const csr_graph& graph, vertex_id source) {
  assert(source < graph.num_vertices());
  bellman_ford_result result;
  const vertex_id n = graph.num_vertices();
  result.distance.assign(n, k_inf_distance);
  result.parent.assign(n, k_no_vertex);
  result.distance[source] = 0;

  bool changed = true;
  while (changed) {
    changed = false;
    ++result.rounds;
    for (vertex_id v = 0; v < n; ++v) {
      const weight_t base = result.distance[v];
      if (base == k_inf_distance) continue;
      const auto nbrs = graph.neighbors(v);
      const auto wts = graph.weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const vertex_id u = nbrs[i];
        const weight_t candidate = base + wts[i];
        ++result.relaxations;
        if (candidate < result.distance[u] ||
            (candidate == result.distance[u] && v < result.parent[u])) {
          result.distance[u] = candidate;
          result.parent[u] = v;
          changed = true;
        }
      }
    }
  }
  return result;
}

}  // namespace dsteiner::graph
