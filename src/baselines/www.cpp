#include "baselines/www.hpp"

#include <queue>
#include <stdexcept>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/mst.hpp"
#include "graph/union_find.hpp"
#include "util/timer.hpp"

namespace dsteiner::baselines {

namespace {

/// Event-driven front growth. Two event kinds share one queue ordered by
/// "time" (distance for settle events, half the bridging distance for merge
/// events, matching the continuous front-growth intuition of [15]).
struct event {
  graph::weight_t time;   // x2 to keep half-distances integral
  std::uint8_t kind;      // 0 = settle, 1 = merge (merges after settles on ties)
  graph::weight_t dist;   // settle: tentative distance of vertex
  graph::vertex_id vertex;
  graph::vertex_id from;  // settle: predecessor; merge: endpoint u
  graph::vertex_id other; // merge: endpoint v
  graph::weight_t w;      // merge: weight of the meeting edge

  [[nodiscard]] auto order() const noexcept {
    return std::tuple{time, kind, dist, vertex, from, other};
  }
  friend bool operator>(const event& a, const event& b) noexcept {
    return a.order() > b.order();
  }
};

}  // namespace

approx_result www_steiner_tree(const graph::csr_graph& graph,
                               std::span<const graph::vertex_id> seeds) {
  util::timer wall;
  approx_result result;
  if (seeds.size() <= 1) return result;

  const graph::vertex_id n = graph.num_vertices();
  std::vector<graph::weight_t> dist(n, graph::k_inf_distance);
  std::vector<graph::vertex_id> src(n, graph::k_no_vertex);
  std::vector<graph::vertex_id> pred(n, graph::k_no_vertex);

  std::unordered_map<graph::vertex_id, std::size_t> seed_index;
  for (std::size_t i = 0; i < seeds.size(); ++i) seed_index.emplace(seeds[i], i);
  graph::union_find components(seeds.size());
  std::size_t merges_remaining = seeds.size() - 1;

  std::priority_queue<event, std::vector<event>, std::greater<>> queue;
  for (const graph::vertex_id s : seeds) {
    queue.push(event{0, 0, 0, s, s, 0, 0});
  }

  edge_set tree;
  const auto walk_to_seed = [&](graph::vertex_id x) {
    while (x != src[x]) {
      const graph::vertex_id p = pred[x];
      const graph::weight_t w = dist[x] - dist[p];
      if (!tree.insert(p, x, w)) break;
      x = p;
    }
  };

  while (!queue.empty() && merges_remaining > 0) {
    const event ev = queue.top();
    queue.pop();
    if (ev.kind == 1) {
      // Merge event: endpoints may have been re-parented since scheduling.
      const std::size_t a = components.find(seed_index.at(src[ev.from]));
      const std::size_t b = components.find(seed_index.at(src[ev.other]));
      if (a == b) continue;
      components.unite(a, b);
      --merges_remaining;
      tree.insert(ev.from, ev.other, ev.w);
      walk_to_seed(ev.from);
      walk_to_seed(ev.other);
      continue;
    }
    // Settle event.
    const graph::vertex_id v = ev.vertex;
    if (ev.dist >= dist[v]) continue;  // already settled cheaper
    dist[v] = ev.dist;
    src[v] = ev.from == v ? v : src[ev.from];
    pred[v] = ev.from;
    const auto nbrs = graph.neighbors(v);
    const auto wts = graph.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const graph::vertex_id u = nbrs[i];
      const graph::weight_t candidate = ev.dist + wts[i];
      if (dist[u] == graph::k_inf_distance) {
        queue.push(event{candidate * 2, 0, candidate, u, v, 0, 0});
      } else if (src[u] != src[v]) {
        // Fronts touch: schedule a component merge at the meeting time.
        const graph::weight_t bridge = dist[v] + wts[i] + dist[u];
        queue.push(event{bridge, 1, 0, 0, v, u, wts[i]});
      }
    }
  }
  if (merges_remaining > 0) {
    throw std::runtime_error("www_steiner_tree: seeds not mutually reachable");
  }

  // Cleanup per [15]: MST over the union of paths, then leaf pruning.
  graph::edge_list expanded;
  expanded.set_num_vertices(n);
  for (const auto& e : tree.edges()) {
    expanded.add_undirected_edge(e.source, e.target, e.weight);
  }
  graph::mst_result mst = graph::kruskal_mst(expanded);
  result.tree_edges = prune_steiner_leaves(std::move(mst.edges), seeds);
  sort_edges(result.tree_edges);
  for (const auto& e : result.tree_edges) result.total_distance += e.weight;
  result.seconds = wall.seconds();
  return result;
}

}  // namespace dsteiner::baselines
