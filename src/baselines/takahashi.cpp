#include "baselines/takahashi.hpp"

#include <queue>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "util/timer.hpp"

namespace dsteiner::baselines {

approx_result takahashi_steiner_tree(const graph::csr_graph& graph,
                                     std::span<const graph::vertex_id> seeds) {
  util::timer wall;
  approx_result result;
  if (seeds.size() <= 1) return result;

  const graph::vertex_id n = graph.num_vertices();
  std::unordered_set<graph::vertex_id> remaining(seeds.begin() + 1, seeds.end());
  remaining.erase(seeds.front());

  std::vector<bool> in_tree(n, false);
  in_tree[seeds.front()] = true;
  edge_set tree;

  // Each round: multi-source Dijkstra from the current tree until the nearest
  // remaining seed settles, then splice its path in.
  std::vector<graph::weight_t> dist(n);
  std::vector<graph::vertex_id> pred(n);
  while (!remaining.empty()) {
    std::fill(dist.begin(), dist.end(), graph::k_inf_distance);
    std::fill(pred.begin(), pred.end(), graph::k_no_vertex);
    using entry = std::pair<graph::weight_t, graph::vertex_id>;
    std::priority_queue<entry, std::vector<entry>, std::greater<>> heap;
    for (graph::vertex_id v = 0; v < n; ++v) {
      if (in_tree[v]) {
        dist[v] = 0;
        heap.push({0, v});
      }
    }
    graph::vertex_id found = graph::k_no_vertex;
    while (!heap.empty()) {
      const auto [d, v] = heap.top();
      heap.pop();
      if (d != dist[v]) continue;
      if (remaining.contains(v)) {
        found = v;
        break;
      }
      const auto nbrs = graph.neighbors(v);
      const auto wts = graph.weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const graph::weight_t candidate = d + wts[i];
        if (candidate < dist[nbrs[i]]) {
          dist[nbrs[i]] = candidate;
          pred[nbrs[i]] = v;
          heap.push({candidate, nbrs[i]});
        }
      }
    }
    if (found == graph::k_no_vertex) {
      throw std::runtime_error(
          "takahashi_steiner_tree: seeds not mutually reachable");
    }
    remaining.erase(found);
    // Splice the path from the tree to the new seed.
    graph::vertex_id x = found;
    while (!in_tree[x]) {
      in_tree[x] = true;
      const graph::vertex_id p = pred[x];
      tree.insert(p, x, dist[x] - dist[p]);
      x = p;
    }
  }

  result.tree_edges = std::move(tree).take();
  sort_edges(result.tree_edges);
  for (const auto& e : result.tree_edges) result.total_distance += e.weight;
  result.seconds = wall.seconds();
  return result;
}

}  // namespace dsteiner::baselines
