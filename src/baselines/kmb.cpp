#include "baselines/kmb.hpp"

#include <stdexcept>

#include "graph/dijkstra.hpp"
#include "graph/mst.hpp"
#include "util/timer.hpp"

namespace dsteiner::baselines {

approx_result kmb_steiner_tree(const graph::csr_graph& graph,
                               std::span<const graph::vertex_id> seeds) {
  util::timer wall;
  approx_result result;
  if (seeds.size() <= 1) return result;

  // Step 1: complete distance graph G1 via one Dijkstra per seed (APSP over
  // the seed set), keeping each shortest-path tree for step 3.
  std::vector<std::vector<graph::vertex_id>> parents;
  const auto distances = graph::apsp_over_seeds(graph, seeds, &parents);

  // Step 2: MST G2 of G1.
  graph::edge_list g1(static_cast<graph::vertex_id>(seeds.size()));
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    for (std::size_t j = i + 1; j < seeds.size(); ++j) {
      if (distances[i][j] == graph::k_inf_distance) {
        throw std::runtime_error("kmb_steiner_tree: seeds not mutually reachable");
      }
      g1.add_undirected_edge(static_cast<graph::vertex_id>(i),
                             static_cast<graph::vertex_id>(j), distances[i][j]);
    }
  }
  const graph::mst_result g2 = graph::prim_mst(graph::csr_graph(g1), 0);

  // Step 3: G3 = union of the shortest paths realizing each MST edge.
  edge_set g3_edges;
  for (const auto& e : g2.edges) {
    const std::size_t i = e.source;  // seed indices
    const graph::vertex_id s = seeds[i];
    const auto path = graph::reconstruct_path(parents[i], s, seeds[e.target]);
    for (std::size_t k = 0; k + 1 < path.size(); ++k) {
      const auto w = graph.edge_weight(path[k], path[k + 1]);
      g3_edges.insert(path[k], path[k + 1], *w);
    }
  }

  // Step 4: MST G4 of G3.
  graph::edge_list g3;
  g3.set_num_vertices(graph.num_vertices());
  for (const auto& e : g3_edges.edges()) {
    g3.add_undirected_edge(e.source, e.target, e.weight);
  }
  graph::mst_result g4 = graph::kruskal_mst(g3);

  // Step 5: delete edges until no leaf is a Steiner vertex.
  result.tree_edges = prune_steiner_leaves(std::move(g4.edges), seeds);
  sort_edges(result.tree_edges);
  for (const auto& e : result.tree_edges) result.total_distance += e.weight;
  result.seconds = wall.seconds();
  return result;
}

}  // namespace dsteiner::baselines
