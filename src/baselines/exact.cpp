#include "baselines/exact.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "graph/mst.hpp"
#include "util/timer.hpp"

namespace dsteiner::baselines {

namespace {

using mask_t = std::uint32_t;

/// Reconstruction breadcrumbs: how dp[mask][v] was achieved.
struct choice {
  mask_t split = 0;                          ///< nonzero: merge of split / mask^split at v
  graph::vertex_id pred = graph::k_no_vertex;  ///< else: edge (pred -> v)
};

}  // namespace

exact_result exact_steiner_tree(const graph::csr_graph& graph,
                                std::span<const graph::vertex_id> seeds,
                                const exact_options& options) {
  util::timer wall;
  exact_result result;

  std::vector<graph::vertex_id> terminals(seeds.begin(), seeds.end());
  std::sort(terminals.begin(), terminals.end());
  terminals.erase(std::unique(terminals.begin(), terminals.end()),
                  terminals.end());
  if (terminals.size() <= 1) return result;
  if (terminals.size() > options.max_terminals) {
    throw std::invalid_argument("exact_steiner_tree: too many terminals");
  }

  const std::size_t k = terminals.size();
  const graph::vertex_id n = graph.num_vertices();
  const std::size_t num_masks = std::size_t{1} << k;
  const std::uint64_t table_bytes =
      static_cast<std::uint64_t>(num_masks) * n *
      (sizeof(graph::weight_t) + (options.reconstruct ? sizeof(choice) : 0));
  if (table_bytes > options.max_memory_bytes) {
    throw std::invalid_argument("exact_steiner_tree: dp table exceeds memory cap");
  }

  // dp[mask * n + v]: min tree weight connecting terminals(mask) U {v}.
  std::vector<graph::weight_t> dp(num_masks * n, graph::k_inf_distance);
  std::vector<choice> how;
  if (options.reconstruct) how.assign(num_masks * n, {});

  using heap_entry = std::pair<graph::weight_t, graph::vertex_id>;
  std::priority_queue<heap_entry, std::vector<heap_entry>, std::greater<>> heap;

  // Grow dp[mask][.] over the graph: multi-source Dijkstra seeded with the
  // post-merge values (the EMV "tree-growing" relaxation).
  const auto relax_over_graph = [&](mask_t mask) {
    graph::weight_t* row = dp.data() + static_cast<std::size_t>(mask) * n;
    for (graph::vertex_id v = 0; v < n; ++v) {
      if (row[v] != graph::k_inf_distance) heap.push({row[v], v});
    }
    while (!heap.empty()) {
      const auto [d, v] = heap.top();
      heap.pop();
      if (d != row[v]) continue;
      const auto nbrs = graph.neighbors(v);
      const auto wts = graph.weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const graph::weight_t candidate = d + wts[i];
        if (candidate < row[nbrs[i]]) {
          row[nbrs[i]] = candidate;
          if (options.reconstruct) {
            how[static_cast<std::size_t>(mask) * n + nbrs[i]] = {0, v};
          }
          heap.push({candidate, nbrs[i]});
        }
      }
    }
  };

  // Base cases: singleton masks reach their terminal at distance 0.
  for (std::size_t i = 0; i < k; ++i) {
    const mask_t mask = mask_t{1} << i;
    dp[static_cast<std::size_t>(mask) * n + terminals[i]] = 0;
    relax_over_graph(mask);
  }

  // Masks in increasing order (all proper submasks precede their supersets).
  for (mask_t mask = 1; mask < num_masks; ++mask) {
    if ((mask & (mask - 1)) == 0) continue;  // singletons done
    graph::weight_t* row = dp.data() + static_cast<std::size_t>(mask) * n;
    // Merge step: combine two subtrees meeting at v. Enumerate submasks that
    // contain the lowest set bit to visit each unordered split once.
    const mask_t low = mask & (~mask + 1);
    for (mask_t sub = (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask) {
      if ((sub & low) == 0) continue;
      const mask_t rest = mask ^ sub;
      const graph::weight_t* a = dp.data() + static_cast<std::size_t>(sub) * n;
      const graph::weight_t* b = dp.data() + static_cast<std::size_t>(rest) * n;
      for (graph::vertex_id v = 0; v < n; ++v) {
        if (a[v] == graph::k_inf_distance || b[v] == graph::k_inf_distance) {
          continue;
        }
        const graph::weight_t candidate = a[v] + b[v];
        if (candidate < row[v]) {
          row[v] = candidate;
          if (options.reconstruct) {
            how[static_cast<std::size_t>(mask) * n + v] = {sub,
                                                           graph::k_no_vertex};
          }
        }
      }
    }
    relax_over_graph(mask);
  }

  const mask_t full = static_cast<mask_t>(num_masks - 1);
  const graph::weight_t best =
      dp[static_cast<std::size_t>(full) * n + terminals[0]];
  if (best == graph::k_inf_distance) {
    throw std::runtime_error("exact_steiner_tree: seeds not mutually reachable");
  }
  result.optimal_distance = best;

  if (options.reconstruct) {
    // Unwind the breadcrumbs: a stack of (mask, v) states to expand.
    edge_set edges;
    std::vector<std::pair<mask_t, graph::vertex_id>> stack{{full, terminals[0]}};
    while (!stack.empty()) {
      const auto [mask, v] = stack.back();
      stack.pop_back();
      if ((mask & (mask - 1)) == 0) {
        // Singleton: walk the Dijkstra chain back to the terminal.
        graph::vertex_id x = v;
        while (true) {
          const choice& c = how[static_cast<std::size_t>(mask) * n + x];
          if (c.pred == graph::k_no_vertex) break;
          const graph::weight_t w =
              dp[static_cast<std::size_t>(mask) * n + x] -
              dp[static_cast<std::size_t>(mask) * n + c.pred];
          edges.insert(c.pred, x, w);
          x = c.pred;
        }
        continue;
      }
      const choice& c = how[static_cast<std::size_t>(mask) * n + v];
      if (c.pred != graph::k_no_vertex) {
        // Edge step: record (pred, v), continue at pred with the same mask.
        const graph::weight_t w = dp[static_cast<std::size_t>(mask) * n + v] -
                                  dp[static_cast<std::size_t>(mask) * n + c.pred];
        edges.insert(c.pred, v, w);
        stack.push_back({mask, c.pred});
      } else if (c.split != 0) {
        stack.push_back({c.split, v});
        stack.push_back({static_cast<mask_t>(mask ^ c.split), v});
      }
      // else: v is the merge point with no incoming edge (a terminal anchor).
    }
    result.tree_edges = std::move(edges).take();
    sort_edges(result.tree_edges);
  }
  result.seconds = wall.seconds();
  return result;
}

graph::weight_t brute_force_steiner_distance(
    const graph::csr_graph& graph, std::span<const graph::vertex_id> seeds) {
  const graph::vertex_id n = graph.num_vertices();
  if (n > 20) {
    throw std::invalid_argument("brute_force_steiner_distance: graph too large");
  }
  const std::unordered_set<graph::vertex_id> seed_set(seeds.begin(), seeds.end());
  if (seed_set.size() <= 1) return 0;

  std::vector<graph::vertex_id> optional_vertices;
  for (graph::vertex_id v = 0; v < n; ++v) {
    if (!seed_set.contains(v)) optional_vertices.push_back(v);
  }

  graph::weight_t best = graph::k_inf_distance;
  const std::size_t subsets = std::size_t{1} << optional_vertices.size();
  for (std::size_t subset = 0; subset < subsets; ++subset) {
    std::unordered_set<graph::vertex_id> chosen(seed_set);
    for (std::size_t i = 0; i < optional_vertices.size(); ++i) {
      if (subset & (std::size_t{1} << i)) chosen.insert(optional_vertices[i]);
    }
    // MST of the induced subgraph; candidate when it spans every chosen
    // vertex (the optimal tree's vertex set appears as some subset).
    graph::edge_list induced(n);
    for (const graph::vertex_id u : chosen) {
      const auto nbrs = graph.neighbors(u);
      const auto wts = graph.weights(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (u < nbrs[i] && chosen.contains(nbrs[i])) {
          induced.add_undirected_edge(u, nbrs[i], wts[i]);
        }
      }
    }
    const graph::mst_result mst = graph::kruskal_mst(induced);
    if (mst.edges.size() + 1 != chosen.size()) continue;  // induced disconnected
    best = std::min(best, mst.total_weight);
  }
  if (best == graph::k_inf_distance) {
    throw std::runtime_error(
        "brute_force_steiner_distance: seeds not mutually reachable");
  }
  return best;
}

}  // namespace dsteiner::baselines
