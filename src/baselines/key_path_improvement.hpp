// Key-path exchange local search.
//
// The paper's related work (§VI) notes that algorithms beating the
// 2-approximation ratio ([38] 1.598, [39] 1.55, [40] ln4+eps) "iteratively
// refine a base-solution which is typically computed using a
// 2-approximation algorithm" [41]. This module implements the canonical
// refinement move: a *key path* is a maximal tree path whose interior
// vertices are degree-2 Steiner vertices; removing it splits the tree in
// two, and if a cheaper reconnecting path exists in the graph the exchange
// strictly improves the tree. Iterated to a local optimum.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace dsteiner::baselines {

struct improvement_options {
  std::uint64_t max_rounds = 32;  ///< full passes over all key paths
};

struct improvement_result {
  std::vector<graph::weighted_edge> tree_edges;
  graph::weight_t total_distance = 0;
  graph::weight_t initial_distance = 0;
  std::uint64_t exchanges = 0;  ///< improving moves applied
  std::uint64_t rounds = 0;
  double seconds = 0.0;
};

/// Refines a valid Steiner tree by key-path exchanges. The result is always
/// a valid Steiner tree with total_distance <= the input's.
[[nodiscard]] improvement_result improve_steiner_tree(
    const graph::csr_graph& graph, std::span<const graph::vertex_id> seeds,
    std::span<const graph::weighted_edge> tree,
    const improvement_options& options = {});

}  // namespace dsteiner::baselines
