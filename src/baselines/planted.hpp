// Planted-optimum Steiner instances — known exact optima at any |S|.
//
// The paper's Table VII measures D(GS)/Dmin using SCIP-Jack optima at
// |S| up to 1000. No exact solver available here is tractable at that scale,
// so we construct instances whose optimum is known analytically:
//
//   1. Plant a random spanning tree T with light edge weights.
//   2. Add noise edges (u, v) whose weight strictly exceeds the weighted
//      tree-path distance d_T(u, v) (computed exactly via LCA).
//
// Exchange argument: any Steiner tree containing a noise edge (u, v) can
// swap it for the tree path between u and v, strictly reducing total weight
// (dropping surplus cycle edges only helps). Hence the optimum uses tree
// edges only, and the unique minimal tree-only Steiner tree is the minimal
// subtree of T spanning S — obtained by pruning non-seed leaves from T.
//
// The noise edges still act as real shortcut candidates for approximation
// algorithms (their Voronoi bridges may route through them), so measured
// ratios are informative, not trivially 1.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"
#include "graph/types.hpp"

namespace dsteiner::baselines {

struct planted_params {
  graph::vertex_id num_vertices = 1000;
  std::size_t num_seeds = 10;
  std::uint64_t num_noise_edges = 4000;
  graph::weight_t tree_weight_lo = 1;
  graph::weight_t tree_weight_hi = 100;
  /// Noise edge weight = ceil(d_T(u,v) * factor), factor uniform in
  /// [factor_lo, factor_hi]; clamped to >= d_T(u,v) + 1.
  double factor_lo = 1.05;
  double factor_hi = 3.0;
  std::uint64_t seed = 1;
};

struct planted_instance {
  graph::csr_graph graph;
  std::vector<graph::vertex_id> seeds;
  graph::weight_t optimal_distance = 0;
  std::vector<graph::weighted_edge> optimal_edges;
};

[[nodiscard]] planted_instance make_planted_instance(const planted_params& params);

/// Exact weighted tree-path distances on an explicit parent representation;
/// exposed for tests. parent[0] must be 0 (root); parent[v] < v.
class tree_distance_oracle {
 public:
  tree_distance_oracle(const std::vector<graph::vertex_id>& parent,
                       const std::vector<graph::weight_t>& parent_weight);

  [[nodiscard]] graph::weight_t distance(graph::vertex_id u,
                                         graph::vertex_id v) const;
  [[nodiscard]] graph::vertex_id lca(graph::vertex_id u, graph::vertex_id v) const;

 private:
  std::vector<std::vector<graph::vertex_id>> up_;  // binary lifting table
  std::vector<std::uint32_t> depth_;
  std::vector<graph::weight_t> root_distance_;
};

}  // namespace dsteiner::baselines
