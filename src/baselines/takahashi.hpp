// Takahashi–Matsuyama shortest-path heuristic [13] — the earliest of the
// 2-approximation family the paper surveys (bound 2(1 - 1/|S|)). Grows the
// tree seed-by-seed: repeatedly attach the seed closest to the current tree
// via its shortest path. Also commonly used as the base solution refined by
// the < 2-ratio algorithms the paper cites ([38]-[40]).
#pragma once

#include <span>

#include "baselines/baseline_util.hpp"
#include "graph/csr_graph.hpp"

namespace dsteiner::baselines {

[[nodiscard]] approx_result takahashi_steiner_tree(
    const graph::csr_graph& graph, std::span<const graph::vertex_id> seeds);

}  // namespace dsteiner::baselines
