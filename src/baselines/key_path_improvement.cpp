#include "baselines/key_path_improvement.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "baselines/baseline_util.hpp"
#include "graph/union_find.hpp"
#include "util/hash.hpp"
#include "util/timer.hpp"

namespace dsteiner::baselines {

namespace {

using graph::vertex_id;
using graph::weight_t;
using graph::weighted_edge;

/// Adjacency view of the current tree (small: |ES| edges).
using tree_adjacency =
    std::unordered_map<vertex_id, std::vector<std::pair<vertex_id, weight_t>>>;

tree_adjacency build_adjacency(std::span<const weighted_edge> edges) {
  tree_adjacency adj;
  for (const auto& e : edges) {
    adj[e.source].push_back({e.target, e.weight});
    adj[e.target].push_back({e.source, e.weight});
  }
  return adj;
}

/// A key path: sequence of tree vertices whose interior has degree 2 and is
/// not a seed; endpoints are key vertices (seed or degree != 2).
struct key_path {
  std::vector<vertex_id> vertices;
  weight_t cost = 0;
};

std::vector<key_path> enumerate_key_paths(
    const tree_adjacency& adj,
    const std::unordered_set<vertex_id>& seed_set) {
  const auto is_key = [&](vertex_id v) {
    return seed_set.contains(v) || adj.at(v).size() != 2;
  };
  std::vector<key_path> paths;
  std::unordered_set<std::pair<vertex_id, vertex_id>, util::pair_hash> seen;
  for (const auto& [v, neighbors] : adj) {
    if (!is_key(v)) continue;
    for (const auto& [first_hop, first_weight] : neighbors) {
      key_path path;
      path.vertices.push_back(v);
      path.cost = first_weight;
      vertex_id prev = v;
      vertex_id cur = first_hop;
      while (!is_key(cur)) {
        path.vertices.push_back(cur);
        const auto& outs = adj.at(cur);
        const auto& next = outs[0].first == prev ? outs[1] : outs[0];
        path.cost += next.second;
        prev = cur;
        cur = next.first;
      }
      path.vertices.push_back(cur);
      // Each key path is found from both endpoints; keep one orientation.
      const auto id = std::pair{std::min(path.vertices.front(), path.vertices.back()),
                                std::max(path.vertices.front(), path.vertices.back())};
      // Parallel key paths between the same endpoints are possible in
      // principle; the seen-set keeps one, the other survives as tree edges
      // and is revisited next round.
      if (seen.insert(id).second) paths.push_back(std::move(path));
    }
  }
  return paths;
}

}  // namespace

improvement_result improve_steiner_tree(
    const graph::csr_graph& g, std::span<const graph::vertex_id> seeds,
    std::span<const weighted_edge> tree, const improvement_options& options) {
  util::timer wall;
  improvement_result result;
  result.tree_edges.assign(tree.begin(), tree.end());
  for (const auto& e : result.tree_edges) result.initial_distance += e.weight;
  result.total_distance = result.initial_distance;
  if (result.tree_edges.empty()) return result;

  const std::unordered_set<vertex_id> seed_set(seeds.begin(), seeds.end());

  bool improved = true;
  while (improved && result.rounds < options.max_rounds) {
    improved = false;
    ++result.rounds;
    const tree_adjacency adj = build_adjacency(result.tree_edges);
    const auto paths = enumerate_key_paths(adj, seed_set);
    for (const auto& path : paths) {
      // Split: tree vertices reachable from one endpoint without using the
      // key path; everything else (tree-side) is the other component.
      std::unordered_set<vertex_id> side_a;
      {
        std::queue<vertex_id> frontier;
        frontier.push(path.vertices.front());
        side_a.insert(path.vertices.front());
        const vertex_id blocked = path.vertices[1];
        while (!frontier.empty()) {
          const vertex_id v = frontier.front();
          frontier.pop();
          for (const auto& [u, w] : adj.at(v)) {
            if (v == path.vertices.front() && u == blocked) continue;
            if (side_a.insert(u).second) frontier.push(u);
          }
        }
        // Exclude the key path interior (it is being removed).
        for (std::size_t i = 1; i + 1 < path.vertices.size(); ++i) {
          side_a.erase(path.vertices[i]);
        }
      }
      // Tree vertices of side B = all tree vertices minus side A minus the
      // removed interior.
      std::unordered_set<vertex_id> side_b;
      for (const auto& [v, unused] : adj) {
        if (side_a.contains(v)) continue;
        side_b.insert(v);
      }
      for (std::size_t i = 1; i + 1 < path.vertices.size(); ++i) {
        side_b.erase(path.vertices[i]);
      }
      if (side_b.empty() || side_a.empty()) continue;

      // Cheapest reconnection: multi-source Dijkstra from side A, stop at
      // the first side-B vertex, early-exit when cost reaches path.cost.
      std::unordered_map<vertex_id, weight_t> dist;
      std::unordered_map<vertex_id, vertex_id> parent;
      using entry = std::pair<weight_t, vertex_id>;
      std::priority_queue<entry, std::vector<entry>, std::greater<>> heap;
      for (const vertex_id v : side_a) {
        dist[v] = 0;
        heap.push({0, v});
      }
      vertex_id meet = graph::k_no_vertex;
      while (!heap.empty()) {
        const auto [d, v] = heap.top();
        heap.pop();
        if (d >= path.cost) break;  // cannot improve
        const auto it = dist.find(v);
        if (it == dist.end() || it->second != d) continue;
        if (side_b.contains(v)) {
          meet = v;
          break;
        }
        const auto nbrs = g.neighbors(v);
        const auto wts = g.weights(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          const weight_t candidate = d + wts[i];
          const auto [slot, inserted] = dist.try_emplace(nbrs[i], candidate);
          if (!inserted && slot->second <= candidate) continue;
          slot->second = candidate;
          parent[nbrs[i]] = v;
          heap.push({candidate, nbrs[i]});
        }
      }
      if (meet == graph::k_no_vertex) continue;  // no cheaper reconnection

      // Apply the exchange: drop the key path edges, add the new path.
      edge_set next;
      std::unordered_set<std::pair<vertex_id, vertex_id>, util::pair_hash>
          removed;
      for (std::size_t i = 0; i + 1 < path.vertices.size(); ++i) {
        removed.insert({std::min(path.vertices[i], path.vertices[i + 1]),
                        std::max(path.vertices[i], path.vertices[i + 1])});
      }
      for (const auto& e : result.tree_edges) {
        if (removed.contains({e.source, e.target})) continue;
        next.insert(e.source, e.target, e.weight);
      }
      for (vertex_id v = meet; parent.contains(v); v = parent.at(v)) {
        next.insert(parent.at(v), v, *g.edge_weight(parent.at(v), v));
      }
      std::vector<weighted_edge> candidate_tree = std::move(next).take();
      // The new path may have stranded old interior vertices; prune any
      // non-seed leaves it left behind.
      candidate_tree = prune_steiner_leaves(std::move(candidate_tree), seeds);
      weight_t candidate_cost = 0;
      for (const auto& e : candidate_tree) candidate_cost += e.weight;
      if (candidate_cost >= result.total_distance) continue;

      result.tree_edges = std::move(candidate_tree);
      result.total_distance = candidate_cost;
      ++result.exchanges;
      improved = true;
      break;  // adjacency is stale; restart the round
    }
  }
  sort_edges(result.tree_edges);
  result.seconds = wall.seconds();
  return result;
}

}  // namespace dsteiner::baselines
