// The KMB algorithm (Kou, Markowsky, Berman [14]) — paper Alg. 1, the
// classic 2-approximation every later algorithm improves upon. Its step 1
// (all-pair shortest paths among the seeds) is the expensive phase the
// Voronoi-cell formulation replaces; Table I quantifies that cost.
#pragma once

#include <span>

#include "baselines/baseline_util.hpp"
#include "graph/csr_graph.hpp"

namespace dsteiner::baselines {

/// Runs Alg. 1: complete seed distance graph G1 -> MST G2 -> path expansion
/// G3 -> MST G4 -> leaf pruning G5. O(|S| |V|^2)-ish (|S| Dijkstras).
[[nodiscard]] approx_result kmb_steiner_tree(
    const graph::csr_graph& graph, std::span<const graph::vertex_id> seeds);

}  // namespace dsteiner::baselines
