#include "baselines/mehlhorn.hpp"

#include <stdexcept>
#include <unordered_map>

#include "graph/dijkstra.hpp"
#include "graph/mst.hpp"
#include "util/hash.hpp"
#include "util/timer.hpp"

namespace dsteiner::baselines {

approx_result mehlhorn_steiner_tree(const graph::csr_graph& graph,
                                    std::span<const graph::vertex_id> seeds) {
  util::timer wall;
  approx_result result;
  if (seeds.size() <= 1) return result;

  // (1) Voronoi cells via one multi-source Dijkstra.
  const graph::voronoi_assignment cells = graph::multi_source_voronoi(graph, seeds);

  // (2) Distance graph G'1: minimum bridge per cell pair, scanning each
  // undirected edge once (u < v).
  struct bridge {
    graph::weight_t total;
    graph::vertex_id u, v;
    graph::weight_t w;
  };
  std::unordered_map<std::pair<graph::vertex_id, graph::vertex_id>, bridge,
                     util::pair_hash>
      g1;
  for (graph::vertex_id u = 0; u < graph.num_vertices(); ++u) {
    if (cells.src[u] == graph::k_no_vertex) continue;
    const auto nbrs = graph.neighbors(u);
    const auto wts = graph.weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const graph::vertex_id v = nbrs[i];
      if (u >= v) continue;
      if (cells.src[v] == graph::k_no_vertex) continue;
      if (cells.src[u] == cells.src[v]) continue;
      const auto key = std::pair{std::min(cells.src[u], cells.src[v]),
                                 std::max(cells.src[u], cells.src[v])};
      const bridge candidate{cells.distance[u] + wts[i] + cells.distance[v],
                             std::min(u, v), std::max(u, v), wts[i]};
      const auto [it, inserted] = g1.emplace(key, candidate);
      if (!inserted) {
        const auto better = [](const bridge& a, const bridge& b) {
          return std::tuple{a.total, a.u, a.v} < std::tuple{b.total, b.u, b.v};
        };
        if (better(candidate, it->second)) it->second = candidate;
      }
    }
  }

  // (3) MST of G'1 over seed indices.
  std::unordered_map<graph::vertex_id, graph::vertex_id> seed_index;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    seed_index.emplace(seeds[i], static_cast<graph::vertex_id>(i));
  }
  graph::edge_list g1_list(static_cast<graph::vertex_id>(seeds.size()));
  for (const auto& [key, b] : g1) {
    g1_list.add_undirected_edge(seed_index.at(key.first),
                                seed_index.at(key.second), b.total);
  }
  const graph::mst_result g2 = graph::prim_mst(graph::csr_graph(g1_list), 0);
  if (!g2.spanning) {
    throw std::runtime_error(
        "mehlhorn_steiner_tree: seeds are not mutually reachable");
  }

  // (4) Expand each MST edge into bridge + predecessor paths.
  edge_set expanded;
  const auto walk_to_seed = [&](graph::vertex_id x) {
    while (x != cells.src[x]) {
      const graph::vertex_id p = cells.pred[x];
      const graph::weight_t w = cells.distance[x] - cells.distance[p];
      if (!expanded.insert(p, x, w)) break;  // rest of the chain already added
      x = p;
    }
  };
  for (const auto& e : g2.edges) {
    const graph::vertex_id s = seeds[e.source];
    const graph::vertex_id t = seeds[e.target];
    const bridge& b = g1.at({std::min(s, t), std::max(s, t)});
    expanded.insert(b.u, b.v, b.w);
    walk_to_seed(b.u);
    walk_to_seed(b.v);
  }

  // (5) Final MST over the expanded subgraph + Steiner-leaf pruning
  // (KMB steps 4-5).
  graph::edge_list g3;
  g3.set_num_vertices(graph.num_vertices());
  for (const auto& e : expanded.edges()) {
    g3.add_undirected_edge(e.source, e.target, e.weight);
  }
  graph::mst_result g4 = graph::kruskal_mst(g3);
  result.tree_edges = prune_steiner_leaves(std::move(g4.edges), seeds);
  sort_edges(result.tree_edges);
  for (const auto& e : result.tree_edges) result.total_distance += e.weight;
  result.seconds = wall.seconds();
  return result;
}

}  // namespace dsteiner::baselines
