#include "baselines/planted.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "baselines/baseline_util.hpp"
#include "util/hash.hpp"
#include "util/random.hpp"

namespace dsteiner::baselines {

tree_distance_oracle::tree_distance_oracle(
    const std::vector<graph::vertex_id>& parent,
    const std::vector<graph::weight_t>& parent_weight) {
  const std::size_t n = parent.size();
  if (n == 0) throw std::invalid_argument("tree_distance_oracle: empty tree");
  assert(parent[0] == 0);

  depth_.assign(n, 0);
  root_distance_.assign(n, 0);
  for (std::size_t v = 1; v < n; ++v) {
    assert(parent[v] < v);
    depth_[v] = depth_[parent[v]] + 1;
    root_distance_[v] = root_distance_[parent[v]] + parent_weight[v];
  }

  const int levels = std::max(
      1, static_cast<int>(std::bit_width(static_cast<std::uint64_t>(n))) + 1);
  up_.assign(static_cast<std::size_t>(levels),
             std::vector<graph::vertex_id>(n, 0));
  for (std::size_t v = 0; v < n; ++v) up_[0][v] = parent[v];
  for (int level = 1; level < levels; ++level) {
    for (std::size_t v = 0; v < n; ++v) {
      up_[static_cast<std::size_t>(level)][v] =
          up_[static_cast<std::size_t>(level - 1)]
             [up_[static_cast<std::size_t>(level - 1)][v]];
    }
  }
}

graph::vertex_id tree_distance_oracle::lca(graph::vertex_id u,
                                           graph::vertex_id v) const {
  if (depth_[u] < depth_[v]) std::swap(u, v);
  std::uint32_t lift = depth_[u] - depth_[v];
  for (std::size_t level = 0; lift != 0; ++level, lift >>= 1) {
    if (lift & 1) u = up_[level][u];
  }
  if (u == v) return u;
  for (std::size_t level = up_.size(); level-- > 0;) {
    if (up_[level][u] != up_[level][v]) {
      u = up_[level][u];
      v = up_[level][v];
    }
  }
  return up_[0][u];
}

graph::weight_t tree_distance_oracle::distance(graph::vertex_id u,
                                               graph::vertex_id v) const {
  const graph::vertex_id a = lca(u, v);
  return root_distance_[u] + root_distance_[v] - 2 * root_distance_[a];
}

planted_instance make_planted_instance(const planted_params& params) {
  if (params.num_vertices < 2) {
    throw std::invalid_argument("make_planted_instance: need >= 2 vertices");
  }
  if (params.num_seeds < 2 || params.num_seeds > params.num_vertices) {
    throw std::invalid_argument("make_planted_instance: bad seed count");
  }
  util::rng gen(params.seed);

  // (1) Random attachment tree: parent[v] < v, uniform among predecessors.
  const graph::vertex_id n = params.num_vertices;
  std::vector<graph::vertex_id> parent(n, 0);
  std::vector<graph::weight_t> parent_weight(n, 0);
  graph::edge_list edges(n);
  for (graph::vertex_id v = 1; v < n; ++v) {
    parent[v] = gen.uniform(0, v - 1);
    parent_weight[v] =
        gen.uniform(params.tree_weight_lo, params.tree_weight_hi);
    edges.add_undirected_edge(parent[v], v, parent_weight[v]);
  }

  // (2) Noise edges strictly heavier than their tree-path distance.
  const tree_distance_oracle oracle(parent, parent_weight);
  std::unordered_set<std::pair<graph::vertex_id, graph::vertex_id>,
                     util::pair_hash>
      used;
  for (graph::vertex_id v = 1; v < n; ++v) {
    used.insert({std::min(parent[v], v), std::max(parent[v], v)});
  }
  std::uint64_t added = 0;
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = params.num_noise_edges * 20 + 1000;
  while (added < params.num_noise_edges && attempts < max_attempts) {
    ++attempts;
    const graph::vertex_id u = gen.uniform(0, n - 1);
    const graph::vertex_id v = gen.uniform(0, n - 1);
    if (u == v) continue;
    const auto key = std::pair{std::min(u, v), std::max(u, v)};
    if (!used.insert(key).second) continue;
    const graph::weight_t d_tree = oracle.distance(u, v);
    const double factor =
        params.factor_lo +
        gen.uniform_real() * (params.factor_hi - params.factor_lo);
    const auto scaled = static_cast<graph::weight_t>(
        std::ceil(static_cast<double>(d_tree) * factor));
    const graph::weight_t w = std::max<graph::weight_t>(scaled, d_tree + 1);
    edges.add_undirected_edge(u, v, w);
    ++added;
  }

  // (3) Seeds + the analytically known optimum.
  planted_instance instance;
  const auto samples =
      util::sample_without_replacement(n, params.num_seeds, gen);
  instance.seeds.assign(samples.begin(), samples.end());
  std::sort(instance.seeds.begin(), instance.seeds.end());

  std::vector<graph::weighted_edge> tree_edges;
  tree_edges.reserve(n - 1);
  for (graph::vertex_id v = 1; v < n; ++v) {
    tree_edges.push_back(
        {std::min(parent[v], v), std::max(parent[v], v), parent_weight[v]});
  }
  instance.optimal_edges = prune_steiner_leaves(std::move(tree_edges),
                                                instance.seeds);
  for (const auto& e : instance.optimal_edges) {
    instance.optimal_distance += e.weight;
  }

  edges.canonicalize();
  instance.graph = graph::csr_graph(edges);
  return instance;
}

}  // namespace dsteiner::baselines
