// Exact Steiner minimal tree solvers — the stand-in for SCIP-Jack [20].
//
// SCIP-Jack (branch-and-cut LP) is closed infrastructure we cannot run here;
// Tables VI/VII need exact optima, so we provide:
//  1. `exact_steiner_tree` — the Dreyfus–Wagner / Erickson–Monma–Veinott
//     dynamic program: dp[mask][v] = min weight of a tree connecting the
//     terminal subset `mask` plus vertex v. Exponential in |S|
//     (O(3^k V + 2^k (V log V + E))) but exact and graph-size friendly; used
//     for |S| <= ~12.
//  2. `brute_force_steiner_distance` — subset enumeration over Steiner
//     vertices for tiny graphs; an independent oracle the DP is tested
//     against.
// Large-|S| optima come from planted-optimum instances (planted.hpp).
#pragma once

#include <cstdint>
#include <span>

#include "baselines/baseline_util.hpp"
#include "graph/csr_graph.hpp"

namespace dsteiner::baselines {

struct exact_options {
  std::size_t max_terminals = 14;
  /// Guard against accidental multi-GB dp tables.
  std::uint64_t max_memory_bytes = std::uint64_t{1} << 31;
  /// Reconstruct the optimal tree edges (adds choice tables of similar size).
  bool reconstruct = true;
};

struct exact_result {
  graph::weight_t optimal_distance = 0;
  std::vector<graph::weighted_edge> tree_edges;  ///< empty unless reconstruct
  double seconds = 0.0;
};

/// Exact Steiner minimal tree. Throws std::invalid_argument when |S| exceeds
/// max_terminals or the dp table would exceed max_memory_bytes, and
/// std::runtime_error when the seeds are not mutually reachable.
[[nodiscard]] exact_result exact_steiner_tree(
    const graph::csr_graph& graph, std::span<const graph::vertex_id> seeds,
    const exact_options& options = {});

/// Exact optimum by enumerating every subset of candidate Steiner vertices
/// and taking the best induced MST. Only for tiny graphs (|V| <= ~16).
[[nodiscard]] graph::weight_t brute_force_steiner_distance(
    const graph::csr_graph& graph, std::span<const graph::vertex_id> seeds);

}  // namespace dsteiner::baselines
