// Sequential Mehlhorn 2-approximation [17] — the algorithm the paper's
// distributed solution parallelizes, and the "M" column of Table VI.
//
// Steps: (1) one multi-source Dijkstra grows all Voronoi cells,
// (2) a single arc scan builds the distance graph G'1 (min bridge per cell
// pair), (3) MST of G'1, (4) MST edges are expanded into their underlying
// paths, (5) a final MST + leaf pruning over the expanded subgraph (KMB
// steps 4-5). O(|V| log |V| + |E|) ignoring the small G'1 terms.
#pragma once

#include <span>

#include "baselines/baseline_util.hpp"
#include "graph/csr_graph.hpp"

namespace dsteiner::baselines {

[[nodiscard]] approx_result mehlhorn_steiner_tree(
    const graph::csr_graph& graph, std::span<const graph::vertex_id> seeds);

}  // namespace dsteiner::baselines
