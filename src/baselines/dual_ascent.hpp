// Dual ascent lower bound for the Steiner minimal tree (Wong 1984).
//
// The paper's related-work survey covers dual ascent twice: Winter & Smith's
// path-distance heuristics [37] and the distributed dual ascent of Drummond
// et al. [51]. Here it serves the evaluation: Table VII needs Dmin, and at
// |S| >= 100 no exact solver is tractable in this environment — the dual
// ascent bound certifies `LB <= Dmin`, so D(GS)/LB is a true upper bound on
// the approximation ratio at any seed count.
//
// Method: on the bidirected graph rooted at the first terminal, repeatedly
// pick an unreached terminal t, grow the set W of vertices with a
// zero-reduced-cost path to t, and raise the dual of W by the minimum
// reduced cost over arcs entering W. Every intermediate value is a valid
// lower bound, so the iteration cap trades tightness for time, never
// correctness.
#pragma once

#include <cstdint>
#include <span>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace dsteiner::baselines {

struct dual_ascent_options {
  /// Hard cap on ascent iterations (0 = no cap). The bound returned under a
  /// cap is still valid, just weaker.
  std::uint64_t max_iterations = 0;
};

struct dual_ascent_result {
  graph::weight_t lower_bound = 0;
  std::uint64_t iterations = 0;
  bool converged = false;  ///< all terminals reached the root
  double seconds = 0.0;
};

/// Lower bound on the total distance of any Steiner tree for `seeds`.
/// Requires >= 2 distinct seeds and mutual reachability (throws otherwise,
/// unless the iteration cap stops the ascent first).
[[nodiscard]] dual_ascent_result dual_ascent_lower_bound(
    const graph::csr_graph& graph, std::span<const graph::vertex_id> seeds,
    const dual_ascent_options& options = {});

}  // namespace dsteiner::baselines
