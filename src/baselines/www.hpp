// The WWW algorithm (Wu, Widmayer, Wong [15]) — the "W" column of Table VI.
//
// A generalized-MST formulation: shortest-path fronts grow from every seed
// simultaneously; when fronts of two different tree components meet, the
// components merge through the connecting path (a generalized Kruskal whose
// merge order follows meeting time = half the bridging distance).
// O(|E| log |V|), same 2(1 - 1/l) bound as KMB. The paper chose against
// parallelizing this family because component merging serializes (§III).
#pragma once

#include <span>

#include "baselines/baseline_util.hpp"
#include "graph/csr_graph.hpp"

namespace dsteiner::baselines {

[[nodiscard]] approx_result www_steiner_tree(
    const graph::csr_graph& graph, std::span<const graph::vertex_id> seeds);

}  // namespace dsteiner::baselines
