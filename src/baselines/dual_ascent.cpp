#include "baselines/dual_ascent.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <vector>

#include "util/timer.hpp"

namespace dsteiner::baselines {

namespace {

using graph::vertex_id;
using graph::weight_t;

/// For every directed arc index i = (u -> v), the index of (v -> u).
/// Symmetric graphs guarantee existence; rows are target-sorted so the
/// reverse arc is found by binary search within v's row.
std::vector<std::uint64_t> build_reverse_arc_index(const graph::csr_graph& g) {
  const auto& offsets = g.offsets();
  const auto& targets = g.targets();
  std::vector<std::uint64_t> reverse(targets.size());
  for (vertex_id u = 0; u + 1 < offsets.size(); ++u) {
    for (std::uint64_t i = offsets[u]; i < offsets[u + 1]; ++i) {
      const vertex_id v = targets[i];
      const auto row_begin = targets.begin() + static_cast<std::ptrdiff_t>(offsets[v]);
      const auto row_end = targets.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]);
      const auto it = std::lower_bound(row_begin, row_end, u);
      if (it == row_end || *it != u) {
        throw std::invalid_argument(
            "dual_ascent: graph is not symmetric (missing reverse arc)");
      }
      reverse[i] = static_cast<std::uint64_t>(it - targets.begin());
    }
  }
  return reverse;
}

}  // namespace

dual_ascent_result dual_ascent_lower_bound(
    const graph::csr_graph& g, std::span<const graph::vertex_id> seeds,
    const dual_ascent_options& options) {
  util::timer wall;
  dual_ascent_result result;

  std::vector<vertex_id> terminals(seeds.begin(), seeds.end());
  std::sort(terminals.begin(), terminals.end());
  terminals.erase(std::unique(terminals.begin(), terminals.end()),
                  terminals.end());
  if (terminals.size() <= 1) {
    result.converged = true;
    return result;
  }

  const auto& offsets = g.offsets();
  const auto& targets = g.targets();
  const auto reverse = build_reverse_arc_index(g);
  // Reduced costs per *directed* arc.
  std::vector<weight_t> reduced(g.arc_weights().begin(), g.arc_weights().end());

  const vertex_id root = terminals.front();
  std::vector<bool> reached(terminals.size(), false);
  reached[0] = true;  // the root is trivially connected to itself

  // Scratch for the W-growing BFS.
  std::vector<bool> in_w(g.num_vertices(), false);
  std::vector<vertex_id> w_members;
  std::deque<vertex_id> frontier;

  std::size_t unreached = terminals.size() - 1;
  std::size_t cursor = 1;  // round-robin over terminals
  while (unreached > 0) {
    if (options.max_iterations != 0 &&
        result.iterations >= options.max_iterations) {
      break;  // the accumulated bound remains valid
    }
    // Next unreached terminal.
    while (reached[cursor]) cursor = (cursor + 1) % terminals.size();
    const vertex_id t = terminals[cursor];

    // Grow W = vertices with a zero-reduced-cost path *to* t: traverse from
    // t along incoming zero arcs (u -> v in W) via the reverse index.
    for (const vertex_id v : w_members) in_w[v] = false;
    w_members.clear();
    frontier.clear();
    in_w[t] = true;
    w_members.push_back(t);
    frontier.push_back(t);
    bool hits_root = false;
    while (!frontier.empty() && !hits_root) {
      const vertex_id v = frontier.front();
      frontier.pop_front();
      for (std::uint64_t j = offsets[v]; j < offsets[v + 1]; ++j) {
        const std::uint64_t incoming = reverse[j];  // (targets[j] -> v)
        if (reduced[incoming] != 0) continue;
        const vertex_id u = targets[j];
        if (in_w[u]) continue;
        in_w[u] = true;
        w_members.push_back(u);
        frontier.push_back(u);
        if (u == root) {
          hits_root = true;
          break;
        }
      }
    }
    if (hits_root) {
      reached[cursor] = true;
      --unreached;
      continue;
    }

    // Minimum reduced cost over arcs entering W.
    weight_t delta = graph::k_inf_distance;
    for (const vertex_id v : w_members) {
      for (std::uint64_t j = offsets[v]; j < offsets[v + 1]; ++j) {
        const vertex_id u = targets[j];
        if (in_w[u]) continue;
        delta = std::min(delta, reduced[reverse[j]]);  // arc (u -> v)
      }
    }
    if (delta == graph::k_inf_distance) {
      throw std::runtime_error(
          "dual_ascent_lower_bound: seeds not mutually reachable");
    }
    for (const vertex_id v : w_members) {
      for (std::uint64_t j = offsets[v]; j < offsets[v + 1]; ++j) {
        if (in_w[targets[j]]) continue;
        reduced[reverse[j]] -= delta;
      }
    }
    result.lower_bound += delta;
    ++result.iterations;
  }
  result.converged = unreached == 0;
  result.seconds = wall.seconds();
  return result;
}

}  // namespace dsteiner::baselines
