// Shared machinery for the sequential baselines: canonical edge sets, path
// expansion, and the KMB step-5 leaf pruning ("delete edges so that no
// leaves are Steiner vertices").
#pragma once

#include <algorithm>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/types.hpp"
#include "util/hash.hpp"

namespace dsteiner::baselines {

/// Deduplicated set of undirected weighted edges in canonical (u < v) form.
class edge_set {
 public:
  /// Returns true if the edge was newly inserted.
  bool insert(graph::vertex_id u, graph::vertex_id v, graph::weight_t w) {
    const auto key = canonical(u, v);
    if (!members_.insert(key).second) return false;
    edges_.push_back({key.first, key.second, w});
    return true;
  }

  [[nodiscard]] bool contains(graph::vertex_id u, graph::vertex_id v) const {
    return members_.contains(canonical(u, v));
  }

  [[nodiscard]] const std::vector<graph::weighted_edge>& edges() const noexcept {
    return edges_;
  }
  [[nodiscard]] std::vector<graph::weighted_edge> take() && {
    return std::move(edges_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return edges_.size(); }

 private:
  static std::pair<graph::vertex_id, graph::vertex_id> canonical(
      graph::vertex_id u, graph::vertex_id v) {
    return {std::min(u, v), std::max(u, v)};
  }

  std::unordered_set<std::pair<graph::vertex_id, graph::vertex_id>,
                     util::pair_hash>
      members_;
  std::vector<graph::weighted_edge> edges_;
};

/// Iteratively removes degree-1 vertices that are not seeds (KMB Alg. 1
/// step 5). Returns the pruned edge list.
[[nodiscard]] inline std::vector<graph::weighted_edge> prune_steiner_leaves(
    std::vector<graph::weighted_edge> edges,
    std::span<const graph::vertex_id> seeds) {
  const std::unordered_set<graph::vertex_id> seed_set(seeds.begin(), seeds.end());
  bool changed = true;
  while (changed && !edges.empty()) {
    changed = false;
    std::unordered_map<graph::vertex_id, std::size_t> degree;
    for (const auto& e : edges) {
      ++degree[e.source];
      ++degree[e.target];
    }
    std::vector<graph::weighted_edge> kept;
    kept.reserve(edges.size());
    for (const auto& e : edges) {
      const bool source_prunable =
          degree[e.source] == 1 && !seed_set.contains(e.source);
      const bool target_prunable =
          degree[e.target] == 1 && !seed_set.contains(e.target);
      if (source_prunable || target_prunable) {
        changed = true;
      } else {
        kept.push_back(e);
      }
    }
    edges.swap(kept);
  }
  return edges;
}

/// Sorts edges canonically for comparisons and stable output.
inline void sort_edges(std::vector<graph::weighted_edge>& edges) {
  std::sort(edges.begin(), edges.end(),
            [](const graph::weighted_edge& a, const graph::weighted_edge& b) {
              return std::tuple{a.source, a.target, a.weight} <
                     std::tuple{b.source, b.target, b.weight};
            });
}

/// Result type common to every baseline solver.
struct approx_result {
  std::vector<graph::weighted_edge> tree_edges;
  graph::weight_t total_distance = 0;
  double seconds = 0.0;
};

}  // namespace dsteiner::baselines
