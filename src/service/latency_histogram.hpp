// Lock-free latency histogram for service metrics export.
//
// Log2 buckets over microseconds: bucket i counts samples in
// [2^i, 2^(i+1)) µs, with the first and last buckets absorbing the tails.
// Recording is one relaxed fetch_add on the bucket plus count/sum updates —
// cheap enough to sit on every query completion path; snapshot() copies the
// buckets without stopping writers (each counter is individually atomic, so
// a snapshot taken under load is a near-instant cut, not a locked quiesce).
//
// Percentiles are estimated from the bucket boundaries by linear
// interpolation within the bucket — accurate to the bucket resolution
// (a factor of two), which is what a serving dashboard needs.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace dsteiner::service {

class latency_histogram {
 public:
  /// Buckets 0..31: [1µs, 2µs), [2µs, 4µs), ... — covers ~1µs to ~1 hour.
  static constexpr std::size_t k_buckets = 32;

  /// A consistent-enough copy of the counters, plus derived statistics.
  struct snapshot_data {
    std::uint64_t count = 0;
    double total_seconds = 0.0;
    std::array<std::uint64_t, k_buckets> buckets{};

    [[nodiscard]] double mean() const noexcept {
      return count == 0 ? 0.0 : total_seconds / static_cast<double>(count);
    }

    /// Estimated latency at quantile `q` in [0, 1].
    [[nodiscard]] double quantile(double q) const noexcept;

    /// Estimated latency at percentile `p` in [0, 100] — dashboard-friendly
    /// spelling of quantile(p / 100).
    [[nodiscard]] double percentile(double p) const noexcept {
      return quantile(p / 100.0);
    }

    /// Merge another snapshot into this one (window accumulation).
    void accumulate(const snapshot_data& other) noexcept {
      count += other.count;
      total_seconds += other.total_seconds;
      for (std::size_t i = 0; i < k_buckets; ++i) buckets[i] += other.buckets[i];
    }
  };

  void record(double seconds) noexcept;
  [[nodiscard]] snapshot_data snapshot() const noexcept;

  /// Drain the histogram: returns everything recorded since the previous
  /// reset_window() (or construction) and zeroes the counters, so each
  /// event lands in exactly one window. Uses atomic exchange per counter —
  /// concurrent record() calls land either in this window or the next,
  /// never both and never neither.
  [[nodiscard]] snapshot_data reset_window() noexcept;

  /// Bucket index for a latency (exposed for tests).
  [[nodiscard]] static std::size_t bucket_of(double seconds) noexcept;
  /// Upper boundary of bucket i, in seconds.
  [[nodiscard]] static double bucket_upper_seconds(std::size_t i) noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, k_buckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> total_seconds_{0.0};
};

}  // namespace dsteiner::service
