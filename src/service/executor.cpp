#include "service/executor.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

namespace dsteiner::service {

executor::executor(executor_config config) : config_(config) {
  config_.num_threads = std::max<std::size_t>(1, config_.num_threads);
  config_.queue_capacity = std::max<std::size_t>(1, config_.queue_capacity);
  busy_.assign(config_.num_threads, 0);
  busy_since_.resize(config_.num_threads);
  workers_.reserve(config_.num_threads);
  for (std::size_t i = 0; i < config_.num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

executor::~executor() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::size_t executor::total_queued_locked() const noexcept {
  std::size_t total = 0;
  for (const auto& q : queues_) total += q.size();
  return total;
}

std::size_t executor::purge_expired_locked(dropped_list& dropped) {
  const auto now = std::chrono::steady_clock::now();
  std::size_t purged = 0;
  for (auto& q : queues_) {
    purged += std::erase_if(q, [&](queued_task& item) {
      if (item.deadline > now) return false;
      ++stats_.expired;
      if (item.on_dropped) {
        dropped.emplace_back(std::move(item.on_dropped), drop_reason::expired);
      }
      return true;
    });
  }
  return purged;
}

void executor::fire(dropped_list& dropped) {
  for (auto& [handler, reason] : dropped) handler(reason);
  dropped.clear();
}

void executor::insert_locked(std::size_t priority, queued_task item) {
  auto& q = queues_[priority];
  // Earliest-deadline-first within the level: insert before the first
  // strictly-later deadline. Deadline-free tasks carry time_point::max, so
  // they form a FIFO tail behind every deadline-bound entry, and a stream of
  // deadline-free tasks degenerates to the old FIFO exactly.
  const auto pos = std::upper_bound(
      q.begin(), q.end(), item.deadline,
      [](std::chrono::steady_clock::time_point deadline,
         const queued_task& queued) { return deadline < queued.deadline; });
  q.insert(pos, std::move(item));
}

void executor::enqueue_locked(std::size_t priority, queued_task item) {
  insert_locked(priority, std::move(item));
  ++stats_.submitted;
  stats_.peak_queue_depth =
      std::max<std::uint64_t>(stats_.peak_queue_depth, total_queued_locked());
}

void executor::promote_aged_locked() {
  if (config_.aging_step_seconds <= 0.0) return;
  // Scan the non-top levels back-to-front popping every task whose wait has
  // crossed at least one aging step; re-insert at the target level's EDF
  // position. Promotion count is levels-per-step — a task two steps old in
  // the background level jumps straight to interactive, matching the
  // effective priority it would have accrued under continuous aging.
  for (std::size_t level = 1; level < k_executor_priority_levels; ++level) {
    auto& q = queues_[level];
    for (std::size_t i = q.size(); i-- > 0;) {
      const double age = q[i].enqueued.seconds();
      const auto gain =
          static_cast<std::size_t>(age / config_.aging_step_seconds);
      if (gain == 0) continue;
      queued_task item = std::move(q[i]);
      q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
      const std::size_t target = level > gain ? level - gain : 0;
      insert_locked(target, std::move(item));
      ++stats_.promoted;
    }
  }
}

void executor::post(task t, task_options opts) {
  opts.priority = std::min(opts.priority, k_executor_priority_levels - 1);
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (stopping_) {
      throw std::runtime_error("executor::post: executor is shutting down");
    }
    if (total_queued_locked() < config_.queue_capacity) break;
    dropped_list dropped;
    if (purge_expired_locked(dropped) > 0) {
      // Expired entries came off the queue: fire their drop handlers *now*
      // (a deferred handler is a stranded promise — its waiter would block
      // for as long as this producer does) and wake fellow producers, since
      // the purge may have freed more slots than this post consumes. Then
      // re-evaluate from scratch.
      lock.unlock();
      not_full_.notify_all();
      fire(dropped);
      lock.lock();
      continue;
    }
    not_full_.wait(lock);
  }
  enqueue_locked(opts.priority,
                 queued_task{util::timer{}, std::move(t), opts.deadline,
                             std::move(opts.on_dropped)});
  lock.unlock();
  not_empty_.notify_one();
}

bool executor::try_post(task t, task_options opts) {
  opts.priority = std::min(opts.priority, k_executor_priority_levels - 1);
  dropped_list dropped;
  std::size_t purged = 0;
  bool admitted = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("executor::try_post: executor is shutting down");
    }
    if (total_queued_locked() >= config_.queue_capacity) {
      purged = purge_expired_locked(dropped);
    }
    bool have_room = total_queued_locked() < config_.queue_capacity;
    if (!have_room) {
      // Displacement: shed the *back* entry of the *least* urgent populated
      // level strictly below the arrival. Under EDF ordering the back is the
      // latest-deadline entry — the newest deadline-free task when any exist
      // — so the victim level keeps its most urgent waiters intact.
      for (std::size_t level = k_executor_priority_levels;
           level-- > opts.priority + 1;) {
        auto& q = queues_[level];
        if (q.empty()) continue;
        queued_task victim = std::move(q.back());
        q.pop_back();
        ++stats_.displaced;
        if (victim.on_dropped) {
          dropped.emplace_back(std::move(victim.on_dropped),
                               drop_reason::displaced);
        }
        have_room = true;
        break;
      }
    }
    if (have_room) {
      enqueue_locked(opts.priority,
                     queued_task{util::timer{}, std::move(t), opts.deadline,
                                 std::move(opts.on_dropped)});
      admitted = true;
    } else {
      ++stats_.rejected;
    }
  }
  if (admitted) not_empty_.notify_one();
  // The purge may have freed more capacity than this admission consumed:
  // wake producers blocked in post() rather than leaving them asleep until
  // a worker next pops (potentially a full solve away).
  if (purged > 0) not_full_.notify_all();
  fire(dropped);
  return admitted;
}

std::size_t executor::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_queued_locked();
}

std::size_t executor::backlog_ahead(std::size_t priority) const {
  priority = std::min(priority, k_executor_priority_levels - 1);
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (std::size_t level = 0; level <= priority; ++level) {
    total += queues_[level].size();
  }
  return total;
}

executor_stats executor::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  executor_stats s = stats_;
  s.queue_depth = total_queued_locked();
  return s;
}

std::vector<double> executor::running_elapsed_seconds() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<double> elapsed;
  for (std::size_t i = 0; i < busy_.size(); ++i) {
    if (busy_[i] != 0) elapsed.push_back(busy_since_[i].seconds());
  }
  return elapsed;
}

void executor::worker_loop(std::size_t worker_id) {
  // One pop per lock hold: either a runnable task, an expired task whose
  // drop handler must fire *before* the worker can sleep again (a handler
  // resolves a waiter's promise — deferring it until the next arrival would
  // strand that waiter), or the drained-shutdown signal.
  for (;;) {
    dropped_list dropped;
    std::optional<queued_task> item;
    bool drained = false;
    double wait = 0.0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock,
                      [this] { return stopping_ || total_queued_locked() > 0; });
      if (total_queued_locked() == 0) {
        drained = true;  // stopping and fully drained
      } else {
        promote_aged_locked();
        auto& q = *std::find_if(queues_.begin(), queues_.end(),
                                [](const auto& level) { return !level.empty(); });
        queued_task picked = std::move(q.front());
        q.pop_front();
        if (picked.deadline <= std::chrono::steady_clock::now()) {
          // Expired in the queue: drop instead of burning the worker.
          ++stats_.expired;
          if (picked.on_dropped) {
            dropped.emplace_back(std::move(picked.on_dropped),
                                 drop_reason::expired);
          }
        } else {
          wait = picked.enqueued.seconds();
          stats_.total_queue_wait_seconds += wait;
          stats_.max_queue_wait_seconds =
              std::max(stats_.max_queue_wait_seconds, wait);
          busy_[worker_id] = 1;
          busy_since_[worker_id] = util::timer{};
          item = std::move(picked);
        }
      }
    }
    if (item || !dropped.empty()) not_full_.notify_all();
    fire(dropped);
    if (drained) return;
    if (!item) continue;  // dropped an expired task: look again
    util::timer run_timer;
    try {
      item->work(wait);
    } catch (...) {
      // A task that lets an exception escape must not unwind the worker
      // (std::terminate would take the whole process down). Tasks own their
      // error reporting — the service's wrapper routes failures into the
      // query handle; a bare task that throws is counted and dropped.
      const std::lock_guard<std::mutex> guard(mutex_);
      ++stats_.tasks_failed;
    }
    const std::lock_guard<std::mutex> guard(mutex_);
    busy_[worker_id] = 0;
    // Executed counts *completions*, booked together with the time they
    // cost: mean_exec_seconds() must not be diluted by tasks still running,
    // or the cost model's residual-work estimate undercounts exactly when it
    // matters (a long solve mid-flight).
    ++stats_.executed;
    stats_.total_exec_seconds += run_timer.seconds();
  }
}

}  // namespace dsteiner::service
