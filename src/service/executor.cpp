#include "service/executor.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace dsteiner::service {

executor::executor(executor_config config) : config_(config) {
  config_.num_threads = std::max<std::size_t>(1, config_.num_threads);
  config_.queue_capacity = std::max<std::size_t>(1, config_.queue_capacity);
  workers_.reserve(config_.num_threads);
  for (std::size_t i = 0; i < config_.num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

executor::~executor() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void executor::post(task t) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_full_.wait(lock, [this] {
    return stopping_ || queue_.size() < config_.queue_capacity;
  });
  if (stopping_) {
    throw std::runtime_error("executor::post: executor is shutting down");
  }
  queue_.push_back(queued_task{util::timer{}, std::move(t)});
  ++stats_.submitted;
  stats_.peak_queue_depth = std::max<std::uint64_t>(stats_.peak_queue_depth,
                                                    queue_.size());
  lock.unlock();
  not_empty_.notify_one();
}

bool executor::try_post(task t) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) {
    throw std::runtime_error("executor::try_post: executor is shutting down");
  }
  if (queue_.size() >= config_.queue_capacity) {
    ++stats_.rejected;
    return false;
  }
  queue_.push_back(queued_task{util::timer{}, std::move(t)});
  ++stats_.submitted;
  stats_.peak_queue_depth = std::max<std::uint64_t>(stats_.peak_queue_depth,
                                                    queue_.size());
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

std::size_t executor::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

executor_stats executor::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void executor::worker_loop() {
  for (;;) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping and fully drained
    queued_task item = std::move(queue_.front());
    queue_.pop_front();
    const double wait = item.enqueued.seconds();
    ++stats_.executed;
    stats_.total_queue_wait_seconds += wait;
    stats_.max_queue_wait_seconds =
        std::max(stats_.max_queue_wait_seconds, wait);
    lock.unlock();
    not_full_.notify_one();
    try {
      item.work(wait);
    } catch (...) {
      // A task that lets an exception escape must not unwind the worker
      // (std::terminate would take the whole process down). Tasks own their
      // error reporting — the service's wrapper routes failures into the
      // query future; a bare task that throws is counted and dropped.
      const std::lock_guard<std::mutex> guard(mutex_);
      ++stats_.tasks_failed;
    }
  }
}

}  // namespace dsteiner::service
