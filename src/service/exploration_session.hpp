// Interactive exploration session — the paper's motivating workflow (§I):
// "a user will interact with such computation in various ways, exploring the
// relationships ... adding or removing classes of edges and/or vertices and
// adjusting edge distance functions based on investigating the output."
//
// A session owns a backing steiner_service and a mutable seed set; every
// edit (add/remove seeds, re-weight, filter edges) invalidates the cached
// result, which is recomputed lazily on the next query. Queries are
// delegated to the service, so a session gets its result cache and
// warm-start repair for free: re-adding a previously queried seed set is a
// cache hit, and a small seed delta repairs the previous solve instead of
// recomputing phase 1 from scratch.
//
// Graph edits (re-weighting, filtering) no longer rebuild the service: they
// diff the current graph against the edited one and *derive a new epoch*
// (graph::epoch_graph) on the same service. The next query warm-starts
// through the edge-delta Voronoi repair, previously cached results stay
// servable for their epochs until retirement, and re-deriving the same
// history reproduces the same epoch fingerprints.
//
// This class lives in src/service/ because it delegates to the service —
// core::exploration_session (core/interactive.hpp) remains as an alias for
// the original, layering-inverted spelling.
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "core/steiner_solver.hpp"
#include "graph/csr_graph.hpp"
#include "graph/epoch_graph.hpp"
#include "graph/types.hpp"
#include "service/query.hpp"

namespace dsteiner::service {

class steiner_service;

class exploration_session {
 public:
  explicit exploration_session(graph::csr_graph graph,
                               core::solver_config config = {});
  ~exploration_session();

  /// Seed-set edits (idempotent; return true if the set changed).
  bool add_seed(graph::vertex_id v);
  bool remove_seed(graph::vertex_id v);
  void set_seeds(std::span<const graph::vertex_id> seeds);
  void clear_seeds();

  [[nodiscard]] std::vector<graph::vertex_id> seeds() const {
    return {seeds_.begin(), seeds_.end()};
  }
  [[nodiscard]] std::size_t seed_count() const noexcept { return seeds_.size(); }

  /// Derives an epoch keeping only edges with weight <= cutoff — the §I
  /// "removing classes of edges" interaction. Epoch edits act on undirected
  /// vertex pairs, so parallel edges are judged by their minimum weight (the
  /// only arc shortest paths can use): a pair whose minimum exceeds the
  /// cutoff is disabled outright; a kept pair whose heavier parallel arcs
  /// exceed it collapses to that minimum. Seeds are preserved; the next
  /// query may legitimately find them disconnected (a Steiner forest is
  /// returned because the session enables allow_disconnected_seeds).
  void filter_edges_above(graph::weight_t cutoff);

  /// Replaces edge weights via fn(u, v, w) — "adjusting edge distance
  /// functions". fn must return a weight >= 1. Epoch edits act on undirected
  /// vertex pairs: fn is called once per pair with its minimum weight, and a
  /// changed result sets every parallel arc of the pair. Only pairs whose
  /// weight actually changes enter the epoch delta; a no-op reweight derives
  /// no epoch and keeps the cached result valid.
  template <typename Fn>
  void reweight(Fn&& fn) {
    const graph::csr_graph& g = graph();
    graph::edge_delta delta;
    for (graph::vertex_id u = 0; u < g.num_vertices(); ++u) {
      const auto nbrs = g.neighbors(u);
      const auto wts = g.weights(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (u >= nbrs[i]) continue;
        // Rows are sorted by (target, weight): the first arc of a parallel
        // group carries the pair's minimum weight; skip the rest.
        if (i > 0 && nbrs[i] == nbrs[i - 1]) continue;
        const graph::weight_t next = fn(u, nbrs[i], wts[i]);
        if (next != wts[i]) {
          delta.edits.push_back(graph::edge_edit::reweight(u, nbrs[i], next));
        }
      }
    }
    apply_edge_delta(delta);
  }

  /// Removes every vertex failing `keep(v)` — the §I "removing classes of
  /// ... vertices" interaction. Vertex removal is modelled as disabling all
  /// incident edges in one epoch delta (the vertex id stays valid but
  /// isolated, so epoch invariants — |V| preserved — hold and re-enabling
  /// later epochs can resurrect it). Removing a *seed* vertex is rejected
  /// with std::invalid_argument before anything is applied: a seed is the
  /// query's subject, silently isolating it would turn every tree into a
  /// degenerate forest — remove_seed() it first.
  template <typename Pred>
  void filter_vertices(Pred&& keep) {
    const graph::csr_graph& g = graph();
    std::vector<graph::vertex_id> victims;
    for (graph::vertex_id v = 0; v < g.num_vertices(); ++v) {
      if (!keep(v)) victims.push_back(v);
    }
    remove_vertices(victims);
  }

  /// Span form of filter_vertices: removes exactly `victims` (duplicates
  /// tolerated). Same seed-rejection contract.
  void remove_vertices(std::span<const graph::vertex_id> victims);

  /// Scale-out knob: change the simulated rank count for future queries.
  void set_ranks(int num_ranks);

  /// The Steiner tree for the current seed set; cached until the next edit.
  /// Empty result (no edges) for fewer than two seeds.
  const core::steiner_result& tree();

  /// True if the cache is valid (no recompute pending).
  [[nodiscard]] bool up_to_date() const noexcept { return cached_.has_value(); }

  /// Number of solver runs (cold or warm) performed so far; service cache
  /// hits do not count (observability for tests/UX).
  [[nodiscard]] std::uint64_t recompute_count() const noexcept {
    return recomputes_;
  }

  /// How the backing service satisfied the most recent tree() recompute.
  [[nodiscard]] solve_kind last_solve_kind() const noexcept {
    return last_kind_;
  }

  /// The backing query service (stats: cache hit rates, warm-start counts,
  /// epoch advances).
  [[nodiscard]] const steiner_service& service() const noexcept {
    return *service_;
  }

  /// The graph epoch the session's edits have reached.
  [[nodiscard]] std::uint64_t current_epoch() const noexcept { return epoch_; }

  /// The session's current graph lives in the backing service (one copy,
  /// not two). The returned reference is invalidated by graph edits
  /// (reweight, filter_edges_above) once enough further edits retire the
  /// epoch — re-fetch after editing.
  [[nodiscard]] const graph::csr_graph& graph() const;

 private:
  void invalidate() noexcept { cached_.reset(); }
  /// Advances the service's epoch (no-op for an empty delta).
  void apply_edge_delta(const graph::edge_delta& delta);

  core::solver_config config_;
  std::unique_ptr<steiner_service> service_;
  std::set<graph::vertex_id> seeds_;
  std::optional<core::steiner_result> cached_;
  std::uint64_t recomputes_ = 0;
  std::uint64_t epoch_ = 0;
  solve_kind last_kind_ = solve_kind::cold;
};

}  // namespace dsteiner::service
