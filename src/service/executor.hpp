// Bounded worker-pool executor backing the Steiner query service.
//
// A fixed set of std::thread workers drains a bounded admission queue. The
// bound is the service's backpressure mechanism: `post` blocks the producer
// when the queue is full (interactive sessions), `try_post` refuses instead
// (load-shedding front ends). Each task receives the queue wait it actually
// experienced so the service can report per-query latency splits.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/timer.hpp"

namespace dsteiner::service {

struct executor_config {
  std::size_t num_threads = 2;
  /// Maximum tasks waiting for a worker (excludes the ones being executed).
  std::size_t queue_capacity = 256;
};

struct executor_stats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;  ///< try_post refusals while the queue was full
  std::uint64_t executed = 0;
  std::uint64_t tasks_failed = 0;  ///< tasks that let an exception escape
  std::uint64_t peak_queue_depth = 0;
  double total_queue_wait_seconds = 0.0;
  double max_queue_wait_seconds = 0.0;
};

class executor {
 public:
  /// Task signature: invoked on a worker with the seconds the task spent
  /// queued before pickup. Tasks should handle their own errors; an escaped
  /// exception is swallowed and counted (tasks_failed), never propagated.
  using task = std::function<void(double queue_wait_seconds)>;

  explicit executor(executor_config config = {});

  /// Drains every queued task, then joins the workers.
  ~executor();

  executor(const executor&) = delete;
  executor& operator=(const executor&) = delete;

  /// Enqueues `t`, blocking while the admission queue is full. Throws
  /// std::runtime_error after shutdown began.
  void post(task t);

  /// Non-blocking admission: false (and the rejected counter) when full.
  [[nodiscard]] bool try_post(task t);

  [[nodiscard]] std::size_t num_threads() const noexcept {
    return workers_.size();
  }
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] executor_stats stats() const;

 private:
  struct queued_task {
    util::timer enqueued;  ///< started at admission; read at pickup
    task work;
  };

  void worker_loop();

  executor_config config_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<queued_task> queue_;
  executor_stats stats_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dsteiner::service
