// Priority admission queue + bounded worker pool backing the Steiner query
// service.
//
// A fixed set of std::thread workers drains a bounded, *class-prioritized*
// admission queue: three priority levels (the service maps its
// interactive/batch/background classes onto them), drained in level order
// with earliest-deadline-first inside a level — deadline-bound tasks run
// before unbounded ones, FIFO among equal deadlines (so deadline-free
// workloads behave exactly as the old FIFO did). The bound is the service's
// backpressure
// mechanism — `post` blocks the producer when the queue is full (legacy
// interactive sessions), `try_post` sheds instead (QoS admission) — and two
// policies keep a full queue from going blind:
//
//   expiry:       a queued task whose deadline has passed is dropped (its
//                 on_dropped handler fires) instead of wasting a worker, and
//                 expired entries are purged first when admission needs room;
//   displacement: a higher-level arrival into a full queue evicts the
//                 *latest-deadline* (deadline-free first, then newest) queued
//                 task of the lowest populated level below it, so saturation
//                 sheds the least urgent background work before interactive
//                 work.
//
// Each executed task receives the queue wait it actually experienced, and the
// executor tracks cumulative execution time so the service's admission cost
// model can estimate backlog drain rates.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/timer.hpp"

namespace dsteiner::service {

/// Admission levels understood by the executor (0 = most urgent). Matches
/// service::k_priority_classes; kept as a separate constant because the
/// executor is priority-*level* generic, not priority-*class* aware.
inline constexpr std::size_t k_executor_priority_levels = 3;

struct executor_config {
  std::size_t num_threads = 2;
  /// Maximum tasks waiting for a worker (excludes the ones being executed),
  /// summed across all priority levels.
  std::size_t queue_capacity = 256;
  /// Priority aging: a queued task that has waited `aging_step_seconds`
  /// gains one effective priority level per elapsed step (floor(age/step)
  /// levels total), physically moving up at worker-pickup time so saturated
  /// interactive traffic cannot starve batch/background work forever.
  /// Promoted tasks join the EDF order of their new level. 0 (default)
  /// disables aging — strict priority, the historical behaviour.
  double aging_step_seconds = 0.0;
};

/// Why a queued task was dropped without running (on_dropped's argument).
enum class drop_reason : std::uint8_t {
  expired,    ///< its deadline passed while it waited
  displaced,  ///< shed to admit a higher-priority arrival into a full queue
};

struct executor_stats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;  ///< try_post refusals while the queue was full
  std::uint64_t executed = 0;  ///< tasks run to completion
  std::uint64_t tasks_failed = 0;  ///< tasks that let an exception escape
  std::uint64_t expired = 0;       ///< queued tasks dropped past their deadline
  std::uint64_t displaced = 0;     ///< queued tasks shed for a higher level
  std::uint64_t promoted = 0;      ///< queued tasks moved up a level by aging
  std::uint64_t peak_queue_depth = 0;
  std::uint64_t queue_depth = 0;   ///< tasks queued at the stats() call
  double total_queue_wait_seconds = 0.0;
  double max_queue_wait_seconds = 0.0;
  /// Wall seconds spent *running* tasks (all workers, cumulative) — with
  /// `executed`, the mean task cost the admission estimator drains at.
  double total_exec_seconds = 0.0;

  [[nodiscard]] double mean_exec_seconds() const noexcept {
    return executed == 0
               ? 0.0
               : total_exec_seconds / static_cast<double>(executed);
  }
};

class executor {
 public:
  /// Task signature: invoked on a worker with the seconds the task spent
  /// queued before pickup. Tasks should handle their own errors; an escaped
  /// exception is swallowed and counted (tasks_failed), never propagated.
  using task = std::function<void(double queue_wait_seconds)>;
  /// Invoked (outside the executor lock, on the dropping thread) when a
  /// queued task is expired or displaced instead of executed.
  using drop_handler = std::function<void(drop_reason)>;

  struct task_options {
    std::size_t priority = 0;  ///< clamped to k_executor_priority_levels - 1
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
    drop_handler on_dropped;
  };

  explicit executor(executor_config config = {});

  /// Drains every queued task, then joins the workers. (Tasks still queued
  /// past their deadline are dropped, not run, during the drain.)
  ~executor();

  executor(const executor&) = delete;
  executor& operator=(const executor&) = delete;

  /// Enqueues `t`, blocking while the admission queue is full (expired
  /// entries are purged to make room before sleeping). Throws
  /// std::runtime_error after shutdown began.
  void post(task t, task_options opts);
  void post(task t) { post(std::move(t), task_options{}); }

  /// Non-blocking admission: purge expired entries, then displace a
  /// lower-priority queued task, then give up — false (and the rejected
  /// counter) when nothing below `opts.priority` could be shed.
  [[nodiscard]] bool try_post(task t, task_options opts);
  [[nodiscard]] bool try_post(task t) {
    return try_post(std::move(t), task_options{});
  }

  [[nodiscard]] std::size_t num_threads() const noexcept {
    return workers_.size();
  }
  [[nodiscard]] std::size_t queue_depth() const;
  /// Queued tasks at `priority` or more urgent — the backlog a new arrival
  /// at that level waits behind (its own FIFO predecessors included).
  [[nodiscard]] std::size_t backlog_ahead(std::size_t priority) const;
  [[nodiscard]] executor_stats stats() const;

  /// Elapsed run time of every task workers are *currently* executing (one
  /// entry per busy worker) — the half of the drain the queue cannot see.
  /// The admission cost model adds each task's residual (expected mean minus
  /// its own elapsed, floored at zero per task so one straggler past its
  /// mean cannot mask other tasks' remaining work) to the queued backlog, so
  /// a long solve mid-flight delays predictions even when the queue itself
  /// is empty.
  [[nodiscard]] std::vector<double> running_elapsed_seconds() const;

 private:
  struct queued_task {
    util::timer enqueued;  ///< started at admission; read at pickup
    task work;
    std::chrono::steady_clock::time_point deadline;
    drop_handler on_dropped;
  };
  /// Handlers harvested under the lock, invoked after it is released.
  using dropped_list = std::vector<std::pair<drop_handler, drop_reason>>;

  void worker_loop(std::size_t worker_id);
  [[nodiscard]] std::size_t total_queued_locked() const noexcept;
  /// EDF insertion: before every queued task with a strictly later deadline,
  /// after every task with an equal-or-earlier one (stable, so equal
  /// deadlines — including the deadline-free tail — drain FIFO).
  void enqueue_locked(std::size_t priority, queued_task item);
  /// The raw EDF insert behind enqueue_locked, without admission accounting
  /// (aging re-inserts move existing tasks, they are not new submissions).
  void insert_locked(std::size_t priority, queued_task item);
  /// Priority aging at pickup time: moves every queued task whose wait has
  /// crossed one or more aging steps up that many levels. No-op when
  /// aging_step_seconds == 0. Lock must be held.
  void promote_aged_locked();
  /// Drops every queued task whose deadline has passed; returns how many
  /// came off the queue (slots freed). Lock must be held; the harvested
  /// handlers must be fired promptly after it is released.
  std::size_t purge_expired_locked(dropped_list& dropped);
  static void fire(dropped_list& dropped);

  executor_config config_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::array<std::deque<queued_task>, k_executor_priority_levels> queues_;
  executor_stats stats_;
  /// Per-worker in-flight tracking behind running(); guarded by mutex_.
  std::vector<char> busy_;
  std::vector<util::timer> busy_since_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dsteiner::service
