// Shared SSSP fragment store — cross-query reuse of settled Voronoi cells.
//
// The solver's dominant cost is growing per-seed Voronoi cells (phase 1), yet
// concurrent queries with overlapping seed sets re-grow the shared cells from
// scratch: warm starts reuse a *whole* donor solve, but two different seed
// sets that merely share members get nothing. The fragment store closes that
// gap at per-seed granularity. A completed solve publishes, for each of its
// seeds, the settled cell (vertex/distance/pred triples, truncated to a
// vertex budget — distance truncation is pred-closed because weights are
// strictly positive), keyed by (epoch content fingerprint, seed). A later
// query borrows the fragments of whichever of its seeds are present and
// pre-seeds its phase 1 from them (core::inject_fragments): the relaxation
// frontier shrinks to the fragment surface, and the solve stays bit-identical
// to cold because fragment labels are achievable labels of the same graph.
//
// Sharded like the result cache (per-shard mutex + index), ref-counted
// (borrowers hold shared_ptrs; eviction never invalidates an in-flight
// solve), bounded by a memory budget with cost-aware eviction: the victim is
// the fragment with the lowest retention score
//
//   (1 + times borrowed) x recompute cost (seconds of the producing solve,
//                                          attributed by cell share)
//
// so hot, expensive-to-recompute cells survive bursts of one-off queries.
// Epoch retirement purges fragments wholesale when their epoch leaves the
// service's live window, mirroring result-cache/donor retirement.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/steiner_state.hpp"
#include "graph/types.hpp"
#include "util/hash.hpp"

namespace dsteiner::service::distshare {

struct fragment_store_config {
  std::size_t shards = 4;
  /// Total fragment bytes across all shards (split evenly per shard).
  std::uint64_t memory_budget_bytes = 64ull << 20;
  /// Per-fragment truncation: keep at most this many vertices, closest
  /// first (0 = whole cell). Truncation keeps the distance-sorted prefix,
  /// which is pred-closed, so borrowed labels always carry valid witnesses.
  std::size_t max_fragment_vertices = 1u << 16;
  /// Cells smaller than this are not worth storing (a bootstrap visitor
  /// regrows them as fast as an injection would).
  std::size_t min_fragment_vertices = 2;
};

struct fragment_store_stats {
  std::uint64_t published = 0;   ///< fragments inserted (including refreshes)
  std::uint64_t refreshed = 0;   ///< publishes that replaced an existing entry
  std::uint64_t hits = 0;        ///< borrow probes that found a fragment
  std::uint64_t misses = 0;      ///< borrow probes that did not
  std::uint64_t evictions = 0;   ///< memory-budget victims
  std::uint64_t retired = 0;     ///< purged by epoch retirement
  std::uint64_t bytes_in_use = 0;
  std::size_t fragments = 0;     ///< current occupancy
};

/// One settled, truncated per-seed cell. Immutable after construction except
/// the borrow counter (the reuse half of the eviction score).
struct sssp_fragment {
  graph::vertex_id seed = 0;
  std::uint64_t graph_fingerprint = 0;  ///< epoch content fp the labels match
  std::uint64_t epoch_id = 0;
  std::vector<graph::vertex_id> vertices;  ///< sorted by (distance, id)
  std::vector<graph::weight_t> distance;
  std::vector<graph::vertex_id> pred;
  graph::weight_t radius = 0;  ///< largest distance retained
  /// Attributed share of the producing solve's wall time — what a consumer
  /// saves, and the cost half of the eviction score.
  double recompute_cost_seconds = 0.0;
  mutable std::atomic<std::uint64_t> borrows{0};

  [[nodiscard]] core::sssp_fragment_view view() const noexcept {
    return {seed, vertices, distance, pred};
  }
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return sizeof(sssp_fragment) +
           vertices.size() * (sizeof(graph::vertex_id) * 2 +
                              sizeof(graph::weight_t));
  }
  [[nodiscard]] double retention_score() const noexcept {
    return (1.0 + static_cast<double>(
                      borrows.load(std::memory_order_relaxed))) *
           recompute_cost_seconds;
  }
};

using fragment_ptr = std::shared_ptr<const sssp_fragment>;

class sssp_fragment_store {
 public:
  explicit sssp_fragment_store(fragment_store_config config = {});

  sssp_fragment_store(const sssp_fragment_store&) = delete;
  sssp_fragment_store& operator=(const sssp_fragment_store&) = delete;

  /// Splits a converged labelling into per-seed fragments and publishes each
  /// cell of at least min_fragment_vertices members (truncated to
  /// max_fragment_vertices closest). `solve_seconds` is apportioned across
  /// the cells by member share. A re-publish of an existing (fingerprint,
  /// seed) replaces the fragment but carries its borrow count forward, so a
  /// hot cell does not lose its eviction shield on refresh. Returns the
  /// number of fragments published.
  std::size_t publish_from_state(std::uint64_t graph_fingerprint,
                                 std::uint64_t epoch_id,
                                 const core::steiner_state& state,
                                 std::span<const graph::vertex_id> seeds,
                                 double solve_seconds);

  /// Fragment for (fingerprint, seed), or nullptr. A hit bumps the reuse
  /// counter; the returned pointer stays valid across eviction/retirement.
  [[nodiscard]] fragment_ptr borrow(std::uint64_t graph_fingerprint,
                                    graph::vertex_id seed);

  /// Side-effect-free presence probe for (fingerprint, seed): no borrow
  /// bump, no hit/miss accounting. Admission-time feature extraction asks
  /// "would this solve get fragment assists?" without perturbing the
  /// eviction scores or the store's stats.
  [[nodiscard]] bool has(std::uint64_t graph_fingerprint,
                         graph::vertex_id seed) const noexcept;

  /// Purges every fragment with epoch_id < first_live. Returns count purged.
  std::size_t retire_epochs_before(std::uint64_t first_live);

  [[nodiscard]] fragment_store_stats snapshot() const;
  void clear();

  [[nodiscard]] const fragment_store_config& config() const noexcept {
    return config_;
  }

 private:
  struct key {
    std::uint64_t fingerprint = 0;
    graph::vertex_id seed = 0;
    friend bool operator==(const key&, const key&) = default;
  };
  struct key_hash {
    [[nodiscard]] std::size_t operator()(const key& k) const noexcept {
      return static_cast<std::size_t>(
          util::hash_combine(k.fingerprint, k.seed));
    }
  };
  struct shard {
    mutable std::mutex mutex;
    std::unordered_map<key, fragment_ptr, key_hash> index;
    std::uint64_t bytes = 0;
    fragment_store_stats counters;  ///< bytes_in_use/fragments unused here
  };

  [[nodiscard]] shard& shard_for(graph::vertex_id seed) noexcept;
  /// Inserts under the shard lock, then evicts lowest-retention fragments
  /// until the shard is back under its budget slice.
  void insert(const key& k, fragment_ptr fragment);

  fragment_store_config config_;
  std::uint64_t per_shard_budget_ = 0;
  std::vector<std::unique_ptr<shard>> shards_;
};

}  // namespace dsteiner::service::distshare
