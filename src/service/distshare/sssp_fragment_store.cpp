#include "service/distshare/sssp_fragment_store.hpp"

#include <algorithm>
#include <limits>
#include <utility>

namespace dsteiner::service::distshare {

sssp_fragment_store::sssp_fragment_store(fragment_store_config config)
    : config_(config) {
  config_.shards = std::max<std::size_t>(1, config_.shards);
  config_.min_fragment_vertices =
      std::max<std::size_t>(2, config_.min_fragment_vertices);
  per_shard_budget_ =
      std::max<std::uint64_t>(1, config_.memory_budget_bytes / config_.shards);
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<shard>());
  }
}

sssp_fragment_store::shard& sssp_fragment_store::shard_for(
    graph::vertex_id seed) noexcept {
  return *shards_[static_cast<std::size_t>(util::hash_combine(0xf7a6, seed)) %
                  shards_.size()];
}

std::size_t sssp_fragment_store::publish_from_state(
    std::uint64_t graph_fingerprint, std::uint64_t epoch_id,
    const core::steiner_state& state, std::span<const graph::vertex_id> seeds,
    double solve_seconds) {
  if (seeds.empty()) return 0;

  // One pass over the labelling, bucketing members by owning seed. Seed ids
  // are mapped to dense cell indices through the canonical (sorted) seed
  // list, so the bucketing is O(n log |S|) with no hashing.
  const auto cell_of = [&seeds](graph::vertex_id src) -> std::size_t {
    const auto it = std::lower_bound(seeds.begin(), seeds.end(), src);
    if (it == seeds.end() || *it != src) return seeds.size();  // foreign label
    return static_cast<std::size_t>(it - seeds.begin());
  };
  std::vector<std::vector<graph::vertex_id>> members(seeds.size());
  std::uint64_t assigned = 0;
  const graph::vertex_id n =
      static_cast<graph::vertex_id>(state.src.size());
  for (graph::vertex_id v = 0; v < n; ++v) {
    if (state.src[v] == graph::k_no_vertex) continue;
    const std::size_t cell = cell_of(state.src[v]);
    if (cell == seeds.size()) continue;
    members[cell].push_back(v);
    ++assigned;
  }
  if (assigned == 0) return 0;

  std::size_t published = 0;
  for (std::size_t cell = 0; cell < seeds.size(); ++cell) {
    auto& cell_members = members[cell];
    if (cell_members.size() < config_.min_fragment_vertices) continue;

    // Truncate to the closest max_fragment_vertices members. Sorting by
    // (distance, id) makes the cut deterministic and pred-closed: a pred is
    // strictly closer than its child (positive weights), so every retained
    // vertex's witness chain is retained with it.
    const auto closer = [&state](graph::vertex_id a, graph::vertex_id b) {
      return std::pair{state.distance[a], a} < std::pair{state.distance[b], b};
    };
    const std::size_t keep =
        config_.max_fragment_vertices == 0
            ? cell_members.size()
            : std::min(cell_members.size(), config_.max_fragment_vertices);
    if (keep < cell_members.size()) {
      std::nth_element(cell_members.begin(),
                       cell_members.begin() + static_cast<std::ptrdiff_t>(keep),
                       cell_members.end(), closer);
      cell_members.resize(keep);
    }
    std::sort(cell_members.begin(), cell_members.end(), closer);

    auto fragment = std::make_shared<sssp_fragment>();
    fragment->seed = seeds[cell];
    fragment->graph_fingerprint = graph_fingerprint;
    fragment->epoch_id = epoch_id;
    fragment->vertices = std::move(cell_members);
    fragment->distance.reserve(fragment->vertices.size());
    fragment->pred.reserve(fragment->vertices.size());
    for (const graph::vertex_id v : fragment->vertices) {
      fragment->distance.push_back(state.distance[v]);
      fragment->pred.push_back(state.pred[v]);
    }
    fragment->radius = fragment->distance.back();
    fragment->recompute_cost_seconds =
        solve_seconds * static_cast<double>(fragment->vertices.size()) /
        static_cast<double>(assigned);

    const key k{graph_fingerprint, fragment->seed};
    insert(k, std::move(fragment));
    ++published;
  }
  return published;
}

void sssp_fragment_store::insert(const key& k, fragment_ptr fragment) {
  shard& s = shard_for(k.seed);
  const std::lock_guard<std::mutex> lock(s.mutex);
  ++s.counters.published;
  if (const auto it = s.index.find(k); it != s.index.end()) {
    // Refresh: carry the reuse signal forward so a hot cell keeps its
    // eviction shield across re-publishes.
    fragment->borrows.store(
        it->second->borrows.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    s.bytes -= it->second->memory_bytes();
    s.index.erase(it);
    ++s.counters.refreshed;
  }
  s.bytes += fragment->memory_bytes();
  s.index.emplace(k, std::move(fragment));

  // Cost-aware eviction: lowest (1 + borrows) x recompute-cost goes first.
  // Borrowers hold shared_ptrs, so eviction frees the index slot immediately
  // and the bytes when the last in-flight solve drops its reference.
  while (s.bytes > per_shard_budget_ && s.index.size() > 1) {
    auto victim = s.index.begin();
    double victim_score = victim->second->retention_score();
    for (auto it = std::next(s.index.begin()); it != s.index.end(); ++it) {
      const double score = it->second->retention_score();
      if (score < victim_score) {
        victim = it;
        victim_score = score;
      }
    }
    s.bytes -= victim->second->memory_bytes();
    s.index.erase(victim);
    ++s.counters.evictions;
  }
}

fragment_ptr sssp_fragment_store::borrow(std::uint64_t graph_fingerprint,
                                         graph::vertex_id seed) {
  shard& s = shard_for(seed);
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.index.find(key{graph_fingerprint, seed});
  if (it == s.index.end()) {
    ++s.counters.misses;
    return nullptr;
  }
  ++s.counters.hits;
  it->second->borrows.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

bool sssp_fragment_store::has(std::uint64_t graph_fingerprint,
                              graph::vertex_id seed) const noexcept {
  const shard& s =
      *shards_[static_cast<std::size_t>(util::hash_combine(0xf7a6, seed)) %
               shards_.size()];
  const std::lock_guard<std::mutex> lock(s.mutex);
  return s.index.find(key{graph_fingerprint, seed}) != s.index.end();
}

std::size_t sssp_fragment_store::retire_epochs_before(
    std::uint64_t first_live) {
  std::size_t purged = 0;
  for (auto& s : shards_) {
    const std::lock_guard<std::mutex> lock(s->mutex);
    for (auto it = s->index.begin(); it != s->index.end();) {
      if (it->second->epoch_id < first_live) {
        s->bytes -= it->second->memory_bytes();
        it = s->index.erase(it);
        ++s->counters.retired;
        ++purged;
      } else {
        ++it;
      }
    }
  }
  return purged;
}

fragment_store_stats sssp_fragment_store::snapshot() const {
  fragment_store_stats total;
  for (const auto& s : shards_) {
    const std::lock_guard<std::mutex> lock(s->mutex);
    total.published += s->counters.published;
    total.refreshed += s->counters.refreshed;
    total.hits += s->counters.hits;
    total.misses += s->counters.misses;
    total.evictions += s->counters.evictions;
    total.retired += s->counters.retired;
    total.bytes_in_use += s->bytes;
    total.fragments += s->index.size();
  }
  return total;
}

void sssp_fragment_store::clear() {
  for (auto& s : shards_) {
    const std::lock_guard<std::mutex> lock(s->mutex);
    s->index.clear();
    s->bytes = 0;
  }
}

}  // namespace dsteiner::service::distshare
