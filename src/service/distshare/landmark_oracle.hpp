// Landmark distance oracle — cheap upper/lower bounds on graph distances.
//
// K landmark vertices, each with a full SSSP distance table, give two bounds
// for any pair (u, v) by the triangle inequality:
//
//   lower:  max_l |d(l,u) - d(l,v)|  <=  d(u,v)  <=  min_l d(l,u) + d(l,v)
//
// Three serving-layer consumers:
//   1. phase-1 pruning: for a query's seed set S, ub[v] = min_l (min_s d(l,s)
//      + d(l,v)) upper-bounds v's final Voronoi distance, so a frontier
//      visitor proposing a strictly larger distance is provably non-improving
//      and can be dropped at admission (core::voronoi_prune) — output
//      preserved, relaxation cascades cut;
//   2. admission cost model: the mean lower-bound distance from each seed to
//      its nearest co-seed ("seed spread") predicts how much graph a solve
//      must traverse, sharpening the per-path completion estimate beyond a
//      global p50;
//   3. donor pre-ranking: an added seed's future cell volume scales with its
//      lower-bound distance to the donor's seeds — rank donors without
//      probing them.
//
// Landmarks are degree/ecc-sampled: the first is the highest-degree vertex,
// the rest maximize the minimum distance to the landmarks already chosen
// (farthest-point sampling, which also lands one landmark per component).
// Trees build lazily in waves on the parallel runtime's worker pool, with
// cooperative cancellation checkpoints between waves.
//
// Epoch invalidation rides the existing edge-delta machinery instead of
// rebuilding eagerly: raising/disabling edges can only *grow* true distances,
// so stale tables remain valid upper bounds through lowered-only deltas and
// valid lower bounds through raised-only deltas. Each advance therefore
// degrades at most one side; a side is unusable only after a delta moved
// distances in its direction, and the next build restores both.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/epoch_graph.hpp"
#include "graph/types.hpp"
#include "util/cancellation.hpp"

namespace dsteiner::service::distshare {

class landmark_oracle {
 public:
  struct config {
    std::size_t num_landmarks = 8;  ///< clamped to |V|
    /// Worker threads for the build waves (0 = hardware concurrency).
    std::size_t build_threads = 0;
  };

  struct stats_data {
    std::uint64_t builds = 0;
    bool built = false;
    bool upper_valid = false;  ///< UBs usable against the current epoch
    bool lower_valid = false;  ///< LBs usable against the current epoch
    std::size_t landmarks = 0;
    std::uint64_t built_fingerprint = 0;
  };

  landmark_oracle() : landmark_oracle(config{}) {}
  explicit landmark_oracle(config cfg);

  /// Registers an epoch advance: `delta` is the applied edit batch deriving
  /// the new epoch (epoch_graph::delta_from_parent). Raised/disabled edits
  /// invalidate upper bounds, lowered/enabled ones invalidate lower bounds;
  /// bounds for the exact built fingerprint always stay usable (pinned
  /// queries on the build epoch keep full pruning).
  void advance_epoch(std::uint64_t new_fingerprint,
                     std::span<const graph::applied_edge_edit> delta);

  /// Blocking (re)build against `g`, whose content fingerprint is `fp`.
  /// Thread-safe and idempotent: a racing build for the same fingerprint
  /// returns without duplicating work. Throws util::operation_cancelled when
  /// `budget` trips between build waves.
  void build(const graph::csr_graph& g, std::uint64_t fp,
             const util::run_budget* budget = nullptr);

  /// True when a build against `current_fp` would improve the oracle (never
  /// built, or either bound side went stale for that epoch).
  [[nodiscard]] bool needs_build(std::uint64_t current_fp) const;

  /// Per-vertex upper bounds on min_{s in seeds} d(s, v) for the epoch with
  /// content fingerprint `fp` — the voronoi_prune input. Empty when the
  /// upper side is unusable for that epoch. `seeds` must be canonical.
  [[nodiscard]] std::vector<graph::weight_t> prune_bounds(
      std::uint64_t fp, std::span<const graph::vertex_id> seeds) const;

  /// Lower bound on d(u, v) for epoch `fp`; 0 when unusable (always a valid
  /// lower bound). k_inf_distance when the landmarks prove u,v disconnected.
  [[nodiscard]] graph::weight_t lower_bound(std::uint64_t fp,
                                            graph::vertex_id u,
                                            graph::vertex_id v) const;

  /// Mean lower-bound distance from each seed to its nearest co-seed — the
  /// cost model's spread feature. 0.0 when unusable (or |seeds| < 2).
  [[nodiscard]] double seed_spread(
      std::uint64_t fp, std::span<const graph::vertex_id> seeds) const;

  [[nodiscard]] stats_data stats() const;

 private:
  struct tables {
    std::uint64_t fingerprint = 0;
    std::vector<graph::vertex_id> landmarks;
    /// dist[l][v] = d(landmarks[l], v); k_inf_distance if unreachable.
    std::vector<std::vector<graph::weight_t>> dist;
  };
  using tables_ptr = std::shared_ptr<const tables>;

  /// Snapshot usable for the given epoch and bound side, else nullptr.
  [[nodiscard]] tables_ptr usable(std::uint64_t fp, bool need_upper,
                                  bool need_lower) const;

  config config_;
  mutable std::mutex mutex_;
  tables_ptr tables_;          ///< swapped whole on rebuild
  std::uint64_t current_fp_ = 0;
  bool upper_valid_ = false;   ///< vs current_fp_
  bool lower_valid_ = false;
  std::uint64_t builds_ = 0;
};

}  // namespace dsteiner::service::distshare
