#include "service/distshare/landmark_oracle.hpp"

#include <algorithm>
#include <tuple>

#include "graph/dijkstra.hpp"
#include "runtime/parallel/worker_pool.hpp"

namespace dsteiner::service::distshare {

namespace {

/// inf-aware addition (unreachable + anything = unreachable).
[[nodiscard]] graph::weight_t sat_add(graph::weight_t a,
                                      graph::weight_t b) noexcept {
  if (a == graph::k_inf_distance || b == graph::k_inf_distance) {
    return graph::k_inf_distance;
  }
  return a + b;
}

}  // namespace

landmark_oracle::landmark_oracle(config cfg) : config_(cfg) {
  config_.num_landmarks = std::max<std::size_t>(1, config_.num_landmarks);
}

void landmark_oracle::advance_epoch(
    std::uint64_t new_fingerprint,
    std::span<const graph::applied_edge_edit> delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  current_fp_ = new_fingerprint;
  if (tables_ == nullptr) return;
  for (const graph::applied_edge_edit& e : delta) {
    // Raised edits grow true distances: stale tables may now *under*estimate,
    // so the upper side dies. Lowered edits shrink them: stale tables may
    // overestimate, so the lower side dies. No-op edits change nothing.
    if (e.raised()) upper_valid_ = false;
    if (e.lowered()) lower_valid_ = false;
  }
}

bool landmark_oracle::needs_build(std::uint64_t current_fp) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (tables_ == nullptr) return true;
  if (tables_->fingerprint == current_fp) return false;
  return !(upper_valid_ && lower_valid_ && current_fp_ == current_fp);
}

void landmark_oracle::build(const graph::csr_graph& g, std::uint64_t fp,
                            const util::run_budget* budget) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (tables_ != nullptr && tables_->fingerprint == fp) return;
  }
  const graph::vertex_id n = g.num_vertices();
  auto fresh = std::make_shared<tables>();
  fresh->fingerprint = fp;
  if (n == 0) {
    const std::lock_guard<std::mutex> lock(mutex_);
    tables_ = std::move(fresh);
    ++builds_;
    upper_valid_ = lower_valid_ = (current_fp_ == fp);
    return;
  }
  const std::size_t k =
      std::min<std::size_t>(config_.num_landmarks, static_cast<std::size_t>(n));

  runtime::parallel::worker_pool pool(
      config_.build_threads != 0
          ? std::min(config_.build_threads, k)
          : std::min(runtime::parallel::worker_pool::default_threads(), k));

  // Landmark 0: highest degree (ties to the smallest id) — hubs bound the
  // most paths. The rest are farthest-point sampled against the trees built
  // so far (degree breaks min-distance ties), which spreads landmarks across
  // the graph and drops one into every component. Trees build in waves of
  // pool-width on the worker pool; the budget checkpoint sits between waves
  // (pool jobs must not throw).
  std::vector<char> selected(n, 0);
  std::vector<graph::weight_t> min_dist(n, graph::k_inf_distance);
  graph::vertex_id first = 0;
  for (graph::vertex_id v = 1; v < n; ++v) {
    if (g.degree(v) > g.degree(first)) first = v;
  }
  fresh->landmarks.push_back(first);
  selected[first] = 1;

  while (fresh->landmarks.size() < k || fresh->dist.size() < k) {
    if (budget != nullptr) budget->check();
    // Build the trees of every selected-but-unbuilt landmark, one wave.
    const std::size_t wave_begin = fresh->dist.size();
    const std::size_t wave_end = fresh->landmarks.size();
    fresh->dist.resize(wave_end);
    pool.run([&](std::size_t worker_id) {
      for (std::size_t i = wave_begin + worker_id; i < wave_end;
           i += pool.size()) {
        fresh->dist[i] =
            graph::dijkstra(g, fresh->landmarks[i]).distance;
      }
    });
    for (std::size_t i = wave_begin; i < wave_end; ++i) {
      const auto& d = fresh->dist[i];
      for (graph::vertex_id v = 0; v < n; ++v) {
        min_dist[v] = std::min(min_dist[v], d[v]);
      }
    }
    if (fresh->landmarks.size() >= k) break;

    // Next wave's landmarks: top pool-width candidates by (min distance to
    // the chosen set desc, degree desc, id asc). Isolated vertices are
    // skipped — their trees bound nothing.
    const std::size_t want =
        std::min(pool.size(), k - fresh->landmarks.size());
    std::vector<graph::vertex_id> candidates;
    candidates.reserve(static_cast<std::size_t>(n));
    for (graph::vertex_id v = 0; v < n; ++v) {
      if (selected[v] == 0 && g.degree(v) > 0 && min_dist[v] > 0) {
        candidates.push_back(v);
      }
    }
    if (candidates.empty()) break;  // graph smaller than requested K
    const auto better = [&](graph::vertex_id a, graph::vertex_id b) {
      return std::tuple{min_dist[a], g.degree(a),
                        ~static_cast<graph::vertex_id>(a)} >
             std::tuple{min_dist[b], g.degree(b),
                        ~static_cast<graph::vertex_id>(b)};
    };
    const std::size_t take = std::min(want, candidates.size());
    std::partial_sort(candidates.begin(),
                      candidates.begin() + static_cast<std::ptrdiff_t>(take),
                      candidates.end(), better);
    for (std::size_t i = 0; i < take; ++i) {
      fresh->landmarks.push_back(candidates[i]);
      selected[candidates[i]] = 1;
    }
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  // Concurrent-build resolution: equal fingerprints are equivalent tables
  // (selection is deterministic) — keep the installed one. And a slow build
  // for a *retired* epoch must never clobber tables already valid for the
  // live epoch, or the oracle goes dark until the next epoch advance.
  if (tables_ != nullptr) {
    if (tables_->fingerprint == fp) return;
    if (tables_->fingerprint == current_fp_ && fp != current_fp_) return;
  }
  tables_ = std::move(fresh);
  ++builds_;
  const bool current = current_fp_ == fp;
  upper_valid_ = current;
  lower_valid_ = current;
}

landmark_oracle::tables_ptr landmark_oracle::usable(std::uint64_t fp,
                                                    bool need_upper,
                                                    bool need_lower) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (tables_ == nullptr || tables_->dist.empty()) return nullptr;
  if (tables_->fingerprint == fp) return tables_;  // exact build epoch
  if (current_fp_ != fp) return nullptr;           // some other (pinned) epoch
  if (need_upper && !upper_valid_) return nullptr;
  if (need_lower && !lower_valid_) return nullptr;
  return tables_;
}

std::vector<graph::weight_t> landmark_oracle::prune_bounds(
    std::uint64_t fp, std::span<const graph::vertex_id> seeds) const {
  const tables_ptr t = usable(fp, /*need_upper=*/true, /*need_lower=*/false);
  if (t == nullptr || seeds.empty()) return {};
  const std::size_t n = t->dist.front().size();
  // min_s d(l, s) per landmark, then ub[v] = min_l (min_sd[l] + d(l, v)).
  std::vector<graph::weight_t> bounds(n, graph::k_inf_distance);
  for (const auto& d : t->dist) {
    graph::weight_t min_sd = graph::k_inf_distance;
    for (const graph::vertex_id s : seeds) {
      if (s < d.size()) min_sd = std::min(min_sd, d[s]);
    }
    if (min_sd == graph::k_inf_distance) continue;
    for (std::size_t v = 0; v < n; ++v) {
      bounds[v] = std::min(bounds[v], sat_add(min_sd, d[v]));
    }
  }
  return bounds;
}

graph::weight_t landmark_oracle::lower_bound(std::uint64_t fp,
                                             graph::vertex_id u,
                                             graph::vertex_id v) const {
  const tables_ptr t = usable(fp, /*need_upper=*/false, /*need_lower=*/true);
  if (t == nullptr) return 0;
  graph::weight_t best = 0;
  for (const auto& d : t->dist) {
    if (u >= d.size() || v >= d.size()) return 0;
    const graph::weight_t du = d[u];
    const graph::weight_t dv = d[v];
    const bool u_inf = du == graph::k_inf_distance;
    const bool v_inf = dv == graph::k_inf_distance;
    if (u_inf && v_inf) continue;  // landmark sees neither: no information
    if (u_inf != v_inf) return graph::k_inf_distance;  // different components
    best = std::max(best, du > dv ? du - dv : dv - du);
  }
  return best;
}

double landmark_oracle::seed_spread(
    std::uint64_t fp, std::span<const graph::vertex_id> seeds) const {
  if (seeds.size() < 2) return 0.0;
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    graph::weight_t nearest = graph::k_inf_distance;
    for (std::size_t j = 0; j < seeds.size() && nearest > 0; ++j) {
      if (i == j) continue;
      nearest = std::min(nearest, lower_bound(fp, seeds[i], seeds[j]));
    }
    if (nearest == graph::k_inf_distance) continue;  // disconnected co-seeds
    total += static_cast<double>(nearest);
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

landmark_oracle::stats_data landmark_oracle::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  stats_data s;
  s.builds = builds_;
  s.built = tables_ != nullptr && !tables_->dist.empty();
  s.upper_valid = s.built && upper_valid_;
  s.lower_valid = s.built && lower_valid_;
  s.landmarks = tables_ != nullptr ? tables_->landmarks.size() : 0;
  s.built_fingerprint = tables_ != nullptr ? tables_->fingerprint : 0;
  return s;
}

}  // namespace dsteiner::service::distshare
