// The request side of the service's request/handle API.
//
// A `request` is a `query` plus quality-of-service: a priority class, an
// absolute deadline and a caller-held cancellation token. `submit(request)`
// returns a `query_handle` (query_handle.hpp) instead of a bare future, so
// the caller can cancel, poll status, or block — the §I workflow fires bursts
// of exploratory queries and abandons most of them, which a plain
// future-based API cannot express.
//
// Admission is cost-aware: the service predicts completion time from its
// latency histograms and the executor backlog, and a request whose deadline
// is predictably unmeetable is rejected up front (reject_reason::
// deadline_unmeetable) instead of wasting a queue slot. Admitted requests
// enter a priority queue; under saturation, lower priority classes are shed
// first and queued entries past their deadline are expired rather than run.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "service/query.hpp"
#include "util/cancellation.hpp"

namespace dsteiner::service {

/// Admission priority classes, most urgent first. The executor drains the
/// classes in order (FIFO within a class), and under a full queue a
/// higher-class arrival displaces the newest lower-class queued entry.
enum class priority_class : std::uint8_t {
  interactive = 0,  ///< a human is waiting (the §I exploration loop)
  batch = 1,        ///< latency-tolerant bulk work (report generation)
  background = 2,   ///< best-effort (cache refreshes, prefetching)
};

inline constexpr std::size_t k_priority_classes = 3;

[[nodiscard]] constexpr const char* to_string(priority_class p) noexcept {
  switch (p) {
    case priority_class::interactive: return "interactive";
    case priority_class::batch: return "batch";
    case priority_class::background: return "background";
  }
  return "?";
}

[[nodiscard]] constexpr std::size_t priority_index(priority_class p) noexcept {
  const auto i = static_cast<std::size_t>(p);
  return i < k_priority_classes ? i : k_priority_classes - 1;
}

/// Per-request determinism contract.
///
/// strict (default): the solve runs in strict priority order — the output
/// tree AND the simulated metrics are bit-identical across engines, thread
/// counts and repeat runs, and the result is shared freely with the cache,
/// warm-start donors and coalesced riders.
///
/// relaxed: the service may run phase 1 as bucketed delta-stepping (the
/// cheaper tier — typically faster cold solves, priced lower by the learned
/// admission model). The output tree is still exactly the strict tree (the
/// solver's lexicographic fixed point does not depend on schedule), so
/// relaxed and strict queries share cache entries and donors; only the
/// *metrics* (relaxation counts, simulated clock) become schedule-dependent.
enum class determinism_mode : std::uint8_t {
  strict = 0,
  relaxed = 1,
};

[[nodiscard]] constexpr const char* to_string(determinism_mode d) noexcept {
  switch (d) {
    case determinism_mode::strict: return "strict";
    case determinism_mode::relaxed: return "relaxed";
  }
  return "?";
}

/// A query plus its QoS envelope. The query fields mean exactly what they
/// mean on `query` (query.hpp); the embedded struct keeps one source of
/// truth for them during the deprecation window of the future-based API.
struct request {
  query q;

  priority_class priority = priority_class::interactive;
  /// Absolute completion deadline. Admission rejects the request when the
  /// cost model predicts it cannot be met; once admitted, the deadline
  /// expires the request in the queue or stops it mid-solve at the next
  /// solver checkpoint. nullopt = unbounded.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Caller-held cooperative cancellation: cancelling the source this token
  /// came from stops the request exactly like query_handle::cancel(). A
  /// default token never cancels. One token may be shared by many requests
  /// (cancel a whole session in one call).
  util::cancel_token cancel{};
  /// Determinism tier (see determinism_mode). strict is the default so the
  /// bit-identity contract — and every reuse path that leans on it — holds
  /// unless the caller explicitly opts into the cheaper relaxed tier.
  determinism_mode determinism = determinism_mode::strict;

  request() = default;
  explicit request(query base) : q(std::move(base)) {}

  /// Relative-deadline convenience: deadline = now + timeout.
  request& within(std::chrono::steady_clock::duration timeout) {
    deadline = std::chrono::steady_clock::now() + timeout;
    return *this;
  }
};

/// How a request terminated without producing a result.
enum class reject_reason : std::uint8_t {
  none = 0,
  queue_full,           ///< admission queue saturated (possibly displaced)
  deadline_unmeetable,  ///< cost model predicted the deadline cannot be met
};

[[nodiscard]] constexpr const char* to_string(reject_reason r) noexcept {
  switch (r) {
    case reject_reason::none: return "none";
    case reject_reason::queue_full: return "queue-full";
    case reject_reason::deadline_unmeetable: return "deadline-unmeetable";
  }
  return "?";
}

/// Surfaced by query_handle::get() for requests that were never admitted (or
/// were shed from the queue); `reason()` says why.
class request_rejected : public std::runtime_error {
 public:
  explicit request_rejected(reject_reason why)
      : std::runtime_error(std::string("request rejected: ") + to_string(why)),
        why_(why) {}

  [[nodiscard]] reject_reason reason() const noexcept { return why_; }

 private:
  reject_reason why_;
};

/// Lifecycle of a submitted request, observable through query_handle::
/// status(). Terminal states: done, cancelled, expired, rejected, failed.
enum class request_status : std::uint8_t {
  queued,     ///< admitted, waiting for a worker
  running,    ///< a worker is executing it
  done,       ///< result available (query_handle::get() returns it)
  cancelled,  ///< stopped by cancel() or the request token
  expired,    ///< deadline passed (queued or mid-solve)
  rejected,   ///< never admitted / shed from the queue (see reject_reason)
  failed,     ///< the solve threw (get() rethrows)
};

[[nodiscard]] constexpr const char* to_string(request_status s) noexcept {
  switch (s) {
    case request_status::queued: return "queued";
    case request_status::running: return "running";
    case request_status::done: return "done";
    case request_status::cancelled: return "cancelled";
    case request_status::expired: return "expired";
    case request_status::rejected: return "rejected";
    case request_status::failed: return "failed";
  }
  return "?";
}

}  // namespace dsteiner::service
