// The handle side of the service's request/handle API.
//
// `steiner_service::submit(request)` returns a `query_handle`: a shared view
// of the request's lifecycle with
//
//   status() — non-blocking lifecycle probe (queued/running/done/...)
//   cancel() — cooperative stop: a queued request resolves without running,
//              a running one stops at the next solver checkpoint
//   poll()   — non-blocking result fetch (nullopt until done)
//   get()    — blocking fetch; rethrows failures, operation_cancelled for
//              cancelled/expired requests, request_rejected for shed ones
//
// Handles are cheap shared_ptr copies; dropping every copy does NOT cancel
// the request (fire-and-forget is legal) — cancellation is always explicit.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>

#include "service/query.hpp"
#include "service/request.hpp"
#include "util/cancellation.hpp"

namespace dsteiner::service {

class steiner_service;

/// Admission-time completion estimates for one request: the value admission
/// decisions actually used, plus the two side-by-side predictions it chose
/// between (the learned cost model and the global per-path p50 baseline).
/// All zero when admission never priced the request.
struct admission_estimates {
  double used = 0.0;      ///< compared against the deadline, fed to the trace
  double baseline = 0.0;  ///< global per-path p50 path (always computed)
  double model = 0.0;     ///< learned cost model (0 = no prediction yet)
  bool model_used = false;  ///< used == model (the model was ready)
};

namespace detail {

/// Shared state between the service (producer side) and every handle copy.
/// The service resolves `promise` exactly once and stores the terminal
/// status *before* resolving, so a reader woken by the future observes the
/// final status.
struct request_state {
  std::uint64_t id = 0;
  priority_class priority = priority_class::interactive;
  std::atomic<request_status> status{request_status::queued};
  std::atomic<reject_reason> rejection{reject_reason::none};

  /// Handle-level cancellation (query_handle::cancel) feeding budget.cancel;
  /// budget.user_cancel carries the request's own token. The budget lives
  /// here so it outlives the solve no matter when the caller drops handles.
  util::cancel_source canceller;
  util::run_budget budget;

  /// Admission-time completion estimates (learned model + p50 baseline); all
  /// zero when no estimate was computed. Written before the task is posted,
  /// read by the worker (happens-before via the executor queue).
  admission_estimates estimates{};

  std::promise<query_result> promise;
  /// Engaged by submit(request) before the task is posted; the legacy
  /// future-based wrappers take the plain future instead and leave this
  /// empty (the handle is never exposed there).
  std::shared_future<query_result> future;
};

}  // namespace detail

class query_handle {
 public:
  /// Empty handle (valid() == false); accessors other than valid() throw
  /// std::logic_error.
  query_handle() = default;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// Monotonic per-service submission id (distinct from query_result::
  /// query_id, which counts *executed* queries).
  [[nodiscard]] std::uint64_t id() const { return state().id; }
  [[nodiscard]] priority_class priority() const { return state().priority; }

  [[nodiscard]] request_status status() const {
    return state().status.load(std::memory_order_acquire);
  }

  /// Why the request was rejected (meaningful once status() == rejected).
  [[nodiscard]] reject_reason rejection() const {
    return state().rejection.load(std::memory_order_acquire);
  }

  /// True once the request reached a terminal state.
  [[nodiscard]] bool finished() const {
    switch (status()) {
      case request_status::queued:
      case request_status::running: return false;
      default: return true;
    }
  }

  /// Requests cooperative cancellation. Returns true if this call was the
  /// first to fire the handle's source. Best-effort: a request already past
  /// its last checkpoint still completes (status ends up done).
  bool cancel() { return state().canceller.request_cancel(); }

  /// Non-blocking: the result if the request completed successfully,
  /// nullopt otherwise (still in flight, or terminal-without-result — check
  /// status()). Never throws on failed/cancelled requests; get() does.
  [[nodiscard]] std::optional<query_result> poll() const;

  /// The request's query-scoped trace: null until the request completed
  /// successfully, and always null when the service ran with tracing off or
  /// the query never reached execute() (rejected/expired in the queue).
  [[nodiscard]] std::shared_ptr<const obs::query_trace> trace() const;

  /// Convenience: the finalized trace summary (latency splits, span totals,
  /// estimate-vs-actual error). nullopt whenever trace() is null.
  [[nodiscard]] std::optional<obs::trace_summary> trace_summary() const;

  /// Admission-time completion estimates for this request — the learned
  /// cost model's prediction and the global-p50 baseline side by side, plus
  /// which one admission used. All zero when admission never priced the
  /// request (legacy wrappers with estimation off).
  [[nodiscard]] admission_estimates admission() const {
    return state().estimates;
  }

  /// Blocks until terminal. Returns the result for done requests; throws
  /// util::operation_cancelled (cancelled/expired), request_rejected
  /// (rejected), or the solver's exception (failed).
  [[nodiscard]] query_result get() const;

  /// Blocks until the request reaches a terminal state.
  void wait() const { state().future.wait(); }

  /// Bounded wait; true when terminal.
  [[nodiscard]] bool wait_for(std::chrono::steady_clock::duration d) const {
    return state().future.wait_for(d) == std::future_status::ready;
  }

 private:
  friend class steiner_service;
  explicit query_handle(std::shared_ptr<detail::request_state> state) noexcept
      : state_(std::move(state)) {}

  [[nodiscard]] detail::request_state& state() const;

  std::shared_ptr<detail::request_state> state_;
};

}  // namespace dsteiner::service
