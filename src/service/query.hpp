// Query and result types for the concurrent Steiner query service.
//
// A query is a seed set plus optional solver-configuration overrides; the
// service executes it cold, warm (repairing a recent solve with a similar
// seed set) or straight from the result cache, and reports which path it
// took along with admission-to-completion latency splits.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/steiner_solver.hpp"
#include "core/warm_start.hpp"
#include "graph/types.hpp"

namespace dsteiner::service {

struct query {
  std::vector<graph::vertex_id> seeds;
  /// Overrides the service-wide default solver configuration when set.
  std::optional<core::solver_config> config;
  /// Per-query opt-outs (e.g. to force fresh solves in benchmarks).
  bool use_cache = true;
  bool allow_warm_start = true;
};

/// How the service satisfied a query. The output tree is identical across all
/// paths (the solver's determinism guarantee); only the work differs.
/// `coalesced` = an identical query was already in flight on another worker
/// and this one waited for its result instead of duplicating the solve
/// (single-flight).
enum class solve_kind : std::uint8_t { cold, warm_start, cache_hit, coalesced };

[[nodiscard]] const char* to_string(solve_kind kind) noexcept;

struct query_result {
  core::steiner_result result;
  solve_kind kind = solve_kind::cold;
  std::uint64_t query_id = 0;

  double queue_wait_seconds = 0.0;  ///< admission queue -> worker pickup
  double solve_seconds = 0.0;       ///< inside the solver (0 for cache hits)
  double total_seconds = 0.0;       ///< admission -> completion

  /// Repair-size observability; populated when kind == warm_start.
  core::warm_start_stats warm;
};

}  // namespace dsteiner::service
