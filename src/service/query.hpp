// Query and result types for the concurrent Steiner query service.
//
// A query is a seed set plus optional solver-configuration overrides; the
// service executes it cold, warm (repairing a recent solve with a similar
// seed set) or straight from the result cache, and reports which path it
// took along with admission-to-completion latency splits.
//
// `query` is the QoS-free core of a `request` (request.hpp). The
// future-based submit(query)/try_submit/solve surface survives as thin
// wrappers for one deprecation window — new callers should submit a
// `request` and hold the `query_handle` (query_handle.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/steiner_solver.hpp"
#include "core/warm_start.hpp"
#include "graph/types.hpp"
#include "obs/trace.hpp"

namespace dsteiner::service {

struct query {
  std::vector<graph::vertex_id> seeds;
  /// Overrides the service-wide default solver configuration when set.
  std::optional<core::solver_config> config;
  /// Per-query opt-outs (e.g. to force fresh solves in benchmarks).
  bool use_cache = true;
  bool allow_warm_start = true;
  /// Pins the query to a specific graph epoch (it must still be live);
  /// nullopt targets the current epoch at execution time. Old-epoch cached
  /// results remain servable through pins until their epoch retires.
  std::optional<std::uint64_t> epoch;
  /// Unpinned queries only: accept a cached result from an older live epoch
  /// (within the service's max_stale_epochs window) when the current epoch
  /// has no entry yet — stale-while-warming. The service kicks off a
  /// best-effort background refresh for the current epoch on every stale
  /// hit.
  bool allow_stale = true;
};

/// How the service satisfied a query. The output tree is identical across all
/// paths (the solver's determinism guarantee) *except* stale_hit, which
/// deliberately returns the previous epoch's tree; only the work differs.
/// `warm_start` covers both seed-delta repairs and cross-epoch edge-delta
/// repairs. `coalesced` = an identical query was already in flight on another
/// worker and this one waited for its result instead of duplicating the solve
/// (single-flight).
enum class solve_kind : std::uint8_t {
  cold,
  warm_start,
  cache_hit,
  coalesced,
  stale_hit,
};

[[nodiscard]] const char* to_string(solve_kind kind) noexcept;

struct query_result {
  core::steiner_result result;
  solve_kind kind = solve_kind::cold;
  std::uint64_t query_id = 0;
  /// Graph epoch the served tree belongs to (the stale source epoch for
  /// stale_hit results).
  std::uint64_t epoch = 0;

  double queue_wait_seconds = 0.0;  ///< admission queue -> worker pickup
  double solve_seconds = 0.0;       ///< inside the solver (0 for cache hits)
  double total_seconds = 0.0;       ///< admission -> completion

  /// Repair-size observability; populated when kind == warm_start.
  core::warm_start_stats warm;
  /// Shared-substrate observability; populated when kind == cold and the
  /// solve was pre-seeded from the fragment store and/or pruned by the
  /// landmark oracle (service/distshare/). A fragment-assisted solve still
  /// reports kind == cold: its tree is bit-identical, only the work shrank.
  core::assist_stats assist;

  /// Query-scoped trace (spans, engine samples, summary) when the service
  /// ran with tracing enabled; null otherwise. Tracing is pure observation —
  /// the tree is bit-identical with or without it.
  std::shared_ptr<const obs::query_trace> trace;
};

}  // namespace dsteiner::service
