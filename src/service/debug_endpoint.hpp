// Binds a steiner_service to the obs::debug_server routes.
//
// One debug_endpoint owns one debug_server and renders three live views of
// the service it wraps:
//
//   /metrics  Prometheus text exposition (render_metrics_text of a fresh
//             snapshot) — scrape-ready;
//   /statusz  human-readable one-page status: epoch window, queue depth,
//             path counters, substrate occupancy, slow-query log size;
//   /tracez   slow-query log plus flight recorder (head-sampled traces) as
//             a JSON array of Chrome trace objects, each loadable in
//             Perfetto / chrome://tracing; honors ?limit=N (newest last);
//   /slo      the SLO burn-rate families alone, Prometheus exposition —
//             a cheap scrape target for fast-burn alerting;
//   /clusterz the most recent distributed solve's merged rank telemetry:
//             whole-solve straggler digest plus one row per (phase,
//             superstep) group with critical-path rank, compute skew and
//             comm-wait fraction ({"world":0,...} until one completes).
//
// Handlers run on the server thread and only read snapshot()/slow_log(), so
// the endpoint never blocks a query. The service must outlive the endpoint.
#pragma once

#include <cstdint>

#include "obs/debug_server.hpp"
#include "service/steiner_service.hpp"

namespace dsteiner::service {

class debug_endpoint {
 public:
  /// Registers the routes against `service`; call start() to go live.
  explicit debug_endpoint(const steiner_service& service);

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and serves until stop()/dtor.
  bool start(std::uint16_t port = 0) { return server_.start(port); }
  void stop() { server_.stop(); }

  [[nodiscard]] bool running() const noexcept { return server_.running(); }
  [[nodiscard]] std::uint16_t port() const noexcept { return server_.port(); }
  [[nodiscard]] const obs::debug_server& server() const noexcept {
    return server_;
  }

 private:
  [[nodiscard]] std::string render_statusz() const;
  [[nodiscard]] std::string render_tracez(std::string_view query) const;
  [[nodiscard]] std::string render_clusterz() const;

  const steiner_service& service_;
  obs::debug_server server_;
};

}  // namespace dsteiner::service
