#include "service/exploration_session.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "service/steiner_service.hpp"

namespace dsteiner::service {

exploration_session::exploration_session(graph::csr_graph graph,
                                         core::solver_config config)
    : config_(config) {
  // Interactive editing routinely disconnects seeds; return forests instead
  // of throwing mid-session.
  config_.allow_disconnected_seeds = true;
  service_config svc_config;
  svc_config.solver = config_;
  // One user, one in-flight query: a single worker keeps edits ordered while
  // still buying the service's cache and warm-start repair. Graph edits
  // derive epochs on this same service — sessions never rebuild it.
  svc_config.exec.num_threads = 1;
  svc_config.exec.queue_capacity = 16;
  // Sessions always read the graph they just edited: stale-epoch serving
  // would hand back the previous epoch's tree, so it stays off and the
  // session relies on pinned-epoch cache entries plus edge-delta repairs.
  svc_config.max_stale_epochs = 0;
  service_ = std::make_unique<steiner_service>(std::move(graph), svc_config);
  epoch_ = service_->current_epoch();
}

exploration_session::~exploration_session() = default;

const graph::csr_graph& exploration_session::graph() const {
  return service_->graph();
}

void exploration_session::apply_edge_delta(const graph::edge_delta& delta) {
  if (delta.empty()) return;  // nothing changed: the cached tree stands
  epoch_ = service_->advance_epoch(delta);
  invalidate();
}

bool exploration_session::add_seed(graph::vertex_id v) {
  if (v >= graph().num_vertices()) {
    throw std::out_of_range("exploration_session: seed id out of range");
  }
  if (!seeds_.insert(v).second) return false;
  invalidate();
  return true;
}

bool exploration_session::remove_seed(graph::vertex_id v) {
  if (seeds_.erase(v) == 0) return false;
  invalidate();
  return true;
}

void exploration_session::set_seeds(std::span<const graph::vertex_id> seeds) {
  // Validate before mutating: a bad id must not leave a half-applied seed
  // set behind a still-"up to date" cached tree.
  for (const graph::vertex_id v : seeds) {
    if (v >= graph().num_vertices()) {
      throw std::out_of_range("exploration_session: seed id out of range");
    }
  }
  seeds_.clear();
  seeds_.insert(seeds.begin(), seeds.end());
  invalidate();
}

void exploration_session::clear_seeds() {
  seeds_.clear();
  invalidate();
}

void exploration_session::filter_edges_above(graph::weight_t cutoff) {
  const graph::csr_graph& g = graph();
  graph::edge_delta delta;
  for (graph::vertex_id u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto wts = g.weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (u >= nbrs[i]) continue;
      // First arc of a parallel group = the pair's minimum weight (rows are
      // sorted by (target, weight)); one edit per undirected pair.
      if (i > 0 && nbrs[i] == nbrs[i - 1]) continue;
      if (wts[i] > cutoff) {
        delta.edits.push_back(graph::edge_edit::disable(u, nbrs[i]));
        continue;
      }
      // Kept pair: if a heavier parallel arc exceeds the cutoff, collapse
      // the pair to its kept minimum (solver-equivalent — shortest paths
      // only ever use the minimum arc).
      for (std::size_t j = i + 1; j < nbrs.size() && nbrs[j] == nbrs[i]; ++j) {
        if (wts[j] > cutoff) {
          delta.edits.push_back(graph::edge_edit::reweight(u, nbrs[i], wts[i]));
          break;
        }
      }
    }
  }
  apply_edge_delta(delta);
}

void exploration_session::remove_vertices(
    std::span<const graph::vertex_id> victims) {
  const graph::csr_graph& g = graph();
  // Validate the whole batch before touching anything: a rejected victim
  // must leave the session (epoch, cached tree) untouched.
  std::vector<char> removed(g.num_vertices(), 0);
  for (const graph::vertex_id v : victims) {
    if (v >= g.num_vertices()) {
      throw std::out_of_range("exploration_session: vertex id out of range");
    }
    if (seeds_.contains(v)) {
      throw std::invalid_argument(
          "exploration_session: cannot remove vertex " + std::to_string(v) +
          ": it is a seed of the current query (remove_seed() it first)");
    }
    removed[v] = 1;
  }

  // One disable edit per incident undirected pair: the graph is symmetric,
  // so visiting each pair from its lower endpoint's row (u < t) covers every
  // incident edge exactly once, and the parallel-group skip collapses
  // multi-arcs to the single edit epoch deltas expect.
  graph::edge_delta delta;
  for (graph::vertex_id u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const graph::vertex_id t = nbrs[i];
      if (u >= t) continue;  // canonical orientation (also skips self-loops)
      if (i > 0 && t == nbrs[i - 1]) continue;  // parallel group: one edit
      if (removed[u] == 0 && removed[t] == 0) continue;
      delta.edits.push_back(graph::edge_edit::disable(u, t));
    }
  }
  apply_edge_delta(delta);
}

void exploration_session::set_ranks(int num_ranks) {
  if (num_ranks <= 0) {
    throw std::invalid_argument("exploration_session: ranks must be positive");
  }
  if (config_.num_ranks == num_ranks) return;
  config_.num_ranks = num_ranks;
  invalidate();
}

const core::steiner_result& exploration_session::tree() {
  if (!cached_) {
    query q;
    q.seeds.assign(seeds_.begin(), seeds_.end());
    q.config = config_;  // per-query override tracks set_ranks edits
    auto qr = service_->solve(std::move(q));
    last_kind_ = qr.kind;
    if (qr.kind != solve_kind::cache_hit) ++recomputes_;
    cached_ = std::move(qr.result);
  }
  return *cached_;
}

}  // namespace dsteiner::service
