#include "service/latency_histogram.hpp"

#include <bit>
#include <cmath>

namespace dsteiner::service {

std::size_t latency_histogram::bucket_of(double seconds) noexcept {
  if (!(seconds > 0.0)) return 0;  // also catches NaN
  const double micros = seconds * 1e6;
  if (micros < 2.0) return 0;
  const auto floor_micros = static_cast<std::uint64_t>(micros);
  const auto i = static_cast<std::size_t>(std::bit_width(floor_micros) - 1);
  return i < k_buckets ? i : k_buckets - 1;
}

double latency_histogram::bucket_upper_seconds(std::size_t i) noexcept {
  return static_cast<double>(std::uint64_t{1} << (i + 1)) * 1e-6;
}

void latency_histogram::record(double seconds) noexcept {
  buckets_[bucket_of(seconds)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_seconds_.fetch_add(seconds, std::memory_order_relaxed);
}

latency_histogram::snapshot_data latency_histogram::snapshot() const noexcept {
  snapshot_data out;
  out.count = count_.load(std::memory_order_relaxed);
  out.total_seconds = total_seconds_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < k_buckets; ++i) {
    out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

latency_histogram::snapshot_data latency_histogram::reset_window() noexcept {
  snapshot_data out;
  out.count = count_.exchange(0, std::memory_order_relaxed);
  out.total_seconds = total_seconds_.exchange(0.0, std::memory_order_relaxed);
  for (std::size_t i = 0; i < k_buckets; ++i) {
    out.buckets[i] = buckets_[i].exchange(0, std::memory_order_relaxed);
  }
  return out;
}

double latency_histogram::snapshot_data::quantile(double q) const noexcept {
  // Rank against the bucket sum, not `count`: windowed snapshots taken
  // with reset_window() under concurrent writers can momentarily disagree
  // between the two, and an all-zero-bucket window must yield 0, not the
  // top bucket boundary (or NaN from a 0/0 interpolation).
  std::uint64_t in_buckets = 0;
  for (std::size_t i = 0; i < k_buckets; ++i) in_buckets += buckets[i];
  if (in_buckets == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(in_buckets);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < k_buckets; ++i) {
    if (buckets[i] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += buckets[i];
    if (static_cast<double>(seen) >= rank) {
      const double lower = i == 0 ? 0.0 : bucket_upper_seconds(i - 1);
      const double upper = bucket_upper_seconds(i);
      const double frac =
          (rank - before) / static_cast<double>(buckets[i]);
      return lower + (upper - lower) * frac;
    }
  }
  return bucket_upper_seconds(k_buckets - 1);
}

}  // namespace dsteiner::service
