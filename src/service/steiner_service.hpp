// Concurrent Steiner query service — the §I workflow at serving scale.
//
// One service owns one *epoched* graph (graph/epoch_graph.hpp) and executes
// many Steiner queries against it concurrently:
//
//   submit(request) -> query_handle               (QoS-aware admission)
//   advance_epoch(edge_delta) -> new epoch id     (graph mutation)
//
// A request carries seeds plus quality-of-service — priority class, absolute
// deadline, cancellation token (request.hpp) — and its handle exposes
// cancel()/status()/poll()/get() (query_handle.hpp). Admission is cost-aware:
// the per-path latency histograms the service already keeps, combined with
// the executor backlog, predict each request's completion time, and a
// request that predictably cannot meet its deadline is rejected up front
// (deadline_unmeetable) instead of occupying a queue slot. Admitted requests
// wait in a priority queue that expires entries past their deadline and
// sheds the lowest class first under saturation; cancelled or expired solves
// stop mid-flight at cooperative solver checkpoints with partial work
// discarded (donors and cache untouched).
//
// The future-based API below is the previous surface, kept as thin wrappers
// during a deprecation window:
//
//   submit(query) -> future<query_result>         (blocking admission)
//
// Each query takes the cheapest correct path:
//   1. result cache   — exact (epoch, seeds, config) repeat: no solver work;
//   2. stale hit      — the current epoch has no entry yet but an older live
//                       epoch does: serve it (marked stale) and kick off a
//                       background refresh — old-epoch results keep serving
//                       while new-epoch solves warm up;
//   3. warm start     — a recent solve differs by a small seed delta and/or
//                       a few edge edits: repair its Voronoi labelling and
//                       distance graph instead of recomputing
//                       (warm_start.hpp), across epochs if needed;
//   4. cold solve     — full Alg. 3 pipeline, pre-seeded from the shared
//                       SSSP fragment store and pruned by the landmark
//                       oracle when available (service/distshare/ — same
//                       tree, less phase-1 work), capturing artifacts and
//                       publishing per-seed fragments so later queries can
//                       take paths 1-3 or borrow its cells.
//
// Cold, warm and cache paths return bit-identical trees for their epoch (the
// solver's determinism guarantee), so concurrency, caching and warm starts
// are pure latency optimisations, observable through per-query latency
// splits and service-wide counters. Epoch retirement bounds the state old
// epochs pin: their cache entries, donors and materialized CSRs go when a
// configurable number of newer epochs exist.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/steiner_solver.hpp"
#include "core/warm_start.hpp"
#include "graph/csr_graph.hpp"
#include "graph/epoch_graph.hpp"
#include "obs/cost_model.hpp"
#include "obs/slo.hpp"
#include "obs/slow_query_log.hpp"
#include "obs/trace.hpp"
#include "service/distshare/landmark_oracle.hpp"
#include "service/distshare/sssp_fragment_store.hpp"
#include "service/executor.hpp"
#include "service/latency_histogram.hpp"
#include "service/query.hpp"
#include "service/query_handle.hpp"
#include "service/request.hpp"
#include "service/result_cache.hpp"
#include "util/cancellation.hpp"

namespace dsteiner::runtime::net {
struct net_solve_report;  // runtime/net/dist_solver.hpp
struct cluster_trace;     // runtime/net/cluster_telemetry.hpp
}  // namespace dsteiner::runtime::net

namespace dsteiner::service {

struct service_config {
  /// Default solver configuration for queries without an override.
  core::solver_config solver{};
  executor_config exec{};
  result_cache::config cache{};
  /// Epoch chain management: compaction threshold and the live-epoch window
  /// (retirement happens when advance_epoch pushes an epoch out of it).
  graph::epoch_store::config epochs{};
  bool enable_cache = true;
  bool enable_warm_start = true;
  /// Warm-start cutoff: largest seed-set symmetric difference worth
  /// repairing instead of solving cold.
  std::size_t warm_delta_limit = 8;
  /// Cross-epoch warm-start cutoff: largest composed edge delta worth
  /// repairing a previous-epoch donor over instead of solving cold.
  std::size_t warm_edge_edit_limit = 64;
  /// Finished solves kept as warm-start donor candidates.
  std::size_t donor_history = 8;
  /// Stale serving: on a current-epoch cache miss, serve a cached result up
  /// to this many epochs old (and refresh in the background). 0 disables —
  /// the default, because a stale tree is *not* the current graph's tree;
  /// callers opt in per service.
  std::size_t max_stale_epochs = 0;
  /// Shared distance substrate (service/distshare/). Fragment reuse
  /// pre-seeds cold solves from settled per-seed cells published by earlier
  /// solves on the same epoch — pure in-path work with a bit-identical
  /// output, so it defaults on. Queries opt out with allow_warm_start =
  /// false (the "reuse nothing" switch).
  bool enable_fragment_reuse = true;
  distshare::fragment_store_config fragment_store{};
  /// Landmark oracle: upper bounds prune phase-1 admission, lower bounds
  /// sharpen admission cost estimates and donor ranking. Costs K SSSP trees
  /// per epoch (built lazily in the background on first demand; see
  /// warm_distance_oracle() for a blocking build) — opt-in because small or
  /// short-lived deployments never recoup the build.
  bool enable_oracle = false;
  distshare::landmark_oracle::config oracle{};
  /// Total cores split between inter-query parallelism (the executor's
  /// workers) and intra-query parallelism (the threaded engine inside one
  /// cold solve). 0 = hardware concurrency. When the solver runs in
  /// execution_mode::parallel_threads with num_threads == 0, each solve is
  /// granted max(1, core_budget / exec.num_threads) engine workers.
  std::size_t core_budget = 0;
  /// Query-scoped tracing (obs/trace.hpp): span capture, per-superstep
  /// engine samples, the slow-query log. Pure observation — traced and
  /// untraced solves produce bit-identical trees — so it defaults on;
  /// set trace.enabled = false to shed even the capture cost. Head sampling
  /// (trace.sample_rate) keeps a representative trickle of traces flowing
  /// into the flight recorder even with enabled = false.
  obs::trace_config trace{};
  /// Learned admission cost model (obs/cost_model.hpp): an online RLS
  /// regression from per-query features (|S|, graph scale, seed spread,
  /// overlay fraction, warm/fragment state, engine grant) to solve seconds,
  /// trained from every completed solve. Admission switches from the global
  /// per-path p50 baseline to the model once it has cost_model.min_samples
  /// observations; both predictions are exported side by side either way.
  obs::cost_model_config cost_model{};
  /// Per-priority-class latency objectives and error-budget burn-rate
  /// tracking (obs/slo.hpp). Scored on every successful completion;
  /// violating queries are force-retained in the slow-query log.
  obs::slo_config slo{};
  /// Distributed runtime (runtime/net/): world >= 2 routes every cold solve
  /// through `net::solve_loopback` — one comm_backend rank per in-process
  /// thread, exchanging the same typed frames the TCP backend puts on real
  /// sockets. Output is bit-identical to the single-process solver (the
  /// solver's fixed point is a unique lexicographic minimum), so this is the
  /// serving-path twin of the `dsteiner-rank` multi-process launcher: same
  /// wire codecs, same termination votes, same traffic counters, minus the
  /// kernel. Warm starts and fragment capture are skipped in this mode
  /// (artifacts live sharded across ranks); 1 = classic in-process solver.
  struct distributed_config {
    int world = 1;
  };
  distributed_config distributed{};
};

struct service_stats {
  std::uint64_t queries = 0;
  std::uint64_t cold_solves = 0;
  std::uint64_t warm_solves = 0;
  std::uint64_t edge_warm_solves = 0;  ///< warm solves that crossed epochs
  std::uint64_t warm_fallbacks = 0;  ///< warm attempts that fell back to cold
  std::uint64_t cache_hits = 0;
  std::uint64_t stale_hits = 0;  ///< served from an older live epoch
  std::uint64_t coalesced = 0;  ///< waited on an identical in-flight query
  std::uint64_t epoch_advances = 0;

  // QoS lifecycle counters (request/handle API).
  std::uint64_t cancelled = 0;  ///< stopped by cancel() or a request token
  std::uint64_t deadline_rejected = 0;  ///< admission: predictably unmeetable
  std::uint64_t deadline_expired = 0;   ///< deadline hit while queued/solving
  std::uint64_t stale_refreshes = 0;    ///< background refreshes enqueued
  std::uint64_t stale_refreshes_deduped = 0;  ///< suppressed: already in flight
  std::uint64_t leader_abandoned = 0;  ///< single-flight solves stopped after
                                       ///< every rider walked away
  std::uint64_t slow_queries = 0;  ///< slow-log captures (threshold or SLO)
  std::uint64_t sampled_traces = 0;  ///< head-sample hits that captured traces
  std::uint64_t slo_violations = 0;  ///< completions past their class objective
  std::uint64_t model_admissions = 0;  ///< admissions priced by the learned model

  // Bucketed (relaxed-determinism) growth telemetry.
  std::uint64_t bucketed_solves = 0;  ///< cold solves run with bucketed phase 1
  std::uint64_t growth_buckets_processed = 0;  ///< delta-stepping buckets drained
  std::uint64_t growth_tiles = 0;              ///< edge tiles emitted for hubs
  std::uint64_t growth_bucket_pruned = 0;  ///< visitors dropped by bucket pruning
  std::uint64_t growth_last_delta = 0;  ///< resolved bucket width, last solve
  std::uint64_t growth_last_tile_threshold = 0;  ///< resolved tile width, last

  // Distributed runtime traffic (runtime/net/), populated when
  // config.distributed.world >= 2. Bytes are whole-mesh sums over all ranks.
  std::uint64_t distributed_solves = 0;  ///< cold solves run on the net mesh
  std::uint64_t net_bytes_sent = 0;      ///< measured wire bytes (w/ headers)
  std::uint64_t net_bytes_modelled = 0;  ///< perf-model payload prediction
  std::uint64_t net_frames_sent = 0;     ///< frames put on the mesh
  std::uint64_t net_supersteps = 0;      ///< BSP supersteps across solves
  std::uint64_t net_vote_rounds = 0;     ///< termination vote rounds
  std::uint64_t net_ghost_labels = 0;    ///< boundary labels synchronized
  // Cluster telemetry plane (per-rank superstep frames, merged on rank 0).
  std::uint64_t cluster_telemetry_samples = 0;  ///< rank×superstep samples
  std::uint64_t cluster_supersteps = 0;  ///< attributed superstep groups
  std::uint64_t cluster_straggler_supersteps = 0;  ///< compute skew >= 2x

  // Shared distance substrate (distshare/).
  std::uint64_t fragment_assisted = 0;  ///< cold solves pre-seeded from store
  std::uint64_t fragment_hits = 0;      ///< fragments borrowed into solves
  std::uint64_t preseeded_vertices = 0;  ///< labels adopted before relaxation
  std::uint64_t oracle_pruned_visitors = 0;  ///< admission drops by UB bound
  std::uint64_t oracle_builds = 0;           ///< landmark table (re)builds
  std::uint64_t bound_sharpened = 0;  ///< admission estimates the oracle scaled
  /// Requests admitted/shed per priority class (shed = queue-full rejections,
  /// displacements, queued-deadline expiries and unmeetable rejections).
  std::array<std::uint64_t, k_priority_classes> admitted_by_priority{};
  std::array<std::uint64_t, k_priority_classes> shed_by_priority{};

  result_cache::stats cache;
  executor_stats exec;
  distshare::fragment_store_stats fragments;
};

/// Point-in-time metrics export: the counters plus per-stage latency
/// histograms (log2 buckets; see latency_histogram.hpp). Built for scraping
/// into a dashboard — the histograms expose mean and quantile estimates
/// without the service retaining per-query samples.
struct service_snapshot {
  service_stats stats;
  latency_histogram::snapshot_data queue_wait;       ///< all queries
  latency_histogram::snapshot_data cold_solve;       ///< solver time, cold path
  latency_histogram::snapshot_data warm_solve;       ///< solver time, warm path
  latency_histogram::snapshot_data cache_hit_total;  ///< end-to-end, cache hits
  latency_histogram::snapshot_data total;            ///< end-to-end, all paths
  // Measured-vs-model: what the perf model predicted for the solves that
  // actually ran, and how far reality landed from two predictions.
  latency_histogram::snapshot_data modelled_solve;  ///< cost-model solve time
  latency_histogram::snapshot_data model_abs_error;  ///< |wall - modelled|
  latency_histogram::snapshot_data estimate_error;  ///< |total - admission est.|
  /// Paired learned-model-vs-baseline comparison: for every query whose
  /// admission was priced by the learned model, the absolute error of both
  /// its prediction and what the global-p50 baseline would have said.
  latency_histogram::snapshot_data estimate_error_model;
  latency_histogram::snapshot_data estimate_error_baseline;
  /// Distributed traffic, paired modelled-vs-measured: one sample per
  /// superstep, in megabytes (bytes x 1e-6 — the histogram's log2 buckets
  /// were sized for seconds, and MB land in the same useful range). Measured
  /// counts real wire bytes including headers/markers/votes, so measured >=
  /// modelled holds per sample; the gap is framing overhead the perf model
  /// deliberately excludes.
  latency_histogram::snapshot_data comm_bytes_modelled;
  latency_histogram::snapshot_data comm_bytes_measured;
  /// Cluster telemetry: per rank×superstep sample, wall seconds of the whole
  /// sample (compute + send-flush + recv-wait + vote) and of its
  /// communication share — the distribution /clusterz's straggler report
  /// summarizes per superstep.
  latency_histogram::snapshot_data cluster_superstep_seconds;
  latency_histogram::snapshot_data cluster_comm_wait_seconds;
  obs::cost_model_snapshot cost_model;  ///< RLS coefficients, samples, residual
  obs::slo_snapshot slo;                ///< per-class burn rates and windows
};

class steiner_service {
 public:
  explicit steiner_service(graph::csr_graph graph, service_config config = {});

  steiner_service(const steiner_service&) = delete;
  steiner_service& operator=(const steiner_service&) = delete;

  /// QoS-aware admission — the primary serving surface. Never blocks: a
  /// request that cannot be admitted (queue saturated with nothing below its
  /// priority to shed, or a predictably unmeetable deadline) comes back as a
  /// handle already in request_status::rejected. An already-cancelled token
  /// short-circuits to ::cancelled. Invalid seeds surface when the handle is
  /// resolved (status failed, get() rethrows).
  [[nodiscard]] query_handle submit(request r);

  /// Synchronous convenience for the request surface: submit + get(). Do not
  /// call from a worker thread (it would wait on its own pool).
  [[nodiscard]] query_result solve(request r);

  // --- deprecated future-based surface (thin wrappers over the request
  // path; one deprecation window, then removal — migrate to
  // submit(request)) -------------------------------------------------------

  /// Asynchronous execution on the worker pool; blocks only while the
  /// bounded admission queue is full. Invalid seeds surface as exceptions on
  /// the future. Equivalent to submit(request{q}) at interactive priority
  /// with no deadline, minus the handle.
  [[nodiscard]] std::future<query_result> submit(query q);

  /// Load-shedding admission: nullopt (and the rejected counter) when the
  /// queue is full.
  [[nodiscard]] std::optional<std::future<query_result>> try_submit(query q);

  /// Synchronous convenience: submit + wait. Do not call from a worker
  /// thread (it would wait on its own pool).
  [[nodiscard]] query_result solve(query q);

  /// Derives a new graph epoch from a batch of edge edits — the §I
  /// "adjusting edge distance functions / removing classes of edges"
  /// interactions — *without* rebuilding the service. Old-epoch cache
  /// entries keep serving pinned (and optionally stale) queries until their
  /// epoch falls out of the live window, at which point its cache entries,
  /// donors and materialized CSR are dropped. New-epoch queries warm-start
  /// from previous-epoch donors through the edge-delta repair. Returns the
  /// new epoch id. Thread-safe; in-flight queries finish on the epoch they
  /// resolved at admission.
  std::uint64_t advance_epoch(const graph::edge_delta& delta);

  /// The current epoch's materialized CSR. The reference stays valid until
  /// the epoch retires (live-window advances), so don't hold it across
  /// advance_epoch calls — re-fetch instead.
  [[nodiscard]] const graph::csr_graph& graph() const {
    return *epochs_.current()->csr();
  }
  /// Current epoch's chained content fingerprint (cache-key continuity: for
  /// an unedited graph this equals the structural CSR fingerprint).
  [[nodiscard]] std::uint64_t graph_fingerprint() const {
    return epochs_.current()->fingerprint();
  }
  [[nodiscard]] std::uint64_t current_epoch() const {
    return epochs_.current()->epoch_id();
  }
  /// The epoch chain (live window, delta composition) — read-only.
  [[nodiscard]] const graph::epoch_store& epochs() const noexcept {
    return epochs_;
  }
  [[nodiscard]] const service_config& config() const noexcept { return config_; }
  [[nodiscard]] service_stats stats() const;

  /// Blocking landmark-oracle build for the current epoch (no-op when the
  /// oracle is disabled or already fresh). Production serving relies on the
  /// lazy background build instead; this is for tests, benches and warm-up
  /// scripts that need deterministic oracle availability.
  void warm_distance_oracle();
  /// Oracle state (validity per bound side, landmark count) — read-only.
  [[nodiscard]] distshare::landmark_oracle::stats_data oracle_stats() const {
    return oracle_.stats();
  }
  /// The shared fragment store — read-only access for tests/observability.
  [[nodiscard]] const distshare::sssp_fragment_store& fragments()
      const noexcept {
    return fragments_;
  }

  /// The slow-query log: the last few traces whose end-to-end latency
  /// crossed config().trace.slow_query_threshold_seconds, plus SLO-violating
  /// queries (force-retained regardless of the threshold). Read-only.
  [[nodiscard]] const obs::slow_query_log& slow_log() const noexcept {
    return slow_log_;
  }

  /// The flight recorder: head-sampled traces (one in ~1/trace.sample_rate
  /// queries) that were NOT slow or SLO-violating — the representative
  /// traffic /tracez shows next to the outliers. Read-only.
  [[nodiscard]] const obs::slow_query_log& flight_recorder() const noexcept {
    return flight_recorder_;
  }

  /// The learned admission cost model's coefficients/sample state.
  [[nodiscard]] obs::cost_model_snapshot cost_model_snapshot() const {
    return cost_model_.snapshot();
  }

  /// Per-priority-class SLO burn rates and windowed counts.
  [[nodiscard]] obs::slo_snapshot slo_snapshot() const {
    return slo_.snapshot();
  }

  /// Counters + per-stage latency histograms; safe to call under load.
  [[nodiscard]] service_snapshot snapshot() const;

  /// The most recent distributed solve's merged cluster telemetry (rank 0's
  /// aggregation of every rank's per-superstep frames), or null when no
  /// distributed solve has completed with telemetry on. Shared read-only
  /// snapshot — /clusterz renders it without holding service locks.
  [[nodiscard]] std::shared_ptr<const runtime::net::cluster_trace>
  cluster_trace_snapshot() const;

  /// Engine workers the core-budget split grants a parallel_threads solve.
  /// Computed regardless of the default solver's mode, since per-query
  /// config overrides may opt into the threaded engine on their own.
  [[nodiscard]] std::size_t intra_query_threads() const noexcept {
    return intra_query_threads_;
  }

  /// Hash of every output- or metrics-affecting solver_config field; part of
  /// the cache key.
  [[nodiscard]] static std::uint64_t config_hash(
      const core::solver_config& config) noexcept;

 private:
  using donor_ptr = std::shared_ptr<const core::solve_artifacts>;

  /// A warm-start donor: the artifacts plus the epoch they were solved on
  /// and its per-seed Voronoi cell sizes (the reset-region volume estimate
  /// donor selection ranks by).
  struct donor_record {
    donor_ptr artifacts;
    std::uint64_t epoch_id = 0;
    std::uint64_t graph_fingerprint = 0;  ///< structural CSR fp of its epoch
    std::unordered_map<graph::vertex_id, std::uint32_t> cell_sizes;
  };

  /// A selected donor plus the composed edge delta needed to repair across
  /// epochs (empty for a same-epoch donor).
  struct donor_match {
    donor_ptr artifacts;
    std::uint64_t graph_fingerprint = 0;
    std::vector<graph::applied_edge_edit> edits;
  };

  /// Blocking (legacy wrappers) vs shedding (request surface) admission.
  enum class admission : std::uint8_t { block, shed };

  /// Allocates the shared lifecycle state for a request (id, priority,
  /// budget wiring). The caller takes the promise's future *before*
  /// dispatch() posts the task.
  [[nodiscard]] std::shared_ptr<detail::request_state> make_request_state(
      const request& r);
  /// Admission: pre-cancel/pre-expiry short-circuit, cost-model deadline
  /// check, then executor post. Resolves the state itself on every
  /// non-admitted path.
  void dispatch(request r, std::shared_ptr<detail::request_state> st,
                admission mode);
  /// The worker-side task: lifecycle transitions around execute().
  /// `relaxed` carries the request's determinism opt-in into exec_context.
  [[nodiscard]] executor::task make_task(
      std::shared_ptr<detail::request_state> st, query q, bool relaxed = false);
  /// Terminal bookkeeping for a stopped (cancelled/expired) request.
  void note_stopped(detail::request_state& st, util::cancel_reason why);
  /// Predicted completion seconds (queue drain + solve estimate) for
  /// admission: the learned cost model's prediction once it is ready, the
  /// global per-path p50 baseline before that — both returned side by side.
  /// used == 0.0 means no history: always admit.
  [[nodiscard]] admission_estimates estimate_completion_seconds(
      const request& r);
  /// The cost model's feature vector for a prospective or completed solve on
  /// `epoch`. `warm` selects the warm-repair flag and suppresses the
  /// fragment-presence probe (warm solves don't borrow fragments).
  [[nodiscard]] obs::query_features build_query_features(
      const graph::epoch_graph& epoch,
      std::span<const graph::vertex_id> canonical,
      const core::solver_config& solver_config, bool warm) const;
  /// Per-request context execute() needs beyond the query itself. The
  /// defaults describe a background refresh: no budget, no admission
  /// estimates, no request id, background priority.
  struct exec_context {
    const util::run_budget* budget = nullptr;
    admission_estimates estimates{};
    std::uint64_t request_id = 0;
    priority_class priority = priority_class::background;
    /// Request opted into relaxed determinism: a cold solve may run phase 1
    /// bucketed. Never set for cache/donor/refresh work — the shared state
    /// those paths produce keeps the strict contract (the tree is identical
    /// either way; see determinism_mode).
    bool relaxed = false;
  };
  [[nodiscard]] query_result execute(query q, double queue_wait,
                                     util::timer admitted, exec_context ctx);
  /// Background-refresh convenience: execute() with a default exec_context.
  [[nodiscard]] query_result execute(query q, double queue_wait,
                                     util::timer admitted) {
    return execute(std::move(q), queue_wait, admitted, exec_context{});
  }
  [[nodiscard]] std::optional<donor_match> find_donor(
      std::span<const graph::vertex_id> canonical_seeds,
      const graph::epoch_graph& epoch);
  void remember_donor(donor_ptr donor, std::uint64_t epoch_id);
  /// Best-effort current-epoch refresh after a stale hit (fire-and-forget;
  /// dropped when the admission queue is full). Deduplicated: a refresh
  /// token per (epoch, seeds, config) key guarantees at most one in-flight
  /// refresh per key no matter how many stale hits a burst produces.
  void refresh_in_background(std::vector<graph::vertex_id> seeds,
                             std::optional<core::solver_config> config);
  /// Lazy oracle build: posts one background build task per epoch
  /// fingerprint (deduped by oracle_kicked_fp_); queries keep running
  /// unpruned until the tables land.
  void kick_oracle_build(const graph::epoch_graph::ptr& epoch);
  /// Applies the core-budget split to a per-query solver config: a
  /// parallel_threads solve with no explicit thread count gets this
  /// service's intra-query worker grant.
  void grant_worker_budget(core::solver_config& config) const noexcept;
  /// Folds one distributed solve's per-rank telemetry into the service's net
  /// counters and the paired modelled/measured per-superstep histograms.
  void record_net_reports(
      const std::vector<runtime::net::net_solve_report>& reports,
      obs::query_trace* trace);

  service_config config_;
  graph::epoch_store epochs_;
  result_cache cache_;
  std::size_t intra_query_threads_ = 1;

  /// Shared distance substrate: the per-epoch fragment store and the
  /// landmark oracle (both internally synchronized).
  distshare::sssp_fragment_store fragments_;
  distshare::landmark_oracle oracle_;
  /// Epoch fingerprint a background oracle build was last kicked for —
  /// dedupes the lazy build trigger without blocking queries.
  std::atomic<std::uint64_t> oracle_kicked_fp_{0};
  /// Rolling mean of the oracle's seed-spread feature over completed cold
  /// solves — the denominator that turns a request's spread into a scale
  /// factor on the cold-p50 estimate.
  std::atomic<double> spread_sum_{0.0};
  std::atomic<std::uint64_t> spread_samples_{0};

  /// Per-stage latency histograms behind snapshot().
  latency_histogram queue_wait_hist_;
  latency_histogram cold_solve_hist_;
  latency_histogram warm_solve_hist_;
  latency_histogram cache_hit_total_hist_;
  latency_histogram total_hist_;
  /// Measured-vs-model histograms: the cost model's predicted solve time for
  /// each executed solve, and the absolute wall-vs-model / total-vs-estimate
  /// residuals. Recorded regardless of tracing (they cost two atomics).
  latency_histogram modelled_solve_hist_;
  latency_histogram model_abs_error_hist_;
  latency_histogram estimate_error_hist_;
  /// Paired comparison, recorded only for model-priced admissions: the
  /// learned model's absolute error and the baseline's on the same queries.
  latency_histogram estimate_error_model_hist_;
  latency_histogram estimate_error_baseline_hist_;
  /// Distributed per-superstep traffic in MB (see service_snapshot).
  latency_histogram comm_bytes_modelled_hist_;
  latency_histogram comm_bytes_measured_hist_;
  /// Cluster telemetry: per rank×superstep total and comm-wait seconds.
  latency_histogram cluster_superstep_seconds_hist_;
  latency_histogram cluster_comm_wait_seconds_hist_;

  /// Learned admission cost model: trained from every completed real solve,
  /// consulted by estimate_completion_seconds (internally synchronized).
  obs::cost_model cost_model_;
  /// Per-priority-class SLO scoring (internally synchronized).
  obs::slo_tracker slo_;

  /// Slow-query log: completed traces past the configured threshold, plus
  /// SLO violators (force-retained).
  obs::slow_query_log slow_log_;
  /// Flight recorder: head-sampled traces of ordinary (not slow, not
  /// violating) queries — the representative-traffic ring behind /tracez.
  obs::slow_query_log flight_recorder_;
  /// Deterministic head-sampling ticker: query k is sampled when
  /// k % round(1 / trace.sample_rate) == 0.
  std::atomic<std::uint64_t> sample_ticker_{0};
  std::atomic<std::uint64_t> slow_queries_{0};
  std::atomic<std::uint64_t> sampled_traces_{0};
  std::atomic<std::uint64_t> slo_violations_{0};
  std::atomic<std::uint64_t> model_admissions_{0};

  /// Warm-start donor registry: the last few solves' artifacts, epoch-keyed.
  /// Bounded by donor_history — artifacts are O(|V|) each, so they
  /// deliberately do not ride along in result-cache entries. Donors from
  /// retired epochs are pruned on advance_epoch.
  std::mutex donors_mutex_;
  std::deque<donor_record> donors_;  ///< front = most recent

  /// Interest tracking for one single-flight solve: the leader's requester
  /// (when it has one) and every coalesced rider hold a share; the last one
  /// to leave fires the group-abandon source, which the leader's solve
  /// budget observes at its next checkpoint. A requester-less leader (a
  /// background stale-refresh) starts at zero shares, so it runs to
  /// completion when nobody ever coalesced — the result still feeds the
  /// cache — but dies as soon as riders joined and all walked away.
  struct inflight_interest {
    std::atomic<std::int64_t> shares{0};
    util::cancel_source abandoned;

    void join() noexcept { shares.fetch_add(1, std::memory_order_acq_rel); }
    void leave() noexcept {
      if (shares.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        (void)abandoned.request_cancel();
      }
    }
  };

  struct inflight_entry {
    std::shared_future<result_cache::entry_ptr> result;
    std::shared_ptr<inflight_interest> interest;
  };

  /// Single-flight registry: cacheable queries that missed the cache register
  /// here; identical queries arriving while one is being solved wait for its
  /// entry instead of duplicating the work (thundering-herd protection).
  std::mutex inflight_mutex_;
  std::unordered_map<cache_key, inflight_entry, cache_key_hash> inflight_;

  /// Stale-refresh dedup: keys with a background refresh in flight. A stale
  /// hit registers its key here before enqueueing; the refresh task (or a
  /// failed enqueue) erases it.
  std::mutex refresh_mutex_;
  std::unordered_set<cache_key, cache_key_hash> refreshing_;

  std::atomic<std::uint64_t> query_counter_{0};  ///< also the queries total
  std::atomic<std::uint64_t> request_counter_{0};  ///< handle ids (submissions)
  std::atomic<std::uint64_t> cold_solves_{0};
  std::atomic<std::uint64_t> warm_solves_{0};
  std::atomic<std::uint64_t> edge_warm_solves_{0};
  std::atomic<std::uint64_t> warm_fallbacks_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> stale_hits_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> epoch_advances_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> deadline_rejected_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};
  std::atomic<std::uint64_t> stale_refreshes_{0};
  std::atomic<std::uint64_t> stale_refreshes_deduped_{0};
  std::atomic<std::uint64_t> leader_abandoned_{0};
  std::atomic<std::uint64_t> bucketed_solves_{0};
  std::atomic<std::uint64_t> growth_buckets_processed_{0};
  std::atomic<std::uint64_t> growth_tiles_{0};
  std::atomic<std::uint64_t> growth_bucket_pruned_{0};
  std::atomic<std::uint64_t> growth_last_delta_{0};
  std::atomic<std::uint64_t> growth_last_tile_threshold_{0};
  std::atomic<std::uint64_t> fragment_assisted_{0};
  std::atomic<std::uint64_t> fragment_hits_{0};
  std::atomic<std::uint64_t> preseeded_vertices_{0};
  std::atomic<std::uint64_t> oracle_pruned_visitors_{0};
  std::atomic<std::uint64_t> bound_sharpened_{0};
  std::atomic<std::uint64_t> distributed_solves_{0};
  std::atomic<std::uint64_t> net_bytes_sent_{0};
  std::atomic<std::uint64_t> net_bytes_modelled_{0};
  std::atomic<std::uint64_t> net_frames_sent_{0};
  std::atomic<std::uint64_t> net_supersteps_{0};
  std::atomic<std::uint64_t> net_vote_rounds_{0};
  std::atomic<std::uint64_t> net_ghost_labels_{0};
  std::atomic<std::uint64_t> cluster_telemetry_samples_{0};
  std::atomic<std::uint64_t> cluster_supersteps_{0};
  std::atomic<std::uint64_t> cluster_straggler_supersteps_{0};
  /// Latest merged cluster trace (rank 0's aggregation), swapped in whole by
  /// record_net_reports; /clusterz copies the shared_ptr under the mutex and
  /// renders lock-free.
  mutable std::mutex cluster_mutex_;
  std::shared_ptr<const runtime::net::cluster_trace> last_cluster_;
  std::array<std::atomic<std::uint64_t>, k_priority_classes> admitted_by_prio_{};
  std::array<std::atomic<std::uint64_t>, k_priority_classes> shed_by_prio_{};

  /// Last member: workers must stop before anything they touch is destroyed.
  executor exec_;
};

}  // namespace dsteiner::service
